#!/usr/bin/env bash
# Regenerate the repo-root BENCH_*.json trajectory snapshots: the throughput
# grid and the latency-histogram cells, captured through the shared --json
# flag (bench_common.hpp) into the schema-versioned metrics document
# (src/obs/metrics.hpp, docs/OBSERVABILITY.md).
#
#   scripts/bench_json.sh           # default 60 ms cells
#   EFRB_BENCH_MS=500 scripts/bench_json.sh   # longer cells, lower variance
#
# The snapshots are checked in so the numbers travel with the history; rerun
# this after perf-relevant changes and commit the diff. Absolute numbers are
# machine-dependent — compare shapes and ratios, not values, across hosts.
# The workload seed is pinned (EFRB_BENCH_SEED, see bench/bench_common.hpp)
# so successive regenerations draw the same key/op streams and the diff only
# reflects code and machine, not RNG luck.
set -euo pipefail
cd "$(dirname "$0")/.."

: "${EFRB_BENCH_MS:=60}"
: "${EFRB_BENCH_SEED:=3405691582}"
export EFRB_BENCH_MS EFRB_BENCH_SEED

cmake -B build > /dev/null
cmake --build build --target bench_throughput bench_latency > /dev/null

echo "=== bench_throughput --json BENCH_throughput.json (${EFRB_BENCH_MS} ms cells) ==="
./build/bench/bench_throughput --json BENCH_throughput.json > /dev/null

echo "=== bench_latency --json BENCH_latency.json ==="
./build/bench/bench_latency --benchmark_min_time=0.01 \
    --json BENCH_latency.json > /dev/null 2>&1

python3 -m json.tool BENCH_throughput.json > /dev/null
python3 -m json.tool BENCH_latency.json > /dev/null
echo "wrote BENCH_throughput.json ($(wc -c < BENCH_throughput.json) bytes)"
echo "wrote BENCH_latency.json ($(wc -c < BENCH_latency.json) bytes)"
