#!/usr/bin/env bash
# Regenerate the repo-root BENCH_*.json trajectory snapshots: the throughput
# grid and the latency-histogram cells, captured through the shared --json
# flag (bench_common.hpp) into the schema-versioned metrics document
# (src/obs/metrics.hpp, docs/OBSERVABILITY.md).
#
#   scripts/bench_json.sh           # default 60 ms cells
#   EFRB_BENCH_MS=500 scripts/bench_json.sh   # longer cells, lower variance
#   EFRB_BENCH_REPEATS=3 scripts/bench_json.sh  # recorded in meta; perfdiff
#                                               # halves its threshold when
#                                               # both snapshots have >= 3
#
# The snapshots are checked in so the numbers travel with the history; rerun
# this after perf-relevant changes and commit the diff. Absolute numbers are
# machine-dependent — compare shapes and ratios, not values, across hosts.
# The workload seed is pinned (EFRB_BENCH_SEED, see bench/bench_common.hpp)
# so successive regenerations draw the same key/op streams and the diff only
# reflects code and machine, not RNG luck.
#
# After the bench binaries write their documents, a top-level `meta` object
# is injected (hostname, CPU model, cores, governor, perf_event_paranoid,
# repeats, seed, bench_ms, timestamp) — the provenance tools/efrb_perfdiff
# uses to refuse cross-host comparisons and to tighten thresholds for
# min-of-N snapshots. A timestamped copy of each document is archived under
# bench/history/ so perf trajectories accumulate alongside the code history.
set -euo pipefail
cd "$(dirname "$0")/.."

: "${EFRB_BENCH_MS:=60}"
: "${EFRB_BENCH_SEED:=3405691582}"
: "${EFRB_BENCH_REPEATS:=1}"
export EFRB_BENCH_MS EFRB_BENCH_SEED EFRB_BENCH_REPEATS

cmake -B build > /dev/null
cmake --build build --target bench_throughput bench_latency > /dev/null

echo "=== bench_throughput --json BENCH_throughput.json (${EFRB_BENCH_MS} ms cells) ==="
./build/bench/bench_throughput --json BENCH_throughput.json > /dev/null

echo "=== bench_latency --json BENCH_latency.json ==="
./build/bench/bench_latency --benchmark_min_time=0.01 \
    --json BENCH_latency.json > /dev/null 2>&1

# Inject snapshot provenance. The bench binaries stay meta-free (a run is a
# run); the script is the actor that knows it is producing a comparable,
# archivable snapshot.
inject_meta() {
  python3 - "$1" <<'EOF'
import datetime
import json
import os
import platform
import sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

def read(p, default=''):
    try:
        with open(p) as f:
            return f.read().strip()
    except OSError:
        return default

cpu_model = ''
for line in read('/proc/cpuinfo').splitlines():
    if line.startswith('model name'):
        cpu_model = line.split(':', 1)[1].strip()
        break

meta = {
    'hostname': platform.node(),
    'cpu_model': cpu_model,
    'cores': os.cpu_count() or 0,
    'governor': read(
        '/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor', 'unknown'),
    'perf_event_paranoid': int(
        read('/proc/sys/kernel/perf_event_paranoid', '-100') or '-100'),
    'repeats': int(os.environ.get('EFRB_BENCH_REPEATS', '1')),
    'seed': int(os.environ['EFRB_BENCH_SEED']),
    'bench_ms': int(os.environ['EFRB_BENCH_MS']),
    'timestamp': datetime.datetime.now(datetime.timezone.utc)
        .strftime('%Y-%m-%dT%H:%M:%SZ'),
}

# Rebuild the document with meta right after the tool key so the provenance
# reads first; consumers ignore unknown keys (schema v2+ contract).
out = {}
for k, v in doc.items():
    out[k] = v
    if k == 'tool':
        out['meta'] = meta
out.setdefault('meta', meta)
with open(path, 'w') as f:
    json.dump(out, f, separators=(',', ':'))
EOF
}

inject_meta BENCH_throughput.json
inject_meta BENCH_latency.json

python3 -m json.tool BENCH_throughput.json > /dev/null
python3 -m json.tool BENCH_latency.json > /dev/null
echo "wrote BENCH_throughput.json ($(wc -c < BENCH_throughput.json) bytes)"
echo "wrote BENCH_latency.json ($(wc -c < BENCH_latency.json) bytes)"

# Archive this snapshot into the perf trajectory. History entries are plain
# copies — compare any two with tools/efrb_perfdiff (same host) or
# --allow-cross-host across machines.
stamp="$(date -u +%Y%m%dT%H%M%SZ)"
mkdir -p bench/history
cp BENCH_throughput.json "bench/history/${stamp}_throughput.json"
cp BENCH_latency.json "bench/history/${stamp}_latency.json"
echo "archived bench/history/${stamp}_{throughput,latency}.json"
