#!/usr/bin/env bash
# Full verification gate: plain build + tests, ASan/UBSan, TSan, quick bench
# smoke, examples, and the soak/fuzz tools. Run from the repository root.
#
#   scripts/check.sh            # everything (slow: three full builds)
#   scripts/check.sh --fast     # plain build + tests + smoke only
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run() { echo "+ $*"; "$@"; }

echo "=== plain build + tests ==="
run cmake -B build -G Ninja
run cmake --build build
run ctest --test-dir build --output-on-failure

echo "=== header self-containment (each src/ header as a standalone TU) ==="
run cmake --build build --target header_selfcontained

echo "=== examples ==="
for ex in quickstart kv_cache order_book adversarial_find; do
  run "./build/examples/${ex}" > /dev/null
done

echo "=== bench smoke (short cells) ==="
for b in build/bench/*; do
  [[ -x "$b" && ! -d "$b" ]] || continue
  if [[ "$b" == *bench_latency* ]]; then
    run "$b" --benchmark_min_time=0.01 > /dev/null
  else
    EFRB_BENCH_MS=20 run "$b" > /dev/null
  fi
done

echo "=== tools ==="
run ./build/tools/stress_tool --seconds 1 > /dev/null
run ./build/tools/fuzz_lincheck --seconds 2 > /dev/null

echo "=== observability: metrics + trace export round-trip ==="
# obs_probe runs a traced, latency-sampled workload and writes both machine-
# readable artifacts; both must parse as JSON and carry the schema the docs
# promise (docs/OBSERVABILITY.md).
run ./build/tools/obs_probe --metrics build/obs_metrics.json \
    --trace build/obs_trace.json --prom build/obs_probe.prom \
    --duration 60 --interval 10 > /dev/null
run python3 -m json.tool build/obs_metrics.json /dev/null
run python3 -m json.tool build/obs_trace.json /dev/null
python3 - <<'EOF'
import json
m = json.load(open('build/obs_metrics.json'))
for k in ('schema', 'schema_version', 'tool', 'cells'):
    assert k in m, f'metrics missing {k}'
assert m['schema'] == 'efrb-metrics' and m['schema_version'] == 4, m['schema']
assert m['cells'], 'metrics document has no cells'
cell = m['cells'][0]
for k in ('name', 'config', 'result', 'tree_stats', 'gauges', 'latency',
          'timeseries', 'heatmap', 'causality'):
    assert k in cell, f'cell missing {k}'
for op in ('find', 'insert', 'erase', 'retried',
           'self_completed', 'helper_completed'):
    h = cell['latency'][op]
    for k in ('count', 'mean_ns', 'p50_ns', 'p99_ns', 'saturated', 'buckets'):
        assert k in h, f'latency[{op}] missing {k}'
assert cell['latency']['insert']['count'] > 0, 'no latency samples recorded'
# v3 causal split: every sampled op lands in exactly one of the two sides.
split = (cell['latency']['self_completed']['count']
         + cell['latency']['helper_completed']['count'])
sampled = sum(cell['latency'][op]['count'] for op in ('find', 'insert', 'erase'))
assert split == sampled, f'causal latency split {split} != sampled {sampled}'
cz = cell['causality']
for k in ('total_helps', 'dropped_unattributed', 'helped_by',
          'helps_received'):
    assert k in cz, f'causality missing {k}'
assert sum(sum(row.values()) for row in cz['helped_by'].values()) \
    == cz['total_helps'], 'causality matrix does not sum to total_helps'
ts = cell['timeseries']
assert ts['samples'], 'timeseries has no samples'
assert len(ts['windows']) == len(ts['samples']) - 1, 'windows != samples-1'
for k in ('t_ns', 'ops', 'cas_attempts', 'cas_failures', 'helps', 'retries',
          'retired', 'freed', 'backlog'):
    assert k in ts['samples'][0], f'timeseries sample missing {k}'
for k in ('t_ns', 'window_s', 'ops_per_s', 'cas_failure_rate', 'helps_per_s',
          'retries_per_s', 'retired_per_s', 'freed_per_s', 'backlog_slope'):
    assert k in ts['windows'][0], f'timeseries window missing {k}'
hm = cell['heatmap']
for k in ('key_range', 'buckets', 'dropped', 'strip', 'cells'):
    assert k in hm, f'heatmap missing {k}'
assert len(hm['cells']) == hm['buckets'], 'heatmap cell count != buckets'
assert sum(c[0] for c in hm['cells']) > 0, 'heatmap recorded no attempts'
t = json.load(open('build/obs_trace.json'))
assert t.get('traceEvents'), 'trace has no events'
phases = {e['ph'] for e in t['traceEvents']}
assert 'B' in phases and 'E' in phases, f'no spans in trace: {phases}'
print(f"observability OK: {len(t['traceEvents'])} trace events, "
      f"{len(m['cells'])} metrics cell(s), {len(ts['samples'])} poll samples")
EOF
# The shared --json flag must work in every bench binary; smoke the heaviest.
# EFRB_BENCH_SEED pins the op/key streams so the fixed-op shard/balance cells
# in this document are reproducible inputs for the gates below.
EFRB_BENCH_MS=20 EFRB_BENCH_SEED=1234 run ./build/bench/bench_throughput \
    --json build/bench_throughput_smoke.json > /dev/null
run python3 -m json.tool build/bench_throughput_smoke.json /dev/null
# The sharded front end's `sharding` cell (metrics v2): balance report +
# per-shard reclaimer gauges, shape per docs/OBSERVABILITY.md.
python3 - <<'EOF'
import json
cells = json.load(open('build/bench_throughput_smoke.json'))['cells']
shard_cells = [c for c in cells if 'sharding' in c]
assert shard_cells, 'no cell carries a sharding section'
sh = shard_cells[0]['sharding']
for k in ('router', 'shards', 'imbalance', 'hottest', 'total_attempts',
          'total_contended', 'dropped', 'per_shard'):
    assert k in sh, f'sharding cell missing {k}'
assert len(sh['per_shard']) == sh['shards'], 'per_shard count != shards'
for k in ('attempts', 'contended', 'share', 'retired', 'freed', 'backlog',
          'orphans'):
    assert k in sh['per_shard'][0], f'sharding per_shard entry missing {k}'
assert sh['total_attempts'] == sum(s['attempts'] for s in sh['per_shard']), \
    'shard attribution does not conserve totals'
assert sh['imbalance'] >= 1.0, 'imbalance below the even-split floor'
print(f"sharding cell OK: {sh['router']} x{sh['shards']}, "
      f"imbalance {sh['imbalance']:.2f}")
EOF

echo "=== continuous telemetry: efrb_top headless + Prometheus exposition ==="
# efrb_top --once renders a single plain frame (no escape codes) after the
# run — the headless CI path. The frame must carry the windowed-rate table,
# the heatmap strip, and the reclaim gauge line.
run ./build/tools/efrb_top --once --ms 80 --interval 10 --threads 2 \
    > build/efrb_top_once.txt
for needle in 'ops/s' 'cas fail %' 'backlog slope' 'heatmap' 'reclaim' \
    'causal' 'stalls' 'poller samples' 'latency' 'saturated=' 'profile' \
    'descent' 'cas_protocol'; do
  grep -q "$needle" build/efrb_top_once.txt \
    || { echo "efrb_top --once output missing '$needle'"; exit 1; }
done
# No live-mode escape codes may leak into the --once path.
if grep -q $'\x1b' build/efrb_top_once.txt; then
  echo "efrb_top --once emitted ANSI escapes"; exit 1
fi
# --shards N adds the per-shard row (load share + per-shard reclaimer gauges)
# under the same frame; the table and the balance summary line must render.
run ./build/tools/efrb_top --once --ms 80 --interval 10 --threads 2 \
    --shards 4 > build/efrb_top_shards.txt
for needle in 'shards' 'imbalance' 'load %' 'backlog' 'orphans' \
    'poller samples'; do
  grep -q "$needle" build/efrb_top_shards.txt \
    || { echo "efrb_top --shards output missing '$needle'"; exit 1; }
done
# The shared --prom flag writes Prometheus text exposition; lint it line by
# line against the exposition-format grammar (docs/OBSERVABILITY.md).
EFRB_BENCH_MS=20 run ./build/bench/bench_throughput \
    --prom build/bench_throughput_smoke.prom > /dev/null
python3 - <<'EOF'
import re
NAME = r'[a-zA-Z_:][a-zA-Z0-9_:]*'
LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"'
sample_re = re.compile(rf'^({NAME})(?:\{{{LABEL}(?:,{LABEL})*\}})? (\S+)$')
help_re = re.compile(rf'^# HELP ({NAME}) \S.*$')
type_re = re.compile(rf'^# TYPE ({NAME}) (counter|gauge)$')
typed, samples, pending_help = set(), 0, None
for ln, line in enumerate(open('build/bench_throughput_smoke.prom'), 1):
    line = line.rstrip('\n')
    if not line:
        continue
    if line.startswith('# HELP'):
        m = help_re.match(line)
        assert m, f'line {ln}: malformed HELP: {line}'
        assert m.group(1) not in typed, f'line {ln}: duplicate HELP for {m.group(1)}'
        pending_help = m.group(1)
    elif line.startswith('# TYPE'):
        m = type_re.match(line)
        assert m, f'line {ln}: malformed TYPE: {line}'
        assert m.group(1) == pending_help, f'line {ln}: TYPE without its HELP'
        typed.add(m.group(1))
    else:
        m = sample_re.match(line)
        assert m, f'line {ln}: malformed sample: {line}'
        assert m.group(1) in typed, f'line {ln}: sample before # TYPE'
        float(m.group(2))  # raises on a malformed value
        samples += 1
assert samples > 0, 'prom exposition has no samples'
for want in ('efrb_ops_total', 'efrb_cas_attempts_total',
             'efrb_reclaim_backlog', 'efrb_throughput_mops',
             'efrb_shard_count', 'efrb_shard_imbalance',
             'efrb_shard_attempts_total', 'efrb_shard_contended_total',
             'efrb_shard_reclaim_backlog', 'efrb_shard_reclaim_orphans'):
    assert want in typed, f'prom exposition missing {want}'
print(f'prometheus OK: {samples} samples across {len(typed)} metrics')
EOF
# obs_probe's exposition additionally carries the causality + watchdog
# families (the bench binaries do not wire a CausalRegistry).
for needle in efrb_help_given_total efrb_help_received_total \
    efrb_help_unattributed_total efrb_stalled_ops efrb_stall_events_total \
    efrb_latency_count; do
  grep -q "^# TYPE $needle " build/obs_probe.prom \
    || { echo "obs_probe prom missing $needle"; exit 1; }
done

echo "=== profile: phase attribution + hardware-counter fallback ==="
# obs_probe --profile attaches the phase profiler and per-thread perf
# counter groups; the v4 `profile` cell must carry the attribution totals
# with the phase-sum invariant, and the hw/sw/derived sections must follow
# the absent-not-zero rule in whichever availability tier this host lands.
run ./build/tools/obs_probe --profile --metrics build/obs_profile.json \
    --prom build/obs_profile.prom --duration 60 --interval 10 > /dev/null
python3 - <<'EOF'
import json
m = json.load(open('build/obs_profile.json'))
assert m['schema_version'] == 4, m['schema_version']
p = m['cells'][0]['profile']
for k in ('available', 'sw_available', 'source', 'paranoid', 'ops', 'cycles',
          'span_cycles', 'cycles_per_op', 'phase_cycles_sum',
          'events_outside_op', 'dropped', 'phases'):
    assert k in p, f'profile cell missing {k}'
assert p['ops'] > 0, 'profile attributed no operations'
assert p['cycles'] > 0, 'profile measured no cycles'
assert p['phase_cycles_sum'] <= p['cycles'], \
    f"phase attribution {p['phase_cycles_sum']} exceeds total {p['cycles']}"
for name in ('descent', 'cas_protocol', 'helping', 'rebalance_cleanup',
             'reclamation', 'pool_alloc'):
    ph = p['phases'][name]
    for k in ('cycles', 'enters', 'share'):
        assert k in ph, f'phase {name} missing {k}'
assert p['phases']['descent']['cycles'] > 0, 'no descent time attributed'
if p['available']:
    assert 'hw' in p and 'derived' in p, 'available profile lacks hw/derived'
    assert p['hw']['cycles'] > 0, 'hw cycles claimed available but zero'
else:
    # Absent-not-zero: unavailable sections must not appear at all.
    assert 'hw' not in p and 'derived' not in p, \
        'unavailable profile still renders hw/derived sections'
    assert p['unavailable_reason'], 'no explanation for hw unavailability'
print(f"profile OK: {p['ops']} ops, {p['cycles_per_op']:.0f} "
      f"{p['source']}/op, hw={'yes' if p['available'] else 'no'} "
      f"({p.get('unavailable_reason', '')})")
EOF
for needle in efrb_profile_available efrb_profile_ops_total \
    efrb_profile_cycles_total efrb_profile_cycles_per_op \
    efrb_profile_phase_cycles_total efrb_profile_phase_enters_total \
    efrb_profile_phase_share; do
  grep -q "^# TYPE $needle " build/obs_profile.prom \
    || { echo "profile prom missing $needle"; exit 1; }
done
# The kill switch forces the cycle-stamp fallback on ANY host: the same
# command must still succeed, with available=false, an explanation, and no
# hw/sw/derived sections (absent, never zero-filled).
EFRB_PERFCTR_DISABLE=1 run ./build/tools/obs_probe --profile \
    --metrics build/obs_profile_fallback.json --duration 40 > /dev/null
python3 - <<'EOF'
import json
p = json.load(open('build/obs_profile_fallback.json'))['cells'][0]['profile']
assert p['available'] is False and p['sw_available'] is False
assert 'hw' not in p and 'sw' not in p and 'derived' not in p
assert 'EFRB_PERFCTR_DISABLE' in p['unavailable_reason'], \
    p['unavailable_reason']
assert p['ops'] > 0 and p['phase_cycles_sum'] <= p['cycles']
print(f"profile fallback OK: {p['unavailable_reason']}")
EOF

echo "=== perfdiff: snapshot regression pipeline ==="
# Identity: a snapshot diffed against itself must compare clean (exit 0).
run ./build/tools/efrb_perfdiff BENCH_throughput.json BENCH_throughput.json \
    > /dev/null
# Sensitivity: a doctored copy with every throughput halved must be flagged
# (exit 1) and rendered as REGRESSED rows.
python3 - <<'EOF'
import json
doc = json.load(open('BENCH_throughput.json'))
for c in doc['cells']:
    c['result']['mops'] /= 2.0
json.dump(doc, open('build/bench_doctored.json', 'w'))
EOF
set +e
./build/tools/efrb_perfdiff BENCH_throughput.json build/bench_doctored.json \
    > build/perfdiff_doctored.txt
diff_rc=$?
set -e
[[ "$diff_rc" -eq 1 ]] \
  || { echo "perfdiff missed the doctored 2x regression (exit $diff_rc)"; exit 1; }
grep -q 'REGRESSED' build/perfdiff_doctored.txt \
  || { echo "perfdiff table has no REGRESSED rows"; exit 1; }
# Drift vs the checked-in snapshot (advisory): the smoke run above uses
# short 20 ms cells and may come from a different machine than the archived
# snapshot, so a swing only warns; EFRB_PERFDIFF_STRICT=1 enforces it.
set +e
./build/tools/efrb_perfdiff --allow-cross-host \
    BENCH_throughput.json build/bench_throughput_smoke.json \
    > build/perfdiff_drift.txt
drift_rc=$?
set -e
if [[ "$drift_rc" -eq 1 ]]; then
  if [[ "${EFRB_PERFDIFF_STRICT:-0}" == "1" ]]; then
    cat build/perfdiff_drift.txt
    echo "perf drift vs checked-in snapshot (EFRB_PERFDIFF_STRICT=1)"
    exit 1
  fi
  echo "WARNING: perf drift vs checked-in snapshot (advisory: short smoke" \
       "cells; set EFRB_PERFDIFF_STRICT=1 to enforce)"
  grep 'REGRESSED' build/perfdiff_drift.txt || true
elif [[ "$drift_rc" -ne 0 ]]; then
  cat build/perfdiff_drift.txt
  echo "perfdiff drift comparison errored (exit $drift_rc)"
  exit 1
fi
echo "perfdiff OK: identical clean, doctored flagged, drift advisory"

echo "=== postmortem: abort-injected flight dump must decode ==="
# obs_probe --abort raises SIGABRT after the run; the installed flight
# handler must leave a decodable black box behind (signal-safe write path),
# and efrb_postmortem must reconstruct gauges, the progress table, and the
# per-thread timelines from it.
rm -f build/obs_crash.bin
set +e
./build/tools/obs_probe --ms 60 --abort --flight build/obs_crash.bin \
    > /dev/null 2>&1
probe_rc=$?
set -e
[[ "$probe_rc" -ne 0 ]] \
  || { echo "obs_probe --abort exited 0 (expected a SIGABRT death)"; exit 1; }
[[ -s build/obs_crash.bin ]] \
  || { echo "flight handler wrote no dump"; exit 1; }
run ./build/tools/efrb_postmortem build/obs_crash.bin > build/postmortem.txt
for needle in 'flight dump v1' 'gauges' 'progress table' \
    'per-thread timeline' 'inferred help graph'; do
  grep -q "$needle" build/postmortem.txt \
    || { echo "efrb_postmortem output missing '$needle'"; exit 1; }
done
echo "postmortem OK: exit $probe_rc, $(wc -c < build/obs_crash.bin) byte dump"

if [[ "$FAST" == "0" ]]; then
  echo "=== ASan + UBSan ==="
  run cmake -B build-asan -G Ninja -DEFRB_BUILD_BENCH=OFF -DEFRB_BUILD_EXAMPLES=OFF \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
  run cmake --build build-asan
  run ctest --test-dir build-asan --output-on-failure --timeout 600

  echo "=== TSan ==="
  run cmake -B build-tsan -G Ninja -DEFRB_BUILD_BENCH=OFF -DEFRB_BUILD_EXAMPLES=OFF \
      -DEFRB_SANITIZE_THREAD=ON
  run cmake --build build-tsan
  run ctest --test-dir build-tsan --output-on-failure --timeout 900

  echo "=== TSan + forced stats (kCountStats=true shards under the race detector) ==="
  # EFRB_TEST_FORCE_STATS switches the concurrent suites to StatsTraits so the
  # per-handle stat shards and the shared counter block race under TSan too.
  run cmake -B build-tsan-stats -G Ninja -DEFRB_BUILD_BENCH=OFF -DEFRB_BUILD_EXAMPLES=OFF \
      -DEFRB_SANITIZE_THREAD=ON \
      -DCMAKE_CXX_FLAGS="-DEFRB_TEST_FORCE_STATS"
  run cmake --build build-tsan-stats
  run ctest --test-dir build-tsan-stats --output-on-failure --timeout 900 \
      -R 'Handle|Stats|Concurrent|Chaos'

  echo "=== allocation: pooled configuration under ASan/TSan + A/B throughput gate ==="
  # EFRB_TEST_POOLED switches the concurrent suites to PooledTraits, so every
  # schedule also exercises the ObjectPool (per-handle caches, the global
  # free list, retire-to-pool through the reclaimers) under both sanitizers.
  # The alloc_test suite (pool unit + differential + fault-injection cells)
  # rides along in the same builds.
  run cmake -B build-asan-pooled -G Ninja -DEFRB_BUILD_BENCH=OFF -DEFRB_BUILD_EXAMPLES=OFF \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -DEFRB_TEST_POOLED" \
      -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
  run cmake --build build-asan-pooled --target alloc_test core_concurrent_test
  run ./build-asan-pooled/tests/alloc_test --gtest_color=no
  run ./build-asan-pooled/tests/core_concurrent_test --gtest_color=no
  run cmake -B build-tsan-pooled -G Ninja -DEFRB_BUILD_BENCH=OFF -DEFRB_BUILD_EXAMPLES=OFF \
      -DEFRB_SANITIZE_THREAD=ON \
      -DCMAKE_CXX_FLAGS="-DEFRB_TEST_POOLED"
  run cmake --build build-tsan-pooled --target alloc_test core_concurrent_test
  run ./build-tsan-pooled/tests/alloc_test --gtest_color=no \
      --gtest_filter='-BlockPoolDeathTest.*'  # fork-based death test under TSan is unreliable
  run ./build-tsan-pooled/tests/core_concurrent_test --gtest_color=no
  # A/B gate: the redesigned default (pooled + lean find) must not regress
  # below the heap baseline on the uniform read-mostly cell (E1c). Summed
  # over thread counts to average scheduler noise.
  EFRB_BENCH_MS="${EFRB_ALLOC_GATE_MS:-60}" run ./build/bench/bench_throughput \
      --json build/alloc_gate.json > /dev/null
  python3 - <<'EOF'
import json
cells = json.load(open('build/alloc_gate.json'))['cells']
def total(name):
    t = sum(c['result']['mops'] for c in cells if c['name'] == name)
    assert t > 0, f'no {name} cells in alloc ablation output'
    return t
heap_full = total('alloc:heap+fullsearch')
heap_lean = total('alloc:heap+lean')
pool_lean = total('alloc:pooled+lean')
total('alloc:pooled+fullsearch')  # presence check for the full 2x2 grid
print(f'alloc gate: heap+full={heap_full:.2f} heap+lean={heap_lean:.2f} '
      f'pooled+lean={pool_lean:.2f} summed Mops over thread counts')
assert pool_lean >= 0.95 * heap_lean, (
    f'pooled allocation regressed below the heap baseline on the same read '
    f'path: {pool_lean:.2f} < 0.95 * {heap_lean:.2f}')
assert pool_lean >= 0.95 * heap_full, (
    f'redesigned default (pooled+lean) lost to the pre-redesign baseline '
    f'(heap+fullsearch): {pool_lean:.2f} < 0.95 * {heap_full:.2f}')
print('alloc gate OK')
EOF

  echo "=== balanced tree: chromatic suites under the pooled sanitizer builds + balance gate ==="
  # The plain ASan/TSan ctest sweeps above already run the chromatic suites;
  # here the same suites additionally run with -DEFRB_TEST_POOLED (every
  # schedule through the ObjectPool, including pooled ScxRecord recycling)
  # under both sanitizers.
  run cmake --build build-asan-pooled --target chromatic_test chromatic_concurrent_test
  run ./build-asan-pooled/tests/chromatic_test --gtest_color=no
  run ./build-asan-pooled/tests/chromatic_concurrent_test --gtest_color=no
  run cmake --build build-tsan-pooled --target chromatic_test chromatic_concurrent_test
  run ./build-tsan-pooled/tests/chromatic_test --gtest_color=no
  run ./build-tsan-pooled/tests/chromatic_concurrent_test --gtest_color=no
  # A/B gate over the E1d balance ablation: the chromatic tree must crush the
  # EFRB tree on its pathological input (sorted insert: the vine vs O(log n)
  # rebalancing) while paying at most 10% rent on the uniform balanced mix.
  # Summed over thread counts to average scheduler noise. Wall-clock ratios
  # from short runs are still noisy on loaded or heterogeneous machines, so
  # the thresholds are ADVISORY by default (a miss prints a warning, the
  # pipeline continues); EFRB_BALANCE_GATE_STRICT=1 enforces them, with one
  # longer-run retry first so a scheduler hiccup alone cannot fail CI.
  # EFRB_BENCH_SEED pins the key/op streams; with the fixed-op cells below the
  # A/B pair then does IDENTICAL work and the ratio is a property of the trees,
  # not of where the duration timer happened to cut each run off.
  balance_bench() {
    EFRB_BENCH_MS="$1" EFRB_BENCH_SEED=1234 run ./build/bench/bench_throughput \
        --json build/balance_gate.json > /dev/null
  }
  balance_eval() {
    python3 - <<'EOF'
import json
cells = json.load(open('build/balance_gate.json'))['cells']
def total(name):
    t = sum(c['result']['mops'] for c in cells if c['name'] == name)
    assert t > 0, f'no {name} cells in balance ablation output'
    return t
sorted_ratio = (total('balance:sorted-insert chromatic')
                / total('balance:sorted-insert efrb'))
# The uniform-rent gate reads the FIXED-OP cells (balance:uniform-ops ...):
# both trees execute the same pinned-seed op stream to completion, so the
# ratio compares time-per-identical-work instead of whatever each tree got
# done before a wall clock expired. That basis is much tighter run-to-run
# (observed ~0.80-0.84 vs 0.90-0.97 spread for the duration cells) but sits
# lower, because equal work makes the chromatic tree pay for its rebalancing
# ops rather than silently doing fewer of them; hence >= 0.75, not >= 0.9.
uniform_ratio = (total('balance:uniform-ops chromatic')
                 / total('balance:uniform-ops efrb'))
total('balance:uniform chromatic')  # presence checks for the full grid
total('balance:zipf chromatic')
print(f'balance gate: sorted-insert {sorted_ratio:.1f}x, '
      f'uniform-ops {uniform_ratio:.2f}x (chromatic/efrb, summed over threads)')
assert sorted_ratio >= 5.0, (
    f'chromatic tree lost its reason to exist: only {sorted_ratio:.1f}x over '
    f'EFRB on sorted insert (gate: >= 5x)')
assert uniform_ratio >= 0.75, (
    f'chromatic rebalancing rent too high on the uniform fixed-op mix: '
    f'{uniform_ratio:.2f}x of EFRB (gate: >= 0.75x)')
print('balance gate OK')
EOF
  }
  balance_bench "${EFRB_BALANCE_GATE_MS:-120}"  # a bench crash stays fatal
  if balance_eval; then
    :
  elif [[ "${EFRB_BALANCE_GATE_STRICT:-0}" == "1" ]]; then
    echo "balance gate missed on the short run; retrying with a longer run"
    balance_bench "${EFRB_BALANCE_GATE_MS_RETRY:-600}"
    balance_eval
  else
    echo "WARNING: balance gate below thresholds (advisory on this machine;" \
         "set EFRB_BALANCE_GATE_STRICT=1 to enforce)"
  fi

  echo "=== sharded front end: suites under both sanitizers + advisory scaling gate ==="
  # The sharded suites (routing, tree-of-trees surface, ordered oracle,
  # balance scoring, mixed-op storms) and the sharded linearizability burst
  # replays run under the pooled ASan and TSan builds, so cross-shard handle
  # affinity and per-shard reclaimer plumbing face both sanitizers with the
  # ObjectPool in the loop.
  run cmake --build build-asan-pooled --target sharded_map_test map_lincheck_test
  run ./build-asan-pooled/tests/sharded_map_test --gtest_color=no
  run ./build-asan-pooled/tests/map_lincheck_test --gtest_color=no \
      --gtest_filter='ShardedMapLinearizabilityTest.*'
  run cmake --build build-tsan-pooled --target sharded_map_test map_lincheck_test
  run ./build-tsan-pooled/tests/sharded_map_test --gtest_color=no
  run ./build-tsan-pooled/tests/map_lincheck_test --gtest_color=no \
      --gtest_filter='ShardedMapLinearizabilityTest.*'
  # Scaling gate over the E1e shard ablation (fixed-op, pinned-seed cells from
  # the smoke --json above): the best sharded 16-thread configuration should
  # beat the single tree by >= 1.5x once real cores back the threads. ADVISORY
  # always — on a single-CPU host every shard count bottoms out at the same
  # core and the ratio is ~1x by construction, which is not a code defect.
  python3 - <<'EOF' || echo "WARNING: sharded scaling gate below threshold" \
      "(advisory: expected on hosts without enough cores)"
import json
cells = json.load(open('build/bench_throughput_smoke.json'))['cells']
def mops(name):
    t = sum(c['result']['mops'] for c in cells if c['name'] == name)
    assert t > 0, f'no {name} cells in shard ablation output'
    return t
single = mops('shard:single')
best_n, best = max(
    ((n, mops(f'shard:uniform s={n}')) for n in (2, 4, 8, 16)),
    key=lambda p: p[1])
print(f'sharded gate: single {single:.2f} Mops, best sharded {best:.2f} Mops '
      f'(s={best_n}) -> {best / single:.2f}x at 16 threads')
assert best >= 1.5 * single
print('sharded gate OK')
EOF

  echo "=== debug-hooks instrumented build (live non-Noop on_cas/at callbacks) ==="
  # EFRB_TEST_FORCE_HOOKS switches the concurrent suites to traits whose
  # on_cas/at hooks run real code, proving every emission point in
  # protocol.hpp survives refactors (NoopTraits compiles them away).
  run cmake -B build-hooks -G Ninja -DEFRB_BUILD_BENCH=OFF -DEFRB_BUILD_EXAMPLES=OFF \
      -DCMAKE_CXX_FLAGS="-DEFRB_TEST_FORCE_HOOKS"
  run cmake --build build-hooks
  run ctest --test-dir build-hooks --output-on-failure --timeout 600 \
      -R 'Concurrent|Instrumented|StateMachine|Schedule'

  echo "=== fault injection (hooks-forced build, then TSan) ==="
  # The suite prints its chaos seed ([chaos] EFRB_FAULT_SEED=...); tee it
  # into a persistent log so a failing run can be replayed bit-for-bit with
  # EFRB_FAULT_SEED=<seed> scripts/... (set -o pipefail keeps failures fatal
  # through the tee).
  FAULT_LOG=build/fault_injection.log
  : > "$FAULT_LOG"
  run cmake --build build-hooks --target fault_injection_test
  ./build-hooks/tests/fault_injection_test --gtest_color=no 2>&1 | tee -a "$FAULT_LOG"
  run cmake --build build-tsan --target fault_injection_test
  ./build-tsan/tests/fault_injection_test --gtest_color=no 2>&1 | tee -a "$FAULT_LOG"
  echo "fault-injection output (incl. chaos seeds) saved to $FAULT_LOG"
fi

echo "ALL CHECKS PASSED"
