// Quickstart: the EFRB non-blocking BST as a concurrent set and map.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The tree is a drop-in concurrent ordered dictionary: every operation is
// linearizable and lock-free, lookups never write shared memory, and memory
// is reclaimed safely through the built-in epoch scheme — no locks anywhere.
#include <cstdio>
#include <string>

#include "core/efrb_tree.hpp"
#include "util/thread_pool.hpp"

int main() {
  std::printf("== EFRB non-blocking BST quickstart ==\n\n");

  // ---- Set usage -----------------------------------------------------
  efrb::EfrbTreeSet<int> set;
  set.insert(30);
  set.insert(10);
  set.insert(20);
  std::printf("insert 30,10,20  -> size %zu\n", set.size());
  std::printf("insert 20 again  -> %s (duplicates are rejected)\n",
              set.insert(20) ? "true" : "false");
  std::printf("contains 10      -> %s\n", set.contains(10) ? "yes" : "no");
  std::printf("erase 10         -> %s\n", set.erase(10) ? "ok" : "absent");
  std::printf("min/max          -> %d / %d\n", *set.min_key(), *set.max_key());

  std::printf("in-order keys    -> ");
  set.for_each([](const int& k, const auto&) { std::printf("%d ", k); });
  std::printf("\n\n");

  // ---- Ordered navigation --------------------------------------------
  efrb::EfrbTreeSet<int> ordered;
  for (int k : {10, 20, 30, 40}) ordered.insert(k);
  std::printf("find_ge(25)      -> %d (lower bound)\n", *ordered.find_ge(25));
  std::printf("find_lt(25)      -> %d (strict predecessor)\n",
              *ordered.find_lt(25));
  std::printf("range [15, 35]   -> ");
  ordered.range(15, 35, [](const int& k, const auto&) { std::printf("%d ", k); });
  std::printf("(%zu keys)\n\n", ordered.count_range(15, 35));

  // ---- Map usage (auxiliary data stored in leaves, paper §3) ---------
  efrb::EfrbTreeMap<std::string, int> inventory;
  inventory.insert("apples", 12);
  inventory.insert("pears", 7);
  inventory.insert_or_assign("apples", 15);  // restock: replace the value
  inventory.replace("pears", 7, 9);          // atomic compare-and-replace
  std::printf("inventory[apples] = %d\n", inventory.get("apples").value());
  std::printf("inventory[pears]  = %d (after value-CAS 7 -> 9)\n",
              inventory.get("pears").value());
  std::printf("inventory[plums]  = %s\n",
              inventory.get("plums").has_value() ? "?" : "(none)");

  // ---- Concurrency: per-thread handles on the hot path ---------------
  // tree.handle() returns a thread-affine access point that amortizes the
  // reclaimer registration once per thread instead of per operation (the
  // tree-level methods above remain valid from any thread — they are
  // convenience wrappers that re-resolve a thread_local lease each call).
  efrb::EfrbTreeSet<long> shared;
  efrb::run_threads(4, [&](std::size_t tid) {
    auto h = shared.handle();  // one handle per worker thread
    // Each thread inserts a disjoint stripe; no locks, no interference
    // (updates to different parts of the tree run completely concurrently).
    for (long i = 0; i < 10000; ++i) {
      h.insert(static_cast<long>(tid) * 10000 + i);
    }
  });
  std::printf("\n4 threads inserted 40000 distinct keys -> size %zu\n",
              shared.size());

  const auto v = shared.validate();
  std::printf("structural validation: %s (height %zu, %zu internal nodes)\n",
              v.ok ? "OK" : v.error.c_str(), v.height, v.internals);
  return v.ok ? 0 : 1;
}
