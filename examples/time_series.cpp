// Example: a sliding-window time-series index.
//
// Telemetry producers insert (timestamp -> measurement) points; a dashboard
// thread continuously aggregates the most recent window with range();
// a retention thread expires old points by walking them with find_ge and
// erasing. This is the ordered-dictionary workload (range scans + ordered
// navigation + concurrent inserts and deletes) that motivates using a search
// TREE rather than a hash map — and it runs entirely lock-free.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/efrb_tree.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using Timestamp = std::uint64_t;  // microseconds, synthetic
using Index = efrb::EfrbTreeMap<Timestamp, double>;

constexpr Timestamp kRetention = 50'000;  // keep the trailing 50ms of points

}  // namespace

int main() {
  Index index;
  std::atomic<Timestamp> now{1'000'000};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> produced{0}, expired{0}, windows{0};
  std::atomic<std::uint64_t> bad_windows{0};

  efrb::run_threads(4, [&](std::size_t tid) {
    if (tid < 2) {
      // Producers: monotonically increasing timestamps, jittered per thread.
      efrb::Xoshiro256 rng(tid + 1);
      auto h = index.handle();  // per-thread handle for the insert hot loop
      for (int i = 0; i < 30000; ++i) {
        const Timestamp t =
            now.fetch_add(1 + rng.next_below(3), std::memory_order_relaxed);
        h.insert(t, static_cast<double>(rng.next_below(1000)) / 10.0);
        produced.fetch_add(1, std::memory_order_relaxed);
      }
      if (tid == 0) stop.store(true);
    } else if (tid == 2) {
      // Dashboard: aggregate the last 10ms window. Every point it sees must
      // lie inside the requested interval (range() never invents keys).
      while (!stop.load(std::memory_order_relaxed)) {
        const Timestamp hi = now.load(std::memory_order_relaxed);
        const Timestamp lo = hi > 10'000 ? hi - 10'000 : 0;
        double sum = 0;
        std::size_t n = 0;
        bool in_bounds = true;
        index.range(lo, hi, [&](const Timestamp& t, const double& v) {
          if (t < lo || t > hi) in_bounds = false;
          sum += v;
          ++n;
        });
        if (!in_bounds) bad_windows.fetch_add(1, std::memory_order_relaxed);
        windows.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      // Retention: expire points older than now - kRetention. Ordered
      // navigation (min_key) stays on the tree; the erase hot path goes
      // through a handle.
      auto h = index.handle();
      while (!stop.load(std::memory_order_relaxed)) {
        const Timestamp cutoff =
            now.load(std::memory_order_relaxed) - kRetention;
        // Walk the oldest points via ordered navigation and erase them.
        for (int batch = 0; batch < 64; ++batch) {
          const auto oldest = index.min_key();
          if (!oldest.has_value() || *oldest >= cutoff) break;
          if (h.erase(*oldest)) {
            expired.fetch_add(1, std::memory_order_relaxed);
          }
        }
        std::this_thread::yield();
      }
    }
  });

  // Final retention sweep, then report.
  const Timestamp cutoff = now.load() - kRetention;
  while (const auto oldest = index.min_key()) {
    if (*oldest >= cutoff) break;
    if (index.erase(*oldest)) expired.fetch_add(1);
  }

  std::printf("== lock-free time-series index ==\n");
  std::printf("points produced:   %llu\n",
              static_cast<unsigned long long>(produced.load()));
  std::printf("points expired:    %llu (retention %llu us)\n",
              static_cast<unsigned long long>(expired.load()),
              static_cast<unsigned long long>(kRetention));
  std::printf("windows aggregated:%llu (out-of-bounds points: %llu — must "
              "be 0)\n",
              static_cast<unsigned long long>(windows.load()),
              static_cast<unsigned long long>(bad_windows.load()));
  std::printf("resident points:   %zu, oldest %llu, newest %llu\n",
              index.size(),
              static_cast<unsigned long long>(index.min_key().value_or(0)),
              static_cast<unsigned long long>(index.max_key().value_or(0)));
  const bool ok = bad_windows.load() == 0 && index.validate().ok &&
                  index.min_key().value_or(cutoff) >= cutoff;
  std::printf("validation:        %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
