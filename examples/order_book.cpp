// Example: a price-level order book on two EFRB tree maps.
//
// An exchange keeps resting liquidity as (price -> quantity) levels: bids and
// asks. Market-data threads stream level updates (insert / replace / delete)
// while trading threads continuously read the best bid and best ask — the
// ordered-dictionary queries (max_key / min_key) the tree supports
// linearizably via its leftmost/rightmost search paths.
//
// The invariant checked throughout: fenced book integrity — sentinel levels
// at the extremes are never crossed, and best-bid <= best-ask fences hold
// (with the churn confined strictly between the fences, every linearizable
// read must see the fence prices as the extremes' bounds).
#include <atomic>
#include <cstdio>
#include <thread>

#include "core/efrb_tree.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using Price = std::uint64_t;  // integer ticks
using Qty = std::uint64_t;
using Book = efrb::EfrbTreeMap<Price, Qty>;

constexpr Price kBidFence = 10'000;   // a resting bid that never cancels
constexpr Price kAskFence = 20'000;   // a resting ask that never cancels

}  // namespace

int main() {
  Book bids, asks;
  bids.insert(kBidFence, 100);
  asks.insert(kAskFence, 100);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> updates{0}, quotes{0}, violations{0};

  // 2 market-data writers + 2 quoting readers.
  efrb::run_threads(4, [&](std::size_t tid) {
    efrb::Xoshiro256 rng(tid * 31 + 7);
    if (tid < 2) {
      // Market data: add/replace/cancel levels strictly inside the fences.
      // One handle per book per writer thread — the hot-path access point.
      auto bid_h = bids.handle();
      auto ask_h = asks.handle();
      for (int i = 0; i < 30000; ++i) {
        const bool bid_side = rng.next_below(2) == 0;
        auto& book = bid_side ? bid_h : ask_h;
        // Bids live in (fence-500, fence]; asks in [fence, fence+500).
        const Price px = bid_side ? kBidFence - 1 - rng.next_below(500)
                                  : kAskFence + 1 + rng.next_below(500);
        switch (rng.next_below(3)) {
          case 0: book.insert(px, 1 + rng.next_below(1000)); break;
          case 1: book.insert_or_assign(px, 1 + rng.next_below(1000)); break;
          default: book.erase(px);
        }
        updates.fetch_add(1, std::memory_order_relaxed);
      }
      if (tid == 0) stop.store(true);
    } else {
      // Quoting: read best bid (max of bids) / best ask (min of asks).
      while (!stop.load(std::memory_order_relaxed)) {
        const auto best_bid = bids.max_key();
        const auto best_ask = asks.min_key();
        quotes.fetch_add(1, std::memory_order_relaxed);
        // Fences guarantee non-empty books and bound the extremes.
        if (!best_bid || !best_ask || *best_bid < kBidFence ||
            *best_bid >= kAskFence || *best_ask > kAskFence ||
            *best_ask <= kBidFence) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });

  std::printf("== lock-free order book ==\n");
  std::printf("level updates:   %llu\n",
              static_cast<unsigned long long>(updates.load()));
  std::printf("quotes served:   %llu\n",
              static_cast<unsigned long long>(quotes.load()));
  std::printf("best bid now:    %llu (fence %llu)\n",
              static_cast<unsigned long long>(*bids.max_key()),
              static_cast<unsigned long long>(kBidFence));
  std::printf("best ask now:    %llu (fence %llu)\n",
              static_cast<unsigned long long>(*asks.min_key()),
              static_cast<unsigned long long>(kAskFence));
  std::printf("depth:           %zu bid levels / %zu ask levels\n",
              bids.size(), asks.size());
  std::printf("fence violations:%llu (must be 0 — linearizable min/max)\n",
              static_cast<unsigned long long>(violations.load()));

  const bool ok = violations.load() == 0 && bids.validate().ok &&
                  asks.validate().ok;
  std::printf("validation:      %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
