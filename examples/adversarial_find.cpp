// Example: the §6 adversarial schedule — Find is non-blocking but NOT
// wait-free.
//
// "Starting from an empty tree, one process inserts keys 1, 2 and 3 and then
//  starts a Find(2) that reaches the internal node with key 2. A second
//  process then deletes 1, re-inserts 1, deletes 3 and re-inserts 3. Then,
//  the first process advances two steps down the tree, again reaching an
//  internal node with key 2. This can be repeated ad infinitum."
//
// A Find never retries in this implementation (it walks one root-to-leaf
// path), so the adversary manifests as path GROWTH rather than looping: each
// delete/re-insert cycle can push freshly rebuilt subtrees under the reader's
// feet. This program measures how a reader's search-path length responds to
// an adversarial updater, and shows that (a) the reader always terminates —
// non-blocking — while (b) the adversary controls how much work each Find
// must do, which is exactly why §6 asks whether Find can be made wait-free.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/efrb_tree.hpp"
#include "util/stats.hpp"

int main() {
  efrb::EfrbTreeSet<int> tree;
  for (int k : {1, 2, 3}) tree.insert(k);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> finds{0};
  efrb::Summary find_ns;

  std::thread reader([&] {
    find_ns.reserve(1 << 20);
    auto h = tree.handle();  // handle path: no per-call registry lookup
    while (!stop.load(std::memory_order_relaxed)) {
      const auto t0 = std::chrono::steady_clock::now();
      const bool present = h.contains(2);
      const auto t1 = std::chrono::steady_clock::now();
      if (!present) {
        std::fprintf(stderr, "key 2 vanished — impossible\n");
        std::abort();
      }
      find_ns.add(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
      finds.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // The §6 adversary: delete 1, re-insert 1, delete 3, re-insert 3, forever.
  auto adv = tree.handle();
  std::uint64_t cycles = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 <
         std::chrono::milliseconds(400)) {
    adv.erase(1);
    adv.insert(1);
    adv.erase(3);
    adv.insert(3);
    ++cycles;
  }
  stop.store(true);
  reader.join();

  std::printf("== §6 adversarial Find schedule ==\n");
  std::printf("adversary cycles (del/ins 1 and 3): %llu\n",
              static_cast<unsigned long long>(cycles));
  std::printf("Find(2) calls completed:            %llu  "
              "(non-blocking: every call terminated)\n",
              static_cast<unsigned long long>(finds.load()));
  std::printf("Find(2) latency: mean %.0f ns, p50 %.0f ns, p99 %.0f ns, "
              "max %.0f ns\n",
              find_ns.mean(), find_ns.percentile(50), find_ns.percentile(99),
              find_ns.percentile(100));
  std::printf("\nThe p99/max tail is the adversary's doing: each cycle can "
              "force the reader\nthrough freshly built subtrees. Find is "
              "lock-free here, not wait-free — the\nopen question the paper "
              "poses in §6.\n");

  const auto v = tree.validate();
  std::printf("\nfinal tree: {1,2,3} back in place, validation %s\n",
              v.ok ? "OK" : v.error.c_str());
  return v.ok && tree.contains(1) && tree.contains(2) && tree.contains(3) ? 0
                                                                          : 1;
}
