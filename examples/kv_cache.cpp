// Example: a concurrent memoization cache on top of EfrbTreeMap.
//
// Scenario (the workload §1 motivates — a shared dictionary under mixed
// read/write load): worker threads compute an expensive pure function
// (here: a deliberately slow digest) and memoize results in a shared,
// lock-free map. Readers never block writers and vice versa; keys are evicted
// by a janitor thread (erase) while lookups continue.
//
// Demonstrates: get / insert / erase under real concurrency, the non-blocking
// property doing useful work (no reader-writer lock tuning), and safe memory
// reclamation while other threads hold references.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/efrb_tree.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

/// Deliberately expensive pure function: iterated xorshift digest.
std::uint64_t slow_digest(std::uint64_t x) {
  for (int i = 0; i < 4000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

}  // namespace

int main() {
  efrb::EfrbTreeMap<std::uint64_t, std::uint64_t> cache;
  std::atomic<std::uint64_t> hits{0}, misses{0}, evictions{0};
  std::atomic<bool> stop{false};

  constexpr std::size_t kWorkers = 4;
  constexpr std::uint64_t kKeySpace = 512;  // hot set small enough to cache

  std::thread janitor([&] {
    // Continuously evicts random keys, forcing re-computation and exercising
    // deletion (and reclamation) concurrently with lookups.
    efrb::Xoshiro256 rng(999);
    auto h = cache.handle();  // per-thread handle: registration paid once
    while (!stop.load(std::memory_order_relaxed)) {
      if (h.erase(rng.next_below(kKeySpace))) {
        evictions.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });

  const auto t0 = std::chrono::steady_clock::now();
  efrb::run_threads(kWorkers, [&](std::size_t tid) {
    efrb::Xoshiro256 rng(tid + 1);
    auto h = cache.handle();
    for (int i = 0; i < 20000; ++i) {
      const std::uint64_t key = rng.next_below(kKeySpace);
      if (const auto cached = h.get(key)) {
        hits.fetch_add(1, std::memory_order_relaxed);
        // Memoized values must be the true function value, always.
        if (*cached != slow_digest(key ^ 0x5bd1e995)) {
          std::fprintf(stderr, "CACHE CORRUPTION at key %llu\n",
                       static_cast<unsigned long long>(key));
          std::abort();
        }
      } else {
        misses.fetch_add(1, std::memory_order_relaxed);
        h.insert(key, slow_digest(key ^ 0x5bd1e995));
      }
    }
  });
  stop.store(true);
  janitor.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto total = hits.load() + misses.load();
  std::printf("== lock-free memoization cache ==\n");
  std::printf("workers:     %zu over %llu keys\n", kWorkers,
              static_cast<unsigned long long>(kKeySpace));
  std::printf("lookups:     %llu (%.1f%% hit rate)\n",
              static_cast<unsigned long long>(total),
              100.0 * static_cast<double>(hits.load()) /
                  static_cast<double>(total));
  std::printf("evictions:   %llu (concurrent janitor)\n",
              static_cast<unsigned long long>(evictions.load()));
  std::printf("final size:  %zu entries\n", cache.size());
  std::printf("elapsed:     %.2fs; every hit re-verified against the pure "
              "function\n", secs);

  const auto v = cache.validate();
  std::printf("validation:  %s\n", v.ok ? "OK" : v.error.c_str());
  return v.ok ? 0 : 1;
}
