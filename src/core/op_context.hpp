// The per-operation execution context and the statistics substrate shared by
// every layer of the core (and reused by the baseline structures).
//
// OpContext bundles the three per-operation concerns that used to be threaded
// through the tree as a per-method `template <typename RT>`:
//
//   * the retire sink — either an explicit reclaimer Attachment (the
//     per-thread handle fast path) or the reclaimer itself (thread_local
//     lease fallback). One context type per structure instantiation, so the
//     handle path and the tree-level path drive the SAME instantiation of
//     search/protocol/ordered code rather than two parallel ones.
//   * the stat counters — a cacheline-padded per-handle shard, or the
//     structure's shared block, or null when stats are disabled (all counting
//     is compiled out when kCount is false).
//   * retry pacing — optional per-handle truncated-exponential backoff
//     (null on the tree-level path, folding retry_pause() away).
//
// The stats model: StatCounters is the relaxed-atomic write side; TreeStats
// is the plain snapshot/report side. Handles count into a StatShard from a
// ShardPool so stats-enabled counting never contends on a shared line;
// a released shard keeps its counts (lifetime totals) and the next handle to
// recycle it simply keeps adding.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "core/alloc.hpp"
#include "core/debug_hooks.hpp"
#include "util/assert.hpp"
#include "util/backoff.hpp"
#include "util/cacheline.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace efrb {

namespace detail {
/// Empty mapped type for set semantics; occupies no leaf storage. Shared by
/// every map facade's `*Set` alias (EfrbTreeSet, ChromaticTreeSet, ...).
struct Unit {
  friend bool operator==(Unit, Unit) noexcept { return true; }
};
}  // namespace detail

/// Relaxed per-structure operation counters, collected when
/// Traits::kCountStats. The per-CasStep arrays give benchmarks a
/// protocol-step breakdown (attempts and failed CAS per step of Fig. 4)
/// without custom hook traits; see report.hpp for the table formatter.
struct TreeStats {
  std::uint64_t insert_attempts = 0;  // iflag CAS attempts
  std::uint64_t insert_retries = 0;   // extra Search rounds inside Insert
  std::uint64_t delete_attempts = 0;  // dflag CAS attempts
  std::uint64_t delete_retries = 0;   // extra Search rounds inside Delete
  std::uint64_t helps = 0;            // Help() dispatches on a non-Clean word
  std::uint64_t backtracks = 0;       // successful backtrack CAS steps
  // Descent-depth telemetry (levels walked root->leaf, sampled at every
  // counted descent) — the measurable form of the balance claim: EFRB depth
  // collapses to O(n) under sorted keys, the chromatic tree holds O(log n).
  std::uint64_t depth_total = 0;    // sum of sampled descent depths
  std::uint64_t depth_samples = 0;  // number of sampled descents
  std::uint64_t depth_max = 0;      // deepest sampled descent
  std::uint64_t rotations = 0;      // committed rebalancing transactions
  // Chromatic cleanup passes that hit kMaxCleanupRounds and gave up with a
  // violation still parked on their search path (re-armed for a later op to
  // drain; see core/chromatic.hpp). Nonzero values are a contention signal,
  // not corruption — path sums stay valid, only balance is relaxed.
  std::uint64_t cleanup_abandoned = 0;
  std::array<std::uint64_t, kNumCasSteps> cas_attempts{};  // per CasStep
  std::array<std::uint64_t, kNumCasSteps> cas_failures{};  // failed CAS per step

  double depth_avg() const noexcept {
    return depth_samples == 0
               ? 0.0
               : static_cast<double>(depth_total) /
                     static_cast<double>(depth_samples);
  }
};

/// Atomic write side of TreeStats. All increments are relaxed: the counters
/// are diagnostics, never synchronization.
struct StatCounters {
  std::atomic<std::uint64_t> insert_attempts{0};
  std::atomic<std::uint64_t> insert_retries{0};
  std::atomic<std::uint64_t> delete_attempts{0};
  std::atomic<std::uint64_t> delete_retries{0};
  std::atomic<std::uint64_t> helps{0};
  std::atomic<std::uint64_t> backtracks{0};
  std::atomic<std::uint64_t> depth_total{0};
  std::atomic<std::uint64_t> depth_samples{0};
  std::atomic<std::uint64_t> depth_max{0};
  std::atomic<std::uint64_t> rotations{0};
  std::atomic<std::uint64_t> cleanup_abandoned{0};
  std::array<std::atomic<std::uint64_t>, kNumCasSteps> cas_attempts{};
  std::array<std::atomic<std::uint64_t>, kNumCasSteps> cas_failures{};
};

inline void accumulate(TreeStats& s, const StatCounters& c) noexcept {
  s.insert_attempts += c.insert_attempts.load(std::memory_order_relaxed);
  s.insert_retries += c.insert_retries.load(std::memory_order_relaxed);
  s.delete_attempts += c.delete_attempts.load(std::memory_order_relaxed);
  s.delete_retries += c.delete_retries.load(std::memory_order_relaxed);
  s.helps += c.helps.load(std::memory_order_relaxed);
  s.backtracks += c.backtracks.load(std::memory_order_relaxed);
  s.depth_total += c.depth_total.load(std::memory_order_relaxed);
  s.depth_samples += c.depth_samples.load(std::memory_order_relaxed);
  const std::uint64_t dm = c.depth_max.load(std::memory_order_relaxed);
  if (dm > s.depth_max) s.depth_max = dm;
  s.rotations += c.rotations.load(std::memory_order_relaxed);
  s.cleanup_abandoned += c.cleanup_abandoned.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kNumCasSteps; ++i) {
    s.cas_attempts[i] += c.cas_attempts[i].load(std::memory_order_relaxed);
    s.cas_failures[i] += c.cas_failures[i].load(std::memory_order_relaxed);
  }
}

/// Merge one plain snapshot into another (sums; depth_max by maximum). The
/// sharded facade folds per-shard stats_snapshot() results through this.
inline void accumulate(TreeStats& s, const TreeStats& o) noexcept {
  s.insert_attempts += o.insert_attempts;
  s.insert_retries += o.insert_retries;
  s.delete_attempts += o.delete_attempts;
  s.delete_retries += o.delete_retries;
  s.helps += o.helps;
  s.backtracks += o.backtracks;
  s.depth_total += o.depth_total;
  s.depth_samples += o.depth_samples;
  if (o.depth_max > s.depth_max) s.depth_max = o.depth_max;
  s.rotations += o.rotations;
  s.cleanup_abandoned += o.cleanup_abandoned;
  for (std::size_t i = 0; i < kNumCasSteps; ++i) {
    s.cas_attempts[i] += o.cas_attempts[i];
    s.cas_failures[i] += o.cas_failures[i];
  }
}

/// s -= base, fieldwise. Used to report a handle's own share out of a
/// recycled shard whose counts are lifetime totals.
inline void subtract(TreeStats& s, const TreeStats& base) noexcept {
  s.insert_attempts -= base.insert_attempts;
  s.insert_retries -= base.insert_retries;
  s.delete_attempts -= base.delete_attempts;
  s.delete_retries -= base.delete_retries;
  s.helps -= base.helps;
  s.backtracks -= base.backtracks;
  s.depth_total -= base.depth_total;
  s.depth_samples -= base.depth_samples;
  // depth_max is a running maximum, not a sum — a handle's own share is not
  // recoverable by subtraction, so the lifetime maximum is reported as-is.
  s.rotations -= base.rotations;
  s.cleanup_abandoned -= base.cleanup_abandoned;
  for (std::size_t i = 0; i < kNumCasSteps; ++i) {
    s.cas_attempts[i] -= base.cas_attempts[i];
    s.cas_failures[i] -= base.cas_failures[i];
  }
}

/// One handle's private counter block, cacheline-padded inside the pool.
struct StatShard {
  StatCounters counters;
  std::atomic<bool> in_use{false};
};

/// Fixed pool of stat shards; one acquired per live handle.
struct ShardPool {
  static constexpr std::size_t kMaxHandles = 128;
  std::vector<CachePadded<StatShard>> shards;

  ShardPool() : shards(kMaxHandles) {}

  /// Bounded retry (a racing handle may be mid-release), then throws
  /// CapacityExhausted — see util/errors.hpp for the contract. Never aborts:
  /// running out of handles is a load condition, not a broken invariant.
  StatShard* acquire() {
    for (int attempt = 0; attempt < 3; ++attempt) {
      for (auto& padded : shards) {
        StatShard& s = padded.value;
        bool expected = false;
        if (!s.in_use.load(std::memory_order_relaxed) &&
            s.in_use.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
          return &s;
        }
      }
    }
    throw CapacityExhausted(
        "ShardPool: stat-shard capacity exhausted "
        "(more than kMaxHandles live handles)");
  }

  static void release(StatShard* s) noexcept {
    s->in_use.store(false, std::memory_order_release);
  }

  void accumulate_into(TreeStats& s) const noexcept {
    for (const auto& padded : shards) accumulate(s, padded.value.counters);
  }
};

/// Stats disabled: no shard storage at all; handles carry a null shard.
struct EmptyShardPool {
  StatShard* acquire() noexcept { return nullptr; }
  static void release(StatShard*) noexcept {}
  void accumulate_into(TreeStats&) const noexcept {}
};

/// Sentinel for ProgressSlot::last_step: no protocol CAS recorded yet in the
/// current operation.
inline constexpr std::uint32_t kNoStep = ~std::uint32_t{0};

/// One handle's liveness progress words, published for the watchdog
/// (obs/watchdog.hpp) to sample from its own thread. Single-writer: only the
/// owning handle's thread stores; all stores are relaxed except the op_seq
/// release that opens an operation window. The seqlock-flavoured protocol:
///
///   * op_seq odd  — an operation is in flight; start_ns/op_key were written
///     before the opening release increment, so a reader that (1) loads
///     op_seq odd with acquire, (2) reads the fields, (3) re-reads op_seq and
///     finds it unchanged has a consistent view of one in-flight operation.
///   * op_seq even — the handle is idle between operations. A sampler must
///     never flag it (the watchdog false-positive contract).
///
/// retries / last_step / help_depth mutate *during* the window (relaxed); a
/// sampler sees some recent value of each, which is exactly what a stall
/// diagnostic needs.
struct ProgressSlot {
  std::atomic<std::uint64_t> op_seq{0};
  std::atomic<std::uint64_t> op_key{kNoKey};
  std::atomic<std::uint64_t> start_ns{0};  // steady_clock since-epoch ns
  std::atomic<std::uint64_t> retries{0};   // retry_pause calls this op
  std::atomic<std::uint32_t> last_step{kNoStep};  // latest CasStep attempted
  std::atomic<std::uint32_t> help_depth{0};       // nested help dispatches
  std::atomic<unsigned> tid{kNoTid};              // owning handle id
  std::atomic<bool> in_use{false};
};

/// Fixed pool of progress slots; one acquired per live handle when the
/// structure's Traits enable kCausalTrace. Mirrors ShardPool's contract
/// (bounded retry, CapacityExhausted, released slots recycle).
struct ProgressTable {
  static constexpr std::size_t kMaxHandles = ShardPool::kMaxHandles;
  std::vector<CachePadded<ProgressSlot>> slots;

  ProgressTable() : slots(kMaxHandles) {}

  ProgressSlot* acquire(unsigned tid) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      for (auto& padded : slots) {
        ProgressSlot& s = padded.value;
        bool expected = false;
        if (!s.in_use.load(std::memory_order_relaxed) &&
            s.in_use.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
          // Fresh window for the new owner: close any stale odd seq left by
          // a handle destroyed mid-operation (exception unwind).
          if (s.op_seq.load(std::memory_order_relaxed) & 1) {
            s.op_seq.fetch_add(1, std::memory_order_relaxed);
          }
          s.tid.store(tid, std::memory_order_release);
          return &s;
        }
      }
    }
    throw CapacityExhausted(
        "ProgressTable: progress-slot capacity exhausted "
        "(more than kMaxHandles live handles)");
  }

  static void release(ProgressSlot* s) noexcept {
    if (s == nullptr) return;
    if (s->op_seq.load(std::memory_order_relaxed) & 1) {
      s->op_seq.fetch_add(1, std::memory_order_relaxed);
    }
    s->tid.store(kNoTid, std::memory_order_release);
    s->in_use.store(false, std::memory_order_release);
  }
};

/// Causal tracing disabled: no slot storage; handles carry a null slot.
struct EmptyProgressTable {
  ProgressSlot* acquire(unsigned) noexcept { return nullptr; }
  static void release(ProgressSlot*) noexcept {}
};

/// Distinct splitmix-derived seed per handle (never thread-id based; see the
/// skiplist level-RNG bug this repository once had).
inline std::uint64_t next_handle_seed() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  SplitMix64 sm(0x8f1bbcdcbfa53e0bULL +
                counter.fetch_add(1, std::memory_order_relaxed));
  return sm.next();
}

/// The single per-operation context threaded through search / protocol /
/// ordered code. Resolved statically — no virtual dispatch; the only dynamic
/// decision is the retire-sink branch, taken once per (rare) retire call.
///
/// kTrackKeys (default off) enables key attribution: the protocol layer calls
/// set_op_key() at each operation entry and forwards op_key() into every hook
/// emission, so key-aware traits (obs/heatmap.hpp) can bucket contention
/// events by key range. When off, set_op_key is a no-op and op_key() folds to
/// the kNoKey constant — the uninstrumented path carries no key state.
///
/// Alloc (default HeapAllocator) is the NodeAllocatorPolicy the operation
/// allocates through: make<T>/dispose<T> replace bare new/delete in the
/// structure layers. With the heap default both fold to new/delete and the
/// context carries no allocator state at all (the pointers below stay null
/// and are never read); a pooled context routes through the allocator's
/// thread-affine Cache.
/// kCausal (default off) additionally maintains the handle's ProgressSlot
/// across the operation (seq window, key, retries, last CAS step, help
/// depth) and exposes owner() — the packed {tid, op_seq} stamp the protocol
/// layers write into Info/ScxRecord records for help-chain attribution
/// (obs/causal.hpp). With kCausal false every progress touch folds away and
/// the context carries no slot pointer, keeping the uninstrumented
/// instantiation byte-identical to the pre-causality code.
template <typename Reclaimer, bool kCount, bool kTrackKeys = false,
          typename Alloc = HeapAllocator, bool kCausal = false>
class OpContext {
 public:
  using Attachment = typename Reclaimer::Attachment;
  using AllocT = Alloc;
  using AllocCache = typename Alloc::Cache;

  /// Whether this context counts statistics — lets the structure layers skip
  /// preparing inputs (e.g. the descent-depth out-counter) that count_*()
  /// would discard anyway.
  static constexpr bool kCounts = kCount;

  /// Context for structure-level convenience methods: retires through the
  /// reclaimer's thread_local lease, counts into the shared block, no
  /// backoff (matching the pre-handle behaviour exactly). No per-thread
  /// identity: hooks see kNoTid. Allocator defaults to null — required
  /// (and supplied by the facade) only when Alloc::kPooled.
  static OpContext tree_level(Reclaimer& r, StatCounters* counters,
                              Alloc* alloc = nullptr,
                              AllocCache* cache = nullptr) noexcept {
    OpContext ctx;
    ctx.rec_ = &r;
    ctx.counters_ = counters;
    ctx.alloc_ = alloc;
    ctx.cache_ = cache;
    return ctx;
  }

  /// Context for a per-thread handle: retires through the handle's
  /// attachment, counts into its shard, paces retries with its backoff, and
  /// carries the handle's id into every hook emission (the step+thread
  /// identity the fault-injection layer keys on). `retried_out`, when
  /// non-null, is set to true by the first retry_pause() — the seam behind
  /// Handle::last_op_retried() that lets latency sampling split clean ops
  /// from contended ones without touching the stats machinery. Allocation
  /// goes through the handle's own Cache when Alloc::kPooled.
  static OpContext attached(Attachment& a, StatCounters* counters,
                            Backoff* backoff, unsigned tid = kNoTid,
                            bool* retried_out = nullptr,
                            Alloc* alloc = nullptr,
                            AllocCache* cache = nullptr,
                            ProgressSlot* progress = nullptr) noexcept {
    OpContext ctx;
    ctx.att_ = &a;
    ctx.counters_ = counters;
    ctx.backoff_ = backoff;
    ctx.tid_ = tid;
    ctx.retried_out_ = retried_out;
    ctx.alloc_ = alloc;
    ctx.cache_ = cache;
    if constexpr (kCausal) ctx.progress_ = progress;
    return ctx;
  }

  template <typename T>
  void retire(T* p) {
    if (att_ != nullptr) {
      att_->retire(p);
    } else {
      rec_->retire(p);
    }
  }

  /// Allocate-and-construct through the context's allocator. Heap mode folds
  /// to `new T` — no allocator pointer is ever dereferenced.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    if constexpr (Alloc::kPooled) {
      EFRB_DCHECK(alloc_ != nullptr && cache_ != nullptr);
      return alloc_->template create<T>(*cache_, std::forward<Args>(args)...);
    } else {
      return new T(std::forward<Args>(args)...);
    }
  }

  /// Destroy-and-free an object that was never published (the loser side of
  /// a CAS race). Published objects go through retire() instead. Null-safe,
  /// like delete.
  template <typename T>
  void dispose(T* p) noexcept {
    if (p == nullptr) return;
    if constexpr (Alloc::kPooled) {
      EFRB_DCHECK(alloc_ != nullptr && cache_ != nullptr);
      alloc_->template destroy<T>(*cache_, p);
    } else {
      delete p;
    }
  }

  void begin_op() noexcept {
    if (backoff_ != nullptr) backoff_->reset();
    if constexpr (kCausal) {
      if (progress_ != nullptr) {
        progress_->op_key.store(kNoKey, std::memory_order_relaxed);
        progress_->start_ns.store(steady_now_ns(), std::memory_order_relaxed);
        progress_->retries.store(0, std::memory_order_relaxed);
        progress_->last_step.store(kNoStep, std::memory_order_relaxed);
        progress_->help_depth.store(0, std::memory_order_relaxed);
        // Open the window: even -> odd. Self-healing if a prior op's window
        // was left open (exception unwind skipped end_op): odd -> next odd.
        const std::uint64_t s =
            progress_->op_seq.load(std::memory_order_relaxed);
        progress_->op_seq.store(s + 1 + (s & 1), std::memory_order_release);
      }
    }
  }
  /// Called on operation success: drops any escalation the finished op built
  /// up, so a missing begin_op on some future path cannot inherit it.
  void end_op() noexcept {
    if (backoff_ != nullptr) backoff_->reset();
    if constexpr (kCausal) {
      if (progress_ != nullptr) {
        const std::uint64_t s =
            progress_->op_seq.load(std::memory_order_relaxed);
        if (s & 1) {  // close the window: odd -> even
          progress_->op_seq.store(s + 1, std::memory_order_release);
        }
      }
    }
  }
  void retry_pause() noexcept {
    if (retried_out_ != nullptr) *retried_out_ = true;
    if constexpr (kCausal) {
      if (progress_ != nullptr) {
        progress_->retries.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (backoff_ != nullptr) (*backoff_)();
  }

  /// Nested help-dispatch depth, maintained for the watchdog's StallReport.
  void help_enter() noexcept {
    if constexpr (kCausal) {
      if (progress_ != nullptr) {
        progress_->help_depth.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  void help_exit() noexcept {
    if constexpr (kCausal) {
      if (progress_ != nullptr) {
        progress_->help_depth.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }

  /// Packed {tid, op_seq} identity of the current operation — the stamp the
  /// protocol layers write into freshly created Info/ScxRecord records.
  /// kNoOwner when causal tracing is off or the context has no progress slot
  /// (tree-level path).
  std::uint64_t owner() const noexcept {
    if constexpr (kCausal) {
      if (progress_ != nullptr && tid_ != kNoTid) {
        return pack_owner(tid_,
                          progress_->op_seq.load(std::memory_order_relaxed));
      }
    }
    return kNoOwner;
  }

  /// Per-handle thread identity (kNoTid on the tree-level path), forwarded to
  /// every hook emission in the protocol layer.
  unsigned tid() const noexcept { return tid_; }

  /// Key attribution for hook emissions. The protocol layer stamps the
  /// operation's key at each public entry point; keys without an integral
  /// projection stay kNoKey. Compiled out entirely unless kTrackKeys.
  template <typename K>
  void set_op_key(const K& k) noexcept {
    if constexpr (kTrackKeys || kCausal) {
      if constexpr (std::is_convertible_v<const K&, std::uint64_t>) {
        const auto key = static_cast<std::uint64_t>(k);
        if constexpr (kTrackKeys) op_key_ = key;
        // The progress slot carries the key independently of kTrackKeys: a
        // causal-only tree still needs the watchdog's StallReport to name
        // the stalled operation's key.
        if constexpr (kCausal) {
          if (progress_ != nullptr) {
            progress_->op_key.store(key, std::memory_order_relaxed);
          }
        }
      }
    } else {
      (void)k;
    }
  }

  /// The current operation's key (kNoKey when untracked), forwarded to every
  /// hook emission in the protocol layer.
  std::uint64_t op_key() const noexcept {
    if constexpr (kTrackKeys) {
      return op_key_;
    } else {
      return kNoKey;
    }
  }

  void count_insert_attempt() noexcept { bump(&StatCounters::insert_attempts); }
  void count_insert_retry() noexcept { bump(&StatCounters::insert_retries); }
  void count_delete_attempt() noexcept { bump(&StatCounters::delete_attempts); }
  void count_delete_retry() noexcept { bump(&StatCounters::delete_retries); }
  void count_help() noexcept { bump(&StatCounters::helps); }
  void count_backtrack() noexcept { bump(&StatCounters::backtracks); }
  void count_rotation() noexcept { bump(&StatCounters::rotations); }
  void count_cleanup_abandoned() noexcept {
    bump(&StatCounters::cleanup_abandoned);
  }

  /// Record one descent's depth (levels walked from the root to the leaf).
  /// The max is a relaxed CAS race — last-writer-wins per observed maximum is
  /// exact for a monotone quantity.
  void count_depth(std::size_t depth) noexcept {
    if constexpr (kCount) {
      const auto d = static_cast<std::uint64_t>(depth);
      counters_->depth_total.fetch_add(d, std::memory_order_relaxed);
      counters_->depth_samples.fetch_add(1, std::memory_order_relaxed);
      std::uint64_t cur = counters_->depth_max.load(std::memory_order_relaxed);
      while (cur < d && !counters_->depth_max.compare_exchange_weak(
                            cur, d, std::memory_order_relaxed)) {
      }
    }
  }

  /// Per-step protocol accounting, recorded at every Traits::on_cas point.
  void count_cas(CasStep step, bool ok) noexcept {
    if constexpr (kCount) {
      const auto i = static_cast<std::size_t>(step);
      counters_->cas_attempts[i].fetch_add(1, std::memory_order_relaxed);
      if (!ok) {
        counters_->cas_failures[i].fetch_add(1, std::memory_order_relaxed);
      }
    }
    if constexpr (kCausal) {
      if (progress_ != nullptr) {
        progress_->last_step.store(static_cast<std::uint32_t>(step),
                                   std::memory_order_relaxed);
      }
    }
  }

 private:
  OpContext() = default;

  static std::uint64_t steady_now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void bump(std::atomic<std::uint64_t> StatCounters::* field) noexcept {
    if constexpr (kCount) {
      (counters_->*field).fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Zero-size stand-in for the progress pointer when kCausal is off, so the
  /// uninstrumented context's layout does not change.
  struct NoProgress {};

  Attachment* att_ = nullptr;
  Reclaimer* rec_ = nullptr;
  [[maybe_unused]] StatCounters* counters_ = nullptr;
  Backoff* backoff_ = nullptr;
  unsigned tid_ = kNoTid;
  bool* retried_out_ = nullptr;
  [[maybe_unused]] std::uint64_t op_key_ = kNoKey;
  // Null (and never read) in heap mode; see make()/dispose().
  Alloc* alloc_ = nullptr;
  AllocCache* cache_ = nullptr;
  [[no_unique_address]] std::conditional_t<kCausal, ProgressSlot*, NoProgress>
      progress_{};
};

}  // namespace efrb
