// Non-blocking binary search tree of Ellen, Fatourou, Ruppert & van Breugel
// (PODC 2010) — a linearizable, lock-free, leaf-oriented BST built from
// single-word CAS.
//
// Code structure mirrors the paper's pseudocode (Figures 7, 8, 9); comments of
// the form "line N" refer to its line numbers. The differences from the paper
// are exactly the ones a C++ implementation must make:
//
//   * Memory reclamation. The paper assumes fresh allocations/GC (§4.1, §6).
//     The tree is parameterized on a Reclaimer policy (default: epoch-based).
//     Retirement protocol (see DESIGN.md §6 for the full argument):
//       - Nodes: the winner of an unflag CAS retires the node(s) its
//         operation made unreachable (the replaced leaf for Insert; the
//         spliced-out parent and deleted leaf for Delete). This matches the
//         retirement points §6 proposes.
//       - Info records: a record stays referenced by the node's update word
//         even after the unflag CAS (the Clean word keeps the pointer so that
//         update-word values never repeat, §4.2). It is therefore retired by
//         the winner of the NEXT CAS that overwrites a Clean word referencing
//         it (an iflag/dflag/mark CAS), i.e. exactly when the last reference
//         from shared memory disappears — the behaviour a tracing GC gives the
//         paper for free. Retiring at the unflag CAS instead would permit an
//         ABA on the update word: the record's memory could be recycled into
//         a new record for the same node, making a stale (Clean, info)
//         expected-value match again and a doomed Delete's mark CAS succeed —
//         re-introducing the Fig. 3(c) lost-insert bug.
//     Pinned regions then give full ABA protection: any value a thread ever
//     compares against was read from a shared word while pinned, and the
//     object it designates cannot be freed (hence recycled) until that pin is
//     released.
//   * Values. Leaves optionally carry a mapped value (§3: "Our implementation
//     can also store auxiliary data with each key"); EfrbTreeSet aliases the
//     map with an empty value type.
//   * insert_or_assign is an extension beyond the paper (documented below).
//
// Progress: non-blocking (lock-free). Find never writes shared memory and
// never helps; Insert/Delete help only operations that block them (§3,
// "conservative helping strategy").
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/bounded_key.hpp"
#include "core/debug_hooks.hpp"
#include "core/tagged_update.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/reclaimer.hpp"
#include "util/assert.hpp"
#include "util/backoff.hpp"
#include "util/cacheline.hpp"
#include "util/rng.hpp"

namespace efrb {

namespace detail {
/// Empty mapped type for set semantics; occupies no leaf storage.
struct Unit {
  friend bool operator==(Unit, Unit) noexcept { return true; }
};
}  // namespace detail

/// Relaxed per-tree operation counters, collected when Traits::kCountStats.
struct TreeStats {
  std::uint64_t insert_attempts = 0;  // iflag CAS attempts
  std::uint64_t insert_retries = 0;   // extra Search rounds inside Insert
  std::uint64_t delete_attempts = 0;  // dflag CAS attempts
  std::uint64_t delete_retries = 0;   // extra Search rounds inside Delete
  std::uint64_t helps = 0;            // Help() dispatches on a non-Clean word
  std::uint64_t backtracks = 0;       // successful backtrack CAS steps
};

template <typename Key, typename Value = detail::Unit,
          typename Compare = std::less<Key>,
          typename Reclaimer = EpochReclaimer, typename Traits = NoopTraits>
class EfrbTreeMap {
 public:
  using key_type = Key;
  using mapped_type = Value;
  static constexpr const char* kName = "efrb-tree";

  explicit EfrbTreeMap(Compare cmp = Compare{}, Reclaimer reclaimer = Reclaimer{})
      : cmp_(std::move(cmp)), reclaimer_(std::move(reclaimer)) {
    // Initialization per Figure 7 (lines 19-22) / Figure 6(a): the permanent
    // root has key ∞₂ and leaf children ∞₁, ∞₂. Root is never replaced.
    auto* left = new Leaf(BKey::inf1(), Value{});
    auto* right = new Leaf(BKey::inf2(), Value{});
    root_ = new Internal(BKey::inf2(), left, right);
  }

  EfrbTreeMap(const EfrbTreeMap&) = delete;
  EfrbTreeMap& operator=(const EfrbTreeMap&) = delete;

  /// Requires quiescence (no concurrent operations), like all destructors.
  ~EfrbTreeMap() {
    std::vector<Node*> stack{root_};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (n->is_internal) {
        auto* in = static_cast<Internal*>(n);
        stack.push_back(in->left.load(std::memory_order_relaxed));
        stack.push_back(in->right.load(std::memory_order_relaxed));
        // An Info record referenced by an in-tree Clean word was never
        // overwritten, hence never retired — free it here. Each record is
        // referenced by at most one in-tree Clean word (an IInfo by its p, a
        // DInfo by its gp; a DInfo's Mark reference lives on a node already
        // spliced out of the tree), so no double free is possible. At
        // quiescence no in-tree word can be flagged or marked.
        const Update u = in->update.load(std::memory_order_relaxed);
        EFRB_DCHECK(u.state() == UpdateState::kClean);
        if (u.state() == UpdateState::kClean) delete u.info();
        delete in;
      } else {
        delete static_cast<Leaf*>(n);
      }
    }
  }

 private:
  // ---------------- stats plumbing ----------------

  struct Counters {
    std::atomic<std::uint64_t> insert_attempts{0};
    std::atomic<std::uint64_t> insert_retries{0};
    std::atomic<std::uint64_t> delete_attempts{0};
    std::atomic<std::uint64_t> delete_retries{0};
    std::atomic<std::uint64_t> helps{0};
    std::atomic<std::uint64_t> backtracks{0};
  };

  static void accumulate(TreeStats& s, const Counters& c) noexcept {
    s.insert_attempts += c.insert_attempts.load(std::memory_order_relaxed);
    s.insert_retries += c.insert_retries.load(std::memory_order_relaxed);
    s.delete_attempts += c.delete_attempts.load(std::memory_order_relaxed);
    s.delete_retries += c.delete_retries.load(std::memory_order_relaxed);
    s.helps += c.helps.load(std::memory_order_relaxed);
    s.backtracks += c.backtracks.load(std::memory_order_relaxed);
  }

  // Handles count into a cacheline-padded shard each, so stats-enabled
  // counting never contends on a shared line; stats_snapshot() sums the
  // shared block (tree-level path) plus every shard. A released shard keeps
  // its counts — they are lifetime totals, and the next handle to recycle
  // the shard simply keeps adding.
  struct StatShard {
    Counters counters;
    std::atomic<bool> in_use{false};
  };

  struct ShardPool {
    static constexpr std::size_t kMaxHandles = 128;
    std::vector<CachePadded<StatShard>> shards;

    ShardPool() : shards(kMaxHandles) {}

    StatShard* acquire() {
      for (auto& padded : shards) {
        StatShard& s = padded.value;
        bool expected = false;
        if (!s.in_use.load(std::memory_order_relaxed) &&
            s.in_use.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
          return &s;
        }
      }
      EFRB_ASSERT_MSG(false,
                      "EfrbTreeMap: stat-shard capacity exhausted "
                      "(more than kMaxHandles live handles)");
    }

    static void release(StatShard* s) noexcept {
      s->in_use.store(false, std::memory_order_release);
    }
  };

  /// Stats disabled: no shard storage at all; handles carry a null shard.
  struct EmptyShardPool {
    StatShard* acquire() noexcept { return nullptr; }
    static void release(StatShard*) noexcept {}
  };

  using Shards =
      std::conditional_t<Traits::kCountStats, ShardPool, EmptyShardPool>;

  // ---------------- per-op execution context ----------------
  //
  // Threads the retire sink (whole reclaimer or per-handle attachment), the
  // stat counters (shared block or per-handle shard), and optional backoff
  // state through the op/help machinery. Resolved statically — no virtual
  // dispatch; the tree-level instantiation compiles to the pre-handle code
  // (null backoff folds retry_pause() away).
  template <typename RetireTarget>
  class ExecCtx {
   public:
    ExecCtx(RetireTarget& rt, Counters* counters,
            Backoff* backoff = nullptr) noexcept
        : rt_(rt), counters_(counters), backoff_(backoff) {}

    template <typename T>
    void retire(T* p) {
      rt_.retire(p);
    }

    void begin_op() noexcept {
      if (backoff_ != nullptr) backoff_->reset();
    }
    void retry_pause() noexcept {
      if (backoff_ != nullptr) (*backoff_)();
    }

    void count_insert_attempt() noexcept {
      if constexpr (Traits::kCountStats)
        counters_->insert_attempts.fetch_add(1, std::memory_order_relaxed);
    }
    void count_insert_retry() noexcept {
      if constexpr (Traits::kCountStats)
        counters_->insert_retries.fetch_add(1, std::memory_order_relaxed);
    }
    void count_delete_attempt() noexcept {
      if constexpr (Traits::kCountStats)
        counters_->delete_attempts.fetch_add(1, std::memory_order_relaxed);
    }
    void count_delete_retry() noexcept {
      if constexpr (Traits::kCountStats)
        counters_->delete_retries.fetch_add(1, std::memory_order_relaxed);
    }
    void count_help() noexcept {
      if constexpr (Traits::kCountStats)
        counters_->helps.fetch_add(1, std::memory_order_relaxed);
    }
    void count_backtrack() noexcept {
      if constexpr (Traits::kCountStats)
        counters_->backtracks.fetch_add(1, std::memory_order_relaxed);
    }

   private:
    RetireTarget& rt_;
    [[maybe_unused]] Counters* counters_;
    Backoff* backoff_;
  };

  /// Context for the tree-level convenience methods: retires through the
  /// reclaimer's thread_local lease, counts into the shared block, no backoff
  /// (matching the original per-call behaviour exactly).
  ExecCtx<Reclaimer> tree_ctx() const noexcept {
    return ExecCtx<Reclaimer>(reclaimer_, &counters_);
  }

  /// Distinct splitmix-derived seed per handle (never thread-id based; see
  /// the skiplist level-RNG bug this repository once had).
  static std::uint64_t next_handle_seed() noexcept {
    static std::atomic<std::uint64_t> counter{0};
    SplitMix64 sm(0x8f1bbcdcbfa53e0bULL +
                  counter.fetch_add(1, std::memory_order_relaxed));
    return sm.next();
  }

 public:
  // ------------------------------------------------------------------
  // Per-thread operation handles
  // ------------------------------------------------------------------

  /// The fast path for repeated operations. A Handle owns (a) an explicit
  /// reclaimer attachment, so pin() is a plain member access instead of a
  /// thread_local registry lookup, (b) a cacheline-padded stats shard when
  /// Traits::kCountStats, so counting never contends on a shared line, and
  /// (c) private backoff/RNG state for retry pacing and randomized
  /// workloads.
  ///
  /// Rules: a Handle is movable but thread-affine — it must be used by one
  /// thread at a time (a move is a hand-off, with whatever external
  /// synchronization the hand-off itself needs), and it must not outlive its
  /// tree. Each live handle occupies one reclaimer slot (counting against
  /// the reclaimer's max_threads) and one stat shard; destruction or
  /// detach() releases both. Ordered queries (min_key/find_ge/range/...)
  /// remain on the tree itself.
  class Handle {
   public:
    /// Invalid handle; usable only as a move target. Obtain real ones from
    /// EfrbTreeMap::handle().
    Handle() = default;

    Handle(Handle&& other) noexcept
        : tree_(other.tree_),
          att_(std::move(other.att_)),
          shard_(other.shard_),
          shard_base_(other.shard_base_),
          backoff_(other.backoff_),
          rng_(other.rng_) {
      other.tree_ = nullptr;
      other.shard_ = nullptr;
    }

    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        detach();
        tree_ = other.tree_;
        att_ = std::move(other.att_);
        shard_ = other.shard_;
        shard_base_ = other.shard_base_;
        backoff_ = other.backoff_;
        rng_ = other.rng_;
        other.tree_ = nullptr;
        other.shard_ = nullptr;
      }
      return *this;
    }

    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    ~Handle() { detach(); }

    bool valid() const noexcept { return tree_ != nullptr; }

    /// Release the reclaimer slot and stat shard early (also done by the
    /// destructor). The handle becomes invalid; operations on it are UB.
    void detach() noexcept {
      if (tree_ != nullptr && shard_ != nullptr) Shards::release(shard_);
      shard_ = nullptr;
      att_.detach();
      tree_ = nullptr;
    }

    /// Find(k) through this handle's attachment.
    bool contains(const Key& k) const {
      EFRB_DCHECK(valid());
      [[maybe_unused]] auto guard = att_.pin();
      auto ctx = make_ctx();
      return tree_->contains_with(k, ctx);
    }

    std::optional<Value> get(const Key& k) const {
      EFRB_DCHECK(valid());
      [[maybe_unused]] auto guard = att_.pin();
      auto ctx = make_ctx();
      return tree_->get_with(k, ctx);
    }

    bool insert(const Key& k, Value v = Value{}) {
      EFRB_DCHECK(valid());
      [[maybe_unused]] auto guard = att_.pin();
      auto ctx = make_ctx();
      return tree_->do_insert(k, std::move(v), /*assign_if_present=*/false,
                              ctx) != InsertOutcome::kDuplicate;
    }

    bool insert_or_assign(const Key& k, Value v) {
      EFRB_DCHECK(valid());
      [[maybe_unused]] auto guard = att_.pin();
      auto ctx = make_ctx();
      return tree_->do_insert(k, std::move(v), /*assign_if_present=*/true,
                              ctx) == InsertOutcome::kInserted;
    }

    bool replace(const Key& k, const Value& expected, Value desired) {
      EFRB_DCHECK(valid());
      [[maybe_unused]] auto guard = att_.pin();
      auto ctx = make_ctx();
      return tree_->do_replace(k, expected, std::move(desired), ctx);
    }

    Value get_or_insert(const Key& k, Value v) {
      for (;;) {
        if (auto cur = get(k)) return *cur;
        if (insert(k, v)) return v;
      }
    }

    bool erase(const Key& k) {
      EFRB_DCHECK(valid());
      [[maybe_unused]] auto guard = att_.pin();
      auto ctx = make_ctx();
      return tree_->do_erase(k, ctx);
    }

    /// Drain this handle's retire backlog. Call while not pinned.
    void flush() { att_.flush(); }

    /// Exactly this handle's own operations (zeros when stats are disabled).
    /// Shards are recycled with their lifetime totals intact, so the shard's
    /// value at acquisition is subtracted out.
    TreeStats local_stats() const noexcept {
      TreeStats s;
      if (shard_ != nullptr) {
        accumulate(s, shard_->counters);
        s.insert_attempts -= shard_base_.insert_attempts;
        s.insert_retries -= shard_base_.insert_retries;
        s.delete_attempts -= shard_base_.delete_attempts;
        s.delete_retries -= shard_base_.delete_retries;
        s.helps -= shard_base_.helps;
        s.backtracks -= shard_base_.backtracks;
      }
      return s;
    }

    /// Per-handle PRNG: splitmix-seeded, a distinct stream per handle.
    Xoshiro256& rng() noexcept { return rng_; }
    Backoff& backoff() noexcept { return backoff_; }

   private:
    friend class EfrbTreeMap;

    explicit Handle(EfrbTreeMap* t)
        : tree_(t),
          att_(t->reclaimer_.attach()),
          shard_(t->shards_.acquire()),
          rng_(next_handle_seed()) {
      if (shard_ != nullptr) accumulate(shard_base_, shard_->counters);
    }

    ExecCtx<typename Reclaimer::Attachment> make_ctx() const noexcept {
      return ExecCtx<typename Reclaimer::Attachment>(
          att_, shard_ != nullptr ? &shard_->counters : nullptr, &backoff_);
    }

    EfrbTreeMap* tree_ = nullptr;
    mutable typename Reclaimer::Attachment att_;
    StatShard* shard_ = nullptr;
    TreeStats shard_base_;  // recycled shard's totals at acquisition
    mutable Backoff backoff_;
    mutable Xoshiro256 rng_{0};
  };

  /// Create a per-thread operation handle bound to this tree. See Handle for
  /// the ownership and thread-affinity rules.
  Handle handle() { return Handle(this); }

  // ------------------------------------------------------------------
  // Dictionary operations (Fig. 8/9)
  //
  // These tree-level methods are convenience wrappers over the same
  // machinery the Handle drives: correct from any thread with zero setup,
  // but each call re-resolves the reclaimer's thread_local lease (a registry
  // lookup the handle pays once at attach) and, when stats are enabled,
  // counts into one shared cache line. Hot loops should go through handle().
  // ------------------------------------------------------------------

  /// Find(k), lines 36-40. Read-only: never writes shared memory, never helps.
  bool contains(const Key& k) const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    auto ctx = tree_ctx();
    return contains_with(k, ctx);
  }

  /// Map lookup: returns the value stored with k, if present. The value in a
  /// leaf is immutable after publication, so copying it under the pin is safe.
  std::optional<Value> get(const Key& k) const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    auto ctx = tree_ctx();
    return get_with(k, ctx);
  }

  /// Insert(k), lines 42-62. Returns false iff k was already present.
  bool insert(const Key& k, Value v = Value{}) {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    auto ctx = tree_ctx();
    return do_insert(k, std::move(v), /*assign_if_present=*/false, ctx) !=
           InsertOutcome::kDuplicate;
  }

  /// Extension (not in the paper): insert k or replace the value of an
  /// existing k. Replacement reuses the insertion machinery with the
  /// replacement leaf in place of the three-node subtree: flag the parent
  /// (iflag), CAS the child pointer from the old leaf to a fresh leaf with the
  /// same key (ichild), unflag. Every proof obligation is preserved — the
  /// child CAS still installs a never-before-seen node on the correct side.
  /// Returns true if k was newly inserted, false if an existing value was
  /// replaced.
  bool insert_or_assign(const Key& k, Value v) {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    auto ctx = tree_ctx();
    return do_insert(k, std::move(v), /*assign_if_present=*/true, ctx) ==
           InsertOutcome::kInserted;
  }

  /// Extension: atomic compare-and-replace on a key's value. Returns true iff
  /// k was present with a value equal to `expected`, in which case the value
  /// is replaced by `desired` (as one linearizable step).
  ///
  /// Soundness: a leaf's value is immutable, so the value read after Search
  /// belongs to that exact leaf forever; the iflag CAS succeeds only if the
  /// parent's update word is unchanged since the Search read it, and child
  /// pointers change only under a flag with a fresh record (word values never
  /// repeat) — so iflag success certifies the examined leaf is still the
  /// current leaf for k, making the subsequent ichild swap an atomic
  /// value-CAS. Linearization: the ichild CAS on success; a point during the
  /// Search where the leaf (or its absence) was on the search path on
  /// failure.
  bool replace(const Key& k, const Value& expected, Value desired) {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    auto ctx = tree_ctx();
    return do_replace(k, expected, std::move(desired), ctx);
  }

  /// Extension: returns the value stored at k, inserting `v` first if absent.
  /// (Composite of get/insert; each step linearizable, the pair is not one
  /// atomic step — a concurrent erase can interleave, in which case the loop
  /// retries.)
  Value get_or_insert(const Key& k, Value v) {
    for (;;) {
      if (auto cur = get(k)) return *cur;
      if (insert(k, v)) return v;
      // Lost both races (value erased between get and insert, or inserted by
      // another thread and erased again): try again.
    }
  }

  /// Delete(k), lines 69-87. Returns false iff k was absent.
  bool erase(const Key& k) {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    auto ctx = tree_ctx();
    return do_erase(k, ctx);
  }

  // ------------------------------------------------------------------
  // Ordered queries (linearizable; see notes)
  // ------------------------------------------------------------------

  /// Smallest key, or nullopt when empty. Walking left edges is exactly
  /// Search(k) for a key below every real key, so the reached leaf was on that
  /// search path at some time during the walk (§5's search-path lemma), making
  /// the result linearizable like Find.
  std::optional<Key> min_key() const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    Node* l = root_;
    while (l->is_internal) {
      l = static_cast<Internal*>(l)->left.load(std::memory_order_acquire);
    }
    const Leaf* leaf = static_cast<Leaf*>(l);
    if (!leaf->key.is_real()) return std::nullopt;
    return leaf->key.key;
  }

  /// Largest key, or nullopt when empty. This is Search for a virtual key
  /// lying strictly between every real key and ∞₁: at a sentinel-keyed node go
  /// left, at a real-keyed node go right. The same search-path argument makes
  /// it linearizable.
  std::optional<Key> max_key() const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    Node* l = root_;
    while (l->is_internal) {
      auto* in = static_cast<Internal*>(l);
      l = in->key.is_real() ? in->right.load(std::memory_order_acquire)
                            : in->left.load(std::memory_order_acquire);
    }
    const Leaf* leaf = static_cast<Leaf*>(l);
    if (!leaf->key.is_real()) return std::nullopt;
    return leaf->key.key;
  }

  /// Smallest key >= k (lower bound), or nullopt. See the consistency note
  /// on ordered navigation below.
  std::optional<Key> find_ge(const Key& k) const {
    return bound_up(k, /*strict=*/false);
  }

  /// Smallest key > k, or nullopt.
  std::optional<Key> find_gt(const Key& k) const {
    return bound_up(k, /*strict=*/true);
  }

  /// Largest key <= k, or nullopt.
  std::optional<Key> find_le(const Key& k) const {
    return bound_down(k, /*strict=*/false);
  }

  /// Largest key < k, or nullopt.
  std::optional<Key> find_lt(const Key& k) const {
    return bound_down(k, /*strict=*/true);
  }

  /// Visits every (key, value) with lo <= key <= hi in order, pruning
  /// subtrees by the BST bounds.
  ///
  /// Consistency of ordered navigation (find_* above and range): exact on a
  /// quiescent tree. Under concurrent updates these are weakly consistent
  /// like for_each: every key reported was present at some time during the
  /// call (each visited node is reached by a chain of child pointers from
  /// the root, so it was on its search path at some time — §5's lemma), and
  /// a key that is in the queried region for the whole call is reported;
  /// keys inserted/removed mid-call may or may not be. Unlike contains(),
  /// a find_ge/range result is not a single linearization point over the
  /// whole region.
  template <typename Fn>
  void range(const Key& lo, const Key& hi, Fn&& fn) const {
    if (cmp_.user_compare()(hi, lo)) return;  // empty interval
    [[maybe_unused]] auto guard = reclaimer_.pin();
    std::vector<Node*> stack{root_};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (n->is_internal) {
        auto* in = static_cast<Internal*>(n);
        // Left subtree holds keys < in->key: visit iff lo < in->key.
        // Right subtree holds keys >= in->key: visit iff hi >= in->key.
        const bool go_left = cmp_.less(lo, in->key);
        const bool go_right = !cmp_.less(hi, in->key);
        // Push right first so the left subtree pops first (in-order leaves).
        if (go_right) stack.push_back(in->right.load(std::memory_order_acquire));
        if (go_left) stack.push_back(in->left.load(std::memory_order_acquire));
      } else {
        auto* leaf = static_cast<Leaf*>(n);
        if (leaf->key.is_real() && !cmp_.user_compare()(leaf->key.key, lo) &&
            !cmp_.user_compare()(hi, leaf->key.key)) {
          fn(leaf->key.key, leaf->value);
        }
      }
    }
  }

  /// Number of keys in [lo, hi] (weakly consistent; exact at quiescence).
  std::size_t count_range(const Key& lo, const Key& hi) const {
    std::size_t n = 0;
    range(lo, hi, [&n](const Key&, const Value&) { ++n; });
    return n;
  }

  // ------------------------------------------------------------------
  // Traversal and diagnostics (weakly consistent under concurrency)
  // ------------------------------------------------------------------

  /// Depth-first visit of every real (key, value) pair. Under concurrent
  /// updates the visit is weakly consistent (not a snapshot): a key present
  /// for the entire traversal is visited; keys inserted/removed mid-traversal
  /// may or may not appear. On a quiescent tree this is an exact in-order
  /// enumeration.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    for_each_rec(root_, fn);
  }

  /// Number of real keys; exact only on a quiescent tree. O(n).
  std::size_t size() const {
    std::size_t n = 0;
    for_each([&n](const Key&, const Value&) { ++n; });
    return n;
  }

  bool empty() const { return !min_key().has_value(); }

  /// Structural validation for tests (quiescent trees): checks the
  /// leaf-oriented shape, the BST key order with sentinel placement (Fig. 6),
  /// and that every internal node is Clean or terminally consistent.
  struct ValidationResult {
    bool ok = true;
    std::string error;
    std::size_t real_leaves = 0;
    std::size_t internals = 0;
    std::size_t height = 0;
  };

  ValidationResult validate() const {
    ValidationResult r;
    [[maybe_unused]] auto guard = reclaimer_.pin();
    if (root_->key.cls == KeyClass::kInf2) {
      validate_subtree(r);
    } else {
      r.ok = false;
      r.error = "root key is not ∞₂";
    }
    return r;
  }

  TreeStats stats() const noexcept { return stats_snapshot(); }

  /// Combined relaxed-read snapshot of per-tree counters (Traits-gated):
  /// the shared block written by the tree-level path plus every handle
  /// shard, live or released (shards hold lifetime totals).
  TreeStats stats_snapshot() const noexcept {
    TreeStats s;
    if constexpr (Traits::kCountStats) {
      accumulate(s, counters_);
      for (const auto& padded : shards_.shards) {
        accumulate(s, padded.value.counters);
      }
    }
    return s;
  }

  Reclaimer& reclaimer() noexcept { return reclaimer_; }

 private:
  using BKey = BoundedKey<Key>;

  // ---------------- node & info record layout (Fig. 7) ----------------

  struct Node {
    const BKey key;
    const bool is_internal;
    Node(BKey k, bool internal) : key(std::move(k)), is_internal(internal) {}
  };

  struct Leaf final : Node {
    [[no_unique_address]] Value value;
    Leaf(BKey k, Value v) : Node(std::move(k), false), value(std::move(v)) {}
  };

  struct Internal final : Node {
    AtomicUpdate update;  // lines 2-5: (state, Info*) in one CAS word
    std::atomic<Node*> left;
    std::atomic<Node*> right;
    Internal(BKey k, Node* l, Node* r)
        : Node(std::move(k), true), left(l), right(r) {}
  };

  // lines 12-14. new_node is Node* (not Internal*) to support the
  // insert_or_assign extension, which installs a replacement Leaf.
  struct IInfo final : Info {
    Internal* p;
    Leaf* l;
    Node* new_node;
    IInfo(Internal* p_, Leaf* l_, Node* n_) : p(p_), l(l_), new_node(n_) {}
  };

  // lines 15-18
  struct DInfo final : Info {
    Internal* gp;
    Internal* p;
    Leaf* l;
    Update pupdate;
    DInfo(Internal* gp_, Internal* p_, Leaf* l_, Update pu)
        : gp(gp_), p(p_), l(l_), pupdate(pu) {}
  };

  static_assert(alignof(IInfo) >= 4 && alignof(DInfo) >= 4,
                "two low pointer bits must be free for the state tag");

  struct SearchResult {
    Internal* gp;
    Internal* p;
    Leaf* l;
    Update pupdate;
    Update gpupdate;
  };

  // ---------------- Search (lines 23-35) ----------------
  //
  // Postconditions (paper lines 24-26): l is a leaf; p is the internal node
  // whose child pointer contained l; pupdate/gpupdate were read from p/gp
  // *before* following the edge towards l (that read order is what makes the
  // flag-check-then-CAS protocol sound).
  template <typename RT>
  SearchResult search(const Key& k, ExecCtx<RT>& ctx) const {
    Internal* gp = nullptr;
    Internal* p = nullptr;
    Update gpupdate, pupdate;
    Node* l = root_;
    while (l->is_internal) {
      gp = p;                                           // line 28
      p = static_cast<Internal*>(l);                    // line 29
      gpupdate = pupdate;                               // line 30
      pupdate = p->update.load();                       // line 31
      if constexpr (Traits::kSearchHelpsMarked) {
        // §6 variant: splice out a marked node before walking through it,
        // then restart from the root (the spliced node is off the path).
        // Helping mutates shared memory, so this Search variant is not
        // read-only; the tree's logical state is unchanged (the deletion
        // being helped already passed its linearization-enabling mark).
        if (pupdate.state() == UpdateState::kMark) {
          const_cast<EfrbTreeMap*>(this)->help_marked(
              static_cast<DInfo*>(pupdate.info()), ctx);
          gp = nullptr;
          p = nullptr;
          gpupdate = Update{};
          pupdate = Update{};
          l = root_;
          continue;
        }
      }
      l = cmp_.less(k, p->key)                          // line 32
              ? p->left.load(std::memory_order_acquire)
              : p->right.load(std::memory_order_acquire);
    }
    return SearchResult{gp, p, static_cast<Leaf*>(l), pupdate, gpupdate};
  }

  /// Find(k) body, shared by the tree-level wrapper and Handle::contains.
  /// Caller must hold a pinned region on ctx's retire target.
  template <typename RT>
  bool contains_with(const Key& k, ExecCtx<RT>& ctx) const {
    const SearchResult s = search(k, ctx);
    return cmp_.equals(k, s.l->key);
  }

  template <typename RT>
  std::optional<Value> get_with(const Key& k, ExecCtx<RT>& ctx) const {
    const SearchResult s = search(k, ctx);
    if (!cmp_.equals(k, s.l->key)) return std::nullopt;
    return s.l->value;
  }

  // ---------------- Insert (lines 42-62) ----------------

  enum class InsertOutcome { kInserted, kAssigned, kDuplicate };

  template <typename RT>
  InsertOutcome do_insert(const Key& k, Value v, bool assign_if_present,
                          ExecCtx<RT>& ctx) {
    auto* new_leaf = new Leaf(BKey::real(k), std::move(v));  // line 45
    ctx.begin_op();
    for (;;) {
      const SearchResult s = search(k, ctx);  // line 49
      Traits::at(HookPoint::kAfterSearch);
      if (cmp_.equals(k, s.l->key)) {  // line 50: duplicate key
        if (!assign_if_present) {
          delete new_leaf;  // never published
          return InsertOutcome::kDuplicate;
        }
        // Extension: replace the existing leaf with new_leaf via the same
        // flag/child/unflag protocol. As in the paper's line 51, the parent
        // must be Clean before we may attempt to flag it.
        if (s.pupdate.state() != UpdateState::kClean) {
          help(s.pupdate, ctx);
          ctx.count_insert_retry();
          Traits::at(HookPoint::kInsertRetry);
          ctx.retry_pause();
          continue;
        }
        if (try_install(s, new_leaf, ctx)) return InsertOutcome::kAssigned;
        ctx.retry_pause();
        continue;
      }
      if (s.pupdate.state() != UpdateState::kClean) {  // line 51
        help(s.pupdate, ctx);
        ctx.count_insert_retry();
        Traits::at(HookPoint::kInsertRetry);
        ctx.retry_pause();
        continue;
      }
      // lines 53-54: build the replacement subtree. The new internal node's
      // key is max(k, l->key); the leaf with the smaller key goes left.
      auto* new_sibling = new Leaf(s.l->key, s.l->value);
      Internal* new_internal;
      if (cmp_.less(k, s.l->key)) {
        new_internal = new Internal(s.l->key, new_leaf, new_sibling);
      } else {
        new_internal = new Internal(BKey::real(k), new_sibling, new_leaf);
      }
      if (try_install(s, new_internal, ctx)) return InsertOutcome::kInserted;
      // iflag failed: dismantle the unpublished subtree (new_leaf is reused).
      delete new_sibling;
      delete new_internal;
      ctx.retry_pause();
    }
  }

  /// Common tail of Insert and insert_or_assign: flag s.p, then complete via
  /// HelpInsert. On iflag failure, helps the obstructor and returns false
  /// (caller owns dismantling `new_node`'s unpublished parts and retrying).
  template <typename RT>
  bool try_install(const SearchResult& s, Node* new_node, ExecCtx<RT>& ctx) {
    auto* op = new IInfo(s.p, s.l, new_node);  // line 55
    Update expected = s.pupdate;
    const Update flagged = Update::make(UpdateState::kIFlag, op);
    const bool ok = s.p->update.compare_exchange(expected, flagged);
    Traits::on_cas(CasStep::kIFlag, ok, s.p);  // line 56: iflag CAS
    ctx.count_insert_attempt();
    if (ok) {
      // This CAS removed the last shared reference to the Info record that
      // the previous (Clean) word pointed to: retire it now.
      if (Info* prev = s.pupdate.info()) ctx.retire(prev);
      Traits::at(HookPoint::kAfterIFlag);
      help_insert(op, ctx);  // line 58
      return true;           // line 59
    }
    delete op;            // never published
    help(expected, ctx);  // line 61: the witnessed value blocked us
    ctx.count_insert_retry();
    Traits::at(HookPoint::kInsertRetry);
    return false;
  }

  // ---------------- Delete (lines 69-87) ----------------

  template <typename RT>
  bool do_erase(const Key& k, ExecCtx<RT>& ctx) {
    ctx.begin_op();
    for (;;) {
      const SearchResult s = search(k, ctx);  // line 75
      Traits::at(HookPoint::kAfterSearch);
      if (!cmp_.equals(k, s.l->key)) return false;  // line 76
      if (s.gpupdate.state() != UpdateState::kClean) {  // line 77
        help(s.gpupdate, ctx);
        ctx.count_delete_retry();
        Traits::at(HookPoint::kDeleteRetry);
        ctx.retry_pause();
        continue;
      }
      if (s.pupdate.state() != UpdateState::kClean) {  // line 78
        help(s.pupdate, ctx);
        ctx.count_delete_retry();
        Traits::at(HookPoint::kDeleteRetry);
        ctx.retry_pause();
        continue;
      }
      // gp is null only when the reached leaf is the ∞₁ sentinel at depth 1,
      // and sentinels never compare equal to a real key, so the line-76
      // check above guarantees a real (depth >= 2) leaf here.
      EFRB_DCHECK(s.gp != nullptr);
      // line 80: op := new DInfo(gp, p, l, pupdate)
      auto* op = new DInfo(s.gp, s.p, s.l, s.pupdate);
      Update expected = s.gpupdate;
      const Update flagged = Update::make(UpdateState::kDFlag, op);
      const bool ok = s.gp->update.compare_exchange(expected, flagged);
      Traits::on_cas(CasStep::kDFlag, ok, s.gp);  // line 81: dflag CAS
      ctx.count_delete_attempt();
      if (ok) {
        // Last shared reference to the record behind gp's old Clean word.
        if (Info* prev = s.gpupdate.info()) ctx.retire(prev);
        Traits::at(HookPoint::kAfterDFlag);
        if (help_delete(op, ctx)) return true;  // line 83
        // Mark failed; the DFlag has been backtracked and op retired by the
        // backtrack winner. Retry from scratch (line 98's False return).
        ctx.count_delete_retry();
        Traits::at(HookPoint::kDeleteRetry);
        ctx.retry_pause();
      } else {
        delete op;            // never published; safe to free immediately
        help(expected, ctx);  // line 85: help whoever owns gp now
        ctx.count_delete_retry();
        Traits::at(HookPoint::kDeleteRetry);
        ctx.retry_pause();
      }
    }
  }

  /// Body of replace() / Handle::replace (see the wrapper's soundness note).
  template <typename RT>
  bool do_replace(const Key& k, const Value& expected, Value desired,
                  ExecCtx<RT>& ctx) {
    Leaf* new_leaf = nullptr;
    ctx.begin_op();
    for (;;) {
      const SearchResult s = search(k, ctx);
      Traits::at(HookPoint::kAfterSearch);
      if (!cmp_.equals(k, s.l->key) || !(s.l->value == expected)) {
        delete new_leaf;  // never published
        return false;
      }
      if (s.pupdate.state() != UpdateState::kClean) {
        help(s.pupdate, ctx);
        ctx.count_insert_retry();
        Traits::at(HookPoint::kInsertRetry);
        ctx.retry_pause();
        continue;
      }
      if (new_leaf == nullptr) {
        new_leaf = new Leaf(BKey::real(k), std::move(desired));
      }
      if (try_install(s, new_leaf, ctx)) return true;
      ctx.retry_pause();
    }
  }

  // ---------------- HelpInsert (lines 64-68) ----------------
  template <typename RT>
  void help_insert(IInfo* op, ExecCtx<RT>& ctx) {
    EFRB_DCHECK(op != nullptr);
    Traits::at(HookPoint::kBeforeIChild);
    cas_child(op->p, op->l, op->new_node, CasStep::kIChild);  // line 66
    Traits::at(HookPoint::kBeforeIUnflag);
    Update expected = Update::make(UpdateState::kIFlag, op);
    const Update clean = Update::make(UpdateState::kClean, op);
    const bool ok = op->p->update.compare_exchange(expected, clean);
    Traits::on_cas(CasStep::kIUnflag, ok, op->p);  // line 67: iunflag CAS
    if (ok) {
      // §6 retirement point: the unique iunflag winner retires the replaced
      // leaf (now unreachable from the tree). The Info record `op` is NOT
      // retired here: the Clean word keeps pointing at it (so the update
      // field never repeats a value, §4.2) — it is retired by whichever CAS
      // later overwrites that word, or freed by the tree destructor.
      ctx.retire(op->l);
    }
  }

  // ---------------- HelpDelete (lines 88-99) ----------------
  template <typename RT>
  bool help_delete(DInfo* op, ExecCtx<RT>& ctx) {
    EFRB_DCHECK(op != nullptr);
    Traits::at(HookPoint::kBeforeMark);
    Update expected = op->pupdate;
    const Update marked = Update::make(UpdateState::kMark, op);
    const bool ok = op->p->update.compare_exchange(expected, marked);
    Traits::on_cas(CasStep::kMark, ok, op->p);  // line 91: mark CAS
    if (ok) {
      // The mark overwrote p's Clean word — retire the record it referenced.
      if (Info* prev = op->pupdate.info()) ctx.retire(prev);
    }
    if (ok || expected == marked) {  // line 92
      help_marked(op, ctx);  // line 93
      return true;           // line 94
    }
    // Mark failed because of a conflicting operation on p (e.g. a concurrent
    // Insert replaced the leaf — the scenario in Fig. 5's doomed Delete).
    help(expected, ctx);  // line 97
    Traits::at(HookPoint::kBeforeBacktrack);
    Update exp2 = Update::make(UpdateState::kDFlag, op);
    const Update clean = Update::make(UpdateState::kClean, op);
    const bool back = op->gp->update.compare_exchange(exp2, clean);
    Traits::on_cas(CasStep::kBacktrack, back, op->gp);  // line 98
    if (back) ctx.count_backtrack();
    // `op` stays referenced by gp's (Clean, op) word; whichever CAS later
    // overwrites that word retires it.
    return false;  // line 99: tell Delete to try again
  }

  // ---------------- HelpMarked (lines 100-106) ----------------
  template <typename RT>
  void help_marked(DInfo* op, ExecCtx<RT>& ctx) {
    EFRB_DCHECK(op != nullptr);
    // line 103-104: the sibling of the leaf being deleted. p is marked, so its
    // child pointers are frozen; these reads are stable.
    Node* other;
    if (op->p->right.load(std::memory_order_acquire) == op->l) {
      other = op->p->left.load(std::memory_order_acquire);
    } else {
      other = op->p->right.load(std::memory_order_acquire);
    }
    Traits::at(HookPoint::kBeforeDChild);
    cas_child(op->gp, op->p, other, CasStep::kDChild);  // line 105
    Traits::at(HookPoint::kBeforeDUnflag);
    Update expected = Update::make(UpdateState::kDFlag, op);
    const Update clean = Update::make(UpdateState::kClean, op);
    const bool ok = op->gp->update.compare_exchange(expected, clean);
    Traits::on_cas(CasStep::kDUnflag, ok, op->gp);  // line 106
    if (ok) {
      // §6 retirement point: the unique dunflag winner retires the spliced-out
      // parent and the deleted leaf. The DInfo `op` remains referenced by
      // gp's (Clean, op) word (and by the dead parent's Mark word); it is
      // retired by whichever CAS later overwrites gp's word, or freed by the
      // tree destructor.
      ctx.retire(op->p);
      ctx.retire(op->l);
    }
  }

  // ---------------- Help (lines 107-112) ----------------
  // The state tag selects the Info record's concrete type. Clean is a no-op:
  // callers pass witnessed values that may have turned Clean meanwhile.
  template <typename RT>
  void help(Update u, ExecCtx<RT>& ctx) {
    if (u.state() == UpdateState::kClean) return;
    ctx.count_help();
    Traits::at(HookPoint::kBeforeHelp);
    switch (u.state()) {
      case UpdateState::kIFlag:
        help_insert(static_cast<IInfo*>(u.info()), ctx);
        break;
      case UpdateState::kMark:
        help_marked(static_cast<DInfo*>(u.info()), ctx);
        break;
      case UpdateState::kDFlag:
        help_delete(static_cast<DInfo*>(u.info()), ctx);
        break;
      case UpdateState::kClean:
        break;
    }
  }

  // ---------------- CAS-Child (lines 113-118) ----------------
  // Chooses the left or right child field by comparing the new node's key
  // with the parent's key, then performs the single child CAS that is the
  // linearization point of a successful update.
  void cas_child(Internal* parent, Node* old_node, Node* new_node,
                 CasStep step) {
    EFRB_DCHECK(parent != nullptr && new_node != nullptr);
    BoundedCompare<Key, Compare>& cmp = cmp_;
    std::atomic<Node*>& child =
        cmp(new_node->key, parent->key) ? parent->left : parent->right;
    Node* expected = old_node;
    const bool ok = child.compare_exchange_strong(
        expected, new_node, std::memory_order_acq_rel,
        std::memory_order_acquire);
    Traits::on_cas(step, ok, parent);
  }

  // ---------------- ordered navigation helpers ----------------

  /// Smallest key >= k (or > k when strict). Single pass: descend the search
  /// path for k, remembering the right child captured at the last left turn;
  /// if the reached leaf does not satisfy the bound, the answer is the
  /// minimum of that captured subtree (in a leaf-oriented BST the reached
  /// leaf's key is adjacent to k in key order, so any better answer must sit
  /// in the first subtree to the right of the search path).
  std::optional<Key> bound_up(const Key& k, bool strict) const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    Node* l = root_;
    Node* last_right = nullptr;  // right sibling subtree of the search path
    while (l->is_internal) {
      auto* in = static_cast<Internal*>(l);
      if (cmp_.less(k, in->key)) {
        last_right = in->right.load(std::memory_order_acquire);
        l = in->left.load(std::memory_order_acquire);
      } else {
        l = in->right.load(std::memory_order_acquire);
      }
    }
    const Leaf* leaf = static_cast<Leaf*>(l);
    if (leaf->key.is_real()) {
      const bool ge = !cmp_.user_compare()(leaf->key.key, k);  // leaf >= k
      const bool gt = cmp_.user_compare()(k, leaf->key.key);   // leaf >  k
      if (strict ? gt : ge) return leaf->key.key;
    }
    if (last_right == nullptr) return std::nullopt;
    // Minimum of the captured subtree: follow left edges.
    Node* m = last_right;
    while (m->is_internal) {
      m = static_cast<Internal*>(m)->left.load(std::memory_order_acquire);
    }
    const Leaf* succ = static_cast<Leaf*>(m);
    if (!succ->key.is_real()) return std::nullopt;  // only sentinels right of k
    return succ->key.key;
  }

  /// Largest key <= k (or < k when strict); mirror image of bound_up. The
  /// left sibling subtree of the search path never contains sentinel leaves
  /// (sentinels live on the rightmost spine only), but we re-check is_real
  /// for robustness.
  std::optional<Key> bound_down(const Key& k, bool strict) const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    Node* l = root_;
    Node* last_left = nullptr;  // left sibling subtree of the search path
    while (l->is_internal) {
      auto* in = static_cast<Internal*>(l);
      if (cmp_.less(k, in->key)) {
        l = in->left.load(std::memory_order_acquire);
      } else {
        last_left = in->left.load(std::memory_order_acquire);
        l = in->right.load(std::memory_order_acquire);
      }
    }
    const Leaf* leaf = static_cast<Leaf*>(l);
    if (leaf->key.is_real()) {
      const bool le = !cmp_.user_compare()(k, leaf->key.key);  // leaf <= k
      const bool lt = cmp_.user_compare()(leaf->key.key, k);   // leaf <  k
      if (strict ? lt : le) return leaf->key.key;
    }
    if (last_left == nullptr) return std::nullopt;
    // Maximum of the captured subtree: follow right edges, but at
    // sentinel-keyed internals the real keys are on the left (Fig. 6).
    Node* m = last_left;
    while (m->is_internal) {
      auto* in = static_cast<Internal*>(m);
      m = in->key.is_real() ? in->right.load(std::memory_order_acquire)
                            : in->left.load(std::memory_order_acquire);
    }
    const Leaf* pred = static_cast<Leaf*>(m);
    if (!pred->key.is_real()) return std::nullopt;
    return pred->key.key;
  }

  // ---------------- diagnostics ----------------
  //
  // Both walks use explicit stacks: sequential insertion produces a
  // path-shaped tree (the paper leaves balancing to future work, §6), so
  // recursion depth would be O(n).

  template <typename Fn>
  void for_each_rec(Node* start, Fn& fn) const {
    std::vector<Node*> stack{start};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (n->is_internal) {
        auto* in = static_cast<Internal*>(n);
        // Right first so the left subtree pops first: in-order for leaves.
        stack.push_back(in->right.load(std::memory_order_acquire));
        stack.push_back(in->left.load(std::memory_order_acquire));
      } else {
        auto* leaf = static_cast<Leaf*>(n);
        if (leaf->key.is_real()) fn(leaf->key.key, leaf->value);
      }
    }
  }

  void validate_subtree(ValidationResult& r) const {
    struct Frame {
      Node* n;
      const BKey* lower;  // inclusive (equal keys go right)
      const BKey* upper;  // exclusive
      std::size_t depth;
    };
    std::vector<Frame> stack{{root_, nullptr, nullptr, 1}};
    while (!stack.empty() && r.ok) {
      const Frame f = stack.back();
      stack.pop_back();
      r.height = std::max(r.height, f.depth);
      if (f.lower != nullptr && cmp_(f.n->key, *f.lower)) {
        r.ok = false;
        r.error = "key below the lower bound inherited from an ancestor";
        return;
      }
      if (f.upper != nullptr && !cmp_(f.n->key, *f.upper)) {
        r.ok = false;
        r.error = "key not strictly below the upper bound from an ancestor";
        return;
      }
      if (!f.n->is_internal) {
        if (static_cast<Leaf*>(f.n)->key.is_real()) ++r.real_leaves;
        continue;
      }
      auto* in = static_cast<Internal*>(f.n);
      ++r.internals;
      Node* left = in->left.load(std::memory_order_acquire);
      Node* right = in->right.load(std::memory_order_acquire);
      if (left == nullptr || right == nullptr) {
        r.ok = false;
        r.error = "internal node with a null child (leaf-oriented shape broken)";
        return;
      }
      stack.push_back(Frame{left, f.lower, &in->key, f.depth + 1});
      stack.push_back(Frame{right, &in->key, f.upper, f.depth + 1});
    }
  }

  BoundedCompare<Key, Compare> cmp_;
  mutable Reclaimer reclaimer_;
  Internal* root_;  // line 19: the Root pointer is never changed
  // Shared counter block for the tree-level (non-handle) path.
  [[no_unique_address]] mutable Counters counters_;
  // Per-handle counter shards (empty type when stats are disabled).
  [[no_unique_address]] mutable Shards shards_;
};

/// Set flavour: keys only, no mapped values.
template <typename Key, typename Compare = std::less<Key>,
          typename Reclaimer = EpochReclaimer, typename Traits = NoopTraits>
using EfrbTreeSet = EfrbTreeMap<Key, detail::Unit, Compare, Reclaimer, Traits>;

}  // namespace efrb
