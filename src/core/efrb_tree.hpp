// Non-blocking binary search tree of Ellen, Fatourou, Ruppert & van Breugel
// (PODC 2010) — a linearizable, lock-free, leaf-oriented BST built from
// single-word CAS.
//
// This header is the public facade over the layered core:
//
//   layout.hpp    — node/Info-record layout and update-word packing (Fig. 7)
//   search.hpp    — the descent routines (Fig. 8 lines 23-35)
//   protocol.hpp  — TreeCore: the eight-step CAS protocol + helping (Fig. 8/9)
//   ordered.hpp   — min/max, bounds, range, for_each, validate
//   op_context.hpp— OpContext + the stats substrate threaded through them all
//
// Code structure mirrors the paper's pseudocode (Figures 7, 8, 9); comments
// of the form "line N" refer to its line numbers. The differences from the
// paper are exactly the ones a C++ implementation must make: memory
// reclamation (the paper assumes GC, §4.1/§6 — the tree is parameterized on
// a Reclaimer policy, default epoch-based; the full retirement protocol is
// documented at the top of protocol.hpp and in DESIGN.md §6), optional mapped
// values in leaves (§3; EfrbTreeSet aliases the map with an empty value
// type), and the insert_or_assign / replace extensions (soundness notes on
// TreeCore::insert / TreeCore::replace).
//
// Progress: non-blocking (lock-free). Find never writes shared memory and
// never helps; Insert/Delete help only operations that block them (§3,
// "conservative helping strategy").
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>

#include "core/alloc.hpp"
#include "core/debug_hooks.hpp"
#include "core/op_context.hpp"
#include "core/ordered.hpp"
#include "core/protocol.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/reclaimer.hpp"
#include "util/assert.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"

namespace efrb {

template <typename Key, typename Value = detail::Unit,
          typename Compare = std::less<Key>,
          typename Reclaimer = EpochReclaimer, typename Traits = NoopTraits>
class EfrbTreeMap {
  // Key attribution is opt-in per Traits (obs/heatmap.hpp sets kTrackKeys);
  // absent the member, contexts carry no key state and op_key() folds away.
  static constexpr bool kTrackKeys = [] {
    if constexpr (requires { Traits::kTrackKeys; }) {
      return static_cast<bool>(Traits::kTrackKeys);
    } else {
      return false;
    }
  }();
  // Layout computed directly from (Key, Value) — the allocator must be
  // chosen before Core exists, and Core's Layout is the same alias.
  using Layout = TreeLayout<Key, Value>;
  // Allocation policy (Traits::kPooledAlloc, default off): a per-structure
  // ObjectPool over the four node/record types — one uniform cache-line
  // block class, recycled through the reclaimer's PoolHook — or the plain
  // heap (see core/alloc.hpp).
  using Alloc = std::conditional_t<
      hooks::pooled_alloc_v<Traits>,
      ObjectPool<typename Layout::Leaf, typename Layout::Internal,
                 typename Layout::IInfo, typename Layout::DInfo>,
      HeapAllocator>;
  // Causal help-chain attribution is likewise opt-in (Traits::kCausalTrace):
  // handles acquire a ProgressSlot for the liveness watchdog, contexts stamp
  // Info records with their owner, and ops maintain the progress words.
  static constexpr bool kCausal = hooks::causal_trace_v<Traits>;
  // One OpContext instantiation serves both the tree-level path and the
  // Handle fast path: they drive the SAME instantiation of the core.
  using Ctx =
      OpContext<Reclaimer, Traits::kCountStats, kTrackKeys, Alloc, kCausal>;
  using Core = TreeCore<Key, Value, Compare, Traits, Ctx>;
  using Shards =
      std::conditional_t<Traits::kCountStats, ShardPool, EmptyShardPool>;
  using Progress =
      std::conditional_t<kCausal, ProgressTable, EmptyProgressTable>;

 public:
  using key_type = Key;
  using mapped_type = Value;
  using ValidationResult = efrb::ValidationResult;
  static constexpr const char* kName = "efrb-tree";

  explicit EfrbTreeMap(Compare cmp = Compare{},
                       Reclaimer reclaimer = Reclaimer{})
      : reclaimer_(std::move(reclaimer)), core_(std::move(cmp), &alloc_) {
    // Route retired nodes back into the pool instead of `delete` (installed
    // before the tree is shared — the PoolHook write is unsynchronized by
    // contract). The hook carries a keepalive share of the pool state, so
    // registry stragglers (leases, orphans) can return blocks even after
    // this object is gone.
    if constexpr (Alloc::kPooled) {
      reclaimer_.set_pool_return(alloc_.pool_hook());
    }
  }

  EfrbTreeMap(const EfrbTreeMap&) = delete;
  EfrbTreeMap& operator=(const EfrbTreeMap&) = delete;

  /// Requires quiescence, like all destructors (~TreeCore frees the
  /// remaining nodes and Clean-referenced Info records).
  ~EfrbTreeMap() = default;

  /// The fast path for repeated operations. A Handle owns (a) an explicit
  /// reclaimer attachment, so pin() is a plain member access instead of a
  /// thread_local registry lookup, (b) a cacheline-padded stats shard when
  /// Traits::kCountStats, and (c) private backoff/RNG state.
  ///
  /// Rules: a Handle is movable but thread-affine (a move is a hand-off) and
  /// must not outlive its tree. Each live handle occupies one reclaimer slot
  /// (counting against the reclaimer's max_threads) and one stat shard;
  /// destruction or detach() releases both.
  class Handle {
   public:
    /// Invalid; a move target only. Obtain real ones from handle().
    Handle() = default;

    Handle(Handle&& other) noexcept
        : tree_(std::exchange(other.tree_, nullptr)),
          att_(std::move(other.att_)),
          cache_(std::move(other.cache_)),
          shard_(std::exchange(other.shard_, nullptr)),
          shard_base_(other.shard_base_),
          progress_(std::exchange(other.progress_, nullptr)),
          backoff_(other.backoff_),
          rng_(other.rng_),
          tid_(other.tid_) {}

    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        detach();
        tree_ = std::exchange(other.tree_, nullptr);
        att_ = std::move(other.att_);
        cache_ = std::move(other.cache_);
        shard_ = std::exchange(other.shard_, nullptr);
        shard_base_ = other.shard_base_;
        progress_ = std::exchange(other.progress_, nullptr);
        backoff_ = other.backoff_;
        rng_ = other.rng_;
        tid_ = other.tid_;
      }
      return *this;
    }

    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    ~Handle() { detach(); }

    bool valid() const noexcept { return tree_ != nullptr; }

    /// Release the reclaimer slot and stat shard early (also done by the
    /// destructor). The handle becomes invalid; operations on it are UB.
    void detach() noexcept {
      if (tree_ != nullptr && shard_ != nullptr) Shards::release(shard_);
      shard_ = nullptr;
      if (tree_ != nullptr) Progress::release(progress_);
      progress_ = nullptr;
      att_.detach();
      // Flush the private block chain back to the pool's global free list
      // (no-op in heap mode — the Cache is stateless there).
      cache_ = typename Alloc::Cache{};
      tree_ = nullptr;
    }

    /// Find(k) through this handle's attachment.
    bool contains(const Key& k) const {
      return with_ctx([&](Ctx& c) { return tree_->core_.contains(k, c); });
    }

    std::optional<Value> get(const Key& k) const {
      return with_ctx([&](Ctx& c) { return tree_->core_.get(k, c); });
    }

    bool insert(const Key& k, Value v = Value{}) {
      return with_ctx([&](Ctx& c) {
        return tree_->core_.insert(k, std::move(v),
                                   /*assign_if_present=*/false, c) !=
               InsertOutcome::kDuplicate;
      });
    }

    bool insert_or_assign(const Key& k, Value v) {
      return with_ctx([&](Ctx& c) {
        return tree_->core_.insert(k, std::move(v),
                                   /*assign_if_present=*/true, c) ==
               InsertOutcome::kInserted;
      });
    }

    bool replace(const Key& k, const Value& expected, Value desired) {
      return with_ctx([&](Ctx& c) {
        return tree_->core_.replace(k, expected, std::move(desired), c);
      });
    }

    Value get_or_insert(const Key& k, Value v) {
      for (;;) {
        if (auto cur = get(k)) return *cur;
        if (insert(k, v)) return v;
      }
    }

    bool erase(const Key& k) {
      return with_ctx([&](Ctx& c) { return tree_->core_.erase(k, c); });
    }

    // Ordered queries through the handle's attachment: same weak-consistency
    // contract (see ordered.hpp), no per-call thread_local lookup.

    std::optional<Key> min_key() const {
      EFRB_DCHECK(valid());
      [[maybe_unused]] auto guard = att_.pin();
      return ordered::min_key<Layout>(tree_->core_.root());
    }

    std::optional<Key> max_key() const {
      EFRB_DCHECK(valid());
      [[maybe_unused]] auto guard = att_.pin();
      return ordered::max_key<Layout>(tree_->core_.root());
    }

    std::optional<Key> find_ge(const Key& k) const { return bound(k, false, true); }
    std::optional<Key> find_gt(const Key& k) const { return bound(k, true, true); }
    std::optional<Key> find_le(const Key& k) const { return bound(k, false, false); }
    std::optional<Key> find_lt(const Key& k) const { return bound(k, true, false); }

    template <typename Fn>
    void range(const Key& lo, const Key& hi, Fn&& fn) const {
      EFRB_DCHECK(valid());
      [[maybe_unused]] auto guard = att_.pin();
      ordered::range<Layout>(tree_->core_.root(), tree_->core_.cmp(), lo, hi,
                             std::forward<Fn>(fn));
    }

    std::size_t count_range(const Key& lo, const Key& hi) const {
      std::size_t n = 0;
      range(lo, hi, [&n](const Key&, const Value&) { ++n; });
      return n;
    }

    template <typename Fn>
    void for_each(Fn&& fn) const {
      EFRB_DCHECK(valid());
      [[maybe_unused]] auto guard = att_.pin();
      ordered::for_each<Layout>(tree_->core_.root(), std::forward<Fn>(fn));
    }

    /// Drain this handle's retire backlog. Call while not pinned.
    void flush() { att_.flush(); }

    /// Exactly this handle's own operations (zeros when stats are disabled).
    /// Shards are recycled with their lifetime totals intact, so the shard's
    /// value at acquisition is subtracted out.
    TreeStats local_stats() const noexcept {
      TreeStats s;
      if (shard_ != nullptr) {
        accumulate(s, shard_->counters);
        subtract(s, shard_base_);
      }
      return s;
    }

    /// Per-handle PRNG: splitmix-seeded, a distinct stream per handle.
    Xoshiro256& rng() noexcept { return rng_; }
    Backoff& backoff() noexcept { return backoff_; }

    /// This handle's thread identity: a small id unique among the tree's
    /// handles (creation order), carried into every debug-hook emission the
    /// handle's operations produce. kNoTid only on a default-constructed
    /// (invalid) handle.
    unsigned tid() const noexcept { return tid_; }

    /// True iff the most recent operation through this handle hit at least
    /// one retry pause (a failed attempt round). Lets latency sampling in
    /// workload/runner.hpp split clean ops from contended ones; valid until
    /// the next operation on this handle.
    bool last_op_retried() const noexcept { return last_retried_; }

   private:
    friend class EfrbTreeMap;

    explicit Handle(EfrbTreeMap* t)
        : tree_(t),
          att_(t->reclaimer_.attach()),
          cache_(t->alloc_.make_cache()),
          shard_(t->shards_.acquire()),
          rng_(next_handle_seed()),
          tid_(t->next_tid_.fetch_add(1, std::memory_order_relaxed)) {
      if (shard_ != nullptr) accumulate(shard_base_, shard_->counters);
      try {
        progress_ = t->progress_.acquire(tid_);
      } catch (...) {
        // The ctor body throwing skips ~Handle: hand the shard back here.
        if (shard_ != nullptr) Shards::release(shard_);
        throw;
      }
    }

    /// Pin through the attachment, build this handle's context (attachment
    /// retire sink, stat shard, private backoff, private allocator cache),
    /// run `fn`.
    template <typename Fn>
    decltype(auto) with_ctx(Fn&& fn) const {
      EFRB_DCHECK(valid());
      [[maybe_unused]] auto guard = att_.pin();
      last_retried_ = false;
      auto ctx = Ctx::attached(
          att_, shard_ != nullptr ? &shard_->counters : nullptr, &backoff_,
          tid_, &last_retried_, &tree_->alloc_, &cache_, progress_);
      return fn(ctx);
    }

    std::optional<Key> bound(const Key& k, bool strict, bool up) const {
      EFRB_DCHECK(valid());
      [[maybe_unused]] auto guard = att_.pin();
      return up ? ordered::bound_up<Layout>(tree_->core_.root(),
                                            tree_->core_.cmp(), k, strict)
                : ordered::bound_down<Layout>(tree_->core_.root(),
                                              tree_->core_.cmp(), k, strict);
    }

    EfrbTreeMap* tree_ = nullptr;
    mutable typename Reclaimer::Attachment att_;
    // Private allocator cache: blocks recycled by this handle's operations
    // are reused without touching the pool's global free list (empty in heap
    // mode). Declared after att_ to match the ctor's init order.
    mutable typename Alloc::Cache cache_;
    StatShard* shard_ = nullptr;
    TreeStats shard_base_;  // recycled shard's totals at acquisition
    ProgressSlot* progress_ = nullptr;  // null unless Traits::kCausalTrace
    mutable Backoff backoff_;
    mutable Xoshiro256 rng_{0};
    unsigned tid_ = kNoTid;
    mutable bool last_retried_ = false;
  };

  /// Create a per-thread operation handle bound to this tree (see Handle).
  Handle handle() { return Handle(this); }

  // ------------------------------------------------------------------
  // Dictionary operations (Fig. 8/9): convenience wrappers over the same
  // core the Handle drives — correct from any thread with zero setup, but
  // each call re-resolves the reclaimer's thread_local lease and, when stats
  // are enabled, counts into one shared cache line. Hot loops should go
  // through handle().
  // ------------------------------------------------------------------

  /// Find(k), lines 36-40. Read-only: never writes shared memory, never helps.
  bool contains(const Key& k) const {
    return with_ctx([&](Ctx& c) { return core_.contains(k, c); });
  }

  /// Map lookup: returns the value stored with k, if present. The value in a
  /// leaf is immutable after publication, so copying it under the pin is safe.
  std::optional<Value> get(const Key& k) const {
    return with_ctx([&](Ctx& c) { return core_.get(k, c); });
  }

  /// Insert(k), lines 42-62. Returns false iff k was already present.
  bool insert(const Key& k, Value v = Value{}) {
    return with_ctx([&](Ctx& c) {
      return core_.insert(k, std::move(v), /*assign_if_present=*/false, c) !=
             InsertOutcome::kDuplicate;
    });
  }

  /// Extension (not in the paper): insert k or replace the value of an
  /// existing k (soundness note on TreeCore::insert). Returns true if k was
  /// newly inserted, false if an existing value was replaced.
  bool insert_or_assign(const Key& k, Value v) {
    return with_ctx([&](Ctx& c) {
      return core_.insert(k, std::move(v), /*assign_if_present=*/true, c) ==
             InsertOutcome::kInserted;
    });
  }

  /// Extension: atomic compare-and-replace on a key's value. Returns true iff
  /// k was present with a value equal to `expected`, in which case the value
  /// is replaced by `desired` (as one linearizable step; soundness note on
  /// TreeCore::replace).
  bool replace(const Key& k, const Value& expected, Value desired) {
    return with_ctx([&](Ctx& c) {
      return core_.replace(k, expected, std::move(desired), c);
    });
  }

  /// Extension: returns the value stored at k, inserting `v` first if absent.
  /// (Composite of get/insert; each step linearizable, the pair is not one
  /// atomic step — a concurrent erase can interleave; then the loop retries.)
  Value get_or_insert(const Key& k, Value v) {
    for (;;) {
      if (auto cur = get(k)) return *cur;
      if (insert(k, v)) return v;
    }
  }

  /// Delete(k), lines 69-87. Returns false iff k was absent.
  bool erase(const Key& k) {
    return with_ctx([&](Ctx& c) { return core_.erase(k, c); });
  }

  // --- Ordered queries (see ordered.hpp for the consistency contract) ---

  /// Smallest key, or nullopt when empty.
  std::optional<Key> min_key() const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    return ordered::min_key<Layout>(core_.root());
  }

  /// Largest key, or nullopt when empty.
  std::optional<Key> max_key() const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    return ordered::max_key<Layout>(core_.root());
  }

  /// Smallest key >= k (lower bound), or nullopt.
  std::optional<Key> find_ge(const Key& k) const { return bound(k, false, true); }
  /// Smallest key > k, or nullopt.
  std::optional<Key> find_gt(const Key& k) const { return bound(k, true, true); }
  /// Largest key <= k, or nullopt.
  std::optional<Key> find_le(const Key& k) const { return bound(k, false, false); }
  /// Largest key < k, or nullopt.
  std::optional<Key> find_lt(const Key& k) const { return bound(k, true, false); }

  /// Visits every (key, value) with lo <= key <= hi in order, pruning
  /// subtrees by the BST bounds. Weakly consistent under concurrency.
  template <typename Fn>
  void range(const Key& lo, const Key& hi, Fn&& fn) const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    ordered::range<Layout>(core_.root(), core_.cmp(), lo, hi,
                           std::forward<Fn>(fn));
  }

  /// Number of keys in [lo, hi] (weakly consistent; exact at quiescence).
  std::size_t count_range(const Key& lo, const Key& hi) const {
    std::size_t n = 0;
    range(lo, hi, [&n](const Key&, const Value&) { ++n; });
    return n;
  }

  // --- Traversal and diagnostics (weakly consistent under concurrency) ---

  /// Depth-first visit of every real (key, value) pair; weakly consistent
  /// under concurrency, an exact in-order enumeration on a quiescent tree.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    ordered::for_each<Layout>(core_.root(), std::forward<Fn>(fn));
  }

  /// Number of real keys; exact only on a quiescent tree. O(n).
  std::size_t size() const {
    std::size_t n = 0;
    for_each([&n](const Key&, const Value&) { ++n; });
    return n;
  }

  bool empty() const { return !min_key().has_value(); }

  /// Structural validation for tests (quiescent trees); see
  /// ordered::validate.
  ValidationResult validate() const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    return ordered::validate<Layout>(core_.root(), core_.cmp());
  }

  TreeStats stats() const noexcept { return stats_snapshot(); }

  /// Combined relaxed-read snapshot of per-tree counters (Traits-gated):
  /// the shared block written by the tree-level path plus every handle
  /// shard, live or released (shards hold lifetime totals).
  TreeStats stats_snapshot() const noexcept {
    TreeStats s;
    if constexpr (Traits::kCountStats) {
      accumulate(s, counters_);
      shards_.accumulate_into(s);
    }
    return s;
  }

  Reclaimer& reclaimer() noexcept { return reclaimer_; }

  /// The node allocator (ObjectPool under PooledTraits, stateless
  /// HeapAllocator otherwise); exposes PoolStats gauges to tests and the
  /// observability layer.
  Alloc& allocator() noexcept { return alloc_; }

 private:
  /// Pin through the reclaimer, build the tree-level context (thread_local
  /// lease retire sink, shared counter block, no backoff — matching the
  /// original per-call behaviour exactly), run `fn`.
  template <typename Fn>
  decltype(auto) with_ctx(Fn&& fn) const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    // Allocation via the pool's thread_local cache lease (the analogue of
    // the reclaimer lease this path already uses); nulls in heap mode are
    // never read.
    auto ctx = Ctx::tree_level(reclaimer_, &counters_, &alloc_,
                               Alloc::kPooled ? alloc_.local_cache() : nullptr);
    return fn(ctx);
  }

  std::optional<Key> bound(const Key& k, bool strict, bool up) const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    return up ? ordered::bound_up<Layout>(core_.root(), core_.cmp(), k, strict)
              : ordered::bound_down<Layout>(core_.root(), core_.cmp(), k,
                                            strict);
  }

  // Declaration order is load-bearing: the pool must be constructed before
  // the core (whose constructor allocates the sentinels through it) and
  // destroyed last — ~Core returns every node to the pool, and ~Reclaimer's
  // registry may still run pooled disposers (their safety net is the
  // PoolHook keepalive, but the common path never needs it).
  [[no_unique_address]] mutable Alloc alloc_;
  mutable Reclaimer reclaimer_;
  Core core_;
  mutable StatCounters counters_;  // tree-level (non-handle) counter block
  [[no_unique_address]] mutable Shards shards_;  // per-handle counter shards
  // Per-handle liveness progress slots (empty unless Traits::kCausalTrace);
  // the watchdog samples these through progress_table().
  [[no_unique_address]] mutable Progress progress_;
  std::atomic<unsigned> next_tid_{0};  // handle-id source (see Handle::tid)

 public:
  /// The per-handle progress table the liveness watchdog samples
  /// (obs/watchdog.hpp). Meaningful only when Traits::kCausalTrace; the
  /// uninstrumented table is an empty stand-in.
  const Progress& progress_table() const noexcept { return progress_; }
};

/// Set flavour: keys only, no mapped values.
template <typename Key, typename Compare = std::less<Key>,
          typename Reclaimer = EpochReclaimer, typename Traits = NoopTraits>
using EfrbTreeSet = EfrbTreeMap<Key, detail::Unit, Compare, Reclaimer, Traits>;

}  // namespace efrb
