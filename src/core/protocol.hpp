// Layer 3 of the EFRB core: the CAS protocol.
//
// TreeCore owns the root and implements the paper's update machinery — the
// iflag/ichild/iunflag steps of Insert (Fig. 8), the dflag/mark/dchild/
// dunflag/backtrack steps of Delete (Fig. 9), and the Help dispatch — as a
// reusable state machine over the types in layout.hpp and the descent in
// search.hpp. Comments of the form "line N" refer to the paper's pseudocode
// line numbers.
//
// Every protocol CAS emits hooks::emit_cas<Traits>(step, ok, node, tid, key)
// immediately after executing and hooks::emit_at<Traits>(point, tid, key) at
// the named pause points — the full step+thread+key identity of the site,
// keyed on by the fault-injection layer (src/inject/), pinned down by the
// schedule-sweep and state-machine suites, and bucketed by the contention
// heatmap (obs/heatmap.hpp). The key comes from ctx.set_op_key(), stamped at
// each public entry point below; it is the kNoKey constant (and costs
// nothing) unless the OpContext was instantiated with key tracking. Each CAS is additionally gated on
// hooks::allow_cas<Traits>(step, node, tid): a vetoed CAS is treated exactly
// like one that lost its race (the fault model forced-failure injection
// relies on; a Traits without the member compiles the gate away). Each
// on_cas site is paired with ctx.count_cas(step, ok), the per-step breakdown
// counters (compiled out when Traits::kCountStats is false).
//
// Callers hold a pinned region for the duration of every call (the facade and
// its handles do this); `Ctx` is the OpContext instantiation threading the
// retire sink, stat counters and retry backoff through each operation.
//
// Retirement protocol (see DESIGN.md §6 for the full argument):
//   - Nodes: the winner of an unflag CAS retires the node(s) its operation
//     made unreachable (the replaced leaf for Insert; the spliced-out parent
//     and deleted leaf for Delete). This matches the retirement points the
//     paper's §6 proposes. Marked "§6 retirement point" below.
//   - Info records: a record stays referenced by the node's update word even
//     after the unflag CAS (the Clean word keeps the pointer so that
//     update-word values never repeat, §4.2). It is therefore retired by the
//     winner of the NEXT CAS that overwrites a Clean word referencing it (an
//     iflag/dflag/mark CAS), i.e. exactly when the last reference from shared
//     memory disappears — the behaviour a tracing GC gives the paper for
//     free. Retiring at the unflag CAS instead would permit an ABA on the
//     update word: the record's memory could be recycled into a new record
//     for the same node, making a stale (Clean, info) expected-value match
//     again and a doomed Delete's mark CAS succeed — re-introducing the
//     Fig. 3(c) lost-insert bug.
#pragma once

#include <atomic>
#include <optional>
#include <utility>
#include <vector>

#include "core/bounded_key.hpp"
#include "core/debug_hooks.hpp"
#include "core/layout.hpp"
#include "core/search.hpp"
#include "util/assert.hpp"

namespace efrb {

/// Result of the insert machinery (shared by insert / insert_or_assign).
enum class InsertOutcome { kInserted, kAssigned, kDuplicate };

template <typename Key, typename Value, typename Compare, typename Traits,
          typename Ctx>
class TreeCore {
 public:
  using Layout = TreeLayout<Key, Value>;
  using BKey = typename Layout::BKey;
  using Node = typename Layout::Node;
  using Leaf = typename Layout::Leaf;
  using Internal = typename Layout::Internal;
  using IInfo = typename Layout::IInfo;
  using DInfo = typename Layout::DInfo;
  using SearchResult = typename Layout::SearchResult;
  using AllocT = typename Ctx::AllocT;

  /// `alloc` must outlive the core and is required when AllocT::kPooled (the
  /// facade passes its own pool); in heap mode it may stay null — every
  /// allocation folds to new/delete.
  explicit TreeCore(Compare cmp, AllocT* alloc = nullptr)
      : cmp_(std::move(cmp)), alloc_(alloc) {
    // Initialization per Figure 7 (lines 19-22) / Figure 6(a): the permanent
    // root has key ∞₂ and leaf children ∞₁, ∞₂. Root is never replaced.
    //
    // Exception-safe: if a later allocation (or a Value{} constructor)
    // throws, the earlier sentinels are rolled back — a throwing constructor
    // no longer leaks the left leaf (or both leaves).
    Leaf* left = make_direct<Leaf>(BKey::inf1(), Value{});
    Leaf* right = nullptr;
    try {
      right = make_direct<Leaf>(BKey::inf2(), Value{});
      root_ = make_direct<Internal>(BKey::inf2(), left, right);
    } catch (...) {
      dispose_direct(right);
      dispose_direct(left);
      throw;
    }
  }

  TreeCore(const TreeCore&) = delete;
  TreeCore& operator=(const TreeCore&) = delete;

  /// Requires quiescence (no concurrent operations), like all destructors.
  ~TreeCore() {
    std::vector<Node*> stack{root_};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (n->is_internal) {
        auto* in = static_cast<Internal*>(n);
        stack.push_back(in->left.load(std::memory_order_relaxed));
        stack.push_back(in->right.load(std::memory_order_relaxed));
        // An Info record referenced by an in-tree Clean word was never
        // overwritten, hence never retired — free it here. Each record is
        // referenced by at most one in-tree Clean word (an IInfo by its p, a
        // DInfo by its gp; a DInfo's Mark reference lives on a node already
        // spliced out of the tree), so no double free is possible. At
        // quiescence no in-tree word can be flagged or marked.
        const Update u = in->update.load(std::memory_order_relaxed);
        EFRB_DCHECK(u.state() == UpdateState::kClean);
        if (u.state() == UpdateState::kClean) dispose_direct(u.info());
        dispose_direct(in);
      } else {
        dispose_direct(static_cast<Leaf*>(n));
      }
    }
  }

  const BoundedCompare<Key, Compare>& cmp() const noexcept { return cmp_; }
  Internal* root() const noexcept { return root_; }

  // ---------------- Search (lines 23-35) ----------------

  SearchResult search(const Key& k, Ctx& ctx) const {
    ctx.set_op_key(k);
    // Under the §6 Traits::kSearchHelpsMarked variant the descent splices out
    // marked nodes it meets; otherwise the callback is compiled away inside
    // search_path and the Search is read-only.
    auto splice_marked = [this, &ctx](DInfo* op) {
      const_cast<TreeCore*>(this)->help_marked(op, ctx);
    };
    if constexpr (Ctx::kCounts) {
      // Depth telemetry: sample the descent's depth into the stats shard.
      // Uncounted contexts skip even the local counter.
      std::size_t depth = 0;
      const SearchResult r =
          search_path<Traits, Layout>(root_, k, cmp_, splice_marked, &depth);
      ctx.count_depth(depth);
      return r;
    } else {
      return search_path<Traits, Layout>(root_, k, cmp_, splice_marked);
    }
  }

  /// The leaf a Find for k terminates at. Routed through the lean find_path
  /// descent (no SearchResult capture, no update-word loads unless the §6
  /// helping variant is on) under the default Traits::kLeanFind; traits with
  /// kLeanFind = false restore the shared full-Search read path (the A/B
  /// counterpart, and the oracle for the differential tests).
  const Leaf* find_leaf(const Key& k, Ctx& ctx) const {
    ctx.set_op_key(k);
    if constexpr (hooks::lean_find_v<Traits>) {
      auto splice_marked = [this, &ctx](DInfo* op) {
        const_cast<TreeCore*>(this)->help_marked(op, ctx);
      };
      if constexpr (Ctx::kCounts) {
        std::size_t depth = 0;
        const Leaf* l =
            find_path<Traits, Layout>(root_, k, cmp_, splice_marked, &depth);
        ctx.count_depth(depth);
        return l;
      } else {
        return find_path<Traits, Layout>(root_, k, cmp_, splice_marked);
      }
    } else {
      return search(k, ctx).l;
    }
  }

  /// Find(k), lines 36-40. Caller must hold a pinned region.
  bool contains(const Key& k, Ctx& ctx) const {
    return cmp_.equals(k, find_leaf(k, ctx)->key);
  }

  std::optional<Value> get(const Key& k, Ctx& ctx) const {
    const Leaf* l = find_leaf(k, ctx);
    if (!cmp_.equals(k, l->key)) return std::nullopt;
    return l->value;
  }

  // ---------------- Insert (lines 42-62) ----------------

  /// With assign_if_present (the insert_or_assign extension, not in the
  /// paper): a duplicate key replaces the existing leaf with new_leaf via the
  /// same flag/child/unflag protocol — flag the parent (iflag), CAS the child
  /// pointer from the old leaf to a fresh leaf with the same key (ichild),
  /// unflag. Every proof obligation is preserved: the child CAS still
  /// installs a never-before-seen node on the correct side.
  InsertOutcome insert(const Key& k, Value v, bool assign_if_present,
                       Ctx& ctx) {
    Leaf* new_leaf;
    {
      hooks::PhaseScope<Traits> alloc_phase(Phase::kPoolAlloc, ctx.tid());
      new_leaf = ctx.template make<Leaf>(BKey::real(k), std::move(v));  // line 45
    }
    ctx.begin_op();
    for (;;) {
      const SearchResult s = search(k, ctx);  // line 49
      hooks::emit_at<Traits>(HookPoint::kAfterSearch, ctx.tid(), ctx.op_key());
      if (cmp_.equals(k, s.l->key)) {  // line 50: duplicate key
        if (!assign_if_present) {
          ctx.dispose(new_leaf);  // never published
          ctx.end_op();
          return InsertOutcome::kDuplicate;
        }
        // Extension: replace the existing leaf with new_leaf via the same
        // flag/child/unflag protocol. As in the paper's line 51, the parent
        // must be Clean before we may attempt to flag it.
        if (s.pupdate.state() != UpdateState::kClean) {
          help(s.pupdate, ctx);
          ctx.count_insert_retry();
          hooks::emit_at<Traits>(HookPoint::kInsertRetry, ctx.tid(), ctx.op_key());
          ctx.retry_pause();
          continue;
        }
        if (try_install(s, new_leaf, ctx)) {
          ctx.end_op();
          return InsertOutcome::kAssigned;
        }
        ctx.retry_pause();
        continue;
      }
      if (s.pupdate.state() != UpdateState::kClean) {  // line 51
        help(s.pupdate, ctx);
        ctx.count_insert_retry();
        hooks::emit_at<Traits>(HookPoint::kInsertRetry, ctx.tid(), ctx.op_key());
        ctx.retry_pause();
        continue;
      }
      // lines 53-54: build the replacement subtree. The new internal node's
      // key is max(k, l->key); the leaf with the smaller key goes left.
      Leaf* new_sibling;
      Internal* new_internal;
      {
        hooks::PhaseScope<Traits> alloc_phase(Phase::kPoolAlloc, ctx.tid());
        new_sibling = ctx.template make<Leaf>(s.l->key, s.l->value);
        if (cmp_.less(k, s.l->key)) {
          new_internal = ctx.template make<Internal>(s.l->key, new_leaf, new_sibling);
        } else {
          new_internal = ctx.template make<Internal>(BKey::real(k), new_sibling, new_leaf);
        }
      }
      if (try_install(s, new_internal, ctx)) {
        ctx.end_op();
        return InsertOutcome::kInserted;
      }
      {
        // iflag failed: dismantle the unpublished subtree (new_leaf is reused).
        hooks::PhaseScope<Traits> alloc_phase(Phase::kPoolAlloc, ctx.tid());
        ctx.dispose(new_sibling);
        ctx.dispose(new_internal);
      }
      ctx.retry_pause();
    }
  }

  /// Atomic compare-and-replace on a key's value (extension, not in the
  /// paper). Soundness: a leaf's value is immutable, so the value read after
  /// Search belongs to that exact leaf forever; the iflag CAS succeeds only
  /// if the parent's update word is unchanged since the Search read it, and
  /// child pointers change only under a flag with a fresh record (word values
  /// never repeat) — so iflag success certifies the examined leaf is still
  /// the current leaf for k, making the subsequent ichild swap an atomic
  /// value-CAS. Linearization: the ichild CAS on success; a point during the
  /// Search where the leaf (or its absence) was on the search path on
  /// failure.
  bool replace(const Key& k, const Value& expected, Value desired, Ctx& ctx) {
    Leaf* new_leaf = nullptr;
    ctx.begin_op();
    for (;;) {
      const SearchResult s = search(k, ctx);
      hooks::emit_at<Traits>(HookPoint::kAfterSearch, ctx.tid(), ctx.op_key());
      if (!cmp_.equals(k, s.l->key) || !(s.l->value == expected)) {
        ctx.dispose(new_leaf);  // never published (may still be null)
        ctx.end_op();
        return false;
      }
      if (s.pupdate.state() != UpdateState::kClean) {
        help(s.pupdate, ctx);
        ctx.count_insert_retry();
        hooks::emit_at<Traits>(HookPoint::kInsertRetry, ctx.tid(), ctx.op_key());
        ctx.retry_pause();
        continue;
      }
      if (new_leaf == nullptr) {
        hooks::PhaseScope<Traits> alloc_phase(Phase::kPoolAlloc, ctx.tid());
        new_leaf = ctx.template make<Leaf>(BKey::real(k), std::move(desired));
      }
      if (try_install(s, new_leaf, ctx)) {
        ctx.end_op();
        return true;
      }
      ctx.retry_pause();
    }
  }

  // ---------------- Delete (lines 69-87) ----------------

  bool erase(const Key& k, Ctx& ctx) {
    ctx.begin_op();
    for (;;) {
      const SearchResult s = search(k, ctx);  // line 75
      hooks::emit_at<Traits>(HookPoint::kAfterSearch, ctx.tid(), ctx.op_key());
      if (!cmp_.equals(k, s.l->key)) {  // line 76
        ctx.end_op();
        return false;
      }
      if (s.gpupdate.state() != UpdateState::kClean) {  // line 77
        help(s.gpupdate, ctx);
        ctx.count_delete_retry();
        hooks::emit_at<Traits>(HookPoint::kDeleteRetry, ctx.tid(), ctx.op_key());
        ctx.retry_pause();
        continue;
      }
      if (s.pupdate.state() != UpdateState::kClean) {  // line 78
        help(s.pupdate, ctx);
        ctx.count_delete_retry();
        hooks::emit_at<Traits>(HookPoint::kDeleteRetry, ctx.tid(), ctx.op_key());
        ctx.retry_pause();
        continue;
      }
      // gp is null only when the reached leaf is the ∞₁ sentinel at depth 1,
      // and sentinels never compare equal to a real key, so the line-76
      // check above guarantees a real (depth >= 2) leaf here.
      EFRB_DCHECK(s.gp != nullptr);
      // line 80: op := new DInfo(gp, p, l, pupdate)
      DInfo* op;
      {
        hooks::PhaseScope<Traits> alloc_phase(Phase::kPoolAlloc, ctx.tid());
        op = ctx.template make<DInfo>(s.gp, s.p, s.l, s.pupdate);
      }
      if constexpr (hooks::causal_trace_v<Traits>) {
        // Causal owner stamp: plain store, ordered before helpers by the
        // dflag CAS (acq_rel) that publishes the record.
        op->owner = ctx.owner();
      }
      Update expected = s.gpupdate;
      const Update flagged = Update::make(UpdateState::kDFlag, op);
      // Memory-order audit (ellen_bintree_analysis.md, step "dflag",
      // line 81): stays acq_rel/acquire. Success publishes the freshly built
      // DInfo behind the flagged word (release side); failure feeds the
      // witnessed value into help(), which dereferences its Info pointer —
      // the acquire on failure is what makes that dereference safe.
      const bool ok =
          hooks::allow_cas<Traits>(CasStep::kDFlag, s.gp, ctx.tid()) &&
          s.gp->update.compare_exchange(expected, flagged);
      hooks::emit_cas<Traits>(CasStep::kDFlag, ok, s.gp, ctx.tid(), ctx.op_key());  // line 81: dflag CAS
      ctx.count_cas(CasStep::kDFlag, ok);
      ctx.count_delete_attempt();
      if (ok) {
        // Last shared reference to the record behind gp's old Clean word.
        if (Info* prev = s.gpupdate.info()) retire_scoped(prev, ctx);
        hooks::emit_at<Traits>(HookPoint::kAfterDFlag, ctx.tid(), ctx.op_key());
        if (help_delete(op, ctx)) {  // line 83
          ctx.end_op();
          return true;
        }
        // Mark failed; the DFlag has been backtracked and op retired by the
        // backtrack winner. Retry from scratch (line 98's False return).
        ctx.count_delete_retry();
        hooks::emit_at<Traits>(HookPoint::kDeleteRetry, ctx.tid(), ctx.op_key());
        ctx.retry_pause();
      } else {
        ctx.dispose(op);      // never published; safe to free immediately
        help(expected, ctx);  // line 85: help whoever owns gp now
        ctx.count_delete_retry();
        hooks::emit_at<Traits>(HookPoint::kDeleteRetry, ctx.tid(), ctx.op_key());
        ctx.retry_pause();
      }
    }
  }

 private:
  /// Retirement with its cost attributed to Phase::kReclamation. For Traits
  /// without the phase hook (the default) this is exactly ctx.retire(p) —
  /// both scope edges fold away (see debug_hooks.hpp).
  template <typename T>
  void retire_scoped(T* p, Ctx& ctx) {
    hooks::PhaseScope<Traits> reclaim_phase(Phase::kReclamation, ctx.tid());
    ctx.retire(p);
  }

  /// Common tail of Insert and insert_or_assign: flag s.p, then complete via
  /// HelpInsert. On iflag failure, helps the obstructor and returns false
  /// (caller owns dismantling `new_node`'s unpublished parts and retrying).
  bool try_install(const SearchResult& s, Node* new_node, Ctx& ctx) {
    IInfo* op;
    {
      hooks::PhaseScope<Traits> alloc_phase(Phase::kPoolAlloc, ctx.tid());
      op = ctx.template make<IInfo>(s.p, s.l, new_node);  // line 55
    }
    if constexpr (hooks::causal_trace_v<Traits>) {
      // Causal owner stamp: plain store, ordered before helpers by the iflag
      // CAS (acq_rel) that publishes the record.
      op->owner = ctx.owner();
    }
    Update expected = s.pupdate;
    const Update flagged = Update::make(UpdateState::kIFlag, op);
    // Memory-order audit (ellen_bintree_analysis.md, step "iflag", line 56):
    // stays acq_rel/acquire — success publishes the IInfo (and the new
    // subtree it references) behind the flagged word; the failure value goes
    // straight into help(), which dereferences the witnessed Info pointer.
    const bool ok =
        hooks::allow_cas<Traits>(CasStep::kIFlag, s.p, ctx.tid()) &&
        s.p->update.compare_exchange(expected, flagged);
    hooks::emit_cas<Traits>(CasStep::kIFlag, ok, s.p, ctx.tid(), ctx.op_key());  // line 56: iflag CAS
    ctx.count_cas(CasStep::kIFlag, ok);
    ctx.count_insert_attempt();
    if (ok) {
      // This CAS removed the last shared reference to the Info record that
      // the previous (Clean) word pointed to: retire it now.
      if (Info* prev = s.pupdate.info()) retire_scoped(prev, ctx);
      hooks::emit_at<Traits>(HookPoint::kAfterIFlag, ctx.tid(), ctx.op_key());
      help_insert(op, ctx);  // line 58
      return true;           // line 59
    }
    ctx.dispose(op);      // never published
    help(expected, ctx);  // line 61: the witnessed value blocked us
    ctx.count_insert_retry();
    hooks::emit_at<Traits>(HookPoint::kInsertRetry, ctx.tid(), ctx.op_key());
    return false;
  }

  // ---------------- HelpInsert (lines 64-68) ----------------
  void help_insert(IInfo* op, Ctx& ctx) {
    EFRB_DCHECK(op != nullptr);
    hooks::emit_at<Traits>(HookPoint::kBeforeIChild, ctx.tid(), ctx.op_key());
    cas_child(op->p, op->l, op->new_node, CasStep::kIChild, ctx);  // line 66
    hooks::emit_at<Traits>(HookPoint::kBeforeIUnflag, ctx.tid(), ctx.op_key());
    Update expected = Update::make(UpdateState::kIFlag, op);
    const Update clean = Update::make(UpdateState::kClean, op);
    // Memory-order audit (ellen_bintree_analysis.md, step "iunflag", line 67):
    // release/relaxed suffices. Success must publish the completed ichild
    // swap before the word turns Clean (release); the failure value is
    // discarded — a failed iunflag means another helper already cleaned the
    // word, and this helper reads nothing from it afterwards (no help()
    // dispatch on the witnessed value), so no acquire is needed either way.
    const bool ok =
        hooks::allow_cas<Traits>(CasStep::kIUnflag, op->p, ctx.tid()) &&
        op->p->update.compare_exchange(expected, clean,
                                       std::memory_order_release,
                                       std::memory_order_relaxed);
    hooks::emit_cas<Traits>(CasStep::kIUnflag, ok, op->p, ctx.tid(), ctx.op_key());  // line 67: iunflag CAS
    ctx.count_cas(CasStep::kIUnflag, ok);
    if (ok) {
      // §6 retirement point: the unique iunflag winner retires the replaced
      // leaf (now unreachable from the tree). The Info record `op` is NOT
      // retired here: the Clean word keeps pointing at it (so the update
      // field never repeats a value, §4.2) — it is retired by whichever CAS
      // later overwrites that word, or freed by the tree destructor.
      retire_scoped(op->l, ctx);
    }
  }

  // ---------------- HelpDelete (lines 88-99) ----------------
  bool help_delete(DInfo* op, Ctx& ctx) {
    EFRB_DCHECK(op != nullptr);
    hooks::emit_at<Traits>(HookPoint::kBeforeMark, ctx.tid(), ctx.op_key());
    Update expected = op->pupdate;
    const Update marked = Update::make(UpdateState::kMark, op);
    // Memory-order audit (ellen_bintree_analysis.md, step "mark", line 91):
    // stays acq_rel/acquire — the marked word re-publishes op for the §6
    // helping Search (which dereferences it as a DInfo), and the failure
    // value feeds help() at line 97 below.
    const bool ok =
        hooks::allow_cas<Traits>(CasStep::kMark, op->p, ctx.tid()) &&
        op->p->update.compare_exchange(expected, marked);
    hooks::emit_cas<Traits>(CasStep::kMark, ok, op->p, ctx.tid(), ctx.op_key());  // line 91: mark CAS
    ctx.count_cas(CasStep::kMark, ok);
    if (ok) {
      // The mark overwrote p's Clean word — retire the record it referenced.
      if (Info* prev = op->pupdate.info()) retire_scoped(prev, ctx);
    }
    if (ok || expected == marked) {  // line 92
      help_marked(op, ctx);  // line 93
      return true;           // line 94
    }
    // Mark failed because of a conflicting operation on p (e.g. a concurrent
    // Insert replaced the leaf — the scenario in Fig. 5's doomed Delete).
    help(expected, ctx);  // line 97
    hooks::emit_at<Traits>(HookPoint::kBeforeBacktrack, ctx.tid(), ctx.op_key());
    Update exp2 = Update::make(UpdateState::kDFlag, op);
    const Update clean = Update::make(UpdateState::kClean, op);
    // Memory-order audit (ellen_bintree_analysis.md, step "backtrack",
    // line 98): release/relaxed. The backtrack publishes no data structure
    // change at all — it reverts gp's word from (DFlag, op) to (Clean, op)
    // after a failed mark; release covers the (already-ordered) mark attempt,
    // and the failure value is discarded (another helper won the backtrack).
    const bool back =
        hooks::allow_cas<Traits>(CasStep::kBacktrack, op->gp, ctx.tid()) &&
        op->gp->update.compare_exchange(exp2, clean,
                                        std::memory_order_release,
                                        std::memory_order_relaxed);
    hooks::emit_cas<Traits>(CasStep::kBacktrack, back, op->gp, ctx.tid(), ctx.op_key());  // line 98
    ctx.count_cas(CasStep::kBacktrack, back);
    if (back) ctx.count_backtrack();
    // `op` stays referenced by gp's (Clean, op) word; whichever CAS later
    // overwrites that word retires it.
    return false;  // line 99: tell Delete to try again
  }

  // ---------------- HelpMarked (lines 100-106) ----------------
  void help_marked(DInfo* op, Ctx& ctx) {
    EFRB_DCHECK(op != nullptr);
    // line 103-104: the sibling of the leaf being deleted. p is marked, so its
    // child pointers are frozen; these reads are stable.
    Node* other;
    if (op->p->right.load(std::memory_order_acquire) == op->l) {
      other = op->p->left.load(std::memory_order_acquire);
    } else {
      other = op->p->right.load(std::memory_order_acquire);
    }
    hooks::emit_at<Traits>(HookPoint::kBeforeDChild, ctx.tid(), ctx.op_key());
    cas_child(op->gp, op->p, other, CasStep::kDChild, ctx);  // line 105
    hooks::emit_at<Traits>(HookPoint::kBeforeDUnflag, ctx.tid(), ctx.op_key());
    Update expected = Update::make(UpdateState::kDFlag, op);
    const Update clean = Update::make(UpdateState::kClean, op);
    // Memory-order audit (ellen_bintree_analysis.md, step "dunflag",
    // line 106): release/relaxed, same argument as iunflag — success must
    // order the dchild splice before the word turns Clean; the failure value
    // is discarded (a concurrent helper already unflagged) and nothing is
    // read through it afterwards.
    const bool ok =
        hooks::allow_cas<Traits>(CasStep::kDUnflag, op->gp, ctx.tid()) &&
        op->gp->update.compare_exchange(expected, clean,
                                        std::memory_order_release,
                                        std::memory_order_relaxed);
    hooks::emit_cas<Traits>(CasStep::kDUnflag, ok, op->gp, ctx.tid(), ctx.op_key());  // line 106
    ctx.count_cas(CasStep::kDUnflag, ok);
    if (ok) {
      // §6 retirement point: the unique dunflag winner retires the spliced-out
      // parent and the deleted leaf. The DInfo `op` remains referenced by
      // gp's (Clean, op) word (and by the dead parent's Mark word); it is
      // retired by whichever CAS later overwrites gp's word, or freed by the
      // tree destructor.
      hooks::PhaseScope<Traits> reclaim_phase(Phase::kReclamation, ctx.tid());
      ctx.retire(op->p);
      ctx.retire(op->l);
    }
  }

  // ---------------- Help (lines 107-112) ----------------
  // The state tag selects the Info record's concrete type. Clean is a no-op:
  // callers pass witnessed values that may have turned Clean meanwhile.
  void help(Update u, Ctx& ctx) {
    if (u.state() == UpdateState::kClean) return;
    ctx.count_help();
    // The owner stamp of the operation being helped: written by its creator
    // before the flagging CAS published the record, read here strictly after
    // an acquire load of the flagged word — a plain read is race-free. The
    // load exists only in kCausalTrace instantiations.
    std::uint64_t owner = kNoOwner;
    if constexpr (hooks::causal_trace_v<Traits>) {
      if (u.info() != nullptr) owner = u.info()->owner;
    }
    hooks::emit_help<Traits>(HookPoint::kBeforeHelp, ctx.tid(), ctx.op_key(),
                             owner);
    ctx.help_enter();
    switch (u.state()) {
      case UpdateState::kIFlag:
        help_insert(static_cast<IInfo*>(u.info()), ctx);
        break;
      case UpdateState::kMark:
        help_marked(static_cast<DInfo*>(u.info()), ctx);
        break;
      case UpdateState::kDFlag:
        help_delete(static_cast<DInfo*>(u.info()), ctx);
        break;
      case UpdateState::kClean:
        break;
    }
    ctx.help_exit();
    hooks::emit_help<Traits>(HookPoint::kAfterHelp, ctx.tid(), ctx.op_key(),
                             owner);
  }

  // ---------------- CAS-Child (lines 113-118) ----------------
  // Chooses the left or right child field by comparing the new node's key
  // with the parent's key, then performs the single child CAS that is the
  // linearization point of a successful update.
  void cas_child(Internal* parent, Node* old_node, Node* new_node,
                 CasStep step, Ctx& ctx) {
    EFRB_DCHECK(parent != nullptr && new_node != nullptr);
    const BoundedCompare<Key, Compare>& cmp = cmp_;
    std::atomic<Node*>& child =
        cmp(new_node->key, parent->key) ? parent->left : parent->right;
    Node* expected = old_node;
    // Memory-order audit (ellen_bintree_analysis.md, steps "ichild"/"dchild",
    // lines 115/117 and 105): release/relaxed. Success is the linearization
    // point that publishes new_node — release pairs with the acquire child
    // loads in search_path/find_path/help_marked, making the new subtree's
    // initialization visible to every descent that follows the edge. On
    // failure the witnessed child value is discarded (some helper already
    // performed the identical swap; the ichild/dchild CAS is idempotent per
    // Info record), so no acquire is required on either outcome.
    const bool ok =
        hooks::allow_cas<Traits>(step, parent, ctx.tid()) &&
        child.compare_exchange_strong(expected, new_node,
                                      std::memory_order_release,
                                      std::memory_order_relaxed);
    hooks::emit_cas<Traits>(step, ok, parent, ctx.tid(), ctx.op_key());
    ctx.count_cas(step, ok);
  }

  // ---------------- Allocation outside an operation ----------------
  // The constructor/destructor run without an OpContext (there is no
  // reclaimer involvement at quiescence); they allocate through the same
  // policy via the structure-level allocator pointer and its thread cache.
  template <typename T, typename... Args>
  T* make_direct(Args&&... args) {
    if constexpr (AllocT::kPooled) {
      EFRB_DCHECK(alloc_ != nullptr);
      return alloc_->template create<T>(*alloc_->local_cache(),
                                        std::forward<Args>(args)...);
    } else {
      return new T(std::forward<Args>(args)...);
    }
  }

  template <typename T>
  void dispose_direct(T* p) noexcept {
    if (p == nullptr) return;
    if constexpr (AllocT::kPooled) {
      alloc_->template destroy<T>(*alloc_->local_cache(), p);
    } else {
      delete p;
    }
  }

  BoundedCompare<Key, Compare> cmp_;
  // Null in heap mode (never dereferenced); the facade's pool otherwise.
  AllocT* alloc_ = nullptr;
  Internal* root_;  // line 19: the Root pointer is never changed
};

}  // namespace efrb
