// Keys extended with the paper's two sentinel values ∞₁ < ∞₂.
//
// §4.1/Fig. 6: "we append two special values ∞₁ < ∞₂ to the universe Key of
// keys (where every real key is less than ∞₁) and initialize the tree so that
// it contains two dummy keys ∞₁ and ∞₂". This removes every special case for
// trees with fewer than three nodes: the tree always has at least one internal
// node and two leaves.
#pragma once

#include <cstdint>
#include <functional>

namespace efrb {

enum class KeyClass : std::uint8_t {
  kReal = 0,
  kInf1 = 1,  // ∞₁: greater than every real key
  kInf2 = 2,  // ∞₂: greater than ∞₁ (key of the permanent root)
};

/// A key from Key ∪ {∞₁, ∞₂}. Sentinel-classed values ignore `key` (it is
/// value-initialized); ordering is by class first, then by the user comparator.
template <typename Key>
struct BoundedKey {
  Key key{};
  KeyClass cls = KeyClass::kReal;

  static BoundedKey real(Key k) { return BoundedKey{std::move(k), KeyClass::kReal}; }
  static BoundedKey inf1() { return BoundedKey{Key{}, KeyClass::kInf1}; }
  static BoundedKey inf2() { return BoundedKey{Key{}, KeyClass::kInf2}; }

  bool is_real() const noexcept { return cls == KeyClass::kReal; }
};

/// Strict weak order over BoundedKey lifting the user's comparator; all real
/// keys < ∞₁ < ∞₂, two equal-class sentinels compare equal.
template <typename Key, typename Compare = std::less<Key>>
class BoundedCompare {
 public:
  explicit BoundedCompare(Compare cmp = Compare{}) : cmp_(std::move(cmp)) {}

  bool operator()(const BoundedKey<Key>& a, const BoundedKey<Key>& b) const {
    if (a.cls != b.cls) return a.cls < b.cls;
    if (a.cls != KeyClass::kReal) return false;  // same sentinel: equal
    return cmp_(a.key, b.key);
  }

  /// Compare a real search key against a node key (the hot-path comparison in
  /// Search, line 32: "if k < l.key then go left else go right").
  bool less(const Key& k, const BoundedKey<Key>& node_key) const {
    if (node_key.cls != KeyClass::kReal) return true;  // k < any sentinel
    return cmp_(k, node_key.key);
  }

  /// True iff the node key is the real key k.
  bool equals(const Key& k, const BoundedKey<Key>& node_key) const {
    return node_key.cls == KeyClass::kReal && !cmp_(k, node_key.key) &&
           !cmp_(node_key.key, k);
  }

  const Compare& user_compare() const noexcept { return cmp_; }

 private:
  Compare cmp_;
};

}  // namespace efrb
