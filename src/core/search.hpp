// Layer 2 of the EFRB core: the descent routines.
//
// search_path is the paper's Search (Fig. 8, lines 23-35) — the one descent
// loop shared by Find, Insert, Delete and the protocol's retry rounds. The
// leftmost/rightmost walks below it are the degenerate Searches used by the
// ordered queries (ordered.hpp): a walk down left edges is Search for a
// virtual key below every real key; the rightmost walk is Search for a key
// strictly between every real key and ∞₁.
//
// All routines only read child pointers reachable from the root while the
// caller holds a pinned region, so every node touched is protected from
// reclamation (see the retirement protocol note in efrb_tree.hpp).
#pragma once

#include <atomic>
#include <cstddef>

#include "core/layout.hpp"

namespace efrb {

/// Search(k), lines 23-35.
///
/// Postconditions (paper lines 24-26): l is a leaf; p is the internal node
/// whose child pointer contained l; pupdate/gpupdate were read from p/gp
/// *before* following the edge towards l (that read order is what makes the
/// flag-check-then-CAS protocol sound).
///
/// When Traits::kSearchHelpsMarked (the paper's §6 variant), a marked internal
/// node on the path is spliced out via the `help_marked` callback
/// (DInfo* -> void) before the walk restarts from the root; this Search is
/// then not read-only, which is why the callback — and with it the protocol
/// layer — stays outside this header.
///
/// `depth_out`, when non-null, receives the number of levels walked from the
/// root to the returned leaf (restarts reset the count — the reported figure
/// is the final descent's depth, the structural quantity the balance
/// telemetry samples). Callers passing nullptr pay nothing: the counting
/// folds away.
template <typename Traits, typename Layout, typename Cmp, typename HelpMarked>
typename Layout::SearchResult search_path(typename Layout::Internal* root,
                                          const typename Layout::key_type& k,
                                          const Cmp& cmp,
                                          HelpMarked&& help_marked,
                                          std::size_t* depth_out = nullptr) {
  using Internal = typename Layout::Internal;
  using Leaf = typename Layout::Leaf;
  using Node = typename Layout::Node;
  using DInfo = typename Layout::DInfo;

  Internal* gp = nullptr;
  Internal* p = nullptr;
  Update gpupdate, pupdate;
  Node* l = root;
  std::size_t depth = 0;
  while (l->is_internal) {
    gp = p;                          // line 28
    p = static_cast<Internal*>(l);   // line 29
    gpupdate = pupdate;              // line 30
    pupdate = p->update.load();      // line 31
    if constexpr (Traits::kSearchHelpsMarked) {
      // §6 variant: splice out a marked node before walking through it, then
      // restart from the root (the spliced node is off the path). Helping
      // mutates shared memory, so this Search variant is not read-only; the
      // tree's logical state is unchanged (the deletion being helped already
      // passed its linearization-enabling mark).
      if (pupdate.state() == UpdateState::kMark) {
        help_marked(static_cast<DInfo*>(pupdate.info()));
        gp = nullptr;
        p = nullptr;
        gpupdate = Update{};
        pupdate = Update{};
        l = root;
        depth = 0;
        continue;
      }
    }
    ++depth;
    l = cmp.less(k, p->key)          // line 32
            ? p->left.load(std::memory_order_acquire)
            : p->right.load(std::memory_order_acquire);
  }
  if (depth_out != nullptr) *depth_out = depth;
  return typename Layout::SearchResult{gp, p, static_cast<Leaf*>(l), pupdate,
                                       gpupdate};
}

/// Lean read-only descent for Find (paper Fig. 8, lines 36-38: "Search(k);
/// return the leaf"): a Find never CASes, so it has no use for the
/// (gp, p, pupdate, gpupdate) postcondition bundle Search maintains for the
/// updaters — it only needs the leaf at the end of the walk. This routine
/// skips all SearchResult capture: no gp/p tracking, and the per-level update
/// word is not even loaded unless the Traits ask for §6 marked-node helping.
/// Correctness is unchanged — the paper's Find linearizes at the child-
/// pointer reads of a plain Search and never inspects the update words it
/// recorded — so dropping the bookkeeping drops pure overhead from the
/// read path (one atomic load per level plus the snapshot stores).
///
/// Under Traits::kSearchHelpsMarked the update word IS loaded, and a marked
/// node is spliced out via `help_marked` before restarting — the fast path
/// only pays that load when the traits opted into helping reads.
template <typename Traits, typename Layout, typename Cmp, typename HelpMarked>
const typename Layout::Leaf* find_path(typename Layout::Internal* root,
                                       const typename Layout::key_type& k,
                                       const Cmp& cmp,
                                       HelpMarked&& help_marked,
                                       std::size_t* depth_out = nullptr) {
  using Internal = typename Layout::Internal;
  using Leaf = typename Layout::Leaf;
  using Node = typename Layout::Node;
  using DInfo = typename Layout::DInfo;

  Node* l = root;
  std::size_t depth = 0;
  while (l->is_internal) {
    auto* p = static_cast<Internal*>(l);
    if constexpr (Traits::kSearchHelpsMarked) {
      const Update pupdate = p->update.load();
      if (pupdate.state() == UpdateState::kMark) {
        help_marked(static_cast<DInfo*>(pupdate.info()));
        l = root;
        depth = 0;
        continue;
      }
    }
    ++depth;
    l = cmp.less(k, p->key) ? p->left.load(std::memory_order_acquire)
                            : p->right.load(std::memory_order_acquire);
  }
  if (depth_out != nullptr) *depth_out = depth;
  return static_cast<const Leaf*>(l);
}

/// Leftmost leaf under `from`: Search for a key below every real key. The
/// result is the subtree's minimum (possibly the ∞₁ sentinel on an empty
/// tree).
template <typename Layout>
const typename Layout::Leaf* leftmost_leaf(typename Layout::Node* from) {
  typename Layout::Node* m = from;
  while (m->is_internal) {
    m = static_cast<typename Layout::Internal*>(m)->left.load(
        std::memory_order_acquire);
  }
  return static_cast<const typename Layout::Leaf*>(m);
}

/// Rightmost *real-keyed* leaf under `from`: Search for a virtual key lying
/// strictly between every real key and ∞₁ — go right at real-keyed internals,
/// left at sentinel-keyed ones (sentinels live on the rightmost spine only,
/// Fig. 6). May still reach a sentinel leaf when the subtree holds no real
/// keys; callers check is_real().
template <typename Layout>
const typename Layout::Leaf* rightmost_leaf(typename Layout::Node* from) {
  typename Layout::Node* m = from;
  while (m->is_internal) {
    auto* in = static_cast<typename Layout::Internal*>(m);
    m = in->key.is_real() ? in->right.load(std::memory_order_acquire)
                          : in->left.load(std::memory_order_acquire);
  }
  return static_cast<const typename Layout::Leaf*>(m);
}

}  // namespace efrb
