// Layer 4 of the EFRB core: ordered navigation and traversal.
//
// Free functions over a Layout (layout.hpp) and a BoundedCompare: min/max,
// predecessor/successor bounds, range visits, whole-tree traversal and the
// structural validator. All are read-only walks built from the degenerate
// Searches in search.hpp; none touches the update protocol, which is why they
// live outside protocol.hpp.
//
// Every function requires the caller to hold a pinned region on the tree's
// reclaimer for the duration of the call (the facade and its handles do
// this) — each visited node is reached by a chain of child pointers from the
// root, so it was on its search path at some time (§5's search-path lemma)
// and cannot be reclaimed while the caller stays pinned.
//
// Consistency: exact on a quiescent tree. Under concurrent updates these are
// weakly consistent: every key reported was present at some time during the
// call, and a key that is in the queried region for the whole call is
// reported; keys inserted/removed mid-call may or may not be. Unlike
// contains(), a find_ge/range result is not a single linearization point
// over the whole region.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/bounded_key.hpp"
#include "core/layout.hpp"
#include "core/search.hpp"

namespace efrb {

/// Structural validation outcome (quiescent trees); see ordered::validate.
struct ValidationResult {
  bool ok = true;
  std::string error;
  std::size_t real_leaves = 0;
  std::size_t internals = 0;
  std::size_t height = 0;
};

namespace ordered {

/// Smallest key, or nullopt when empty. Walking left edges is exactly
/// Search(k) for a key below every real key, so the reached leaf was on that
/// search path at some time during the walk (§5's search-path lemma), making
/// the result linearizable like Find.
template <typename Layout>
std::optional<typename Layout::key_type> min_key(
    typename Layout::Internal* root) {
  const auto* leaf = leftmost_leaf<Layout>(root);
  if (!leaf->key.is_real()) return std::nullopt;
  return leaf->key.key;
}

/// Largest key, or nullopt when empty. This is Search for a virtual key lying
/// strictly between every real key and ∞₁ (see rightmost_leaf); the same
/// search-path argument makes it linearizable.
template <typename Layout>
std::optional<typename Layout::key_type> max_key(
    typename Layout::Internal* root) {
  const auto* leaf = rightmost_leaf<Layout>(root);
  if (!leaf->key.is_real()) return std::nullopt;
  return leaf->key.key;
}

/// Smallest key >= k (or > k when strict). Single pass: descend the search
/// path for k, remembering the right child captured at the last left turn;
/// if the reached leaf does not satisfy the bound, the answer is the
/// minimum of that captured subtree (in a leaf-oriented BST the reached
/// leaf's key is adjacent to k in key order, so any better answer must sit
/// in the first subtree to the right of the search path).
template <typename Layout, typename Cmp>
std::optional<typename Layout::key_type> bound_up(
    typename Layout::Internal* root, const Cmp& cmp,
    const typename Layout::key_type& k, bool strict) {
  using Internal = typename Layout::Internal;
  using Node = typename Layout::Node;
  Node* l = root;
  Node* last_right = nullptr;  // right sibling subtree of the search path
  while (l->is_internal) {
    auto* in = static_cast<Internal*>(l);
    if (cmp.less(k, in->key)) {
      last_right = in->right.load(std::memory_order_acquire);
      l = in->left.load(std::memory_order_acquire);
    } else {
      l = in->right.load(std::memory_order_acquire);
    }
  }
  const auto* leaf = static_cast<typename Layout::Leaf*>(l);
  if (leaf->key.is_real()) {
    const bool ge = !cmp.user_compare()(leaf->key.key, k);  // leaf >= k
    const bool gt = cmp.user_compare()(k, leaf->key.key);   // leaf >  k
    if (strict ? gt : ge) return leaf->key.key;
  }
  if (last_right == nullptr) return std::nullopt;
  // Minimum of the captured subtree: follow left edges.
  const auto* succ = leftmost_leaf<Layout>(last_right);
  if (!succ->key.is_real()) return std::nullopt;  // only sentinels right of k
  return succ->key.key;
}

/// Largest key <= k (or < k when strict); mirror image of bound_up. The
/// left sibling subtree of the search path never contains sentinel leaves
/// (sentinels live on the rightmost spine only), but we re-check is_real
/// for robustness.
template <typename Layout, typename Cmp>
std::optional<typename Layout::key_type> bound_down(
    typename Layout::Internal* root, const Cmp& cmp,
    const typename Layout::key_type& k, bool strict) {
  using Internal = typename Layout::Internal;
  using Node = typename Layout::Node;
  Node* l = root;
  Node* last_left = nullptr;  // left sibling subtree of the search path
  while (l->is_internal) {
    auto* in = static_cast<Internal*>(l);
    if (cmp.less(k, in->key)) {
      l = in->left.load(std::memory_order_acquire);
    } else {
      last_left = in->left.load(std::memory_order_acquire);
      l = in->right.load(std::memory_order_acquire);
    }
  }
  const auto* leaf = static_cast<typename Layout::Leaf*>(l);
  if (leaf->key.is_real()) {
    const bool le = !cmp.user_compare()(k, leaf->key.key);  // leaf <= k
    const bool lt = cmp.user_compare()(leaf->key.key, k);   // leaf <  k
    if (strict ? lt : le) return leaf->key.key;
  }
  if (last_left == nullptr) return std::nullopt;
  // Maximum of the captured subtree (rightmost_leaf handles the sentinel
  // spine, Fig. 6).
  const auto* pred = rightmost_leaf<Layout>(last_left);
  if (!pred->key.is_real()) return std::nullopt;
  return pred->key.key;
}

/// Visits every (key, value) with lo <= key <= hi in order, pruning subtrees
/// by the BST bounds. Uses an explicit stack: sequential insertion produces a
/// path-shaped tree (the paper leaves balancing to future work, §6), so
/// recursion depth would be O(n).
template <typename Layout, typename Cmp, typename Fn>
void range(typename Layout::Internal* root, const Cmp& cmp,
           const typename Layout::key_type& lo,
           const typename Layout::key_type& hi, Fn&& fn) {
  using Internal = typename Layout::Internal;
  using Leaf = typename Layout::Leaf;
  using Node = typename Layout::Node;
  if (cmp.user_compare()(hi, lo)) return;  // empty interval
  std::vector<Node*> stack{root};
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    if (n->is_internal) {
      auto* in = static_cast<Internal*>(n);
      // Left subtree holds keys < in->key: visit iff lo < in->key.
      // Right subtree holds keys >= in->key: visit iff hi >= in->key.
      const bool go_left = cmp.less(lo, in->key);
      const bool go_right = !cmp.less(hi, in->key);
      // Push right first so the left subtree pops first (in-order leaves).
      if (go_right) stack.push_back(in->right.load(std::memory_order_acquire));
      if (go_left) stack.push_back(in->left.load(std::memory_order_acquire));
    } else {
      auto* leaf = static_cast<Leaf*>(n);
      if (leaf->key.is_real() && !cmp.user_compare()(leaf->key.key, lo) &&
          !cmp.user_compare()(hi, leaf->key.key)) {
        fn(leaf->key.key, leaf->value);
      }
    }
  }
}

/// Number of keys in [lo, hi] (weakly consistent; exact at quiescence).
template <typename Layout, typename Cmp>
std::size_t count_range(typename Layout::Internal* root, const Cmp& cmp,
                        const typename Layout::key_type& lo,
                        const typename Layout::key_type& hi) {
  std::size_t n = 0;
  range<Layout>(root, cmp, lo, hi,
                [&n](const typename Layout::key_type&,
                     const typename Layout::mapped_type&) { ++n; });
  return n;
}

/// Depth-first in-order visit of every real (key, value) pair under `start`.
template <typename Layout, typename Fn>
void for_each(typename Layout::Node* start, Fn&& fn) {
  using Internal = typename Layout::Internal;
  using Leaf = typename Layout::Leaf;
  using Node = typename Layout::Node;
  std::vector<Node*> stack{start};
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    if (n->is_internal) {
      auto* in = static_cast<Internal*>(n);
      // Right first so the left subtree pops first: in-order for leaves.
      stack.push_back(in->right.load(std::memory_order_acquire));
      stack.push_back(in->left.load(std::memory_order_acquire));
    } else {
      auto* leaf = static_cast<Leaf*>(n);
      if (leaf->key.is_real()) fn(leaf->key.key, leaf->value);
    }
  }
}

/// Structural validation for tests (quiescent trees): checks the
/// leaf-oriented shape, the BST key order with sentinel placement (Fig. 6),
/// and the permanent ∞₂ root.
template <typename Layout, typename Cmp>
ValidationResult validate(typename Layout::Internal* root, const Cmp& cmp) {
  using BKey = typename Layout::BKey;
  using Internal = typename Layout::Internal;
  using Leaf = typename Layout::Leaf;
  using Node = typename Layout::Node;
  ValidationResult r;
  if (root->key.cls != KeyClass::kInf2) {
    r.ok = false;
    r.error = "root key is not ∞₂";
    return r;
  }
  struct Frame {
    Node* n;
    const BKey* lower;  // inclusive (equal keys go right)
    const BKey* upper;  // exclusive
    std::size_t depth;
  };
  std::vector<Frame> stack{{root, nullptr, nullptr, 1}};
  while (!stack.empty() && r.ok) {
    const Frame f = stack.back();
    stack.pop_back();
    r.height = std::max(r.height, f.depth);
    if (f.lower != nullptr && cmp(f.n->key, *f.lower)) {
      r.ok = false;
      r.error = "key below the lower bound inherited from an ancestor";
      return r;
    }
    if (f.upper != nullptr && !cmp(f.n->key, *f.upper)) {
      r.ok = false;
      r.error = "key not strictly below the upper bound from an ancestor";
      return r;
    }
    if (!f.n->is_internal) {
      if (static_cast<Leaf*>(f.n)->key.is_real()) ++r.real_leaves;
      continue;
    }
    auto* in = static_cast<Internal*>(f.n);
    ++r.internals;
    Node* left = in->left.load(std::memory_order_acquire);
    Node* right = in->right.load(std::memory_order_acquire);
    if (left == nullptr || right == nullptr) {
      r.ok = false;
      r.error = "internal node with a null child (leaf-oriented shape broken)";
      return r;
    }
    stack.push_back(Frame{left, f.lower, &in->key, f.depth + 1});
    stack.push_back(Frame{right, &in->key, f.upper, f.depth + 1});
  }
  return r;
}

}  // namespace ordered
}  // namespace efrb
