// The allocation layer: where nodes and Info records come from.
//
// The paper assumes a garbage-collected environment in which "nodes are
// always allocated new memory locations" (§4.1); PR 1-5 realized that with a
// bare `new` per node and a reclaimer `delete` per retire. This header makes
// the allocation step a pluggable policy:
//
//   * HeapAllocator — the default: create<T> is `new`, destroy<T> is
//     `delete`. Stateless, default-constructible, zero overhead; every
//     existing instantiation keeps exactly its old behaviour.
//   * BlockPool / ObjectPool — per-thread slab pools with free-list
//     recycling. Blocks are cache-line-aligned and uniformly sized (the
//     rounded-up max of the pooled types), so a recycled block can be reused
//     for ANY of the structure's node/record types without per-block type
//     bookkeeping, and the reclaimers can return a retired block through the
//     type-erased PoolHook (reclaim/reclaimer.hpp) after running its exact
//     destructor.
//
// Concurrency model of BlockPool (mirrors the reclaimer slot/lease design):
//   * Cache — a thread-affine handle holding a private free chain and a
//     private bump range carved from the newest slab. alloc/free through a
//     Cache touch no shared state at all on the fast path.
//   * global free list — a Treiber stack fed by (a) the reclaimers' pool
//     returns (PoolHook::fn pushes one block, lock-free) and (b) detached
//     caches flushing their chains. Consumed only by whole-list take-over
//     (exchange(nullptr)), which is immune to the classic Treiber pop ABA:
//     nobody ever pops one element while others push.
//   * slabs — chunks of kSlabBlocks blocks, allocated cache-line-aligned and
//     registered under a mutex (slab creation is the rare slow path). Slabs
//     are freed only by the pool State destructor, which runs when the last
//     keepalive reference (pool object, live Caches, reclaimer registries
//     holding the PoolHook) drops — so a block parked in a retire list or the
//     orphan store can always be safely returned, even after the structure
//     died.
//
// ABA note: recycling a block can hand a later create<T> the SAME address an
// earlier node had. This is precisely the hazard the reclaimers exist to
// rule out — a block reaches the free list only through retire(), i.e. only
// after the reclaimer proved no thread can still reach it — so pooled
// recycling is exactly as safe as heap delete-then-new (which may also reuse
// the address). The protocol-level ABA defences (fresh Info record per flag,
// §4.2 retirement ordering) are unchanged.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

#include "reclaim/reclaimer.hpp"
#include "util/assert.hpp"
#include "util/cacheline.hpp"

namespace efrb {

// clang-format off
/// The allocator policy every structure in this repository allocates through
/// (threaded via OpContext::make/dispose). `kPooled` gates the fast path:
/// when false, contexts fold make/dispose to new/delete and never touch the
/// allocator object at all.
template <typename A>
concept NodeAllocatorPolicy = requires(A a, typename A::Cache c, void* b) {
  { A::kPooled } -> std::convertible_to<bool>;
  typename A::Cache;
  { a.make_cache() } -> std::same_as<typename A::Cache>;
  { a.local_cache() } -> std::same_as<typename A::Cache*>;
  { a.pool_hook() } -> std::same_as<PoolHook>;
};
// clang-format on

/// The default allocation policy: the global heap. Stateless; create/destroy
/// compile to new/delete, and pool_hook() is empty so reclaimers keep their
/// plain-delete disposal path.
class HeapAllocator {
 public:
  static constexpr bool kPooled = false;
  static constexpr const char* kName = "heap";

  /// No per-thread state to carry; exists so generic code can hold "a cache"
  /// unconditionally.
  struct Cache {};

  Cache make_cache() noexcept { return Cache{}; }
  Cache* local_cache() noexcept { return &shared_cache_; }

  template <typename T, typename... Args>
  T* create(Cache& /*cache*/, Args&&... args) {
    return new T(std::forward<Args>(args)...);
  }

  template <typename T>
  void destroy(Cache& /*cache*/, T* p) noexcept {
    delete p;
  }

  /// Empty: retired objects are deleted, not returned.
  PoolHook pool_hook() const noexcept { return PoolHook{}; }

 private:
  Cache shared_cache_;  // stateless, so sharing it between threads is fine
};

/// Point-in-time pool gauges for tests and the observability layer. Counters
/// are monotone over the pool's lifetime; relaxed reads, not an atomic cut.
struct PoolStats {
  std::uint64_t slabs = 0;           // slabs carved so far
  std::uint64_t slab_bytes = 0;      // total backing storage
  std::uint64_t recycled = 0;        // blocks pushed onto the global free list
  std::uint64_t cache_refills = 0;   // global-list take-overs by caches
};

/// Fixed-size-block pool. BlockSize must be a multiple of the cache line so
/// every block starts on a line boundary (the layout win measured by the
/// alloc ablation) and so distinct blocks never share a line.
template <std::size_t BlockSize>
class BlockPool {
  static_assert(BlockSize >= 2 * sizeof(void*),
                "block must hold a free-list link plus the debug stamp");
  static_assert(BlockSize % kCacheLineSize == 0,
                "blocks must be whole cache lines");

  /// Free-list link, overlaid on the first word of a returned block. The
  /// second word carries the double-return stamp (see deallocate).
  struct FreeNode {
    FreeNode* next;
    std::uintptr_t stamp;
  };

  // A freed block's second word; checked on every return. The value is a
  // non-canonical address, so a live object's pointer field cannot collide.
  static constexpr std::uintptr_t kFreedStamp = 0xefb0'0d1e'dead'b10cULL;

  static constexpr std::size_t kSlabBlocks = 256;  // 16 KiB slabs at 64 B

  struct State {
    // Global free list: push one (pool returns, lock-free), push chain
    // (cache flush), take all (cache refill).
    std::atomic<FreeNode*> free{nullptr};
    // Slab directory; mutated only on the allocation slow path.
    std::mutex slab_mu;
    std::vector<void*> slabs;
    // Gauges (relaxed; slow-path writers only).
    std::atomic<std::uint64_t> slab_count{0};
    std::atomic<std::uint64_t> recycled{0};
    std::atomic<std::uint64_t> refills{0};

    ~State() {
      // Last keepalive dropped: no Cache, no reclaimer registry, no retired
      // entry can reference a block any more. Free the backing storage
      // wholesale; individual free-list entries point into these slabs.
      for (void* s : slabs) {
        ::operator delete(s, std::align_val_t{kCacheLineSize});
      }
    }

    static void push_one(State* s, void* block) noexcept {
      auto* n = static_cast<FreeNode*>(block);
      FreeNode* head = s->free.load(std::memory_order_relaxed);
      do {
        n->next = head;
        // release: the block's bytes (including the destructor's writes)
        // must be visible to the thread that later pops and reconstructs it.
      } while (!s->free.compare_exchange_weak(head, n,
                                              std::memory_order_release,
                                              std::memory_order_relaxed));
      s->recycled.fetch_add(1, std::memory_order_relaxed);
    }

    static void push_chain(State* s, FreeNode* first, FreeNode* last) noexcept {
      FreeNode* head = s->free.load(std::memory_order_relaxed);
      do {
        last->next = head;
      } while (!s->free.compare_exchange_weak(head, first,
                                              std::memory_order_release,
                                              std::memory_order_relaxed));
    }

    FreeNode* take_all() noexcept {
      // acquire pairs with the release pushes: everything written to the
      // blocks before they were pushed is visible to the new owner.
      FreeNode* list = free.exchange(nullptr, std::memory_order_acquire);
      if (list != nullptr) refills.fetch_add(1, std::memory_order_relaxed);
      return list;
    }

    /// Slow path: carve a new slab and hand back its bump range.
    char* grow() {
      void* slab = ::operator new(kSlabBlocks * BlockSize,
                                  std::align_val_t{kCacheLineSize});
      {
        const std::lock_guard<std::mutex> lock(slab_mu);
        slabs.push_back(slab);
      }
      slab_count.fetch_add(1, std::memory_order_relaxed);
      return static_cast<char*>(slab);
    }
  };

 public:
  static constexpr bool kPooled = true;
  static constexpr std::size_t kBlockSize = BlockSize;
  static constexpr const char* kName = "pool";

  /// Thread-affine allocation handle (the fast path behind structure
  /// handles). Holds a private free chain and a private bump range; both are
  /// untouched by other threads, so alloc/free through a live Cache are plain
  /// pointer operations. Movable (a hand-off, like reclaimer Attachments);
  /// destruction flushes the private chain back to the global list. Holds a
  /// keepalive share of the pool state, so a Cache can always be destroyed
  /// safely, even after the pool object itself.
  class Cache {
   public:
    Cache() = default;
    explicit Cache(std::shared_ptr<State> state) noexcept
        : state_(std::move(state)) {}
    Cache(Cache&& other) noexcept
        : state_(std::move(other.state_)),
          free_(std::exchange(other.free_, nullptr)),
          bump_(std::exchange(other.bump_, nullptr)),
          bump_end_(std::exchange(other.bump_end_, nullptr)) {}
    Cache& operator=(Cache&& other) noexcept {
      if (this != &other) {
        release();
        state_ = std::move(other.state_);
        free_ = std::exchange(other.free_, nullptr);
        bump_ = std::exchange(other.bump_, nullptr);
        bump_end_ = std::exchange(other.bump_end_, nullptr);
      }
      return *this;
    }
    Cache(const Cache&) = delete;
    Cache& operator=(const Cache&) = delete;
    ~Cache() { release(); }

   private:
    friend class BlockPool;

    /// Flush the private chain to the global list. The bump range is
    /// abandoned unconsumed (at most one partial slab per released cache; the
    /// slab itself stays owned by the State and is freed with it).
    void release() noexcept {
      if (state_ != nullptr && free_ != nullptr) {
        FreeNode* last = free_;
        while (last->next != nullptr) last = last->next;
        State::push_chain(state_.get(), free_, last);
      }
      free_ = nullptr;
      bump_ = nullptr;
      bump_end_ = nullptr;
      state_.reset();
    }

    std::shared_ptr<State> state_;
    FreeNode* free_ = nullptr;  // private recycled chain
    char* bump_ = nullptr;      // private range in the newest slab
    char* bump_end_ = nullptr;
  };

  BlockPool() : state_(std::make_shared<State>()) {}

  /// A private cache for a structure handle; see Cache.
  Cache make_cache() { return Cache(state_); }

  /// The calling thread's lease cache (the tree-level convenience path, same
  /// pattern as the reclaimers' thread_local slot lease). Wait-free after the
  /// first call per (thread, pool).
  Cache* local_cache() {
    thread_local std::vector<std::unique_ptr<Cache>> leases;
    thread_local State* cached_state = nullptr;
    thread_local Cache* cached = nullptr;
    State* s = state_.get();
    if (cached_state == s) return cached;
    for (const auto& c : leases) {
      if (c->state_.get() == s) {
        cached_state = s;
        cached = c.get();
        return cached;
      }
    }
    leases.push_back(std::make_unique<Cache>(state_));
    cached_state = s;
    cached = leases.back().get();
    return cached;
  }

  /// Allocate-and-construct. On constructor throw the block goes straight
  /// back to the cache — the pool never leaks a block to an exception.
  template <typename T, typename... Args>
  T* create(Cache& cache, Args&&... args) {
    static_assert(sizeof(T) <= BlockSize, "type exceeds the pool block size");
    static_assert(alignof(T) <= kCacheLineSize,
                  "type over-aligned for the pool");
    void* block = allocate(cache);
    try {
      return ::new (block) T(std::forward<Args>(args)...);
    } catch (...) {
      push_local(cache, block);
      throw;
    }
  }

  /// Destroy-and-recycle into the cache's private chain.
  template <typename T>
  void destroy(Cache& cache, T* p) noexcept {
    p->~T();
    push_local(cache, p);
  }

  /// The reclaimers' type-erased return path (PoolHook::fn): the object is
  /// already destroyed; push the block onto the global free list. Runs on
  /// whatever thread swept the retire list — including the registry
  /// destructor after the pool object died (the hook's keepalive share keeps
  /// State alive for exactly this).
  static void return_block(void* state, void* block) noexcept {
    check_stamp_and_mark(block);
    State::push_one(static_cast<State*>(state), block);
  }

  /// The hook a structure installs on its reclaimer (set_pool_return).
  PoolHook pool_hook() const noexcept {
    return PoolHook{&BlockPool::return_block, state_.get(), state_};
  }

  PoolStats stats() const noexcept {
    PoolStats s;
    s.slabs = state_->slab_count.load(std::memory_order_relaxed);
    s.slab_bytes = s.slabs * kSlabBlocks * BlockSize;
    s.recycled = state_->recycled.load(std::memory_order_relaxed);
    s.cache_refills = state_->refills.load(std::memory_order_relaxed);
    return s;
  }

 private:
  void* allocate(Cache& cache) {
    EFRB_DCHECK(cache.state_.get() == state_.get());
    if (FreeNode* n = cache.free_; n != nullptr) {
      cache.free_ = n->next;
      n->stamp = 0;  // live again; re-arm the double-return check
      return n;
    }
    if (cache.bump_ != cache.bump_end_) {
      char* block = cache.bump_;
      cache.bump_ += BlockSize;
      // Slab memory comes from the heap, which may hand back a chunk that a
      // previous pool's slab occupied — complete with stale kFreedStamp
      // values. Arm the block before its first use.
      reinterpret_cast<FreeNode*>(block)->stamp = 0;
      return block;
    }
    // Private stock exhausted: adopt the global free list, else a new slab.
    if (FreeNode* list = state_->take_all(); list != nullptr) {
      cache.free_ = list->next;
      list->stamp = 0;
      return list;
    }
    char* slab = state_->grow();
    cache.bump_ = slab + BlockSize;
    cache.bump_end_ = slab + kSlabBlocks * BlockSize;
    reinterpret_cast<FreeNode*>(slab)->stamp = 0;  // see bump path above
    return slab;
  }

  static void push_local(Cache& cache, void* block) noexcept {
    check_stamp_and_mark(block);
    auto* n = static_cast<FreeNode*>(block);
    n->next = cache.free_;
    cache.free_ = n;
  }

  /// Double-return guard: a block entering a free chain must not already
  /// carry the freed stamp. Always on (EFRB_ASSERT): one load + one store on
  /// a line the destructor just touched, versus a silent double-recycle that
  /// would hand the same block to two create<T> calls.
  static void check_stamp_and_mark(void* block) noexcept {
    auto* n = static_cast<FreeNode*>(block);
    EFRB_ASSERT_MSG(n->stamp != kFreedStamp,
                    "BlockPool: block returned twice (double retire?)");
    n->stamp = kFreedStamp;
  }

  std::shared_ptr<State> state_;
};

namespace detail {
template <std::size_t N>
inline constexpr std::size_t round_up_to_line =
    ((N + kCacheLineSize - 1) / kCacheLineSize) * kCacheLineSize;

template <typename... Ts>
inline constexpr std::size_t max_size = std::max({sizeof(Ts)...});
}  // namespace detail

/// Pool sized for a family of types: one uniform block class covering the
/// largest member, rounded up to whole cache lines. Uniform blocks are what
/// make the type-erased PoolHook return possible — any retired object of any
/// pooled type hands back an interchangeable block.
template <typename... Ts>
using ObjectPool =
    BlockPool<detail::round_up_to_line<detail::max_size<Ts...>>>;

static_assert(NodeAllocatorPolicy<HeapAllocator>);
static_assert(NodeAllocatorPolicy<BlockPool<kCacheLineSize>>);

}  // namespace efrb
