// Layer 1 of the EFRB core: memory layout.
//
// Everything the paper's Figure 7 declares lives here — the update word
// (state + Info pointer packed into one CAS word), the Info records, and the
// leaf-oriented node types — with no algorithm attached. The Search routine
// (search.hpp), the CAS protocol (protocol.hpp), the ordered navigation
// (ordered.hpp) and the public facade (efrb_tree.hpp) are all written against
// these types.
//
// Update-word packing (paper §3/§4.1): "The pointer to the Info record is
// stored in the same memory word as the state. (In typical 32-bit word
// architectures, if items stored in memory are word-aligned, the two
// lowest-order bits of a pointer can be used to store the state.)" We realize
// exactly that packing on 64-bit: Info records are allocated with alignment
// >= 4, so bits 0..1 of the pointer hold one of the four states {Clean,
// DFlag, IFlag, Mark}.
//
// The packed word is what every update-field CAS in Figures 8/9 operates on;
// equality of two packed words is equality of (state, info) pairs, which is
// what gives the algorithm its "values never repeat" property (each flagging
// installs a pointer to a freshly allocated Info record).
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "core/bounded_key.hpp"
#include "core/debug_hooks.hpp"
#include "core/llx_scx.hpp"
#include "util/assert.hpp"
#include "util/cacheline.hpp"

namespace efrb {

/// States of an internal node's update field (Fig. 4/7). Numeric values are
/// the two tag bits stored in the packed word.
enum class UpdateState : std::uintptr_t {
  kClean = 0,  // no operation holds this node's child pointers
  kDFlag = 1,  // a Delete intends to change a child pointer (grandparent role)
  kIFlag = 2,  // an Insert intends to change a child pointer
  kMark = 3,   // node is being spliced out; child pointers frozen forever
};

/// Base class of IInfo/DInfo. The state tag of a word that points to an Info
/// record tells helpers the concrete type while the operation is in flight
/// (IFlag -> IInfo, DFlag/Mark -> DInfo), mirroring the paper's Help routine
/// (lines 107-112). The virtual destructor exists for reclamation only: a
/// record is retired when a *Clean* word referencing it is overwritten, and at
/// that point the tag no longer identifies the concrete type.
struct Info {
  /// Causal owner stamp: pack_owner(tid, op_seq) of the creating operation,
  /// written by the creator *before* the record's publishing CAS and read by
  /// helpers only after an acquire load of the update word that published it
  /// — so a plain (non-atomic) word is race-free. Stays kNoOwner unless the
  /// instantiating Traits enable kCausalTrace (core/debug_hooks.hpp); both
  /// concrete Info records are cache-line aligned, so the word rides in
  /// existing padding.
  std::uint64_t owner = kNoOwner;
  virtual ~Info() = default;
};

/// Immutable snapshot of an update field: (state, Info*) in one word — the
/// four-state EFRB specialization of the shared tagged-word seam
/// (core/llx_scx.hpp). A default-constructed Update is {Clean, nullptr}, the
/// initial value of every internal node.
using Update = TaggedInfoWord<UpdateState, Info>;

/// The atomic update field of an internal node.
///
/// compare_exchange: single-word CAS; on failure `expected` is refreshed with
/// the witnessed value (which callers pass to Help, per lines 61/85/97 of the
/// paper). Orders default to the strongest pairing the protocol needs
/// (acq_rel success / acquire failure). Steps whose failure value is
/// discarded and whose success publishes nothing new pass weaker orders
/// explicitly — see the per-step audit comments in core/protocol.hpp.
using AtomicUpdate = AtomicInfoWord<Update>;

static_assert(sizeof(AtomicUpdate) == sizeof(std::uintptr_t),
              "update field must be one CAS word");

/// The node and Info-record types of one tree instantiation (Fig. 7), bundled
/// so every layer names them off a single `Layout` template argument.
template <typename Key, typename Value>
struct TreeLayout {
  using key_type = Key;
  using mapped_type = Value;
  using BKey = BoundedKey<Key>;

  struct Node {
    const BKey key;
    const bool is_internal;
    Node(BKey k, bool internal) : key(std::move(k)), is_internal(internal) {}
  };

  struct Leaf final : Node {
    [[no_unique_address]] Value value;
    Leaf(BKey k, Value v) : Node(std::move(k), false), value(std::move(v)) {}
  };

  // Cache-line alignment of the hot mutable types: an Internal's update word
  // and child pointers are the CAS/coherence hot spots of the whole protocol;
  // giving each Internal (and each in-flight Info record) a private line
  // stops unrelated operations from false-sharing through the allocator's
  // packing. Leaves stay compact — they are immutable after publication, so
  // sharing a line costs read-side traffic only. (The pooled allocator hands
  // out whole-line blocks regardless; the alignas makes the layout guarantee
  // hold for heap allocation too.)
  struct alignas(kCacheLineSize) Internal final : Node {
    AtomicUpdate update;  // lines 2-5: (state, Info*) in one CAS word
    std::atomic<Node*> left;
    std::atomic<Node*> right;
    Internal(BKey k, Node* l, Node* r)
        : Node(std::move(k), true), left(l), right(r) {}
  };

  // lines 12-14. new_node is Node* (not Internal*) to support the
  // insert_or_assign extension, which installs a replacement Leaf.
  struct alignas(kCacheLineSize) IInfo final : Info {
    Internal* p;
    Leaf* l;
    Node* new_node;
    IInfo(Internal* p_, Leaf* l_, Node* n_) : p(p_), l(l_), new_node(n_) {}
  };

  // lines 15-18
  struct alignas(kCacheLineSize) DInfo final : Info {
    Internal* gp;
    Internal* p;
    Leaf* l;
    Update pupdate;
    DInfo(Internal* gp_, Internal* p_, Leaf* l_, Update pu)
        : gp(gp_), p(p_), l(l_), pupdate(pu) {}
  };

  static_assert(alignof(IInfo) >= 4 && alignof(DInfo) >= 4,
                "two low pointer bits must be free for the state tag");

  /// Postcondition bundle of the Search routine (paper lines 24-26).
  struct SearchResult {
    Internal* gp;
    Internal* p;
    Leaf* l;
    Update pupdate;
    Update gpupdate;
  };
};

}  // namespace efrb
