// Compatibility forwarder. The update-word packing (UpdateState / Info /
// Update / AtomicUpdate) moved into core/layout.hpp when the core was split
// into layout / search / protocol / ordered layers; this header remains so
// existing includes keep compiling. Prefer including core/layout.hpp.
#pragma once

#include "core/layout.hpp"
