// Instrumentation traits for the EFRB tree.
//
// The tree is parameterized on a Traits type exposing two static hooks:
//
//   Traits::on_cas(CasStep step, bool success, const void* node)
//     — invoked after every protocol CAS with its outcome; lets tests verify
//       that the update-field state machine follows exactly the edges of the
//       paper's Figure 4 and lets benchmarks count helps/retries.
//
//   Traits::at(HookPoint point)
//     — invoked at named points between protocol steps; lets tests pause a
//       thread mid-operation (via thread_local state in the callback) to
//       drive deterministic interleavings: forcing helping branches (lines
//       51, 61, 77, 78, 85 of the pseudocode), the backtrack path (line 98),
//       and the Figure 3 schedules.
//
// The default (NoopTraits) compiles to nothing; instrumented builds pay only
// inside their own template instantiation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace efrb {

/// The CAS step kinds of the two commit protocols sharing this layer: the
/// eight EFRB steps (paper §3, Fig. 4) plus the two SCX steps of the
/// Brown–Ellen–Ruppert general technique (core/llx_scx.hpp), which fold the
/// flag/mark/child-swing edges into freeze + child-swap.
enum class CasStep : std::uint8_t {
  kIFlag,      // Insert: flag the parent (line 56)
  kIChild,     // Insert: swing the parent's child pointer (line 66 / 115/117)
  kIUnflag,    // Insert: clean the parent (line 67)
  kDFlag,      // Delete: flag the grandparent (line 81)
  kMark,       // Delete: mark the parent (line 91)
  kDChild,     // Delete: splice the parent out (line 105)
  kDUnflag,    // Delete: clean the grandparent (line 106)
  kBacktrack,  // Delete: remove the flag after a failed mark (line 98)
  kFreeze,     // SCX: freeze one V-node's info word onto the ScxRecord
  kScxChild,   // SCX: swing the target child pointer old -> new
};

/// Number of CasStep values; sizes the per-step counter arrays in
/// op_context.hpp.
inline constexpr std::size_t kNumCasSteps = 10;

inline const char* to_string(CasStep s) noexcept {
  switch (s) {
    case CasStep::kIFlag: return "iflag";
    case CasStep::kIChild: return "ichild";
    case CasStep::kIUnflag: return "iunflag";
    case CasStep::kDFlag: return "dflag";
    case CasStep::kMark: return "mark";
    case CasStep::kDChild: return "dchild";
    case CasStep::kDUnflag: return "dunflag";
    case CasStep::kBacktrack: return "backtrack";
    case CasStep::kFreeze: return "freeze";
    case CasStep::kScxChild: return "scx-child";
  }
  return "?";
}

/// Pause points between protocol steps.
enum class HookPoint : std::uint8_t {
  kAfterSearch,      // Search returned (Insert/Delete/Find attempt)
  kAfterIFlag,       // successful iflag, before HelpInsert
  kBeforeIChild,     // inside HelpInsert, before the ichild CAS
  kBeforeIUnflag,    // inside HelpInsert, before the iunflag CAS
  kAfterDFlag,       // successful dflag, before HelpDelete
  kBeforeMark,       // inside HelpDelete, before the mark CAS
  kBeforeDChild,     // inside HelpMarked, before the dchild CAS
  kBeforeDUnflag,    // inside HelpMarked, before the dunflag CAS
  kBeforeBacktrack,  // inside HelpDelete, failed mark, before backtrack CAS
  kBeforeHelp,       // about to help another operation
  kInsertRetry,      // Insert attempt failed; looping
  kDeleteRetry,      // Delete attempt failed; looping
  kAfterHelp,        // help dispatch returned; pairs with kBeforeHelp
  // SCX pause points (core/llx_scx.hpp / core/chromatic.hpp). A thread
  // stalled at any of them leaves an SCX record mid-commit, which every
  // other operation must be able to help past.
  kBeforeFreeze,     // inside help_scx, before one freeze CAS
  kBeforeScxChild,   // inside help_scx, all V frozen, before the child CAS
  kBeforeScxCommit,  // inside help_scx, before the state InProgress->Committed
  kScxRetry,         // an LLX/SCX transaction failed; operation looping
  kBeforeRebalance,  // cleanup found a violation, before its fixing SCX
};

/// Number of HookPoint values; sizes the per-point tables in src/inject/.
inline constexpr std::size_t kNumHookPoints = 18;

inline const char* to_string(HookPoint p) noexcept {
  switch (p) {
    case HookPoint::kAfterSearch: return "after-search";
    case HookPoint::kAfterIFlag: return "after-iflag";
    case HookPoint::kBeforeIChild: return "before-ichild";
    case HookPoint::kBeforeIUnflag: return "before-iunflag";
    case HookPoint::kAfterDFlag: return "after-dflag";
    case HookPoint::kBeforeMark: return "before-mark";
    case HookPoint::kBeforeDChild: return "before-dchild";
    case HookPoint::kBeforeDUnflag: return "before-dunflag";
    case HookPoint::kBeforeBacktrack: return "before-backtrack";
    case HookPoint::kBeforeHelp: return "before-help";
    case HookPoint::kInsertRetry: return "insert-retry";
    case HookPoint::kDeleteRetry: return "delete-retry";
    case HookPoint::kAfterHelp: return "after-help";
    case HookPoint::kBeforeFreeze: return "before-freeze";
    case HookPoint::kBeforeScxChild: return "before-scx-child";
    case HookPoint::kBeforeScxCommit: return "before-scx-commit";
    case HookPoint::kScxRetry: return "scx-retry";
    case HookPoint::kBeforeRebalance: return "before-rebalance";
  }
  return "?";
}

/// Cost-attribution phases of one operation, the vocabulary of the profiling
/// layer (obs/profile.hpp). A PhaseProfiler partitions each operation's
/// measured time across these buckets: the first four are inferred from the
/// HookPoint stream (kAfterSearch closes descent, kBeforeHelp/kAfterHelp
/// bracket helping, kBeforeRebalance opens rebalance work, the retry points
/// reset to descent); the last two are explicit scopes emitted by the
/// protocol around allocation and retirement clusters via hooks::PhaseScope.
enum class Phase : std::uint8_t {
  kDescent,           // Search/find_path traversal down the tree
  kCasProtocol,       // flag/mark/child-swing CAS steps of the op's own commit
  kHelping,           // completing another operation's pending Info/ScxRecord
  kRebalanceCleanup,  // chromatic violation cleanup (fixing SCXs)
  kReclamation,       // retiring nodes/records into the reclaimer
  kPoolAlloc,         // allocating nodes/records (pool or heap)
};

/// Number of Phase values; sizes the per-phase accumulator arrays in
/// obs/profile.hpp.
inline constexpr std::size_t kNumPhases = 6;

inline const char* to_string(Phase p) noexcept {
  switch (p) {
    case Phase::kDescent: return "descent";
    case Phase::kCasProtocol: return "cas_protocol";
    case Phase::kHelping: return "helping";
    case Phase::kRebalanceCleanup: return "rebalance_cleanup";
    case Phase::kReclamation: return "reclamation";
    case Phase::kPoolAlloc: return "pool_alloc";
  }
  return "?";
}

/// Thread identity carried by hook emissions: the per-handle id assigned by
/// the owning structure, or kNoTid on the tree-level (thread_local lease)
/// path, which has no stable per-thread identity to report.
inline constexpr unsigned kNoTid = ~0u;

/// Key identity carried by hook emissions: the operation's key projected to
/// uint64 by OpContext::set_op_key (key-space attribution for the contention
/// heatmap, obs/heatmap.hpp), or kNoKey when the context does not track keys
/// (the default — tracking is enabled per Traits via kTrackKeys) or the key
/// type has no integral projection.
inline constexpr std::uint64_t kNoKey = ~std::uint64_t{0};

/// Owner identity stamped into Info/ScxRecord records when the instantiating
/// Traits enable kCausalTrace: the creating thread's id in the high 16 bits
/// and its per-handle operation sequence number in the low 48, packed into
/// one word so the stamp is a single plain store before the record's
/// publishing CAS. kNoOwner means "not stamped" (trait off, or a tree-level
/// op with no handle identity).
inline constexpr std::uint64_t kNoOwner = ~std::uint64_t{0};

inline constexpr std::uint64_t pack_owner(unsigned tid,
                                          std::uint64_t op_seq) noexcept {
  return (static_cast<std::uint64_t>(tid & 0xffffu) << 48) |
         (op_seq & ((std::uint64_t{1} << 48) - 1));
}
inline constexpr unsigned owner_tid(std::uint64_t owner) noexcept {
  return static_cast<unsigned>(owner >> 48);
}
inline constexpr std::uint64_t owner_seq(std::uint64_t owner) noexcept {
  return owner & ((std::uint64_t{1} << 48) - 1);
}

// ---------------------------------------------------------------------------
// Hook dispatch shims. Every emission point in protocol.hpp calls through
// these, passing the full site identity (step/point + the OpContext's thread
// id and operation key). A Traits type may implement any of three arities —
// the legacy on_cas(step, ok, node) / at(point), the tid-aware
// on_cas(step, ok, node, tid) / at(point, tid), or the key-aware
// on_cas(step, ok, node, tid, key) / at(point, tid, key); the shim detects
// the widest match at compile time, so existing traits keep working
// unchanged. The key argument is kNoKey unless the OpContext was built with
// key tracking enabled (Traits::kTrackKeys, see op_context.hpp).
//
// allow_cas is the fault-injection gate: a Traits exposing
// allow_cas(step, node, tid) -> bool may veto a protocol CAS, which the call
// site then treats exactly like a CAS that lost its race (the fault model of
// src/inject/). Traits without the member compile to `true` and the branch
// folds away.
// ---------------------------------------------------------------------------
namespace hooks {

template <typename Traits>
inline void emit_cas(CasStep s, bool ok, const void* node, unsigned tid,
                     std::uint64_t key = kNoKey) {
  if constexpr (requires { Traits::on_cas(s, ok, node, tid, key); }) {
    Traits::on_cas(s, ok, node, tid, key);
  } else if constexpr (requires { Traits::on_cas(s, ok, node, tid); }) {
    Traits::on_cas(s, ok, node, tid);
  } else {
    Traits::on_cas(s, ok, node);
  }
}

template <typename Traits>
inline void emit_at(HookPoint p, unsigned tid, std::uint64_t key = kNoKey) {
  if constexpr (requires { Traits::at(p, tid, key); }) {
    Traits::at(p, tid, key);
  } else if constexpr (requires { Traits::at(p, tid); }) {
    Traits::at(p, tid);
  } else {
    Traits::at(p);
  }
}

/// Help-site emission: like emit_at, but additionally carries the packed
/// owner stamp of the operation being helped (read from the Info/ScxRecord
/// the helper dispatched on). A Traits exposing the owner-aware arity
/// at(point, tid, key, owner) receives it; every narrower Traits falls back
/// through emit_at unchanged, so only causality-aware consumers pay for the
/// extra word.
template <typename Traits>
inline void emit_help(HookPoint p, unsigned tid, std::uint64_t key,
                      std::uint64_t owner) {
  if constexpr (requires { Traits::at(p, tid, key, owner); }) {
    Traits::at(p, tid, key, owner);
  } else {
    emit_at<Traits>(p, tid, key);
  }
}

/// Explicit-phase emission: brackets a region whose cost belongs to a phase
/// the HookPoint stream cannot infer (reclamation, pool_alloc). A Traits
/// exposing phase(entered, phase, tid) receives enter/exit edges; for every
/// other Traits (NoopTraits included) the call folds away entirely, so the
/// uninstrumented protocol stays byte-identical.
template <typename Traits>
inline void emit_phase(bool enter, Phase ph, unsigned tid) {
  if constexpr (requires { Traits::phase(enter, ph, tid); }) {
    Traits::phase(enter, ph, tid);
  } else {
    (void)enter;
    (void)ph;
    (void)tid;
  }
}

/// RAII form of emit_phase: enter on construction, exit on destruction.
/// Placed around allocation/retire clusters in protocol code; with a Traits
/// that lacks the phase hook both edges fold to nothing.
template <typename Traits>
class PhaseScope {
 public:
  PhaseScope(Phase ph, unsigned tid) noexcept : ph_(ph), tid_(tid) {
    emit_phase<Traits>(true, ph_, tid_);
  }
  ~PhaseScope() { emit_phase<Traits>(false, ph_, tid_); }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Phase ph_;
  unsigned tid_;
};

template <typename Traits>
inline bool allow_cas(CasStep s, const void* node, unsigned tid) {
  if constexpr (requires { Traits::allow_cas(s, node, tid); }) {
    return static_cast<bool>(Traits::allow_cas(s, node, tid));
  } else {
    (void)s;
    (void)node;
    (void)tid;
    return true;
  }
}

}  // namespace hooks

// ---------------------------------------------------------------------------
// Optional Traits flags, detected by the facade (absence = default):
//
//   kPooledAlloc (default false) — allocate nodes and Info records from a
//     per-structure ObjectPool (core/alloc.hpp) instead of the heap, with
//     retired blocks recycled through the reclaimer's PoolHook.
//   kLeanFind (default true) — route contains()/get() through the
//     bookkeeping-free find_path descent (core/search.hpp) instead of the
//     full Search. Turning it off restores the pre-redesign behaviour where
//     reads share the updaters' Search instantiation (useful for A/B runs
//     and for differential tests pinning the two descents against each
//     other).
// ---------------------------------------------------------------------------

namespace hooks {

template <typename Traits>
inline constexpr bool pooled_alloc_v = [] {
  if constexpr (requires { Traits::kPooledAlloc; }) {
    return static_cast<bool>(Traits::kPooledAlloc);
  } else {
    return false;
  }
}();

template <typename Traits>
inline constexpr bool lean_find_v = [] {
  if constexpr (requires { Traits::kLeanFind; }) {
    return static_cast<bool>(Traits::kLeanFind);
  } else {
    return true;
  }
}();

/// kCausalTrace (default false) — stamp every Info/ScxRecord with its
/// creator's {tid, op_seq} owner word, maintain per-handle progress words
/// (op_seq/key/retries/step/help depth, core/op_context.hpp) for the
/// liveness watchdog, and carry the owner through the kBeforeHelp/kAfterHelp
/// emissions so causality consumers (obs/causal.hpp) can attribute helping.
template <typename Traits>
inline constexpr bool causal_trace_v = [] {
  if constexpr (requires { Traits::kCausalTrace; }) {
    return static_cast<bool>(Traits::kCausalTrace);
  } else {
    return false;
  }
}();

}  // namespace hooks

/// Zero-cost default: all hooks are empty and statistics are disabled.
/// kSearchHelpsMarked selects the paper's §6 Search variant: a Search that
/// encounters a marked internal node helps complete the deletion's dchild
/// CAS (splicing the node out) and restarts. The paper proposes this
/// modification as the precondition for hazard-pointer reclamation — a
/// marked-but-linked node must not outlive the deleter indefinitely. The
/// trade-off: Find is no longer read-only under this variant.
struct NoopTraits {
  static constexpr bool kCountStats = false;
  static constexpr bool kSearchHelpsMarked = false;
  static void on_cas(CasStep, bool, const void*) noexcept {}
  static void at(HookPoint) noexcept {}
};

/// Pooled-allocation traits: nodes and Info records come from the
/// structure's ObjectPool and recycle through the reclaimers (the tentpole
/// configuration of the allocation ablation; see core/alloc.hpp).
struct PooledTraits : NoopTraits {
  static constexpr bool kPooledAlloc = true;
};

/// Pre-redesign read path: contains()/get() run the full Search with
/// SearchResult capture. The A/B counterpart of the (default) lean find.
struct FullSearchFindTraits : NoopTraits {
  static constexpr bool kLeanFind = false;
};

/// Pooled allocation + full-search reads (completes the 2x2 ablation grid).
struct PooledFullSearchTraits : PooledTraits {
  static constexpr bool kLeanFind = false;
};

/// §6 variant: searches splice out marked nodes they encounter.
struct HelpingSearchTraits : NoopTraits {
  static constexpr bool kSearchHelpsMarked = true;
};

/// Test traits: hooks dispatch to (re)settable global std::functions. Distinct
/// template instantiations do not interfere with trees using NoopTraits; gtest
/// runs test bodies serially, so tests install/reset these around themselves.
struct CallbackTraits {
  static constexpr bool kCountStats = true;
  static constexpr bool kSearchHelpsMarked = false;

  // NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
  static inline std::function<void(CasStep, bool, const void*)> on_cas_fn;
  // NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
  static inline std::function<void(HookPoint)> at_fn;

  static void on_cas(CasStep s, bool ok, const void* node) {
    if (on_cas_fn) on_cas_fn(s, ok, node);
  }
  static void at(HookPoint p) {
    if (at_fn) at_fn(p);
  }

  static void reset() {
    on_cas_fn = nullptr;
    at_fn = nullptr;
  }
};

/// Statistics-only traits for benchmarks (E5): counters on, hooks empty.
struct StatsTraits {
  static constexpr bool kCountStats = true;
  static constexpr bool kSearchHelpsMarked = false;
  static void on_cas(CasStep, bool, const void*) noexcept {}
  static void at(HookPoint) noexcept {}
};

}  // namespace efrb
