// A balanced chromatic tree over the LLX/SCX substrate (core/llx_scx.hpp) —
// the first algorithm in this repo written directly against the generic
// Data-record seam rather than the hand-specialized EFRB protocol.
//
// A chromatic tree (Nurmi & Soisalon-Soininen; Boyar & Larsen) is a
// relaxed-balance red-black tree: every node carries a weight (0 = red,
// 1 = black, >= 2 = overweight), and the hard invariant — maintained by every
// transformation here — is that all root-to-leaf paths through the real
// subtree have equal weighted sums. Balance violations (red-red: a weight-0
// node with a weight-0 parent; overweight: weight >= 2) are tolerated
// transiently and repaired by a decoupled cleanup phase, so each update is a
// small O(1)-node LLX/SCX transaction instead of a root-locked rebalance.
//
// Structure: leaf-oriented, like EFRB (Fig. 6 of the 2010 paper): real keys
// live in leaves, internal keys route (left subtree < key <= right subtree),
// and the sentinel spine ∞₁ < ∞₂ removes the empty/one-key special cases.
// A single node type serves both roles; a node is a leaf iff its left child
// pointer is null (stable for the node's whole lifetime — children are only
// assigned at construction and swung on internals).
//
// Every mutation is one SCX: freeze the O(1)-node window V by CASing its info
// words onto a fresh ScxRecord, mark the replaced set R, swing one child
// pointer, commit. Helping, abort-on-conflict, and record reclamation are
// entirely the engine's; this file only describes windows:
//
//   insert  V={p}          R={}        p's child l -> internal(new, l)
//           (l reused by pointer; when l is overweight its copy changes
//            weight, so the slow shape V={p,l} R={l} copies it instead)
//   assign  V={p,l}        R={l}       p's child l -> copy(l, new value)
//   erase   V={gp,p,l,s}   R={p,l,s}   gp's child p -> copy(s) absorbing
//           w(p)+w(s) (always a fresh copy, never the sibling by pointer —
//           see the ABA note in erase())
//   cleanup V⊆{p3,p2,p1,u,sibling}     one balance transformation (below)
//
// Rebalancing transformations (each preserves the weighted path-sum
// invariant exactly; weights in parentheses):
//
//   BLK    red-red at u, uncle red: recolor — p2(w-1)[p1(1), uncle(1)]
//   RB1    red-red at u outer, uncle black: single rotation, p1 up
//   RB2    red-red at u inner, uncle black: double rotation, u up
//   relabel red (or overweight) top of the real subtree: copy at weight 1
//   W_ROT  overweight at u, red sibling: rotate the sibling above p1
//   PUSH   overweight at u, black sibling: w(u)-1, w(s)-1, w(p1)+1
//
// cleanup(k) walks the search path for k from the root, fixes the topmost
// violation it meets with one SCX, and restarts, up to a bounded number of
// rounds. The cap makes the cost strictly bounded; when it is hit the pass
// counts a TreeStats::cleanup_abandoned and parks the key in a one-deep
// stash (ParkedViolation) that the next mutating op drains, so a violation
// PUSHed off every future search path is still repaired eventually. The
// path-sum invariant and linearizability are never at risk either way.
// Brown's per-violation responsibility hand-off remains the stronger scheme
// and is noted in ROADMAP.md.
//
// Reclamation, stats, hooks and fault injection all arrive through the same
// OpContext the EFRB core uses: retired nodes and drained ScxRecords go
// through ctx.retire (Epoch/Hazard/HP-domain reclaimers, retire-to-pool),
// descent depths feed TreeStats::depth_*, committed transformations bump
// TreeStats::rotations, and every freeze/child CAS is gated and emitted via
// core/debug_hooks.hpp (CasStep::kFreeze / kScxChild).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/alloc.hpp"
#include "core/bounded_key.hpp"
#include "core/debug_hooks.hpp"
#include "core/llx_scx.hpp"
#include "core/op_context.hpp"
#include "core/protocol.hpp"  // InsertOutcome (shared with the EFRB core)
#include "reclaim/epoch.hpp"
#include "util/assert.hpp"
#include "util/backoff.hpp"
#include "util/cacheline.hpp"
#include "util/rng.hpp"

namespace efrb {

/// Structural validation outcome for chromatic trees (quiescent trees); see
/// ChromaticCore::validate. `ok` covers the hard invariants only — balance
/// violations are legal transient states and are reported as counts.
struct ChromaticValidation {
  bool ok = true;
  std::string error;
  std::size_t real_leaves = 0;
  std::size_t internals = 0;
  std::size_t height = 0;         // max depth over all nodes (root = 1)
  std::size_t red_red = 0;        // weight-0 nodes with weight-0 parents
  std::size_t overweight = 0;     // nodes with weight >= 2
};

/// One-deep stash for the search key of a cleanup pass that hit the round
/// cap with a violation still on its path. The bounded cleanup loop makes
/// every op's rebalancing cost strictly finite, but giving up can PUSH a
/// red-red pair off every future search path, where no trigger ever revisits
/// it — the key remembers which path to resume on. Losing a stash under a
/// concurrent overwrite is benign (the stash is a repair hint, not a
/// correctness obligation; abandonments are also counted in TreeStats), so
/// the slot is deliberately single-entry and last-writer-wins.
///
/// Storage: keys with an integral round-trip go through a pair of atomics
/// (lock-free; take() may pair a key from one stash with another's armed
/// flag under a race, which just resumes a different valid path). Other key
/// types fall back to a tiny mutex that is touched only when a stash exists
/// — never on the clean-path fast exit, which checks `armed_` alone.
template <typename Key>
class ParkedViolation {
  static constexpr bool kAtomicKey =
      std::is_integral_v<Key> && sizeof(Key) <= sizeof(std::uint64_t);

 public:
  bool armed() const noexcept {
    return armed_.load(std::memory_order_acquire);
  }

  void stash(const Key& k) {
    if constexpr (kAtomicKey) {
      key_.store(static_cast<std::uint64_t>(k), std::memory_order_relaxed);
    } else {
      const std::lock_guard<std::mutex> lock(mu_);
      slot_ = k;
    }
    armed_.store(true, std::memory_order_release);
  }

  std::optional<Key> take() {
    if (!armed_.exchange(false, std::memory_order_acq_rel)) {
      return std::nullopt;
    }
    if constexpr (kAtomicKey) {
      return static_cast<Key>(key_.load(std::memory_order_relaxed));
    } else {
      const std::lock_guard<std::mutex> lock(mu_);
      std::optional<Key> out = std::move(slot_);
      slot_.reset();
      return out;
    }
  }

 private:
  struct Empty {};

  std::atomic<bool> armed_{false};
  [[no_unique_address]] std::conditional_t<kAtomicKey,
                                           std::atomic<std::uint64_t>,
                                           Empty> key_{};
  [[no_unique_address]] std::conditional_t<kAtomicKey, Empty, std::mutex> mu_;
  [[no_unique_address]] std::conditional_t<kAtomicKey, Empty,
                                           std::optional<Key>> slot_;
};

/// The chromatic node: one type for leaves and internals (leaf iff left ==
/// nullptr), satisfying the ScxNode concept of the LLX/SCX engine. `weight`
/// is immutable — reweighting replaces the node, which is what lets llx()
/// treat everything except the children and the info word as constant.
template <typename Key, typename Value>
struct ChromaticLayout {
  using key_type = Key;
  using mapped_type = Value;
  using BKey = BoundedKey<Key>;

  struct alignas(kCacheLineSize) Node {
    const BKey key;
    [[no_unique_address]] Value value;  // meaningful in leaves only
    const std::int32_t weight;          // 0 = red, 1 = black, >= 2 overweight
    std::atomic<Node*> left;            // null iff leaf (stable)
    std::atomic<Node*> right;
    AtomicScxWord<Node> scx;

    Node(BKey k, Value v, std::int32_t w, Node* l, Node* r)
        : key(std::move(k)), value(std::move(v)), weight(w), left(l), right(r) {}
  };

  using Rec = ScxRecordOf<Node>;
  using Word = ScxWord<Node>;

  static_assert(ScxNode<Node>);
};

/// The chromatic tree core: dictionary operations, the cleanup phase, ordered
/// navigation and the validator, all over ChromaticLayout nodes and the
/// LlxScx engine. The facade (ChromaticTreeMap below) wraps it exactly like
/// efrb_tree.hpp wraps TreeCore.
template <typename Key, typename Value, typename Compare, typename Traits,
          typename Ctx>
class ChromaticCore {
 public:
  using Layout = ChromaticLayout<Key, Value>;
  using Node = typename Layout::Node;
  using Rec = typename Layout::Rec;
  using Word = typename Layout::Word;
  using BKey = typename Layout::BKey;
  using AllocT = typename Ctx::AllocT;
  using Llx = LlxScx<Node, Traits, Ctx>;

  /// Rounds of the bounded cleanup phase. Each round is one root-to-key walk
  /// plus at most one SCX; red-red cascades climb two levels per fix, so the
  /// cap is far above any height a bounded key space can produce.
  static constexpr int kMaxCleanupRounds = 256;

  explicit ChromaticCore(Compare cmp, AllocT* alloc)
      : cmp_(std::move(cmp)), alloc_(alloc) {
    // Fig. 6 shape, chromatic weights: every sentinel has weight 1.
    Node* left = make_direct<Node>(BKey::inf1(), Value{}, 1, nullptr, nullptr);
    Node* right = nullptr;
    try {
      right = make_direct<Node>(BKey::inf2(), Value{}, 1, nullptr, nullptr);
      root_ = make_direct<Node>(BKey::inf2(), Value{}, 1, left, right);
    } catch (...) {
      dispose_direct(right);
      dispose_direct(left);
      throw;
    }
  }

  ChromaticCore(const ChromaticCore&) = delete;
  ChromaticCore& operator=(const ChromaticCore&) = delete;

  /// Requires quiescence. Frees every node reachable from the root plus the
  /// ScxRecords still referenced by their info words (deduplicated — one
  /// committed record is referenced by every node it froze that was never
  /// displaced afterwards).
  ~ChromaticCore() {
    std::vector<Node*> stack{root_};
    std::vector<Rec*> recs;
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (Rec* r = n->scx.load(std::memory_order_relaxed).info(); r != nullptr) {
        recs.push_back(r);
      }
      Node* l = n->left.load(std::memory_order_relaxed);
      if (l != nullptr) {
        stack.push_back(l);
        stack.push_back(n->right.load(std::memory_order_relaxed));
      }
      dispose_direct(n);
    }
    std::sort(recs.begin(), recs.end());
    recs.erase(std::unique(recs.begin(), recs.end()), recs.end());
    for (Rec* r : recs) dispose_direct(r);
  }

  const BoundedCompare<Key, Compare>& cmp() const noexcept { return cmp_; }
  Node* root() const noexcept { return root_; }

  // ---------------- Reads ----------------

  bool contains(const Key& k, Ctx& ctx) const {
    ctx.set_op_key(k);
    const Node* l = descend(k, ctx);
    hooks::emit_at<Traits>(HookPoint::kAfterSearch, ctx.tid(), ctx.op_key());
    return cmp_.equals(k, l->key);
  }

  std::optional<Value> get(const Key& k, Ctx& ctx) const {
    ctx.set_op_key(k);
    const Node* l = descend(k, ctx);
    hooks::emit_at<Traits>(HookPoint::kAfterSearch, ctx.tid(), ctx.op_key());
    if (!cmp_.equals(k, l->key)) return std::nullopt;
    return l->value;  // leaf payloads are immutable after publication
  }

  // ---------------- Updates ----------------

  /// Insert k (or assign its value when present and `assign_if_present`).
  /// The structural case is one SCX over V={p,l}: replace the leaf l by a
  /// new internal with {new leaf, copy of l} below it. Weights: under a
  /// sentinel parent everything is 1 (never introduces a violation at the
  /// top); replacing a red leaf keeps the whole replacement red (path sums
  /// unchanged: 0 = 0+0); otherwise the internal absorbs w(l)-1 and the
  /// leaves take 1 each ((w-1)+1 = w).
  InsertOutcome insert(const Key& k, Value v, bool assign_if_present,
                       Ctx& ctx) {
    ctx.set_op_key(k);
    ctx.begin_op();
    for (;;) {
      const DescentWindow w = walk(k, ctx);
      hooks::emit_at<Traits>(HookPoint::kAfterSearch, ctx.tid(), ctx.op_key());
      Node* p = w.p;
      Node* l = w.l;
      if (cmp_.equals(k, l->key)) {
        if (!assign_if_present) {
          ctx.end_op();
          return InsertOutcome::kDuplicate;
        }
        const LlxResult<Node> rp = Llx::llx(ctx, p);
        std::atomic<Node*>* field = rp.ok ? field_for(p, rp, l) : nullptr;
        const LlxResult<Node> rl =
            field != nullptr ? Llx::llx(ctx, l) : LlxResult<Node>{};
        if (!rl.ok) {
          ctx.count_insert_retry();
          scx_retry(ctx);
          continue;
        }
        Node* nl = ctx.template make<Node>(l->key, v, l->weight, nullptr,
                                           nullptr);
        Rec* rec = make_rec(ctx, {p, l}, {rp.info, rl.info},
                            /*finalize_mask=*/0b10, field, l, nl);
        ctx.count_insert_attempt();
        if (Llx::scx(ctx, rec)) {
          resume_parked(ctx);  // mutating op: drain any abandoned repair
          ctx.end_op();
          return InsertOutcome::kAssigned;
        }
        ctx.template dispose<Node>(nl);
        ctx.count_insert_retry();
        scx_retry(ctx);
        continue;
      }

      const LlxResult<Node> rp = Llx::llx(ctx, p);
      std::atomic<Node*>* field = rp.ok ? field_for(p, rp, l) : nullptr;
      if (field == nullptr) {
        ctx.count_insert_retry();
        scx_retry(ctx);
        continue;
      }
      std::int32_t wi, wl;
      if (!p->key.is_real()) {
        wi = 1;
        wl = 1;
      } else if (l->weight == 0) {
        wi = 0;
        wl = 0;
      } else {
        wi = l->weight - 1;
        wl = 1;
      }
      Node* nk =
          ctx.template make<Node>(BKey::real(k), v, wl, nullptr, nullptr);
      // Leaf-oriented split: the larger key routes (left < key <= right).
      const bool k_left = cmp_.less(k, l->key);
      Node* ni;
      Rec* rec;
      Node* nold = nullptr;
      if (wl == l->weight) {
        // Fast path (the common case — every leaf except an overweight one
        // keeps its weight): the old leaf stays in the tree below the new
        // internal, so nothing is removed and V = {p}. Freezing p alone is
        // enough: any transaction that would finalize l or swing it out must
        // change p's child and therefore freeze p itself, which conflicts.
        // Leaving the displaced l non-finalized is sound only because every
        // SCX in this file links a freshly allocated new_child, so the field
        // can never return to l and a stalled helper's child CAS (expecting
        // l) can never fire a second time — see the child-swing note in
        // llx_scx.hpp and the matching erase() note below.
        ni = ctx.template make<Node>(k_left ? l->key : BKey::real(k),
                                     Value{}, wi, k_left ? nk : l,
                                     k_left ? l : nk);
        rec = make_rec(ctx, {p}, {rp.info}, /*finalize_mask=*/0b0, field, l,
                       ni);
      } else {
        // The leaf's weight changes (w >= 2 collapsing to 1): copy it, and
        // the copy's window must freeze and finalize the original.
        const LlxResult<Node> rl = Llx::llx(ctx, l);
        if (!rl.ok) {
          ctx.template dispose<Node>(nk);
          ctx.count_insert_retry();
          scx_retry(ctx);
          continue;
        }
        nold = ctx.template make<Node>(l->key, l->value, wl, nullptr, nullptr);
        ni = ctx.template make<Node>(k_left ? l->key : BKey::real(k),
                                     Value{}, wi, k_left ? nk : nold,
                                     k_left ? nold : nk);
        rec = make_rec(ctx, {p, l}, {rp.info, rl.info},
                       /*finalize_mask=*/0b10, field, l, ni);
      }
      ctx.count_insert_attempt();
      if (Llx::scx(ctx, rec)) {
        // Only walk the cleanup path when this SCX actually created a
        // violation: a red replacement internal is fine on its own (most
        // inserts land under a black parent), it violates only paired with a
        // red parent or red leaves; inheriting w(l)-1 >= 2 re-sites an
        // existing overweight. p->weight is immutable, so reading it after
        // the commit is safe even if p was already spliced out.
        if (wi >= 2 || (wi == 0 && (wl == 0 || p->weight == 0))) {
          cleanup(k, ctx);
        } else {
          resume_parked(ctx);  // clean commit still drains abandoned repairs
        }
        ctx.end_op();
        return InsertOutcome::kInserted;
      }
      ctx.template dispose<Node>(ni);
      if (nold != nullptr) ctx.template dispose<Node>(nold);
      ctx.template dispose<Node>(nk);
      ctx.count_insert_retry();
      scx_retry(ctx);
    }
  }

  /// Atomic compare-and-replace on a key's value: one SCX over V={p,l}
  /// replacing the leaf, exactly the assign window with a value precondition.
  bool replace(const Key& k, const Value& expected, Value desired, Ctx& ctx) {
    ctx.set_op_key(k);
    ctx.begin_op();
    for (;;) {
      const DescentWindow w = walk(k, ctx);
      hooks::emit_at<Traits>(HookPoint::kAfterSearch, ctx.tid(), ctx.op_key());
      Node* p = w.p;
      Node* l = w.l;
      if (!cmp_.equals(k, l->key) || !(l->value == expected)) {
        ctx.end_op();
        return false;
      }
      const LlxResult<Node> rp = Llx::llx(ctx, p);
      std::atomic<Node*>* field = rp.ok ? field_for(p, rp, l) : nullptr;
      const LlxResult<Node> rl =
          field != nullptr ? Llx::llx(ctx, l) : LlxResult<Node>{};
      if (!rl.ok) {
        ctx.count_insert_retry();
        scx_retry(ctx);
        continue;
      }
      Node* nl = ctx.template make<Node>(l->key, desired, l->weight, nullptr,
                                         nullptr);
      Rec* rec = make_rec(ctx, {p, l}, {rp.info, rl.info},
                          /*finalize_mask=*/0b10, field, l, nl);
      ctx.count_insert_attempt();
      if (Llx::scx(ctx, rec)) {
        resume_parked(ctx);  // mutating op: drain any abandoned repair
        ctx.end_op();
        return true;
      }
      ctx.template dispose<Node>(nl);
      ctx.count_insert_retry();
      scx_retry(ctx);
    }
  }

  /// Delete k: one SCX over V={gp,p,l,s} splicing out the leaf l and its
  /// parent p, replacing them with a copy of the sibling s that absorbs both
  /// weights (w(p)+w(s) — the path sums through s are exactly preserved; the
  /// copy may be overweight, which cleanup then repairs). Under a sentinel
  /// grandparent the copy tops the real subtree and is pinned to weight 1.
  bool erase(const Key& k, Ctx& ctx) {
    ctx.set_op_key(k);
    ctx.begin_op();
    for (;;) {
      const DescentWindow w = walk(k, ctx);
      hooks::emit_at<Traits>(HookPoint::kAfterSearch, ctx.tid(), ctx.op_key());
      if (!cmp_.equals(k, w.l->key)) {
        ctx.end_op();
        return false;
      }
      Node* gp = w.gp;
      Node* p = w.p;
      Node* l = w.l;
      EFRB_DCHECK(gp != nullptr);  // real leaves sit below the sentinel spine
      const LlxResult<Node> rgp = Llx::llx(ctx, gp);
      std::atomic<Node*>* field = rgp.ok ? field_for(gp, rgp, p) : nullptr;
      const LlxResult<Node> rp =
          field != nullptr ? Llx::llx(ctx, p) : LlxResult<Node>{};
      Node* s = nullptr;
      if (rp.ok) {
        if (rp.left == l) {
          s = rp.right;
        } else if (rp.right == l) {
          s = rp.left;
        }
      }
      const LlxResult<Node> rl = s != nullptr ? Llx::llx(ctx, l)
                                              : LlxResult<Node>{};
      if (!rl.ok) {
        ctx.count_delete_retry();
        scx_retry(ctx);
        continue;
      }
      const LlxResult<Node> rs = Llx::llx(ctx, s);
      if (!rs.ok) {
        ctx.count_delete_retry();
        scx_retry(ctx);
        continue;
      }
      const std::int32_t nw =
          !gp->key.is_real() ? 1 : p->weight + s->weight;
      // The replacement is always a fresh copy of s, never s hoisted by
      // pointer — even when nw == s->weight. The engine's child-CAS
      // ABA-freedom rests on every value stored into a child field being a
      // never-before-linked node (llx_scx.hpp); the insert fast path keeps
      // its displaced leaf alive below the new internal, so hoisting that
      // leaf back into the same field here would hand a stalled helper of
      // the committed insert its expected old value again, letting its CAS
      // re-link the retired internal (resurrecting the erased key, then
      // use-after-free once the reclaimer frees it). Covered by
      // ChromaticFaultTest.StalledInsertHelperCannotResurrectErasedSubtree.
      Node* ns =
          ctx.template make<Node>(s->key, s->value, nw, rs.left, rs.right);
      Rec* rec = make_rec(ctx, {gp, p, l, s},
                          {rgp.info, rp.info, rl.info, rs.info},
                          /*finalize_mask=*/0b1110, field, p, ns);
      ctx.count_delete_attempt();
      if (Llx::scx(ctx, rec)) {
        // nw == 1 is violation-free; nw >= 2 is overweight; nw == 0 (both p
        // and s were red) violates only when gp is red too.
        if (nw >= 2 || (nw == 0 && gp->weight == 0)) {
          cleanup(k, ctx);
        } else {
          resume_parked(ctx);  // clean commit still drains abandoned repairs
        }
        ctx.end_op();
        return true;
      }
      ctx.template dispose<Node>(ns);
      ctx.count_delete_retry();
      scx_retry(ctx);
    }
  }

  // ---------------- Cleanup (decoupled rebalancing) ----------------

  /// Drain any previously abandoned repair, then walk k's own path. Called
  /// by every mutation that created a violation; mutations that commit clean
  /// call resume_parked() directly, which is how a parked violation gets
  /// revisited even when no later op ever re-triggers on its path.
  void cleanup(const Key& k, Ctx& ctx) {
    resume_parked(ctx);
    cleanup_path(k, ctx);
  }

  /// Resume the repair a capped cleanup pass left behind, if any. The armed
  /// check is one acquire load, so the common (nothing parked) case costs a
  /// predictable branch on the mutation success path.
  void resume_parked(Ctx& ctx) {
    if (!parked_.armed()) return;
    if (std::optional<Key> k = parked_.take()) cleanup_path(*k, ctx);
  }

  /// Walk the search path for k from the root; repair the topmost violation
  /// met with one SCX; restart. Returns when the path is violation-free or
  /// the round cap is hit — in which case the violation is still on k's
  /// path, so k is stashed for a later mutating op to resume (counted in
  /// TreeStats::cleanup_abandoned).
  void cleanup_path(const Key& k, Ctx& ctx) {
    for (int round = 0; round < kMaxCleanupRounds; ++round) {
      Node* p3 = nullptr;
      Node* p2 = nullptr;
      Node* p1 = nullptr;
      Node* u = root_;
      for (;;) {
        const bool red_red =
            u->weight == 0 && p1 != nullptr && p1->weight == 0;
        if (red_red || u->weight >= 2) break;
        Node* c = cmp_.less(k, u->key)
                      ? u->left.load(std::memory_order_acquire)
                      : u->right.load(std::memory_order_acquire);
        if (c == nullptr) return;  // clean path
        p3 = p2;
        p2 = p1;
        p1 = u;
        u = c;
      }
      hooks::emit_at<Traits>(HookPoint::kBeforeRebalance, ctx.tid(),
                             ctx.op_key());
      bool fixed;
      if (u->weight >= 2) {
        fixed = fix_overweight(ctx, p2, p1, u);
      } else {
        fixed = fix_red_red(ctx, p3, p2, p1, u);
      }
      if (fixed) {
        ctx.count_rotation();
      } else {
        ctx.retry_pause();  // conflicting SCX won the window; re-walk
      }
    }
    // Round cap hit with a violation still on this path. Park the key so the
    // next mutating op resumes the repair; without this, a PUSH during the
    // capped pass can leave a red-red pair off every future search path.
    ctx.count_cleanup_abandoned();
    parked_.stash(k);
  }

  // ---------------- Ordered navigation ----------------
  // Same weak-consistency contract as ordered.hpp: exact at quiescence;
  // under concurrency every reported key was present at some time during the
  // call. Callers hold a pinned region (the facade does).

  std::optional<Key> min_key() const {
    const Node* n = leftmost(root_);
    if (!n->key.is_real()) return std::nullopt;
    return n->key.key;
  }

  std::optional<Key> max_key() const {
    const Node* n = rightmost(root_);
    if (!n->key.is_real()) return std::nullopt;
    return n->key.key;
  }

  /// Smallest key >= k (> k when strict); mirror logic of ordered::bound_up
  /// with the left==null leaf test.
  std::optional<Key> bound_up(const Key& k, bool strict) const {
    const Node* n = root_;
    const Node* last_right = nullptr;
    for (;;) {
      const Node* c;
      if (cmp_.less(k, n->key)) {
        c = n->left.load(std::memory_order_acquire);
        if (c == nullptr) break;
        last_right = n->right.load(std::memory_order_acquire);
      } else {
        c = n->right.load(std::memory_order_acquire);
        if (c == nullptr) break;
      }
      n = c;
    }
    if (n->key.is_real()) {
      const bool ge = !cmp_.user_compare()(n->key.key, k);
      const bool gt = cmp_.user_compare()(k, n->key.key);
      if (strict ? gt : ge) return n->key.key;
    }
    if (last_right == nullptr) return std::nullopt;
    const Node* succ = leftmost(last_right);
    if (!succ->key.is_real()) return std::nullopt;
    return succ->key.key;
  }

  /// Largest key <= k (< k when strict); mirror image of bound_up.
  std::optional<Key> bound_down(const Key& k, bool strict) const {
    const Node* n = root_;
    const Node* last_left = nullptr;
    for (;;) {
      const Node* c;
      if (cmp_.less(k, n->key)) {
        c = n->left.load(std::memory_order_acquire);
        if (c == nullptr) break;
      } else {
        c = n->right.load(std::memory_order_acquire);
        if (c == nullptr) break;
        last_left = n->left.load(std::memory_order_acquire);
      }
      n = c;
    }
    if (n->key.is_real()) {
      const bool le = !cmp_.user_compare()(k, n->key.key);
      const bool lt = cmp_.user_compare()(n->key.key, k);
      if (strict ? lt : le) return n->key.key;
    }
    if (last_left == nullptr) return std::nullopt;
    const Node* pred = rightmost(last_left);
    if (!pred->key.is_real()) return std::nullopt;
    return pred->key.key;
  }

  /// Visit every (key, value) with lo <= key <= hi in order, pruning by the
  /// BST bounds (explicit stack, like ordered::range).
  template <typename Fn>
  void range(const Key& lo, const Key& hi, Fn&& fn) const {
    if (cmp_.user_compare()(hi, lo)) return;
    std::vector<const Node*> stack{root_};
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      const Node* l = n->left.load(std::memory_order_acquire);
      if (l != nullptr) {
        if (!cmp_.less(hi, n->key)) {
          stack.push_back(n->right.load(std::memory_order_acquire));
        }
        if (cmp_.less(lo, n->key)) stack.push_back(l);
      } else if (n->key.is_real() && !cmp_.user_compare()(n->key.key, lo) &&
                 !cmp_.user_compare()(hi, n->key.key)) {
        fn(n->key.key, n->value);
      }
    }
  }

  /// Depth-first in-order visit of every real (key, value) pair.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::vector<const Node*> stack{root_};
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      const Node* l = n->left.load(std::memory_order_acquire);
      if (l != nullptr) {
        stack.push_back(n->right.load(std::memory_order_acquire));
        stack.push_back(l);
      } else if (n->key.is_real()) {
        fn(n->key.key, n->value);
      }
    }
  }

  /// Structural validation (quiescent trees): leaf-oriented shape, BST key
  /// order with sentinel placement, non-negative weights with weight-1
  /// sentinels, and the chromatic hard invariant — every root-to-leaf path
  /// ending in a real leaf carries the same weighted sum. Balance violations
  /// are counted, not failed: they are legal transient states (and, past the
  /// cleanup cap, legal resting states).
  ChromaticValidation validate() const {
    ChromaticValidation r;
    if (root_->key.cls != KeyClass::kInf2) {
      r.ok = false;
      r.error = "root key is not ∞₂";
      return r;
    }
    struct Frame {
      const Node* n;
      const BKey* lower;  // inclusive (equal keys go right)
      const BKey* upper;  // exclusive
      std::size_t depth;
      std::int64_t sum;           // weighted path sum including n
      std::int32_t parent_weight;
    };
    std::int64_t real_sum = -1;
    std::vector<Frame> stack{{root_, nullptr, nullptr, 1, root_->weight, 1}};
    while (!stack.empty()) {
      const Frame f = stack.back();
      stack.pop_back();
      r.height = std::max(r.height, f.depth);
      if (f.lower != nullptr && cmp_(f.n->key, *f.lower)) {
        r.ok = false;
        r.error = "key below the lower bound inherited from an ancestor";
        return r;
      }
      if (f.upper != nullptr && !cmp_(f.n->key, *f.upper)) {
        r.ok = false;
        r.error = "key not strictly below the upper bound from an ancestor";
        return r;
      }
      if (f.n->weight < 0) {
        r.ok = false;
        r.error = "negative weight";
        return r;
      }
      if (!f.n->key.is_real() && f.n->weight != 1) {
        r.ok = false;
        r.error = "sentinel node with weight != 1";
        return r;
      }
      if (f.n->weight == 0 && f.parent_weight == 0) ++r.red_red;
      if (f.n->weight >= 2) ++r.overweight;
      const Node* left = f.n->left.load(std::memory_order_acquire);
      const Node* right = f.n->right.load(std::memory_order_acquire);
      if (left == nullptr) {
        if (right != nullptr) {
          r.ok = false;
          r.error = "half-null children (leaf-oriented shape broken)";
          return r;
        }
        if (f.n->key.is_real()) {
          ++r.real_leaves;
          if (real_sum < 0) {
            real_sum = f.sum;
          } else if (real_sum != f.sum) {
            r.ok = false;
            r.error = "unequal weighted path sums to real leaves";
            return r;
          }
        }
        continue;
      }
      if (right == nullptr) {
        r.ok = false;
        r.error = "half-null children (leaf-oriented shape broken)";
        return r;
      }
      ++r.internals;
      stack.push_back(Frame{left, f.lower, &f.n->key, f.depth + 1,
                            f.sum + left->weight, f.n->weight});
      stack.push_back(Frame{right, &f.n->key, f.upper, f.depth + 1,
                            f.sum + right->weight, f.n->weight});
    }
    return r;
  }

 private:
  struct DescentWindow {
    Node* gp;
    Node* p;
    Node* l;
  };

  /// Root-to-leaf walk for k tracking (gp, p): the update window locator.
  /// Plain acquire child loads — staleness is caught by the llx/field
  /// verification that follows, exactly like EFRB's flag-check-then-CAS.
  DescentWindow walk(const Key& k, Ctx& ctx) const {
    Node* gp = nullptr;
    Node* p = nullptr;
    Node* l = root_;
    std::size_t depth = 0;
    for (;;) {
      Node* c = cmp_.less(k, l->key)
                    ? l->left.load(std::memory_order_acquire)
                    : l->right.load(std::memory_order_acquire);
      if (c == nullptr) break;
      gp = p;
      p = l;
      l = c;
      ++depth;
    }
    if constexpr (Ctx::kCounts) ctx.count_depth(depth);
    return DescentWindow{gp, p, l};
  }

  /// Lean read-only descent (the Find fast path): no window tracking.
  const Node* descend(const Key& k, Ctx& ctx) const {
    const Node* n = root_;
    std::size_t depth = 0;
    for (;;) {
      const Node* c = cmp_.less(k, n->key)
                          ? n->left.load(std::memory_order_acquire)
                          : n->right.load(std::memory_order_acquire);
      if (c == nullptr) break;
      n = c;
      ++depth;
    }
    if constexpr (Ctx::kCounts) ctx.count_depth(depth);
    return n;
  }

  static const Node* leftmost(const Node* from) {
    const Node* n = from;
    while (const Node* l = n->left.load(std::memory_order_acquire)) n = l;
    return n;
  }

  /// Rightmost real-keyed leaf reachable from `from` (sentinels live on the
  /// rightmost spine only — go left at sentinel-keyed internals).
  static const Node* rightmost(const Node* from) {
    const Node* n = from;
    for (;;) {
      const Node* l = n->left.load(std::memory_order_acquire);
      if (l == nullptr) return n;
      n = n->key.is_real() ? n->right.load(std::memory_order_acquire) : l;
    }
  }

  /// The child field of `parent` holding `child` per the llx snapshot, or
  /// null when the snapshot no longer links them (stale window — retry).
  static std::atomic<Node*>* field_for(Node* parent,
                                       const LlxResult<Node>& rp,
                                       Node* child) {
    if (rp.left == child) return &parent->left;
    if (rp.right == child) return &parent->right;
    return nullptr;
  }

  static void scx_retry(Ctx& ctx) {
    hooks::emit_at<Traits>(HookPoint::kScxRetry, ctx.tid(), ctx.op_key());
    ctx.retry_pause();
  }

  /// Copy `n` with a new weight and the given (snapshot) children.
  Node* clone(Ctx& ctx, const Node* n, std::int32_t w, Node* l, Node* r) {
    return ctx.template make<Node>(n->key, n->value, w, l, r);
  }

  Rec* make_rec(Ctx& ctx, std::initializer_list<Node*> v,
                std::initializer_list<Rec*> infos, std::uint8_t finalize_mask,
                std::atomic<Node*>* field, Node* old_child, Node* new_child) {
    EFRB_DCHECK(v.size() == infos.size() && v.size() <= Rec::kMaxNodes);
    Rec* rec = ctx.template make<Rec>();
    std::uint8_t i = 0;
    for (Node* n : v) rec->nodes[i++] = n;
    rec->num_nodes = i;
    i = 0;
    for (Rec* r : infos) {
      rec->infos[i++] = Word::make(ScxMark::kUnmarked, r);
    }
    rec->finalize_mask = finalize_mask;
    rec->field = field;
    rec->old_child = old_child;
    rec->new_child = new_child;
    return rec;
  }

  // -------- Balance transformations (one SCX each) --------

  /// Overweight at u. Under a sentinel parent the copy is simply relabeled
  /// to weight 1 (uniform shift of every real path sum — the invariant is
  /// over their equality). Otherwise: red sibling -> W_ROT (rotate the
  /// sibling above p1, exposing a black sibling for a later PUSH); black
  /// sibling -> PUSH (shift one unit of weight from both children onto p1,
  /// possibly re-siting the violation upward).
  bool fix_overweight(Ctx& ctx, Node* p2, Node* p1, Node* u) {
    EFRB_DCHECK(p1 != nullptr);  // the root is never overweight
    if (!p1->key.is_real()) return relabel(ctx, p1, u);
    EFRB_DCHECK(p2 != nullptr);  // real p1 hangs below the sentinel spine
    const LlxResult<Node> r2 = Llx::llx(ctx, p2);
    std::atomic<Node*>* field = r2.ok ? field_for(p2, r2, p1) : nullptr;
    if (field == nullptr) return false;
    const LlxResult<Node> r1 = Llx::llx(ctx, p1);
    if (!r1.ok) return false;
    Node* s;
    bool u_left;
    if (r1.left == u) {
      s = r1.right;
      u_left = true;
    } else if (r1.right == u) {
      s = r1.left;
      u_left = false;
    } else {
      return false;
    }
    const LlxResult<Node> ru = Llx::llx(ctx, u);
    if (!ru.ok) return false;
    const LlxResult<Node> rs = Llx::llx(ctx, s);
    if (!rs.ok) return false;

    if (s->weight == 0) {
      // W_ROT. A red sibling is internal whenever the path-sum invariant
      // holds (a red leaf beside an overweight node would unbalance the
      // sums); bail out defensively if the snapshot says otherwise.
      if (rs.left == nullptr) return false;
      Node* np1;
      Node* ns;
      if (u_left) {
        np1 = clone(ctx, p1, 0, u, rs.left);
        ns = clone(ctx, s, p1->weight, np1, rs.right);
      } else {
        np1 = clone(ctx, p1, 0, rs.right, u);
        ns = clone(ctx, s, p1->weight, rs.left, np1);
      }
      Rec* rec = make_rec(ctx, {p2, p1, s}, {r2.info, r1.info, rs.info},
                          /*finalize_mask=*/0b110, field, p1, ns);
      if (Llx::scx(ctx, rec)) return true;
      ctx.template dispose<Node>(ns);
      ctx.template dispose<Node>(np1);
      return false;
    }

    // PUSH: (w(u)-1) + (w(p1)+1) and (w(s)-1) + (w(p1)+1) preserve both
    // path sums exactly.
    Node* nu = clone(ctx, u, u->weight - 1, ru.left, ru.right);
    Node* ns = clone(ctx, s, s->weight - 1, rs.left, rs.right);
    Node* np1 = clone(ctx, p1, p1->weight + 1, u_left ? nu : ns,
                      u_left ? ns : nu);
    Rec* rec = make_rec(ctx, {p2, p1, u, s},
                        {r2.info, r1.info, ru.info, rs.info},
                        /*finalize_mask=*/0b1110, field, p1, np1);
    if (Llx::scx(ctx, rec)) return true;
    ctx.template dispose<Node>(np1);
    ctx.template dispose<Node>(ns);
    ctx.template dispose<Node>(nu);
    return false;
  }

  /// Red-red pair (p1, u). A red top of the real subtree (sentinel p2) is
  /// blackened by relabeling. Otherwise dispatch on the uncle: red uncle ->
  /// BLK (recolor, shifting one unit from p2 down); black uncle -> RB1/RB2
  /// (single/double rotation bringing a black node over both reds).
  bool fix_red_red(Ctx& ctx, Node* p3, Node* p2, Node* p1, Node* u) {
    EFRB_DCHECK(p1 != nullptr && p2 != nullptr);  // red nodes are not the root
    if (!p2->key.is_real()) return relabel(ctx, p2, p1);
    // The walk reports the topmost violation, so p2 is black here; a red p2
    // means the window went stale under us.
    if (p2->weight == 0) return false;
    EFRB_DCHECK(p3 != nullptr);
    const LlxResult<Node> r3 = Llx::llx(ctx, p3);
    std::atomic<Node*>* field = r3.ok ? field_for(p3, r3, p2) : nullptr;
    if (field == nullptr) return false;
    const LlxResult<Node> r2 = Llx::llx(ctx, p2);
    if (!r2.ok) return false;
    Node* uncle;
    bool p1_left;
    if (r2.left == p1) {
      uncle = r2.right;
      p1_left = true;
    } else if (r2.right == p1) {
      uncle = r2.left;
      p1_left = false;
    } else {
      return false;
    }
    const LlxResult<Node> r1 = Llx::llx(ctx, p1);
    if (!r1.ok) return false;
    Node* c;  // p1's other child
    bool u_left;
    if (r1.left == u) {
      c = r1.right;
      u_left = true;
    } else if (r1.right == u) {
      c = r1.left;
      u_left = false;
    } else {
      return false;
    }

    if (uncle->weight == 0) {
      // BLK: p2'(w-1)[ p1'(1), uncle'(1) ] — pure recoloring.
      const LlxResult<Node> rn = Llx::llx(ctx, uncle);
      if (!rn.ok) return false;
      Node* np1 = clone(ctx, p1, 1, r1.left, r1.right);
      Node* nun = clone(ctx, uncle, 1, rn.left, rn.right);
      Node* np2 = clone(ctx, p2, p2->weight - 1, p1_left ? np1 : nun,
                        p1_left ? nun : np1);
      Rec* rec = make_rec(ctx, {p3, p2, p1, uncle},
                          {r3.info, r2.info, r1.info, rn.info},
                          /*finalize_mask=*/0b1110, field, p2, np2);
      if (Llx::scx(ctx, rec)) return true;
      ctx.template dispose<Node>(np2);
      ctx.template dispose<Node>(nun);
      ctx.template dispose<Node>(np1);
      return false;
    }

    if (u_left == p1_left) {
      // RB1 (outer red): rotate p1 above p2.
      //   p1'(w(p2)) [ u, p2'(0)[c, uncle] ]   (and the mirror image)
      Node* np2 = clone(ctx, p2, 0, p1_left ? c : uncle, p1_left ? uncle : c);
      Node* np1 = clone(ctx, p1, p2->weight, p1_left ? u : np2,
                        p1_left ? np2 : u);
      Rec* rec = make_rec(ctx, {p3, p2, p1}, {r3.info, r2.info, r1.info},
                          /*finalize_mask=*/0b110, field, p2, np1);
      if (Llx::scx(ctx, rec)) return true;
      ctx.template dispose<Node>(np1);
      ctx.template dispose<Node>(np2);
      return false;
    }

    // RB2 (inner red): rotate u above both. An inner red leaf beside a black
    // uncle cannot satisfy the path-sum invariant, so a leaf snapshot here
    // means the window went stale — bail out.
    const LlxResult<Node> ru = Llx::llx(ctx, u);
    if (!ru.ok || ru.left == nullptr) return false;
    Node* np1;
    Node* np2;
    Node* nu;
    if (p1_left) {
      // u = p1.right: u'(w(p2)) [ p1'(0)[c, u.left], p2'(0)[u.right, uncle] ]
      np1 = clone(ctx, p1, 0, c, ru.left);
      np2 = clone(ctx, p2, 0, ru.right, uncle);
      nu = clone(ctx, u, p2->weight, np1, np2);
    } else {
      // u = p1.left: u'(w(p2)) [ p2'(0)[uncle, u.left], p1'(0)[u.right, c] ]
      np2 = clone(ctx, p2, 0, uncle, ru.left);
      np1 = clone(ctx, p1, 0, ru.right, c);
      nu = clone(ctx, u, p2->weight, np2, np1);
    }
    Rec* rec = make_rec(ctx, {p3, p2, p1, u},
                        {r3.info, r2.info, r1.info, ru.info},
                        /*finalize_mask=*/0b1110, field, p2, nu);
    if (Llx::scx(ctx, rec)) return true;
    ctx.template dispose<Node>(nu);
    ctx.template dispose<Node>(np2);
    ctx.template dispose<Node>(np1);
    return false;
  }

  /// Replace u (child of a sentinel-keyed parent) with a weight-1 copy: the
  /// chromatic analogue of blackening a red root / absorbing root overweight.
  /// Shifts every real path sum by the same amount, preserving equality.
  bool relabel(Ctx& ctx, Node* parent, Node* u) {
    const LlxResult<Node> rp = Llx::llx(ctx, parent);
    std::atomic<Node*>* field = rp.ok ? field_for(parent, rp, u) : nullptr;
    if (field == nullptr) return false;
    const LlxResult<Node> ru = Llx::llx(ctx, u);
    if (!ru.ok) return false;
    Node* nu = clone(ctx, u, 1, ru.left, ru.right);
    Rec* rec = make_rec(ctx, {parent, u}, {rp.info, ru.info},
                        /*finalize_mask=*/0b10, field, u, nu);
    if (Llx::scx(ctx, rec)) return true;
    ctx.template dispose<Node>(nu);
    return false;
  }

  // Constructor/destructor-time allocation without an OpContext (quiescent;
  // same policy, structure-level cache) — mirrors TreeCore.
  template <typename T, typename... Args>
  T* make_direct(Args&&... args) {
    if constexpr (AllocT::kPooled) {
      EFRB_DCHECK(alloc_ != nullptr);
      return alloc_->template create<T>(*alloc_->local_cache(),
                                        std::forward<Args>(args)...);
    } else {
      return new T(std::forward<Args>(args)...);
    }
  }

  template <typename T>
  void dispose_direct(T* p) noexcept {
    if (p == nullptr) return;
    if constexpr (AllocT::kPooled) {
      alloc_->template destroy<T>(*alloc_->local_cache(), p);
    } else {
      delete p;
    }
  }

  BoundedCompare<Key, Compare> cmp_;
  AllocT* alloc_;
  Node* root_ = nullptr;
  ParkedViolation<Key> parked_;
};

/// Public facade: the chromatic tree behind the same ConcurrentMap surface,
/// Handle fast path, reclaimer/allocator policies and stats plumbing as
/// EfrbTreeMap (see efrb_tree.hpp for the contract of every member — the
/// semantics here are identical, only the structure underneath differs).
template <typename Key, typename Value = detail::Unit,
          typename Compare = std::less<Key>,
          typename Reclaimer = EpochReclaimer, typename Traits = NoopTraits>
class ChromaticTreeMap {
  static constexpr bool kTrackKeys = [] {
    if constexpr (requires { Traits::kTrackKeys; }) {
      return static_cast<bool>(Traits::kTrackKeys);
    } else {
      return false;
    }
  }();
  using Layout = ChromaticLayout<Key, Value>;
  using Node = typename Layout::Node;
  using Rec = typename Layout::Rec;
  using Alloc = std::conditional_t<hooks::pooled_alloc_v<Traits>,
                                   ObjectPool<Node, Rec>, HeapAllocator>;
  static constexpr bool kCausal = hooks::causal_trace_v<Traits>;
  using Ctx =
      OpContext<Reclaimer, Traits::kCountStats, kTrackKeys, Alloc, kCausal>;
  using Core = ChromaticCore<Key, Value, Compare, Traits, Ctx>;
  using Shards =
      std::conditional_t<Traits::kCountStats, ShardPool, EmptyShardPool>;
  using Progress =
      std::conditional_t<kCausal, ProgressTable, EmptyProgressTable>;

 public:
  using key_type = Key;
  using mapped_type = Value;
  using ValidationResult = ChromaticValidation;
  static constexpr const char* kName = "chromatic-tree";

  explicit ChromaticTreeMap(Compare cmp = Compare{},
                            Reclaimer reclaimer = Reclaimer{})
      : reclaimer_(std::move(reclaimer)), core_(std::move(cmp), &alloc_) {
    if constexpr (Alloc::kPooled) {
      reclaimer_.set_pool_return(alloc_.pool_hook());
    }
  }

  ChromaticTreeMap(const ChromaticTreeMap&) = delete;
  ChromaticTreeMap& operator=(const ChromaticTreeMap&) = delete;

  /// Requires quiescence, like all destructors.
  ~ChromaticTreeMap() = default;

  /// Per-thread fast path; same rules as EfrbTreeMap::Handle (movable,
  /// thread-affine, must not outlive the tree).
  class Handle {
   public:
    Handle() = default;

    Handle(Handle&& other) noexcept
        : tree_(std::exchange(other.tree_, nullptr)),
          att_(std::move(other.att_)),
          cache_(std::move(other.cache_)),
          shard_(std::exchange(other.shard_, nullptr)),
          shard_base_(other.shard_base_),
          progress_(std::exchange(other.progress_, nullptr)),
          backoff_(other.backoff_),
          rng_(other.rng_),
          tid_(other.tid_) {}

    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        detach();
        tree_ = std::exchange(other.tree_, nullptr);
        att_ = std::move(other.att_);
        cache_ = std::move(other.cache_);
        shard_ = std::exchange(other.shard_, nullptr);
        shard_base_ = other.shard_base_;
        progress_ = std::exchange(other.progress_, nullptr);
        backoff_ = other.backoff_;
        rng_ = other.rng_;
        tid_ = other.tid_;
      }
      return *this;
    }

    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    ~Handle() { detach(); }

    bool valid() const noexcept { return tree_ != nullptr; }

    void detach() noexcept {
      if (tree_ != nullptr && shard_ != nullptr) Shards::release(shard_);
      shard_ = nullptr;
      if (tree_ != nullptr) Progress::release(progress_);
      progress_ = nullptr;
      att_.detach();
      cache_ = typename Alloc::Cache{};
      tree_ = nullptr;
    }

    bool contains(const Key& k) const {
      return with_ctx([&](Ctx& c) { return tree_->core_.contains(k, c); });
    }

    std::optional<Value> get(const Key& k) const {
      return with_ctx([&](Ctx& c) { return tree_->core_.get(k, c); });
    }

    bool insert(const Key& k, Value v = Value{}) {
      return with_ctx([&](Ctx& c) {
        return tree_->core_.insert(k, std::move(v),
                                   /*assign_if_present=*/false, c) !=
               InsertOutcome::kDuplicate;
      });
    }

    bool insert_or_assign(const Key& k, Value v) {
      return with_ctx([&](Ctx& c) {
        return tree_->core_.insert(k, std::move(v),
                                   /*assign_if_present=*/true, c) ==
               InsertOutcome::kInserted;
      });
    }

    bool replace(const Key& k, const Value& expected, Value desired) {
      return with_ctx([&](Ctx& c) {
        return tree_->core_.replace(k, expected, std::move(desired), c);
      });
    }

    Value get_or_insert(const Key& k, Value v) {
      for (;;) {
        if (auto cur = get(k)) return *cur;
        if (insert(k, v)) return v;
      }
    }

    bool erase(const Key& k) {
      return with_ctx([&](Ctx& c) { return tree_->core_.erase(k, c); });
    }

    std::optional<Key> min_key() const {
      EFRB_DCHECK(valid());
      [[maybe_unused]] auto guard = att_.pin();
      return tree_->core_.min_key();
    }

    std::optional<Key> max_key() const {
      EFRB_DCHECK(valid());
      [[maybe_unused]] auto guard = att_.pin();
      return tree_->core_.max_key();
    }

    std::optional<Key> find_ge(const Key& k) const { return bound(k, false, true); }
    std::optional<Key> find_gt(const Key& k) const { return bound(k, true, true); }
    std::optional<Key> find_le(const Key& k) const { return bound(k, false, false); }
    std::optional<Key> find_lt(const Key& k) const { return bound(k, true, false); }

    template <typename Fn>
    void range(const Key& lo, const Key& hi, Fn&& fn) const {
      EFRB_DCHECK(valid());
      [[maybe_unused]] auto guard = att_.pin();
      tree_->core_.range(lo, hi, std::forward<Fn>(fn));
    }

    std::size_t count_range(const Key& lo, const Key& hi) const {
      std::size_t n = 0;
      range(lo, hi, [&n](const Key&, const Value&) { ++n; });
      return n;
    }

    template <typename Fn>
    void for_each(Fn&& fn) const {
      EFRB_DCHECK(valid());
      [[maybe_unused]] auto guard = att_.pin();
      tree_->core_.for_each(std::forward<Fn>(fn));
    }

    void flush() { att_.flush(); }

    TreeStats local_stats() const noexcept {
      TreeStats s;
      if (shard_ != nullptr) {
        accumulate(s, shard_->counters);
        subtract(s, shard_base_);
      }
      return s;
    }

    Xoshiro256& rng() noexcept { return rng_; }
    Backoff& backoff() noexcept { return backoff_; }
    unsigned tid() const noexcept { return tid_; }
    bool last_op_retried() const noexcept { return last_retried_; }

   private:
    friend class ChromaticTreeMap;

    explicit Handle(ChromaticTreeMap* t)
        : tree_(t),
          att_(t->reclaimer_.attach()),
          cache_(t->alloc_.make_cache()),
          shard_(t->shards_.acquire()),
          rng_(next_handle_seed()),
          tid_(t->next_tid_.fetch_add(1, std::memory_order_relaxed)) {
      if (shard_ != nullptr) accumulate(shard_base_, shard_->counters);
      try {
        progress_ = t->progress_.acquire(tid_);
      } catch (...) {
        // The ctor body throwing skips ~Handle: hand the shard back here.
        if (shard_ != nullptr) Shards::release(shard_);
        throw;
      }
    }

    template <typename Fn>
    decltype(auto) with_ctx(Fn&& fn) const {
      EFRB_DCHECK(valid());
      [[maybe_unused]] auto guard = att_.pin();
      last_retried_ = false;
      auto ctx = Ctx::attached(
          att_, shard_ != nullptr ? &shard_->counters : nullptr, &backoff_,
          tid_, &last_retried_, &tree_->alloc_, &cache_, progress_);
      return fn(ctx);
    }

    std::optional<Key> bound(const Key& k, bool strict, bool up) const {
      EFRB_DCHECK(valid());
      [[maybe_unused]] auto guard = att_.pin();
      return up ? tree_->core_.bound_up(k, strict)
                : tree_->core_.bound_down(k, strict);
    }

    ChromaticTreeMap* tree_ = nullptr;
    mutable typename Reclaimer::Attachment att_;
    mutable typename Alloc::Cache cache_;
    StatShard* shard_ = nullptr;
    TreeStats shard_base_;
    ProgressSlot* progress_ = nullptr;  // null unless Traits::kCausalTrace
    mutable Backoff backoff_;
    mutable Xoshiro256 rng_{0};
    unsigned tid_ = kNoTid;
    mutable bool last_retried_ = false;
  };

  Handle handle() { return Handle(this); }

  // Tree-level convenience wrappers (thread_local reclaimer lease; hot loops
  // should go through handle()).

  bool contains(const Key& k) const {
    return with_ctx([&](Ctx& c) { return core_.contains(k, c); });
  }

  std::optional<Value> get(const Key& k) const {
    return with_ctx([&](Ctx& c) { return core_.get(k, c); });
  }

  bool insert(const Key& k, Value v = Value{}) {
    return with_ctx([&](Ctx& c) {
      return core_.insert(k, std::move(v), /*assign_if_present=*/false, c) !=
             InsertOutcome::kDuplicate;
    });
  }

  bool insert_or_assign(const Key& k, Value v) {
    return with_ctx([&](Ctx& c) {
      return core_.insert(k, std::move(v), /*assign_if_present=*/true, c) ==
             InsertOutcome::kInserted;
    });
  }

  bool replace(const Key& k, const Value& expected, Value desired) {
    return with_ctx([&](Ctx& c) {
      return core_.replace(k, expected, std::move(desired), c);
    });
  }

  Value get_or_insert(const Key& k, Value v) {
    for (;;) {
      if (auto cur = get(k)) return *cur;
      if (insert(k, v)) return v;
    }
  }

  bool erase(const Key& k) {
    return with_ctx([&](Ctx& c) { return core_.erase(k, c); });
  }

  std::optional<Key> min_key() const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    return core_.min_key();
  }

  std::optional<Key> max_key() const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    return core_.max_key();
  }

  std::optional<Key> find_ge(const Key& k) const { return bound(k, false, true); }
  std::optional<Key> find_gt(const Key& k) const { return bound(k, true, true); }
  std::optional<Key> find_le(const Key& k) const { return bound(k, false, false); }
  std::optional<Key> find_lt(const Key& k) const { return bound(k, true, false); }

  template <typename Fn>
  void range(const Key& lo, const Key& hi, Fn&& fn) const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    core_.range(lo, hi, std::forward<Fn>(fn));
  }

  std::size_t count_range(const Key& lo, const Key& hi) const {
    std::size_t n = 0;
    range(lo, hi, [&n](const Key&, const Value&) { ++n; });
    return n;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    core_.for_each(std::forward<Fn>(fn));
  }

  std::size_t size() const {
    std::size_t n = 0;
    for_each([&n](const Key&, const Value&) { ++n; });
    return n;
  }

  bool empty() const { return !min_key().has_value(); }

  ValidationResult validate() const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    return core_.validate();
  }

  TreeStats stats() const noexcept { return stats_snapshot(); }

  TreeStats stats_snapshot() const noexcept {
    TreeStats s;
    if constexpr (Traits::kCountStats) {
      accumulate(s, counters_);
      shards_.accumulate_into(s);
    }
    return s;
  }

  Reclaimer& reclaimer() noexcept { return reclaimer_; }
  Alloc& allocator() noexcept { return alloc_; }

 private:
  template <typename Fn>
  decltype(auto) with_ctx(Fn&& fn) const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    auto ctx = Ctx::tree_level(reclaimer_, &counters_, &alloc_,
                               Alloc::kPooled ? alloc_.local_cache() : nullptr);
    return fn(ctx);
  }

  std::optional<Key> bound(const Key& k, bool strict, bool up) const {
    [[maybe_unused]] auto guard = reclaimer_.pin();
    return up ? core_.bound_up(k, strict) : core_.bound_down(k, strict);
  }

  // Same load-bearing declaration order as EfrbTreeMap: pool before core,
  // destroyed last.
  [[no_unique_address]] mutable Alloc alloc_;
  mutable Reclaimer reclaimer_;
  Core core_;
  mutable StatCounters counters_;
  [[no_unique_address]] mutable Shards shards_;
  // Per-handle liveness progress slots (empty unless Traits::kCausalTrace).
  [[no_unique_address]] mutable Progress progress_;
  std::atomic<unsigned> next_tid_{0};

 public:
  /// The per-handle progress table the liveness watchdog samples
  /// (obs/watchdog.hpp). Meaningful only when Traits::kCausalTrace.
  const Progress& progress_table() const noexcept { return progress_; }
};

/// Set flavour: keys only, no mapped values.
template <typename Key, typename Compare = std::less<Key>,
          typename Reclaimer = EpochReclaimer, typename Traits = NoopTraits>
using ChromaticTreeSet =
    ChromaticTreeMap<Key, detail::Unit, Compare, Reclaimer, Traits>;

}  // namespace efrb
