// The LLX/SCX primitive layer (Brown–Ellen–Ruppert, "A General Technique
// for Non-blocking Trees", PODC 2014; "Pragmatic Primitives for Non-blocking
// Data Structures", PODC 2013).
//
// Two things live here, and both are shared seams rather than one tree's
// private machinery:
//
//  1. TaggedInfoWord / AtomicInfoWord — the (state tag, record pointer)
//     single-CAS-word packing. The EFRB update word of core/layout.hpp is the
//     four-state specialization (`Update = TaggedInfoWord<UpdateState, Info>`)
//     and the SCX info word below is the two-state one (mark bit + ScxRecord
//     pointer). Equality of words is equality of (state, record) pairs, which
//     is what gives both protocols their "values never repeat" property.
//
//  2. The LLX/SCX engine. A Data-record (here: a binary tree node exposing
//     `left`, `right` and an `scx` info word — see the ScxNode concept) is
//     read with llx(), which returns a consistent snapshot of the mutable
//     fields plus the witnessed info word, or FAILED/FINALIZED. An update is
//     committed with scx(): freeze every node in V by CASing its info word
//     onto a freshly allocated ScxRecord, mark the finalize-set R, swing one
//     child pointer old -> new, and commit. Helping is embedded: any thread
//     that runs into a frozen node re-executes help_scx() on the record it
//     found there, exactly like the EFRB Help dispatch re-executes
//     HelpInsert/HelpDelete from an Info record. The EFRB eight-step protocol
//     is the hand-specialized instance of this pattern (flag == freeze of one
//     node, mark == freeze + finalize, child CAS == the SCX field swing);
//     core/chromatic.hpp is the first algorithm written directly against the
//     generic form.
//
// Record reclamation. A committed/aborted ScxRecord stays reachable through
// the info words of the nodes it froze (llx() dereferences rec->state), so
// records are released by reference counting the *published* info-word
// references: the unique winner of each freeze CAS increments the new
// record's count and decrements the displaced record's; the unique commit
// winner releases the references held by finalized (marked, spliced-out)
// nodes, and retires those nodes. The count is raised *before* each freeze
// attempt and rolled back on failure, so it never undercounts the published
// references; whoever observes it at zero claims the record (single claim
// bit) and retires it through the operation's OpContext, so Epoch/Hazard/
// HP-domain reclaimers and retire-to-pool all work unchanged. Stale helpers
// may touch a drained record after it is retired — they were pinned before
// the displacement that drained it, so every reclaimer defers the free past
// them.
//
// Memory-order audit (mirrors the core/protocol.hpp discipline):
//   * info-word loads are acquire; the llx() double-read relies on read-read
//     coherence: once the child loads (acquire) observe a later record's
//     field swing (release), the second info load cannot read the older word.
//   * freeze CAS is acq_rel / acquire — it publishes the record's payload to
//     helpers and orders the displaced record's retirement.
//   * the field swing is release on success (publishes the new subtree's
//     initialization) / relaxed on failure (losers discard the witness).
//   * state / all_frozen stores are release, loads acquire: a helper that
//     observes Committed also observes the committed child swing.
#pragma once

#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>

#include "core/debug_hooks.hpp"
#include "util/assert.hpp"
#include "util/cacheline.hpp"

namespace efrb {

// ---------------------------------------------------------------------------
// The shared tagged-word seam.
// ---------------------------------------------------------------------------

/// Immutable snapshot of an info word: (state tag, record pointer) packed
/// into one CAS word. StateT is an enum whose numeric values fit in the two
/// low pointer bits (records must be aligned >= 4).
template <typename StateT, typename RecordT>
class TaggedInfoWord {
 public:
  constexpr TaggedInfoWord() noexcept : bits_(0) {}  // {StateT{0}, nullptr}

  static TaggedInfoWord make(StateT s, RecordT* rec) noexcept {
    const auto p = reinterpret_cast<std::uintptr_t>(rec);
    EFRB_DCHECK((p & kTagMask) == 0);
    return TaggedInfoWord(p | static_cast<std::uintptr_t>(s));
  }

  static constexpr TaggedInfoWord from_bits(std::uintptr_t bits) noexcept {
    return TaggedInfoWord(bits);
  }

  StateT state() const noexcept { return static_cast<StateT>(bits_ & kTagMask); }

  RecordT* info() const noexcept {
    return reinterpret_cast<RecordT*>(bits_ & ~kTagMask);
  }

  std::uintptr_t bits() const noexcept { return bits_; }

  friend bool operator==(TaggedInfoWord a, TaggedInfoWord b) noexcept {
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(TaggedInfoWord a, TaggedInfoWord b) noexcept {
    return a.bits_ != b.bits_;
  }

 private:
  explicit constexpr TaggedInfoWord(std::uintptr_t bits) noexcept
      : bits_(bits) {}
  static constexpr std::uintptr_t kTagMask = 0x3;
  std::uintptr_t bits_;
};

/// The atomic info field holding a TaggedInfoWord.
template <typename Word>
class AtomicInfoWord {
 public:
  AtomicInfoWord() noexcept : bits_(0) {}

  Word load(std::memory_order order = std::memory_order_acquire) const noexcept {
    return Word::from_bits(bits_.load(order));
  }

  void store(Word w,
             std::memory_order order = std::memory_order_release) noexcept {
    bits_.store(w.bits(), order);
  }

  /// Single-word CAS; on failure `expected` is refreshed with the witnessed
  /// value (which callers hand to the help dispatch of their protocol).
  bool compare_exchange(
      Word& expected, Word desired,
      std::memory_order success = std::memory_order_acq_rel,
      std::memory_order failure = std::memory_order_acquire) noexcept {
    std::uintptr_t exp = expected.bits();
    const bool ok =
        bits_.compare_exchange_strong(exp, desired.bits(), success, failure);
    expected = Word::from_bits(exp);
    return ok;
  }

 private:
  std::atomic<std::uintptr_t> bits_;
};

// ---------------------------------------------------------------------------
// SCX records and info words.
// ---------------------------------------------------------------------------

/// SCX info-word tag: a single mark bit. A marked node is finalized — it has
/// been (or is irrevocably about to be) spliced out of the structure.
enum class ScxMark : std::uintptr_t {
  kUnmarked = 0,
  kMarked = 1,
};

/// Lifecycle of one SCX transaction.
enum class ScxState : std::uint8_t {
  kInProgress = 0,
  kCommitted = 1,
  kAborted = 2,
};

template <typename Node>
struct ScxRecordOf;

template <typename Node>
using ScxWord = TaggedInfoWord<ScxMark, ScxRecordOf<Node>>;

template <typename Node>
using AtomicScxWord = AtomicInfoWord<ScxWord<Node>>;

/// One SCX transaction descriptor: the nodes to freeze (V), the info words
/// llx() witnessed for them, which of them are finalized (R, as a bitmask
/// over V), and the single child-pointer swing that commits the update.
/// Immutable after scx() starts except for the atomic lifecycle fields, so
/// helpers can re-execute help_scx() idempotently from the record alone.
/// Precondition on every record: `new_child` is freshly allocated and has
/// never been linked into the structure before — the child swing's
/// ABA-freedom depends on it (see the note in help_scx()).
template <typename Node>
struct alignas(kCacheLineSize) ScxRecordOf {
  static constexpr std::size_t kMaxNodes = 4;

  Node* nodes[kMaxNodes] = {};
  ScxWord<Node> infos[kMaxNodes] = {};
  std::atomic<Node*>* field = nullptr;
  Node* old_child = nullptr;
  Node* new_child = nullptr;
  std::uint8_t num_nodes = 0;
  std::uint8_t finalize_mask = 0;
  /// Causal owner stamp: pack_owner(tid, op_seq) of the creating operation,
  /// written by the creator before scx() publishes the record through the
  /// first freeze CAS (acq_rel) and read by helpers only after an acquire
  /// load of a frozen info word — so a plain word is race-free. Stays
  /// kNoOwner unless the instantiating Traits enable kCausalTrace.
  std::uint64_t owner = kNoOwner;

  std::atomic<ScxState> state{ScxState::kInProgress};
  std::atomic<bool> all_frozen{false};
  // Published info-word references (see the reclamation note in the header).
  std::atomic<std::int32_t> refs{0};
  std::atomic<bool> claimed{false};
};

/// Requirements on a Data-record usable with this engine: a binary tree node
/// whose mutable fields are the two child pointers, plus the packed
/// (mark, ScxRecord*) info word. Algorithms with other mutable fields (the
/// "third tree type" seam, see docs/API.md) would generalize the snapshot and
/// the freeze loop; everything else — records, helping, reclamation — is
/// already field-agnostic.
template <typename N>
concept ScxNode = requires(N n) {
  { n.left } -> std::same_as<std::atomic<N*>&>;
  { n.right } -> std::same_as<std::atomic<N*>&>;
  { n.scx } -> std::same_as<AtomicScxWord<N>&>;
};

/// llx() result. `ok` distinguishes a usable snapshot; `finalized` reports a
/// node that is being (or has been) spliced out, which callers treat as "the
/// search path is stale — retry from the root".
template <typename Node>
struct LlxResult {
  ScxRecordOf<Node>* info = nullptr;  // witnessed decided record (freeze expected)
  Node* left = nullptr;
  Node* right = nullptr;
  bool ok = false;
  bool finalized = false;
};

// ---------------------------------------------------------------------------
// The engine. Traits supplies the hook surface (core/debug_hooks.hpp); Ctx is
// an OpContext binding the reclaimer, allocator, stats shard and thread/key
// identity — the same object the EFRB protocol threads through its steps.
// ---------------------------------------------------------------------------
template <ScxNode Node, typename Traits, typename Ctx>
struct LlxScx {
  using Rec = ScxRecordOf<Node>;
  using Word = ScxWord<Node>;

  /// Load-link-extended (paper Fig. 1): witness the info word, confirm the
  /// record is decided and the node unmarked, read the mutable fields, and
  /// confirm the word did not change. Helps any in-progress SCX it runs into.
  static LlxResult<Node> llx(Ctx& ctx, Node* n) {
    LlxResult<Node> r;
    const Word m = n->scx.load(std::memory_order_acquire);
    Rec* rinfo = m.info();
    const ScxState st = rinfo == nullptr
                            ? ScxState::kCommitted
                            : rinfo->state.load(std::memory_order_acquire);
    if (m.state() == ScxMark::kMarked) {
      // Marking happens only after all_frozen, so this removal is guaranteed
      // to commit; push it over the line before reporting FINALIZED.
      if (st == ScxState::kInProgress) {
        // Owner stamp of the helped transaction; the load exists only in
        // kCausalTrace instantiations (see the help() note in protocol.hpp).
        std::uint64_t owner = kNoOwner;
        if constexpr (hooks::causal_trace_v<Traits>) owner = rinfo->owner;
        hooks::emit_help<Traits>(HookPoint::kBeforeHelp, ctx.tid(),
                                 ctx.op_key(), owner);
        ctx.count_help();
        ctx.help_enter();
        help_scx(ctx, rinfo);
        ctx.help_exit();
        hooks::emit_help<Traits>(HookPoint::kAfterHelp, ctx.tid(),
                                 ctx.op_key(), owner);
      }
      r.finalized = true;
      return r;
    }
    if (st != ScxState::kInProgress) {
      Node* l = n->left.load(std::memory_order_acquire);
      Node* rt = n->right.load(std::memory_order_acquire);
      if (n->scx.load(std::memory_order_acquire) == m) {
        r.info = rinfo;
        r.left = l;
        r.right = rt;
        r.ok = true;
        return r;
      }
    } else {
      std::uint64_t owner = kNoOwner;
      if constexpr (hooks::causal_trace_v<Traits>) owner = rinfo->owner;
      hooks::emit_help<Traits>(HookPoint::kBeforeHelp, ctx.tid(), ctx.op_key(),
                               owner);
      ctx.count_help();
      ctx.help_enter();
      help_scx(ctx, rinfo);
      ctx.help_exit();
      hooks::emit_help<Traits>(HookPoint::kAfterHelp, ctx.tid(), ctx.op_key(),
                               owner);
    }
    return r;  // FAILED
  }

  /// Store-conditional-extended: run the transaction described by `rec`
  /// (allocated through ctx.make<Rec>() and fully filled in by the caller).
  /// The caller must not touch `rec` after this returns — ownership passes to
  /// the refcount drain either way (a record whose first freeze lost drains
  /// to zero through its own rollback and is claimed right there).
  static bool scx(Ctx& ctx, Rec* rec) {
    EFRB_DCHECK(rec->num_nodes >= 1 && rec->num_nodes <= Rec::kMaxNodes);
    if constexpr (hooks::causal_trace_v<Traits>) {
      rec->owner = ctx.owner();  // plain store precedes the first freeze CAS
    }
    return help_scx(ctx, rec);
  }

  /// The idempotent helping core (paper Fig. 5). Every helper (and the
  /// creator) processes V in the same fixed order against the same expected
  /// words stored in the record — which is what makes a post-decision freeze
  /// success impossible and the refcount drain sound (see header).
  static bool help_scx(Ctx& ctx, Rec* rec) {
    // Freeze each V-node in order by CASing its info word onto rec. The
    // reference is counted *before* the CAS and rolled back on failure, so
    // refs never undercounts the published references.
    const Word desired = Word::make(ScxMark::kUnmarked, rec);
    for (std::uint8_t i = 0; i < rec->num_nodes; ++i) {
      Node* v = rec->nodes[i];
      Word cur = v->scx.load(std::memory_order_acquire);
      if (cur.info() == rec) {
        continue;  // already frozen (or marked) for rec by another helper
      }
      hooks::emit_at<Traits>(HookPoint::kBeforeFreeze, ctx.tid(), ctx.op_key());
      Word expected = rec->infos[i];
      rec->refs.fetch_add(1, std::memory_order_acq_rel);
      const bool ok =
          hooks::allow_cas<Traits>(CasStep::kFreeze, v, ctx.tid()) &&
          v->scx.compare_exchange(expected, desired,
                                  std::memory_order_acq_rel,
                                  std::memory_order_acquire);
      hooks::emit_cas<Traits>(CasStep::kFreeze, ok, v, ctx.tid(), ctx.op_key());
      ctx.count_cas(CasStep::kFreeze, ok);
      if (ok) {
        // Unique freeze winner releases the displaced record's reference.
        release_ref(ctx, rec->infos[i].info());
        continue;
      }
      release_ref(ctx, rec);  // roll back the speculative count
      cur = v->scx.load(std::memory_order_acquire);
      if (cur.info() == rec) {
        continue;  // lost the freeze race to another helper of rec
      }
      // v is frozen for someone else (or moved on). If rec already reached
      // all_frozen, the transaction is committed regardless — the release /
      // acquire chain through v's newer info word guarantees we see it.
      if (rec->all_frozen.load(std::memory_order_acquire)) return true;
      ScxState exp = ScxState::kInProgress;
      rec->state.compare_exchange_strong(exp, ScxState::kAborted,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
      return false;
    }
    rec->all_frozen.store(true, std::memory_order_release);

    // Finalize R: mark each spliced-out node. Plain store — every helper
    // writes the identical word over (unmarked, rec), and no later freeze can
    // target a frozen node until rec is decided.
    for (std::uint8_t i = 0; i < rec->num_nodes; ++i) {
      if ((rec->finalize_mask >> i) & 1u) {
        rec->nodes[i]->scx.store(Word::make(ScxMark::kMarked, rec),
                                 std::memory_order_release);
      }
    }

    // Swing the child pointer. Losing the CAS means another helper already
    // performed it, or the field moved on after this record was decided.
    // ABA-freedom precondition (on the algorithm, not enforced here): every
    // record's new_child is freshly allocated and never previously linked,
    // so a child field never holds the same value twice and this CAS can
    // succeed at most once per record — even when old_child itself stays
    // reachable after displacement (e.g. the chromatic insert fast path
    // keeps the displaced leaf alive below the new internal). Re-linking an
    // existing node as new_child would break exactly this: a stalled helper
    // holding the displaced value as its expected old_child could fire again
    // and resurrect a retired subtree.
    hooks::emit_at<Traits>(HookPoint::kBeforeScxChild, ctx.tid(), ctx.op_key());
    Node* old_c = rec->old_child;
    const bool cok =
        hooks::allow_cas<Traits>(CasStep::kScxChild, rec->field, ctx.tid()) &&
        rec->field->compare_exchange_strong(old_c, rec->new_child,
                                            std::memory_order_release,
                                            std::memory_order_relaxed);
    hooks::emit_cas<Traits>(CasStep::kScxChild, cok, rec->field, ctx.tid(),
                            ctx.op_key());
    ctx.count_cas(CasStep::kScxChild, cok);

    // Commit. The unique winner of the state CAS retires the finalized nodes
    // and releases the references their (marked, rec) words hold — those
    // words are never displaced, so nobody else would.
    hooks::emit_at<Traits>(HookPoint::kBeforeScxCommit, ctx.tid(), ctx.op_key());
    ScxState exp = ScxState::kInProgress;
    if (rec->state.compare_exchange_strong(exp, ScxState::kCommitted,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      for (std::uint8_t i = 0; i < rec->num_nodes; ++i) {
        if ((rec->finalize_mask >> i) & 1u) {
          ctx.template retire<Node>(rec->nodes[i]);
          release_ref(ctx, rec);
        }
      }
    }
    return true;
  }

  /// Drop one reference; whoever observes zero claims and retires the
  /// record. Because every increment precedes its paired decrement (a
  /// speculative count precedes the freeze CAS it covers, and a displacement
  /// can only follow the displaced record's publication), the count is an
  /// upper bound on the published references — zero really means drained.
  static void release_ref(Ctx& ctx, Rec* r) {
    if (r == nullptr) return;
    r->refs.fetch_sub(1, std::memory_order_acq_rel);
    maybe_retire(ctx, r);
  }

  static void maybe_retire(Ctx& ctx, Rec* r) {
    if (r->refs.load(std::memory_order_acquire) != 0) return;
    if (!r->claimed.exchange(true, std::memory_order_acq_rel)) {
      ctx.template retire<Rec>(r);
    }
  }
};

}  // namespace efrb
