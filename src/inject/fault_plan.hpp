// Fault plans: declarative step × thread × action scripts for the
// fault-injection layer.
//
// A FaultPlan is pure data — a list of FaultActions, each naming a protocol
// site (a CasStep or a HookPoint), the plan-thread it applies to, the visit
// ordinal on which it fires, and what to do there. Plans are executed by a
// FaultScheduler (fault_scheduler.hpp) through the hook shims in
// core/debug_hooks.hpp; this header is deliberately free of any threading so
// plans can be generated, printed, serialized into test logs, and shrunk
// without touching a tree.
//
// The fault model rides on the allow_cas veto gate: a vetoed CAS is
// indistinguishable (to the protocol) from one that lost its race. That makes
// exactly the *contention-retried* steps safe to force-fail:
//
//   iflag / dflag  — the op re-runs Search and retries (lines 60, 87);
//   mark           — HelpDelete backtracks the dflag and retries (line 98);
//   backtrack      — the unflag CAS is itself retried-by-helping: every
//                    helper of the same Info record attempts it, and the
//                    flagger re-reaches it through HelpDelete.
//
// The helping steps (ichild, iunflag, dchild, dunflag) are NOT safe: once a
// flag CAS succeeds, the protocol's progress argument assumes *somebody*
// completes the operation, and vetoing a helper's CAS also vetoes the
// operation's own attempt — the veto is thread-targeted but these steps are
// what every helper executes. Forcing one without a concurrent helper wedges
// or corrupts the structure. Plans containing them refuse to run unless
// `allow_unsafe` is set — which is precisely how the harness's canary test
// proves the whole apparatus can detect real corruption (see
// tests/fault_injection_test.cpp).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/debug_hooks.hpp"
#include "util/rng.hpp"

namespace efrb::inject {

/// What an action does at its site.
enum class FaultKind : std::uint8_t {
  kFailCas,     // veto the CAS (site must be a CasStep); `count` consecutive
                // occurrences are vetoed starting at `occurrence`
  kStall,       // block the thread at the site until FaultScheduler::release
  kDelay,       // spin `count` cpu_relax() iterations at the site
  kYieldBurst,  // call std::this_thread::yield() `count` times at the site
};

inline const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kFailCas: return "fail-cas";
    case FaultKind::kStall: return "stall";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kYieldBurst: return "yield-burst";
  }
  return "?";
}

/// True for the steps whose failure the protocol already treats as ordinary
/// contention (see the header comment for why the other four are not).
inline constexpr bool step_failable(CasStep s) noexcept {
  return s == CasStep::kIFlag || s == CasStep::kDFlag ||
         s == CasStep::kMark || s == CasStep::kBacktrack ||
         s == CasStep::kFreeze;
}

/// One scripted fault. The site is either a CAS step (`step >= 0`, hit from
/// the allow_cas gate, pre-CAS) or a hook point (`point >= 0`, hit from the
/// at() emission); exactly one of the two must be set. `tid` is the *plan*
/// thread id — the one the executing thread registers via
/// FaultScheduler::ThreadScope — not the structure's handle id; unregistered
/// threads never match any action.
struct FaultAction {
  FaultKind kind = FaultKind::kFailCas;
  unsigned tid = 0;
  int step = -1;            // CasStep index, or -1
  int point = -1;           // HookPoint index, or -1
  unsigned occurrence = 1;  // 1-based: fire on the Nth visit of the site
  unsigned count = 1;       // kFailCas: vetoes; kDelay/kYieldBurst: iterations

  bool valid() const noexcept {
    if ((step >= 0) == (point >= 0)) return false;
    if (step >= static_cast<int>(kNumCasSteps)) return false;
    if (point >= static_cast<int>(kNumHookPoints)) return false;
    if (kind == FaultKind::kFailCas && step < 0) return false;
    return occurrence >= 1 && count >= 1;
  }

  /// Unsafe = a forced failure of a helping step (see header comment).
  bool safe() const noexcept {
    return kind != FaultKind::kFailCas ||
           (step >= 0 && step_failable(static_cast<CasStep>(step)));
  }
};

inline std::string to_string(const FaultAction& a) {
  std::string s = to_string(a.kind);
  s += " tid=";
  s += std::to_string(a.tid);
  s += a.step >= 0 ? " step=" : " point=";
  s += a.step >= 0 ? to_string(static_cast<CasStep>(a.step))
                   : to_string(static_cast<HookPoint>(a.point));
  s += " occurrence=";
  s += std::to_string(a.occurrence);
  s += " count=";
  s += std::to_string(a.count);
  return s;
}

/// A full script. `allow_unsafe` is the explicit opt-in required to run
/// actions that can genuinely corrupt the structure (canary tests only).
struct FaultPlan {
  std::vector<FaultAction> actions;
  bool allow_unsafe = false;

  bool valid() const noexcept {
    for (const FaultAction& a : actions) {
      if (!a.valid()) return false;
    }
    return true;
  }

  bool safe() const noexcept {
    for (const FaultAction& a : actions) {
      if (!a.safe()) return false;
    }
    return true;
  }
};

inline std::string to_string(const FaultPlan& p) {
  std::string s = "FaultPlan{";
  for (std::size_t i = 0; i < p.actions.size(); ++i) {
    if (i != 0) s += "; ";
    s += to_string(p.actions[i]);
  }
  if (p.allow_unsafe) s += " [allow_unsafe]";
  s += "}";
  return s;
}

/// Deterministic chaos-plan generator: `n_actions` safe actions over plan
/// threads [0, threads), fully determined by `seed`. Stalls are excluded —
/// nobody scripts the matching release — so a chaos plan can never wedge a
/// run; it perturbs schedules with forced contention, delays, and yields.
inline FaultPlan chaos(std::uint64_t seed, unsigned threads,
                       std::size_t n_actions) {
  static constexpr CasStep kFailable[] = {CasStep::kIFlag, CasStep::kDFlag,
                                          CasStep::kMark, CasStep::kBacktrack,
                                          CasStep::kFreeze};
  SplitMix64 sm(seed);
  FaultPlan plan;
  plan.actions.reserve(n_actions);
  for (std::size_t i = 0; i < n_actions; ++i) {
    FaultAction a;
    a.tid = static_cast<unsigned>(sm.next() % (threads == 0 ? 1 : threads));
    a.occurrence = 1 + static_cast<unsigned>(sm.next() % 8);
    switch (sm.next() % 3) {
      case 0:
        a.kind = FaultKind::kFailCas;
        a.step = static_cast<int>(kFailable[sm.next() % 4]);
        a.count = 1 + static_cast<unsigned>(sm.next() % 3);
        break;
      case 1:
        a.kind = FaultKind::kDelay;
        a.point = static_cast<int>(sm.next() % kNumHookPoints);
        a.count = 64 + static_cast<unsigned>(sm.next() % 2048);
        break;
      default:
        a.kind = FaultKind::kYieldBurst;
        a.point = static_cast<int>(sm.next() % kNumHookPoints);
        a.count = 1 + static_cast<unsigned>(sm.next() % 4);
        break;
    }
    plan.actions.push_back(a);
  }
  return plan;
}

/// ddmin-lite plan shrinking. `still_fails(candidate)` must re-run the
/// failing scenario under `candidate` and report whether it still fails;
/// shrink returns the smallest failing plan it found within `max_evals`
/// evaluations. Classic delta-debugging schedule: try to delete chunks of
/// half the plan, re-halving the chunk size whenever a full pass removes
/// nothing, down to single actions. Deterministic replay (seeded workloads +
/// scripted faults) is what makes the predicate meaningful — each candidate
/// run sees the identical schedule pressure minus the deleted actions.
template <typename Pred>
FaultPlan shrink(FaultPlan plan, Pred&& still_fails, int max_evals = 64) {
  int evals = 0;
  std::size_t chunk = plan.actions.size() / 2;
  if (chunk == 0) chunk = 1;
  while (!plan.actions.empty() && evals < max_evals) {
    bool removed_any = false;
    for (std::size_t start = 0;
         start < plan.actions.size() && evals < max_evals;) {
      FaultPlan candidate = plan;
      const std::size_t end =
          std::min(start + chunk, candidate.actions.size());
      candidate.actions.erase(
          candidate.actions.begin() + static_cast<std::ptrdiff_t>(start),
          candidate.actions.begin() + static_cast<std::ptrdiff_t>(end));
      ++evals;
      if (still_fails(candidate)) {
        plan = std::move(candidate);
        removed_any = true;
        // Keep `start`: the tail shifted into place, test it next.
      } else {
        start += chunk;
      }
    }
    if (!removed_any) {
      if (chunk == 1) break;
      chunk = chunk / 2;
    }
  }
  return plan;
}

}  // namespace efrb::inject
