// FaultScheduler: executes a FaultPlan against the hook shims of
// core/debug_hooks.hpp.
//
// The scheduler is the runtime half of the fault-injection layer. Threads
// participating in a plan register a *plan thread id* with a scoped
// ThreadScope; the tree is instantiated with InjectTraits, whose hooks route
// every CAS gate and pause point of the registered threads into the active
// scheduler. The scheduler matches each visit against the plan's actions and
//
//   * vetoes the CAS (kFailCas) — the call site then behaves exactly as if
//     the CAS lost its race;
//   * parks the thread on a condvar gate (kStall) until the controlling
//     thread calls release() — while parked the thread keeps whatever it
//     holds (flags CASed, reclaimer pins), which is the whole point: it lets
//     tests hold the protocol open at any step and the reclaimers starved;
//   * spins or yields (kDelay / kYieldBurst) to perturb timing without
//     blocking.
//
// Identity model: the plan-tid registered via ThreadScope is authoritative
// for matching — it is assigned by the test, deterministic, and present even
// on code paths with no structure handle. The handle tid carried by the hook
// emission is recorded in the fired-event trace for cross-checking the two
// identity domains. Threads with no ThreadScope (helpers the test did not
// script, gtest's main thread) pass through every hook untouched.
//
// Everything observable — hit counts, fired events, stalled flags — is
// guarded by one mutex; hooks fire on protocol slow paths (CAS boundaries,
// retry loops), so the lock is not on any measured fast path. Determinism of
// a (seeded workload, plan) pair comes from matching on per-(tid, site) visit
// ordinals, which are schedule-independent per thread.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/debug_hooks.hpp"
#include "inject/fault_plan.hpp"
#include "util/assert.hpp"
#include "util/backoff.hpp"
#include "util/errors.hpp"

namespace efrb::inject {

class FaultScheduler {
 public:
  /// Hard cap on distinct plan thread ids (state is preallocated so that no
  /// reference is invalidated while a stalled thread waits on the condvar).
  static constexpr unsigned kMaxTids = 64;

  /// One matched action firing, for traces and assertions.
  struct FiredEvent {
    FaultKind kind;
    unsigned tid;         // plan tid
    unsigned handle_tid;  // structure-handle tid seen at the hook (may be
                          // kNoTid on tree-level paths)
    int step;             // CasStep index or -1
    int point;            // HookPoint index or -1
    unsigned occurrence;  // the visit ordinal that matched
  };

  explicit FaultScheduler(FaultPlan plan) : plan_(std::move(plan)) {
    if (!plan_.valid()) {
      throw std::invalid_argument("FaultScheduler: malformed FaultPlan");
    }
    if (!plan_.safe() && !plan_.allow_unsafe) {
      throw std::invalid_argument(
          "FaultScheduler: plan force-fails a helping step (ichild/iunflag/"
          "dchild/dunflag) without allow_unsafe — this corrupts the tree");
    }
    state_.resize(kMaxTids);
  }

  FaultScheduler(const FaultScheduler&) = delete;
  FaultScheduler& operator=(const FaultScheduler&) = delete;

  ~FaultScheduler() { release_all(); }

  // --- thread registration ---------------------------------------------

  /// RAII registration of the calling thread as plan thread `tid` on
  /// scheduler `s`. Nestable (the previous binding is restored on exit) so a
  /// test body can temporarily run scripted sections. The binding is
  /// thread_local: it is the single source of identity for plan matching.
  class ThreadScope {
   public:
    ThreadScope(FaultScheduler& s, unsigned tid) noexcept
        : prev_sched_(tl_sched_), prev_tid_(tl_tid_) {
      EFRB_ASSERT_MSG(tid < kMaxTids, "plan tid out of range");
      tl_sched_ = &s;
      tl_tid_ = tid;
    }
    ~ThreadScope() {
      tl_sched_ = prev_sched_;
      tl_tid_ = prev_tid_;
    }
    ThreadScope(const ThreadScope&) = delete;
    ThreadScope& operator=(const ThreadScope&) = delete;

   private:
    FaultScheduler* prev_sched_;
    unsigned prev_tid_;
  };

  static FaultScheduler* current() noexcept { return tl_sched_; }
  static unsigned current_tid() noexcept { return tl_tid_; }

  // --- hook entry points (called via InjectTraits) ----------------------

  /// allow_cas gate: returns false to veto. Counts the visit, fires any
  /// matching actions (a stall here parks the thread *before* the CAS).
  bool allow(CasStep s, unsigned handle_tid) {
    const unsigned tid = tl_tid_;
    const int site = static_cast<int>(s);
    std::unique_lock<std::mutex> lock(mu_);
    ThreadState& ts = state_[tid];
    const unsigned hit = ++ts.step_hits[static_cast<std::size_t>(site)];
    bool vetoed = false;
    // An open forced-failure window (count > 1) continues to veto.
    if (ts.forced_step == site && ts.forced_remaining > 0) {
      --ts.forced_remaining;
      vetoed = true;
    }
    Pending pending{};
    for (const FaultAction& a : plan_.actions) {
      if (a.tid != tid || a.step != site || a.occurrence != hit) continue;
      fired_.push_back({a.kind, tid, handle_tid, site, -1, hit});
      switch (a.kind) {
        case FaultKind::kFailCas:
          vetoed = true;
          if (a.count > 1) {
            ts.forced_step = site;
            ts.forced_remaining = a.count - 1;
          }
          break;
        case FaultKind::kStall:
          stall_here(lock, ts);
          break;
        case FaultKind::kDelay:
          pending.delay += a.count;
          break;
        case FaultKind::kYieldBurst:
          pending.yields += a.count;
          break;
      }
    }
    lock.unlock();
    run_pending(pending);
    return !vetoed;
  }

  /// at() emission: counts the visit and fires matching point actions.
  void on_point(HookPoint p, unsigned handle_tid) {
    const unsigned tid = tl_tid_;
    const int site = static_cast<int>(p);
    std::unique_lock<std::mutex> lock(mu_);
    ThreadState& ts = state_[tid];
    const unsigned hit = ++ts.point_hits[static_cast<std::size_t>(site)];
    Pending pending{};
    for (const FaultAction& a : plan_.actions) {
      if (a.tid != tid || a.point != site || a.occurrence != hit) continue;
      fired_.push_back({a.kind, tid, handle_tid, -1, site, hit});
      switch (a.kind) {
        case FaultKind::kFailCas:
          break;  // unreachable: valid() requires a step site for kFailCas
        case FaultKind::kStall:
          stall_here(lock, ts);
          break;
        case FaultKind::kDelay:
          pending.delay += a.count;
          break;
        case FaultKind::kYieldBurst:
          pending.yields += a.count;
          break;
      }
    }
    lock.unlock();
    run_pending(pending);
  }

  /// on_cas trace: records outcomes per (tid, step) for assertions.
  void observe_cas(CasStep s, bool ok, unsigned /*handle_tid*/) {
    const std::lock_guard<std::mutex> lock(mu_);
    ThreadState& ts = state_[tl_tid_];
    const auto i = static_cast<std::size_t>(s);
    ++ts.cas_outcomes[i][ok ? 1 : 0];
  }

  // --- controller interface --------------------------------------------

  /// Blocks until plan thread `tid` is parked at a stall gate (or the
  /// timeout elapses). Returns true if the thread is stalled.
  bool wait_until_stalled(
      unsigned tid,
      std::chrono::milliseconds timeout = std::chrono::seconds(10)) {
    check_tid(tid);
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout,
                        [&] { return state_[tid].stalled; });
  }

  /// Releases plan thread `tid` from its current (or next) stall gate.
  void release(unsigned tid) {
    check_tid(tid);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++state_[tid].release_tokens;
    }
    cv_.notify_all();
  }

  /// Releases every currently-stalled thread and puts the scheduler in
  /// draining mode: from here on every stall gate passes through without
  /// parking. Used on teardown (and from the destructor) so a failing test
  /// cannot leave worker threads parked forever — including a worker that
  /// reaches its gate only *after* this call, which a token-only sweep of
  /// the currently-stalled set would miss.
  void release_all() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      draining_ = true;
      for (ThreadState& ts : state_) {
        if (ts.stalled) ++ts.release_tokens;
      }
    }
    cv_.notify_all();
  }

  bool is_stalled(unsigned tid) {
    check_tid(tid);
    const std::lock_guard<std::mutex> lock(mu_);
    return state_[tid].stalled;
  }

  std::size_t stalled_count() {
    const std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const ThreadState& ts : state_) n += ts.stalled ? 1 : 0;
    return n;
  }

  /// Snapshot of every action firing so far, in firing order.
  std::vector<FiredEvent> fired() {
    const std::lock_guard<std::mutex> lock(mu_);
    return fired_;
  }

  /// Visit count of (tid, step) at the allow_cas gate.
  unsigned step_hits(unsigned tid, CasStep s) {
    check_tid(tid);
    const std::lock_guard<std::mutex> lock(mu_);
    return state_[tid].step_hits[static_cast<std::size_t>(s)];
  }

  /// Visit count of (tid, point) at the at() emission.
  unsigned point_hits(unsigned tid, HookPoint p) {
    check_tid(tid);
    const std::lock_guard<std::mutex> lock(mu_);
    return state_[tid].point_hits[static_cast<std::size_t>(p)];
  }

  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  struct ThreadState {
    std::array<unsigned, kNumCasSteps> step_hits{};
    std::array<unsigned, kNumHookPoints> point_hits{};
    // [step][0] = failed, [step][1] = succeeded (post-gate outcomes).
    std::array<std::array<unsigned, 2>, kNumCasSteps> cas_outcomes{};
    int forced_step = -1;
    unsigned forced_remaining = 0;
    bool stalled = false;
    unsigned release_tokens = 0;  // pending release() calls (may arrive early)
  };

  /// Controller-facing tid validation. Throws (rather than EFRB_ASSERT) so a
  /// test driving a generated plan gets a catchable error, consistent with
  /// the constructor's invalid_argument contract; state_ has exactly
  /// kMaxTids entries, so an unchecked index would read out of bounds.
  static void check_tid(unsigned tid) {
    if (tid >= kMaxTids) {
      throw std::out_of_range("FaultScheduler: plan tid out of range");
    }
  }

  /// Deferred non-blocking perturbations, executed after the lock drops.
  struct Pending {
    unsigned delay = 0;
    unsigned yields = 0;
  };

  static void run_pending(const Pending& p) {
    for (unsigned i = 0; i < p.delay; ++i) cpu_relax();
    for (unsigned i = 0; i < p.yields; ++i) std::this_thread::yield();
  }

  /// Parks the calling thread on the gate. Caller holds `lock`; a release()
  /// issued before the thread reaches the gate is consumed immediately
  /// (tokens, not flags, so controller/worker ordering cannot deadlock).
  /// In draining mode (release_all ran, possibly from the destructor) the
  /// gate is a no-op: a thread arriving after the release sweep must not
  /// park, or it would wait forever on a condvar about to be destroyed.
  void stall_here(std::unique_lock<std::mutex>& lock, ThreadState& ts) {
    if (draining_) return;
    ts.stalled = true;
    cv_.notify_all();
    cv_.wait(lock, [&] { return ts.release_tokens > 0 || draining_; });
    if (ts.release_tokens > 0) --ts.release_tokens;
    ts.stalled = false;
    cv_.notify_all();
  }

  static inline thread_local FaultScheduler* tl_sched_ = nullptr;
  static inline thread_local unsigned tl_tid_ = 0;

  FaultPlan plan_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ThreadState> state_;
  std::vector<FiredEvent> fired_;
  bool draining_ = false;  // guarded by mu_; set once by release_all()
};

/// Tree traits routing hooks into the thread's current FaultScheduler (set by
/// a FaultScheduler::ThreadScope). Unregistered threads — and all threads
/// when no scheduler is bound — see no-op hooks and a permissive gate, so a
/// tree instantiated with InjectTraits behaves normally outside scripted
/// sections. Stats stay on: fault tests assert on the per-step counters.
struct InjectTraits {
  static constexpr bool kCountStats = true;
  static constexpr bool kSearchHelpsMarked = false;

  static void on_cas(CasStep s, bool ok, const void* /*node*/, unsigned tid) {
    if (FaultScheduler* sched = FaultScheduler::current()) {
      sched->observe_cas(s, ok, tid);
    }
  }
  static void at(HookPoint p, unsigned tid) {
    if (FaultScheduler* sched = FaultScheduler::current()) {
      sched->on_point(p, tid);
    }
  }
  static bool allow_cas(CasStep s, const void* /*node*/, unsigned tid) {
    if (FaultScheduler* sched = FaultScheduler::current()) {
      return sched->allow(s, tid);
    }
    return true;
  }
};

/// §6 Search variant under injection (for the helping-search op mix).
struct InjectHelpingSearchTraits : InjectTraits {
  static constexpr bool kSearchHelpsMarked = true;
};

}  // namespace efrb::inject
