// Always-on invariant checks.
//
// Standard assert() vanishes in release builds, but the invariants guarded in
// this library (tree shape, CAS-protocol state) are cheap relative to the
// operations they guard and catastrophic when violated — EFRB_ASSERT stays on
// in every build type. EFRB_DCHECK compiles out with NDEBUG for hot-path-only
// checks.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace efrb::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "EFRB_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace efrb::detail

#define EFRB_ASSERT(expr)                                                  \
  (static_cast<bool>(expr)                                                 \
       ? static_cast<void>(0)                                              \
       : ::efrb::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define EFRB_ASSERT_MSG(expr, msg)                                         \
  (static_cast<bool>(expr)                                                 \
       ? static_cast<void>(0)                                              \
       : ::efrb::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)))

#ifdef NDEBUG
#define EFRB_DCHECK(expr) static_cast<void>(0)
#else
#define EFRB_DCHECK(expr) EFRB_ASSERT(expr)
#endif
