// Contention backoff.
//
// On a failed CAS, immediately retrying maximizes coherence traffic. The
// standard remedy is truncated exponential backoff. Because this library must
// behave well even when threads outnumber cores (and on single-core hosts,
// where pure spinning starves the lock/flag holder), the backoff escalates
// from pause instructions to std::this_thread::yield().
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace efrb {

/// One relaxing spin iteration (PAUSE on x86, ISB on ARM, no-op otherwise).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("isb" ::: "memory");
#endif
}

/// Truncated exponential backoff: spins for 2^k relax-iterations up to a cap,
/// then yields the timeslice. Reset on operation start/success.
///
/// Escalation is bounded in both directions. Upward: the spin budget doubles
/// only to `cap_`, then switches to yielding (oversubscribed or long
/// conflict: let the obstructing thread run). Downward: after
/// `kYieldBurst` consecutive yields the backoff decays to the spin phase at
/// half the cap, so one contention spike cannot leave the instance yielding
/// on every retry for the rest of its life — the failure mode a long-lived
/// per-handle Backoff hits when a reset is missed on some retry path.
class Backoff {
 public:
  /// Consecutive yields before decaying back into the spin phase.
  static constexpr std::uint32_t kYieldBurst = 16;

  /// Largest accepted spin cap. The yield phase is encoded as
  /// `limit_ == cap_ + 1`, so cap_ must stay below UINT32_MAX or the
  /// sentinel would wrap to 0 and lock the instance into a zero-iteration
  /// busy loop; caps beyond 2^30 relax-iterations (~seconds) are
  /// meaningless as backoff anyway.
  static constexpr std::uint32_t kMaxSpinCap = 1u << 30;

  explicit Backoff(std::uint32_t spin_cap = 1024) noexcept
      : cap_(spin_cap < kMaxSpinCap ? spin_cap : kMaxSpinCap) {}

  void operator()() noexcept {
    if (limit_ <= cap_) {
      for (std::uint32_t i = 0; i < limit_; ++i) cpu_relax();
      // Saturating doubling: one step past the cap enters the yield phase;
      // no unbounded growth (and no u32 wrap back into the spin phase).
      limit_ = (limit_ > cap_ / 2) ? cap_ + 1 : limit_ * 2;
      yields_ = 0;
    } else {
      std::this_thread::yield();
      if (++yields_ >= kYieldBurst) {
        // Decay: re-enter the spin phase near the cap. If the conflict is
        // really still live we return to yielding within one doubling.
        limit_ = cap_ / 2 + 1;
        yields_ = 0;
      }
    }
  }

  void reset() noexcept {
    limit_ = 1;
    yields_ = 0;
  }

  /// True while the next pause would yield rather than spin (test hook).
  bool yielding() const noexcept { return limit_ > cap_; }

  /// Effective (clamped) spin cap (test hook).
  std::uint32_t spin_cap() const noexcept { return cap_; }

 private:
  std::uint32_t limit_ = 1;
  std::uint32_t yields_ = 0;
  std::uint32_t cap_;
};

}  // namespace efrb
