// Contention backoff.
//
// On a failed CAS, immediately retrying maximizes coherence traffic. The
// standard remedy is truncated exponential backoff. Because this library must
// behave well even when threads outnumber cores (and on single-core hosts,
// where pure spinning starves the lock/flag holder), the backoff escalates
// from pause instructions to std::this_thread::yield().
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace efrb {

/// One relaxing spin iteration (PAUSE on x86, ISB on ARM, no-op otherwise).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("isb" ::: "memory");
#endif
}

/// Truncated exponential backoff: spins for 2^k relax-iterations up to a cap,
/// then yields the timeslice on every call. Reset on success.
class Backoff {
 public:
  explicit Backoff(std::uint32_t spin_cap = 1024) noexcept : cap_(spin_cap) {}

  void operator()() noexcept {
    if (limit_ <= cap_) {
      for (std::uint32_t i = 0; i < limit_; ++i) cpu_relax();
      limit_ *= 2;
    } else {
      // Oversubscribed or long conflict: let the obstructing thread run.
      std::this_thread::yield();
    }
  }

  void reset() noexcept { limit_ = 1; }

 private:
  std::uint32_t limit_ = 1;
  std::uint32_t cap_;
};

}  // namespace efrb
