// Fork/join helpers for tests and benchmarks.
//
// `run_threads(n, fn)` launches n threads running fn(thread_index) and joins
// them all, propagating the first exception. Threads start behind a barrier so
// measurement loops begin simultaneously.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/barrier.hpp"

namespace efrb {

/// Run fn(tid) on `n` threads; all threads pass a start barrier before fn runs.
/// Rethrows (one of) the exception(s) thrown by worker threads after joining.
template <typename Fn>
void run_threads(std::size_t n, Fn&& fn) {
  YieldingBarrier start(static_cast<std::uint32_t>(n));
  std::vector<std::thread> threads;
  threads.reserve(n);

  std::mutex err_mu;
  std::exception_ptr first_error;

  for (std::size_t tid = 0; tid < n; ++tid) {
    threads.emplace_back([&, tid] {
      start.arrive_and_wait();
      try {
        fn(tid);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace efrb
