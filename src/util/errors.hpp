// Library exception types.
//
// The library is exception-free on hot paths; exceptions are reserved for
// resource-acquisition failures at handle/attachment setup time, where the
// caller has a sensible recovery (detach another handle, widen the registry,
// or shed load). Aborting — the previous behaviour — is kept only for genuine
// invariant violations (EFRB_ASSERT).
#pragma once

#include <stdexcept>
#include <string>

namespace efrb {

/// Thrown when a fixed-capacity per-thread registry (reclaimer thread slots,
/// hazard slots, stat shards) has no free entry after a bounded retry.
///
/// Contract: acquisition sites retry a bounded number of times (another
/// thread/handle may be mid-detach) and then throw this instead of aborting.
/// The failed acquisition has no side effects: no slot is held, so the caller
/// may release other handles and try again, or construct the structure with a
/// larger `max_threads`.
class CapacityExhausted : public std::runtime_error {
 public:
  explicit CapacityExhausted(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace efrb
