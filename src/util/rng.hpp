// Small, fast, seedable PRNGs for workloads and tests.
//
// std::mt19937_64 is too heavy to sit inside a throughput-measurement loop
// (large state, poor cache behaviour). SplitMix64 seeds; xoshiro256++ runs the
// hot path. Both are public-domain algorithms (Blackman & Vigna).
#pragma once

#include <cstdint>
#include <limits>

namespace efrb {

/// SplitMix64: tiny generator used to expand a 64-bit seed into stream state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ 1.0 — the workhorse generator. Satisfies
/// std::uniform_random_bit_generator so it plugs into <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace efrb
