// Reusable thread barrier that yields while waiting.
//
// std::barrier spins aggressively in some implementations; on oversubscribed
// or single-core hosts that inflates measured time and can livelock test
// schedules. This barrier is sense-reversing and yields after a short spin.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "util/backoff.hpp"

namespace efrb {

class YieldingBarrier {
 public:
  explicit YieldingBarrier(std::uint32_t parties) noexcept
      : parties_(parties), waiting_(0), sense_(false) {}

  YieldingBarrier(const YieldingBarrier&) = delete;
  YieldingBarrier& operator=(const YieldingBarrier&) = delete;

  /// Blocks until all `parties` threads have arrived. Reusable.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (waiting_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      waiting_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);  // release the cohort
    } else {
      Backoff backoff(64);
      while (sense_.load(std::memory_order_acquire) != my_sense) backoff();
    }
  }

 private:
  const std::uint32_t parties_;
  std::atomic<std::uint32_t> waiting_;
  std::atomic<bool> sense_;
};

}  // namespace efrb
