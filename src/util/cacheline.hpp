// Cache-line geometry and false-sharing avoidance helpers.
//
// Lock-free structures are dominated by coherence traffic; per-thread state
// (epoch announcements, hazard slots, operation counters) must never share a
// cache line between threads. `CachePadded<T>` wraps a value in a full line.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace efrb {

// std::hardware_destructive_interference_size is not reliably provided by all
// standard libraries; 64 bytes is correct for every mainstream x86-64 and most
// AArch64 parts (128 on Apple M-series; padding to 64 is still a large win).
inline constexpr std::size_t kCacheLineSize = 64;

/// Value occupying (at least) one full cache line, aligned to a line boundary.
/// Use for elements of per-thread arrays that are written by their owner and
/// read by other threads (epoch slots, hazard-pointer slots, stat counters).
template <typename T>
struct alignas(kCacheLineSize) CachePadded {
  static_assert(!std::is_reference_v<T>, "CachePadded of a reference");

  T value{};

  CachePadded() = default;
  template <typename... Args>
  explicit CachePadded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(sizeof(CachePadded<char>) == kCacheLineSize);
static_assert(alignof(CachePadded<char>) == kCacheLineSize);

}  // namespace efrb
