// Summary statistics for benchmark reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace efrb {

/// Accumulates samples; computes mean/min/max/percentiles on demand.
class Summary {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_valid_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const noexcept { return samples_.size(); }

  double sum() const noexcept {
    double s = 0;
    for (double x : samples_) s += x;
    return s;
  }

  double mean() const noexcept {
    return samples_.empty() ? 0.0 : sum() / static_cast<double>(samples_.size());
  }

  double min() const noexcept {
    return samples_.empty() ? 0.0
                            : *std::min_element(samples_.begin(), samples_.end());
  }

  double max() const noexcept {
    return samples_.empty() ? 0.0
                            : *std::max_element(samples_.begin(), samples_.end());
  }

  double stddev() const noexcept {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0;
    for (double x : samples_) acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
  }

  /// p in [0,100]; linear interpolation between the two nearest ranks.
  /// Sorts once into a cached buffer (invalidated by add), so reporting k
  /// percentiles over n samples costs one n·log n sort, not k of them.
  double percentile(double p) const {
    if (samples_.empty()) return 0.0;
    if (!sorted_valid_) {
      sorted_ = samples_;
      std::sort(sorted_.begin(), sorted_.end());
      sorted_valid_ = true;
    }
    const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
  }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  // percentile()'s sort cache
  mutable bool sorted_valid_ = false;
};

}  // namespace efrb
