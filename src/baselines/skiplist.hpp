// Lock-free skiplist set (Fraser-style; the formulation in Herlihy & Shavit,
// "The Art of Multiprocessor Programming", ch. 14 — the paper's reference
// [14]). This is the data structure behind java.util.concurrent's
// ConcurrentSkipListMap, i.e. the dictionary Lea's quote in §1 contrasts with
// a hypothetical non-blocking search tree. It is the main non-blocking
// competitor in experiments E1/E2.
//
// Every forward pointer packs a mark bit (bit 0). Deletion marks the victim's
// pointers from the top level down, then the bottom level (the linearization
// point), then calls find() to physically snip it at every level; the thread
// whose CAS marked the bottom level retires the node. Reclamation is
// epoch-based: every operation runs pinned, so a snipped node cannot be freed
// while any traversal that might still reach it is in progress.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "reclaim/epoch.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace efrb {

template <typename Key, typename Compare = std::less<Key>>
class LockFreeSkipList {
 public:
  using key_type = Key;
  static constexpr const char* kName = "lockfree-skiplist";
  static constexpr int kMaxLevel = 20;  // supports ~2^20 keys at p = 1/2

  explicit LockFreeSkipList(Compare cmp = Compare{}) : cmp_(std::move(cmp)) {
    head_ = new SNode(Key{}, kMaxLevel - 1);
  }

  LockFreeSkipList(const LockFreeSkipList&) = delete;
  LockFreeSkipList& operator=(const LockFreeSkipList&) = delete;

  ~LockFreeSkipList() {
    SNode* n = head_;
    while (n != nullptr) {
      SNode* next = unmark(n->next[0].load(std::memory_order_relaxed));
      delete n;
      n = next;
    }
  }

  bool contains(const Key& k) const {
    auto guard = ebr_.pin();
    const SNode* pred = head_;
    const SNode* curr = nullptr;
    for (int level = kMaxLevel - 1; level >= 0; --level) {
      curr = unmark(pred->next[level].load(std::memory_order_acquire));
      for (;;) {
        if (curr == nullptr) break;
        const std::uintptr_t succ_word =
            curr->next[level].load(std::memory_order_acquire);
        if (is_marked(succ_word)) {  // skip logically deleted nodes
          curr = unmark(succ_word);
          continue;
        }
        if (cmp_(curr->key, k)) {
          pred = curr;
          curr = unmark(succ_word);
          continue;
        }
        break;
      }
    }
    return curr != nullptr && equals(curr->key, k);
  }

  bool insert(const Key& k) {
    auto guard = ebr_.pin();
    const int top = random_level();
    SNode* preds[kMaxLevel];
    SNode* succs[kMaxLevel];
    SNode* node = nullptr;
    for (;;) {
      if (find(k, preds, succs)) {
        delete node;  // (possibly) built on a previous iteration; unpublished
        return false;
      }
      if (node == nullptr) node = new SNode(k, top);
      for (int level = 0; level <= top; ++level) {
        node->next[level].store(pack(succs[level], false),
                                std::memory_order_relaxed);
      }
      // Linearization point of a successful insert: the bottom-level link.
      std::uintptr_t expected = pack(succs[0], false);
      if (!preds[0]->next[0].compare_exchange_strong(
              expected, pack(node, false), std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        continue;  // bottom link contended; recompute the window
      }
      // Link the upper levels. A concurrent erase may mark `node` while we
      // are doing this; in that case abandon the remaining levels.
      for (int level = 1; level <= top; ++level) {
        bool abandoned = false;
        for (;;) {
          const std::uintptr_t my_word =
              node->next[level].load(std::memory_order_acquire);
          if (is_marked(my_word)) {  // being deleted already
            abandoned = true;
            break;
          }
          if (unmark(my_word) != succs[level]) {
            // Refresh our forward pointer to the current window successor.
            std::uintptr_t exp = my_word;
            if (!node->next[level].compare_exchange_strong(
                    exp, pack(succs[level], false), std::memory_order_acq_rel,
                    std::memory_order_acquire)) {
              continue;
            }
          }
          std::uintptr_t link_exp = pack(succs[level], false);
          if (preds[level]->next[level].compare_exchange_strong(
                  link_exp, pack(node, false), std::memory_order_acq_rel,
                  std::memory_order_acquire)) {
            break;  // this level linked
          }
          // Window stale: recompute. Our node is linked at the bottom level,
          // so find() reports "present" with the refreshed window.
          find(k, preds, succs);
        }
        if (abandoned) break;
      }
      // Close the insert/erase race: an upper-level link CAS of ours may have
      // landed *after* the concurrent eraser's find() finished snipping, which
      // would leave the (already retired) node reachable at that level. The
      // eraser marks the bottom level before its find(), so if the bottom is
      // unmarked here, any future eraser's find() runs after all our links
      // and snips them. If it is marked, we must guarantee unlinking
      // ourselves before this pinned region — which is what blocks the
      // node's reclamation — ends.
      if (is_marked(node->next[0].load(std::memory_order_acquire))) {
        find(k, preds, succs);
      }
      return true;
    }
  }

  bool erase(const Key& k) {
    auto guard = ebr_.pin();
    SNode* preds[kMaxLevel];
    SNode* succs[kMaxLevel];
    if (!find(k, preds, succs)) return false;
    SNode* victim = succs[0];
    // Mark the upper levels (top-down); other threads may help via snipping
    // but only the bottom-level marker owns the deletion.
    for (int level = victim->top_level; level >= 1; --level) {
      std::uintptr_t w = victim->next[level].load(std::memory_order_acquire);
      while (!is_marked(w)) {
        victim->next[level].compare_exchange_weak(w, w | 1,
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire);
      }
    }
    // Bottom level: the linearization point of a successful erase.
    std::uintptr_t w = victim->next[0].load(std::memory_order_acquire);
    for (;;) {
      if (is_marked(w)) return false;  // another eraser won
      if (victim->next[0].compare_exchange_strong(w, w | 1,
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
        // Physically snip at every level, then retire: after find() returns,
        // a fully marked node is no longer linked at any level.
        find(k, preds, succs);
        ebr_.retire(victim);
        return true;
      }
    }
  }

  std::size_t size() const {  // quiescent use only
    std::size_t n = 0;
    for (SNode* cur = unmark(head_->next[0].load(std::memory_order_acquire));
         cur != nullptr;
         cur = unmark(cur->next[0].load(std::memory_order_acquire))) {
      if (!is_marked(cur->next[0].load(std::memory_order_acquire))) ++n;
    }
    return n;
  }

  EpochReclaimer& reclaimer() noexcept { return ebr_; }

 private:
  struct SNode {
    const Key key;
    const int top_level;
    // next[0..top_level]; bit 0 of each word is the level's mark.
    std::atomic<std::uintptr_t> next[kMaxLevel];
    SNode(Key k, int top) : key(std::move(k)), top_level(top) {
      for (int i = 0; i <= top_level; ++i) {
        next[i].store(0, std::memory_order_relaxed);
      }
    }
  };

  static constexpr bool is_marked(std::uintptr_t w) noexcept { return (w & 1) != 0; }
  static SNode* unmark(std::uintptr_t w) noexcept {
    return reinterpret_cast<SNode*>(w & ~std::uintptr_t{1});
  }
  static std::uintptr_t pack(SNode* n, bool mark) noexcept {
    return reinterpret_cast<std::uintptr_t>(n) | (mark ? 1 : 0);
  }

  bool equals(const Key& a, const Key& b) const {
    return !cmp_(a, b) && !cmp_(b, a);
  }

  /// Seed for a thread's level RNG. A global counter fed through SplitMix64,
  /// NOT std::hash<std::thread::id>: that hash is the identity on libstdc++,
  /// and thread ids are small consecutive integers (often recycled), so
  /// id-derived seeds give highly correlated xoshiro streams — correlated
  /// tower heights across threads skew the skiplist toward its worst shapes.
  /// The counter guarantees a distinct, well-mixed seed per thread for the
  /// process lifetime, including across recycled thread ids.
  static std::uint64_t level_seed() {
    static std::atomic<std::uint64_t> counter{0};
    SplitMix64 sm(0x9e3779b97f4a7c15ULL +
                  counter.fetch_add(1, std::memory_order_relaxed));
    return sm.next();
  }

  /// Geometric level with p = 1/2, capped at kMaxLevel - 1.
  static int random_level() {
    thread_local Xoshiro256 rng(level_seed());
    const std::uint64_t r = rng.next() | (std::uint64_t{1} << (kMaxLevel - 1));
    return __builtin_ctzll(r);
  }

  /// Positions preds/succs around k at every level, physically unlinking
  /// (snipping) marked nodes it passes. Returns true iff succs[0] carries k.
  bool find(const Key& k, SNode** preds, SNode** succs) const {
  retry:
    SNode* pred = head_;
    for (int level = kMaxLevel - 1; level >= 0; --level) {
      SNode* curr = unmark(pred->next[level].load(std::memory_order_acquire));
      for (;;) {
        if (curr == nullptr) break;
        const std::uintptr_t succ_word =
            curr->next[level].load(std::memory_order_acquire);
        SNode* succ = unmark(succ_word);
        if (is_marked(succ_word)) {
          // Snip curr out of this level.
          std::uintptr_t expected = pack(curr, false);
          if (!pred->next[level].compare_exchange_strong(
                  expected, pack(succ, false), std::memory_order_acq_rel,
                  std::memory_order_acquire)) {
            goto retry;
          }
          curr = succ;
          continue;
        }
        if (cmp_(curr->key, k)) {
          pred = curr;
          curr = succ;
          continue;
        }
        break;
      }
      preds[level] = pred;
      succs[level] = curr;
    }
    return succs[0] != nullptr && equals(succs[0]->key, k);
  }

  Compare cmp_;
  mutable EpochReclaimer ebr_;
  SNode* head_;  // full-height sentinel; key never examined
};

}  // namespace efrb
