// INTENTIONALLY INCORRECT — the strawman of Figure 3.
//
// "Simply using a CAS on the one child pointer that an update must change
// would lead to problems if there are concurrent updates" (§3). This class is
// that strawman: a leaf-oriented BST whose Insert/Delete perform exactly one
// child-pointer CAS with no flagging and no marking. It exists to reproduce
// the two anomalies of Figure 3 deterministically:
//
//   (b) concurrent Delete(C) / Delete(E): both CAS steps succeed, E's delete
//       is acknowledged, yet E is still reachable — a lost delete;
//   (c) concurrent Delete(E) / Insert(F): both CAS steps succeed, F's insert
//       is acknowledged, yet F is unreachable — a lost insert.
//
// The prepare/commit API splits an operation at precisely the point the paper
// considers — after the window (gp, p, l) has been read, before the single
// CAS — so tests can replay the exact schedules of Fig. 3 with no timing
// dependence. Never use this type for real data.
//
// The strawman rides the same OpContext/attachment substrate as the tree so
// the harness can drive it through handles, but it never calls retire():
// because the structure corrupts itself (a node detached by one CAS may be
// re-linked by a racing one), retiring detached nodes could double-free.
// Removed nodes are leaked by design, which is why the default policy is
// LeakyReclaimer; pins are still taken so the substrate contract holds.
#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <utility>
#include <vector>

#include "core/bounded_key.hpp"
#include "core/op_context.hpp"
#include "reclaim/reclaimer.hpp"
#include "util/assert.hpp"
#include "util/backoff.hpp"

namespace efrb {

template <typename Key, typename Compare = std::less<Key>,
          typename Reclaimer = LeakyReclaimer, typename Alloc = HeapAllocator>
class NaiveCasBst {
 public:
  using key_type = Key;
  static constexpr const char* kName = "naive-cas-bst(BROKEN)";

 private:
  using BKey = BoundedKey<Key>;
  using Ctx = OpContext<Reclaimer, /*kCount=*/false, /*kTrackKeys=*/false,
                        Alloc>;

 public:
  struct Node {
    const BKey key;
    const bool is_internal;
    std::atomic<Node*> left;
    std::atomic<Node*> right;
    Node(BKey k, Node* l, Node* r)
        : key(std::move(k)), is_internal(l != nullptr), left(l), right(r) {}
  };
  using node_type = Node;

  explicit NaiveCasBst(Compare cmp = Compare{}) : cmp_(std::move(cmp)) {
    // Sentinel construction with rollback: if a later allocation throws, the
    // earlier sentinels are returned to their source (same discipline as
    // TreeCore's constructor).
    Node* left = make_direct(BKey::inf1(), nullptr, nullptr);
    Node* right = nullptr;
    try {
      right = make_direct(BKey::inf2(), nullptr, nullptr);
      root_ = make_direct(BKey::inf2(), left, right);
    } catch (...) {
      dispose_direct(right);
      dispose_direct(left);
      throw;
    }
  }

  NaiveCasBst(const NaiveCasBst&) = delete;
  NaiveCasBst& operator=(const NaiveCasBst&) = delete;

  ~NaiveCasBst() {
    // Frees the reachable tree only; nodes detached by erase() are leaked by
    // design (see header comment).
    std::vector<Node*> stack{root_};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (n->is_internal) {
        stack.push_back(n->left.load(std::memory_order_relaxed));
        stack.push_back(n->right.load(std::memory_order_relaxed));
      }
      dispose_direct(n);
    }
  }

  /// Per-thread operation handle over the strawman, mirroring
  /// EfrbTreeMap::Handle: owns a reclaimer Attachment (pin fast path) and a
  /// backoff for the retry loops. No stats shard — the strawman is a
  /// correctness exhibit, not a benchmark subject.
  class Handle {
   public:
    Handle(Handle&&) noexcept = default;
    Handle& operator=(Handle&&) noexcept = default;
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    bool valid() const noexcept { return att_.attached(); }

    bool contains(const Key& k) const {
      [[maybe_unused]] auto g = att_.pin();
      const auto w = bst_->descend(k);
      return bst_->cmp_.equals(k, w.l->key);
    }

    bool insert(const Key& k) {
      [[maybe_unused]] auto g = att_.pin();
      auto ctx = Ctx::attached(att_, nullptr, &backoff_);
      return bst_->run_insert(k, ctx);
    }

    bool erase(const Key& k) {
      [[maybe_unused]] auto g = att_.pin();
      auto ctx = Ctx::attached(att_, nullptr, &backoff_);
      return bst_->run_erase(k, ctx);
    }

   private:
    friend class NaiveCasBst;
    explicit Handle(NaiveCasBst& bst)
        : bst_(&bst), att_(bst.reclaimer_.attach()) {}

    NaiveCasBst* bst_;
    mutable typename Reclaimer::Attachment att_;
    Backoff backoff_;
  };

  /// Create a per-thread handle (see Handle).
  Handle handle() { return Handle(*this); }

  /// A planned single-CAS update: everything the operation decided from its
  /// read of the tree, not yet published.
  struct Ticket {
    std::atomic<Node*>* target = nullptr;  // the one child word to change
    Node* expected = nullptr;
    Node* desired = nullptr;
    bool applicable = false;  // key present/absent check passed
  };

  /// Phase 1 of Insert(k): read the window and build the replacement subtree.
  Ticket prepare_insert(const Key& k) {
    [[maybe_unused]] auto g = reclaimer_.pin();
    return plan_insert(k);
  }

  /// Phase 1 of Delete(k): read the window, find the sibling.
  Ticket prepare_erase(const Key& k) {
    [[maybe_unused]] auto g = reclaimer_.pin();
    return plan_erase(k);
  }

  /// Phase 2: the single CAS the strawman performs. Returns its success.
  bool commit(const Ticket& t) {
    [[maybe_unused]] auto g = reclaimer_.pin();
    return apply(t);
  }

  // Conventional API (retry loops over prepare/commit), for stress demos.
  bool insert(const Key& k) {
    [[maybe_unused]] auto g = reclaimer_.pin();
    auto ctx = Ctx::tree_level(reclaimer_, nullptr);
    return run_insert(k, ctx);
  }

  bool erase(const Key& k) {
    [[maybe_unused]] auto g = reclaimer_.pin();
    auto ctx = Ctx::tree_level(reclaimer_, nullptr);
    return run_erase(k, ctx);
  }

  bool contains(const Key& k) const {
    [[maybe_unused]] auto g = reclaimer_.pin();
    const Window w = descend(k);
    return cmp_.equals(k, w.l->key);
  }

  /// All real keys currently reachable, in order (quiescent use).
  std::vector<Key> keys() const {
    [[maybe_unused]] auto g = reclaimer_.pin();
    std::vector<Key> out;
    std::vector<Node*> stack{root_};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (n->is_internal) {
        stack.push_back(n->left.load(std::memory_order_relaxed));
        stack.push_back(n->right.load(std::memory_order_relaxed));
      } else if (n->key.is_real()) {
        out.push_back(n->key.key);
      }
    }
    std::sort(out.begin(), out.end(), cmp_.user_compare());
    return out;
  }

  Reclaimer& reclaimer() noexcept { return reclaimer_; }

 private:
  struct Window {
    Node* gp;
    Node* p;
    Node* l;
  };

  Window descend(const Key& k) const {
    Node* gp = nullptr;
    Node* p = nullptr;
    Node* l = root_;
    while (l->is_internal) {
      gp = p;
      p = l;
      l = cmp_.less(k, l->key) ? l->left.load(std::memory_order_acquire)
                               : l->right.load(std::memory_order_acquire);
    }
    return Window{gp, p, l};
  }

  /// All allocation goes through the structure's allocator via the
  /// thread_local lease cache (the strawman has no per-operation allocation
  /// context worth plumbing — it leaks by design, so nothing recycles).
  template <typename... Args>
  Node* make_direct(Args&&... args) {
    if constexpr (Alloc::kPooled) {
      return alloc_.template create<Node>(*alloc_.local_cache(),
                                          std::forward<Args>(args)...);
    } else {
      return new Node(std::forward<Args>(args)...);
    }
  }

  void dispose_direct(Node* n) noexcept {
    if (n == nullptr) return;
    if constexpr (Alloc::kPooled) {
      alloc_.template destroy<Node>(*alloc_.local_cache(), n);
    } else {
      delete n;
    }
  }

  Ticket plan_insert(const Key& k) {
    const Window w = descend(k);
    Ticket t;
    if (cmp_.equals(k, w.l->key)) return t;  // duplicate
    auto* new_leaf = make_direct(BKey::real(k), nullptr, nullptr);
    auto* new_sibling = make_direct(w.l->key, nullptr, nullptr);
    Node* new_internal =
        cmp_.less(k, w.l->key)
            ? make_direct(w.l->key, new_leaf, new_sibling)
            : make_direct(BKey::real(k), new_sibling, new_leaf);
    t.target = (w.p->left.load(std::memory_order_acquire) == w.l) ? &w.p->left
                                                                  : &w.p->right;
    t.expected = w.l;
    t.desired = new_internal;
    t.applicable = true;
    return t;
  }

  Ticket plan_erase(const Key& k) {
    const Window w = descend(k);
    Ticket t;
    if (!cmp_.equals(k, w.l->key)) return t;  // absent
    EFRB_DCHECK(w.gp != nullptr);
    Node* sibling = (w.p->left.load(std::memory_order_acquire) == w.l)
                        ? w.p->right.load(std::memory_order_acquire)
                        : w.p->left.load(std::memory_order_acquire);
    t.target = (w.gp->left.load(std::memory_order_acquire) == w.p)
                   ? &w.gp->left
                   : &w.gp->right;
    t.expected = w.p;
    t.desired = sibling;
    t.applicable = true;
    return t;
  }

  bool apply(const Ticket& t) {
    EFRB_DCHECK(t.applicable);
    Node* expected = t.expected;
    return t.target->compare_exchange_strong(expected, t.desired,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire);
    // Note: the loser's `desired` subtree (and on erase, the detached parent
    // and leaf) are never retired — see the leak-by-design header note.
  }

  bool run_insert(const Key& k, Ctx& ctx) {
    ctx.begin_op();
    for (;;) {
      Ticket t = plan_insert(k);
      if (!t.applicable) return false;
      if (apply(t)) return true;
      ctx.retry_pause();
    }
  }

  bool run_erase(const Key& k, Ctx& ctx) {
    ctx.begin_op();
    for (;;) {
      Ticket t = plan_erase(k);
      if (!t.applicable) return false;
      if (apply(t)) return true;
      ctx.retry_pause();
    }
  }

  // Pool before everything that allocates from it (construction order).
  [[no_unique_address]] mutable Alloc alloc_;
  BoundedCompare<Key, Compare> cmp_;
  mutable Reclaimer reclaimer_;
  Node* root_;
};

}  // namespace efrb
