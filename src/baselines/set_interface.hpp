// The common concepts every dictionary implementation in this repository
// models, so tests and benchmarks can be written once and instantiated over
// all of them (the EFRB tree, the lock-based baselines of §2, and the
// list/skiplist families of §1's related work).
//
// Two tiers:
//   * ConcurrentSet — membership only (insert/erase/contains).
//   * ConcurrentMap — adds mapped values (get/insert_or_assign/replace).
// Plus the handle layer: HasOpHandle detects implementations exposing
// per-thread operation handles (see EfrbTreeMap::Handle); make_handle() gives
// generic code one spelling that resolves to a real handle when available and
// to a zero-cost forwarding proxy (SetRef) otherwise.
#pragma once

#include <concepts>
#include <cstddef>
#include <optional>
#include <utility>

namespace efrb {

// clang-format off
template <typename S, typename Key = typename S::key_type>
concept ConcurrentSet = requires(S s, const S cs, const Key& k) {
  typename S::key_type;
  { s.insert(k) } -> std::convertible_to<bool>;   // false iff already present
  { s.erase(k) } -> std::convertible_to<bool>;    // false iff absent
  { cs.contains(k) } -> std::convertible_to<bool>;
  { S::kName } -> std::convertible_to<const char*>;
};

template <typename M, typename Key = typename M::key_type,
          typename Value = typename M::mapped_type>
concept ConcurrentMap = ConcurrentSet<M> &&
    requires(M m, const M cm, const Key& k, const Value& v) {
  typename M::mapped_type;
  { m.insert(k, v) } -> std::convertible_to<bool>;           // false iff present
  { m.insert_or_assign(k, v) } -> std::convertible_to<bool>; // true iff new key
  { m.replace(k, v, v) } -> std::convertible_to<bool>;       // value CAS
  { cm.get(k) } -> std::same_as<std::optional<Value>>;
};

/// Implementations exposing per-thread operation handles (amortized reclaimer
/// pinning, contention-free stats). The handle supports at least the
/// ConcurrentSet operations; it is thread-affine and must not outlive `s`.
template <typename S>
concept HasOpHandle = requires(S s) {
  { s.handle() };
};
// clang-format on

/// Zero-cost stand-in for a handle on implementations without one: forwards
/// the set operations to the underlying object so generic per-thread loops
/// can be written against "a handle" unconditionally. When S also models the
/// map tier, the map operations forward too (guarded member-by-member, so a
/// set-only S still instantiates cleanly).
template <typename S>
class SetRef {
 public:
  using key_type = typename S::key_type;
  static constexpr const char* kName = S::kName;

  explicit SetRef(S& s) noexcept : s_(&s) {}

  bool contains(const key_type& k) const { return s_->contains(k); }
  bool insert(const key_type& k) { return s_->insert(k); }
  bool erase(const key_type& k) { return s_->erase(k); }

  // Map tier (present only when S has it).

  template <typename V>
    requires requires(S s, const key_type& k, V v) { s.insert(k, std::move(v)); }
  bool insert(const key_type& k, V v) {
    return s_->insert(k, std::move(v));
  }

  template <typename K = key_type>
    requires requires(const S s, const K& k) { s.get(k); }
  auto get(const K& k) const {
    return s_->get(k);
  }

  template <typename V>
    requires requires(S s, const key_type& k, V v) {
      s.insert_or_assign(k, std::move(v));
    }
  bool insert_or_assign(const key_type& k, V v) {
    return s_->insert_or_assign(k, std::move(v));
  }

  template <typename V>
    requires requires(S s, const key_type& k, const V& e, V d) {
      s.replace(k, e, std::move(d));
    }
  bool replace(const key_type& k, const V& expected, V desired) {
    return s_->replace(k, expected, std::move(desired));
  }

 private:
  S* s_;
};

/// Per-thread access point: a real handle when S has one, a SetRef proxy
/// otherwise. Call once per worker thread, outside the hot loop.
template <typename S>
auto make_handle(S& s) {
  if constexpr (HasOpHandle<S>) {
    return s.handle();
  } else {
    return SetRef<S>(s);
  }
}

}  // namespace efrb
