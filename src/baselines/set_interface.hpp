// The common concept every dictionary implementation in this repository
// models, so tests and benchmarks can be written once and instantiated over
// all of them (the EFRB tree, the lock-based baselines of §2, and the
// list/skiplist families of §1's related work).
#pragma once

#include <concepts>
#include <cstddef>

namespace efrb {

// clang-format off
template <typename S, typename Key = typename S::key_type>
concept ConcurrentSet = requires(S s, const S cs, const Key& k) {
  typename S::key_type;
  { s.insert(k) } -> std::convertible_to<bool>;   // false iff already present
  { s.erase(k) } -> std::convertible_to<bool>;    // false iff absent
  { cs.contains(k) } -> std::convertible_to<bool>;
  { S::kName } -> std::convertible_to<const char*>;
};
// clang-format on

}  // namespace efrb
