// Copy-on-write (path-copying) BST with a single root CAS — the §2
// "universal construction" approach made concrete.
//
// §2: "a process copies the data structure (or the parts of it that will
// change and any parts that directly or indirectly point to them), applies
// its operation to the copy, and then tries to update the relevant part of
// the shared data structure to point to its copy. In a BST, the root points
// indirectly to every node, so no concurrency is possible using this
// approach, even for updates on separate parts of the tree."
//
// This implementation is the strongest practical member of that family:
// updates copy only the root-to-leaf path (O(depth), not O(n)) into fresh
// immutable nodes and CAS the root pointer. It is linearizable and lock-free,
// and lookups are wait-free reads of an immutable snapshot — but every
// update, no matter how disjoint from others, races on the ONE root word, so
// conflicting updates re-copy whole paths and update throughput cannot scale.
// Experiment E3 quantifies this against the EFRB tree's per-node flags.
//
// Reclamation: a successful root swap retires the replaced path (still
// readable by pinned snapshot readers); a failed attempt deletes its
// unpublished copies immediately (tracked explicitly — fresh copies share
// subtrees with the live tree, so structural walks must not be used to free).
#pragma once

#include <atomic>
#include <functional>
#include <vector>

#include "core/bounded_key.hpp"
#include "reclaim/epoch.hpp"
#include "util/assert.hpp"

namespace efrb {

template <typename Key, typename Compare = std::less<Key>>
class CowBst {
 public:
  using key_type = Key;
  static constexpr const char* kName = "cow-root-cas-bst";

  explicit CowBst(Compare cmp = Compare{}) : cmp_(std::move(cmp)) {
    root_.store(new Node(BKey::inf2(), new Node(BKey::inf1(), nullptr, nullptr),
                         new Node(BKey::inf2(), nullptr, nullptr)),
                std::memory_order_release);
  }

  CowBst(const CowBst&) = delete;
  CowBst& operator=(const CowBst&) = delete;

  ~CowBst() {
    std::vector<Node*> stack{root_.load(std::memory_order_relaxed)};
    while (!stack.empty()) {
      Node* x = stack.back();
      stack.pop_back();
      if (x->left != nullptr) {
        stack.push_back(x->left);
        stack.push_back(x->right);
      }
      delete x;
    }
  }

  /// Wait-free: one atomic load, then a walk over an immutable snapshot.
  bool contains(const Key& k) const {
    auto guard = ebr_.pin();
    const Node* l = root_.load(std::memory_order_acquire);
    while (l->left != nullptr) {
      l = cmp_.less(k, l->key) ? l->left : l->right;
    }
    return cmp_.equals(k, l->key);
  }

  bool insert(const Key& k) {
    auto guard = ebr_.pin();
    std::vector<Node*> path;
    std::vector<Node*> fresh;
    for (;;) {
      path.clear();
      fresh.clear();
      Node* old_root = root_.load(std::memory_order_acquire);
      Node* l = old_root;
      while (l->left != nullptr) {
        path.push_back(l);
        l = cmp_.less(k, l->key) ? l->left : l->right;
      }
      if (cmp_.equals(k, l->key)) return false;

      // Fig. 1 surgery, applied to copies.
      Node* new_leaf = make(fresh, BKey::real(k), nullptr, nullptr);
      Node* new_sibling = make(fresh, l->key, nullptr, nullptr);
      Node* replacement =
          cmp_.less(k, l->key)
              ? make(fresh, l->key, new_leaf, new_sibling)
              : make(fresh, BKey::real(k), new_sibling, new_leaf);
      Node* new_root = rebuild_path(path, fresh, replacement, l);
      if (try_swap(old_root, new_root, path, fresh, l, nullptr)) return true;
    }
  }

  bool erase(const Key& k) {
    auto guard = ebr_.pin();
    std::vector<Node*> path;
    std::vector<Node*> fresh;
    for (;;) {
      path.clear();
      fresh.clear();
      Node* old_root = root_.load(std::memory_order_acquire);
      Node* l = old_root;
      while (l->left != nullptr) {
        path.push_back(l);
        l = cmp_.less(k, l->key) ? l->left : l->right;
      }
      if (!cmp_.equals(k, l->key)) return false;
      EFRB_DCHECK(path.size() >= 2);  // real leaves sit at depth >= 2

      // Fig. 2 surgery: the leaf's sibling subtree (shared, NOT copied)
      // replaces the parent; the path above the parent is copied.
      Node* parent = path.back();
      path.pop_back();
      Node* sibling = (parent->left == l) ? parent->right : parent->left;
      Node* new_root = rebuild_path(path, fresh, sibling, parent);
      if (try_swap(old_root, new_root, path, fresh, l, parent)) return true;
    }
  }

  std::size_t size() const {  // quiescent use only
    std::size_t n = 0;
    std::vector<const Node*> stack{root_.load(std::memory_order_acquire)};
    while (!stack.empty()) {
      const Node* x = stack.back();
      stack.pop_back();
      if (x->left != nullptr) {
        stack.push_back(x->left);
        stack.push_back(x->right);
      } else if (x->key.is_real()) {
        ++n;
      }
    }
    return n;
  }

  EpochReclaimer& reclaimer() noexcept { return ebr_; }

 private:
  using BKey = BoundedKey<Key>;

  /// Immutable after publication (children are const): versions share
  /// untouched subtrees. Leaves have left == right == nullptr.
  struct Node {
    const BKey key;
    Node* const left;
    Node* const right;
    Node(BKey k, Node* l, Node* r) : key(std::move(k)), left(l), right(r) {}
  };

  template <typename... Args>
  static Node* make(std::vector<Node*>& fresh, Args&&... args) {
    auto* n = new Node(std::forward<Args>(args)...);
    fresh.push_back(n);
    return n;
  }

  /// Copies `path` bottom-up, substituting `replacement` for `replaced` at
  /// the bottom; returns the new root. Copies are recorded in `fresh`.
  Node* rebuild_path(const std::vector<Node*>& path, std::vector<Node*>& fresh,
                     Node* replacement, const Node* replaced) {
    Node* child = replacement;
    const Node* old_child = replaced;
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      Node* old_node = *it;
      child = (old_node->left == old_child)
                  ? make(fresh, old_node->key, child, old_node->right)
                  : make(fresh, old_node->key, old_node->left, child);
      old_child = old_node;
    }
    return child;
  }

  /// CAS the root. Success: retire the displaced originals (copied path plus
  /// the structurally removed nodes). Failure: delete exactly the fresh,
  /// never-published copies.
  bool try_swap(Node* old_root, Node* new_root, const std::vector<Node*>& path,
                const std::vector<Node*>& fresh, Node* dead_leaf,
                Node* dead_parent) {
    Node* expected = old_root;
    if (root_.compare_exchange_strong(expected, new_root,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      for (Node* n : path) ebr_.retire(n);
      ebr_.retire(dead_leaf);
      if (dead_parent != nullptr) ebr_.retire(dead_parent);
      return true;
    }
    for (Node* n : fresh) delete n;
    return false;
  }

  BoundedCompare<Key, Compare> cmp_;
  mutable EpochReclaimer ebr_;
  std::atomic<Node*> root_;
};

}  // namespace efrb
