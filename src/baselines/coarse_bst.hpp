// Coarse-grained locked leaf-oriented BST.
//
// Same external tree shape as the EFRB tree (sentinels ∞₁/∞₂, keys in leaves)
// but guarded by a single reader-writer lock: lookups take the shared lock,
// updates the exclusive lock. This is the "one big lock" point in the design
// space that §2's lock-based trees improve on and §3's non-blocking protocol
// eliminates; it is the simplest correct baseline for the E1 experiments.
#pragma once

#include <functional>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "core/bounded_key.hpp"
#include "util/assert.hpp"

namespace efrb {

template <typename Key, typename Compare = std::less<Key>>
class CoarseLockBst {
 public:
  using key_type = Key;
  static constexpr const char* kName = "coarse-lock-bst";

  explicit CoarseLockBst(Compare cmp = Compare{}) : cmp_(std::move(cmp)) {
    root_ = new Node(BKey::inf2(), new Node(BKey::inf1(), nullptr, nullptr),
                     new Node(BKey::inf2(), nullptr, nullptr));
  }

  CoarseLockBst(const CoarseLockBst&) = delete;
  CoarseLockBst& operator=(const CoarseLockBst&) = delete;

  ~CoarseLockBst() {
    std::vector<Node*> stack{root_};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (n->left != nullptr) stack.push_back(n->left);
      if (n->right != nullptr) stack.push_back(n->right);
      delete n;
    }
  }

  bool contains(const Key& k) const {
    std::shared_lock lock(mu_);
    const Node* l = descend(k).l;
    return cmp_.equals(k, l->key);
  }

  bool insert(const Key& k) {
    std::unique_lock lock(mu_);
    const Window w = descend(k);
    if (cmp_.equals(k, w.l->key)) return false;
    auto* new_leaf = new Node(BKey::real(k), nullptr, nullptr);
    auto* new_sibling = new Node(w.l->key, nullptr, nullptr);
    Node* new_internal =
        cmp_.less(k, w.l->key)
            ? new Node(w.l->key, new_leaf, new_sibling)
            : new Node(BKey::real(k), new_sibling, new_leaf);
    (w.p->left == w.l ? w.p->left : w.p->right) = new_internal;
    delete w.l;
    return true;
  }

  bool erase(const Key& k) {
    std::unique_lock lock(mu_);
    const Window w = descend(k);
    if (!cmp_.equals(k, w.l->key)) return false;
    EFRB_DCHECK(w.gp != nullptr);  // real-keyed leaves sit at depth >= 2
    Node* sibling = (w.p->left == w.l) ? w.p->right : w.p->left;
    (w.gp->left == w.p ? w.gp->left : w.gp->right) = sibling;
    delete w.l;
    delete w.p;
    return true;
  }

  std::size_t size() const {
    std::shared_lock lock(mu_);
    std::size_t n = 0;
    std::vector<const Node*> stack{root_};
    while (!stack.empty()) {
      const Node* node = stack.back();
      stack.pop_back();
      if (node->left == nullptr) {
        if (node->key.is_real()) ++n;
      } else {
        stack.push_back(node->left);
        stack.push_back(node->right);
      }
    }
    return n;
  }

 private:
  using BKey = BoundedKey<Key>;

  struct Node {
    BKey key;
    Node* left;
    Node* right;
    Node(BKey k, Node* l, Node* r) : key(std::move(k)), left(l), right(r) {}
  };

  struct Window {
    Node* gp;
    Node* p;
    Node* l;
  };

  Window descend(const Key& k) const {
    Node* gp = nullptr;
    Node* p = nullptr;
    Node* l = root_;
    while (l->left != nullptr) {  // internal nodes always have two children
      gp = p;
      p = l;
      l = cmp_.less(k, l->key) ? l->left : l->right;
    }
    return Window{gp, p, l};
  }

  BoundedCompare<Key, Compare> cmp_;
  mutable std::shared_mutex mu_;
  Node* root_;
};

}  // namespace efrb
