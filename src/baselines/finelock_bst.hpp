// Fine-grained (hand-over-hand / lock-coupling) leaf-oriented BST.
//
// Represents the lock-based concurrent trees of §2 (Kung & Lehman; Nurmi &
// Soisalon-Soininen): every operation — including lookups — locks nodes along
// its root-to-leaf path, holding a sliding window of at most two locked
// internal nodes (grandparent, parent). Updates operate on the window exactly
// as Figures 1/2 prescribe.
//
// Why deletion is safe: the deleter holds locks on both gp and p. Any thread
// waiting to lock p must already hold gp's lock (hand-over-hand acquisition
// order) — impossible, the deleter holds it — so when p is spliced out there
// are no waiters on p's lock and no thread positioned at or below p; p and
// the deleted leaf can be freed immediately.
//
// This baseline makes the contrast the paper draws concrete: each operation
// serializes on the lock path near the root, and lookups are writers on the
// lock words even when the tree is unchanged.
#pragma once

#include <functional>
#include <mutex>
#include <vector>

#include "core/bounded_key.hpp"
#include "util/assert.hpp"

namespace efrb {

template <typename Key, typename Compare = std::less<Key>>
class FineLockBst {
 public:
  using key_type = Key;
  static constexpr const char* kName = "finelock-bst";

  explicit FineLockBst(Compare cmp = Compare{}) : cmp_(std::move(cmp)) {
    root_ = new Node(BKey::inf2(), new Node(BKey::inf1(), nullptr, nullptr),
                     new Node(BKey::inf2(), nullptr, nullptr));
  }

  FineLockBst(const FineLockBst&) = delete;
  FineLockBst& operator=(const FineLockBst&) = delete;

  ~FineLockBst() {
    std::vector<Node*> stack{root_};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      if (n->left != nullptr) stack.push_back(n->left);
      if (n->right != nullptr) stack.push_back(n->right);
      delete n;
    }
  }

  bool contains(const Key& k) const {
    Window w = descend(k);
    const bool found = cmp_.equals(k, w.l->key);
    w.unlock();
    return found;
  }

  bool insert(const Key& k) {
    Window w = descend(k);
    if (cmp_.equals(k, w.l->key)) {
      w.unlock();
      return false;
    }
    auto* new_leaf = new Node(BKey::real(k), nullptr, nullptr);
    auto* new_sibling = new Node(w.l->key, nullptr, nullptr);
    Node* new_internal =
        cmp_.less(k, w.l->key)
            ? new Node(w.l->key, new_leaf, new_sibling)
            : new Node(BKey::real(k), new_sibling, new_leaf);
    (w.p->left == w.l ? w.p->left : w.p->right) = new_internal;
    Node* old_leaf = w.l;
    w.unlock();
    delete old_leaf;
    return true;
  }

  bool erase(const Key& k) {
    Window w = descend(k);
    if (!cmp_.equals(k, w.l->key)) {
      w.unlock();
      return false;
    }
    EFRB_DCHECK(w.gp != nullptr);  // real-keyed leaves sit at depth >= 2
    Node* sibling = (w.p->left == w.l) ? w.p->right : w.p->left;
    (w.gp->left == w.p ? w.gp->left : w.gp->right) = sibling;
    Node* dead_parent = w.p;
    Node* dead_leaf = w.l;
    w.unlock();  // no thread can reach or be waiting on dead_parent (see top)
    delete dead_parent;
    delete dead_leaf;
    return true;
  }

 private:
  using BKey = BoundedKey<Key>;

  struct Node {
    BKey key;
    // Immutable: nodes are replaced, never converted between leaf/internal.
    // descend() tests this on a node whose lock it does not yet hold, which is
    // only race-free because the field never changes.
    const bool is_leaf;
    Node* left;
    Node* right;
    std::mutex mu;  // internal nodes only (leaves are never locked)
    Node(BKey k, Node* l, Node* r)
        : key(std::move(k)), is_leaf(l == nullptr), left(l), right(r) {}
  };

  /// Sliding locked window: gp (may be null at depth 1) and p are internal and
  /// locked; l is the reached leaf (stable while p is locked).
  struct Window {
    Node* gp = nullptr;
    Node* p = nullptr;
    Node* l = nullptr;
    void unlock() {
      if (gp != nullptr) gp->mu.unlock();
      if (p != nullptr) p->mu.unlock();
      gp = p = nullptr;
    }
  };

  Window descend(const Key& k) const {
    Node* gp = nullptr;
    Node* p = root_;
    p->mu.lock();
    for (;;) {
      Node* next = cmp_.less(k, p->key) ? p->left : p->right;
      if (next->is_leaf) {
        return Window{gp, p, next};
      }
      next->mu.lock();  // acquire child before releasing grandparent
      if (gp != nullptr) gp->mu.unlock();
      gp = p;
      p = next;
    }
  }

  BoundedCompare<Key, Compare> cmp_;
  Node* root_;
};

}  // namespace efrb
