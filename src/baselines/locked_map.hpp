// std::map (red-black tree) behind a reader-writer lock — the "use the
// standard library sequential BST and wrap it" baseline a practitioner would
// reach for first. LockedStdSet is the membership flavour; LockedStdMap adds
// mapped values and models the ConcurrentMap concept so the map-level
// differential and semantics suites can compare the EFRB tree against an
// obviously-correct oracle.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <utility>

#include "baselines/set_interface.hpp"

namespace efrb {

template <typename Key, typename Compare = std::less<Key>>
class LockedStdSet {
 public:
  using key_type = Key;
  static constexpr const char* kName = "locked-std-map";

  bool contains(const Key& k) const {
    std::shared_lock lock(mu_);
    return set_.count(k) != 0;
  }

  bool insert(const Key& k) {
    std::unique_lock lock(mu_);
    return set_.emplace(k, true).second;
  }

  bool erase(const Key& k) {
    std::unique_lock lock(mu_);
    return set_.erase(k) != 0;
  }

  std::size_t size() const {
    std::shared_lock lock(mu_);
    return set_.size();
  }

  /// Number of keys in [lo, hi]. One shared-lock critical section, so the
  /// result is a consistent snapshot — and every writer waits out the scan
  /// (the contrast bench_ordered measures against the EFRB tree's lock-free
  /// weakly-consistent scans).
  std::size_t count_range(const Key& lo, const Key& hi) const {
    std::shared_lock lock(mu_);
    std::size_t n = 0;
    for (auto it = set_.lower_bound(lo);
         it != set_.end() && !set_.key_comp()(hi, it->first); ++it) {
      ++n;
    }
    return n;
  }

 private:
  mutable std::shared_mutex mu_;
  std::map<Key, bool, Compare> set_;
};

/// Map flavour with the EFRB map's operation semantics: insert is first-write
/// -wins, insert_or_assign reports whether the key was new, replace is an
/// atomic value compare-and-swap. Each operation is one critical section, so
/// every result is trivially linearizable at the lock.
template <typename Key, typename Value, typename Compare = std::less<Key>>
class LockedStdMap {
 public:
  using key_type = Key;
  using mapped_type = Value;
  static constexpr const char* kName = "locked-std-kvmap";

  bool contains(const Key& k) const {
    std::shared_lock lock(mu_);
    return map_.count(k) != 0;
  }

  std::optional<Value> get(const Key& k) const {
    std::shared_lock lock(mu_);
    auto it = map_.find(k);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  bool insert(const Key& k, Value v = Value{}) {
    std::unique_lock lock(mu_);
    return map_.emplace(k, std::move(v)).second;
  }

  /// Returns true iff k was newly inserted (false: existing value replaced).
  bool insert_or_assign(const Key& k, Value v) {
    std::unique_lock lock(mu_);
    return map_.insert_or_assign(k, std::move(v)).second;
  }

  /// Atomic value CAS: true iff k was present with value == expected.
  bool replace(const Key& k, const Value& expected, Value desired) {
    std::unique_lock lock(mu_);
    auto it = map_.find(k);
    if (it == map_.end() || !(it->second == expected)) return false;
    it->second = std::move(desired);
    return true;
  }

  Value get_or_insert(const Key& k, Value v) {
    std::unique_lock lock(mu_);
    return map_.emplace(k, std::move(v)).first->second;
  }

  bool erase(const Key& k) {
    std::unique_lock lock(mu_);
    return map_.erase(k) != 0;
  }

  std::size_t size() const {
    std::shared_lock lock(mu_);
    return map_.size();
  }

  /// Number of keys in [lo, hi] under one shared lock (see LockedStdSet).
  std::size_t count_range(const Key& lo, const Key& hi) const {
    std::shared_lock lock(mu_);
    std::size_t n = 0;
    for (auto it = map_.lower_bound(lo);
         it != map_.end() && !map_.key_comp()(hi, it->first); ++it) {
      ++n;
    }
    return n;
  }

 private:
  mutable std::shared_mutex mu_;
  std::map<Key, Value, Compare> map_;
};

// The baselines anchor the interface contract: a drift in the concepts shows
// up here first, not in a template error three layers deep in a test.
static_assert(ConcurrentSet<LockedStdSet<int>>);
static_assert(ConcurrentMap<LockedStdMap<int, int>>);

}  // namespace efrb
