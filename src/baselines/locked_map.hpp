// std::map (red-black tree) behind a reader-writer lock — the "use the
// standard library sequential BST and wrap it" baseline a practitioner would
// reach for first.
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <shared_mutex>

namespace efrb {

template <typename Key, typename Compare = std::less<Key>>
class LockedStdSet {
 public:
  using key_type = Key;
  static constexpr const char* kName = "locked-std-map";

  bool contains(const Key& k) const {
    std::shared_lock lock(mu_);
    return set_.count(k) != 0;
  }

  bool insert(const Key& k) {
    std::unique_lock lock(mu_);
    return set_.emplace(k, true).second;
  }

  bool erase(const Key& k) {
    std::unique_lock lock(mu_);
    return set_.erase(k) != 0;
  }

  std::size_t size() const {
    std::shared_lock lock(mu_);
    return set_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  std::map<Key, bool, Compare> set_;
};

}  // namespace efrb
