// Lock-free linked-list set — Harris's algorithm (the paper's reference [10])
// in Michael's hazard-pointer-compatible formulation (reference [21]).
//
// This is the technique the EFRB tree generalizes: deletion first sets a mark
// bit in the victim's successor pointer (freezing it), then physically unlinks
// it. The tree's Mark state on internal nodes (§3) plays exactly this role,
// lifted to nodes whose two child pointers live in two words.
//
// Reclamation uses the HazardPointerDomain (three hazard slots: previous node,
// current node, successor), demonstrating the §6 discussion concretely on the
// structure it was originally designed for. A node is retired by the thread
// whose CAS physically unlinks it.
//
// Retirement is routed through the same OpContext used by the tree: the
// list-level convenience methods build a tree_level context (thread_local
// hazard slot lease), while handle() returns a per-thread Handle owning a
// HazardPointerDomain::Attachment, so handle users never touch the lease.
//
// Complexity is O(n) per operation — in the evaluation it is only competitive
// at very small key ranges (experiment E2).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>

#include "core/op_context.hpp"
#include "reclaim/hazard.hpp"
#include "util/assert.hpp"

namespace efrb {

template <typename Key, typename Compare = std::less<Key>,
          typename Alloc = HeapAllocator>
class HarrisList {
 public:
  using key_type = Key;
  static constexpr const char* kName = "harris-list";

  /// Node layout, public so pool configurations (PooledHarrisList) can size
  /// their ObjectPool on it.
  struct LNode {
    const Key key;
    std::atomic<std::uintptr_t> next{0};  // bit 0 = mark ("I am deleted")
    explicit LNode(Key k) : key(std::move(k)) {}
  };
  using node_type = LNode;

  explicit HarrisList(Compare cmp = Compare{})
      : cmp_(std::move(cmp)), hp_(kMaxThreads, kHazardsPerOp) {
    head_ = make_direct(Key{});
    if constexpr (Alloc::kPooled) {
      // Route retired nodes back into the pool instead of the heap (the
      // hook's keepalive pins the pool state past this object's lifetime;
      // see reclaim/reclaimer.hpp).
      hp_.set_pool_return(alloc_.pool_hook());
    }
  }

  HarrisList(const HarrisList&) = delete;
  HarrisList& operator=(const HarrisList&) = delete;

  ~HarrisList() {
    LNode* n = head_;
    while (n != nullptr) {
      LNode* next = unmark(n->next.load(std::memory_order_relaxed));
      dispose_direct(n);
      n = next;
    }
  }

  /// Per-thread operation handle: owns a hazard slot Attachment, so its ops
  /// skip the domain's thread_local lease lookup. Thread-affine and movable,
  /// mirroring EfrbTreeMap::Handle (the list keeps no per-handle stats or
  /// backoff — its retry loops are unlink sweeps, not contended flag CAS).
  class Handle {
   public:
    Handle(Handle&&) noexcept = default;
    Handle& operator=(Handle&&) noexcept = default;
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    bool valid() const noexcept { return att_.attached(); }

    bool contains(const Key& k) const {
      auto ctx = make_ctx();
      auto h = att_.make_handle();
      typename HarrisList::Window w{};
      return list_->find(k, w, h, ctx);
    }

    bool insert(const Key& k) {
      auto ctx = make_ctx();
      auto h = att_.make_handle();
      return list_->do_insert(k, h, ctx);
    }

    bool erase(const Key& k) {
      auto ctx = make_ctx();
      auto h = att_.make_handle();
      return list_->do_erase(k, h, ctx);
    }

    /// Drain this handle's retire list (quiescent points).
    void flush() { att_.flush(); }

   private:
    friend class HarrisList;
    explicit Handle(HarrisList& list)
        : list_(&list),
          att_(list.hp_.attach()),
          cache_(list.alloc_.make_cache()) {}

    auto make_ctx() const {
      return Ctx::attached(att_, nullptr, nullptr, kNoTid, nullptr,
                           &list_->alloc_, &cache_);
    }

    HarrisList* list_;
    mutable HazardPointerDomain::Attachment att_;
    mutable typename Alloc::Cache cache_;  // private recycle chain (pool mode)
  };

  /// Create a per-thread handle (see Handle). At most one per thread should
  /// be live per kMaxThreads budget shared with lease users.
  Handle handle() { return Handle(*this); }

  bool contains(const Key& k) const {
    auto ctx = tree_ctx();
    auto h = hp_.make_handle();
    Window w{};
    return find(k, w, h, ctx);
  }

  bool insert(const Key& k) {
    auto ctx = tree_ctx();
    auto h = hp_.make_handle();
    return do_insert(k, h, ctx);
  }

  bool erase(const Key& k) {
    auto ctx = tree_ctx();
    auto h = hp_.make_handle();
    return do_erase(k, h, ctx);
  }

  std::size_t size() const {  // quiescent use only
    std::size_t n = 0;
    for (LNode* cur = unmark(head_->next.load(std::memory_order_acquire));
         cur != nullptr;
         cur = unmark(cur->next.load(std::memory_order_acquire))) {
      if (!is_marked(cur->next.load(std::memory_order_acquire))) ++n;
    }
    return n;
  }

  HazardPointerDomain& reclaimer() noexcept { return hp_; }

 private:
  using Ctx =
      OpContext<HazardPointerDomain, /*kCount=*/false, /*kTrackKeys=*/false,
                Alloc>;

  static constexpr std::size_t kMaxThreads = 64;
  static constexpr std::size_t kHazardsPerOp = 3;  // prev node, curr, next

  static constexpr bool is_marked(std::uintptr_t w) noexcept { return (w & 1) != 0; }
  static LNode* unmark(std::uintptr_t w) noexcept {
    return reinterpret_cast<LNode*>(w & ~std::uintptr_t{1});
  }
  static std::uintptr_t pack(LNode* n, bool mark) noexcept {
    return reinterpret_cast<std::uintptr_t>(n) | (mark ? 1 : 0);
  }

  struct Window {
    std::atomic<std::uintptr_t>* prev;  // word that pointed at curr
    LNode* curr;                        // first node with key >= k (or null)
  };

  Ctx tree_ctx() const {
    return Ctx::tree_level(hp_, nullptr, &alloc_,
                           Alloc::kPooled ? alloc_.local_cache() : nullptr);
  }

  /// Structure-lifetime allocation (head sentinel, destructor walk): same
  /// pool as the operations, through the thread_local lease cache.
  template <typename... Args>
  LNode* make_direct(Args&&... args) {
    if constexpr (Alloc::kPooled) {
      return alloc_.template create<LNode>(*alloc_.local_cache(),
                                           std::forward<Args>(args)...);
    } else {
      return new LNode(std::forward<Args>(args)...);
    }
  }

  void dispose_direct(LNode* n) noexcept {
    if (n == nullptr) return;
    if constexpr (Alloc::kPooled) {
      alloc_.template destroy<LNode>(*alloc_.local_cache(), n);
    } else {
      delete n;
    }
  }

  bool do_insert(const Key& k, HazardPointerDomain::Handle& h, Ctx& ctx) {
    auto* node = ctx.template make<LNode>(k);
    for (;;) {
      Window w{};
      if (find(k, w, h, ctx)) {
        ctx.dispose(node);  // never published
        return false;
      }
      node->next.store(pack(w.curr, false), std::memory_order_relaxed);
      std::uintptr_t expected = pack(w.curr, false);
      if (w.prev->compare_exchange_strong(expected, pack(node, false),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        return true;
      }
    }
  }

  bool do_erase(const Key& k, HazardPointerDomain::Handle& h, Ctx& ctx) {
    for (;;) {
      Window w{};
      if (!find(k, w, h, ctx)) return false;
      // Logical deletion: set the mark bit on the victim's successor word.
      // Only the thread whose CAS installs the mark owns the deletion.
      const std::uintptr_t succ_word =
          w.curr->next.load(std::memory_order_acquire);
      if (is_marked(succ_word)) continue;  // already logically deleted; re-find
      std::uintptr_t expected = succ_word;
      if (!w.curr->next.compare_exchange_strong(expected, succ_word | 1,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
        continue;
      }
      // Physical unlink; on failure, a find() sweep performs it for us.
      std::uintptr_t prev_expected = pack(w.curr, false);
      if (w.prev->compare_exchange_strong(prev_expected,
                                          pack(unmark(succ_word), false),
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        ctx.retire(w.curr);
      } else {
        Window scrap{};
        find(k, scrap, h, ctx);  // unlinks (and retires) marked nodes in the way
      }
      return true;
    }
  }

  // Michael's Find: positions the window at the first node with key >= k,
  // physically unlinking any marked node encountered (and retiring it if this
  // thread's CAS did the unlink). Hazard slots: 0 = node owning *prev,
  // 1 = curr, 2 = staging for curr's successor.
  //
  // Validation discipline: after publishing a hazard for curr we re-read
  // *prev; if it no longer points (unmarked) at curr, the snapshot is stale
  // and the traversal restarts from the head.
  bool find(const Key& k, Window& w, HazardPointerDomain::Handle& h,
            Ctx& ctx) const {
  try_again:
    std::atomic<std::uintptr_t>* prev = &head_->next;
    h.set(0, head_);
    LNode* curr = unmark(prev->load(std::memory_order_acquire));
    h.set(1, curr);
    if (unmark(prev->load(std::memory_order_acquire)) != curr ||
        is_marked(prev->load(std::memory_order_acquire))) {
      goto try_again;
    }
    while (curr != nullptr) {
      const std::uintptr_t succ_word = curr->next.load(std::memory_order_acquire);
      LNode* succ = unmark(succ_word);
      if (is_marked(succ_word)) {
        // curr is logically deleted: unlink it from *prev.
        std::uintptr_t expected = pack(curr, false);
        if (!prev->compare_exchange_strong(expected, pack(succ, false),
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
          goto try_again;
        }
        ctx.retire(curr);
        h.set(1, succ);
        if (unmark(prev->load(std::memory_order_acquire)) != succ) goto try_again;
        curr = succ;
        continue;
      }
      // Protect succ before we may step onto it.
      h.set(2, succ);
      if (curr->next.load(std::memory_order_seq_cst) != succ_word) goto try_again;
      if (!cmp_(curr->key, k)) {  // curr->key >= k
        w.prev = prev;
        w.curr = curr;
        return !cmp_(k, curr->key);  // equal?
      }
      // Advance: curr becomes the prev node, succ becomes curr.
      h.set(0, curr);
      prev = &curr->next;
      h.set(1, succ);
      if (prev->load(std::memory_order_acquire) != succ_word) goto try_again;
      curr = succ;
    }
    w.prev = prev;
    w.curr = nullptr;
    return false;
  }

  // Declaration order is load-bearing: the pool must be constructed before
  // the domain that recycles into it (and the PoolHook keepalive covers the
  // reverse destruction order regardless).
  [[no_unique_address]] mutable Alloc alloc_;
  Compare cmp_;
  mutable HazardPointerDomain hp_;
  LNode* head_;  // dummy; key never examined
};

/// Pool-backed list: every LNode comes from a per-structure ObjectPool and
/// recycles through the hazard-pointer domain (the list-side counterpart of
/// the tree's PooledTraits configuration).
template <typename Key, typename Compare = std::less<Key>>
using PooledHarrisList =
    HarrisList<Key, Compare,
               ObjectPool<typename HarrisList<Key, Compare>::node_type>>;

}  // namespace efrb
