// Routing policies for the sharded tree-of-trees front end (sharded_map.hpp).
//
// A router is a small, copyable value that deterministically maps every key
// to a shard index in [0, shards()). It is the only piece of the sharded
// facade that knows about key distribution, so swapping hash sharding for
// range sharding (or a learned policy fed by the KeyHeatmap balance report)
// never touches the map surface.
//
// Two policies ship here:
//
//   HashRouter   — splitmix64-finalized hash of the key's integral
//                  projection (std::hash for everything else). Spreads any
//                  key distribution evenly, including adversarial sorted or
//                  Zipf-hot streams; destroys cross-shard key locality, so
//                  ordered queries always pay the full k-way merge.
//   RangeRouter  — contiguous spans of [0, key_range) in shard order.
//                  Preserves ordering across shards (kOrderedShards lets the
//                  merge layer concatenate instead of heap-merging) and key
//                  locality for range scans, but inherits whatever skew the
//                  workload has — pair it with the ShardBalanceReport to see
//                  when a hot span has captured one shard.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>

#include "util/assert.hpp"

namespace efrb::shard {

/// What the sharded facade requires of a routing policy. `kOrderedShards`
/// declares that shard index order equals global key order (ranges), which
/// lets ordered queries skip the k-way merge.
template <typename R, typename Key>
concept ShardRouter = requires(const R& r, const Key& k) {
  { r.shards() } noexcept -> std::convertible_to<std::size_t>;
  { r.shard_of(k) } noexcept -> std::convertible_to<std::size_t>;
  { R::kName } -> std::convertible_to<const char*>;
  { R::kOrderedShards } -> std::convertible_to<bool>;
};

namespace detail {

/// splitmix64 finalizer: full-avalanche mix so that dense key ranges (the
/// common benchmark shape) do not stripe across shards in lockstep.
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

template <typename Key>
std::uint64_t key_projection(const Key& k) noexcept {
  if constexpr (std::is_convertible_v<const Key&, std::uint64_t>) {
    return static_cast<std::uint64_t>(k);
  } else {
    return static_cast<std::uint64_t>(std::hash<Key>{}(k));
  }
}

}  // namespace detail

/// Hash-sharded: shard_of(k) = mix(k) mod N. Shard index order carries no
/// key-order information.
class HashRouter {
 public:
  static constexpr const char* kName = "hash";
  static constexpr bool kOrderedShards = false;
  static constexpr std::size_t kDefaultShards = 8;

  explicit HashRouter(std::size_t shards = kDefaultShards) noexcept
      : shards_(shards == 0 ? 1 : shards) {}

  std::size_t shards() const noexcept { return shards_; }

  template <typename Key>
  std::size_t shard_of(const Key& k) const noexcept {
    return static_cast<std::size_t>(detail::mix64(detail::key_projection(k)) %
                                    shards_);
  }

 private:
  std::size_t shards_;
};

/// Range-sharded: [0, key_range) split into N equal contiguous spans (the
/// last span absorbs the rounding remainder and everything >= key_range, so
/// no key is ever unroutable). Requires keys with an integral projection.
class RangeRouter {
 public:
  static constexpr const char* kName = "range";
  static constexpr bool kOrderedShards = true;
  static constexpr std::size_t kDefaultShards = 8;
  static constexpr std::uint64_t kDefaultKeyRange = std::uint64_t{1} << 16;

  explicit RangeRouter(std::size_t shards = kDefaultShards,
                       std::uint64_t key_range = kDefaultKeyRange) noexcept
      : shards_(shards == 0 ? 1 : shards),
        range_(key_range == 0 ? 1 : key_range),
        // Rounded up so span_ * shards_ >= range_ (same scheme as the
        // KeyHeatmap buckets; RangeRouter::span_of reports actual spans).
        span_((range_ + shards_ - 1) / shards_) {}

  std::size_t shards() const noexcept { return shards_; }
  std::uint64_t key_range() const noexcept { return range_; }

  template <typename Key>
  std::size_t shard_of(const Key& k) const noexcept {
    const std::uint64_t v = detail::key_projection(k);
    const std::uint64_t i = v / span_;
    return static_cast<std::size_t>(
        i < shards_ ? i : shards_ - 1);  // clamp out-of-range keys
  }

 private:
  std::size_t shards_;
  std::uint64_t range_;
  std::uint64_t span_;
};

static_assert(ShardRouter<HashRouter, std::uint64_t>);
static_assert(ShardRouter<RangeRouter, std::uint64_t>);
static_assert(ShardRouter<HashRouter, int>);
static_assert(ShardRouter<RangeRouter, int>);

}  // namespace efrb::shard
