// Sharded "tree-of-trees" front end: N independent inner trees behind one
// ConcurrentMap/Set surface.
//
// Single-structure scalability tops out when every core funnels through one
// root and one reclaimer domain. ShardedMap partitions the key space across
// N inner trees (EFRB or chromatic — anything exposing the facade surface of
// efrb_tree.hpp / chromatic.hpp), each with its **own** reclaimer instance,
// allocator pool and stat shards, so shards share no mutable cache lines at
// all: an epoch advance, orphan sweep or pool refill on one shard never
// stalls another. Key placement is a pluggable router (shard_router.hpp) —
// hash for uniformity, range for locality — chosen independently of the
// inner tree type.
//
//   ShardedMap<Inner, Router>
//     ├── router:  key -> shard index (deterministic, copyable value)
//     ├── shards:  unique_ptr<Inner>[N]   (per-shard reclaimer/alloc/stats)
//     └── Handle:  one lazily-attached Inner::Handle per shard
//
// Handle affinity: a sharded Handle materializes an inner handle (reclaimer
// slot + stat shard + alloc cache) only for shards the thread actually
// touches — a thread pinned to one range-shard consumes exactly one slot,
// not N, which keeps handle capacity (kMaxHandles, reclaimer max_threads)
// a per-shard budget rather than a divided one.
//
// Batch APIs (multi_get / multi_insert) group keys by shard and run each
// group back-to-back through that shard's handle, answering in input order.
//
// Ordered queries: every inner tree serves its ordered tier; range /
// for_each merge the per-shard ascending runs k-way (or concatenate when
// Router::kOrderedShards — range sharding makes shard order global order),
// count_range sums per-shard counts, min/max scan the shards. Same weak
// consistency contract as the inner ordered tier: exact at quiescence; under
// concurrency every reported key was present at some point during the call.
//
// Telemetry: stats_snapshot() folds per-shard TreeStats; gauges() folds
// per-shard ReclaimGauges (per-shard views stay accessible for the
// efrb_shard_* Prometheus series and the metrics-v2 `sharding` cell — see
// shard_metrics.hpp, which also scores shard maps against windowed
// KeyHeatmap rates).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/op_context.hpp"
#include "reclaim/reclaimer.hpp"
#include "shard/shard_router.hpp"
#include "util/assert.hpp"

namespace efrb::shard {

/// Aggregate structural validation over all shards. `ok` is the conjunction;
/// counts are sums (height is the max — shard trees stand side by side, not
/// stacked). Balance-violation counts are folded in when the inner
/// validation reports them (chromatic inners).
struct ShardedValidation {
  bool ok = true;
  std::string error;  // first failing shard, prefixed with its index
  std::size_t shards = 0;
  std::size_t real_leaves = 0;
  std::size_t internals = 0;
  std::size_t height = 0;
  std::size_t red_red = 0;     // chromatic inners only
  std::size_t overweight = 0;  // chromatic inners only
};

/// N inner trees behind the facade surface the rest of the repo programs
/// against. Inner is a full tree facade type (e.g. EfrbTreeMap<...> or
/// ChromaticTreeMap<...>); Compare must order keys exactly as the inner
/// trees do (it drives the cross-shard merge and min/max selection).
template <typename Inner, typename Router = HashRouter,
          typename Compare = std::less<typename Inner::key_type>>
class ShardedMap {
 public:
  using key_type = typename Inner::key_type;
  using mapped_type = typename Inner::mapped_type;
  using Key = key_type;
  using Value = mapped_type;
  using ValidationResult = ShardedValidation;
  using Gauges = ReclaimGauges;
  /// One shard's ascending (key, value) emission, materialized for merging.
  using Run = std::vector<std::pair<typename Inner::key_type,
                                    typename Inner::mapped_type>>;
  static constexpr const char* kName = "sharded";

  static_assert(ShardRouter<Router, Key>);

  explicit ShardedMap(Router router = Router{}, Compare cmp = Compare{})
      : router_(router), cmp_(std::move(cmp)) {
    shards_.reserve(router_.shards());
    for (std::size_t i = 0; i < router_.shards(); ++i) {
      shards_.push_back(std::make_unique<Inner>());
    }
  }

  ShardedMap(const ShardedMap&) = delete;
  ShardedMap& operator=(const ShardedMap&) = delete;

  std::size_t shard_count() const noexcept { return shards_.size(); }
  const Router& router() const noexcept { return router_; }
  Inner& shard(std::size_t i) noexcept { return *shards_[i]; }
  const Inner& shard(std::size_t i) const noexcept { return *shards_[i]; }

  /// Human-readable composition for bench labels ("sharded(hash x8)").
  std::string describe() const {
    return std::string("sharded(") + Router::kName + " x" +
           std::to_string(shards_.size()) + ")";
  }

  // ---------------- Handle (per-thread fast path) ----------------

  /// One inner handle per shard, attached on first touch. Thread-affine and
  /// movable, like the inner handles it wraps; must not outlive the map.
  class Handle {
   public:
    Handle() = default;

    Handle(Handle&& other) noexcept
        : map_(std::exchange(other.map_, nullptr)),
          handles_(std::move(other.handles_)),
          last_shard_(other.last_shard_),
          tid_(other.tid_) {}

    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        detach();
        map_ = std::exchange(other.map_, nullptr);
        handles_ = std::move(other.handles_);
        last_shard_ = other.last_shard_;
        tid_ = other.tid_;
      }
      return *this;
    }

    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    ~Handle() = default;

    bool valid() const noexcept { return map_ != nullptr; }

    /// Release every attached inner handle (reclaimer slots, stat shards,
    /// alloc caches) without waiting for destruction.
    void detach() noexcept {
      for (auto& h : handles_) h.reset();
      map_ = nullptr;
    }

    bool contains(const Key& k) const { return route(k).contains(k); }

    std::optional<Value> get(const Key& k) const { return route(k).get(k); }

    bool insert(const Key& k, Value v = Value{}) {
      return route(k).insert(k, std::move(v));
    }

    bool insert_or_assign(const Key& k, Value v) {
      return route(k).insert_or_assign(k, std::move(v));
    }

    bool replace(const Key& k, const Value& expected, Value desired) {
      return route(k).replace(k, expected, std::move(desired));
    }

    Value get_or_insert(const Key& k, Value v) {
      return route(k).get_or_insert(k, std::move(v));
    }

    bool erase(const Key& k) { return route(k).erase(k); }

    /// Batch lookup: keys grouped by shard, each group answered back-to-back
    /// through that shard's handle (one attach, hot caches), results in
    /// input order.
    std::vector<std::optional<Value>> multi_get(
        const std::vector<Key>& keys) const {
      std::vector<std::optional<Value>> out(keys.size());
      for_each_shard_group(keys, [&](std::size_t s,
                                     const std::vector<std::size_t>& idx) {
        auto& h = at(s);
        for (const std::size_t i : idx) out[i] = h.get(keys[i]);
      });
      return out;
    }

    /// Batch insert; out[i] == true iff kvs[i] was newly inserted. Not
    /// atomic across keys (each key is one linearizable inner insert).
    std::vector<bool> multi_insert(
        const std::vector<std::pair<Key, Value>>& kvs) {
      std::vector<bool> out(kvs.size());
      std::vector<Key> keys;
      keys.reserve(kvs.size());
      for (const auto& kv : kvs) keys.push_back(kv.first);
      for_each_shard_group(keys, [&](std::size_t s,
                                     const std::vector<std::size_t>& idx) {
        auto& h = at(s);
        for (const std::size_t i : idx) {
          out[i] = h.insert(kvs[i].first, kvs[i].second);
        }
      });
      return out;
    }

    std::optional<Key> min_key() const {
      return scan_extreme([](auto& h) { return h.min_key(); }, /*min=*/true);
    }
    std::optional<Key> max_key() const {
      return scan_extreme([](auto& h) { return h.max_key(); }, /*min=*/false);
    }

    std::optional<Key> find_ge(const Key& k) const {
      return scan_extreme([&](auto& h) { return h.find_ge(k); }, true);
    }
    std::optional<Key> find_gt(const Key& k) const {
      return scan_extreme([&](auto& h) { return h.find_gt(k); }, true);
    }
    std::optional<Key> find_le(const Key& k) const {
      return scan_extreme([&](auto& h) { return h.find_le(k); }, false);
    }
    std::optional<Key> find_lt(const Key& k) const {
      return scan_extreme([&](auto& h) { return h.find_lt(k); }, false);
    }

    template <typename Fn>
    void range(const Key& lo, const Key& hi, Fn&& fn) const {
      std::vector<Run> runs = collect(
          [&](auto& h, auto&& sink) { h.range(lo, hi, sink); });
      merge_runs(map_->cmp_, std::move(runs), Router::kOrderedShards,
                 std::forward<Fn>(fn));
    }

    std::size_t count_range(const Key& lo, const Key& hi) const {
      std::size_t n = 0;
      for (std::size_t s = 0; s < map_->shard_count(); ++s) {
        n += at(s).count_range(lo, hi);
      }
      return n;
    }

    template <typename Fn>
    void for_each(Fn&& fn) const {
      std::vector<Run> runs =
          collect([&](auto& h, auto&& sink) { h.for_each(sink); });
      merge_runs(map_->cmp_, std::move(runs), Router::kOrderedShards,
                 std::forward<Fn>(fn));
    }

    /// Flush every attached shard's retired backlog.
    void flush() {
      for (auto& h : handles_) {
        if (h.has_value()) h->flush();
      }
    }

    unsigned tid() const noexcept { return tid_; }

    bool last_op_retried() const noexcept {
      return last_shard_ < handles_.size() &&
             handles_[last_shard_].has_value() &&
             handles_[last_shard_]->last_op_retried();
    }

    /// Number of shards this handle has actually attached to — the affinity
    /// observable the tests key on.
    std::size_t attached_shards() const noexcept {
      std::size_t n = 0;
      for (const auto& h : handles_) n += h.has_value() ? 1 : 0;
      return n;
    }

   private:
    friend class ShardedMap;

    explicit Handle(ShardedMap* m)
        : map_(m),
          handles_(m->shard_count()),
          tid_(m->next_tid_.fetch_add(1, std::memory_order_relaxed)) {}

    /// The inner handle for shard s, attached on first use.
    typename Inner::Handle& at(std::size_t s) const {
      EFRB_DCHECK(valid() && s < handles_.size());
      if (!handles_[s].has_value()) {
        handles_[s].emplace(map_->shards_[s]->handle());
      }
      return *handles_[s];
    }

    typename Inner::Handle& route(const Key& k) const {
      const std::size_t s = map_->router_.shard_of(k);
      last_shard_ = s;
      return at(s);
    }

    /// Group key indices by shard, densest-first not required — shard index
    /// order keeps range-routed batches in ascending key order.
    template <typename Fn>
    void for_each_shard_group(const std::vector<Key>& keys, Fn&& fn) const {
      std::vector<std::vector<std::size_t>> groups(map_->shard_count());
      for (std::size_t i = 0; i < keys.size(); ++i) {
        groups[map_->router_.shard_of(keys[i])].push_back(i);
      }
      for (std::size_t s = 0; s < groups.size(); ++s) {
        if (!groups[s].empty()) fn(s, groups[s]);
      }
    }

    template <typename Get>
    std::optional<Key> scan_extreme(Get&& get, bool min) const {
      std::optional<Key> best;
      for (std::size_t s = 0; s < map_->shard_count(); ++s) {
        const std::optional<Key> c = get(at(s));
        if (!c.has_value()) continue;
        if (!best.has_value() ||
            (min ? map_->cmp_(*c, *best) : map_->cmp_(*best, *c))) {
          best = c;
        }
      }
      return best;
    }

    template <typename Visit>
    std::vector<Run> collect(Visit&& visit) const {
      std::vector<Run> runs(map_->shard_count());
      for (std::size_t s = 0; s < map_->shard_count(); ++s) {
        Run& run = runs[s];
        visit(at(s), [&run](const Key& k, const Value& v) {
          run.emplace_back(k, v);
        });
      }
      return runs;
    }

    ShardedMap* map_ = nullptr;
    mutable std::vector<std::optional<typename Inner::Handle>> handles_;
    mutable std::size_t last_shard_ = 0;
    unsigned tid_ = kNoTid;
  };

  Handle handle() { return Handle(this); }

  // ---------------- Tree-level surface (routes + delegates) ----------------

  bool contains(const Key& k) const { return route(k).contains(k); }

  std::optional<Value> get(const Key& k) const { return route(k).get(k); }

  bool insert(const Key& k, Value v = Value{}) {
    return route(k).insert(k, std::move(v));
  }

  bool insert_or_assign(const Key& k, Value v) {
    return route(k).insert_or_assign(k, std::move(v));
  }

  bool replace(const Key& k, const Value& expected, Value desired) {
    return route(k).replace(k, expected, std::move(desired));
  }

  Value get_or_insert(const Key& k, Value v) {
    return route(k).get_or_insert(k, std::move(v));
  }

  bool erase(const Key& k) { return route(k).erase(k); }

  std::vector<std::optional<Value>> multi_get(
      const std::vector<Key>& keys) const {
    std::vector<std::optional<Value>> out(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) out[i] = get(keys[i]);
    return out;
  }

  std::vector<bool> multi_insert(
      const std::vector<std::pair<Key, Value>>& kvs) {
    std::vector<bool> out(kvs.size());
    for (std::size_t i = 0; i < kvs.size(); ++i) {
      out[i] = insert(kvs[i].first, kvs[i].second);
    }
    return out;
  }

  std::optional<Key> min_key() const {
    return scan_extreme([](const Inner& t) { return t.min_key(); }, true);
  }
  std::optional<Key> max_key() const {
    return scan_extreme([](const Inner& t) { return t.max_key(); }, false);
  }

  std::optional<Key> find_ge(const Key& k) const {
    return scan_extreme([&](const Inner& t) { return t.find_ge(k); }, true);
  }
  std::optional<Key> find_gt(const Key& k) const {
    return scan_extreme([&](const Inner& t) { return t.find_gt(k); }, true);
  }
  std::optional<Key> find_le(const Key& k) const {
    return scan_extreme([&](const Inner& t) { return t.find_le(k); }, false);
  }
  std::optional<Key> find_lt(const Key& k) const {
    return scan_extreme([&](const Inner& t) { return t.find_lt(k); }, false);
  }

  template <typename Fn>
  void range(const Key& lo, const Key& hi, Fn&& fn) const {
    std::vector<Run> runs = collect(
        [&](const Inner& t, auto&& sink) { t.range(lo, hi, sink); });
    merge_runs(cmp_, std::move(runs), Router::kOrderedShards,
               std::forward<Fn>(fn));
  }

  std::size_t count_range(const Key& lo, const Key& hi) const {
    std::size_t n = 0;
    for (const auto& t : shards_) n += t->count_range(lo, hi);
    return n;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::vector<Run> runs =
        collect([&](const Inner& t, auto&& sink) { t.for_each(sink); });
    merge_runs(cmp_, std::move(runs), Router::kOrderedShards,
               std::forward<Fn>(fn));
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& t : shards_) n += t->size();
    return n;
  }

  bool empty() const {
    for (const auto& t : shards_) {
      if (!t->empty()) return false;
    }
    return true;
  }

  ValidationResult validate() const {
    ValidationResult out;
    out.shards = shards_.size();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const auto v = shards_[s]->validate();
      if (!v.ok && out.ok) {
        out.ok = false;
        out.error = "shard " + std::to_string(s) + ": " + v.error;
      }
      out.real_leaves += v.real_leaves;
      out.internals += v.internals;
      out.height = std::max(out.height, v.height);
      if constexpr (requires { v.red_red; }) {
        out.red_red += v.red_red;
        out.overweight += v.overweight;
      }
    }
    return out;
  }

  TreeStats stats() const noexcept { return stats_snapshot(); }

  /// Per-shard TreeStats folded into one snapshot (sums; depth_max by max).
  TreeStats stats_snapshot() const noexcept {
    TreeStats s;
    for (const auto& t : shards_) accumulate(s, t->stats_snapshot());
    return s;
  }

  /// One shard's reclaimer gauges — the per-shard series the observability
  /// layer exports (efrb_shard_* / the metrics-v2 `sharding` cell).
  Gauges shard_gauges(std::size_t i) const noexcept {
    return shards_[i]->reclaimer().gauges();
  }

  /// All shards' gauges folded (sums; epoch by max — epochs advance
  /// independently per shard, so the sum would be meaningless).
  Gauges gauges() const noexcept {
    Gauges g;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const Gauges s = shard_gauges(i);
      g.retired_total += s.retired_total;
      g.freed_total += s.freed_total;
      g.orphan_depth += s.orphan_depth;
      g.pins += s.pins;
      g.unpins += s.unpins;
      g.epoch = std::max(g.epoch, s.epoch);
    }
    return g;
  }

  /// One shard's TreeStats, for per-shard load attribution.
  TreeStats shard_stats(std::size_t i) const noexcept {
    return shards_[i]->stats_snapshot();
  }

 private:
  Inner& route(const Key& k) { return *shards_[router_.shard_of(k)]; }
  const Inner& route(const Key& k) const {
    return *shards_[router_.shard_of(k)];
  }

  template <typename Get>
  std::optional<Key> scan_extreme(Get&& get, bool min) const {
    std::optional<Key> best;
    for (const auto& t : shards_) {
      const std::optional<Key> c = get(*t);
      if (!c.has_value()) continue;
      if (!best.has_value() || (min ? cmp_(*c, *best) : cmp_(*best, *c))) {
        best = c;
      }
    }
    return best;
  }

  template <typename Visit>
  std::vector<Run> collect(Visit&& visit) const {
    std::vector<Run> runs(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Run& run = runs[s];
      visit(*shards_[s], [&run](const Key& k, const Value& v) {
        run.emplace_back(k, v);
      });
    }
    return runs;
  }

  /// Merge per-shard ascending runs into one globally ascending emission.
  /// Range-sharded runs are already globally ordered in shard-index order
  /// (concatenate); hash-sharded runs interleave, so pick the smallest run
  /// front each step — a linear scan over <= N run heads beats a heap for
  /// the shard counts this facade targets (single digits to low tens).
  template <typename Fn>
  static void merge_runs(const Compare& cmp, std::vector<Run> runs,
                         bool ordered, Fn&& fn) {
    if (ordered) {
      for (const Run& run : runs) {
        for (const auto& [k, v] : run) fn(k, v);
      }
      return;
    }
    std::vector<std::size_t> pos(runs.size(), 0);
    for (;;) {
      std::size_t best = runs.size();
      for (std::size_t s = 0; s < runs.size(); ++s) {
        if (pos[s] >= runs[s].size()) continue;
        if (best == runs.size() ||
            cmp(runs[s][pos[s]].first, runs[best][pos[best]].first)) {
          best = s;
        }
      }
      if (best == runs.size()) return;
      const auto& [k, v] = runs[best][pos[best]];
      fn(k, v);
      ++pos[best];
    }
  }

  Router router_;
  Compare cmp_;
  std::vector<std::unique_ptr<Inner>> shards_;
  std::atomic<unsigned> next_tid_{0};
};

/// Set flavour mirroring EfrbTreeSet/ChromaticTreeSet: any Inner whose
/// mapped type is the empty Unit.
template <typename Inner, typename Router = HashRouter>
using ShardedSet = ShardedMap<Inner, Router>;

}  // namespace efrb::shard
