// Shard-balance scoring and the observability exports of the sharded front
// end — this is where the PR 5 loop closes: the KeyHeatmap already says
// *where* in the key space the load lives; scoring a router against a
// windowed heatmap delta says whether the *current shard map* spreads that
// load, before and without re-sharding anything.
//
//   heatmap window (two snapshots)  ──►  score_shard_map(router, ...)
//                                          │ attribute each bucket's delta
//                                          │ to the shard(s) its keys route
//                                          ▼
//                                   ShardBalanceReport
//                                          │
//              metrics v2 `sharding` cell  ┴  Prometheus efrb_shard_* series
//
// Attribution: a heatmap bucket spans a contiguous key range, which a hash
// router scatters across shards — so each bucket's delta is split by probing
// up to kProbesPerBucket evenly spaced keys through the router and dividing
// the bucket's events proportionally. Range routers resolve every probe of a
// bucket to one or two shards, so attribution is near-exact; the residual
// from integer division is given to the first probed shard (totals are
// conserved exactly).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/heatmap.hpp"
#include "obs/json.hpp"
#include "obs/prom.hpp"
#include "reclaim/reclaimer.hpp"
#include "shard/shard_router.hpp"
#include "util/assert.hpp"

namespace efrb::shard {

/// Load attributed to one shard over the scored window.
struct ShardLoad {
  std::uint64_t attempts = 0;   // operation rounds
  std::uint64_t contended = 0;  // cas failures + helps + retries
};

/// How well the current shard map spreads the windowed key-space load.
/// imbalance() is the headline number: 1.0 = perfectly even, N = everything
/// on one of N shards.
struct ShardBalanceReport {
  std::vector<ShardLoad> per_shard;
  std::uint64_t total_attempts = 0;
  std::uint64_t total_contended = 0;
  std::uint64_t dropped = 0;  // events without an attributable key

  std::size_t shards() const noexcept { return per_shard.size(); }

  std::size_t hottest() const noexcept {
    std::size_t best = 0;
    for (std::size_t i = 1; i < per_shard.size(); ++i) {
      if (per_shard[i].attempts > per_shard[best].attempts) best = i;
    }
    return best;
  }

  /// Max over mean attempts ratio (1.0 when idle — an empty window is not
  /// evidence of imbalance).
  double imbalance() const noexcept {
    if (per_shard.empty() || total_attempts == 0) return 1.0;
    const double mean = static_cast<double>(total_attempts) /
                        static_cast<double>(per_shard.size());
    const double peak =
        static_cast<double>(per_shard[hottest()].attempts);
    return mean == 0.0 ? 1.0 : peak / mean;
  }

  /// Share of the window's attempts landing on shard i, in [0, 1].
  double share(std::size_t i) const noexcept {
    if (total_attempts == 0) return 0.0;
    return static_cast<double>(per_shard[i].attempts) /
           static_cast<double>(total_attempts);
  }

  /// Advisory verdict used by efrb_top and the check.sh sharded stage.
  bool balanced(double threshold = 1.5) const noexcept {
    return imbalance() <= threshold;
  }
};

/// Score `router` against the heatmap delta between two snapshots (pass an
/// empty `prev` to score whole-run totals). Snapshots must come from `h`
/// (same bucket geometry). Counters are cumulative, so cur - prev is the
/// windowed rate up to a constant factor — ratios, shares and the imbalance
/// verdict are scale-free, which is all the report derives.
template <typename Router>
ShardBalanceReport score_shard_map(const Router& router,
                                   const obs::KeyHeatmap& h,
                                   const std::vector<obs::HeatBucket>& prev,
                                   const std::vector<obs::HeatBucket>& cur) {
  constexpr std::uint64_t kProbesPerBucket = 16;
  ShardBalanceReport out;
  out.per_shard.resize(router.shards());
  out.dropped = h.dropped();
  for (std::size_t b = 0; b < cur.size(); ++b) {
    const std::uint64_t width = h.bucket_width(b);
    if (width == 0) continue;
    const obs::HeatBucket& c = cur[b];
    obs::HeatBucket d = c;
    if (b < prev.size()) {
      const obs::HeatBucket& p = prev[b];
      d.attempts = c.attempts >= p.attempts ? c.attempts - p.attempts : 0;
      d.cas_failures = c.cas_failures >= p.cas_failures
                           ? c.cas_failures - p.cas_failures
                           : 0;
      d.helps = c.helps >= p.helps ? c.helps - p.helps : 0;
      d.retries = c.retries >= p.retries ? c.retries - p.retries : 0;
    }
    if (d.attempts == 0 && d.contended() == 0) continue;
    // Probe evenly spaced keys of this bucket through the router and split
    // the bucket's events across the probed shards proportionally.
    const std::uint64_t lo = b * ((h.key_range() + h.buckets() - 1) /
                                  h.buckets());
    const std::uint64_t probes = width < kProbesPerBucket ? width
                                                          : kProbesPerBucket;
    std::vector<std::uint64_t> hits(router.shards(), 0);
    for (std::uint64_t i = 0; i < probes; ++i) {
      const std::uint64_t key = lo + (i * width) / probes;
      hits[router.shard_of(key)] += 1;
    }
    std::uint64_t given_a = 0;
    std::uint64_t given_c = 0;
    std::size_t first = router.shards();
    for (std::size_t s = 0; s < hits.size(); ++s) {
      if (hits[s] == 0) continue;
      if (first == router.shards()) first = s;
      const std::uint64_t a = d.attempts * hits[s] / probes;
      const std::uint64_t ct = d.contended() * hits[s] / probes;
      out.per_shard[s].attempts += a;
      out.per_shard[s].contended += ct;
      given_a += a;
      given_c += ct;
    }
    if (first < router.shards()) {
      // Integer-division residual: conserve totals exactly.
      out.per_shard[first].attempts += d.attempts - given_a;
      out.per_shard[first].contended += d.contended() - given_c;
    }
    out.total_attempts += d.attempts;
    out.total_contended += d.contended();
  }
  return out;
}

/// Metrics-v2 `sharding` cell section: the balance report plus one gauges
/// block per shard (the per-shard reclaimer domains are the operational
/// payoff of sharding — their backlogs must be visible individually).
inline void append_sharding(obs::JsonWriter& w, const char* router_name,
                            const ShardBalanceReport& rep,
                            const std::vector<ReclaimGauges>& per_shard) {
  w.begin_object();
  w.key("router").value(router_name);
  w.key("shards").value(static_cast<std::uint64_t>(rep.shards()));
  w.key("imbalance").value(rep.imbalance());
  w.key("hottest").value(static_cast<std::uint64_t>(rep.hottest()));
  w.key("total_attempts").value(rep.total_attempts);
  w.key("total_contended").value(rep.total_contended);
  w.key("dropped").value(rep.dropped);
  w.key("per_shard").begin_array();
  for (std::size_t i = 0; i < rep.shards(); ++i) {
    w.begin_object();
    w.key("attempts").value(rep.per_shard[i].attempts);
    w.key("contended").value(rep.per_shard[i].contended);
    w.key("share").value(rep.share(i));
    if (i < per_shard.size()) {
      const ReclaimGauges& g = per_shard[i];
      w.key("retired").value(g.retired_total);
      w.key("freed").value(g.freed_total);
      w.key("backlog").value(g.backlog());
      w.key("orphans").value(g.orphan_depth);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

/// Prometheus efrb_shard_* vocabulary. Every series carries a `shard` label
/// on top of the caller's labels; the scalar verdicts are emitted unlabeled
/// (per cell) so dashboards can alert on imbalance without aggregating.
inline void append_sharding_prom(obs::PromWriter& w,
                                 const obs::PromWriter::Labels& labels,
                                 const ShardBalanceReport& rep,
                                 const std::vector<ReclaimGauges>& per_shard) {
  w.add("efrb_shard_count", obs::PromType::kGauge,
        "Number of shards behind the sharded facade", labels,
        static_cast<std::uint64_t>(rep.shards()));
  w.add("efrb_shard_imbalance", obs::PromType::kGauge,
        "Max-over-mean windowed attempts across shards (1.0 = even)", labels,
        rep.imbalance());
  for (std::size_t i = 0; i < rep.shards(); ++i) {
    obs::PromWriter::Labels l = labels;
    l.emplace_back("shard", std::to_string(i));
    w.add("efrb_shard_attempts_total", obs::PromType::kCounter,
          "Windowed operation rounds attributed to this shard", l,
          rep.per_shard[i].attempts);
    w.add("efrb_shard_contended_total", obs::PromType::kCounter,
          "Windowed contention events attributed to this shard", l,
          rep.per_shard[i].contended);
    if (i < per_shard.size()) {
      const ReclaimGauges& g = per_shard[i];
      w.add("efrb_shard_reclaim_backlog", obs::PromType::kGauge,
            "Retired-but-not-freed objects in this shard's reclaimer domain",
            l, g.backlog());
      w.add("efrb_shard_reclaim_orphans", obs::PromType::kGauge,
            "Entries parked in this shard's orphan store", l, g.orphan_depth);
    }
  }
}

}  // namespace efrb::shard
