// The machine-readable metrics document: a stable, schema-versioned JSON
// bundle of everything a benchmark run knows — workload configuration,
// throughput result, protocol step counters, latency histograms, and
// reclaimer gauges — so the BENCH_*.json perf-trajectory files (and any
// external tooling) consume one self-describing format instead of scraping
// text tables.
//
// Document shape (kMetricsSchemaVersion = 4):
//   {
//     "schema": "efrb-metrics",
//     "schema_version": 4,
//     "tool": "<bench binary name>",
//     "meta": { hostname, cpu_model, ... },  // optional, script-injected
//     "cells": [
//       {
//         "name": "...",                 // structure / cell label
//         "config": { threads, key_range, mix, duration_ms, ... },
//         "result": { finds, inserts, ..., seconds, mops },
//         "tree_stats": { ... },         // optional, when counted
//         "gauges": { ... },             // optional, when exposed
//         "latency": {                   // optional, when sampled; each
//           "find": { histogram }, ...   // histogram carries "saturated"
//         },
//         "timeseries": {                // optional, when a poller ran
//           "samples": [...], "windows": [...]
//         },
//         "heatmap": { ... },            // optional, when a heatmap fed
//         "causality": { ... },          // optional, when causal-traced
//         "profile": { ... }             // optional, when a profiler ran
//       }, ...
//     ]
//   }
// v1 -> v2: histograms gained the "saturated" count (records clamped into
// the top bucket), and cells gained the optional "timeseries" (windowed-rate
// series from obs/timeseries.hpp) and "heatmap" (key-space contention from
// obs/heatmap.hpp) sections. Consumers MUST ignore unknown keys; producers
// bump kMetricsSchemaVersion only on breaking changes (removing/renaming
// keys or changing meanings — the v2 bump marks the "saturated" semantics
// change: the top bucket now separates measured tail from clamp artifacts).
// v2 -> v3: cells gained the optional "causality" section (the help-chain
// attribution matrix from obs/causal.hpp) and the "latency" section gained
// the self_completed / helper_completed histogram pair. The version bump
// marks the latency semantics change: with a causal registry attached, the
// per-type histograms no longer describe purely self-completed work — the
// split pair is the authoritative decomposition. docs/OBSERVABILITY.md is
// the schema's prose home.
// v3 -> v4: cells gained the optional "profile" section (per-phase cost
// attribution and hardware counters from obs/profile.hpp / obs/perfctr.hpp),
// and documents may carry an optional top-level "meta" object (host, CPU
// model, governor, perf_event_paranoid, repeats — written by
// scripts/bench_json.sh, consumed by tools/efrb_perfdiff to refuse
// cross-host comparisons). The version bump marks a semantics commitment,
// not a key change: inside "profile", hardware-derived sections ("hw",
// "sw", "derived") are ABSENT — never zero-filled — when the backing
// counters were unavailable, so consumers can distinguish "measured zero"
// from "not measured".
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "core/op_context.hpp"
#include "obs/causal.hpp"
#include "obs/heatmap.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/profile.hpp"
#include "obs/timeseries.hpp"
#include "reclaim/reclaimer.hpp"
#include "workload/runner.hpp"

namespace efrb::obs {

inline constexpr int kMetricsSchemaVersion = 4;

inline void append_config(JsonWriter& w, const WorkloadConfig& cfg) {
  w.begin_object();
  w.key("threads").value(static_cast<std::uint64_t>(cfg.threads));
  w.key("key_range").value(cfg.key_range);
  w.key("mix").value(mix_name(cfg.mix));
  w.key("insert_pct").value(cfg.mix.insert_pct);
  w.key("erase_pct").value(cfg.mix.erase_pct);
  w.key("duration_ms").value(static_cast<std::int64_t>(cfg.duration.count()));
  w.key("prefill_fraction").value(cfg.prefill_fraction);
  w.key("seed").value(cfg.seed);
  w.key("zipf").value(cfg.zipf);
  if (cfg.zipf) w.key("zipf_theta").value(cfg.zipf_theta);
  w.key("use_handles").value(cfg.use_handles);
  w.end_object();
}

inline void append_result(JsonWriter& w, const WorkloadResult& r) {
  w.begin_object();
  w.key("finds").value(r.finds);
  w.key("inserts").value(r.inserts);
  w.key("erases").value(r.erases);
  w.key("ok_finds").value(r.ok_finds);
  w.key("ok_inserts").value(r.ok_inserts);
  w.key("ok_erases").value(r.ok_erases);
  w.key("total_ops").value(r.total_ops());
  w.key("seconds").value(r.seconds);
  w.key("mops").value(r.mops());
  w.end_object();
}

inline void append_tree_stats(JsonWriter& w, const TreeStats& s) {
  w.begin_object();
  w.key("insert_attempts").value(s.insert_attempts);
  w.key("insert_retries").value(s.insert_retries);
  w.key("delete_attempts").value(s.delete_attempts);
  w.key("delete_retries").value(s.delete_retries);
  w.key("helps").value(s.helps);
  w.key("backtracks").value(s.backtracks);
  // Balance telemetry (PR 7): committed rebalancing transformations and the
  // descent-depth distribution (zero everywhere for structures that do not
  // sample them, e.g. the unbalanced EFRB tree reports rotations == 0).
  w.key("rotations").value(s.rotations);
  w.key("cleanup_abandoned").value(s.cleanup_abandoned);
  w.key("depth").begin_object();
  w.key("samples").value(s.depth_samples);
  w.key("avg").value(s.depth_avg());
  w.key("max").value(s.depth_max);
  w.end_object();
  w.key("cas").begin_object();
  for (std::size_t i = 0; i < kNumCasSteps; ++i) {
    w.key(to_string(static_cast<CasStep>(i))).begin_object();
    w.key("attempts").value(s.cas_attempts[i]);
    w.key("failures").value(s.cas_failures[i]);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

inline void append_gauges(JsonWriter& w, const ReclaimGauges& g) {
  w.begin_object();
  w.key("retired_total").value(g.retired_total);
  w.key("freed_total").value(g.freed_total);
  w.key("backlog").value(g.backlog());
  w.key("orphan_depth").value(g.orphan_depth);
  w.key("pins").value(g.pins);
  w.key("unpins").value(g.unpins);
  w.key("epoch").value(g.epoch);
  w.end_object();
}

/// Histogram summary + sparse bucket dump (only non-empty buckets; lower
/// bound and count per bucket, upper bounds reconstructible from the bucket
/// math documented in docs/OBSERVABILITY.md).
inline void append_histogram(JsonWriter& w, const LatencyHistogram& h) {
  w.begin_object();
  w.key("count").value(h.count());
  w.key("mean_ns").value(h.mean());
  w.key("min_ns").value(h.min_estimate());
  w.key("max_ns").value(h.max_estimate());
  w.key("p50_ns").value(h.percentile(50));
  w.key("p90_ns").value(h.percentile(90));
  w.key("p99_ns").value(h.percentile(99));
  w.key("p999_ns").value(h.percentile(99.9));
  w.key("saturated").value(h.saturated());
  w.key("buckets").begin_array();
  h.for_each_bucket([&w](std::uint64_t lo, std::uint64_t /*hi*/,
                         std::uint64_t count) {
    w.begin_array().value(lo).value(count).end_array();
  });
  w.end_array();
  w.end_object();
}

inline void append_latency(JsonWriter& w, const LatencySamples& lat) {
  w.begin_object();
  w.key("find");
  append_histogram(w, lat.find);
  w.key("insert");
  append_histogram(w, lat.insert);
  w.key("erase");
  append_histogram(w, lat.erase);
  w.key("retried");
  append_histogram(w, lat.retried);
  // The v3 causal split (empty histograms unless the run attached a
  // CausalRegistry — see run_workload's `causal` parameter).
  w.key("self_completed");
  append_histogram(w, lat.self_completed);
  w.key("helper_completed");
  append_histogram(w, lat.helper_completed);
  w.end_object();
}

/// Causality section (v3): the helper x owner attribution matrix and
/// per-tid help totals from obs/causal.hpp.
inline void append_causality(JsonWriter& w, const CausalRegistry& c) {
  c.append_json(w);
}

/// Time-series section: the raw cumulative samples (so consumers can rebin
/// or recompute) plus the derived windowed rates, both oldest first.
inline void append_timeseries(JsonWriter& w,
                              const std::vector<PollSample>& samples) {
  w.begin_object();
  w.key("samples").begin_array();
  for (const PollSample& s : samples) {
    w.begin_object();
    w.key("t_ns").value(s.t_ns);
    w.key("ops").value(s.ops);
    w.key("cas_attempts").value(s.cas_attempts_total());
    w.key("cas_failures").value(s.cas_failures_total());
    w.key("helps").value(s.stats.helps);
    w.key("retries").value(s.stats.insert_retries + s.stats.delete_retries);
    w.key("retired").value(s.gauges.retired_total);
    w.key("freed").value(s.gauges.freed_total);
    w.key("backlog").value(s.gauges.backlog());
    w.end_object();
  }
  w.end_array();
  w.key("windows").begin_array();
  for (const WindowRates& r : window_rates(samples)) {
    w.begin_object();
    w.key("t_ns").value(r.t_ns);
    w.key("window_s").value(r.window_s);
    w.key("ops_per_s").value(r.ops_per_s);
    w.key("cas_failure_rate").value(r.cas_failure_rate);
    w.key("helps_per_s").value(r.helps_per_s);
    w.key("retries_per_s").value(r.retries_per_s);
    w.key("retired_per_s").value(r.retired_per_s);
    w.key("freed_per_s").value(r.freed_per_s);
    w.key("backlog_slope").value(r.backlog_slope);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

/// Heatmap section: bucket geometry plus one [attempts, cas_failures, helps,
/// retries] row per key-range bucket (dense — bucket index is the array
/// position), and the ASCII strip for humans paging through raw JSON.
inline void append_heatmap(JsonWriter& w, const KeyHeatmap& h) {
  const std::vector<HeatBucket> buckets = h.snapshot();
  w.begin_object();
  w.key("key_range").value(h.key_range());
  w.key("buckets").value(static_cast<std::uint64_t>(h.buckets()));
  w.key("dropped").value(h.dropped());
  // Width-normalized strip (rounded-up bucketing leaves the last populated
  // bucket narrower, and possibly dead trailing buckets, when the range does
  // not divide evenly — raw counts would render those artificially cool).
  w.key("strip").value(h.strip(buckets));
  w.key("widths").begin_array();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    w.value(h.bucket_width(i));
  }
  w.end_array();
  w.key("cells").begin_array();
  for (const HeatBucket& b : buckets) {
    w.begin_array()
        .value(b.attempts)
        .value(b.cas_failures)
        .value(b.helps)
        .value(b.retries)
        .end_array();
  }
  w.end_array();
  w.end_object();
}

/// Profile section (v4): per-phase cost attribution plus whatever hardware/
/// software counters the host granted. The "hw", "sw" and "derived"
/// sub-objects are emitted only when their backing counters were collected
/// (and inside "hw" each counter key appears only when its fd opened) — an
/// unavailable rate is absent, never zero. "cycles" fields are in
/// cycle_stamp() units; "source" names that clock ("tsc" on x86-64).
inline void append_profile(JsonWriter& w, const ProfileSnapshot& p) {
  w.begin_object();
  w.key("available").value(p.available);
  w.key("sw_available").value(p.sw_available);
  w.key("source").value(std::string_view(p.source));
  if (!p.available) {
    w.key("unavailable_reason").value(std::string_view(p.unavailable_reason));
  }
  w.key("paranoid").value(static_cast<std::int64_t>(p.paranoid));
  w.key("ops").value(p.ops);
  w.key("cycles").value(p.cycles);
  w.key("span_cycles").value(p.span_cycles);
  w.key("cycles_per_op").value(p.cycles_per_op());
  w.key("phase_cycles_sum").value(p.phase_cycles_sum());
  w.key("events_outside_op").value(p.events_outside_op);
  w.key("dropped").value(p.dropped);
  w.key("phases").begin_object();
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    w.key(to_string(static_cast<Phase>(i))).begin_object();
    w.key("cycles").value(p.phases[i].cycles);
    w.key("enters").value(p.phases[i].enters);
    w.key("share").value(p.phase_share(i));
    double est = 0;
    if (p.phase_cycles_est(i, &est)) w.key("hw_cycles_est").value(est);
    w.end_object();
  }
  w.end_object();
  if (p.available) {
    w.key("hw").begin_object();
    w.key("threads").value(static_cast<std::uint64_t>(p.hw_threads));
    if (p.hw.cycles_ok) w.key("cycles").value(p.hw.cycles);
    if (p.hw.instructions_ok) w.key("instructions").value(p.hw.instructions);
    if (p.hw.cache_references_ok) {
      w.key("cache_references").value(p.hw.cache_references);
    }
    if (p.hw.cache_misses_ok) w.key("cache_misses").value(p.hw.cache_misses);
    if (p.hw.branch_misses_ok) {
      w.key("branch_misses").value(p.hw.branch_misses);
    }
    w.key("time_enabled_ns").value(p.hw.time_enabled_ns);
    w.key("time_running_ns").value(p.hw.time_running_ns);
    w.end_object();
  }
  if (p.sw_available) {
    w.key("sw").begin_object();
    if (p.hw.task_clock_ok) w.key("task_clock_ns").value(p.hw.task_clock_ns);
    if (p.hw.context_switches_ok) {
      w.key("context_switches").value(p.hw.context_switches);
    }
    w.end_object();
  }
  if (p.available) {
    w.key("derived").begin_object();
    double v = 0;
    if (p.hw_cycles_per_op(&v)) w.key("hw_cycles_per_op").value(v);
    if (p.ipc(&v)) w.key("ipc").value(v);
    if (p.cache_miss_rate(&v)) w.key("cache_miss_rate").value(v);
    if (p.branch_miss_per_kinstr(&v)) {
      w.key("branch_miss_per_kinstr").value(v);
    }
    if (p.multiplex_scale(&v)) w.key("multiplex_scale").value(v);
    w.end_object();
  }
  w.end_object();
}

/// Builder for one metrics document. Cells are added as pre-serialized JSON
/// fragments (via the append_* helpers above or the all-in-one add_cell), so
/// callers with exotic payloads can still participate.
class MetricsDocument {
 public:
  explicit MetricsDocument(std::string tool) : tool_(std::move(tool)) {
    w_.begin_object();
    w_.key("schema").value("efrb-metrics");
    w_.key("schema_version").value(kMetricsSchemaVersion);
    w_.key("tool").value(std::string_view(tool_));
    w_.key("cells").begin_array();
  }

  /// Open a cell object; caller writes members via writer() (starting with
  /// any of the append_* helpers, each preceded by writer().key(...)), then
  /// calls end_cell().
  JsonWriter& begin_cell(std::string_view name) {
    w_.begin_object();
    w_.key("name").value(name);
    return w_;
  }
  void end_cell() { w_.end_object(); }

  /// The common whole cell: config + result, plus stats/gauges/latency/
  /// timeseries/heatmap when provided.
  void add_cell(std::string_view name, const WorkloadConfig& cfg,
                const WorkloadResult& res, const TreeStats* stats = nullptr,
                const ReclaimGauges* gauges = nullptr,
                const LatencySamples* latency = nullptr,
                const std::vector<PollSample>* timeseries = nullptr,
                const KeyHeatmap* heatmap = nullptr,
                const CausalRegistry* causal = nullptr,
                const ProfileSnapshot* profile = nullptr) {
    begin_cell(name);
    w_.key("config");
    append_config(w_, cfg);
    w_.key("result");
    append_result(w_, res);
    if (stats != nullptr) {
      w_.key("tree_stats");
      append_tree_stats(w_, *stats);
    }
    if (gauges != nullptr) {
      w_.key("gauges");
      append_gauges(w_, *gauges);
    }
    if (latency != nullptr) {
      w_.key("latency");
      append_latency(w_, *latency);
    }
    if (timeseries != nullptr) {
      w_.key("timeseries");
      append_timeseries(w_, *timeseries);
    }
    if (heatmap != nullptr) {
      w_.key("heatmap");
      append_heatmap(w_, *heatmap);
    }
    if (causal != nullptr) {
      w_.key("causality");
      append_causality(w_, *causal);
    }
    if (profile != nullptr) {
      w_.key("profile");
      append_profile(w_, *profile);
    }
    end_cell();
  }

  JsonWriter& writer() noexcept { return w_; }

  /// Close the document and return the JSON text. Call once.
  std::string finish() {
    w_.end_array();
    w_.end_object();
    return w_.take();
  }

  /// finish() + write to `path`; returns false on I/O failure.
  bool write(const std::string& path) { return write_file(path, finish()); }

 private:
  std::string tool_;
  JsonWriter w_;
};

}  // namespace efrb::obs
