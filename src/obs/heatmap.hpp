// Key-space contention heatmap: where in the key range is the protocol
// fighting?
//
// EFRB's cost model (helping, backtrack CAS, insert/delete retries) is driven
// by contention that is localized in key ranges — a Zipfian workload hammers
// a handful of hot leaves while the rest of the tree runs uncontended, and
// whole-run aggregates (TreeStats) average that signal away. KeyHeatmap
// splits [0, key_range) into N equal buckets and counts, per bucket, the
// contention events the hook seams already emit:
//
//   * attempts        — operation rounds (HookPoint::kAfterSearch)
//   * cas_failures    — protocol CAS that lost its race (on_cas with !ok)
//   * helps           — help dispatches entered (HookPoint::kBeforeHelp),
//                       attributed to the key of the operation that was
//                       blocked (that is where the conflict lives)
//   * retries         — insert/delete retry rounds (kInsertRetry/kDeleteRetry)
//
// Counters are cache-padded relaxed atomics — one line per bucket, never
// synchronization — so concurrent recording from every worker thread is
// wait-free and a live snapshot is racy-but-consistent per counter (the same
// policy as StatCounters and LatencyHistogram).
//
// Feeding it: HeatmapTraits is a debug-hooks Traits whose key-aware hooks
// (on_cas(step, ok, node, tid, key) / at(point, tid, key); see the shims in
// core/debug_hooks.hpp) forward to an installed heatmap. It sets
// kTrackKeys = true, which makes the tree's OpContext stamp each operation's
// key at entry (core/protocol.hpp) — the uninstrumented NoopTraits
// instantiation is untouched, and events whose context carries no key
// (kNoKey: tree-level calls on non-integral keys) are counted in dropped(),
// never misattributed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/debug_hooks.hpp"
#include "util/assert.hpp"
#include "util/cacheline.hpp"

namespace efrb::obs {

/// Plain snapshot of one bucket's counters (the read side; see
/// KeyHeatmap::snapshot).
struct HeatBucket {
  std::uint64_t attempts = 0;
  std::uint64_t cas_failures = 0;
  std::uint64_t helps = 0;
  std::uint64_t retries = 0;

  /// The contention signal the acceptance criteria key on: everything that
  /// is not a clean first-attempt pass.
  std::uint64_t contended() const noexcept {
    return cas_failures + helps + retries;
  }
};

class KeyHeatmap {
  struct Cell {
    std::atomic<std::uint64_t> attempts{0};
    std::atomic<std::uint64_t> cas_failures{0};
    std::atomic<std::uint64_t> helps{0};
    std::atomic<std::uint64_t> retries{0};
  };

 public:
  /// Buckets cover [0, key_range) in N equal-width ranges; keys >= key_range
  /// (and the kNoKey sentinel) are counted as dropped, not binned.
  explicit KeyHeatmap(std::uint64_t key_range, std::size_t buckets = 64)
      : range_(key_range == 0 ? 1 : key_range),
        cells_(buckets == 0 ? 1 : buckets),
        // Per-bucket width, rounded up so bucket_of(range-1) stays in range.
        width_((range_ + cells_.size() - 1) / cells_.size()) {}

  std::size_t buckets() const noexcept { return cells_.size(); }
  std::uint64_t key_range() const noexcept { return range_; }

  /// Number of keys bucket i actually covers. Because the nominal width is
  /// rounded up, the last populated bucket may span fewer keys and trailing
  /// buckets may span none at all (range 100 over 64 buckets: width 2,
  /// buckets 0..49 cover 2 keys each, 50..63 cover zero). Rate comparisons
  /// across buckets must divide by this, not by the nominal width — see
  /// strip() and the emitters in obs/metrics.hpp / obs/prom.hpp.
  std::uint64_t bucket_width(std::size_t i) const noexcept {
    if (i >= cells_.size()) return 0;
    const std::uint64_t lo = i * width_;
    if (lo >= range_) return 0;
    const std::uint64_t hi = lo + width_ < range_ ? lo + width_ : range_;
    return hi - lo;
  }

  /// Bucket index for a key, or buckets() when the key is not attributable
  /// (kNoKey or outside [0, key_range)).
  std::size_t bucket_of(std::uint64_t key) const noexcept {
    if (key >= range_) return cells_.size();  // also catches kNoKey
    return static_cast<std::size_t>(key / width_);
  }

  void record_attempt(std::uint64_t key) noexcept {
    bump(key, &Cell::attempts);
  }
  void record_cas_failure(std::uint64_t key) noexcept {
    bump(key, &Cell::cas_failures);
  }
  void record_help(std::uint64_t key) noexcept { bump(key, &Cell::helps); }
  void record_retry(std::uint64_t key) noexcept { bump(key, &Cell::retries); }

  /// Events that carried no attributable key (kNoKey / out-of-range).
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Relaxed snapshot, one HeatBucket per range bucket. Safe against
  /// concurrent recording (each counter is read atomically; the set is a
  /// consistent-enough picture of a moving target).
  std::vector<HeatBucket> snapshot() const {
    std::vector<HeatBucket> out(cells_.size());
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      const Cell& c = cells_[i].value;
      out[i].attempts = c.attempts.load(std::memory_order_relaxed);
      out[i].cas_failures = c.cas_failures.load(std::memory_order_relaxed);
      out[i].helps = c.helps.load(std::memory_order_relaxed);
      out[i].retries = c.retries.load(std::memory_order_relaxed);
    }
    return out;
  }

  void clear() noexcept {
    for (auto& padded : cells_) {
      padded.value.attempts.store(0, std::memory_order_relaxed);
      padded.value.cas_failures.store(0, std::memory_order_relaxed);
      padded.value.helps.store(0, std::memory_order_relaxed);
      padded.value.retries.store(0, std::memory_order_relaxed);
    }
    dropped_.store(0, std::memory_order_relaxed);
  }

  /// Width-normalized ASCII strip: intensity is linear in each bucket's
  /// contended() rate *per key* (count / bucket_width), so a uniform stream
  /// over a range that does not divide evenly still renders flat — the raw
  /// count in a half-width final bucket is half everyone else's, but its
  /// per-key rate is identical. Zero-width (dead) buckets render blank.
  std::string strip(const std::vector<HeatBucket>& buckets) const {
    static constexpr char kRamp[] = " .:-=+*#%@";
    static constexpr std::size_t kLevels = sizeof(kRamp) - 2;  // max index
    const std::size_t n =
        buckets.size() < cells_.size() ? buckets.size() : cells_.size();
    double peak = 0.0;
    std::vector<double> rates(buckets.size(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t w = bucket_width(i);
      if (w == 0) continue;
      rates[i] = static_cast<double>(buckets[i].contended()) /
                 static_cast<double>(w);
      if (rates[i] > peak) peak = rates[i];
    }
    std::string out;
    out.reserve(buckets.size());
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      std::size_t level = 0;
      if (peak > 0.0 && rates[i] > 0.0) {
        level = static_cast<std::size_t>(
            (rates[i] * static_cast<double>(kLevels) + peak - rates[i]) /
            peak);  // ceil(rate * kLevels / peak) without leaving zero blank
        if (level == 0) level = 1;
      }
      out += kRamp[level > kLevels ? kLevels : level];
    }
    return out;
  }

  /// Convenience: snapshot-and-render in one call.
  std::string strip() const { return strip(snapshot()); }

  /// One-line ASCII intensity strip over raw contended() counts, with no
  /// width normalization — only correct when every bucket covers the same
  /// number of keys (synthetic snapshots in tests). Live heatmaps should use
  /// strip(), which accounts for the rounded-up final/dead buckets.
  static std::string ascii_strip(const std::vector<HeatBucket>& buckets) {
    static constexpr char kRamp[] = " .:-=+*#%@";
    static constexpr std::size_t kLevels = sizeof(kRamp) - 2;  // max index
    std::uint64_t peak = 0;
    for (const HeatBucket& b : buckets) {
      peak = b.contended() > peak ? b.contended() : peak;
    }
    std::string out;
    out.reserve(buckets.size());
    for (const HeatBucket& b : buckets) {
      const std::size_t level =
          peak == 0 ? 0
                    : static_cast<std::size_t>((b.contended() * kLevels +
                                                peak - 1) /
                                               peak);
      out += kRamp[level > kLevels ? kLevels : level];
    }
    return out;
  }

 private:
  void bump(std::uint64_t key,
            std::atomic<std::uint64_t> Cell::* field) noexcept {
    const std::size_t i = bucket_of(key);
    if (i >= cells_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    (cells_[i].value.*field).fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t range_;
  std::vector<CachePadded<Cell>> cells_;
  std::uint64_t width_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// Debug-hooks Traits feeding an installed KeyHeatmap through the key-aware
/// hook arity. Same install/reset discipline as TraceTraits/CallbackTraits;
/// with no heatmap installed the hooks are one predictable branch. Stats stay
/// enabled so a heatmapped tree also reports its per-step breakdown, and
/// kTrackKeys makes the tree's contexts stamp operation keys.
struct HeatmapTraits {
  static constexpr bool kCountStats = true;
  static constexpr bool kSearchHelpsMarked = false;
  static constexpr bool kTrackKeys = true;

  // NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
  static inline KeyHeatmap* heatmap = nullptr;

  static void install(KeyHeatmap* h) noexcept { heatmap = h; }
  static void reset() noexcept { heatmap = nullptr; }

  static void on_cas(CasStep /*step*/, bool ok, const void* /*node*/,
                     unsigned /*tid*/, std::uint64_t key) {
    if (!ok && heatmap != nullptr) heatmap->record_cas_failure(key);
  }

  static void at(HookPoint p, unsigned /*tid*/, std::uint64_t key) {
    if (heatmap == nullptr) return;
    switch (p) {
      case HookPoint::kAfterSearch:
        heatmap->record_attempt(key);
        break;
      case HookPoint::kBeforeHelp:
        heatmap->record_help(key);
        break;
      case HookPoint::kInsertRetry:
      case HookPoint::kDeleteRetry:
        heatmap->record_retry(key);
        break;
      default:
        break;
    }
  }
};

}  // namespace efrb::obs
