// Prometheus text exposition (version 0.0.4), dependency-free.
//
// PromWriter collects (name, type, help, labels, value) samples and renders
// the standard scrape format: samples grouped by metric name in first-seen
// order, one `# HELP` / `# TYPE` pair per name, label values escaped per the
// exposition rules (backslash, double quote, newline). This is the second
// export surface next to the efrb-metrics JSON document (obs/metrics.hpp):
// JSON is the archival/trajectory format, exposition is what node_exporter-
// style scrapers and promtool understand. Benchmarks write it behind the
// shared `--prom <path>` flag (bench/bench_common.hpp); scripts/check.sh
// lints the output shape.
//
// The append_*_prom helpers mirror the JSON append_* helpers one-to-one so
// the two exports cannot drift: same source structs, same counter meanings,
// only the serialization differs. Metric naming follows the Prometheus
// conventions: `efrb_` namespace prefix, `_total` suffix on monotone
// counters, base-unit suffixes (`_seconds`, `_ns` for the latency domain the
// histograms measure in).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/op_context.hpp"
#include "obs/causal.hpp"
#include "obs/heatmap.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/profile.hpp"
#include "obs/timeseries.hpp"
#include "obs/watchdog.hpp"
#include "reclaim/reclaimer.hpp"
#include "util/assert.hpp"
#include "workload/runner.hpp"

namespace efrb::obs {

enum class PromType { kGauge, kCounter };

inline std::string_view to_string(PromType t) noexcept {
  return t == PromType::kCounter ? "counter" : "gauge";
}

/// `[a-zA-Z_:][a-zA-Z0-9_:]*` — the exposition-format metric/label name
/// grammar (labels additionally exclude ':' by convention; we never emit it).
inline bool valid_prom_name(std::string_view name) noexcept {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (const char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

/// Label-value escaping: backslash, double quote, and newline must be
/// backslash-escaped inside the quoted label value.
inline std::string prom_escape(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

class PromWriter {
 public:
  using Labels = std::vector<std::pair<std::string, std::string>>;

  /// Add one sample. Samples for the same metric name are grouped under a
  /// single HELP/TYPE header regardless of insertion order; the first help
  /// string and type win (mixed types for one name assert — that output
  /// would be rejected by any conforming scraper).
  void add(std::string_view name, PromType type, std::string_view help,
           const Labels& labels, double value) {
    Metric& m = metric_for(name, type, help);
    m.samples.push_back({render_labels(labels), format_double(value)});
  }

  /// Integer overload: counters keep exact 64-bit values instead of passing
  /// through a double.
  void add(std::string_view name, PromType type, std::string_view help,
           const Labels& labels, std::uint64_t value) {
    Metric& m = metric_for(name, type, help);
    m.samples.push_back({render_labels(labels), std::to_string(value)});
  }

  bool empty() const noexcept { return metrics_.empty(); }

  /// Render the full exposition document (trailing newline included).
  std::string render() const {
    std::string out;
    for (const Metric& m : metrics_) {
      out += "# HELP " + m.name + " " + m.help + "\n";
      out += "# TYPE " + m.name + " ";
      out += to_string(m.type);
      out += "\n";
      for (const Sample& s : m.samples) {
        out += m.name;
        out += s.labels;
        out += " ";
        out += s.value;
        out += "\n";
      }
    }
    return out;
  }

  /// render() + write to `path`; returns false on I/O failure.
  bool write(const std::string& path) const {
    return write_file(path, render());
  }

 private:
  struct Sample {
    std::string labels;  // pre-rendered `{k="v",...}` or empty
    std::string value;
  };
  struct Metric {
    std::string name;
    PromType type;
    std::string help;
    std::vector<Sample> samples;
  };

  Metric& metric_for(std::string_view name, PromType type,
                     std::string_view help) {
    EFRB_ASSERT(valid_prom_name(name) && "invalid Prometheus metric name");
    for (Metric& m : metrics_) {
      if (m.name == name) {
        EFRB_ASSERT(m.type == type && "metric re-added with a different type");
        return m;
      }
    }
    metrics_.push_back({std::string(name), type,
                        std::string(help.empty() ? "(no help)" : help),
                        {}});
    return metrics_.back();
  }

  static std::string render_labels(const Labels& labels) {
    if (labels.empty()) return std::string();
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
      EFRB_ASSERT(valid_prom_name(k) && "invalid Prometheus label name");
      if (!first) out += ",";
      first = false;
      out += k;
      out += "=\"";
      out += prom_escape(v);
      out += "\"";
    }
    out += "}";
    return out;
  }

  static std::string format_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    return std::string(buf);
  }

  std::vector<Metric> metrics_;
};

// ---------------------------------------------------------------------------
// Shared emission helpers — one per source struct, mirroring the JSON
// append_* helpers in obs/metrics.hpp. `labels` carries the cell identity
// (e.g. {{"cell","efrb hp"},{"threads","4"}}); each helper extends it with
// its own dimension labels (step, op, bucket) where the data is vectored.
// ---------------------------------------------------------------------------

inline void append_result_prom(PromWriter& w, const PromWriter::Labels& labels,
                               const WorkloadResult& r) {
  w.add("efrb_ops_total", PromType::kCounter,
        "Completed operations in the measured window", labels, r.total_ops());
  w.add("efrb_throughput_mops", PromType::kGauge,
        "Whole-run throughput in million ops per second", labels, r.mops());
  w.add("efrb_run_seconds", PromType::kGauge,
        "Measured window length in seconds", labels, r.seconds);
}

inline void append_tree_stats_prom(PromWriter& w,
                                   const PromWriter::Labels& labels,
                                   const TreeStats& s) {
  w.add("efrb_insert_retries_total", PromType::kCounter,
        "Extra Search rounds inside Insert", labels, s.insert_retries);
  w.add("efrb_delete_retries_total", PromType::kCounter,
        "Extra Search rounds inside Delete", labels, s.delete_retries);
  w.add("efrb_helps_total", PromType::kCounter,
        "Help dispatches on a non-Clean update word", labels, s.helps);
  w.add("efrb_backtracks_total", PromType::kCounter,
        "Successful backtrack CAS steps", labels, s.backtracks);
  w.add("efrb_rotations_total", PromType::kCounter,
        "Committed rebalancing transformations (balanced trees only)", labels,
        s.rotations);
  w.add("efrb_cleanup_abandoned_total", PromType::kCounter,
        "Chromatic cleanup passes that hit the round cap and parked a "
        "violation for a later op to drain",
        labels, s.cleanup_abandoned);
  w.add("efrb_depth_samples_total", PromType::kCounter,
        "Descent-depth samples recorded", labels, s.depth_samples);
  w.add("efrb_depth_avg", PromType::kGauge,
        "Mean root-to-leaf descent depth over the sampled window", labels,
        s.depth_avg());
  w.add("efrb_depth_max", PromType::kGauge,
        "Maximum observed root-to-leaf descent depth", labels, s.depth_max);
  for (std::size_t i = 0; i < kNumCasSteps; ++i) {
    PromWriter::Labels step = labels;
    step.emplace_back("step",
                      std::string(to_string(static_cast<CasStep>(i))));
    w.add("efrb_cas_attempts_total", PromType::kCounter,
          "Protocol CAS attempts by step", step, s.cas_attempts[i]);
    w.add("efrb_cas_failures_total", PromType::kCounter,
          "Failed protocol CAS by step", step, s.cas_failures[i]);
  }
}

inline void append_gauges_prom(PromWriter& w, const PromWriter::Labels& labels,
                               const ReclaimGauges& g) {
  w.add("efrb_reclaim_retired_total", PromType::kCounter,
        "Objects handed to the reclaimer", labels, g.retired_total);
  w.add("efrb_reclaim_freed_total", PromType::kCounter,
        "Objects actually freed", labels, g.freed_total);
  w.add("efrb_reclaim_backlog", PromType::kGauge,
        "Retired-but-not-freed objects (includes orphans)", labels,
        g.backlog());
  w.add("efrb_reclaim_orphan_depth", PromType::kGauge,
        "Entries parked in the orphan store", labels, g.orphan_depth);
  w.add("efrb_reclaim_epoch", PromType::kGauge,
        "Global epoch or grace round, when the policy has one", labels,
        g.epoch);
}

inline void append_histogram_prom(PromWriter& w,
                                  const PromWriter::Labels& labels,
                                  const LatencyHistogram& h) {
  w.add("efrb_latency_count", PromType::kCounter,
        "Latency records in the histogram", labels, h.count());
  struct Stat {
    const char* name;
    double value;
  };
  const Stat stats[] = {
      {"mean", h.mean()},
      {"p50", static_cast<double>(h.percentile(50))},
      {"p90", static_cast<double>(h.percentile(90))},
      {"p99", static_cast<double>(h.percentile(99))},
      {"p999", static_cast<double>(h.percentile(99.9))},
  };
  for (const Stat& s : stats) {
    PromWriter::Labels l = labels;
    l.emplace_back("stat", s.name);
    w.add("efrb_latency_ns", PromType::kGauge,
          "Operation latency summary statistics in nanoseconds", l, s.value);
  }
  w.add("efrb_latency_saturated_total", PromType::kCounter,
        "Latency records clamped into the top histogram bucket", labels,
        h.saturated());
}

/// The last window's rates — the "current" values a scraper would chart.
inline void append_window_prom(PromWriter& w, const PromWriter::Labels& labels,
                               const WindowRates& r) {
  w.add("efrb_window_seconds", PromType::kGauge,
        "Length of the most recent sampling window", labels, r.window_s);
  w.add("efrb_window_ops_per_second", PromType::kGauge,
        "Windowed throughput", labels, r.ops_per_s);
  w.add("efrb_window_cas_failure_rate", PromType::kGauge,
        "Failed over attempted protocol CAS in the window", labels,
        r.cas_failure_rate);
  w.add("efrb_window_helps_per_second", PromType::kGauge,
        "Help dispatches per second in the window", labels, r.helps_per_s);
  w.add("efrb_window_retries_per_second", PromType::kGauge,
        "Insert+delete retry rounds per second in the window", labels,
        r.retries_per_s);
  w.add("efrb_window_retired_per_second", PromType::kGauge,
        "Objects retired per second in the window", labels, r.retired_per_s);
  w.add("efrb_window_freed_per_second", PromType::kGauge,
        "Objects freed per second in the window", labels, r.freed_per_s);
  w.add("efrb_window_backlog_slope", PromType::kGauge,
        "Reclaimer backlog growth in objects per second (signed)", labels,
        r.backlog_slope);
}

inline void append_heatmap_prom(PromWriter& w, const PromWriter::Labels& labels,
                                const KeyHeatmap& h) {
  const std::vector<HeatBucket> buckets = h.snapshot();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    PromWriter::Labels l = labels;
    l.emplace_back("bucket", std::to_string(i));
    w.add("efrb_heatmap_attempts_total", PromType::kCounter,
          "Operation rounds by key-range bucket", l, buckets[i].attempts);
    w.add("efrb_heatmap_contended_total", PromType::kCounter,
          "CAS failures + helps + retries by key-range bucket", l,
          buckets[i].contended());
    // Buckets are NOT all the same size (rounded-up widths); dashboards must
    // divide the counters by this gauge before comparing buckets spatially.
    w.add("efrb_heatmap_bucket_width", PromType::kGauge,
          "Keys covered by this bucket (0 for dead trailing buckets)", l,
          h.bucket_width(i));
  }
  w.add("efrb_heatmap_dropped_total", PromType::kCounter,
        "Contention events without an attributable key", labels, h.dropped());
}

/// Help-chain attribution: per-tid given/received totals (rows with no
/// activity are elided, mirroring the JSON causality cell).
inline void append_causality_prom(PromWriter& w,
                                  const PromWriter::Labels& labels,
                                  const CausalRegistry& c) {
  for (std::size_t t = 0; t < c.max_tids(); ++t) {
    const unsigned tid = static_cast<unsigned>(t);
    const std::uint64_t given = c.helps_given(tid);
    const std::uint64_t received = c.helps_received(tid);
    if (given == 0 && received == 0) continue;
    PromWriter::Labels l = labels;
    l.emplace_back("tid", std::to_string(tid));
    w.add("efrb_help_given_total", PromType::kCounter,
          "Help dispatches this thread performed for other threads' ops", l,
          given);
    w.add("efrb_help_received_total", PromType::kCounter,
          "Help dispatches other threads performed for this thread's ops", l,
          received);
  }
  w.add("efrb_help_unattributed_total", PromType::kCounter,
        "Help dispatches dropped for lack of an owner stamp", labels,
        c.dropped_unattributed());
}

/// Profile surface (obs/profile.hpp). The always-present families come from
/// the cycle_stamp attribution clock (labelled with its source so dashboards
/// know what a "cycle" is); the efrb_profile_hw_* / derived-rate families
/// are emitted ONLY when the backing hardware counters were collected —
/// mirroring the JSON rule that unavailable rates are absent, never zero.
inline void append_profile_prom(PromWriter& w, const PromWriter::Labels& labels,
                                const ProfileSnapshot& p) {
  w.add("efrb_profile_available", PromType::kGauge,
        "1 when hardware cycle counting backed this profile, 0 in "
        "cycle-stamp fallback mode",
        labels, static_cast<std::uint64_t>(p.available ? 1 : 0));
  w.add("efrb_profile_ops_total", PromType::kCounter,
        "Operations bracketed by the phase profiler", labels, p.ops);
  {
    PromWriter::Labels l = labels;
    l.emplace_back("source", std::string(p.source));
    w.add("efrb_profile_cycles_total", PromType::kCounter,
          "Total in-operation cycles on the attribution clock", l, p.cycles);
  }
  w.add("efrb_profile_cycles_per_op", PromType::kGauge,
        "Mean in-operation cycles per operation (attribution clock)", labels,
        p.cycles_per_op());
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    PromWriter::Labels l = labels;
    l.emplace_back("phase", std::string(to_string(static_cast<Phase>(i))));
    w.add("efrb_profile_phase_cycles_total", PromType::kCounter,
          "Cycles attributed to each operation phase", l, p.phases[i].cycles);
    w.add("efrb_profile_phase_enters_total", PromType::kCounter,
          "Segment openings per phase", l, p.phases[i].enters);
    w.add("efrb_profile_phase_share", PromType::kGauge,
          "Fraction of in-op cycles attributed to each phase", l,
          p.phase_share(i));
  }
  if (p.hw.cycles_ok) {
    w.add("efrb_profile_hw_cycles_total", PromType::kCounter,
          "Hardware CPU cycles over the measured window (multiplex-scaled)",
          labels, p.hw.cycles);
  }
  if (p.hw.instructions_ok) {
    w.add("efrb_profile_hw_instructions_total", PromType::kCounter,
          "Retired instructions over the measured window", labels,
          p.hw.instructions);
  }
  if (p.hw.cache_misses_ok) {
    w.add("efrb_profile_hw_cache_misses_total", PromType::kCounter,
          "Last-level cache misses over the measured window", labels,
          p.hw.cache_misses);
  }
  if (p.hw.branch_misses_ok) {
    w.add("efrb_profile_hw_branch_misses_total", PromType::kCounter,
          "Branch mispredictions over the measured window", labels,
          p.hw.branch_misses);
  }
  if (p.hw.task_clock_ok) {
    w.add("efrb_profile_task_clock_seconds", PromType::kGauge,
          "CPU time the workers consumed (software task-clock)", labels,
          static_cast<double>(p.hw.task_clock_ns) / 1e9);
  }
  if (p.hw.context_switches_ok) {
    w.add("efrb_profile_context_switches_total", PromType::kCounter,
          "Context switches over the measured window", labels,
          p.hw.context_switches);
  }
  double v = 0;
  if (p.ipc(&v)) {
    w.add("efrb_profile_ipc", PromType::kGauge,
          "Instructions per hardware cycle", labels, v);
  }
  if (p.cache_miss_rate(&v)) {
    w.add("efrb_profile_cache_miss_rate", PromType::kGauge,
          "Cache misses over cache references", labels, v);
  }
  if (p.branch_miss_per_kinstr(&v)) {
    w.add("efrb_profile_branch_miss_per_kinstr", PromType::kGauge,
          "Branch mispredictions per thousand instructions", labels, v);
  }
}

/// Watchdog surface: the current stalled-op gauge plus the monotone stall
/// event counter.
inline void append_watchdog_prom(PromWriter& w,
                                 const PromWriter::Labels& labels,
                                 const LivenessWatchdog& wd) {
  w.add("efrb_stalled_ops", PromType::kGauge,
        "In-flight operations over the retry/wall-time budget at the last "
        "watchdog poll",
        labels, wd.stalled_now());
  w.add("efrb_stall_events_total", PromType::kCounter,
        "Stalled-operation observations across all watchdog polls", labels,
        wd.stall_events_total());
}

}  // namespace efrb::obs
