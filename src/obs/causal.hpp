// Help-chain attribution: who completed whose operation.
//
// The EFRB protocol is non-blocking because any thread that trips over an
// in-flight operation *helps* it to completion. That is great for progress
// and terrible for attribution: the thread that finishes an operation is
// often not the thread that started it, so per-thread latency numbers and
// traces silently charge work to the wrong actor. This header closes that
// gap.
//
// Mechanism: when Traits::kCausalTrace is enabled, every Info / ScxRecord is
// stamped at creation with its owner word — pack_owner(tid, op_seq), written
// before the publishing CAS so the release/acquire pair on the descriptor
// pointer also publishes the stamp (see core/layout.hpp). The help paths in
// core/protocol.hpp and core/llx_scx.hpp read the stamp and route it through
// hooks::emit_help into the 4-argument Traits::at(point, tid, key, owner)
// overload, which lands here.
//
// CausalRegistry records three things per help event:
//   * the helper x owner matrix cell helped_by[helper][owner_tid] (relaxed
//     counters — each helper writes only its own row, readers tolerate
//     slightly stale sums),
//   * helps_given / helps_received totals per tid (helps_received is the
//     word the workload runner samples around each op to split latency into
//     self-completed vs helper-completed),
//   * a bounded per-helper edge ring {ts_ns, owner} feeding Chrome flow
//     events ("s" on the helper's timeline, "f" bound into the owner's
//     enclosing op span) so chrome://tracing draws an arrow from the helping
//     span to the stalled operation it completed.
//
// CausalTraits is the ready-made debug-hooks Traits: kCausalTrace on, help
// events into an installed CausalRegistry, and (optionally) a companion
// TraceRegistry fed the usual CAS/point vocabulary plus kHelpOwner
// companion slots for the postmortem decoder.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/debug_hooks.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "util/cacheline.hpp"

namespace efrb::obs {

/// One helper -> owner edge, as retained by the per-helper edge ring.
struct HelpEdge {
  std::uint64_t ts_ns;  // registry-epoch time the help dispatch began
  std::uint64_t owner;  // packed owner word (pack_owner) of the helped op
};

/// Bounded single-writer ring of help edges. Same discipline as TraceRing:
/// storage fixed at construction, push is relaxed stores plus a release head
/// increment, oldest edges are overwritten. An edge spans two words, so a
/// reader racing a wraparound could pair a new ts with an old owner; exports
/// run at quiescence (workers joined) where the snapshot is exact, and a
/// torn live edge only mislabels one arrow, never corrupts memory.
class HelpEdgeRing {
 public:
  explicit HelpEdgeRing(std::size_t capacity = 1024)
      : ts_(capacity == 0 ? 1 : capacity), owner_(ts_.size()) {}

  HelpEdgeRing(HelpEdgeRing&& other) noexcept
      : ts_(std::move(other.ts_)),
        owner_(std::move(other.owner_)),
        head_(other.head_.load(std::memory_order_relaxed)) {}
  HelpEdgeRing& operator=(HelpEdgeRing&&) = delete;

  void push(std::uint64_t ts_ns, std::uint64_t owner) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::size_t i = static_cast<std::size_t>(h % ts_.size());
    ts_[i].store(ts_ns, std::memory_order_relaxed);
    owner_[i].store(owner, std::memory_order_relaxed);
    head_.store(h + 1, std::memory_order_release);
  }

  std::uint64_t pushed() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Retained edges, oldest first (quiescent snapshot).
  std::vector<HelpEdge> snapshot() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t n =
        head < ts_.size() ? head : static_cast<std::uint64_t>(ts_.size());
    std::vector<HelpEdge> out;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = head - n; i < head; ++i) {
      const std::size_t s = static_cast<std::size_t>(i % ts_.size());
      out.push_back({ts_[s].load(std::memory_order_relaxed),
                     owner_[s].load(std::memory_order_relaxed)});
    }
    return out;
  }

 private:
  std::vector<std::atomic<std::uint64_t>> ts_;
  std::vector<std::atomic<std::uint64_t>> owner_;
  std::atomic<std::uint64_t> head_{0};
};

class CausalRegistry {
 public:
  /// `clock` (optional) shares a TraceRegistry's epoch so flow-event
  /// timestamps line up with the trace's span timestamps; without it the
  /// registry runs its own epoch from construction.
  explicit CausalRegistry(std::size_t max_tids = 64,
                          const TraceRegistry* clock = nullptr,
                          std::size_t edge_ring_capacity = 1024)
      : clock_(clock), t0_(std::chrono::steady_clock::now()) {
    rows_.reserve(max_tids);
    edges_.reserve(max_tids);
    for (std::size_t i = 0; i < max_tids; ++i) {
      rows_.emplace_back(max_tids);
      edges_.emplace_back(edge_ring_capacity);
    }
  }

  std::size_t max_tids() const noexcept { return rows_.size(); }

  std::uint64_t now_ns() const noexcept {
    if (clock_ != nullptr) return clock_->now_ns();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

  /// Records one help dispatch: `helper` (the thread entering help_scx /
  /// help()) completed work owned by `owner` (the packed stamp read off the
  /// descriptor). Owner-less events (descriptor created by an uninstrumented
  /// path, or a tree-level convenience call) are counted and dropped.
  void record_help(unsigned helper, std::uint64_t owner) noexcept {
    if (owner == kNoOwner || helper == kNoTid || helper >= rows_.size() ||
        owner_tid(owner) >= rows_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const unsigned ot = owner_tid(owner);
    Row& row = rows_[helper].value;
    row.helped_by[ot].fetch_add(1, std::memory_order_relaxed);
    row.helps_given.fetch_add(1, std::memory_order_relaxed);
    // The owner's received counter has many writers (any helper) — still a
    // relaxed fetch_add; the runner only ever diffs it on the owner thread.
    rows_[ot].value.helps_received.fetch_add(1, std::memory_order_relaxed);
    edges_[helper].value.push(now_ns(), owner);
  }

  std::uint64_t helped_by(unsigned helper, unsigned owner) const noexcept {
    if (helper >= rows_.size() || owner >= rows_.size()) return 0;
    return rows_[helper].value.helped_by[owner].load(std::memory_order_relaxed);
  }

  std::uint64_t helps_given(unsigned tid) const noexcept {
    if (tid >= rows_.size()) return 0;
    return rows_[tid].value.helps_given.load(std::memory_order_relaxed);
  }

  std::uint64_t helps_received(unsigned tid) const noexcept {
    if (tid >= rows_.size()) return 0;
    return rows_[tid].value.helps_received.load(std::memory_order_relaxed);
  }

  std::uint64_t total_helps() const noexcept {
    std::uint64_t n = 0;
    for (std::size_t t = 0; t < rows_.size(); ++t) {
      n += helps_given(static_cast<unsigned>(t));
    }
    return n;
  }

  std::uint64_t dropped_unattributed() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  std::vector<HelpEdge> edges(unsigned tid) const {
    return tid < edges_.size() ? edges_[tid].value.snapshot()
                               : std::vector<HelpEdge>{};
  }

  /// The metrics-schema v3 "causality" cell body (the caller opens/closes the
  /// surrounding key). Rows with no activity are elided so a 64-tid registry
  /// with two busy threads stays a two-row matrix.
  void append_json(JsonWriter& w) const {
    w.begin_object();
    w.key("total_helps").value(total_helps());
    w.key("dropped_unattributed").value(dropped_unattributed());
    w.key("helped_by").begin_object();
    for (std::size_t h = 0; h < rows_.size(); ++h) {
      const unsigned helper = static_cast<unsigned>(h);
      if (helps_given(helper) == 0) continue;
      w.key(std::to_string(helper)).begin_object();
      for (std::size_t o = 0; o < rows_.size(); ++o) {
        const std::uint64_t n = helped_by(helper, static_cast<unsigned>(o));
        if (n != 0) w.key(std::to_string(o)).value(n);
      }
      w.end_object();
    }
    w.end_object();
    w.key("helps_received").begin_object();
    for (std::size_t t = 0; t < rows_.size(); ++t) {
      const std::uint64_t n = helps_received(static_cast<unsigned>(t));
      if (n != 0) w.key(std::to_string(t)).value(n);
    }
    w.end_object();
    w.end_object();
  }

  /// Flow events only (caller is inside a traceEvents array): for each help
  /// edge, an "s" (flow start) on the helper's timeline at the instant the
  /// help dispatch began and an "f" with bp:"e" on the owner's timeline at
  /// the same instant, binding the arrow into the owner's enclosing op span.
  /// Each edge gets a distinct id so arrows never merge.
  void append_flow_events(JsonWriter& w) const {
    std::uint64_t id = 0;
    for (std::size_t h = 0; h < edges_.size(); ++h) {
      for (const HelpEdge& e : edges_[h].value.snapshot()) {
        const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
        const unsigned ot = owner_tid(e.owner);
        ++id;
        w.begin_object();
        w.key("name").value("help-flow");
        w.key("cat").value("help");
        w.key("ph").value("s");
        w.key("id").value(id);
        w.key("ts").value(ts_us);
        w.key("pid").value(0);
        w.key("tid").value(static_cast<unsigned>(h));
        w.end_object();
        w.begin_object();
        w.key("name").value("help-flow");
        w.key("cat").value("help");
        w.key("ph").value("f");
        w.key("bp").value("e");
        w.key("id").value(id);
        w.key("ts").value(ts_us);
        w.key("pid").value(0);
        w.key("tid").value(ot);
        w.end_object();
      }
    }
  }

  /// Full Chrome trace: every event from `tr` plus this registry's flow
  /// arrows, one JSON stream chrome://tracing loads directly. Share the
  /// clock (construct with `&tr`) or the arrows land at the wrong offsets.
  std::string chrome_trace_with_flows(const TraceRegistry& tr) const {
    JsonWriter w;
    w.begin_object();
    w.key("displayTimeUnit").value("ns");
    w.key("traceEvents").begin_array();
    for (std::size_t tid = 0; tid < tr.max_tids(); ++tid) {
      for (const TraceEvent& e : tr.snapshot(static_cast<unsigned>(tid))) {
        TraceRegistry::append_chrome_event(w, static_cast<unsigned>(tid), e);
      }
    }
    append_flow_events(w);
    w.end_array();
    w.end_object();
    return w.take();
  }

 private:
  struct Row {
    explicit Row(std::size_t max_tids) : helped_by(max_tids) {}
    Row(Row&& other) noexcept
        : helped_by(std::move(other.helped_by)),
          helps_given(other.helps_given.load(std::memory_order_relaxed)),
          helps_received(
              other.helps_received.load(std::memory_order_relaxed)) {}
    Row& operator=(Row&&) = delete;

    std::vector<std::atomic<std::uint64_t>> helped_by;  // indexed by owner
    std::atomic<std::uint64_t> helps_given{0};
    std::atomic<std::uint64_t> helps_received{0};
  };

  const TraceRegistry* clock_;
  std::chrono::steady_clock::time_point t0_;
  std::vector<CachePadded<Row>> rows_;
  std::vector<CachePadded<HelpEdgeRing>> edges_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// Debug-hooks Traits wiring a tree for causal tracing: kCausalTrace turns
/// on the owner stamp + progress slots in core, the 4-argument at() overload
/// consumes the owner word hooks::emit_help forwards from the help paths.
/// An optional companion TraceRegistry receives the normal event vocabulary
/// plus kHelpOwner companion slots so postmortem timelines carry the help
/// graph too. Install/reset discipline as with TraceTraits.
struct CausalTraits {
  static constexpr bool kCountStats = true;
  static constexpr bool kSearchHelpsMarked = false;
  static constexpr bool kCausalTrace = true;

  // NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
  static inline CausalRegistry* registry = nullptr;
  // NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
  static inline TraceRegistry* trace = nullptr;

  static void install(CausalRegistry* r, TraceRegistry* t = nullptr) noexcept {
    registry = r;
    trace = t;
  }
  static void reset() noexcept {
    registry = nullptr;
    trace = nullptr;
  }

  static void on_cas(CasStep s, bool ok, const void* /*node*/, unsigned tid) {
    if (trace != nullptr) trace->record_cas(tid, s, ok);
  }

  static void at(HookPoint p, unsigned tid) {
    if (trace != nullptr) trace->record_point(tid, p);
  }

  /// The help-path overload (hooks::emit_help): owner is the stamp read off
  /// the descriptor being helped, kNoOwner when unattributed.
  static void at(HookPoint p, unsigned tid, std::uint64_t /*key*/,
                 std::uint64_t owner) {
    if (p == HookPoint::kBeforeHelp && registry != nullptr) {
      registry->record_help(tid, owner);
    }
    if (trace != nullptr) {
      trace->record_point(tid, p);
      if (p == HookPoint::kBeforeHelp) trace->record_help_owner(tid, owner);
    }
  }
};

}  // namespace efrb::obs
