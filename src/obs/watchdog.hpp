// Liveness watchdog: flags operations that have stopped making progress.
//
// A non-blocking tree never deadlocks, but an individual operation can still
// starve — livelocked on a hot key, stuck behind a preempted owner whose
// descriptor everyone keeps helping, or (in fault-injection runs) frozen on
// purpose. The watchdog samples the per-handle ProgressSlot words that
// kCausalTrace-enabled trees publish (core/op_context.hpp) from its own
// background thread and reports any in-flight operation exceeding a retry
// or wall-clock budget.
//
// Sampling protocol (the seqlock documented on ProgressSlot):
//   1. load op_seq with acquire — even means idle, skip (this is the
//      false-positive contract: an attached-but-idle handle is NEVER
//      flagged);
//   2. read op_key / start_ns / retries / last_step / help_depth relaxed;
//   3. re-read op_seq — if it moved, the op completed (or a new one began)
//      mid-sample: discard, never report a finished op as stalled.
//
// The watchdog owns a MetricsPoller-style thread (interval + condvar wake,
// start/stop idempotent, poll_once public for headless use) and surfaces
// results three ways: report() returns the latest StallReport snapshot,
// stall_events_total() is a monotone counter for Prometheus
// (efrb_stall_events_total), and an optional callback fires from the
// sampler thread whenever a poll finds at least one stalled op (the runner
// and efrb_top hook this).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/debug_hooks.hpp"
#include "core/op_context.hpp"

namespace efrb::obs {

/// One stalled in-flight operation, as seen by a single consistent sample.
struct StallEntry {
  unsigned tid = kNoTid;
  std::uint64_t op_seq = 0;     // the slot's (odd) sequence word
  std::uint64_t op_key = kNoKey;
  std::uint64_t age_ns = 0;     // now - start_ns at sample time
  std::uint64_t retries = 0;    // retry_pause calls within this op
  std::uint32_t last_step = kNoStep;  // latest protocol CasStep attempted
  std::uint32_t help_depth = 0;       // nested help dispatches right now
};

struct StallReport {
  std::uint64_t polls = 0;               // samples taken so far
  std::uint64_t stall_events_total = 0;  // stalled entries ever reported
  std::uint64_t sampled_in_flight = 0;   // in-flight ops seen this poll
  std::vector<StallEntry> stalled;       // this poll's offenders
};

/// Stall thresholds (namespace scope so the constructor's default argument
/// can brace-initialize it — GCC rejects that for a nested class whose
/// default member initializers are still pending inside the enclosing
/// class).
struct WatchdogBudget {
  /// Retries within one operation before it counts as stalled.
  std::uint64_t retries = 1000;
  /// Wall-clock age of one operation before it counts as stalled.
  std::uint64_t wall_ns = 100'000'000;  // 100 ms
};

class LivenessWatchdog {
 public:
  using Budget = WatchdogBudget;
  using StallCallback = std::function<void(const StallReport&)>;

  explicit LivenessWatchdog(
      const ProgressTable& table, Budget budget = Budget(),
      std::chrono::milliseconds interval = std::chrono::milliseconds(10))
      : table_(table),
        budget_(budget),
        interval_(interval.count() <= 0 ? std::chrono::milliseconds(1)
                                        : interval) {}

  ~LivenessWatchdog() { stop(); }

  LivenessWatchdog(const LivenessWatchdog&) = delete;
  LivenessWatchdog& operator=(const LivenessWatchdog&) = delete;

  Budget budget() const noexcept { return budget_; }

  /// Not thread-safe against a running watchdog; set before start().
  void set_on_stall(StallCallback cb) { on_stall_ = std::move(cb); }

  /// One sampling pass over every slot (public for headless captures and
  /// tests). Returns the fresh report; also retained for report().
  StallReport poll_once() {
    StallReport rep;
    rep.polls = polls_.fetch_add(1, std::memory_order_relaxed) + 1;
    const std::uint64_t now = steady_now_ns();
    for (const auto& padded : table_.slots) {
      const ProgressSlot& s = padded.value;
      const std::uint64_t seq = s.op_seq.load(std::memory_order_acquire);
      if ((seq & 1) == 0) continue;  // idle window: never flagged
      StallEntry e;
      e.op_seq = seq;
      e.tid = s.tid.load(std::memory_order_relaxed);
      e.op_key = s.op_key.load(std::memory_order_relaxed);
      const std::uint64_t start = s.start_ns.load(std::memory_order_relaxed);
      e.retries = s.retries.load(std::memory_order_relaxed);
      e.last_step = s.last_step.load(std::memory_order_relaxed);
      e.help_depth = s.help_depth.load(std::memory_order_relaxed);
      // Seqlock validation: if the window moved while we read, the op we
      // were inspecting completed — it cannot be stalled, drop the sample.
      if (s.op_seq.load(std::memory_order_acquire) != seq) continue;
      ++rep.sampled_in_flight;
      e.age_ns = now > start ? now - start : 0;
      if (e.retries >= budget_.retries || e.age_ns >= budget_.wall_ns) {
        rep.stalled.push_back(e);
      }
    }
    rep.stall_events_total =
        stall_events_.fetch_add(rep.stalled.size(),
                                std::memory_order_relaxed) +
        rep.stalled.size();
    {
      std::lock_guard<std::mutex> lock(report_mu_);
      last_ = rep;
    }
    if (!rep.stalled.empty() && on_stall_) on_stall_(rep);
    return rep;
  }

  /// Latest report snapshot (copy; safe from any thread).
  StallReport report() const {
    std::lock_guard<std::mutex> lock(report_mu_);
    return last_;
  }

  std::uint64_t stall_events_total() const noexcept {
    return stall_events_.load(std::memory_order_relaxed);
  }

  /// Stalled-entry count of the latest poll (the efrb_stalled_ops gauge).
  std::uint64_t stalled_now() const {
    std::lock_guard<std::mutex> lock(report_mu_);
    return last_.stalled.size();
  }

  /// Start the background sampler (idempotent); samples every interval
  /// until stop().
  void start() {
    std::lock_guard<std::mutex> start_lock(start_mu_);
    if (thread_.joinable()) return;
    stop_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(wake_mu_);
      while (!stop_.load(std::memory_order_relaxed)) {
        wake_.wait_for(lock, interval_, [this] {
          return stop_.load(std::memory_order_relaxed);
        });
        if (stop_.load(std::memory_order_relaxed)) break;
        poll_once();
      }
    });
  }

  /// Stop and join (idempotent), taking one final sample so a stall that
  /// developed in the last interval is still caught.
  void stop() {
    std::lock_guard<std::mutex> start_lock(start_mu_);
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      stop_.store(true, std::memory_order_relaxed);
    }
    wake_.notify_all();
    thread_.join();
    poll_once();
  }

 private:
  static std::uint64_t steady_now_ns() noexcept {
    // Must match ProgressSlot::start_ns's epoch (steady_clock since-epoch;
    // see OpContext::begin_op).
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  const ProgressTable& table_;
  Budget budget_;
  std::chrono::milliseconds interval_;
  StallCallback on_stall_;

  std::atomic<std::uint64_t> polls_{0};
  std::atomic<std::uint64_t> stall_events_{0};
  mutable std::mutex report_mu_;
  StallReport last_;

  mutable std::mutex start_mu_;  // guards thread_ lifecycle
  std::mutex wake_mu_;
  std::condition_variable wake_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace efrb::obs
