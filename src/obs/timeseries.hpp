// Continuous telemetry: a background poller snapshotting cumulative counters
// into a bounded ring of time-stamped samples, plus the windowed-rate math
// that turns consecutive samples into "what is happening now" numbers
// (ops/s, CAS-failure rate, help rate, retired/freed backlog slope).
//
// Pieces:
//   * PollSample — one timestamped snapshot of the cumulative counter state:
//     total ops, a TreeStats snapshot, a ReclaimGauges snapshot. Samples are
//     cumulative; rates are derived between consecutive samples so a dropped
//     sample only widens one window instead of corrupting the series.
//   * TimeSeriesRing — fixed-capacity overwrite-oldest ring of PollSamples
//     (same shape as TraceRing: a long run keeps the latest window and cannot
//     exhaust memory). Single-writer; MetricsPoller serializes reads against
//     its writer with a mutex because a PollSample is far too big to read
//     atomically.
//   * WindowRates / rates_between — reset-safe delta math: a counter that
//     went backwards (structure swapped out mid-run, stats cleared) restarts
//     the delta from the current value instead of producing a garbage
//     underflowed window. tests/timeseries_test pins this down.
//   * MetricsPoller — owns the sources (std::function providers for ops /
//     stats / gauges, any subset), the ring, and the background thread.
//     start()/stop() bracket a run; the workload runner attaches the poller
//     around its worker barrier (run_workload in workload/runner.hpp) so the
//     sampling window matches the measured window. poll_once() is public so
//     headless captures (obs_probe, efrb_top --once, tests) can sample
//     without a thread.
//
// Nothing here touches the uninstrumented hot path: the poller reads shared
// counters that already exist (stat shards, reclaimer gauges) plus an opt-in
// per-worker op counter the runner maintains only when a poller is attached.
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/op_context.hpp"
#include "reclaim/reclaimer.hpp"
#include "util/assert.hpp"

namespace efrb::obs {

/// One cumulative snapshot. `t_ns` is nanoseconds since the poller's (or
/// test's) epoch; all other fields are totals as of that instant.
struct PollSample {
  std::uint64_t t_ns = 0;
  std::uint64_t ops = 0;
  TreeStats stats;
  ReclaimGauges gauges;

  std::uint64_t cas_attempts_total() const noexcept {
    std::uint64_t n = 0;
    for (const std::uint64_t a : stats.cas_attempts) n += a;
    return n;
  }
  std::uint64_t cas_failures_total() const noexcept {
    std::uint64_t n = 0;
    for (const std::uint64_t f : stats.cas_failures) n += f;
    return n;
  }
};

/// Reset-safe counter delta: a cumulative counter observed smaller than its
/// previous reading has been reset (new structure, cleared stats); the delta
/// restarts from the current value rather than underflowing.
inline std::uint64_t monotone_delta(std::uint64_t cur,
                                    std::uint64_t prev) noexcept {
  return cur >= prev ? cur - prev : cur;
}

/// Windowed rates between two consecutive samples (prev -> cur).
struct WindowRates {
  std::uint64_t t_ns = 0;        // window end (cur.t_ns)
  double window_s = 0;           // window length
  double ops_per_s = 0;          // windowed throughput
  double cas_failure_rate = 0;   // failed / attempted protocol CAS in window
  double helps_per_s = 0;        // help dispatches per second
  double retries_per_s = 0;      // insert+delete retry rounds per second
  double retired_per_s = 0;      // objects handed to the reclaimer per second
  double freed_per_s = 0;        // objects actually freed per second
  double backlog_slope = 0;      // d(backlog)/dt, objects per second (signed)
};

inline WindowRates rates_between(const PollSample& prev,
                                 const PollSample& cur) noexcept {
  WindowRates r;
  r.t_ns = cur.t_ns;
  // Timestamps are not cumulative counters: a zero-length or backwards
  // window (samples from different poller epochs) has no meaningful rates,
  // so everything stays zero rather than dividing by a bogus dt.
  if (cur.t_ns <= prev.t_ns) return r;
  r.window_s = static_cast<double>(cur.t_ns - prev.t_ns) / 1e9;
  const double inv = 1.0 / r.window_s;
  r.ops_per_s =
      static_cast<double>(monotone_delta(cur.ops, prev.ops)) * inv;
  const std::uint64_t d_att = monotone_delta(cur.cas_attempts_total(),
                                             prev.cas_attempts_total());
  const std::uint64_t d_fail = monotone_delta(cur.cas_failures_total(),
                                              prev.cas_failures_total());
  r.cas_failure_rate =
      d_att == 0 ? 0.0
                 : static_cast<double>(d_fail) / static_cast<double>(d_att);
  r.helps_per_s =
      static_cast<double>(monotone_delta(cur.stats.helps, prev.stats.helps)) *
      inv;
  r.retries_per_s =
      static_cast<double>(
          monotone_delta(cur.stats.insert_retries, prev.stats.insert_retries) +
          monotone_delta(cur.stats.delete_retries, prev.stats.delete_retries)) *
      inv;
  r.retired_per_s = static_cast<double>(monotone_delta(
                        cur.gauges.retired_total, prev.gauges.retired_total)) *
                    inv;
  r.freed_per_s = static_cast<double>(monotone_delta(cur.gauges.freed_total,
                                                     prev.gauges.freed_total)) *
                  inv;
  r.backlog_slope = (static_cast<double>(cur.gauges.backlog()) -
                     static_cast<double>(prev.gauges.backlog())) *
                    inv;
  return r;
}

/// Fixed-capacity overwrite-oldest sample ring (capacity rounds up to a power
/// of two). Single writer; readers synchronize externally (MetricsPoller's
/// mutex) — a PollSample cannot be read atomically.
class TimeSeriesRing {
 public:
  explicit TimeSeriesRing(std::size_t capacity = 256)
      : samples_(capacity == 0 ? 1 : std::bit_ceil(capacity)) {}

  void push(const PollSample& s) noexcept {
    samples_[head_ & (samples_.size() - 1)] = s;
    ++head_;
  }

  std::size_t capacity() const noexcept { return samples_.size(); }
  /// Total samples ever pushed (monotone; exceeds capacity after wraparound).
  std::uint64_t pushed() const noexcept { return head_; }
  /// Samples lost to wraparound.
  std::uint64_t dropped() const noexcept {
    return head_ > samples_.size() ? head_ - samples_.size() : 0;
  }

  /// Retained samples, oldest first.
  std::vector<PollSample> snapshot() const {
    std::vector<PollSample> out;
    const std::uint64_t n = head_ < samples_.size()
                                ? head_
                                : static_cast<std::uint64_t>(samples_.size());
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = head_ - n; i < head_; ++i) {
      out.push_back(samples_[i & (samples_.size() - 1)]);
    }
    return out;
  }

 private:
  std::vector<PollSample> samples_;
  std::uint64_t head_ = 0;
};

/// Windowed rates over a retained sample series, one entry per consecutive
/// pair (empty for fewer than two samples).
inline std::vector<WindowRates> window_rates(
    const std::vector<PollSample>& samples) {
  std::vector<WindowRates> out;
  if (samples.size() < 2) return out;
  out.reserve(samples.size() - 1);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    out.push_back(rates_between(samples[i - 1], samples[i]));
  }
  return out;
}

/// Background sampler. Configure the sources (each optional), then either
/// drive it manually with poll_once() or start() the thread and stop() it
/// after the measured window. The runner integration
/// (run_workload(..., poller)) wires the live op counter, starts the thread
/// when the workers start, and stops it before they join — see
/// workload/runner.hpp.
class MetricsPoller {
 public:
  struct Sources {
    std::function<std::uint64_t()> ops;        // cumulative op count
    std::function<TreeStats()> stats;          // e.g. tree.stats_snapshot()
    std::function<ReclaimGauges()> gauges;     // e.g. reclaimer().gauges()
  };

  explicit MetricsPoller(
      std::chrono::milliseconds interval = std::chrono::milliseconds(100),
      std::size_t ring_capacity = 256)
      : interval_(interval.count() < 1 ? std::chrono::milliseconds(1)
                                       : interval),
        ring_(ring_capacity),
        t0_(std::chrono::steady_clock::now()) {}

  ~MetricsPoller() { stop(); }

  MetricsPoller(const MetricsPoller&) = delete;
  MetricsPoller& operator=(const MetricsPoller&) = delete;

  std::chrono::milliseconds interval() const noexcept { return interval_; }

  /// Replace the sources (not thread-safe against a running poller; set
  /// before start() / after stop()). The runner uses this to plug in and
  /// unplug its stack-local op counters around a run.
  void set_sources(Sources s) {
    std::lock_guard<std::mutex> lock(mu_);
    sources_ = std::move(s);
  }
  void set_ops_source(std::function<std::uint64_t()> ops) {
    std::lock_guard<std::mutex> lock(mu_);
    sources_.ops = std::move(ops);
  }

  /// Take one sample now. Thread-safe; this is also what the background
  /// thread calls once per interval.
  void poll_once() {
    std::lock_guard<std::mutex> lock(mu_);
    PollSample s;
    s.t_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
    if (sources_.ops) s.ops = sources_.ops();
    if (sources_.stats) s.stats = sources_.stats();
    if (sources_.gauges) s.gauges = sources_.gauges();
    ring_.push(s);
  }

  /// Start the background thread (idempotent). Samples once per interval
  /// until stop().
  void start() {
    std::lock_guard<std::mutex> start_lock(start_mu_);
    if (thread_.joinable()) return;
    stop_.store(false, std::memory_order_relaxed);
    thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(wake_mu_);
      while (!stop_.load(std::memory_order_relaxed)) {
        wake_.wait_for(lock, interval_, [this] {
          return stop_.load(std::memory_order_relaxed);
        });
        if (stop_.load(std::memory_order_relaxed)) break;
        poll_once();
      }
    });
  }

  /// Stop and join the background thread (idempotent), taking one final
  /// sample so the series always covers the full window.
  void stop() {
    std::lock_guard<std::mutex> start_lock(start_mu_);
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      stop_.store(true, std::memory_order_relaxed);
    }
    wake_.notify_all();
    thread_.join();
    poll_once();
  }

  bool running() const {
    std::lock_guard<std::mutex> start_lock(start_mu_);
    return thread_.joinable();
  }

  /// Retained samples, oldest first (mutex-consistent against the writer).
  std::vector<PollSample> samples() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.snapshot();
  }

  /// Windowed rates over the retained samples.
  std::vector<WindowRates> rates() const { return window_rates(samples()); }

  std::uint64_t samples_pushed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.pushed();
  }
  std::uint64_t samples_dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.dropped();
  }

 private:
  std::chrono::milliseconds interval_;
  mutable std::mutex mu_;  // guards ring_ and sources_
  Sources sources_;
  TimeSeriesRing ring_;
  std::chrono::steady_clock::time_point t0_;

  mutable std::mutex start_mu_;  // guards thread_ lifecycle
  std::mutex wake_mu_;
  std::condition_variable wake_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace efrb::obs
