// Minimal, dependency-free JSON writer for the observability layer.
//
// The metrics document (metrics.hpp) and the Chrome trace exporter
// (trace.hpp) both need to emit JSON; pulling in a third-party library for
// that would violate the repository's no-new-dependencies rule, and the
// write-only subset of JSON is small. JsonWriter is a straight streaming
// builder: begin/end object/array scopes, keys, scalar values, with string
// escaping and the comma bookkeeping handled internally. It never parses.
//
// Output is deterministic (insertion order) so tests can assert on
// substrings; validity is additionally checked end-to-end by the check.sh
// stage that round-trips emitted documents through `python3 -m json.tool`.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "util/assert.hpp"

namespace efrb::obs {

class JsonWriter {
 public:
  JsonWriter() { out_.reserve(256); }

  JsonWriter& begin_object() {
    prefix();
    out_ += '{';
    stack_.push_back(false);
    return *this;
  }

  JsonWriter& end_object() {
    EFRB_DCHECK(!stack_.empty());
    stack_.pop_back();
    out_ += '}';
    return *this;
  }

  JsonWriter& begin_array() {
    prefix();
    out_ += '[';
    stack_.push_back(false);
    return *this;
  }

  JsonWriter& end_array() {
    EFRB_DCHECK(!stack_.empty());
    stack_.pop_back();
    out_ += ']';
    return *this;
  }

  /// Object member key; must be followed by exactly one value or scope.
  JsonWriter& key(std::string_view k) {
    separate();
    append_string(k);
    out_ += ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view s) {
    prefix();
    append_string(s);
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b) {
    prefix();
    out_ += b ? "true" : "false";
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    prefix();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    prefix();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out_ += buf;
    return *this;
  }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(double d) {
    prefix();
    // NaN/inf are not representable in JSON; degrade to null rather than
    // emitting an invalid document.
    if (d != d || d > 1.7976931348623157e308 || d < -1.7976931348623157e308) {
      out_ += "null";
      return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", d);
    out_ += buf;
    return *this;
  }
  JsonWriter& null() {
    prefix();
    out_ += "null";
    return *this;
  }

  /// Splice an already-serialized JSON fragment in as one value.
  JsonWriter& raw(std::string_view json) {
    prefix();
    out_ += json;
    return *this;
  }

  bool complete() const noexcept { return stack_.empty() && !pending_key_; }
  const std::string& str() const noexcept { return out_; }
  std::string take() { return std::move(out_); }

 private:
  /// Comma/continuation bookkeeping before any value or scope opener.
  void prefix() {
    if (pending_key_) {
      pending_key_ = false;  // value follows its key directly
    } else {
      separate();
    }
  }

  void separate() {
    if (!stack_.empty()) {
      if (stack_.back()) out_ += ',';
      stack_.back() = true;
    }
  }

  void append_string(std::string_view s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> stack_;  // per open scope: "has at least one element"
  bool pending_key_ = false;
};

/// Write `json` to `path`; returns false (and leaves no partial file
/// guarantees) on I/O failure. Shared by the metrics and trace exporters.
inline bool write_file(const std::string& path, std::string_view json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = n == json.size() && std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace efrb::obs
