// Protocol event tracing: per-thread bounded ring buffers of timestamped
// events, fed from the Traits::on_cas / Traits::at hook seams, exported as
// Chrome trace-event JSON (loadable in chrome://tracing and Perfetto).
//
// Pieces:
//   * TraceEvent / TraceRing — a fixed-capacity, allocation-free-after-
//     construction ring. Single writer (the owning thread); when full, the
//     oldest events are overwritten, so a trace always holds the *latest*
//     window of activity and a long run cannot exhaust memory.
//   * TraceRegistry — one ring per thread id (the per-handle tid carried by
//     every hook emission), plus the shared monotonic clock epoch. Events
//     with kNoTid (tree-level convenience calls) or an out-of-range tid are
//     dropped and counted, never recorded racily.
//   * TraceTraits — a debug-hooks Traits (see core/debug_hooks.hpp) whose
//     on_cas/at implementations forward to an installed registry. Follows
//     the CallbackTraits install/reset idiom; when no registry is installed
//     the hooks are two predictable branches. NoopTraits builds are
//     untouched — tracing compiles to zero overhead unless the tree is
//     instantiated with TraceTraits.
//
// Event vocabulary: every protocol CAS (step + outcome), every hook point,
// help entry/exit (HookPoint::kBeforeHelp / kAfterHelp mapped to a Chrome
// B/E span), and op begin/end markers emitted by the workload runner's
// opt-in instrumentation. Timestamps are steady_clock nanoseconds relative
// to the registry's construction.
//
// Export contract: events are packed into single atomic words (see
// TraceEvent::pack), so snapshot()/chrome_trace_json() may run while writers
// are still recording — a live export never reads a torn event. Racing a
// wraparound can mix window generations (some slots one lap newer than
// their neighbours) and a span can open with an unmatched "E" event;
// Perfetto tolerates both (docs/OBSERVABILITY.md documents it). At
// quiescence (workers joined) the export is exact — the normal benchmark
// flow.
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/debug_hooks.hpp"
#include "obs/json.hpp"
#include "util/cacheline.hpp"

namespace efrb::obs {

enum class TraceEventKind : std::uint8_t {
  kCas,        // protocol CAS executed; code = CasStep, ok = outcome
  kPoint,      // hook point passed; code = HookPoint
  kHelpEnter,  // help dispatch entered (HookPoint::kBeforeHelp)
  kHelpExit,   // help dispatch returned (HookPoint::kAfterHelp)
  kOpBegin,    // dictionary op started; code = TraceOp
  kOpEnd,      // dictionary op finished; code = TraceOp, ok = result
  kHelpOwner,  // companion to kHelpEnter: code = owner tid, ts = owner op_seq
};

/// Operation identity for op begin/end markers (the runner's vocabulary,
/// kept here so obs does not depend on the workload layer).
enum class TraceOp : std::uint8_t { kFind, kInsert, kErase, kOther };

inline const char* to_string(TraceOp op) noexcept {
  switch (op) {
    case TraceOp::kFind: return "find";
    case TraceOp::kInsert: return "insert";
    case TraceOp::kErase: return "erase";
    case TraceOp::kOther: return "op";
  }
  return "?";
}

struct TraceEvent {
  std::uint64_t ts_ns;  // nanoseconds since the registry's epoch
  TraceEventKind kind;
  std::uint8_t code;  // CasStep / HookPoint / TraceOp, per kind
  bool ok;            // CAS outcome or op result; unused otherwise

  /// One-word packing: ts in the low 48 bits (~3.2 days of ns resolution;
  /// longer runs saturate the timestamp, never corrupt the event), code in
  /// 48..55, kind in 56..59, ok in bit 60. A packed event fits a single
  /// atomic word, which is what makes live export torn-read-free: a reader
  /// racing a wraparound sees the old event or the new one, never a hybrid
  /// of both.
  static constexpr std::uint64_t kTsMask = (std::uint64_t{1} << 48) - 1;

  std::uint64_t pack() const noexcept {
    return (ts_ns > kTsMask ? kTsMask : ts_ns) |
           (static_cast<std::uint64_t>(code) << 48) |
           (static_cast<std::uint64_t>(kind) << 56) |
           (static_cast<std::uint64_t>(ok ? 1 : 0) << 60);
  }

  static TraceEvent unpack(std::uint64_t w) noexcept {
    return {w & kTsMask,
            static_cast<TraceEventKind>((w >> 56) & 0xF),
            static_cast<std::uint8_t>((w >> 48) & 0xFF),
            ((w >> 60) & 1) != 0};
  }
};

/// Fixed-capacity single-writer ring of packed events. All storage is
/// allocated at construction; push() is one relaxed atomic store plus a
/// release increment of the head. Because every slot is a single atomic
/// word, snapshot() may run concurrently with the writer and will read each
/// event whole — a race with wraparound can mix window generations (some
/// slots one lap newer), but never tears an individual event. obs_test's
/// export-under-write witness pins this down under TSan.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 4096)
      : slots_(capacity == 0 ? 1 : std::bit_ceil(capacity)) {}

  /// Moves happen only while the registry builds its ring vector, before any
  /// writer exists — a plain value transfer, no concurrency to respect.
  TraceRing(TraceRing&& other) noexcept
      : slots_(std::move(other.slots_)),
        head_(other.head_.load(std::memory_order_relaxed)) {}
  TraceRing& operator=(TraceRing&&) = delete;

  void push(const TraceEvent& e) noexcept {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    slots_[h & (slots_.size() - 1)].store(e.pack(), std::memory_order_relaxed);
    // Release so a reader that acquires the new head also sees the slot.
    head_.store(h + 1, std::memory_order_release);
  }

  std::size_t capacity() const noexcept { return slots_.size(); }
  /// Total events ever pushed (monotone; exceeds capacity after wraparound).
  std::uint64_t pushed() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  /// Events lost to wraparound.
  std::uint64_t dropped() const noexcept {
    const std::uint64_t h = pushed();
    return h > slots_.size() ? h - slots_.size() : 0;
  }

  /// Retained events, oldest first. Safe against a concurrent writer (see
  /// the class comment); at quiescence the snapshot is exact.
  std::vector<TraceEvent> snapshot() const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::vector<TraceEvent> out;
    const std::uint64_t n = head < slots_.size()
                                ? head
                                : static_cast<std::uint64_t>(slots_.size());
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = head - n; i < head; ++i) {
      out.push_back(TraceEvent::unpack(
          slots_[i & (slots_.size() - 1)].load(std::memory_order_relaxed)));
    }
    return out;
  }

 private:
  std::vector<std::atomic<std::uint64_t>> slots_;
  std::atomic<std::uint64_t> head_{0};
};

static_assert(sizeof(std::atomic<std::uint64_t>) == sizeof(std::uint64_t),
              "packed trace slots must be plain words");

class TraceRegistry {
 public:
  explicit TraceRegistry(std::size_t max_tids = 64,
                         std::size_t ring_capacity = 4096)
      : t0_(std::chrono::steady_clock::now()) {
    rings_.reserve(max_tids);
    for (std::size_t i = 0; i < max_tids; ++i) {
      rings_.emplace_back(ring_capacity);
    }
  }

  std::size_t max_tids() const noexcept { return rings_.size(); }

  std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

  void record_cas(unsigned tid, CasStep step, bool ok) noexcept {
    if (TraceRing* r = ring_for(tid)) {
      r->push({now_ns(), TraceEventKind::kCas,
               static_cast<std::uint8_t>(step), ok});
    }
  }

  void record_point(unsigned tid, HookPoint p) noexcept {
    TraceRing* r = ring_for(tid);
    if (r == nullptr) return;
    // Help entry/exit points become a Chrome B/E span; every other point is
    // an instant marker.
    TraceEventKind kind = TraceEventKind::kPoint;
    if (p == HookPoint::kBeforeHelp) kind = TraceEventKind::kHelpEnter;
    if (p == HookPoint::kAfterHelp) kind = TraceEventKind::kHelpExit;
    r->push({now_ns(), kind, static_cast<std::uint8_t>(p), false});
  }

  /// Companion slot pushed right after a kHelpEnter when causal tracing
  /// knows the helped operation's owner. Reuses the packed-word layout:
  /// the owner's op_seq rides in the timestamp field (low 48 bits) and the
  /// owner's tid in the code byte, so the decoder can reconstruct the
  /// helper -> owner edge without a second ring. Skipped by the Chrome
  /// export (flow arrows come from CausalRegistry, which keeps full-width
  /// timestamps); consumed by tools/efrb_postmortem.
  void record_help_owner(unsigned tid, std::uint64_t owner) noexcept {
    if (owner == kNoOwner) return;
    if (TraceRing* r = ring_for(tid)) {
      r->push({owner_seq(owner), TraceEventKind::kHelpOwner,
               static_cast<std::uint8_t>(owner_tid(owner) & 0xFF), false});
    }
  }

  void record_op_begin(unsigned tid, TraceOp op) noexcept {
    if (TraceRing* r = ring_for(tid)) {
      r->push({now_ns(), TraceEventKind::kOpBegin,
               static_cast<std::uint8_t>(op), false});
    }
  }

  void record_op_end(unsigned tid, TraceOp op, bool ok) noexcept {
    if (TraceRing* r = ring_for(tid)) {
      r->push({now_ns(), TraceEventKind::kOpEnd,
               static_cast<std::uint8_t>(op), ok});
    }
  }

  /// Retained events for one thread, oldest first (quiescent snapshot).
  std::vector<TraceEvent> snapshot(unsigned tid) const {
    return tid < rings_.size() ? rings_[tid].value.snapshot()
                               : std::vector<TraceEvent>{};
  }

  std::uint64_t dropped_no_tid() const noexcept {
    return dropped_no_tid_.load(std::memory_order_relaxed);
  }

  /// Chrome trace-event JSON (the "JSON object format": {"traceEvents":
  /// [...]}), one Chrome tid per ring, pid 0. Call at quiescence.
  std::string chrome_trace_json() const {
    JsonWriter w;
    w.begin_object();
    w.key("displayTimeUnit").value("ns");
    w.key("traceEvents").begin_array();
    for (std::size_t tid = 0; tid < rings_.size(); ++tid) {
      for (const TraceEvent& e : rings_[tid].value.snapshot()) {
        append_chrome_event(w, static_cast<unsigned>(tid), e);
      }
    }
    w.end_array();
    w.end_object();
    return w.take();
  }

  bool write_chrome_trace(const std::string& path) const {
    return write_file(path, chrome_trace_json());
  }

  /// Renders one event as a Chrome trace-event object. Public so composed
  /// exporters (obs/causal.hpp merges flow arrows into the same stream) can
  /// reuse the exact vocabulary instead of re-deriving it.
  static void append_chrome_event(JsonWriter& w, unsigned tid,
                                  const TraceEvent& e) {
    // Chrome's ts field is microseconds; keep ns resolution as a fraction.
    const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
    std::string name;
    const char* ph = "i";
    switch (e.kind) {
      case TraceEventKind::kCas:
        name = std::string("cas:") + to_string(static_cast<CasStep>(e.code));
        name += e.ok ? ":ok" : ":fail";
        break;
      case TraceEventKind::kPoint:
        name = to_string(static_cast<HookPoint>(e.code));
        break;
      case TraceEventKind::kHelpEnter:
        name = "help";
        ph = "B";
        break;
      case TraceEventKind::kHelpExit:
        name = "help";
        ph = "E";
        break;
      case TraceEventKind::kOpBegin:
        name = to_string(static_cast<TraceOp>(e.code));
        ph = "B";
        break;
      case TraceEventKind::kOpEnd:
        name = to_string(static_cast<TraceOp>(e.code));
        ph = "E";
        break;
      case TraceEventKind::kHelpOwner:
        return;  // decoder-only metadata; flow arrows come from CausalRegistry
    }
    w.begin_object();
    w.key("name").value(name);
    w.key("ph").value(ph);
    w.key("ts").value(ts_us);
    w.key("pid").value(0);
    w.key("tid").value(tid);
    if (ph[0] == 'i') w.key("s").value("t");  // instant scope: thread
    if (e.kind == TraceEventKind::kCas || e.kind == TraceEventKind::kOpEnd) {
      w.key("args").begin_object().key("ok").value(e.ok).end_object();
    }
    w.end_object();
  }

 private:
  TraceRing* ring_for(unsigned tid) noexcept {
    if (tid == kNoTid || tid >= rings_.size()) {
      dropped_no_tid_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    return &rings_[tid].value;
  }

  std::chrono::steady_clock::time_point t0_;
  std::vector<CachePadded<TraceRing>> rings_;
  std::atomic<std::uint64_t> dropped_no_tid_{0};
};

/// Debug-hooks Traits feeding an installed TraceRegistry. Same install/reset
/// discipline as CallbackTraits: the registry pointer is global to the
/// traits type, set it around an instrumented run and reset afterwards.
/// Stats counters stay enabled so a traced tree also reports its per-step
/// breakdown in the same run.
struct TraceTraits {
  static constexpr bool kCountStats = true;
  static constexpr bool kSearchHelpsMarked = false;

  // NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
  static inline TraceRegistry* registry = nullptr;

  static void install(TraceRegistry* r) noexcept { registry = r; }
  static void reset() noexcept { registry = nullptr; }

  static void on_cas(CasStep s, bool ok, const void* /*node*/, unsigned tid) {
    if (registry != nullptr) registry->record_cas(tid, s, ok);
  }
  static void at(HookPoint p, unsigned tid) {
    if (registry != nullptr) registry->record_point(tid, p);
  }
};

}  // namespace efrb::obs
