// Scoped per-phase cost attribution for tree operations.
//
// A PhaseProfiler partitions each operation's measured time across the
// efrb::Phase buckets (descent, cas_protocol, helping, rebalance_cleanup,
// reclamation, pool_alloc) by driving a tiny per-thread state machine off the
// existing debug-hook stream:
//
//   op_begin/op_end   — called by the workload runner around every operation;
//                       they open/close the attribution window.
//   at(HookPoint)     — the protocol's existing emissions. kAfterSearch closes
//                       the descent segment, kBeforeHelp/kAfterHelp bracket
//                       helping (nested helps stay "helping"), the retry
//                       points reset to descent for the re-descent, and
//                       kBeforeRebalance opens chromatic cleanup.
//   phase(enter,...)  — explicit scopes (hooks::PhaseScope) emitted by the
//                       protocol around allocation and retirement clusters,
//                       the two phases the HookPoint stream cannot infer.
//
// Every attributed segment is a [mark, now) interval on the cycle_stamp()
// clock, segments tile the op window exactly, and attribution only happens
// inside a window — so the invariant `sum(phase cycles) <= total in-op
// cycles` holds by construction (events outside a window are counted but not
// attributed). Hardware counters (obs/perfctr.hpp), when the host grants
// them, ride alongside as per-run totals folded in by each worker thread.
//
// Concurrency: accumulators are cache-padded per-thread cells of relaxed
// atomics — each cell has exactly one writer (the owning thread); snapshot()
// and the live gauge helpers read them concurrently. The transient
// state-machine fields are plain (owner-only).
//
// The uninstrumented hot loop is untouched: a Traits without the phase/at
// hooks folds every emission away (see debug_hooks.hpp), and the runner only
// brackets ops when a profiler is attached.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "../core/debug_hooks.hpp"
#include "../util/cacheline.hpp"
#include "perfctr.hpp"

namespace efrb::obs {

/// Immutable result of PhaseProfiler::snapshot(): totals plus per-phase
/// attribution, with derived-rate helpers that return whether the rate is
/// defined (absent counters must render as absent, never zero).
struct ProfileSnapshot {
  bool available = false;      // hardware cycles were collected
  bool sw_available = false;   // software task-clock was collected
  std::string source;          // cycle_stamp() clock name ("tsc", ...)
  std::string unavailable_reason;  // why !available ("" when available)
  int paranoid = -100;         // perf_event_paranoid at snapshot time

  std::uint64_t ops = 0;             // completed operations
  std::uint64_t cycles = 0;          // total in-op cycles (cycle_stamp units)
  std::uint64_t span_cycles = 0;     // wall window since profiler start/reset
  std::uint64_t events_outside_op = 0;  // hook events with no open window
  std::uint64_t dropped = 0;         // events with out-of-range tid

  struct PhaseSnap {
    std::uint64_t cycles = 0;  // attributed cycle_stamp ticks
    std::uint64_t enters = 0;  // segment openings
  };
  PhaseSnap phases[kNumPhases] = {};

  unsigned hw_threads = 0;  // worker threads that contributed hw counts
  PerfCounts hw;            // summed per-thread counter reads

  std::uint64_t phase_cycles_sum() const noexcept {
    std::uint64_t s = 0;
    for (const auto& p : phases) s += p.cycles;
    return s;
  }
  double cycles_per_op() const noexcept {
    return ops == 0 ? 0.0 : static_cast<double>(cycles) / static_cast<double>(ops);
  }
  double phase_share(std::size_t i) const noexcept {
    return cycles == 0 ? 0.0
                       : static_cast<double>(phases[i].cycles) /
                             static_cast<double>(cycles);
  }
  // Hardware-derived rates: each returns false (rate undefined) when the
  // counters backing it were not collected.
  bool hw_cycles_per_op(double* out) const noexcept {
    if (!hw.cycles_ok || ops == 0) return false;
    *out = static_cast<double>(hw.cycles) / static_cast<double>(ops);
    return true;
  }
  bool ipc(double* out) const noexcept {
    if (!hw.cycles_ok || !hw.instructions_ok || hw.cycles == 0) return false;
    *out = static_cast<double>(hw.instructions) /
           static_cast<double>(hw.cycles);
    return true;
  }
  bool cache_miss_rate(double* out) const noexcept {
    if (!hw.cache_references_ok || !hw.cache_misses_ok ||
        hw.cache_references == 0) {
      return false;
    }
    *out = static_cast<double>(hw.cache_misses) /
           static_cast<double>(hw.cache_references);
    return true;
  }
  bool branch_miss_per_kinstr(double* out) const noexcept {
    if (!hw.branch_misses_ok || !hw.instructions_ok || hw.instructions == 0) {
      return false;
    }
    *out = 1000.0 * static_cast<double>(hw.branch_misses) /
           static_cast<double>(hw.instructions);
    return true;
  }
  bool multiplex_scale(double* out) const noexcept {
    if (!hw.cycles_ok || hw.time_running_ns == 0) return false;
    *out = static_cast<double>(hw.time_enabled_ns) /
           static_cast<double>(hw.time_running_ns);
    return true;
  }
  /// Per-phase hardware-cycle estimate: total hw cycles scaled by the
  /// phase's tick share. Defined only when hw cycles were collected.
  bool phase_cycles_est(std::size_t i, double* out) const noexcept {
    if (!hw.cycles_ok || cycles == 0) return false;
    *out = static_cast<double>(hw.cycles) * phase_share(i);
    return true;
  }
};

/// The profiler. One instance serves every worker thread of a run; thread
/// identity is the same per-handle tid the other obs sinks key on (bounded
/// by kMaxTids = ShardPool::kMaxHandles).
class PhaseProfiler {
 public:
  static constexpr unsigned kMaxTids = 128;
  static constexpr int kMaxScopeDepth = 8;

  PhaseProfiler() : start_(cycle_stamp()) {}

  /// Zero all accumulators and restart the span clock (e.g. after prefill).
  void reset() noexcept {
    for (auto& padded : threads_) {
      ThreadState& t = padded.value;
      t.ops.store(0, std::memory_order_relaxed);
      t.in_op_cycles.store(0, std::memory_order_relaxed);
      for (std::size_t i = 0; i < kNumPhases; ++i) {
        t.phase_cycles[i].store(0, std::memory_order_relaxed);
        t.phase_enters[i].store(0, std::memory_order_relaxed);
      }
      t.outside.store(0, std::memory_order_relaxed);
      t.in_op = false;
      t.help_depth = 0;
      t.scope_depth = 0;
    }
    dropped_.store(0, std::memory_order_relaxed);
    start_ = cycle_stamp();
  }

  // -- owner-thread entry points --------------------------------------------

  void op_begin(unsigned tid) noexcept {
    ThreadState* t = slot(tid);
    if (t == nullptr) return;
    const std::uint64_t now = cycle_stamp();
    t->in_op = true;
    t->op_start = now;
    t->mark = now;
    t->cur = Phase::kDescent;
    t->help_depth = 0;
    t->scope_depth = 0;
    bump(t->phase_enters[idx(Phase::kDescent)]);
  }

  void op_end(unsigned tid) noexcept {
    ThreadState* t = slot(tid);
    if (t == nullptr || !t->in_op) return;
    const std::uint64_t now = cycle_stamp();
    credit(*t, now);
    add(t->in_op_cycles, now - t->op_start);
    bump(t->ops);
    t->in_op = false;
  }

  void at(HookPoint p, unsigned tid) noexcept {
    ThreadState* t = slot(tid);
    if (t == nullptr) return;
    if (!t->in_op) {
      bump(t->outside);
      return;
    }
    credit(*t, cycle_stamp());
    switch (p) {
      case HookPoint::kAfterSearch:
        // The segment just credited was the descent; the op's own protocol
        // steps follow.
        transition(*t, Phase::kCasProtocol);
        break;
      case HookPoint::kBeforeHelp:
        if (t->help_depth == 0) t->resume = t->cur;
        ++t->help_depth;
        transition(*t, Phase::kHelping);
        break;
      case HookPoint::kAfterHelp:
        if (t->help_depth > 0 && --t->help_depth == 0) {
          transition(*t, t->resume);
        }
        break;
      case HookPoint::kInsertRetry:
      case HookPoint::kDeleteRetry:
      case HookPoint::kScxRetry:
        // The attempt failed; what follows is the re-descent.
        transition(*t, Phase::kDescent);
        break;
      case HookPoint::kBeforeRebalance:
        transition(*t, Phase::kRebalanceCleanup);
        break;
      default:
        break;  // segment credited to the current phase; no transition
    }
  }

  void phase(bool enter, Phase ph, unsigned tid) noexcept {
    ThreadState* t = slot(tid);
    if (t == nullptr) return;
    if (!t->in_op) {
      bump(t->outside);
      return;
    }
    if (enter) {
      if (t->scope_depth >= kMaxScopeDepth) return;  // saturate: no transition
      credit(*t, cycle_stamp());
      t->scopes[t->scope_depth++] = t->cur;
      transition(*t, ph);
    } else {
      if (t->scope_depth == 0) return;  // unmatched exit (saturated enter)
      credit(*t, cycle_stamp());
      transition_quiet(*t, t->scopes[--t->scope_depth]);
    }
  }

  /// Fold one worker thread's end-of-run counter read into the run totals.
  /// Called once per thread after its measured loop; mutex-serialized.
  void add_hw(const PerfCounts& counts, const std::string& reason) {
    std::lock_guard<std::mutex> lock(hw_mu_);
    hw_.accumulate(counts);
    if (counts.hw_ok) ++hw_threads_;
    if (!counts.hw_ok && hw_reason_.empty() && !reason.empty()) {
      hw_reason_ = reason;
    }
  }

  // -- readers (any thread) -------------------------------------------------

  ProfileSnapshot snapshot() const {
    ProfileSnapshot s;
    s.source = cycle_source();
    s.paranoid = perf_event_paranoid();
    for (const auto& padded : threads_) {
      const ThreadState& t = padded.value;
      s.ops += t.ops.load(std::memory_order_relaxed);
      s.cycles += t.in_op_cycles.load(std::memory_order_relaxed);
      s.events_outside_op += t.outside.load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < kNumPhases; ++i) {
        s.phases[i].cycles += t.phase_cycles[i].load(std::memory_order_relaxed);
        s.phases[i].enters += t.phase_enters[i].load(std::memory_order_relaxed);
      }
    }
    s.dropped = dropped_.load(std::memory_order_relaxed);
    s.span_cycles = cycle_stamp() - start_;
    {
      std::lock_guard<std::mutex> lock(hw_mu_);
      s.hw = hw_;
      s.hw_threads = hw_threads_;
      s.available = hw_.cycles_ok;
      s.sw_available = hw_.task_clock_ok;
      s.unavailable_reason = s.available ? std::string{} : hw_reason_;
    }
    if (!s.available && s.unavailable_reason.empty()) {
      // No thread reported a reason (e.g. snapshot taken mid-run, or the
      // runner never attached counters): re-probe for an explanation.
      PerfAvailability avail = probe_perf_availability();
      if (!avail.hw) s.unavailable_reason = avail.reason;
    }
    return s;
  }

  /// Cheap live totals for poller gauges / flight-recorder mirrors.
  std::uint64_t live_ops() const noexcept {
    std::uint64_t n = 0;
    for (const auto& padded : threads_)
      n += padded.value.ops.load(std::memory_order_relaxed);
    return n;
  }
  std::uint64_t live_cycles() const noexcept {
    std::uint64_t n = 0;
    for (const auto& padded : threads_)
      n += padded.value.in_op_cycles.load(std::memory_order_relaxed);
    return n;
  }
  std::uint64_t live_phase_cycles(Phase ph) const noexcept {
    std::uint64_t n = 0;
    for (const auto& padded : threads_)
      n += padded.value.phase_cycles[idx(ph)].load(std::memory_order_relaxed);
    return n;
  }

 private:
  struct ThreadState {
    // Accumulators: single-writer relaxed atomics, read by snapshots.
    std::atomic<std::uint64_t> ops{0};
    std::atomic<std::uint64_t> in_op_cycles{0};
    std::atomic<std::uint64_t> phase_cycles[kNumPhases] = {};
    std::atomic<std::uint64_t> phase_enters[kNumPhases] = {};
    std::atomic<std::uint64_t> outside{0};
    // Transient state machine: owner-thread only, never read concurrently.
    bool in_op = false;
    std::uint64_t op_start = 0;
    std::uint64_t mark = 0;
    Phase cur = Phase::kDescent;
    Phase resume = Phase::kCasProtocol;  // phase to restore after helping
    int help_depth = 0;
    Phase scopes[kMaxScopeDepth] = {};
    int scope_depth = 0;
  };

  static constexpr std::size_t idx(Phase p) noexcept {
    return static_cast<std::size_t>(p);
  }
  static void bump(std::atomic<std::uint64_t>& c) noexcept {
    c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  }
  static void add(std::atomic<std::uint64_t>& c, std::uint64_t d) noexcept {
    c.store(c.load(std::memory_order_relaxed) + d, std::memory_order_relaxed);
  }

  ThreadState* slot(unsigned tid) noexcept {
    if (tid >= kMaxTids) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    return &threads_[tid].value;
  }

  /// Credit [mark, now) to the current phase and advance the mark.
  static void credit(ThreadState& t, std::uint64_t now) noexcept {
    if (now > t.mark) add(t.phase_cycles[idx(t.cur)], now - t.mark);
    t.mark = now;
  }
  static void transition(ThreadState& t, Phase next) noexcept {
    t.cur = next;
    bump(t.phase_enters[idx(next)]);
  }
  /// Transition without counting an enter (scope exits resume, not re-enter).
  static void transition_quiet(ThreadState& t, Phase next) noexcept {
    t.cur = next;
  }

  CachePadded<ThreadState> threads_[kMaxTids];
  std::atomic<std::uint64_t> dropped_{0};
  std::uint64_t start_;

  mutable std::mutex hw_mu_;
  PerfCounts hw_;
  unsigned hw_threads_ = 0;
  std::string hw_reason_;
};

/// RAII phase scope against a concrete profiler (tool/test code). Protocol
/// code uses hooks::PhaseScope<Traits> instead, which folds away when the
/// Traits carry no phase hook.
class ProfileScope {
 public:
  ProfileScope(PhaseProfiler& profiler, Phase ph, unsigned tid) noexcept
      : profiler_(profiler), ph_(ph), tid_(tid) {
    profiler_.phase(true, ph_, tid_);
  }
  ~ProfileScope() { profiler_.phase(false, ph_, tid_); }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  PhaseProfiler& profiler_;
  Phase ph_;
  unsigned tid_;
};

/// Installable traits sink, same pattern as HeatmapTraits: a tool installs
/// its PhaseProfiler, instantiates the structure with a Traits type that
/// forwards at/phase here (directly or via a fan-out), and resets after.
struct ProfileTraits {
  static constexpr bool kCountStats = true;
  static constexpr bool kSearchHelpsMarked = false;

  // NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
  static inline PhaseProfiler* profiler = nullptr;

  static void install(PhaseProfiler* p) noexcept { profiler = p; }
  static void reset() noexcept { profiler = nullptr; }

  static void on_cas(CasStep, bool, const void*, unsigned,
                     std::uint64_t) noexcept {}
  static void at(HookPoint p, unsigned tid, std::uint64_t /*key*/) noexcept {
    if (profiler != nullptr) profiler->at(p, tid);
  }
  static void phase(bool enter, Phase ph, unsigned tid) noexcept {
    if (profiler != nullptr) profiler->phase(enter, ph, tid);
  }
};

}  // namespace efrb::obs
