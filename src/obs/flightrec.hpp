// Flight recorder: an always-on, allocation-free ring of recent protocol
// events per thread, dumped with async-signal-safe writes when the process
// dies.
//
// Traces and metrics answer "what happened during the run I instrumented";
// the flight recorder answers "what was happening when the process aborted"
// — an EFRB_ASSERT tripping, a SIGSEGV in a client, a watchdog-triggered
// abort. Every slot is a single packed word (the TraceEvent packing from
// obs/trace.hpp), every ring is fixed at construction, and the dump path
// uses only operations the POSIX async-signal-safety list allows: relaxed
// atomic loads, stack buffers, open(2)/write(2)/close(2).
//
// Pieces:
//   * FlightRecorder — per-tid packed-word rings plus two bounded side
//     tables: named gauges (pointers to live atomic counters, e.g. the
//     reclaimer's ReclaimGauges words) and an optional ProgressTable pointer
//     so the dump carries the in-flight-op stall table. dump_to_fd() is the
//     signal-safe core; dump_to_path() is the convenience wrapper.
//   * install_signal_handler() — sigaction for SIGABRT/SIGSEGV/SIGBUS that
//     dumps to a configured path, restores the previous handler, and
//     re-raises so the process still dies with the original disposition
//     (core dumps, test death-assertions, and exit codes all keep working).
//   * FlightTraits — debug-hooks Traits feeding an installed recorder; pair
//     with kCausalTrace trees to capture kHelpOwner companion slots.
//   * FlightDump — the decoder-side parse of the binary format, shared by
//     tools/efrb_postmortem and the tests so the format has exactly one
//     reader and one writer.
//
// Binary format (little-endian u64 words, "EFRBFLT1" magic):
//   header:  magic, version, max_tids, ring_cap, gauge_count, slot_count
//   gauges:  gauge_count x { name[24] (3 words, NUL-padded), value }
//   slots:   slot_count x { tid, op_seq, op_key, start_ns, retries,
//                           last_step, help_depth }   (tid == kNoTid: free)
//   rings:   max_tids x { head, ring_cap raw slot words in index order }
#pragma once

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <csignal>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/debug_hooks.hpp"
#include "core/op_context.hpp"
#include "obs/trace.hpp"
#include "util/cacheline.hpp"

namespace efrb::obs {

inline constexpr std::uint64_t kFlightMagic = 0x31544C4642524645ULL;  // "EFRBFLT1"
inline constexpr std::uint64_t kFlightVersion = 1;
inline constexpr std::size_t kFlightGaugeNameWords = 3;  // 24 bytes

class FlightRecorder {
 public:
  static constexpr std::size_t kMaxGauges = 32;

  explicit FlightRecorder(std::size_t max_tids = 64,
                          std::size_t ring_capacity = 1024)
      : t0_(std::chrono::steady_clock::now()),
        ring_cap_(ring_capacity == 0 ? 1 : std::bit_ceil(ring_capacity)) {
    rings_.reserve(max_tids);
    for (std::size_t i = 0; i < max_tids; ++i) rings_.emplace_back(ring_cap_);
  }

  std::size_t max_tids() const noexcept { return rings_.size(); }
  std::size_t ring_capacity() const noexcept { return ring_cap_; }

  std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

  void record(unsigned tid, TraceEventKind kind, std::uint8_t code,
              bool ok) noexcept {
    if (tid == kNoTid || tid >= rings_.size()) return;
    push(tid, TraceEvent{now_ns(), kind, code, ok}.pack());
  }

  /// Companion slot after a help entry (same encoding as
  /// TraceRegistry::record_help_owner).
  void record_help_owner(unsigned tid, std::uint64_t owner) noexcept {
    if (owner == kNoOwner || tid == kNoTid || tid >= rings_.size()) return;
    push(tid, TraceEvent{owner_seq(owner), TraceEventKind::kHelpOwner,
                         static_cast<std::uint8_t>(owner_tid(owner) & 0xFF),
                         false}
                  .pack());
  }

  /// Registers a live gauge; `value` must outlive the recorder (the dump
  /// reads it at crash time). `name` is truncated to 23 bytes. Bounded at
  /// kMaxGauges; further registrations are ignored (a crash dump missing a
  /// gauge beats a crash-path allocation).
  void add_gauge(const char* name,
                 const std::atomic<std::uint64_t>* value) noexcept {
    const std::size_t i = gauge_count_.load(std::memory_order_relaxed);
    if (i >= kMaxGauges || name == nullptr || value == nullptr) return;
    std::memset(gauges_[i].name, 0, sizeof(gauges_[i].name));
    std::strncpy(gauges_[i].name, name, sizeof(gauges_[i].name) - 1);
    gauges_[i].value = value;
    gauge_count_.store(i + 1, std::memory_order_release);
  }

  /// Attaches the progress table of a kCausalTrace tree so the dump carries
  /// the in-flight-op table; the table must outlive the recorder.
  void attach_progress(const ProgressTable* table) noexcept {
    progress_.store(table, std::memory_order_release);
  }

  /// Async-signal-safe dump: relaxed atomic loads into a stack buffer,
  /// flushed with write(2). Returns false if any write failed short.
  bool dump_to_fd(int fd) const noexcept {
    WordBuf buf(fd);
    const ProgressTable* table = progress_.load(std::memory_order_acquire);
    const std::uint64_t gauge_count =
        gauge_count_.load(std::memory_order_acquire);
    const std::uint64_t slot_count =
        table != nullptr ? table->slots.size() : 0;
    buf.put(kFlightMagic);
    buf.put(kFlightVersion);
    buf.put(rings_.size());
    buf.put(ring_cap_);
    buf.put(gauge_count);
    buf.put(slot_count);
    for (std::uint64_t i = 0; i < gauge_count; ++i) {
      std::uint64_t words[kFlightGaugeNameWords] = {0, 0, 0};
      std::memcpy(words, gauges_[i].name, sizeof(words));
      for (std::uint64_t w : words) buf.put(w);
      buf.put(gauges_[i].value->load(std::memory_order_relaxed));
    }
    if (table != nullptr) {
      for (const auto& padded : table->slots) {
        const ProgressSlot& s = padded.value;
        buf.put(s.tid.load(std::memory_order_relaxed));
        buf.put(s.op_seq.load(std::memory_order_relaxed));
        buf.put(s.op_key.load(std::memory_order_relaxed));
        buf.put(s.start_ns.load(std::memory_order_relaxed));
        buf.put(s.retries.load(std::memory_order_relaxed));
        buf.put(s.last_step.load(std::memory_order_relaxed));
        buf.put(s.help_depth.load(std::memory_order_relaxed));
      }
    }
    for (const auto& padded : rings_) {
      const Ring& r = padded.value;
      buf.put(r.head.load(std::memory_order_relaxed));
      for (const auto& slot : r.slots) {
        buf.put(slot.load(std::memory_order_relaxed));
      }
    }
    return buf.flush();
  }

  /// Convenience (NOT signal-safe — uses open with mode flags fine, but call
  /// it from normal code): creates/truncates `path` and dumps.
  bool dump_to_path(const char* path) const noexcept {
    // NOLINTNEXTLINE(cppcoreguidelines-pro-type-vararg)
    const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return false;
    const bool ok = dump_to_fd(fd);
    ::close(fd);
    return ok;
  }

 private:
  struct Ring {
    explicit Ring(std::size_t cap) : slots(cap) {}
    Ring(Ring&& other) noexcept
        : slots(std::move(other.slots)),
          head(other.head.load(std::memory_order_relaxed)) {}
    Ring& operator=(Ring&&) = delete;
    std::vector<std::atomic<std::uint64_t>> slots;
    std::atomic<std::uint64_t> head{0};
  };

  struct Gauge {
    char name[kFlightGaugeNameWords * 8] = {};
    const std::atomic<std::uint64_t>* value = nullptr;
  };

  /// Stack-buffered writer around write(2); everything it touches is
  /// async-signal-safe.
  class WordBuf {
   public:
    explicit WordBuf(int fd) noexcept : fd_(fd) {}
    void put(std::uint64_t w) noexcept {
      words_[n_++] = w;
      if (n_ == kCap) drain();
    }
    bool flush() noexcept {
      drain();
      return ok_;
    }

   private:
    static constexpr std::size_t kCap = 256;
    void drain() noexcept {
      const char* p = reinterpret_cast<const char*>(words_);
      std::size_t left = n_ * sizeof(std::uint64_t);
      while (left > 0 && ok_) {
        const ssize_t written = ::write(fd_, p, left);
        if (written <= 0) {
          ok_ = false;
          break;
        }
        p += written;
        left -= static_cast<std::size_t>(written);
      }
      n_ = 0;
    }
    int fd_;
    std::uint64_t words_[kCap];
    std::size_t n_ = 0;
    bool ok_ = true;
  };

  void push(unsigned tid, std::uint64_t word) noexcept {
    Ring& r = rings_[tid].value;
    const std::uint64_t h = r.head.load(std::memory_order_relaxed);
    r.slots[h & (r.slots.size() - 1)].store(word, std::memory_order_relaxed);
    r.head.store(h + 1, std::memory_order_release);
  }

  std::chrono::steady_clock::time_point t0_;
  std::size_t ring_cap_;
  std::vector<CachePadded<Ring>> rings_;
  Gauge gauges_[kMaxGauges];
  std::atomic<std::uint64_t> gauge_count_{0};
  std::atomic<const ProgressTable*> progress_{nullptr};
};

// --- signal plumbing ------------------------------------------------------
//
// One process-global recorder + dump path, installed explicitly. The
// handler writes the dump, restores the signal's previous disposition, and
// re-raises — so an EFRB_ASSERT abort still aborts (death tests and exit
// codes unchanged), it just leaves a black box behind first.

namespace flight_detail {

struct SignalState {
  // NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
  static inline const FlightRecorder* recorder = nullptr;
  // NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
  static inline char path[256] = {};
  // NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
  static inline struct sigaction old_abrt {};
  // NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
  static inline struct sigaction old_segv {};
  // NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
  static inline struct sigaction old_bus {};
};

inline void dump_and_reraise(int sig) noexcept {
  const FlightRecorder* rec = SignalState::recorder;
  if (rec != nullptr && SignalState::path[0] != '\0') {
    // open(2) and write(2) are on the async-signal-safe list.
    // NOLINTNEXTLINE(cppcoreguidelines-pro-type-vararg)
    const int fd =
        ::open(SignalState::path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      rec->dump_to_fd(fd);
      ::close(fd);
    }
  }
  // Restore the previous disposition and re-raise so the process still dies
  // the way it would have without us.
  const struct sigaction* old = sig == SIGABRT   ? &SignalState::old_abrt
                                : sig == SIGSEGV ? &SignalState::old_segv
                                                 : &SignalState::old_bus;
  ::sigaction(sig, old, nullptr);
  ::raise(sig);
}

}  // namespace flight_detail

/// Installs the crash-dump handler for SIGABRT / SIGSEGV / SIGBUS. The
/// recorder (and everything registered into it) must outlive the process's
/// crashing moment — in practice: install on main-scope objects. Re-entrant
/// installs just retarget the recorder/path.
inline void install_flight_handler(const FlightRecorder* recorder,
                                   const char* dump_path) noexcept {
  using flight_detail::SignalState;
  SignalState::recorder = recorder;
  std::memset(SignalState::path, 0, sizeof(SignalState::path));
  if (dump_path != nullptr) {
    std::strncpy(SignalState::path, dump_path, sizeof(SignalState::path) - 1);
  }
  struct sigaction sa {};
  sa.sa_handler = &flight_detail::dump_and_reraise;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGABRT, &sa, &SignalState::old_abrt);
  ::sigaction(SIGSEGV, &sa, &SignalState::old_segv);
  ::sigaction(SIGBUS, &sa, &SignalState::old_bus);
}

/// Restores the pre-install dispositions and detaches the recorder.
inline void uninstall_flight_handler() noexcept {
  using flight_detail::SignalState;
  ::sigaction(SIGABRT, &SignalState::old_abrt, nullptr);
  ::sigaction(SIGSEGV, &SignalState::old_segv, nullptr);
  ::sigaction(SIGBUS, &SignalState::old_bus, nullptr);
  SignalState::recorder = nullptr;
  SignalState::path[0] = '\0';
}

/// Debug-hooks Traits feeding an installed FlightRecorder. Enables
/// kCausalTrace so owner stamps flow and kHelpOwner companion slots land in
/// the rings; composes with the usual install/reset discipline.
struct FlightTraits {
  static constexpr bool kCountStats = true;
  static constexpr bool kSearchHelpsMarked = false;
  static constexpr bool kCausalTrace = true;

  // NOLINTNEXTLINE(cppcoreguidelines-avoid-non-const-global-variables)
  static inline FlightRecorder* recorder = nullptr;

  static void install(FlightRecorder* r) noexcept { recorder = r; }
  static void reset() noexcept { recorder = nullptr; }

  static void on_cas(CasStep s, bool ok, const void* /*node*/, unsigned tid) {
    if (recorder != nullptr) {
      recorder->record(tid, TraceEventKind::kCas,
                       static_cast<std::uint8_t>(s), ok);
    }
  }

  static void at(HookPoint p, unsigned tid) {
    if (recorder == nullptr) return;
    TraceEventKind kind = TraceEventKind::kPoint;
    if (p == HookPoint::kBeforeHelp) kind = TraceEventKind::kHelpEnter;
    if (p == HookPoint::kAfterHelp) kind = TraceEventKind::kHelpExit;
    recorder->record(tid, kind, static_cast<std::uint8_t>(p), false);
  }

  static void at(HookPoint p, unsigned tid, std::uint64_t /*key*/,
                 std::uint64_t owner) {
    at(p, tid);
    if (recorder != nullptr && p == HookPoint::kBeforeHelp) {
      recorder->record_help_owner(tid, owner);
    }
  }
};

// --- decoder side ---------------------------------------------------------

struct FlightGauge {
  std::string name;
  std::uint64_t value = 0;
};

struct FlightSlot {
  std::uint64_t tid = kNoTid;
  std::uint64_t op_seq = 0;
  std::uint64_t op_key = kNoKey;
  std::uint64_t start_ns = 0;
  std::uint64_t retries = 0;
  std::uint64_t last_step = kNoStep;
  std::uint64_t help_depth = 0;

  bool in_flight() const noexcept { return (op_seq & 1) != 0; }
};

/// Parsed flight-recorder dump. The single reader of the binary format —
/// tools/efrb_postmortem and the tests both go through here.
struct FlightDump {
  std::uint64_t version = 0;
  std::uint64_t max_tids = 0;
  std::uint64_t ring_cap = 0;
  std::vector<FlightGauge> gauges;
  std::vector<FlightSlot> slots;
  struct RawRing {
    std::uint64_t head = 0;
    std::vector<std::uint64_t> words;  // raw slot array, index order
  };
  std::vector<RawRing> rings;

  /// Retained events for one tid, oldest first (mirrors TraceRing::snapshot
  /// over the dumped words).
  std::vector<TraceEvent> events(std::size_t tid) const {
    std::vector<TraceEvent> out;
    if (tid >= rings.size() || rings[tid].words.empty()) return out;
    const RawRing& r = rings[tid];
    const std::uint64_t cap = r.words.size();
    const std::uint64_t n = r.head < cap ? r.head : cap;
    out.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = r.head - n; i < r.head; ++i) {
      out.push_back(TraceEvent::unpack(
          r.words[static_cast<std::size_t>(i & (cap - 1))]));
    }
    return out;
  }

  static bool parse(const std::vector<std::uint64_t>& words, FlightDump* out) {
    std::size_t i = 0;
    auto next = [&](std::uint64_t* w) {
      if (i >= words.size()) return false;
      *w = words[i++];
      return true;
    };
    std::uint64_t magic = 0, gauge_count = 0, slot_count = 0;
    if (!next(&magic) || magic != kFlightMagic) return false;
    if (!next(&out->version) || out->version != kFlightVersion) return false;
    if (!next(&out->max_tids) || !next(&out->ring_cap)) return false;
    if (!next(&gauge_count) || !next(&slot_count)) return false;
    // Reject absurd headers before reserving (a truncated/corrupt file must
    // fail cleanly, not bad_alloc or an overflowed size computation).
    if (gauge_count > FlightRecorder::kMaxGauges) return false;
    if (slot_count > (1u << 20) || out->max_tids > (1u << 16)) return false;
    if (out->ring_cap == 0 || out->ring_cap > (1u << 24) ||
        !std::has_single_bit(out->ring_cap)) {
      return false;
    }
    const std::uint64_t need = gauge_count * (kFlightGaugeNameWords + 1) +
                               slot_count * 7 +
                               out->max_tids * (out->ring_cap + 1);
    if (words.size() - i < need) return false;
    out->gauges.clear();
    for (std::uint64_t g = 0; g < gauge_count; ++g) {
      char name[kFlightGaugeNameWords * 8 + 1] = {};
      std::memcpy(name, &words[i], kFlightGaugeNameWords * 8);
      i += kFlightGaugeNameWords;
      FlightGauge fg;
      fg.name = name;
      fg.value = words[i++];
      out->gauges.push_back(std::move(fg));
    }
    out->slots.clear();
    for (std::uint64_t s = 0; s < slot_count; ++s) {
      FlightSlot fs;
      fs.tid = words[i++];
      fs.op_seq = words[i++];
      fs.op_key = words[i++];
      fs.start_ns = words[i++];
      fs.retries = words[i++];
      fs.last_step = words[i++];
      fs.help_depth = words[i++];
      out->slots.push_back(fs);
    }
    out->rings.clear();
    for (std::uint64_t t = 0; t < out->max_tids; ++t) {
      RawRing r;
      r.head = words[i++];
      r.words.assign(words.begin() + static_cast<std::ptrdiff_t>(i),
                     words.begin() +
                         static_cast<std::ptrdiff_t>(i + out->ring_cap));
      i += out->ring_cap;
      out->rings.push_back(std::move(r));
    }
    return true;
  }

  static bool read_file(const std::string& path, FlightDump* out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    if (bytes.size() % sizeof(std::uint64_t) != 0) return false;
    std::vector<std::uint64_t> words(bytes.size() / sizeof(std::uint64_t));
    std::memcpy(words.data(), bytes.data(), bytes.size());
    return parse(words, out);
  }
};

}  // namespace efrb::obs
