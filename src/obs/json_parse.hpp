// Minimal dependency-free JSON parser for consuming efrb-metrics documents
// (obs/json.hpp is write-only). Recursive descent over the full JSON
// grammar: objects, arrays, strings with escapes (\uXXXX decoded to UTF-8),
// numbers via strtod, true/false/null. Depth-capped so hostile input cannot
// blow the stack. Object member order is preserved; duplicate keys keep
// both entries with find() returning the first — the documents we parse
// never emit duplicates.
//
// Consumers: tools/efrb_perfdiff (snapshot comparison) and the test suite
// (round-trip validation of the JSON writers).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace efrb::obs {

/// One parsed JSON value. A tagged aggregate rather than a std::variant so
/// recursive nesting needs no indirection and consumers can pattern-match
/// with plain accessors.
struct JsonValue {
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const noexcept { return type == Type::kNull; }
  bool is_bool() const noexcept { return type == Type::kBool; }
  bool is_number() const noexcept { return type == Type::kNumber; }
  bool is_string() const noexcept { return type == Type::kString; }
  bool is_array() const noexcept { return type == Type::kArray; }
  bool is_object() const noexcept { return type == Type::kObject; }

  /// First member with this key, or nullptr (also for non-objects).
  const JsonValue* find(std::string_view key) const noexcept {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Dotted-path lookup through nested objects: find_path("result.mops").
  const JsonValue* find_path(std::string_view path) const noexcept {
    const JsonValue* cur = this;
    while (cur != nullptr && !path.empty()) {
      const std::size_t dot = path.find('.');
      const std::string_view head =
          dot == std::string_view::npos ? path : path.substr(0, dot);
      path = dot == std::string_view::npos ? std::string_view{}
                                           : path.substr(dot + 1);
      cur = cur->find(head);
    }
    return cur;
  }

  /// Number at a dotted path, or `fallback` when missing / not a number.
  double number_at(std::string_view path, double fallback = 0) const noexcept {
    const JsonValue* v = find_path(path);
    return v != nullptr && v->is_number() ? v->number : fallback;
  }

  /// String at a dotted path, or "" when missing / not a string.
  std::string_view string_at(std::string_view path) const noexcept {
    const JsonValue* v = find_path(path);
    return v != nullptr && v->is_string() ? std::string_view(v->str)
                                          : std::string_view{};
  }
};

namespace jsondetail {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string* err;
  static constexpr int kMaxDepth = 64;

  bool fail(const char* msg) {
    if (err != nullptr && err->empty()) {
      *err = std::string(msg) + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool hex4(std::uint32_t* out) {
    if (pos + 4 > text.size()) return fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("bad hex digit in \\u escape");
      }
    }
    pos += 4;
    *out = v;
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected '\"'");
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return fail("truncated escape");
        const char e = text[pos++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            std::uint32_t cp = 0;
            if (!hex4(&cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: pair with the following \uXXXX.
              if (!literal("\\u")) return fail("lone high surrogate");
              std::uint32_t lo = 0;
              if (!hex4(&lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF) return fail("bad low surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return fail("lone low surrogate");
            }
            append_utf8(*out, cp);
            break;
          }
          default: return fail("bad escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      } else {
        *out += c;
        ++pos;
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos;
    if (consume('-')) {
    }
    if (!consume('0')) {
      if (pos >= text.size() || text[pos] < '1' || text[pos] > '9') {
        return fail("bad number");
      }
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (consume('.')) {
      if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
        return fail("bad fraction");
      }
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
        return fail("bad exponent");
      }
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    const std::string num(text.substr(start, pos - start));
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(num.c_str(), nullptr);
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out->type = JsonValue::Type::kObject;
      skip_ws();
      if (consume('}')) return true;
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        JsonValue v;
        if (!parse_value(&v, depth + 1)) return false;
        out->object.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (consume(',')) continue;
        if (consume('}')) return true;
        return fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      out->type = JsonValue::Type::kArray;
      skip_ws();
      if (consume(']')) return true;
      for (;;) {
        JsonValue v;
        if (!parse_value(&v, depth + 1)) return false;
        out->array.push_back(std::move(v));
        skip_ws();
        if (consume(',')) continue;
        if (consume(']')) return true;
        return fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return parse_string(&out->str);
    }
    if (c == 't') {
      if (!literal("true")) return fail("bad literal");
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return fail("bad literal");
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return true;
    }
    if (c == 'n') {
      if (!literal("null")) return fail("bad literal");
      out->type = JsonValue::Type::kNull;
      return true;
    }
    return parse_number(out);
  }
};

}  // namespace jsondetail

/// Parse one JSON document. Trailing non-whitespace is an error. On failure
/// returns nullopt and, when `err` is non-null, a one-line diagnostic with
/// the byte offset.
inline std::optional<JsonValue> parse_json(std::string_view text,
                                           std::string* err = nullptr) {
  jsondetail::Parser p{text, 0, err};
  JsonValue v;
  if (!p.parse_value(&v, 0)) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) {
    p.fail("trailing characters after document");
    return std::nullopt;
  }
  return v;
}

}  // namespace efrb::obs
