// Dependency-free perf_event_open(2) wrapper for per-thread hardware and
// software counters, with a graceful fallback when the kernel denies or
// cannot satisfy the syscall (seccomp'd containers, perf_event_paranoid,
// VMs with no exposed PMU).
//
// Design notes:
//
//  * Counters are opened as INDIVIDUAL fds, not one kernel group. A PMU that
//    lacks one event (common in VMs: cycles exists but cache-references does
//    not, or no PMU at all) then degrades per-counter instead of failing the
//    whole set. Each fd is opened with
//    PERF_FORMAT_TOTAL_TIME_ENABLED|TOTAL_TIME_RUNNING so multiplexed reads
//    can be scaled (count * enabled / running).
//
//  * Availability is three-valued in practice and the wrapper keeps the
//    tiers distinct: hw_available() means the cycles counter opened (the
//    profile layer's "available"), sw_available() means the software
//    task-clock counter opened (works even at perf_event_paranoid=2 with no
//    PMU), and neither means callers fall back to cycle_stamp() — the
//    TSC-family timestamp below — which always works.
//
//  * env EFRB_PERFCTR_DISABLE=1 is a kill switch: probe and open() both
//    report unavailable without issuing the syscall. Tests use it to force
//    the fallback path deterministically.
//
// The header is self-contained and compiles on non-Linux hosts (everything
// perf-specific is compiled out; availability is then always false).
#pragma once

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace efrb::obs {

/// Monotonic cycle-granularity timestamp that never fails: the TSC on
/// x86-64, the generic counter-timer on aarch64, steady_clock nanoseconds
/// elsewhere. This is the clock the phase profiler attributes with; hardware
/// counters, when available, ride alongside as totals.
inline std::uint64_t cycle_stamp() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v = 0;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Name of the clock cycle_stamp() reads on this build; disclosed in the
/// metrics `profile` cell as `cycle_source` so cross-host consumers know
/// what a "cycle" is.
inline const char* cycle_source() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return "tsc";
#elif defined(__aarch64__)
  return "cntvct";
#else
  return "steady_clock_ns";
#endif
}

/// True when the EFRB_PERFCTR_DISABLE=1 kill switch is set. Checked fresh on
/// every call (no static cache) so tests can flip it per-case.
inline bool perfctr_disabled() noexcept {
  const char* v = std::getenv("EFRB_PERFCTR_DISABLE");
  return v != nullptr && v[0] == '1' && v[1] == '\0';
}

/// Value of /proc/sys/kernel/perf_event_paranoid, or -100 when unreadable
/// (non-Linux, masked /proc). Recorded in the profile cell for diagnosis.
inline int perf_event_paranoid() noexcept {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "re");
  if (f == nullptr) return -100;
  int v = -100;
  if (std::fscanf(f, "%d", &v) != 1) v = -100;
  std::fclose(f);
  return v;
#else
  return -100;
#endif
}

/// One snapshot of every counter the group managed to open. Fields for
/// counters that did not open stay zero and the matching *_ok flag is false;
/// consumers must render those as ABSENT, never as zero.
struct PerfCounts {
  bool hw_ok = false;  // cycles counter opened (the headline availability)
  bool sw_ok = false;  // task-clock counter opened

  // Hardware events (valid iff the per-field _ok below).
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  bool cycles_ok = false;
  bool instructions_ok = false;
  bool cache_references_ok = false;
  bool cache_misses_ok = false;
  bool branch_misses_ok = false;

  // Software events.
  std::uint64_t task_clock_ns = 0;
  std::uint64_t context_switches = 0;
  bool task_clock_ok = false;
  bool context_switches_ok = false;

  // Multiplexing exposure of the cycles counter: time the event was
  // scheduled on the PMU vs time it was enabled. Scaled counts are already
  // applied to the fields above; the ratio is kept for the `derived`
  // section (multiplex_scale = enabled/running, 1.0 = never multiplexed).
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;

  /// Accumulate another thread's counts (availability intersects so a
  /// summed snapshot only claims what every contributor delivered).
  void accumulate(const PerfCounts& o) noexcept {
    if (o.hw_ok || o.sw_ok) {
      hw_ok = hw_ok || o.hw_ok;
      sw_ok = sw_ok || o.sw_ok;
    }
    cycles += o.cycles;
    instructions += o.instructions;
    cache_references += o.cache_references;
    cache_misses += o.cache_misses;
    branch_misses += o.branch_misses;
    cycles_ok = cycles_ok || o.cycles_ok;
    instructions_ok = instructions_ok || o.instructions_ok;
    cache_references_ok = cache_references_ok || o.cache_references_ok;
    cache_misses_ok = cache_misses_ok || o.cache_misses_ok;
    branch_misses_ok = branch_misses_ok || o.branch_misses_ok;
    task_clock_ns += o.task_clock_ns;
    context_switches += o.context_switches;
    task_clock_ok = task_clock_ok || o.task_clock_ok;
    context_switches_ok = context_switches_ok || o.context_switches_ok;
    time_enabled_ns += o.time_enabled_ns;
    time_running_ns += o.time_running_ns;
  }
};

/// Result of probing whether hardware counting works on this host right now.
struct PerfAvailability {
  bool hw = false;       // a cycles counter can be opened
  bool sw = false;       // a task-clock counter can be opened
  int paranoid = -100;   // /proc/sys/kernel/perf_event_paranoid
  std::string reason;    // human-readable cause when !hw ("" when hw)
};

#if defined(__linux__)
namespace detail {

inline long perf_event_open_raw(perf_event_attr* attr, pid_t pid, int cpu,
                                int group_fd, unsigned long flags) noexcept {
  return syscall(__NR_perf_event_open, attr, pid, cpu, group_fd, flags);
}

inline perf_event_attr make_attr(std::uint32_t type,
                                 std::uint64_t config) noexcept {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;  // paranoid=2 forbids kernel counting
  attr.exclude_hv = 1;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return attr;
}

/// One opened counter fd plus its identity; -1 when the open failed.
struct Counter {
  int fd = -1;
  bool ok() const noexcept { return fd >= 0; }
};

inline Counter open_counter(std::uint32_t type, std::uint64_t config,
                            int* err_out = nullptr) noexcept {
  perf_event_attr attr = make_attr(type, config);
  long fd = perf_event_open_raw(&attr, 0 /* this thread */, -1 /* any cpu */,
                                -1 /* no group */, 0);
  if (fd < 0) {
    if (err_out != nullptr) *err_out = errno;
    return Counter{};
  }
  return Counter{static_cast<int>(fd)};
}

/// Read one fd and multiplex-scale the count. Returns false on read error.
inline bool read_scaled(int fd, std::uint64_t* count,
                        std::uint64_t* enabled_ns,
                        std::uint64_t* running_ns) noexcept {
  std::uint64_t buf[3] = {0, 0, 0};  // value, time_enabled, time_running
  ssize_t n = read(fd, buf, sizeof(buf));
  if (n != static_cast<ssize_t>(sizeof(buf))) return false;
  std::uint64_t value = buf[0];
  if (buf[2] != 0 && buf[2] < buf[1]) {
    // Multiplexed: extrapolate to the full enabled window.
    long double scaled = static_cast<long double>(value) *
                         static_cast<long double>(buf[1]) /
                         static_cast<long double>(buf[2]);
    value = static_cast<std::uint64_t>(scaled);
  }
  *count = value;
  if (enabled_ns != nullptr) *enabled_ns = buf[1];
  if (running_ns != nullptr) *running_ns = buf[2];
  return true;
}

}  // namespace detail
#endif  // __linux__

/// Probe availability without keeping anything open. Fresh syscall every
/// call — intentionally uncached so EFRB_PERFCTR_DISABLE can be flipped
/// between calls (tests) and so a first-use EPERM is re-checked after a
/// sysctl change.
inline PerfAvailability probe_perf_availability() {
  PerfAvailability out;
  out.paranoid = perf_event_paranoid();
  if (perfctr_disabled()) {
    out.reason = "disabled by EFRB_PERFCTR_DISABLE=1";
    return out;
  }
#if defined(__linux__)
  int err = 0;
  detail::Counter hw = detail::open_counter(
      PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, &err);
  if (hw.ok()) {
    out.hw = true;
    close(hw.fd);
  } else {
    out.reason = std::string("perf_event_open(HW_CPU_CYCLES): ") +
                 std::strerror(err) +
                 (err == ENOENT ? " (no PMU exposed?)" : "");
  }
  detail::Counter sw = detail::open_counter(
      PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK, nullptr);
  if (sw.ok()) {
    out.sw = true;
    close(sw.fd);
  }
#else
  out.reason = "perf_event_open unavailable on this platform";
#endif
  return out;
}

/// A per-thread set of counters. Open on the measuring thread, enable,
/// run the measured region, then read() once at the end. Not thread-safe;
/// one instance per thread (counters are bound to the opening thread).
class PerfCounterGroup {
 public:
  PerfCounterGroup() = default;
  ~PerfCounterGroup() { close_all(); }
  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// Open whatever this host grants. Returns true when at least one counter
  /// opened. With EFRB_PERFCTR_DISABLE=1 opens nothing and returns false.
  bool open() {
    close_all();
    if (perfctr_disabled()) {
      reason_ = "disabled by EFRB_PERFCTR_DISABLE=1";
      return false;
    }
#if defined(__linux__)
    int err = 0;
    cycles_ = detail::open_counter(PERF_TYPE_HARDWARE,
                                   PERF_COUNT_HW_CPU_CYCLES, &err);
    if (!cycles_.ok()) {
      reason_ = std::string("perf_event_open(HW_CPU_CYCLES): ") +
                std::strerror(err) + (err == ENOENT ? " (no PMU exposed?)" : "");
    }
    instructions_ = detail::open_counter(PERF_TYPE_HARDWARE,
                                         PERF_COUNT_HW_INSTRUCTIONS);
    cache_refs_ = detail::open_counter(PERF_TYPE_HARDWARE,
                                       PERF_COUNT_HW_CACHE_REFERENCES);
    cache_misses_ = detail::open_counter(PERF_TYPE_HARDWARE,
                                         PERF_COUNT_HW_CACHE_MISSES);
    branch_misses_ = detail::open_counter(PERF_TYPE_HARDWARE,
                                          PERF_COUNT_HW_BRANCH_MISSES);
    task_clock_ = detail::open_counter(PERF_TYPE_SOFTWARE,
                                       PERF_COUNT_SW_TASK_CLOCK);
    ctx_switches_ = detail::open_counter(PERF_TYPE_SOFTWARE,
                                         PERF_COUNT_SW_CONTEXT_SWITCHES);
    return cycles_.ok() || task_clock_.ok();
#else
    reason_ = "perf_event_open unavailable on this platform";
    return false;
#endif
  }

  /// Cycles counter opened — the profile layer's headline "available".
  bool hw_available() const noexcept {
#if defined(__linux__)
    return cycles_.ok();
#else
    return false;
#endif
  }

  /// Software task-clock opened (works even with no PMU at paranoid<=2).
  bool sw_available() const noexcept {
#if defined(__linux__)
    return task_clock_.ok();
#else
    return false;
#endif
  }

  /// Why hw_available() is false; empty when it is true.
  const std::string& unavailable_reason() const noexcept { return reason_; }

  void enable() noexcept {
#if defined(__linux__)
    for (int fd : fds())
      if (fd >= 0) ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
#endif
  }

  void disable() noexcept {
#if defined(__linux__)
    for (int fd : fds())
      if (fd >= 0) ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
#endif
  }

  /// Read every open counter, multiplex-scaled. Counters that failed to
  /// open (or to read) leave their fields zero with _ok false.
  PerfCounts read() const noexcept {
    PerfCounts out;
#if defined(__linux__)
    std::uint64_t en = 0;
    std::uint64_t run = 0;
    if (cycles_.ok() &&
        detail::read_scaled(cycles_.fd, &out.cycles, &en, &run)) {
      out.cycles_ok = true;
      out.hw_ok = true;
      out.time_enabled_ns = en;
      out.time_running_ns = run;
    }
    if (instructions_.ok() &&
        detail::read_scaled(instructions_.fd, &out.instructions, nullptr,
                            nullptr)) {
      out.instructions_ok = true;
    }
    if (cache_refs_.ok() &&
        detail::read_scaled(cache_refs_.fd, &out.cache_references, nullptr,
                            nullptr)) {
      out.cache_references_ok = true;
    }
    if (cache_misses_.ok() &&
        detail::read_scaled(cache_misses_.fd, &out.cache_misses, nullptr,
                            nullptr)) {
      out.cache_misses_ok = true;
    }
    if (branch_misses_.ok() &&
        detail::read_scaled(branch_misses_.fd, &out.branch_misses, nullptr,
                            nullptr)) {
      out.branch_misses_ok = true;
    }
    if (task_clock_.ok() &&
        detail::read_scaled(task_clock_.fd, &out.task_clock_ns, nullptr,
                            nullptr)) {
      out.task_clock_ok = true;
      out.sw_ok = true;
    }
    if (ctx_switches_.ok() &&
        detail::read_scaled(ctx_switches_.fd, &out.context_switches, nullptr,
                            nullptr)) {
      out.context_switches_ok = true;
    }
#endif
    return out;
  }

 private:
#if defined(__linux__)
  std::array<int, 7> fds() const noexcept {
    return {cycles_.fd,       instructions_.fd,  cache_refs_.fd,
            cache_misses_.fd, branch_misses_.fd, task_clock_.fd,
            ctx_switches_.fd};
  }
#endif

  void close_all() noexcept {
#if defined(__linux__)
    for (int fd : fds())
      if (fd >= 0) close(fd);
    cycles_ = instructions_ = cache_refs_ = cache_misses_ = branch_misses_ =
        task_clock_ = ctx_switches_ = detail::Counter{};
#endif
    reason_.clear();
  }

#if defined(__linux__)
  detail::Counter cycles_;
  detail::Counter instructions_;
  detail::Counter cache_refs_;
  detail::Counter cache_misses_;
  detail::Counter branch_misses_;
  detail::Counter task_clock_;
  detail::Counter ctx_switches_;
#endif
  std::string reason_;
};

}  // namespace efrb::obs
