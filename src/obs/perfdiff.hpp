// Snapshot comparison for efrb-metrics documents: the engine behind
// tools/efrb_perfdiff, kept in a header so the logic is unit-testable.
//
// Two BENCH_*.json documents (schema "efrb-metrics", version >= 2) are
// loaded, cells are matched by identity (name + threads + mix + key_range +
// zipf), and for each matched cell the comparable metrics are diffed:
//
//   result.mops                 higher is better
//   latency.<op>.p50_ns/p99_ns  lower is better   (when both cells carry it)
//   profile.cycles_per_op       lower is better   (when both cells carry it)
//
// A delta counts as a regression only when it clears BOTH a relative
// threshold and an absolute floor — the floors keep microscopic absolute
// swings on tiny values (a 0.001 -> 0.0013 mops cell) from tripping the
// relative gate. The relative threshold is noise-aware: when both documents
// record meta.repeats >= 3 (min-of-N snapshots are much tighter than
// single-shot runs) the threshold is halved.
//
// Cross-host refusal: comparing cycle counts across different machines is
// noise by construction, so when BOTH documents carry a meta.hostname and
// they differ, the comparison refuses (PerfDiffReport::cross_host_refused)
// unless opts.allow_cross_host. Documents without meta (benchmark binaries
// write none; scripts/bench_json.sh injects it) compare without the guard.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json_parse.hpp"

namespace efrb::obs {

struct PerfDiffOptions {
  double rel_threshold = 0.15;   // fraction; 0.15 = 15%
  double mops_floor = 0.01;      // Mops/s absolute floor
  double ns_floor = 50.0;        // nanoseconds absolute floor
  double cycles_floor = 25.0;    // cycles/op absolute floor
  bool allow_cross_host = false;
};

struct MetricDelta {
  std::string cell;     // "name t=<threads> mix=<mix>"
  std::string metric;   // e.g. "result.mops"
  double baseline = 0;  // value in document A
  double candidate = 0; // value in document B
  double rel_change = 0;  // signed, positive = candidate worse
  bool regression = false;
  bool improvement = false;  // cleared the same gates in the good direction
};

struct PerfDiffReport {
  bool ok = false;  // inputs parsed and were comparable (regardless of deltas)
  std::string error;  // set when !ok
  bool cross_host_refused = false;
  std::string host_a;
  std::string host_b;
  double effective_threshold = 0;
  std::vector<MetricDelta> deltas;
  std::vector<std::string> notes;  // unmatched cells, config drift, ...

  std::size_t regressions() const noexcept {
    std::size_t n = 0;
    for (const MetricDelta& d : deltas) n += d.regression ? 1 : 0;
    return n;
  }
  std::size_t improvements() const noexcept {
    std::size_t n = 0;
    for (const MetricDelta& d : deltas) n += d.improvement ? 1 : 0;
    return n;
  }
};

namespace perfdiffdetail {

inline std::string cell_key(const JsonValue& cell) {
  std::string key(cell.string_at("name"));
  key += "|t=";
  key += std::to_string(
      static_cast<std::int64_t>(cell.number_at("config.threads", -1)));
  key += "|mix=";
  key += cell.string_at("config.mix");
  key += "|range=";
  key += std::to_string(
      static_cast<std::int64_t>(cell.number_at("config.key_range", -1)));
  const JsonValue* zipf = cell.find_path("config.zipf");
  if (zipf != nullptr && zipf->is_bool() && zipf->boolean) key += "|zipf";
  return key;
}

inline std::string cell_label(const JsonValue& cell) {
  std::string label(cell.string_at("name"));
  label += " t=";
  label += std::to_string(
      static_cast<std::int64_t>(cell.number_at("config.threads", -1)));
  label += " mix=";
  label += cell.string_at("config.mix");
  return label;
}

/// One comparable metric: dotted path + direction.
struct MetricSpec {
  const char* path;
  bool higher_better;
  double abs_floor(const PerfDiffOptions& o) const noexcept {
    const std::string_view p(path);
    if (p == "result.mops") return o.mops_floor;
    if (p.find("_ns") != std::string_view::npos) return o.ns_floor;
    return o.cycles_floor;
  }
};

inline const MetricSpec kMetrics[] = {
    {"result.mops", true},
    {"latency.find.p50_ns", false},
    {"latency.find.p99_ns", false},
    {"latency.insert.p50_ns", false},
    {"latency.insert.p99_ns", false},
    {"latency.erase.p50_ns", false},
    {"latency.erase.p99_ns", false},
    {"profile.cycles_per_op", false},
};

}  // namespace perfdiffdetail

/// Compare two parsed efrb-metrics documents. `a` is the baseline, `b` the
/// candidate.
inline PerfDiffReport perfdiff(const JsonValue& a, const JsonValue& b,
                               const PerfDiffOptions& opts = {}) {
  using namespace perfdiffdetail;
  PerfDiffReport rep;

  for (const auto* doc : {&a, &b}) {
    if (doc->string_at("schema") != "efrb-metrics") {
      rep.error = "not an efrb-metrics document (schema key mismatch)";
      return rep;
    }
    if (doc->number_at("schema_version", 0) < 2) {
      rep.error = "schema_version < 2 (no saturated/timeseries semantics); "
                  "regenerate the snapshot";
      return rep;
    }
  }

  rep.host_a = a.string_at("meta.hostname");
  rep.host_b = b.string_at("meta.hostname");
  if (!rep.host_a.empty() && !rep.host_b.empty() && rep.host_a != rep.host_b) {
    if (!opts.allow_cross_host) {
      rep.cross_host_refused = true;
      rep.error = "snapshots come from different hosts ('" + rep.host_a +
                  "' vs '" + rep.host_b +
                  "'); cycle comparisons across machines are noise — rerun on "
                  "one host or pass --allow-cross-host";
      return rep;
    }
    rep.notes.push_back("cross-host comparison forced ('" + rep.host_a +
                        "' vs '" + rep.host_b + "'): treat deltas as noise");
  }

  // Noise-aware threshold: min-of-N snapshots (repeats >= 3 on both sides)
  // earn a halved relative gate.
  const double repeats_a = a.number_at("meta.repeats", 1);
  const double repeats_b = b.number_at("meta.repeats", 1);
  rep.effective_threshold = opts.rel_threshold;
  if (std::min(repeats_a, repeats_b) >= 3) rep.effective_threshold *= 0.5;

  const JsonValue* cells_a = a.find("cells");
  const JsonValue* cells_b = b.find("cells");
  if (cells_a == nullptr || !cells_a->is_array() || cells_b == nullptr ||
      !cells_b->is_array()) {
    rep.error = "missing cells array";
    return rep;
  }

  std::size_t matched = 0;
  for (const JsonValue& ca : cells_a->array) {
    const std::string key = cell_key(ca);
    const JsonValue* cb = nullptr;
    for (const JsonValue& candidate : cells_b->array) {
      if (cell_key(candidate) == key) {
        cb = &candidate;
        break;
      }
    }
    if (cb == nullptr) {
      rep.notes.push_back("cell only in baseline: " + cell_label(ca));
      continue;
    }
    ++matched;

    // Config drift worth a note (still compared): seed or duration changed.
    const double seed_a = ca.number_at("config.seed", -1);
    const double seed_b = cb->number_at("config.seed", -1);
    if (seed_a != seed_b) {
      rep.notes.push_back("seed differs for " + cell_label(ca) +
                          " (different op streams; deltas are statistical)");
    }
    const double dur_a = ca.number_at("config.duration_ms", -1);
    const double dur_b = cb->number_at("config.duration_ms", -1);
    if (dur_a != dur_b) {
      rep.notes.push_back("duration differs for " + cell_label(ca) + " (" +
                          std::to_string(static_cast<long>(dur_a)) + "ms vs " +
                          std::to_string(static_cast<long>(dur_b)) + "ms)");
    }

    for (const MetricSpec& spec : kMetrics) {
      const JsonValue* va = ca.find_path(spec.path);
      const JsonValue* vb = cb->find_path(spec.path);
      if (va == nullptr || vb == nullptr || !va->is_number() ||
          !vb->is_number()) {
        continue;  // metric absent on one side — not comparable, not an error
      }
      MetricDelta d;
      d.cell = cell_label(ca);
      d.metric = spec.path;
      d.baseline = va->number;
      d.candidate = vb->number;
      if (d.baseline <= 0) continue;  // empty histogram / zero-op cell
      // Positive rel_change = candidate worse, whatever the direction.
      const double change = (d.candidate - d.baseline) / d.baseline;
      d.rel_change = spec.higher_better ? -change : change;
      const double abs_delta = std::fabs(d.candidate - d.baseline);
      const bool significant = std::fabs(d.rel_change) >
                                   rep.effective_threshold &&
                               abs_delta > spec.abs_floor(opts);
      d.regression = significant && d.rel_change > 0;
      d.improvement = significant && d.rel_change < 0;
      rep.deltas.push_back(std::move(d));
    }
  }
  for (const JsonValue& cb : cells_b->array) {
    const std::string key = cell_key(cb);
    bool found = false;
    for (const JsonValue& ca : cells_a->array) {
      if (cell_key(ca) == key) {
        found = true;
        break;
      }
    }
    if (!found) {
      rep.notes.push_back("cell only in candidate: " + cell_label(cb));
    }
  }

  if (matched == 0) {
    rep.error = "no cells matched between the two documents";
    return rep;
  }
  rep.ok = true;
  return rep;
}

/// Render the report as an aligned text table: regressions first, then
/// improvements, then (with `verbose`) the unchanged rows; notes last.
inline std::string render_perfdiff(const PerfDiffReport& rep,
                                   bool verbose = false) {
  std::string out;
  char line[256];
  auto emit = [&out, &line](const MetricDelta& d, const char* tag) {
    std::snprintf(line, sizeof(line), "%-10s %-42s %-24s %14.4g %14.4g %+8.1f%%\n",
                  tag, d.cell.c_str(), d.metric.c_str(), d.baseline,
                  d.candidate,
                  // Signed change in the metric's own direction (positive =
                  // the number went up).
                  100.0 * (d.candidate - d.baseline) /
                      (d.baseline != 0 ? d.baseline : 1));
    out += line;
  };
  std::snprintf(line, sizeof(line), "%-10s %-42s %-24s %14s %14s %9s\n", "",
                "cell", "metric", "baseline", "candidate", "change");
  out += line;
  for (const MetricDelta& d : rep.deltas) {
    if (d.regression) emit(d, "REGRESSED");
  }
  for (const MetricDelta& d : rep.deltas) {
    if (d.improvement) emit(d, "improved");
  }
  if (verbose) {
    for (const MetricDelta& d : rep.deltas) {
      if (!d.regression && !d.improvement) emit(d, "");
    }
  }
  std::snprintf(line, sizeof(line),
                "%zu metric(s) compared, %zu regression(s), %zu "
                "improvement(s), threshold %.0f%%\n",
                rep.deltas.size(), rep.regressions(), rep.improvements(),
                100.0 * rep.effective_threshold);
  out += line;
  for (const std::string& n : rep.notes) {
    out += "note: ";
    out += n;
    out += "\n";
  }
  return out;
}

}  // namespace efrb::obs
