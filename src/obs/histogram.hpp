// Log-bucketed (HDR-style) latency histogram with a wait-free record path.
//
// The bucket layout follows the HdrHistogram idea: values are grouped into
// octaves (powers of two), each octave split into 2^kSubBits equal-width
// sub-buckets, so the relative quantization error is bounded by 2^-kSubBits
// (~3% at the default 5 sub-bucket bits) at every magnitude. Values are
// nanoseconds in this repository's use, but the type is unit-agnostic.
//
// Concurrency contract:
//   * record() is wait-free and allocation-free: one index computation (bit
//     tricks, no loops) plus three relaxed fetch_adds into a fixed-size
//     atomic array owned by the histogram. No mutex, no heap, no CAS loop —
//     the property the acceptance criteria pin down and obs_test verifies
//     under TSan. Counters are diagnostics, never synchronization, so all
//     accesses are relaxed (same policy as StatCounters in op_context.hpp).
//   * The intended sharding is one histogram per thread merged on snapshot
//     (merge() reads relaxed and adds into *this), but concurrent record()
//     into a shared instance is also safe — counts are never lost, and a
//     concurrent snapshot sees each sample either fully or not at all per
//     counter (quantiles over a moving window are approximate by nature).
//
// Quantiles: nearest-rank over the bucket cumulative counts, reported as the
// bucket's upper bound — a conservative estimate that is always within one
// bucket width of the exact order statistic (obs_test checks this against
// util/stats.hpp's Summary on identical samples).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "util/assert.hpp"

namespace efrb::obs {

class LatencyHistogram {
 public:
  /// Sub-bucket resolution: 2^kSubBits sub-buckets per octave.
  static constexpr unsigned kSubBits = 5;
  static constexpr std::uint64_t kSubCount = std::uint64_t{1} << kSubBits;
  /// Largest representable value (~2^38 ns ≈ 4.6 minutes); larger samples
  /// are clamped into the top bucket rather than dropped, and counted in
  /// saturated() so consumers can tell a clamped tail from a measured one.
  static constexpr unsigned kMaxValueBits = 38;
  static constexpr std::uint64_t kMaxValue =
      (std::uint64_t{1} << kMaxValueBits) - 1;
  /// Octaves 0..kMaxValueBits-kSubBits, each contributing kSubCount buckets.
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxValueBits - kSubBits + 1) << kSubBits;

  /// Bucket index for a value. Octave 0 holds values [0, kSubCount) exactly
  /// (width-1 buckets); octave e >= 1 holds [kSubCount << (e-1),
  /// kSubCount << e) in kSubCount buckets of width 2^(e-1).
  static constexpr std::size_t index_of(std::uint64_t v) noexcept {
    if (v > kMaxValue) v = kMaxValue;
    if (v < kSubCount) return static_cast<std::size_t>(v);
    const unsigned e = static_cast<unsigned>(std::bit_width(v)) - kSubBits;
    return (static_cast<std::size_t>(e) << kSubBits) +
           static_cast<std::size_t>((v >> (e - 1)) - kSubCount);
  }

  /// Smallest value mapping to bucket i.
  static constexpr std::uint64_t bucket_lower(std::size_t i) noexcept {
    const unsigned e = static_cast<unsigned>(i >> kSubBits);
    const std::uint64_t sub = i & (kSubCount - 1);
    return e == 0 ? sub : (kSubCount + sub) << (e - 1);
  }

  /// Largest value mapping to bucket i (inclusive).
  static constexpr std::uint64_t bucket_upper(std::size_t i) noexcept {
    const unsigned e = static_cast<unsigned>(i >> kSubBits);
    const std::uint64_t width = e == 0 ? 1 : std::uint64_t{1} << (e - 1);
    return bucket_lower(i) + width - 1;
  }

  /// Width of the bucket a given value falls into — the quantization bound
  /// quoted in the acceptance criteria ("within one bucket width").
  static constexpr std::uint64_t bucket_width(std::uint64_t v) noexcept {
    const std::size_t i = index_of(v);
    return bucket_upper(i) - bucket_lower(i) + 1;
  }

  /// Wait-free, allocation-free; see the header comment for the contract.
  /// Values above kMaxValue are clamped into the top bucket AND counted in
  /// saturated(): the clamp keeps quantiles usable, the counter keeps the
  /// clamping honest — a nonzero saturated() means max/p999 are floor
  /// estimates, not measurements.
  void record(std::uint64_t v) noexcept {
    buckets_[index_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    if (v > kMaxValue) {
      saturated_.fetch_add(1, std::memory_order_relaxed);
      v = kMaxValue;
    }
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  /// Records that exceeded the representable domain and were clamped into
  /// the top bucket.
  std::uint64_t saturated() const noexcept {
    return saturated_.load(std::memory_order_relaxed);
  }

  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  /// Add another histogram's counts into this one (relaxed reads; safe
  /// against a concurrent recorder on `other`, in which case the merge is a
  /// consistent-enough snapshot of a moving target).
  void merge(const LatencyHistogram& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
      if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    saturated_.fetch_add(other.saturated_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }

  void clear() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    saturated_.store(0, std::memory_order_relaxed);
  }

  /// p in [0,100]: upper bound of the bucket holding the nearest-rank order
  /// statistic. Within one bucket width of the exact value.
  std::uint64_t percentile(double p) const noexcept {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    if (p < 0) p = 0;
    if (p > 100) p = 100;
    // Nearest rank: the ceil(p/100 * n)-th smallest sample (1-based), with
    // rank 0 promoted to 1 so p=0 reports the minimum's bucket.
    std::uint64_t rank =
        static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(n) + 0.5);
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      cum += buckets_[i].load(std::memory_order_relaxed);
      if (cum >= rank) return bucket_upper(i);
    }
    return bucket_upper(kBuckets - 1);
  }

  /// Upper bound of the highest non-empty bucket (0 when empty).
  std::uint64_t max_estimate() const noexcept {
    for (std::size_t i = kBuckets; i-- > 0;) {
      if (buckets_[i].load(std::memory_order_relaxed) != 0) {
        return bucket_upper(i);
      }
    }
    return 0;
  }

  /// Lower bound of the lowest non-empty bucket (0 when empty).
  std::uint64_t min_estimate() const noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (buckets_[i].load(std::memory_order_relaxed) != 0) {
        return bucket_lower(i);
      }
    }
    return 0;
  }

  /// Visit every non-empty bucket in value order:
  /// fn(lower, upper_inclusive, count).
  template <typename Fn>
  void for_each_bucket(Fn&& fn) const {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
      if (c != 0) fn(bucket_lower(i), bucket_upper(i), c);
    }
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> saturated_{0};
};

static_assert(LatencyHistogram::index_of(0) == 0);
static_assert(LatencyHistogram::index_of(31) == 31);
static_assert(LatencyHistogram::index_of(32) == 32);   // octave 1, sub 0
static_assert(LatencyHistogram::index_of(63) == 63);   // octave 1, sub 31
static_assert(LatencyHistogram::index_of(64) == 64);   // octave 2, sub 0
static_assert(LatencyHistogram::bucket_lower(64) == 64);
static_assert(LatencyHistogram::bucket_upper(64) == 65);  // width 2 in octave 2
static_assert(LatencyHistogram::index_of(LatencyHistogram::kMaxValue) ==
              LatencyHistogram::kBuckets - 1);

}  // namespace efrb::obs
