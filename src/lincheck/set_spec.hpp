// Sequential specification of the dictionary (set) abstract data type used by
// the linearizability checker. The state is a 64-bit key-presence bitmask, so
// checked histories must draw keys from [0, 64) — plenty for targeted
// concurrency tests, and it makes memoized state comparisons O(1).
#pragma once

#include <cstdint>
#include <vector>

#include "lincheck/history.hpp"
#include "util/assert.hpp"

namespace efrb::lincheck {

struct BitmaskSetSpec {
  using Operation = lincheck::Operation;
  using State = std::uint64_t;  // bit k set <=> key k present
  static constexpr std::uint64_t kMaxKey = 64;

  static constexpr State empty_state() noexcept { return 0; }

  /// If `op` applied in `state` would return op.result, returns true and sets
  /// `next` to the post-state; otherwise returns false.
  static bool apply(State state, const Operation& op, State& next) {
    EFRB_ASSERT_MSG(op.key < kMaxKey, "lincheck keys must be < 64");
    const std::uint64_t bit = std::uint64_t{1} << op.key;
    const bool present = (state & bit) != 0;
    switch (op.type) {
      case OpType::kFind:
        next = state;
        return op.result == present;
      case OpType::kInsert:
        next = state | bit;
        return op.result == !present;
      case OpType::kErase:
        next = state & ~bit;
        return op.result == present;
    }
    return false;
  }

  /// Post-quiescence state. Every *successful* insert/erase flips its key's
  /// presence (in any valid linearization successful updates on one key
  /// strictly alternate), so the state after the cut is the state before it
  /// with each key flipped once per successful modifying operation —
  /// independent of which valid linearization was chosen. This well-defined
  /// final state is what enables windowed checking for the set spec.
  static State final_state(const std::vector<Operation>& window, State state) {
    for (const Operation& op : window) {
      if (op.type == OpType::kFind || !op.result) continue;
      state ^= std::uint64_t{1} << op.key;
    }
    return state;
  }
};

}  // namespace efrb::lincheck
