// Concurrent-history recording for linearizability checking.
//
// §5 of the paper proves linearizability; this module lets the test suite
// check the claim empirically on real executions: each thread timestamps its
// operations with a shared logical clock (an atomic counter, so invocation
// and response orders are total and unique), and the checker searches for a
// valid linearization (see checker.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "workload/op_mix.hpp"

namespace efrb::lincheck {

/// One completed operation: what was called, what it returned, and the
/// logical-time interval [invoke, response] during which it was pending.
struct Operation {
  OpType type;
  std::uint64_t key;
  bool result;
  std::uint64_t invoke;
  std::uint64_t response;
  unsigned thread;
};

using History = std::vector<Operation>;

/// Shared logical clock + per-thread recorders. Usage per thread:
///   auto t0 = rec.now();
///   bool r = set.insert(k);
///   rec.record(tid, OpType::kInsert, k, r, t0);
class Recorder {
 public:
  explicit Recorder(unsigned threads) : logs_(threads) {}

  std::uint64_t now() noexcept {
    return clock_.fetch_add(1, std::memory_order_acq_rel);
  }

  void record(unsigned tid, OpType type, std::uint64_t key, bool result,
              std::uint64_t invoke) {
    logs_[tid].push_back(
        Operation{type, key, result, invoke, now(), tid});
  }

  /// Merge all per-thread logs (call after joining the worker threads).
  History collect() const {
    History all;
    for (const auto& log : logs_) {
      all.insert(all.end(), log.begin(), log.end());
    }
    return all;
  }

 private:
  std::atomic<std::uint64_t> clock_{0};
  std::vector<History> logs_;
};

}  // namespace efrb::lincheck
