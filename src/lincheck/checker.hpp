// Linearizability checker (Wing & Gong's algorithm with Lowe-style
// memoization of failed configurations), generic over a sequential
// specification.
//
// A Spec provides:
//   * Operation — the recorded op type, with .invoke/.response logical times;
//   * State     — compact hashable abstract state;
//   * empty_state();
//   * apply(state, op, next) — true iff op's recorded results are legal in
//     `state`, with `next` the post-state;
//   * optionally final_state(window, state) — the (unique) abstract state
//     after a quiescent point, enabling windowed checking of long histories.
//     Specs whose overlapping operations can leave an ambiguous final state
//     (e.g. maps with racing assigns) omit it and check whole histories.
//
// Search: an operation may be linearized first iff no other pending op's
// response precedes its invocation; try each legal candidate and recurse,
// memoizing failed (remaining-set, state) configurations. Exponential in the
// worst case; the histories our tests record (≤ kMaxWindow ops per window)
// check in microseconds.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "lincheck/history.hpp"
#include "lincheck/set_spec.hpp"
#include "util/assert.hpp"

namespace efrb::lincheck {

struct CheckResult {
  bool linearizable = true;
  std::size_t windows_checked = 0;
  std::size_t windows_skipped = 0;  // larger than the tractable bound
};

template <typename Spec>
class BasicChecker {
 public:
  using Operation = typename Spec::Operation;
  using History = std::vector<Operation>;
  using State = typename Spec::State;

  /// Max ops per window the exhaustive search accepts (mask fits in u32).
  static constexpr std::size_t kMaxWindow = 24;

  /// Checks a single window starting from `initial` abstract state.
  static bool check(const History& h, State initial = Spec::empty_state()) {
    EFRB_ASSERT(h.size() <= kMaxWindow);
    const auto n = static_cast<std::uint32_t>(h.size());
    if (n == 0) return true;
    Memo memo;
    return dfs(h, (std::uint32_t{1} << n) - 1, initial, memo);
  }

  /// Splits `h` at quiescent points and checks each window, threading the
  /// abstract state across the cuts via Spec::final_state. Windows larger
  /// than kMaxWindow are skipped and counted — tests shape their workloads
  /// (bursts separated by joins) so windows stay small.
  static CheckResult check_windowed(History h)
    requires requires(const History& w, State s) {
      { Spec::final_state(w, s) } -> std::convertible_to<State>;
    }
  {
    CheckResult r;
    std::sort(h.begin(), h.end(), [](const Operation& a, const Operation& b) {
      return a.invoke < b.invoke;
    });
    std::size_t begin = 0;
    std::uint64_t max_response = 0;
    State state = Spec::empty_state();
    for (std::size_t i = 0; i < h.size(); ++i) {
      if (i > begin && h[i].invoke > max_response) {
        step_window(h, begin, i, state, r);
        begin = i;
      }
      max_response = std::max(max_response, h[i].response);
    }
    if (begin < h.size()) step_window(h, begin, h.size(), state, r);
    return r;
  }

 private:
  struct Config {
    std::uint32_t mask;
    State state;
    bool operator==(const Config& o) const noexcept {
      return mask == o.mask && state == o.state;
    }
  };
  struct ConfigHash {
    std::size_t operator()(const Config& c) const noexcept {
      std::uint64_t x =
          static_cast<std::uint64_t>(c.state) * 0x9e3779b97f4a7c15ULL ^ c.mask;
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdULL;
      x ^= x >> 33;
      return static_cast<std::size_t>(x);
    }
  };
  using Memo = std::unordered_set<Config, ConfigHash>;

  static bool dfs(const History& h, std::uint32_t remaining, State state,
                  Memo& memo) {
    if (remaining == 0) return true;
    if (memo.count(Config{remaining, state}) != 0) return false;
    // An op may be linearized first iff no other remaining op completed
    // before it was invoked.
    std::uint64_t min_response = ~std::uint64_t{0};
    for (std::uint32_t m = remaining; m != 0; m &= m - 1) {
      const auto i = static_cast<std::uint32_t>(__builtin_ctz(m));
      min_response = std::min(min_response, h[i].response);
    }
    for (std::uint32_t m = remaining; m != 0; m &= m - 1) {
      const auto i = static_cast<std::uint32_t>(__builtin_ctz(m));
      if (h[i].invoke > min_response) continue;  // someone finished before it
      State next;
      if (!Spec::apply(state, h[i], next)) continue;
      if (dfs(h, remaining & ~(std::uint32_t{1} << i), next, memo)) {
        return true;
      }
    }
    memo.insert(Config{remaining, state});
    return false;
  }

  static void step_window(const History& h, std::size_t begin, std::size_t end,
                          State& state, CheckResult& r)
    requires requires(const History& w, State s) {
      { Spec::final_state(w, s) } -> std::convertible_to<State>;
    }
  {
    History window(h.begin() + static_cast<std::ptrdiff_t>(begin),
                   h.begin() + static_cast<std::ptrdiff_t>(end));
    if (window.size() > kMaxWindow) {
      ++r.windows_skipped;
    } else {
      ++r.windows_checked;
      if (!check(window, state)) r.linearizable = false;
    }
    state = Spec::final_state(window, state);
  }
};

/// The default checker over the set specification (paper's dictionary ADT).
using Checker = BasicChecker<BitmaskSetSpec>;

}  // namespace efrb::lincheck
