// Sequential specification of the *map* abstract data type (keys with
// auxiliary data, §3) — used to check linearizability of the value-carrying
// operations including the insert_or_assign extension.
//
// Compact state for memoization: 8 keys x 4-bit values packed in a uint64;
// nibble 0xF means "absent", so checked histories draw keys from [0,8) and
// values from [0,15).
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace efrb::lincheck {

enum class MapOpType : std::uint8_t {
  kGet,     // result: ok = present, value_out = stored value when present
  kPut,     // insert(k,v): ok iff k was absent (no overwrite)
  kAssign,  // insert_or_assign(k,v): ok iff k was absent; always stores v
  kErase,   // erase(k): ok iff k was present
};

struct MapOperation {
  MapOpType type;
  std::uint64_t key;
  std::uint64_t value_arg = 0;  // for kPut/kAssign
  bool ok = false;              // boolean result
  std::uint64_t value_out = 0;  // for kGet when ok
  std::uint64_t invoke = 0;
  std::uint64_t response = 0;
  unsigned thread = 0;
};

struct NibbleMapSpec {
  using Operation = MapOperation;
  using State = std::uint64_t;  // 8 x 4-bit slots; 0xF = absent
  static constexpr std::uint64_t kMaxKey = 8;
  static constexpr std::uint64_t kAbsent = 0xF;
  static constexpr std::uint64_t kMaxValue = 0xE;

  static constexpr State empty_state() noexcept {
    return ~std::uint64_t{0};  // all nibbles 0xF
  }

  static std::uint64_t nibble(State s, std::uint64_t k) noexcept {
    return (s >> (k * 4)) & 0xF;
  }
  static State with_nibble(State s, std::uint64_t k, std::uint64_t v) noexcept {
    const unsigned shift = static_cast<unsigned>(k * 4);
    return (s & ~(std::uint64_t{0xF} << shift)) | (v << shift);
  }

  /// True iff `op` applied in `state` could return the recorded results;
  /// sets `next` to the post-state.
  static bool apply(State state, const Operation& op, State& next) {
    EFRB_ASSERT_MSG(op.key < kMaxKey, "map-lincheck keys must be < 8");
    const std::uint64_t cur = nibble(state, op.key);
    const bool present = cur != kAbsent;
    switch (op.type) {
      case MapOpType::kGet:
        next = state;
        if (op.ok != present) return false;
        return !present || op.value_out == cur;
      case MapOpType::kPut:
        EFRB_ASSERT(op.value_arg <= kMaxValue);
        next = present ? state : with_nibble(state, op.key, op.value_arg);
        return op.ok == !present;
      case MapOpType::kAssign:
        EFRB_ASSERT(op.value_arg <= kMaxValue);
        next = with_nibble(state, op.key, op.value_arg);
        return op.ok == !present;  // "true iff newly inserted"
      case MapOpType::kErase:
        next = present ? with_nibble(state, op.key, kAbsent) : state;
        return op.ok == present;
    }
    return false;
  }

  // NOTE: no final_state() — overlapping assigns make the post-quiescence
  // value order-dependent, so windowed checking is unavailable for maps;
  // check whole (small) histories instead.
};

using MapHistory = std::vector<MapOperation>;

}  // namespace efrb::lincheck
