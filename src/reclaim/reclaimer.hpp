// Reclamation policy interface + the trivial leaky policy.
//
// The paper (§4.1) assumes nodes and Info records "are always allocated new
// memory locations" and defers reclamation to a safe-GC environment (§6). In
// C++ we must supply that substrate. Data structures in this library are
// parameterized on a Reclaimer policy with this contract:
//
//   * guard = reclaimer.pin()    — RAII region; every shared-memory traversal
//                                  must happen inside a pinned region.
//   * reclaimer.retire<T>(p)     — hand over an object that has been made
//                                  unreachable from the structure's roots; the
//                                  policy frees it once no pinned region that
//                                  could still reach it remains.
//
// The safety obligation matches the paper's condition verbatim: "a memory
// location is not reallocated while any process could reach that location by
// following a chain of pointers."
#pragma once

#include <concepts>
#include <utility>

namespace efrb {

// clang-format off
template <typename R>
concept ReclaimerPolicy = requires(R r) {
  { r.pin() };                       // returns a movable RAII guard
  { r.template retire<int>(static_cast<int*>(nullptr)) };
};

// Extension of ReclaimerPolicy for policies with explicit per-thread
// registration: attach() hands out a movable, thread-affine Attachment whose
// pin()/retire() skip the thread_local registry lookup entirely. This is the
// fast path behind EfrbTreeMap::Handle; the implicit thread_local lease
// remains the fallback behind the policy-level pin()/retire().
template <typename R>
concept AttachableReclaimerPolicy = ReclaimerPolicy<R> &&
    requires(R r, typename R::Attachment a) {
  { r.attach() } -> std::same_as<typename R::Attachment>;
  { a.pin() };
  { a.template retire<int>(static_cast<int*>(nullptr)) };
  { a.attached() } -> std::convertible_to<bool>;
  { a.detach() };
};
// clang-format on

/// Never frees anything. This is the paper's own memory model ("assume fresh
/// allocations") and the baseline for reclamation-cost ablations (E4). Only
/// suitable for bounded runs; memory use grows with the number of updates.
class LeakyReclaimer {
 public:
  class Guard {
   public:
    Guard() = default;
  };

  /// State-free Attachment so leaky trees still expose the handle API; there
  /// is no slot to register, so all members are no-ops.
  class Attachment {
   public:
    Attachment() = default;
    bool attached() const noexcept { return attached_; }
    void detach() noexcept { attached_ = false; }
    Guard pin() noexcept { return Guard{}; }
    template <typename T>
    void retire(T* /*p*/) noexcept {}
    void flush() noexcept {}

   private:
    friend class LeakyReclaimer;
    explicit Attachment(bool attached) noexcept : attached_(attached) {}
    bool attached_ = false;
  };

  Guard pin() noexcept { return Guard{}; }

  Attachment attach() noexcept { return Attachment{true}; }

  template <typename T>
  void retire(T* /*p*/) noexcept {
    // Intentionally leaked; freed only when the process exits.
  }

  /// Number of objects handed to retire() and leaked. Always 0 here because we
  /// do not track them; provided so ablation code compiles across policies.
  std::size_t retired_count() const noexcept { return 0; }
};

static_assert(ReclaimerPolicy<LeakyReclaimer>);
static_assert(AttachableReclaimerPolicy<LeakyReclaimer>);

}  // namespace efrb
