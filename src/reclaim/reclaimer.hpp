// Reclamation policy interface + the trivial leaky policy.
//
// The paper (§4.1) assumes nodes and Info records "are always allocated new
// memory locations" and defers reclamation to a safe-GC environment (§6). In
// C++ we must supply that substrate. Data structures in this library are
// parameterized on a Reclaimer policy with this contract:
//
//   * guard = reclaimer.pin()    — RAII region; every shared-memory traversal
//                                  must happen inside a pinned region.
//   * reclaimer.retire<T>(p)     — hand over an object that has been made
//                                  unreachable from the structure's roots; the
//                                  policy frees it once no pinned region that
//                                  could still reach it remains.
//
// The safety obligation matches the paper's condition verbatim: "a memory
// location is not reallocated while any process could reach that location by
// following a chain of pointers."
#pragma once

#include <concepts>
#include <cstdint>
#include <memory>
#include <utility>

namespace efrb {

// ---------------------------------------------------------------------------
// Retire-to-pool hook (see core/alloc.hpp and docs/RECLAMATION.md).
//
// When a structure allocates its nodes from a pool, a retired object must
// return to that pool instead of being handed to `delete`. Every reclaimer's
// registry carries one PoolHook; retire() stores a type-erased disposer
// (dispose_retired<T>) with each entry, and the disposer consults the hook at
// free time: destructor + pool return when a hook is installed, plain delete
// otherwise.
//
// The `keepalive` shared_ptr is the lifetime contract: retired entries can
// outlive the owning structure (thread_local leases and the orphan lists keep
// the registry alive past structure destruction), so the registry must keep
// the pool's backing storage alive until its own destructor has run the last
// disposer. Installing the hook hands the registry a share of the pool state.
//
// set_pool_return must be called before any retire() that should recycle —
// in practice, once at structure construction, before the structure is
// shared between threads. The hook is written without synchronization.
// ---------------------------------------------------------------------------
struct PoolHook {
  /// Returns a fully destroyed block to the pool. Must be thread-safe: sweeps
  /// run on whichever thread trips a retire threshold, and the registry
  /// destructor may run on yet another.
  using ReturnFn = void (*)(void* pool, void* block) noexcept;

  ReturnFn fn = nullptr;
  void* pool = nullptr;
  std::shared_ptr<void> keepalive;

  explicit operator bool() const noexcept { return fn != nullptr; }
};

/// The type-erased disposer stored with every retired entry: destroy the
/// object, then return the block to the pool (hook installed) or free it on
/// the heap (no hook). One instantiation per retired type, so the destructor
/// call is exact — including virtual dispatch through base pointers.
template <typename T>
inline void dispose_retired(void* q, const PoolHook& hook) noexcept {
  T* p = static_cast<T*>(q);
  if (hook) {
    p->~T();
    hook.fn(hook.pool, p);
  } else {
    delete p;
  }
}

/// Point-in-time snapshot of a reclaimer's internal state, for the
/// observability layer (obs/metrics.hpp) and for tests asserting reclamation
/// progress. Counters are monotone over the reclaimer's lifetime (snapshots
/// taken later never report smaller values); `orphan_depth` and `epoch` are
/// instantaneous levels. Policies without a given notion report 0 — e.g.
/// LeakyReclaimer reports all-zero so the E4 leaky-ceiling ablation stays
/// free of bookkeeping cost.
struct ReclaimGauges {
  std::uint64_t retired_total = 0;  // objects handed to retire()
  std::uint64_t freed_total = 0;    // objects actually deleted
  std::uint64_t orphan_depth = 0;   // entries parked in the orphan store
  std::uint64_t pins = 0;           // outermost pin() regions entered
  std::uint64_t unpins = 0;         // outermost pin() regions exited
  std::uint64_t epoch = 0;          // global epoch / grace round, if any

  /// Retired-but-not-yet-freed backlog (includes orphans).
  std::uint64_t backlog() const noexcept {
    return retired_total >= freed_total ? retired_total - freed_total : 0;
  }
};

// clang-format off
template <typename R>
concept ReclaimerPolicy = requires(R r, PoolHook h) {
  { r.pin() };                       // returns a movable RAII guard
  { r.template retire<int>(static_cast<int*>(nullptr)) };
  { r.flush_slot() };                // drain the calling thread's backlog
  { r.set_pool_return(h) };          // install the retire-to-pool hook
};

// Extension of ReclaimerPolicy for policies with explicit per-thread
// registration: attach() hands out a movable, thread-affine Attachment whose
// pin()/retire() skip the thread_local registry lookup entirely. This is the
// fast path behind EfrbTreeMap::Handle; the implicit thread_local lease
// remains the fallback behind the policy-level pin()/retire().
//
// The attach()/detach()/retire()/flush_slot() spelling is the one unified
// surface every reclamation backend in this repository exposes — the three
// ReclaimerPolicy types below/in reclaim/, and HazardPointerDomain (which is
// not a ReclaimerPolicy, having no blanket pin(), but models exactly this
// attachment sub-surface) — so OpContext and the structure handles never
// special-case a backend.
template <typename R>
concept AttachableReclaimerPolicy = ReclaimerPolicy<R> &&
    requires(R r, typename R::Attachment a) {
  { r.attach() } -> std::same_as<typename R::Attachment>;
  { a.pin() };
  { a.template retire<int>(static_cast<int*>(nullptr)) };
  { a.attached() } -> std::convertible_to<bool>;
  { a.detach() };
  { a.flush_slot() };
};
// clang-format on

/// Never frees anything. This is the paper's own memory model ("assume fresh
/// allocations") and the baseline for reclamation-cost ablations (E4). Only
/// suitable for bounded runs; memory use grows with the number of updates.
class LeakyReclaimer {
 public:
  class Guard {
   public:
    Guard() = default;
  };

  /// State-free Attachment so leaky trees still expose the handle API; there
  /// is no slot to register, so all members are no-ops.
  class Attachment {
   public:
    Attachment() = default;
    bool attached() const noexcept { return attached_; }
    void detach() noexcept { attached_ = false; }
    Guard pin() noexcept { return Guard{}; }
    template <typename T>
    void retire(T* /*p*/) noexcept {}
    void flush() noexcept {}
    /// Unified-surface alias of flush(); nothing to drain here.
    void flush_slot() noexcept {}

   private:
    friend class LeakyReclaimer;
    explicit Attachment(bool attached) noexcept : attached_(attached) {}
    bool attached_ = false;
  };

  Guard pin() noexcept { return Guard{}; }

  Attachment attach() noexcept { return Attachment{true}; }

  template <typename T>
  void retire(T* /*p*/) noexcept {
    // Intentionally leaked; freed only when the process exits — or, when the
    // structure allocates from a pool, when the pool's slabs are torn down
    // (the leak is then bounded by the pool's lifetime, not the process's).
  }

  /// Accepted and dropped: this policy never frees, so it never has a block
  /// to hand back. A pooled structure over LeakyReclaimer still reclaims its
  /// memory wholesale when the pool's slabs are destroyed.
  void set_pool_return(PoolHook /*hook*/) noexcept {}

  void flush() noexcept {}
  /// Unified-surface alias of flush(); nothing to drain here.
  void flush_slot() noexcept {}

  /// Number of objects handed to retire() and leaked. Always 0 here because we
  /// do not track them; provided so ablation code compiles across policies.
  std::size_t retired_count() const noexcept { return 0; }

  /// All-zero by design: counting would put a shared fetch_add on the retire
  /// path and pollute the leaky-ceiling ablation this policy exists for.
  ReclaimGauges gauges() const noexcept { return ReclaimGauges{}; }
};

static_assert(ReclaimerPolicy<LeakyReclaimer>);
static_assert(AttachableReclaimerPolicy<LeakyReclaimer>);

}  // namespace efrb
