// Epoch-based reclamation (EBR).
//
// The default reclamation policy for the EFRB tree. Threads announce the
// global epoch while operating on the structure ("pinned"); retired objects
// are stamped with the epoch at retirement and freed once the global epoch has
// advanced twice past that stamp — by then no pinned region that began before
// the object was unlinked can still be running, so no thread can reach it by
// following a chain of pointers (the safety condition in §4.1 of the paper).
//
// Layout notes:
//  * One Registry per reclaimer instance: a fixed array of cache-line padded
//    slots plus the global epoch counter. Threads acquire a slot on first use
//    (thread_local lease, released at thread exit) so pin() is wait-free after
//    the first operation. Alternatively, attach() hands out an explicit
//    Attachment owning a slot outright — the per-thread-handle fast path where
//    pin() is a plain member access with no thread_local lookup at all.
//  * Retire lists are single-owner (the slot holder); only the epoch
//    announcement word is shared, so pin/unpin cost one store + one fence.
//  * The Registry is shared_ptr-owned by the reclaimer and by every thread
//    lease, so a thread exiting after the data structure was destroyed cannot
//    touch freed memory.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "reclaim/reclaimer.hpp"
#include "util/assert.hpp"
#include "util/cacheline.hpp"
#include "util/errors.hpp"

namespace efrb {

class EpochReclaimer {
  static constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};

  struct Retired {
    void* ptr;
    // Type-erased disposer (dispose_retired<T>): consults the registry's
    // PoolHook at free time — pool return when installed, delete otherwise.
    void (*deleter)(void*, const PoolHook&);
    std::uint64_t epoch;
  };

  struct Slot {
    // Shared: read by try_advance() on other threads.
    std::atomic<std::uint64_t> epoch{kQuiescent};
    std::atomic<bool> in_use{false};
    // Owner-thread only.
    std::vector<Retired> retired;
    std::size_t next_sweep = 0;  // retired.size() that triggers the next sweep
    unsigned depth = 0;          // pin() nesting
    // Gauges: owner-written (relaxed, within the slot's own cache line, so no
    // cross-thread contention), read only by gauges() snapshots. Survive slot
    // recycling — they count the slot's whole history, keeping the aggregate
    // monotone across attach/detach cycles.
    std::atomic<std::uint64_t> retired_count{0};
    std::atomic<std::uint64_t> pins{0};
    std::atomic<std::uint64_t> unpins{0};
  };

  struct Registry {
    explicit Registry(std::size_t max_threads) : slots(max_threads) {}

    ~Registry() {
      // Last reference dropped: nothing can be pinned; free all leftovers.
      // pool_hook's keepalive guarantees the pool state is still alive here
      // even if the owning structure (and its pool) died first.
      for (auto& padded : slots) {
        for (const Retired& r : padded.value.retired) r.deleter(r.ptr, pool_hook);
        padded.value.retired.clear();
      }
      for (const Retired& r : orphans) r.deleter(r.ptr, pool_hook);
      orphans.clear();
    }

    /// Bounded retry (a concurrent release may be mid-flight), then throws
    /// CapacityExhausted instead of aborting — see util/errors.hpp.
    Slot* acquire_slot() {
      for (int attempt = 0; attempt < 3; ++attempt) {
        for (auto& padded : slots) {
          Slot& s = padded.value;
          bool expected = false;
          if (!s.in_use.load(std::memory_order_relaxed) &&
              s.in_use.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
            return &s;
          }
        }
        std::this_thread::yield();
      }
      throw CapacityExhausted(
          "EpochReclaimer: thread-slot capacity exhausted (more concurrent "
          "threads/attachments than max_threads)");
    }

    /// Advance the global epoch if every pinned thread has caught up to it.
    void try_advance() {
      const std::uint64_t e = global.load(std::memory_order_seq_cst);
      for (const auto& padded : slots) {
        const Slot& s = padded.value;
        if (!s.in_use.load(std::memory_order_acquire)) continue;
        const std::uint64_t local = s.epoch.load(std::memory_order_seq_cst);
        if (local != kQuiescent && local != e) return;  // straggler
      }
      std::uint64_t expected = e;
      global.compare_exchange_strong(expected, e + 1,
                                     std::memory_order_seq_cst);
    }

    std::vector<CachePadded<Slot>> slots;
    alignas(kCacheLineSize) std::atomic<std::uint64_t> global{0};
    alignas(kCacheLineSize) std::atomic<std::uint64_t> freed_total{0};
    // Retirees stranded by a released slot, re-homed here so they are freed
    // while the structure is still live (epoch stamps preserved; same safety
    // rule as a slot's own list). Drained opportunistically by sweep().
    std::mutex orphan_mu;
    std::vector<Retired> orphans;
    // orphans.size() mirrored for lock-free gauge snapshots; stored under
    // orphan_mu by every mutator of `orphans`.
    std::atomic<std::uint64_t> orphan_count{0};
    // Retire-to-pool hook (see reclaim/reclaimer.hpp). Written once by
    // set_pool_return() before the structure is shared; read by every
    // disposer call. Unsynchronized by contract.
    PoolHook pool_hook;
  };

 public:
  /// RAII pinned region. Movable, not copyable. Nested pins on the same thread
  /// are counted and keep the outermost announcement (so helping code can pin
  /// defensively without risking premature reclamation of the outer region's
  /// snapshot).
  class Guard {
   public:
    Guard() = default;
    Guard(Registry* reg, Slot* slot) noexcept : reg_(reg), slot_(slot) {}
    Guard(Guard&& other) noexcept : reg_(other.reg_), slot_(other.slot_) {
      other.reg_ = nullptr;
      other.slot_ = nullptr;
    }
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        release();
        reg_ = other.reg_;
        slot_ = other.slot_;
        other.reg_ = nullptr;
        other.slot_ = nullptr;
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { release(); }

   private:
    void release() noexcept {
      if (slot_ != nullptr && --slot_->depth == 0) {
        slot_->epoch.store(kQuiescent, std::memory_order_release);
        slot_->unpins.fetch_add(1, std::memory_order_relaxed);
      }
      slot_ = nullptr;
      reg_ = nullptr;
    }
    Registry* reg_ = nullptr;
    Slot* slot_ = nullptr;
  };

  /// Explicit slot registration (the fast path behind per-thread operation
  /// handles): owns one Slot for its whole lifetime, so pin()/retire() are
  /// plain member accesses with no thread_local registry lookup. Movable, not
  /// copyable; thread-affine (the owning thread only — the slot's retire list
  /// is single-owner). detach() (or destruction) releases the slot for reuse;
  /// the slot's retire backlog is flushed and any not-yet-safe remainder is
  /// handed to the registry's orphan list, where it is freed by later sweeps
  /// while the structure is still live (same as the thread-exit lease path).
  class Attachment {
   public:
    Attachment() = default;
    Attachment(Attachment&& other) noexcept
        : reg_(std::move(other.reg_)),
          slot_(other.slot_),
          retire_batch_(other.retire_batch_) {
      other.slot_ = nullptr;
    }
    Attachment& operator=(Attachment&& other) noexcept {
      if (this != &other) {
        detach();
        reg_ = std::move(other.reg_);
        slot_ = other.slot_;
        retire_batch_ = other.retire_batch_;
        other.slot_ = nullptr;
      }
      return *this;
    }
    Attachment(const Attachment&) = delete;
    Attachment& operator=(const Attachment&) = delete;
    ~Attachment() { detach(); }

    bool attached() const noexcept { return slot_ != nullptr; }

    /// Releases the slot back to the registry. No pin (Guard) may be alive.
    /// The slot's retired backlog is flushed, and anything not yet safe to
    /// free is handed to the registry's orphan list rather than stranded in
    /// the slot until re-acquisition or Registry destruction.
    void detach() noexcept {
      if (slot_ != nullptr) {
        EFRB_DCHECK(slot_->depth == 0);
        release_slot(reg_.get(), slot_);
        slot_ = nullptr;
        reg_.reset();
      }
    }

    Guard pin() {
      EFRB_DCHECK(slot_ != nullptr);
      return pin_slot(reg_.get(), slot_);
    }

    template <typename T>
    void retire(T* p) {
      EFRB_DCHECK(slot_ != nullptr);
      retire_slot(reg_.get(), slot_, retire_batch_, p);
    }

    /// Best-effort drain of this attachment's retire list (quiescent points).
    /// (Qualified call: the zero-arg flush_slot() below hides the enclosing
    /// class's static overload for unqualified lookup.)
    void flush() {
      EFRB_DCHECK(slot_ != nullptr);
      EpochReclaimer::flush_slot(reg_.get(), slot_);
    }

    /// Unified-surface alias of flush() (see AttachableReclaimerPolicy).
    void flush_slot() { flush(); }

   private:
    friend class EpochReclaimer;
    Attachment(std::shared_ptr<Registry> reg, Slot* slot,
               std::size_t retire_batch) noexcept
        : reg_(std::move(reg)), slot_(slot), retire_batch_(retire_batch) {}

    std::shared_ptr<Registry> reg_;
    Slot* slot_ = nullptr;
    std::size_t retire_batch_ = 0;
  };

  /// @param max_threads   capacity of the slot table (threads that concurrently
  ///                      use this instance; slots are recycled at thread exit).
  /// @param retire_batch  per-thread retire-list length that triggers an epoch
  ///                      advance attempt and a sweep.
  /// Default retire batch of 256 balances throughput against the per-thread
  /// memory floor (E4 ablation: larger batches amortize the epoch-advance
  /// scan; 256 recovers most of the leaky ceiling at ~10 KB/thread of
  /// deferred garbage).
  explicit EpochReclaimer(std::size_t max_threads = 64,
                          std::size_t retire_batch = 256)
      : reg_(std::make_shared<Registry>(max_threads)),
        retire_batch_(retire_batch) {}

  /// Acquire a dedicated slot (released by Attachment::detach / destruction).
  /// Counts against max_threads like a thread lease; a thread that uses both
  /// an attachment and the implicit thread_local path occupies two slots.
  Attachment attach() {
    return Attachment(reg_, reg_->acquire_slot(), retire_batch_);
  }

  Guard pin() { return pin_slot(reg_.get(), local_slot()); }

  template <typename T>
  void retire(T* p) {
    retire_slot(reg_.get(), local_slot(), retire_batch_, p);
  }

  /// Objects freed so far (for tests asserting reclamation actually happens).
  std::uint64_t freed_count() const noexcept {
    return reg_->freed_total.load(std::memory_order_relaxed);
  }

  std::uint64_t current_epoch() const noexcept {
    return reg_->global.load(std::memory_order_relaxed);
  }

  /// Gauge snapshot for the observability layer. Relaxed reads of owner-
  /// written per-slot counters; monotone per counter, but not an atomic
  /// cross-thread cut (a concurrent retire may show in retired_total before
  /// its sweep shows in freed_total — backlog() is momentarily conservative).
  ReclaimGauges gauges() const noexcept {
    ReclaimGauges g;
    for (const auto& padded : reg_->slots) {
      const Slot& s = padded.value;
      g.retired_total += s.retired_count.load(std::memory_order_relaxed);
      g.pins += s.pins.load(std::memory_order_relaxed);
      g.unpins += s.unpins.load(std::memory_order_relaxed);
    }
    g.freed_total = reg_->freed_total.load(std::memory_order_relaxed);
    g.orphan_depth = reg_->orphan_count.load(std::memory_order_relaxed);
    g.epoch = reg_->global.load(std::memory_order_relaxed);
    return g;
  }

  /// Best-effort drain for tests/benchmarks at quiescent points: repeatedly
  /// advance and sweep the calling thread's list.
  void flush() { flush_slot(reg_.get(), local_slot()); }

  /// Unified-surface alias of flush() (see ReclaimerPolicy).
  void flush_slot() { flush(); }

  /// Install the retire-to-pool hook (see reclaim/reclaimer.hpp). Must be
  /// called before this reclaimer is shared between threads — typically once
  /// in the owning structure's constructor. Retired entries already queued
  /// are also re-routed (the hook is consulted at free time, not retire time).
  void set_pool_return(PoolHook hook) noexcept {
    reg_->pool_hook = std::move(hook);
  }

 private:
  static Guard pin_slot(Registry* reg, Slot* slot) {
    if (slot->depth++ == 0) {
      slot->pins.fetch_add(1, std::memory_order_relaxed);
      std::uint64_t e = reg->global.load(std::memory_order_acquire);
      // Publish, then re-check: the announcement must equal the global epoch
      // observed *after* publishing, otherwise an advance racing with us could
      // treat this thread as caught-up when it is not.
      for (;;) {
        slot->epoch.store(e, std::memory_order_seq_cst);
        const std::uint64_t g = reg->global.load(std::memory_order_seq_cst);
        if (g == e) break;
        e = g;
      }
    }
    return Guard(reg, slot);
  }

  template <typename T>
  static void retire_slot(Registry* reg, Slot* slot, std::size_t retire_batch,
                          T* p) {
    EFRB_DCHECK(p != nullptr);
    slot->retired.push_back(Retired{
        p, &dispose_retired<T>,
        reg->global.load(std::memory_order_acquire)});
    slot->retired_count.fetch_add(1, std::memory_order_relaxed);
    // Sweep on a size *schedule*, not a fixed threshold: when a pinned-but-
    // descheduled thread stalls the epoch, entries pile up past the batch
    // size, and re-sweeping the whole list on every retire would be
    // quadratic. Resetting the trigger to size+batch after each sweep keeps
    // the amortized cost per retire O(1).
    if (slot->retired.size() >= std::max(slot->next_sweep, retire_batch)) {
      reg->try_advance();
      sweep(reg, slot);
      slot->next_sweep = slot->retired.size() + retire_batch;
    }
  }

  /// Unconditionally drives three advance+sweep rounds: a flush must make
  /// progress for the registry's orphan list too, which an empty caller-side
  /// retired list says nothing about.
  static void flush_slot(Registry* reg, Slot* slot) {
    for (int i = 0; i < 3; ++i) {
      reg->try_advance();
      sweep(reg, slot);
    }
  }

  /// Common tail of Attachment::detach and the thread-exit Lease: sweep what
  /// is already safe, orphan the rest, return the slot to the free pool.
  /// noexcept-for-real: the orphan hand-off allocates and this runs from
  /// detach()/thread-exit teardown. On bad_alloc the backlog stays in the
  /// slot — safe (epoch stamps preserved) and swept by the slot's next owner
  /// or freed at Registry destruction.
  static void release_slot(Registry* reg, Slot* slot) noexcept {
    reg->try_advance();
    sweep(reg, slot);
    if (!slot->retired.empty()) {
      try {
        const std::lock_guard<std::mutex> lock(reg->orphan_mu);
        // Reserve first: once capacity is in place the insert below cannot
        // throw (Retired is trivially copyable), so a failure leaves the
        // orphan list and the slot list both intact — no partial hand-off.
        reg->orphans.reserve(reg->orphans.size() + slot->retired.size());
        reg->orphans.insert(reg->orphans.end(), slot->retired.begin(),
                            slot->retired.end());
        slot->retired.clear();
        reg->orphan_count.store(reg->orphans.size(),
                                std::memory_order_relaxed);
      } catch (...) {
      }
    }
    if (slot->retired.empty()) {
      // Empty-only shrink: constructing the empty replacement buffer cannot
      // allocate, so this stays non-throwing; a backlog kept by a failed
      // hand-off keeps its capacity for the slot's next owner.
      slot->retired.shrink_to_fit();
    }
    slot->next_sweep = 0;
    slot->in_use.store(false, std::memory_order_release);
  }

  /// Opportunistic orphan-list sweep (same epoch rule as a slot's own list).
  /// try_lock: the orphan list is a slow path; never stall a retire for it.
  static void drain_orphans(Registry* reg) noexcept {
    const std::unique_lock<std::mutex> lock(reg->orphan_mu, std::try_to_lock);
    if (!lock.owns_lock() || reg->orphans.empty()) return;
    const std::uint64_t e = reg->global.load(std::memory_order_acquire);
    auto& list = reg->orphans;
    std::size_t kept = 0;
    std::uint64_t freed = 0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i].epoch + 2 <= e) {
        list[i].deleter(list[i].ptr, reg->pool_hook);
        ++freed;
      } else {
        list[kept++] = list[i];
      }
    }
    list.resize(kept);
    reg->orphan_count.store(kept, std::memory_order_relaxed);
    if (freed != 0) {
      reg->freed_total.fetch_add(freed, std::memory_order_relaxed);
    }
  }

  static void sweep(Registry* reg, Slot* slot) {
    const std::uint64_t e = reg->global.load(std::memory_order_acquire);
    auto& list = slot->retired;
    std::size_t kept = 0;
    std::uint64_t freed = 0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      // Safe once two advances have completed past the retire epoch.
      if (list[i].epoch + 2 <= e) {
        list[i].deleter(list[i].ptr, reg->pool_hook);
        ++freed;
      } else {
        list[kept++] = list[i];
      }
    }
    list.resize(kept);
    if (freed != 0) {
      reg->freed_total.fetch_add(freed, std::memory_order_relaxed);
    }
    drain_orphans(reg);
  }

  // Thread → slot binding. A lease pins the Registry (shared_ptr) so slot
  // release at thread exit is always safe, even after the reclaimer died.
  // Release goes through release_slot: the departing thread's retired list is
  // flushed/orphaned, not stranded in the slot.
  struct Lease {
    struct Entry {
      std::shared_ptr<Registry> reg;
      Slot* slot;
    };
    std::vector<Entry> entries;
    ~Lease() {
      for (auto& e : entries) release_slot(e.reg.get(), e.slot);
    }
  };

  Slot* local_slot() {
    thread_local Lease lease;
    thread_local Registry* cached_reg = nullptr;
    thread_local Slot* cached_slot = nullptr;
    Registry* reg = reg_.get();
    if (cached_reg == reg) return cached_slot;
    for (const auto& e : lease.entries) {
      if (e.reg.get() == reg) {
        cached_reg = reg;
        cached_slot = e.slot;
        return e.slot;
      }
    }
    Slot* slot = reg->acquire_slot();
    lease.entries.push_back(Lease::Entry{reg_, slot});
    cached_reg = reg;
    cached_slot = slot;
    return slot;
  }

  std::shared_ptr<Registry> reg_;
  std::size_t retire_batch_;
};

static_assert(ReclaimerPolicy<EpochReclaimer>);
static_assert(AttachableReclaimerPolicy<EpochReclaimer>);

}  // namespace efrb
