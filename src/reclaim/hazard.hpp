// Hazard pointers (Michael, IEEE TPDS 2004) — the reclamation scheme the
// paper's §6 singles out as applicable to (a slightly modified version of)
// the tree. This is a generic domain usable by any pointer-linked structure;
// in this repository it backs the Harris linked list and is stress-tested on
// its own. See DESIGN.md §6 for why the tree's default policy is EBR.
//
// Protocol recap: before dereferencing a shared pointer, a thread publishes it
// in one of its hazard slots and re-validates the source; a retired object is
// freed only when a scan of all published hazards does not find it. Unlike
// EBR, a stalled thread delays at most the objects it has published, not the
// whole retire stream.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "reclaim/reclaimer.hpp"
#include "util/assert.hpp"
#include "util/cacheline.hpp"
#include "util/errors.hpp"

namespace efrb {

class HazardPointerDomain {
  struct Retired {
    void* ptr;
    // Type-erased disposer (dispose_retired<T>): consults the registry's
    // PoolHook at free time — pool return when installed, delete otherwise.
    void (*deleter)(void*, const PoolHook&);
  };

  struct Slot {
    // Shared: scanned by reclaiming threads.
    std::vector<std::atomic<void*>> hazards;
    std::atomic<bool> in_use{false};
    // Owner-thread only.
    std::vector<Retired> retired;
    std::size_t next_scan = 0;  // retired.size() triggering the next scan
    // Gauges: owner-written relaxed, read by gauges() snapshots; survive slot
    // recycling so the aggregate stays monotone. Handle construction /
    // destruction stand in for pin/unpin in this domain's vocabulary.
    std::atomic<std::uint64_t> retired_count{0};
    std::atomic<std::uint64_t> pins{0};
    std::atomic<std::uint64_t> unpins{0};

    explicit Slot(std::size_t k) : hazards(k) {
      for (auto& h : hazards) h.store(nullptr, std::memory_order_relaxed);
    }
  };

  struct Registry {
    Registry(std::size_t max_threads, std::size_t k) : hazards_per_thread(k) {
      slots.reserve(max_threads);
      for (std::size_t i = 0; i < max_threads; ++i) {
        slots.push_back(std::make_unique<Slot>(k));
      }
    }

    ~Registry() {
      // pool_hook's keepalive guarantees the pool state is still alive here
      // even if the owning structure (and its pool) died first.
      for (auto& s : slots) {
        for (const Retired& r : s->retired) r.deleter(r.ptr, pool_hook);
        s->retired.clear();
      }
      for (const Retired& r : orphans) r.deleter(r.ptr, pool_hook);
      orphans.clear();
    }

    /// Bounded retry (a concurrent release may be mid-flight), then throws
    /// CapacityExhausted instead of aborting — see util/errors.hpp.
    Slot* acquire_slot() {
      for (int attempt = 0; attempt < 3; ++attempt) {
        for (auto& s : slots) {
          bool expected = false;
          if (!s->in_use.load(std::memory_order_relaxed) &&
              s->in_use.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
            return s.get();
          }
        }
        std::this_thread::yield();
      }
      throw CapacityExhausted(
          "HazardPointerDomain: slot capacity exhausted (more concurrent "
          "threads/attachments than max_threads)");
    }

    const std::size_t hazards_per_thread;
    std::vector<std::unique_ptr<Slot>> slots;
    alignas(kCacheLineSize) std::atomic<std::uint64_t> freed_total{0};
    // Retirees stranded by a released slot; re-scanned (and freed once no
    // hazard covers them) by later scans from any slot.
    std::mutex orphan_mu;
    std::vector<Retired> orphans;
    // orphans.size() mirrored for lock-free gauge snapshots; stored under
    // orphan_mu by every mutator of `orphans`.
    std::atomic<std::uint64_t> orphan_count{0};
    // Retire-to-pool hook (see reclaim/reclaimer.hpp). Written once by
    // set_pool_return() before the structure is shared; read by every
    // disposer call. Unsynchronized by contract.
    PoolHook pool_hook;
  };

 public:
  /// Per-operation handle over the calling thread's hazard slots. Slots are
  /// cleared when the handle is destroyed. Cheap to construct after the
  /// thread's first use of the domain.
  class Handle {
   public:
    Handle(Registry* reg, Slot* slot) noexcept : reg_(reg), slot_(slot) {
      slot_->pins.fetch_add(1, std::memory_order_relaxed);
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() {
      clear_all();
      slot_->unpins.fetch_add(1, std::memory_order_relaxed);
    }

    /// Publish-and-validate loop: returns a pointer read from `src` that is
    /// guaranteed protected (cannot be freed) until the slot is overwritten
    /// or the handle dies. The loop terminates because a change of `src`
    /// between read and re-read means another thread made progress.
    template <typename T>
    T* protect(std::size_t index, const std::atomic<T*>& src) noexcept {
      EFRB_DCHECK(index < slot_->hazards.size());
      T* p = src.load(std::memory_order_acquire);
      for (;;) {
        slot_->hazards[index].store(const_cast<std::remove_const_t<T>*>(p),
                                    std::memory_order_seq_cst);
        T* q = src.load(std::memory_order_seq_cst);
        if (q == p) return p;
        p = q;
      }
    }

    /// Publish an already-validated pointer (caller proves protection by other
    /// means, e.g. it is reachable only via an already-protected node).
    template <typename T>
    void set(std::size_t index, T* p) noexcept {
      EFRB_DCHECK(index < slot_->hazards.size());
      slot_->hazards[index].store(const_cast<std::remove_const_t<T>*>(p),
                                  std::memory_order_seq_cst);
    }

    void clear(std::size_t index) noexcept {
      slot_->hazards[index].store(nullptr, std::memory_order_release);
    }

    void clear_all() noexcept {
      for (auto& h : slot_->hazards) {
        h.store(nullptr, std::memory_order_release);
      }
    }

   private:
    [[maybe_unused]] Registry* reg_;
    Slot* slot_;
  };

  /// Explicit slot registration — same contract as EpochReclaimer::Attachment
  /// (movable, thread-affine, slot released on detach/destruction; leftover
  /// retired entries are scanned once and the still-protected remainder is
  /// orphaned to the registry, freed by later scans). Lets per-thread
  /// structure handles own their hazard slot outright instead of resolving it
  /// through the thread_local lease on every retire.
  class Attachment {
   public:
    Attachment() = default;
    Attachment(Attachment&& other) noexcept
        : reg_(std::move(other.reg_)),
          slot_(std::exchange(other.slot_, nullptr)),
          retire_batch_(other.retire_batch_) {}
    Attachment& operator=(Attachment&& other) noexcept {
      if (this != &other) {
        detach();
        reg_ = std::move(other.reg_);
        slot_ = std::exchange(other.slot_, nullptr);
        retire_batch_ = other.retire_batch_;
      }
      return *this;
    }
    Attachment(const Attachment&) = delete;
    Attachment& operator=(const Attachment&) = delete;
    ~Attachment() { detach(); }

    bool attached() const noexcept { return slot_ != nullptr; }

    void detach() noexcept {
      if (slot_ != nullptr) {
        release_slot(reg_.get(), slot_);
        slot_ = nullptr;
        reg_.reset();
      }
    }

    /// Hazard-slot handle over the owned slot (no thread_local lookup).
    Handle make_handle() const {
      EFRB_DCHECK(slot_ != nullptr);
      return Handle(reg_.get(), slot_);
    }

    template <typename T>
    void retire(T* p) {
      EFRB_DCHECK(slot_ != nullptr);
      retire_slot(reg_.get(), slot_, retire_batch_, p);
    }

    void flush() {
      EFRB_DCHECK(slot_ != nullptr);
      scan(reg_.get(), slot_);
    }

    /// Unified-surface alias of flush() (see reclaim/reclaimer.hpp).
    void flush_slot() { flush(); }

   private:
    friend class HazardPointerDomain;
    Attachment(std::shared_ptr<Registry> reg, Slot* slot,
               std::size_t retire_batch) noexcept
        : reg_(std::move(reg)), slot_(slot), retire_batch_(retire_batch) {}

    std::shared_ptr<Registry> reg_;
    Slot* slot_ = nullptr;
    std::size_t retire_batch_ = 0;
  };

  explicit HazardPointerDomain(std::size_t max_threads = 64,
                               std::size_t hazards_per_thread = 4,
                               std::size_t retire_batch = 128)
      : reg_(std::make_shared<Registry>(max_threads, hazards_per_thread)),
        retire_batch_(retire_batch) {}

  Attachment attach() {
    return Attachment(reg_, reg_->acquire_slot(), retire_batch_);
  }

  Handle make_handle() { return Handle(reg_.get(), local_slot()); }

  template <typename T>
  void retire(T* p) {
    retire_slot(reg_.get(), local_slot(), retire_batch_, p);
  }

  std::uint64_t freed_count() const noexcept {
    return reg_->freed_total.load(std::memory_order_relaxed);
  }

  /// Gauge snapshot (relaxed; see EpochReclaimer::gauges). pins/unpins count
  /// Handle constructions/destructions; epoch has no analogue here and stays 0.
  ReclaimGauges gauges() const noexcept {
    ReclaimGauges g;
    for (const auto& s : reg_->slots) {
      g.retired_total += s->retired_count.load(std::memory_order_relaxed);
      g.pins += s->pins.load(std::memory_order_relaxed);
      g.unpins += s->unpins.load(std::memory_order_relaxed);
    }
    g.freed_total = reg_->freed_total.load(std::memory_order_relaxed);
    g.orphan_depth = reg_->orphan_count.load(std::memory_order_relaxed);
    return g;
  }

  /// Best-effort drain at quiescent points.
  void flush() { scan(reg_.get(), local_slot()); }

  /// Unified-surface alias of flush() (see reclaim/reclaimer.hpp).
  void flush_slot() { flush(); }

  /// Install the retire-to-pool hook (see reclaim/reclaimer.hpp). Must run
  /// before the domain is shared between threads; already-queued entries are
  /// also re-routed (the hook is consulted at free time, not retire time).
  void set_pool_return(PoolHook hook) noexcept {
    reg_->pool_hook = std::move(hook);
  }

 private:
  template <typename T>
  static void retire_slot(Registry* reg, Slot* slot, std::size_t retire_batch,
                          T* p) {
    EFRB_DCHECK(p != nullptr);
    slot->retired.push_back(Retired{p, &dispose_retired<T>});
    slot->retired_count.fetch_add(1, std::memory_order_relaxed);
    // Size-scheduled scans (amortized O(1) per retire even when many
    // entries stay protected; see the epoch reclaimer for the rationale).
    if (slot->retired.size() >= std::max(slot->next_scan, retire_batch)) {
      scan(reg, slot);
      slot->next_scan = slot->retired.size() + retire_batch;
    }
  }

  static void scan(Registry* reg, Slot* slot) {
    // Opportunistic orphan sweep — try_lock: never stall a retire on the
    // orphan slow path. The lock MUST be taken before the hazard snapshot:
    // the HP safety argument ("a hazard published after the snapshot cannot
    // cover a swept entry, because the entry was already unlinked when the
    // snapshot began") holds for the caller's own retired list, but orphan
    // entries can be appended by a concurrent detach at any time, including
    // between a snapshot and a sweep against it — and such an entry may be
    // covered by a hazard published (and validated, pre-unlink) after the
    // snapshot. Holding orphan_mu across the snapshot excludes appenders, so
    // every orphan entry we sweep was unlinked before the snapshot began.
    std::unique_lock<std::mutex> orphan_lock(reg->orphan_mu, std::try_to_lock);

    // Snapshot every published hazard pointer across all slots.
    std::vector<void*> protected_ptrs;
    protected_ptrs.reserve(reg->slots.size() * reg->hazards_per_thread);
    for (const auto& s : reg->slots) {
      if (!s->in_use.load(std::memory_order_acquire)) continue;
      for (const auto& h : s->hazards) {
        void* p = h.load(std::memory_order_seq_cst);
        if (p != nullptr) protected_ptrs.push_back(p);
      }
    }
    std::sort(protected_ptrs.begin(), protected_ptrs.end());

    std::uint64_t freed = sweep_list(slot->retired, protected_ptrs,
                                     reg->pool_hook);
    if (orphan_lock.owns_lock()) {
      if (!reg->orphans.empty()) {
        freed += sweep_list(reg->orphans, protected_ptrs, reg->pool_hook);
        reg->orphan_count.store(reg->orphans.size(),
                                std::memory_order_relaxed);
      }
      orphan_lock.unlock();
    }
    if (freed != 0) {
      reg->freed_total.fetch_add(freed, std::memory_order_relaxed);
    }
  }

  /// Frees every entry of `list` not covered by `protected_ptrs` (sorted);
  /// compacts the survivors in place and returns the freed count. Takes the
  /// registry's PoolHook explicitly — this helper has no Registry access.
  static std::uint64_t sweep_list(std::vector<Retired>& list,
                                  const std::vector<void*>& protected_ptrs,
                                  const PoolHook& hook) {
    std::size_t kept = 0;
    std::uint64_t freed = 0;
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (std::binary_search(protected_ptrs.begin(), protected_ptrs.end(),
                             list[i].ptr)) {
        list[kept++] = list[i];
      } else {
        list[i].deleter(list[i].ptr, hook);
        ++freed;
      }
    }
    list.resize(kept);
    return freed;
  }

  /// Common tail of Attachment::detach and the thread-exit Lease: clear the
  /// published hazards, free what no longer has cover, orphan the rest.
  /// noexcept-for-real: both the scan's snapshot buffer and the orphan
  /// hand-off allocate, and this runs from detach()/thread-exit teardown. On
  /// bad_alloc the backlog simply stays in the slot — safe (entries remain
  /// retired-but-unswept) and freed by the slot's next owner's scans or at
  /// Registry destruction.
  static void release_slot(Registry* reg, Slot* slot) noexcept {
    for (auto& h : slot->hazards) {
      h.store(nullptr, std::memory_order_release);
    }
    try {
      scan(reg, slot);
      if (!slot->retired.empty()) {
        const std::lock_guard<std::mutex> lock(reg->orphan_mu);
        // Reserve first: once capacity is in place the inserts below cannot
        // throw (Retired is trivially copyable), so a failure leaves the
        // orphan list and the slot list both intact — no partial hand-off.
        reg->orphans.reserve(reg->orphans.size() + slot->retired.size());
        reg->orphans.insert(reg->orphans.end(), slot->retired.begin(),
                            slot->retired.end());
        slot->retired.clear();
        reg->orphan_count.store(reg->orphans.size(),
                                std::memory_order_relaxed);
      }
    } catch (...) {
    }
    if (slot->retired.empty()) {
      // Empty-only shrink: constructing the empty replacement buffer cannot
      // allocate, so this stays non-throwing; a backlog kept by a failed
      // hand-off keeps its capacity for the slot's next owner.
      slot->retired.shrink_to_fit();
    }
    slot->next_scan = 0;
    slot->in_use.store(false, std::memory_order_release);
  }

  struct Lease {
    struct Entry {
      std::shared_ptr<Registry> reg;
      Slot* slot;
    };
    std::vector<Entry> entries;
    ~Lease() {
      for (auto& e : entries) release_slot(e.reg.get(), e.slot);
    }
  };

  Slot* local_slot() {
    thread_local Lease lease;
    thread_local Registry* cached_reg = nullptr;
    thread_local Slot* cached_slot = nullptr;
    Registry* reg = reg_.get();
    if (cached_reg == reg) return cached_slot;
    for (const auto& e : lease.entries) {
      if (e.reg.get() == reg) {
        cached_reg = reg;
        cached_slot = e.slot;
        return e.slot;
      }
    }
    Slot* slot = reg->acquire_slot();
    lease.entries.push_back(Lease::Entry{reg_, slot});
    cached_reg = reg;
    cached_slot = slot;
    return slot;
  }

  std::shared_ptr<Registry> reg_;
  std::size_t retire_batch_;
};

// ---------------------------------------------------------------------------
// HazardReclaimer — the hazard-side ReclaimerPolicy for pin()-style users
// (the EFRB tree and the skiplist), companion to EpochReclaimer.
//
// True per-pointer hazard protection of the tree would require the §6-modified
// Search (publish-and-revalidate every edge crossed); the blanket pin()/
// retire() contract gives the reclaimer no per-pointer information to
// publish. This policy therefore publishes the coarsest possible hazard: a
// per-thread activity sequence number that is odd exactly while the owner is
// inside a pinned region. Reclamation proceeds in *grace rounds*: when a
// thread's retire list fills, it snapshots every slot that is currently
// pinned (odd sequence, including itself — freeing inside the retiring pin
// would reopen the update-word ABA the tree's pinning argument rules out) and
// moves the list to a pending set; the pending set is freed once every
// snapshotted slot's sequence has moved on, i.e. every reader that could have
// held a reference has passed through a quiescent state. Unlike EBR there is
// no global epoch for a stalled thread to wedge for *everyone else's* future
// rounds — a round waits only on the readers that were active when it began.
// ---------------------------------------------------------------------------
class HazardReclaimer {
  struct Retired {
    void* ptr;
    // Type-erased disposer (dispose_retired<T>): consults the registry's
    // PoolHook at free time — pool return when installed, delete otherwise.
    void (*deleter)(void*, const PoolHook&);
  };

  struct Slot {
    // Shared: odd while the owner is pinned; bumped on pin and on unpin.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<bool> in_use{false};
    // Owner-thread only.
    std::vector<Retired> retired;   // not yet covered by a grace round
    std::vector<Retired> pending;   // awaiting the current round's readers
    std::vector<std::pair<Slot*, std::uint64_t>> readers;  // round snapshot
    unsigned depth = 0;             // pin() nesting
    std::size_t next_round = 0;     // retired.size() triggering the next round
    // Gauges: owner-written relaxed, read by gauges() snapshots; survive slot
    // recycling so the aggregate stays monotone.
    std::atomic<std::uint64_t> retired_count{0};
    std::atomic<std::uint64_t> pins{0};
    std::atomic<std::uint64_t> unpins{0};
  };

  struct Registry {
    explicit Registry(std::size_t max_threads) : slots(max_threads) {}

    ~Registry() {
      // Last reference dropped: nothing can be pinned; free all leftovers.
      // pool_hook's keepalive guarantees the pool state is still alive here
      // even if the owning structure (and its pool) died first.
      for (auto& padded : slots) {
        for (const Retired& r : padded.value.retired) r.deleter(r.ptr, pool_hook);
        for (const Retired& r : padded.value.pending) r.deleter(r.ptr, pool_hook);
        padded.value.retired.clear();
        padded.value.pending.clear();
      }
      for (const Retired& r : orphan_retired) r.deleter(r.ptr, pool_hook);
      for (const Retired& r : orphan_pending) r.deleter(r.ptr, pool_hook);
      orphan_retired.clear();
      orphan_pending.clear();
    }

    /// Bounded retry (a concurrent release may be mid-flight), then throws
    /// CapacityExhausted instead of aborting — see util/errors.hpp.
    Slot* acquire_slot() {
      for (int attempt = 0; attempt < 3; ++attempt) {
        for (auto& padded : slots) {
          Slot& s = padded.value;
          bool expected = false;
          if (!s.in_use.load(std::memory_order_relaxed) &&
              s.in_use.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
            return &s;
          }
        }
        std::this_thread::yield();
      }
      throw CapacityExhausted(
          "HazardReclaimer: thread-slot capacity exhausted (more concurrent "
          "threads/attachments than max_threads)");
    }

    std::vector<CachePadded<Slot>> slots;
    alignas(kCacheLineSize) std::atomic<std::uint64_t> freed_total{0};
    // Registry-level grace-round state for retirees stranded by a released
    // slot. Entries restart their grace round here (conservative: waiting on
    // a fresh reader snapshot is always safe); advanced under try-lock from
    // advance_round so any active thread drains departed threads' garbage.
    std::mutex orphan_mu;
    std::vector<Retired> orphan_retired;
    std::vector<Retired> orphan_pending;
    std::vector<std::pair<Slot*, std::uint64_t>> orphan_readers;
    // orphan_retired.size() + orphan_pending.size() mirrored for lock-free
    // gauge snapshots; stored under orphan_mu by every orphan-list mutator.
    std::atomic<std::uint64_t> orphan_count{0};
    // Retire-to-pool hook (see reclaim/reclaimer.hpp). Written once by
    // set_pool_return() before the structure is shared; read by every
    // disposer call. Unsynchronized by contract.
    PoolHook pool_hook;
  };

 public:
  /// RAII pinned region; nested pins are counted (outermost wins).
  class Guard {
   public:
    Guard() = default;
    explicit Guard(Slot* slot) noexcept : slot_(slot) {}
    Guard(Guard&& other) noexcept : slot_(other.slot_) {
      other.slot_ = nullptr;
    }
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        release();
        slot_ = other.slot_;
        other.slot_ = nullptr;
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { release(); }

   private:
    void release() noexcept {
      if (slot_ != nullptr && --slot_->depth == 0) {
        // Even again: readers-of-record for any in-flight grace round see
        // this slot as quiescent from here on.
        slot_->seq.fetch_add(1, std::memory_order_release);
        slot_->unpins.fetch_add(1, std::memory_order_relaxed);
      }
      slot_ = nullptr;
    }
    Slot* slot_ = nullptr;
  };

  /// Explicit slot registration — see EpochReclaimer::Attachment; identical
  /// contract (movable, thread-affine, slot released on detach/destruction;
  /// leftover retired/pending entries are handed off to the registry's
  /// orphan lists, where they restart a grace round and are freed by later
  /// rounds from any thread).
  class Attachment {
   public:
    Attachment() = default;
    Attachment(Attachment&& other) noexcept
        : reg_(std::move(other.reg_)),
          slot_(other.slot_),
          retire_batch_(other.retire_batch_) {
      other.slot_ = nullptr;
    }
    Attachment& operator=(Attachment&& other) noexcept {
      if (this != &other) {
        detach();
        reg_ = std::move(other.reg_);
        slot_ = other.slot_;
        retire_batch_ = other.retire_batch_;
        other.slot_ = nullptr;
      }
      return *this;
    }
    Attachment(const Attachment&) = delete;
    Attachment& operator=(const Attachment&) = delete;
    ~Attachment() { detach(); }

    bool attached() const noexcept { return slot_ != nullptr; }

    void detach() noexcept {
      if (slot_ != nullptr) {
        EFRB_DCHECK(slot_->depth == 0);
        release_slot(reg_.get(), slot_);
        slot_ = nullptr;
        reg_.reset();
      }
    }

    Guard pin() {
      EFRB_DCHECK(slot_ != nullptr);
      return pin_slot(slot_);
    }

    template <typename T>
    void retire(T* p) {
      EFRB_DCHECK(slot_ != nullptr);
      retire_slot(reg_.get(), slot_, retire_batch_, p);
    }

    /// (Qualified call: the zero-arg flush_slot() below hides the enclosing
    /// class's static overload for unqualified lookup.)
    void flush() {
      EFRB_DCHECK(slot_ != nullptr);
      HazardReclaimer::flush_slot(reg_.get(), slot_);
    }

    /// Unified-surface alias of flush() (see AttachableReclaimerPolicy).
    void flush_slot() { flush(); }

   private:
    friend class HazardReclaimer;
    Attachment(std::shared_ptr<Registry> reg, Slot* slot,
               std::size_t retire_batch) noexcept
        : reg_(std::move(reg)), slot_(slot), retire_batch_(retire_batch) {}

    std::shared_ptr<Registry> reg_;
    Slot* slot_ = nullptr;
    std::size_t retire_batch_ = 0;
  };

  explicit HazardReclaimer(std::size_t max_threads = 64,
                           std::size_t retire_batch = 128)
      : reg_(std::make_shared<Registry>(max_threads)),
        retire_batch_(retire_batch) {}

  Attachment attach() {
    return Attachment(reg_, reg_->acquire_slot(), retire_batch_);
  }

  Guard pin() { return pin_slot(local_slot()); }

  template <typename T>
  void retire(T* p) {
    retire_slot(reg_.get(), local_slot(), retire_batch_, p);
  }

  std::uint64_t freed_count() const noexcept {
    return reg_->freed_total.load(std::memory_order_relaxed);
  }

  /// Gauge snapshot (relaxed; see EpochReclaimer::gauges). There is no global
  /// epoch in the grace-round scheme, so `epoch` stays 0; orphan_depth counts
  /// both orphaned lists (retired + pending).
  ReclaimGauges gauges() const noexcept {
    ReclaimGauges g;
    for (const auto& padded : reg_->slots) {
      const Slot& s = padded.value;
      g.retired_total += s.retired_count.load(std::memory_order_relaxed);
      g.pins += s.pins.load(std::memory_order_relaxed);
      g.unpins += s.unpins.load(std::memory_order_relaxed);
    }
    g.freed_total = reg_->freed_total.load(std::memory_order_relaxed);
    g.orphan_depth = reg_->orphan_count.load(std::memory_order_relaxed);
    return g;
  }

  /// Best-effort drain at quiescent points (must be called unpinned, or the
  /// caller's own snapshot entry keeps its rounds open).
  void flush() { flush_slot(reg_.get(), local_slot()); }

  /// Unified-surface alias of flush() (see ReclaimerPolicy).
  void flush_slot() { flush(); }

  /// Install the retire-to-pool hook (see reclaim/reclaimer.hpp). Must run
  /// before this reclaimer is shared between threads; already-queued entries
  /// are also re-routed (the hook is consulted at free time).
  void set_pool_return(PoolHook hook) noexcept {
    reg_->pool_hook = std::move(hook);
  }

 private:
  static Guard pin_slot(Slot* slot) {
    if (slot->depth++ == 0) {
      // seq_cst RMW: the announcement is globally ordered against the
      // snapshot loads in advance_round, mirroring the epoch announcement's
      // publish-then-recheck fence role.
      slot->seq.fetch_add(1, std::memory_order_seq_cst);
      slot->pins.fetch_add(1, std::memory_order_relaxed);
    }
    return Guard(slot);
  }

  template <typename T>
  static void retire_slot(Registry* reg, Slot* slot, std::size_t retire_batch,
                          T* p) {
    EFRB_DCHECK(p != nullptr);
    slot->retired.push_back(Retired{p, &dispose_retired<T>});
    slot->retired_count.fetch_add(1, std::memory_order_relaxed);
    // Size-scheduled rounds (amortized O(1) per retire; see EpochReclaimer).
    if (slot->retired.size() >= std::max(slot->next_round, retire_batch)) {
      advance_round(reg, slot);
      slot->next_round = slot->retired.size() + retire_batch;
    }
  }

  /// Unconditionally drives three round steps: a flush must also advance the
  /// registry's orphan round, which the caller's own (possibly empty) lists
  /// say nothing about.
  static void flush_slot(Registry* reg, Slot* slot) {
    for (int i = 0; i < 3; ++i) advance_round(reg, slot);
  }

  /// One grace-round step over (retired, pending, readers) — the state triple
  /// of a slot or of the registry's orphan lists: clear snapshot entries
  /// whose reader moved on, free the pending set once the snapshot empties,
  /// then start a new round for the accumulated retired list.
  static void round_step(Registry* reg, std::vector<Retired>& retired,
                         std::vector<Retired>& pending,
                         std::vector<std::pair<Slot*, std::uint64_t>>& readers) {
    std::size_t kept = 0;
    for (const auto& [s, seq] : readers) {
      // A recorded sequence is odd; any change means that pin ended (sequence
      // numbers are monotone), including slot release/re-acquisition.
      if (s->seq.load(std::memory_order_seq_cst) == seq) {
        readers[kept++] = {s, seq};
      }
    }
    readers.resize(kept);
    if (readers.empty() && !pending.empty()) {
      for (const Retired& r : pending) r.deleter(r.ptr, reg->pool_hook);
      reg->freed_total.fetch_add(pending.size(), std::memory_order_relaxed);
      pending.clear();
    }
    if (pending.empty() && !retired.empty()) {
      // Reserve before mutating: if this throws (bad_alloc) the round state
      // is untouched and the caller can retry later. With capacity for every
      // slot in place, the push_backs below cannot throw, so a started round
      // never ends up with a partial reader snapshot (which could free the
      // pending set while an unsnapshotted reader still holds references).
      readers.reserve(reg->slots.size());
      std::swap(pending, retired);
      for (auto& padded : reg->slots) {
        Slot& s = padded.value;
        if (!s.in_use.load(std::memory_order_acquire)) continue;
        const std::uint64_t seq = s.seq.load(std::memory_order_seq_cst);
        if ((seq & 1) != 0) readers.push_back({&s, seq});
      }
    }
  }

  static void advance_round(Registry* reg, Slot* slot) {
    round_step(reg, slot->retired, slot->pending, slot->readers);
    drain_orphans(reg);
  }

  /// One round step for the registry-level orphan lists, under try-lock (a
  /// retire never stalls on the orphan slow path; any later round from any
  /// slot drives the orphans forward instead).
  static void drain_orphans(Registry* reg) noexcept {
    try {
      const std::unique_lock<std::mutex> lock(reg->orphan_mu,
                                              std::try_to_lock);
      if (!lock.owns_lock()) return;
      if (reg->orphan_retired.empty() && reg->orphan_pending.empty()) return;
      // round_step's only throw point (the reader-snapshot reserve) fires
      // before any mutation, so a bad_alloc here just defers the orphan
      // round to a later, less memory-starved attempt.
      round_step(reg, reg->orphan_retired, reg->orphan_pending,
                 reg->orphan_readers);
      reg->orphan_count.store(
          reg->orphan_retired.size() + reg->orphan_pending.size(),
          std::memory_order_relaxed);
    } catch (...) {
    }
  }

  /// Common tail of Attachment::detach and the thread-exit Lease: drive a
  /// round to free what is already coverable, then orphan the remainder.
  /// Moved entries restart their grace round in the orphan lists — strictly
  /// conservative, since a fresh reader snapshot can only wait longer than
  /// the round they were part of.
  /// noexcept-for-real: the orphan hand-off allocates and this runs from
  /// detach()/thread-exit teardown. On bad_alloc the slot keeps its intact
  /// (retired, pending, readers) triple — the next owner of the slot simply
  /// continues the grace round; Registry destruction frees any remainder.
  static void release_slot(Registry* reg, Slot* slot) noexcept {
    try {
      round_step(reg, slot->retired, slot->pending, slot->readers);
      if (!slot->retired.empty() || !slot->pending.empty()) {
        const std::lock_guard<std::mutex> lock(reg->orphan_mu);
        // Reserve first: once capacity is in place the inserts below cannot
        // throw (Retired is trivially copyable), so a failure cannot leave an
        // entry duplicated across the orphan list and the slot (double free).
        reg->orphan_retired.reserve(reg->orphan_retired.size() +
                                    slot->pending.size() +
                                    slot->retired.size());
        reg->orphan_retired.insert(reg->orphan_retired.end(),
                                   slot->pending.begin(), slot->pending.end());
        reg->orphan_retired.insert(reg->orphan_retired.end(),
                                   slot->retired.begin(), slot->retired.end());
        slot->pending.clear();
        slot->retired.clear();
        reg->orphan_count.store(
            reg->orphan_retired.size() + reg->orphan_pending.size(),
            std::memory_order_relaxed);
      }
      slot->readers.clear();
    } catch (...) {
    }
    if (slot->retired.empty() && slot->pending.empty()) {
      // Empty-only shrink (readers was cleared with the lists on the success
      // path): the empty replacement buffers cannot allocate, so this stays
      // non-throwing. After a failed hand-off the triple keeps its contents
      // and capacity, leaving the round resumable by the slot's next owner.
      slot->retired.shrink_to_fit();
      slot->pending.shrink_to_fit();
      slot->readers.shrink_to_fit();
    }
    slot->next_round = 0;
    slot->in_use.store(false, std::memory_order_release);
    drain_orphans(reg);
  }

  struct Lease {
    struct Entry {
      std::shared_ptr<Registry> reg;
      Slot* slot;
    };
    std::vector<Entry> entries;
    ~Lease() {
      for (auto& e : entries) release_slot(e.reg.get(), e.slot);
    }
  };

  Slot* local_slot() {
    thread_local Lease lease;
    thread_local Registry* cached_reg = nullptr;
    thread_local Slot* cached_slot = nullptr;
    Registry* reg = reg_.get();
    if (cached_reg == reg) return cached_slot;
    for (const auto& e : lease.entries) {
      if (e.reg.get() == reg) {
        cached_reg = reg;
        cached_slot = e.slot;
        return e.slot;
      }
    }
    Slot* slot = reg->acquire_slot();
    lease.entries.push_back(Lease::Entry{reg_, slot});
    cached_reg = reg;
    cached_slot = slot;
    return slot;
  }

  std::shared_ptr<Registry> reg_;
  std::size_t retire_batch_;
};

static_assert(ReclaimerPolicy<HazardReclaimer>);
static_assert(AttachableReclaimerPolicy<HazardReclaimer>);

}  // namespace efrb
