// Operation mixes: the insert/delete/find percentages that parameterize the
// throughput experiments (E1..E5). Standard points in the literature:
// read-only (0i/0d), read-mostly (9i/1d/90f), and update-heavy (50i/50d).
#pragma once

#include <cstdint>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace efrb {

enum class OpType : std::uint8_t { kFind = 0, kInsert = 1, kErase = 2 };

struct OpMix {
  unsigned insert_pct = 0;
  unsigned erase_pct = 0;
  // find_pct is the remainder.

  constexpr unsigned find_pct() const noexcept {
    return 100 - insert_pct - erase_pct;
  }

  OpType sample(Xoshiro256& rng) const {
    const auto r = static_cast<unsigned>(rng.next_below(100));
    if (r < insert_pct) return OpType::kInsert;
    if (r < insert_pct + erase_pct) return OpType::kErase;
    return OpType::kFind;
  }
};

inline constexpr OpMix kReadOnly{0, 0};
inline constexpr OpMix kReadMostly{9, 1};
inline constexpr OpMix kBalanced{20, 10};
inline constexpr OpMix kUpdateHeavy{50, 50};

inline const char* mix_name(const OpMix& m) {
  if (m.insert_pct == 0 && m.erase_pct == 0) return "0i/0d/100f";
  if (m.insert_pct == 9 && m.erase_pct == 1) return "9i/1d/90f";
  if (m.insert_pct == 20 && m.erase_pct == 10) return "20i/10d/70f";
  if (m.insert_pct == 50 && m.erase_pct == 50) return "50i/50d/0f";
  return "custom";
}

}  // namespace efrb
