// Key distributions for workloads: uniform and Zipfian.
//
// The Zipfian generator is the YCSB formulation (Gray et al.'s rejection-free
// method with precomputed zeta), so skewed-contention experiments (E2) hammer
// a small hot set the way real caching workloads do.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace efrb {

/// Uniform over [0, range).
class UniformKeys {
 public:
  explicit UniformKeys(std::uint64_t range) : range_(range) {
    EFRB_ASSERT(range > 0);
  }
  std::uint64_t operator()(Xoshiro256& rng) const {
    return rng.next_below(range_);
  }
  std::uint64_t range() const noexcept { return range_; }

 private:
  std::uint64_t range_;
};

/// Zipf over [0, range) with exponent theta (0.99 is the YCSB default).
/// Construction is O(range) once; sampling is O(1).
class ZipfKeys {
 public:
  ZipfKeys(std::uint64_t range, double theta = 0.99)
      : range_(range), theta_(theta) {
    EFRB_ASSERT(range > 0);
    zetan_ = zeta(range, theta);
    zeta2_ = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(range_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  std::uint64_t operator()(Xoshiro256& rng) const {
    const double u = rng.next_double();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto v = static_cast<std::uint64_t>(
        static_cast<double>(range_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= range_ ? range_ - 1 : v;
  }

  std::uint64_t range() const noexcept { return range_; }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  std::uint64_t range_;
  double theta_;
  double zetan_, zeta2_, alpha_, eta_;
};

}  // namespace efrb
