// Fixed-duration throughput harness.
//
// Prefills the structure to a target occupancy, then runs N threads for a
// fixed wall-clock window, each sampling (operation, key) pairs from the
// configured mix/distribution. Results report per-type counts and Mops/s.
//
// Single-core note: on a 1-CPU host the threads interleave preemptively; the
// harness still measures the cost structure of each implementation (lock
// convoying, helping overhead, path length) but not parallel speedup.
// EXPERIMENTS.md interprets the outputs accordingly.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "baselines/set_interface.hpp"
#include "util/assert.hpp"
#include "util/barrier.hpp"
#include "util/cacheline.hpp"
#include "util/rng.hpp"
#include "workload/distribution.hpp"
#include "workload/op_mix.hpp"

namespace efrb {

struct WorkloadConfig {
  std::size_t threads = 4;
  std::uint64_t key_range = std::uint64_t{1} << 16;
  OpMix mix = kBalanced;
  std::chrono::milliseconds duration{200};
  double prefill_fraction = 0.5;  // of key_range
  std::uint64_t seed = 42;
  bool zipf = false;
  double zipf_theta = 0.99;
  // Route each worker's operations through a per-thread handle
  // (make_handle(): real handle when the structure has one, forwarding proxy
  // otherwise). Off = the tree-level convenience methods, kept for A/B
  // measurement of the handle path itself.
  bool use_handles = true;
};

struct WorkloadResult {
  std::uint64_t finds = 0;
  std::uint64_t inserts = 0;     // attempts
  std::uint64_t erases = 0;      // attempts
  std::uint64_t ok_finds = 0;    // returned true (also defeats dead-code
                                 // elimination of pure lookup paths)
  std::uint64_t ok_inserts = 0;  // returned true
  std::uint64_t ok_erases = 0;
  double seconds = 0;

  std::uint64_t total_ops() const noexcept { return finds + inserts + erases; }
  double mops() const noexcept {
    return seconds > 0 ? static_cast<double>(total_ops()) / seconds / 1e6 : 0;
  }
};

/// Insert uniformly random keys until the structure holds ~fraction*range
/// keys; gives every run the same expected occupancy and (for trees) the
/// random shape whose expected depth is logarithmic (§6's cited analysis).
template <typename Set>
void prefill(Set& set, std::uint64_t key_range, double fraction,
             std::uint64_t seed) {
  const auto target = static_cast<std::uint64_t>(
      fraction * static_cast<double>(key_range));
  Xoshiro256 rng(seed ^ 0xabcdef1234567890ULL);
  std::uint64_t inserted = 0;
  while (inserted < target) {
    if (set.insert(static_cast<typename Set::key_type>(
            rng.next_below(key_range)))) {
      ++inserted;
    }
  }
}

template <typename Set>
WorkloadResult run_workload(Set& set, const WorkloadConfig& cfg) {
  EFRB_ASSERT(cfg.threads > 0);
  using Key = typename Set::key_type;

  std::atomic<bool> stop{false};
  YieldingBarrier start(static_cast<std::uint32_t>(cfg.threads) + 1);
  std::vector<CachePadded<WorkloadResult>> per_thread(cfg.threads);

  // Constructing the Zipf table is O(range); do it once, shared (read-only).
  const UniformKeys uniform(cfg.key_range);
  const ZipfKeys* zipf = nullptr;
  ZipfKeys zipf_storage = cfg.zipf ? ZipfKeys(cfg.key_range, cfg.zipf_theta)
                                   : ZipfKeys(1, 0.5);
  if (cfg.zipf) zipf = &zipf_storage;

  std::vector<std::thread> threads;
  threads.reserve(cfg.threads);
  for (std::size_t tid = 0; tid < cfg.threads; ++tid) {
    threads.emplace_back([&, tid] {
      Xoshiro256 rng(cfg.seed + 0x1234 * (tid + 1));
      WorkloadResult& local = per_thread[tid].value;
      // Generic over the access point: a per-thread handle or the structure
      // itself, chosen below (identical loop body either way).
      auto run_loop = [&](auto&& target) {
        start.arrive_and_wait();
        while (!stop.load(std::memory_order_relaxed)) {
          // A small batch per stop-flag check keeps the check off the hot
          // path.
          for (int batch = 0; batch < 64; ++batch) {
            const std::uint64_t raw = zipf ? (*zipf)(rng) : uniform(rng);
            const Key k = static_cast<Key>(raw);
            switch (cfg.mix.sample(rng)) {
              case OpType::kFind:
                // The result must flow into state the compiler cannot
                // discard, or a lock-guarded pure traversal gets
                // dead-code-eliminated and the benchmark measures only the
                // lock.
                local.ok_finds += target.contains(k) ? 1 : 0;
                ++local.finds;
                break;
              case OpType::kInsert:
                local.ok_inserts += target.insert(k) ? 1 : 0;
                ++local.inserts;
                break;
              case OpType::kErase:
                local.ok_erases += target.erase(k) ? 1 : 0;
                ++local.erases;
                break;
            }
          }
        }
      };
      if (cfg.use_handles) {
        run_loop(make_handle(set));
      } else {
        run_loop(set);
      }
    });
  }

  start.arrive_and_wait();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(cfg.duration);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  WorkloadResult total;
  for (const auto& p : per_thread) {
    total.finds += p.value.finds;
    total.inserts += p.value.inserts;
    total.erases += p.value.erases;
    total.ok_finds += p.value.ok_finds;
    total.ok_inserts += p.value.ok_inserts;
    total.ok_erases += p.value.ok_erases;
  }
  total.seconds = std::chrono::duration<double>(t1 - t0).count();
  return total;
}

}  // namespace efrb
