// Fixed-duration throughput harness.
//
// Prefills the structure to a target occupancy, then runs N threads for a
// fixed wall-clock window, each sampling (operation, key) pairs from the
// configured mix/distribution. Results report per-type counts and Mops/s.
//
// Single-core note: on a 1-CPU host the threads interleave preemptively; the
// harness still measures the cost structure of each implementation (lock
// convoying, helping overhead, path length) but not parallel speedup.
// EXPERIMENTS.md interprets the outputs accordingly.
#pragma once

#include <atomic>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "baselines/set_interface.hpp"
#include "obs/causal.hpp"
#include "obs/histogram.hpp"
#include "obs/perfctr.hpp"
#include "obs/profile.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"
#include "util/barrier.hpp"
#include "util/cacheline.hpp"
#include "util/rng.hpp"
#include "workload/distribution.hpp"
#include "workload/op_mix.hpp"

namespace efrb {

struct WorkloadConfig {
  std::size_t threads = 4;
  std::uint64_t key_range = std::uint64_t{1} << 16;
  OpMix mix = kBalanced;
  std::chrono::milliseconds duration{200};
  double prefill_fraction = 0.5;  // of key_range
  std::uint64_t seed = 42;
  bool zipf = false;
  double zipf_theta = 0.99;
  // Route each worker's operations through a per-thread handle
  // (make_handle(): real handle when the structure has one, forwarding proxy
  // otherwise). Off = the tree-level convenience methods, kept for A/B
  // measurement of the handle path itself.
  bool use_handles = true;
};

struct WorkloadResult {
  std::uint64_t finds = 0;
  std::uint64_t inserts = 0;     // attempts
  std::uint64_t erases = 0;      // attempts
  std::uint64_t ok_finds = 0;    // returned true (also defeats dead-code
                                 // elimination of pure lookup paths)
  std::uint64_t ok_inserts = 0;  // returned true
  std::uint64_t ok_erases = 0;
  double seconds = 0;

  std::uint64_t total_ops() const noexcept { return finds + inserts + erases; }
  double mops() const noexcept {
    return seconds > 0 ? static_cast<double>(total_ops()) / seconds / 1e6 : 0;
  }
};

/// Opt-in per-op latency sampling output: one histogram per operation type
/// plus one for ops that hit at least one retry (populated only for targets
/// exposing last_op_retried(), i.e. EfrbTreeMap handles). Values are
/// nanoseconds. Workers record into private instances; run_workload merges
/// them into the caller's after the join.
struct LatencySamples {
  obs::LatencyHistogram find;
  obs::LatencyHistogram insert;
  obs::LatencyHistogram erase;
  obs::LatencyHistogram retried;
  // Causal split (populated only when run_workload is given a
  // CausalRegistry): an op lands in helper_completed when some other thread
  // helped it along — its helps_received counter moved while the op ran —
  // and in self_completed otherwise. The pair separates "my latency" from
  // "latency the helping protocol rescued".
  obs::LatencyHistogram self_completed;
  obs::LatencyHistogram helper_completed;

  void merge(const LatencySamples& other) noexcept {
    find.merge(other.find);
    insert.merge(other.insert);
    erase.merge(other.erase);
    retried.merge(other.retried);
    self_completed.merge(other.self_completed);
    helper_completed.merge(other.helper_completed);
  }

  std::uint64_t total_count() const noexcept {
    return find.count() + insert.count() + erase.count();
  }
};

namespace detail {

/// Access-point wrapper that bumps a per-thread relaxed atomic after every
/// operation — the live op counter a MetricsPoller reads mid-run. A separate
/// wrapper type (rather than a branch in the worker loop) keeps the
/// unpolled run_workload instantiations byte-for-byte the old loops: the
/// counting code exists only in the instantiation taken when a poller is
/// attached. Forwards the optional tid()/last_op_retried() surface so the
/// instrumented loop's trace/latency plumbing sees through the wrapper.
template <typename Target>
struct OpCounted {
  Target target;  // Set& on the tree-level path, a handle by value otherwise
  std::atomic<std::uint64_t>* ops;

  template <typename K>
  bool contains(const K& k) {
    const bool r = target.contains(k);
    ops->fetch_add(1, std::memory_order_relaxed);
    return r;
  }
  template <typename K>
  bool insert(const K& k) {
    const bool r = target.insert(k);
    ops->fetch_add(1, std::memory_order_relaxed);
    return r;
  }
  template <typename K>
  bool erase(const K& k) {
    const bool r = target.erase(k);
    ops->fetch_add(1, std::memory_order_relaxed);
    return r;
  }

  unsigned tid() const
    requires requires(const Target& t) { t.tid(); }
  {
    return target.tid();
  }
  bool last_op_retried() const
    requires requires(const Target& t) { t.last_op_retried(); }
  {
    return target.last_op_retried();
  }
};

template <typename Target>
OpCounted<Target> with_op_count(Target&& target,
                                std::atomic<std::uint64_t>* ops) {
  return OpCounted<Target>{std::forward<Target>(target), ops};
}

}  // namespace detail

/// Insert uniformly random keys until the structure holds ~fraction*range
/// keys; gives every run the same expected occupancy and (for trees) the
/// random shape whose expected depth is logarithmic (§6's cited analysis).
template <typename Set>
void prefill(Set& set, std::uint64_t key_range, double fraction,
             std::uint64_t seed) {
  const auto target = static_cast<std::uint64_t>(
      fraction * static_cast<double>(key_range));
  Xoshiro256 rng(seed ^ 0xabcdef1234567890ULL);
  std::uint64_t inserted = 0;
  while (inserted < target) {
    if (set.insert(static_cast<typename Set::key_type>(
            rng.next_below(key_range)))) {
      ++inserted;
    }
  }
}

/// Fixed-duration mixed workload over `set`.
///
/// `latency` (optional) enables per-op latency sampling: every operation is
/// bracketed by two steady_clock reads and recorded into per-worker
/// LatencySamples, merged into `*latency` after the join. The bracketing
/// clock reads are the documented cost of opting in; the uninstrumented path
/// is byte-for-byte the old loop.
///
/// `trace` (optional) emits op begin/end markers into the given registry,
/// keyed by the target's handle tid when it has one (so op spans land in the
/// same ring as the protocol events a TraceTraits tree writes), else by the
/// worker index.
///
/// `poller` (optional) attaches a MetricsPoller to the run: workers route
/// through an op-counting wrapper (one relaxed fetch_add per op into a
/// per-thread padded counter — the documented cost of opting in), the
/// poller's ops source is pointed at those counters, and its background
/// thread is started when the workers pass the start barrier and stopped
/// after they join — so the sample series spans exactly the measured window.
/// The caller keeps ownership and sets the stats/gauges sources (they own
/// the structure); run_workload only wires and unwires the ops source.
///
/// `causal` (optional) splits the latency histograms by completion mode:
/// each sampled op diffs the handle tid's helps_received counter across the
/// op and records into latency->helper_completed when another thread helped
/// it (self_completed otherwise). Requires `latency`; two relaxed counter
/// loads per op is the documented cost.
///
/// `profiler` (optional) attaches per-phase cost attribution
/// (obs/profile.hpp): every op is bracketed by profiler->op_begin/op_end
/// (two cycle_stamp reads — the documented cost), keyed by the same tid the
/// trace path uses, and each worker opens a per-thread perf-counter group
/// (obs/perfctr.hpp) whose end-of-run read is folded into the profiler. On
/// hosts where perf_event_open is denied the counters silently stay closed
/// and the profiler reports hardware availability false. Note the profiler
/// only sees phase detail when the structure was instantiated with a Traits
/// that forwards at/phase to it (e.g. obs::ProfileTraits); attaching it
/// here without such a Traits still yields ops/total-cycles/hw totals.
template <typename Set>
WorkloadResult run_workload(Set& set, const WorkloadConfig& cfg,
                            LatencySamples* latency = nullptr,
                            obs::TraceRegistry* trace = nullptr,
                            obs::MetricsPoller* poller = nullptr,
                            const obs::CausalRegistry* causal = nullptr,
                            obs::PhaseProfiler* profiler = nullptr) {
  EFRB_ASSERT(cfg.threads > 0);
  using Key = typename Set::key_type;

  std::atomic<bool> stop{false};
  YieldingBarrier start(static_cast<std::uint32_t>(cfg.threads) + 1);
  std::vector<CachePadded<WorkloadResult>> per_thread(cfg.threads);
  // Live per-worker op counters, allocated only when a poller is attached.
  std::vector<CachePadded<std::atomic<std::uint64_t>>> live_ops(
      poller != nullptr ? cfg.threads : 0);
  if (poller != nullptr) {
    poller->set_ops_source([&live_ops] {
      std::uint64_t total = 0;
      for (const auto& c : live_ops) {
        total += c.value.load(std::memory_order_relaxed);
      }
      return total;
    });
  }
  // Heap-held per-worker sample sets (a LatencySamples is ~140 KB of
  // histogram buckets — too big for the padded result array), allocated
  // before the workers start and merged after they join.
  std::vector<std::unique_ptr<LatencySamples>> per_thread_lat(cfg.threads);
  if (latency != nullptr) {
    for (auto& p : per_thread_lat) p = std::make_unique<LatencySamples>();
  }

  // Constructing the Zipf table is O(range); do it once, shared (read-only).
  const UniformKeys uniform(cfg.key_range);
  const ZipfKeys* zipf = nullptr;
  ZipfKeys zipf_storage = cfg.zipf ? ZipfKeys(cfg.key_range, cfg.zipf_theta)
                                   : ZipfKeys(1, 0.5);
  if (cfg.zipf) zipf = &zipf_storage;

  std::vector<std::thread> threads;
  threads.reserve(cfg.threads);
  for (std::size_t tid = 0; tid < cfg.threads; ++tid) {
    threads.emplace_back([&, tid] {
      Xoshiro256 rng(cfg.seed + 0x1234 * (tid + 1));
      WorkloadResult& local = per_thread[tid].value;
      LatencySamples* lat = per_thread_lat[tid].get();
      // Generic over the access point: a per-thread handle or the structure
      // itself, chosen below (identical loop body either way).
      auto run_loop = [&](auto&& target) {
        start.arrive_and_wait();
        while (!stop.load(std::memory_order_relaxed)) {
          // A small batch per stop-flag check keeps the check off the hot
          // path.
          for (int batch = 0; batch < 64; ++batch) {
            const std::uint64_t raw = zipf ? (*zipf)(rng) : uniform(rng);
            const Key k = static_cast<Key>(raw);
            switch (cfg.mix.sample(rng)) {
              case OpType::kFind:
                // The result must flow into state the compiler cannot
                // discard, or a lock-guarded pure traversal gets
                // dead-code-eliminated and the benchmark measures only the
                // lock.
                local.ok_finds += target.contains(k) ? 1 : 0;
                ++local.finds;
                break;
              case OpType::kInsert:
                local.ok_inserts += target.insert(k) ? 1 : 0;
                ++local.inserts;
                break;
              case OpType::kErase:
                local.ok_erases += target.erase(k) ? 1 : 0;
                ++local.erases;
                break;
            }
          }
        }
      };
      // Instrumented variant: each op is timed and (optionally) bracketed
      // by trace markers. Separate loop so the plain path stays untouched.
      auto run_sampled = [&](auto&& target) {
        unsigned trace_tid = static_cast<unsigned>(tid);
        if constexpr (requires {
                        { target.tid() } -> std::convertible_to<unsigned>;
                      }) {
          if (target.tid() != kNoTid) trace_tid = target.tid();
        }
        start.arrive_and_wait();
        while (!stop.load(std::memory_order_relaxed)) {
          for (int batch = 0; batch < 64; ++batch) {
            const std::uint64_t raw = zipf ? (*zipf)(rng) : uniform(rng);
            const Key k = static_cast<Key>(raw);
            const OpType op = cfg.mix.sample(rng);
            const obs::TraceOp top = op == OpType::kFind ? obs::TraceOp::kFind
                                     : op == OpType::kInsert
                                         ? obs::TraceOp::kInsert
                                         : obs::TraceOp::kErase;
            if (trace != nullptr) trace->record_op_begin(trace_tid, top);
            if (profiler != nullptr) profiler->op_begin(trace_tid);
            const std::uint64_t helps_before =
                causal != nullptr ? causal->helps_received(trace_tid) : 0;
            const auto a = std::chrono::steady_clock::now();
            bool ok = false;
            switch (op) {
              case OpType::kFind:
                ok = target.contains(k);
                local.ok_finds += ok ? 1 : 0;
                ++local.finds;
                break;
              case OpType::kInsert:
                ok = target.insert(k);
                local.ok_inserts += ok ? 1 : 0;
                ++local.inserts;
                break;
              case OpType::kErase:
                ok = target.erase(k);
                local.ok_erases += ok ? 1 : 0;
                ++local.erases;
                break;
            }
            const auto b = std::chrono::steady_clock::now();
            if (profiler != nullptr) profiler->op_end(trace_tid);
            if (trace != nullptr) trace->record_op_end(trace_tid, top, ok);
            if (lat != nullptr) {
              const auto ns = static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
                      .count());
              (op == OpType::kFind     ? lat->find
               : op == OpType::kInsert ? lat->insert
                                       : lat->erase)
                  .record(ns);
              if constexpr (requires {
                              {
                                target.last_op_retried()
                              } -> std::convertible_to<bool>;
                            }) {
                if (target.last_op_retried()) lat->retried.record(ns);
              }
              if (causal != nullptr) {
                (causal->helps_received(trace_tid) != helps_before
                     ? lat->helper_completed
                     : lat->self_completed)
                    .record(ns);
              }
            }
          }
        }
      };
      const bool instrument =
          latency != nullptr || trace != nullptr || profiler != nullptr;
      auto run_target = [&](auto&& target) {
        if (instrument) {
          run_sampled(std::forward<decltype(target)>(target));
        } else {
          run_loop(std::forward<decltype(target)>(target));
        }
      };
      auto dispatch = [&](auto&& target) {
        if (poller != nullptr) {
          run_target(detail::with_op_count(
              std::forward<decltype(target)>(target), &live_ops[tid].value));
        } else {
          run_target(std::forward<decltype(target)>(target));
        }
      };
      // Per-thread perf counters for the profiled path. Opened and enabled
      // here (the start-barrier wait they also cover is microseconds against
      // a run window of milliseconds); read once after the measured loop and
      // folded into the profiler's run totals.
      obs::PerfCounterGroup perf;
      if (profiler != nullptr) {
        perf.open();
        perf.enable();
      }
      if (cfg.use_handles) {
        dispatch(make_handle(set));
      } else {
        dispatch(set);
      }
      if (profiler != nullptr) {
        perf.disable();
        profiler->add_hw(perf.read(), perf.unavailable_reason());
      }
    });
  }

  start.arrive_and_wait();
  if (poller != nullptr) poller->start();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(cfg.duration);
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  if (poller != nullptr) {
    // Stop (which takes a final sample while the counters are still alive),
    // then unwire the ops source — it captures this frame's live_ops.
    poller->stop();
    poller->set_ops_source({});
  }

  WorkloadResult total;
  for (const auto& p : per_thread) {
    total.finds += p.value.finds;
    total.inserts += p.value.inserts;
    total.erases += p.value.erases;
    total.ok_finds += p.value.ok_finds;
    total.ok_inserts += p.value.ok_inserts;
    total.ok_erases += p.value.ok_erases;
  }
  total.seconds = std::chrono::duration<double>(t1 - t0).count();
  if (latency != nullptr) {
    for (const auto& p : per_thread_lat) latency->merge(*p);
  }
  return total;
}

}  // namespace efrb
