// Minimal fixed-width table printer for the benchmark binaries, so every
// experiment emits the same aligned "rows and series" format EXPERIMENTS.md
// quotes — plus the protocol-step breakdown built from a TreeStats snapshot.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/debug_hooks.hpp"
#include "core/op_context.hpp"

namespace efrb {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::FILE* out = stdout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    print_row(out, headers_, widths);
    std::string sep;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      sep += std::string(widths[c] + 2, '-');
    }
    std::fprintf(out, "%s\n", sep.c_str());
    for (const auto& row : rows_) print_row(out, row, widths);
  }

  static std::string fmt(double v, int prec = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
  }

 private:
  static void print_row(std::FILE* out, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      // A row may carry more cells than the header; extra cells have no
      // computed width, so pad them to their own length instead of reading
      // past the end of `widths`.
      const int w = c < widths.size() ? static_cast<int>(widths[c]) : 0;
      std::fprintf(out, "%-*s  ", w, row[c].c_str());
    }
    std::fprintf(out, "\n");
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Protocol-step breakdown of a TreeStats snapshot (stats_snapshot() or
/// Handle::local_stats() on a kCountStats tree): one row per CAS step of
/// Fig. 4 with attempts, failed CAS and failure rate, followed by the help
/// and backtrack totals recorded by the same counters. Failed iflag/dflag
/// rows are the operation retries; failed ichild/mark/dchild/unflag rows are
/// CAS races resolved by helpers.
inline Table protocol_step_table(const TreeStats& s) {
  Table t({"cas step", "attempts", "failed", "fail %"});
  for (std::size_t i = 0; i < kNumCasSteps; ++i) {
    const std::uint64_t a = s.cas_attempts[i];
    const std::uint64_t f = s.cas_failures[i];
    t.add_row({to_string(static_cast<CasStep>(i)), std::to_string(a),
               std::to_string(f),
               a == 0 ? std::string("-")
                      : Table::fmt(100.0 * static_cast<double>(f) /
                                       static_cast<double>(a))});
  }
  t.add_row({"helps", std::to_string(s.helps), "-", "-"});
  t.add_row({"backtracks", std::to_string(s.backtracks), "-", "-"});
  return t;
}

}  // namespace efrb
