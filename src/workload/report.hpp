// Minimal fixed-width table printer for the benchmark binaries, so every
// experiment emits the same aligned "rows and series" format EXPERIMENTS.md
// quotes.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

namespace efrb {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::FILE* out = stdout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    print_row(out, headers_, widths);
    std::string sep;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      sep += std::string(widths[c] + 2, '-');
    }
    std::fprintf(out, "%s\n", sep.c_str());
    for (const auto& row : rows_) print_row(out, row, widths);
  }

  static std::string fmt(double v, int prec = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
  }

 private:
  static void print_row(std::FILE* out, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::fprintf(out, "\n");
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace efrb
