// Fault-injection bench: throughput degradation while one thread is frozen
// at each protocol pause point.
//
// The victim thread is stalled by a FaultScheduler stall gate exactly where
// the matching fault_injection_test case freezes it — holding whatever the
// protocol has acquired at that point (an IFlag/DFlag/Mark on the path, a
// reclaimer pin). Four worker threads then run an update-heavy mix for the
// cell duration. The interesting shape: degradation stays small at every
// point (non-blocking progress — workers help past the frozen operation and
// never wait for it), while the reclaimer column shows the real cost of a
// frozen pin: retired nodes accumulate for the whole cell (EBR wedge).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "core/efrb_tree.hpp"
#include "inject/fault_plan.hpp"
#include "inject/fault_scheduler.hpp"
#include "reclaim/epoch.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/report.hpp"

namespace {

using efrb::CasStep;
using efrb::EpochReclaimer;
using efrb::HookPoint;
using efrb::Table;
using efrb::inject::FaultAction;
using efrb::inject::FaultKind;
using efrb::inject::FaultPlan;
using efrb::inject::FaultScheduler;

using Tree = efrb::EfrbTreeSet<std::uint64_t, std::less<std::uint64_t>,
                               EpochReclaimer, efrb::inject::InjectTraits>;

constexpr std::uint64_t kKeyRange = 1024;
constexpr std::size_t kWorkers = 4;

struct Cell {
  double mops;
  std::uint64_t freed;  // reclaimer frees during the cell
};

struct StallCase {
  const char* name;       // nullptr = baseline row (no frozen thread)
  HookPoint point;
  bool is_delete;         // victim op: erase vs insert (key outside range)
  int pre_fail_step;      // CasStep forced to fail once first, or -1
};

Cell run_cell(const StallCase* c) {
  EpochReclaimer rec(64, 256);
  Tree t(std::less<std::uint64_t>{}, rec);
  for (std::uint64_t k = 0; k < kKeyRange; k += 2) t.insert(k);
  if (c != nullptr) t.insert(2001);

  FaultPlan plan;
  if (c != nullptr) {
    if (c->pre_fail_step >= 0) {
      FaultAction fail;
      fail.kind = FaultKind::kFailCas;
      fail.step = c->pre_fail_step;
      plan.actions.push_back(fail);
    }
    FaultAction stall;
    stall.kind = FaultKind::kStall;
    stall.point = static_cast<int>(c->point);
    plan.actions.push_back(stall);
  }
  FaultScheduler sched(plan);

  std::thread victim;
  if (c != nullptr) {
    victim = std::thread([&] {
      FaultScheduler::ThreadScope scope(sched, 0);
      auto h = t.handle();
      if (c->is_delete) {
        h.erase(2001);
      } else {
        h.insert(2003);
      }
    });
    if (!sched.wait_until_stalled(0)) {
      std::fprintf(stderr, "victim never stalled at %s\n", c->name);
      std::abort();
    }
  }

  const std::uint64_t freed_before = rec.freed_count();
  const auto duration = efrb::bench::cell_duration();
  std::atomic<std::uint64_t> total_ops{0};
  efrb::run_threads(kWorkers, [&](std::size_t tid) {
    auto h = t.handle();
    efrb::Xoshiro256 rng(tid * 0x9e3779b9ULL + 17);
    const auto deadline = std::chrono::steady_clock::now() + duration;
    std::uint64_t ops = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      for (int i = 0; i < 64; ++i, ++ops) {
        const auto k = rng.next_below(kKeyRange);
        if (rng.next_below(2) == 0) {
          h.insert(k);
        } else {
          h.erase(k);
        }
      }
    }
    total_ops.fetch_add(ops, std::memory_order_relaxed);
  });
  const std::uint64_t freed = rec.freed_count() - freed_before;

  if (c != nullptr) {
    sched.release(0);
    victim.join();
  }
  const double secs =
      std::chrono::duration<double>(duration).count();
  return Cell{static_cast<double>(total_ops.load()) / secs / 1e6, freed};
}

}  // namespace

int main(int argc, char** argv) {
  // Stall cells use a bespoke victim/worker harness; --json writes an
  // empty-cell document so sweep scripts can pass the flag uniformly.
  efrb::bench::metrics().init("bench_faults", argc, argv);
  efrb::bench::print_header(
      "E6: throughput with one thread frozen at each protocol step",
      "4 workers, update-heavy, 2^10 keys; the frozen thread holds the\n"
      "protocol open at the named point for the whole cell. Expected shape:\n"
      "Mops/s barely moves (non-blocking: workers help past the frozen op),\n"
      "but freed-during-cell collapses to ~0 whenever the victim is frozen\n"
      "while pinned — the EBR starvation the fault suite asserts on.");

  const StallCase cases[] = {
      {"after-search", HookPoint::kAfterSearch, false, -1},
      {"after-iflag", HookPoint::kAfterIFlag, false, -1},
      {"before-ichild", HookPoint::kBeforeIChild, false, -1},
      {"before-iunflag", HookPoint::kBeforeIUnflag, false, -1},
      {"after-dflag", HookPoint::kAfterDFlag, true, -1},
      {"before-mark", HookPoint::kBeforeMark, true, -1},
      {"before-dchild", HookPoint::kBeforeDChild, true, -1},
      {"before-dunflag", HookPoint::kBeforeDUnflag, true, -1},
      {"insert-retry", HookPoint::kInsertRetry, false,
       static_cast<int>(CasStep::kIFlag)},
      {"delete-retry", HookPoint::kDeleteRetry, true,
       static_cast<int>(CasStep::kDFlag)},
      {"before-backtrack", HookPoint::kBeforeBacktrack, true,
       static_cast<int>(CasStep::kMark)},
  };

  const Cell base = run_cell(nullptr);
  Table table({"frozen-at", "Mops/s", "vs-baseline", "freed-in-cell"});
  table.add_row({"(none)", Table::fmt(base.mops), "100.0%",
                 std::to_string(base.freed)});
  for (const StallCase& c : cases) {
    const Cell cell = run_cell(&c);
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%.1f%%",
                  base.mops > 0 ? 100.0 * cell.mops / base.mops : 0.0);
    table.add_row({c.name, Table::fmt(cell.mops), pct,
                   std::to_string(cell.freed)});
  }
  table.print();
  return efrb::bench::metrics().finish() ? 0 : 1;
}
