// Figure 3 reproduction — "Problems can occur if updates only CAS one child
// pointer." Replays the paper's two interleavings deterministically on the
// naive single-CAS strawman, prints the resulting (broken) trees, then shows
// a randomized divergence count for the naive tree vs. the EFRB tree under
// identical concurrent load. (The unit-test version of this lives in
// tests/naive_anomaly_test.cpp; this binary narrates it as an experiment.)
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "baselines/naive_cas_bst.hpp"
#include "bench_common.hpp"
#include "core/efrb_tree.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"

namespace {

constexpr int A = 1, C = 3, E = 5, F = 6, H = 8;
const char* kLetters = " ABCDEFGH";

void print_keys(const char* label, const std::vector<int>& keys) {
  std::printf("%-34s{", label);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    std::printf("%s%c", i ? ", " : " ", kLetters[keys[i]]);
  }
  std::printf(" }\n");
}

template <typename SetT>
void build_fig3a(SetT& t) {
  for (int k : {A, C, E, H}) t.insert(k);
}

/// Randomized divergence measurement: two threads hammer 16 keys; afterwards
/// membership must equal flip-parity (every successful update flips its
/// key's presence in a linearizable set). Returns the divergent-key count.
///
/// Each update yields between reading its window and performing its CAS —
/// modelling the preemption that on a multi-core host occurs naturally mid-
/// update (this host has one CPU, so without the yield the race window would
/// almost never span a context switch).
int naive_divergence_run(std::uint64_t seed) {
  efrb::NaiveCasBst<int> t;
  std::vector<std::atomic<std::uint64_t>> flips(16);
  efrb::YieldingBarrier start(2);
  auto worker = [&](std::uint64_t salt) {
    efrb::Xoshiro256 rng(seed * 1000 + salt);
    start.arrive_and_wait();
    for (int i = 0; i < 4000; ++i) {
      const int k = static_cast<int>(rng.next_below(16));
      const bool is_insert = (rng.next() & 1) != 0;
      auto ticket = is_insert ? t.prepare_insert(k) : t.prepare_erase(k);
      if (!ticket.applicable) continue;
      std::this_thread::yield();  // preempted between read and CAS
      if (t.commit(ticket)) flips[static_cast<std::size_t>(k)].fetch_add(1);
    }
  };
  std::thread other([&] { worker(7); });
  worker(5);
  other.join();
  int divergent = 0;
  for (int k = 0; k < 16; ++k) {
    if (t.contains(k) != ((flips[static_cast<std::size_t>(k)].load() % 2) == 1)) {
      ++divergent;
    }
  }
  return divergent;
}

/// Same load on the EFRB tree (whose operations are atomic end-to-end; the
/// yield goes between complete operations, the strongest analogue).
int efrb_divergence_run(std::uint64_t seed) {
  efrb::EfrbTreeSet<int> t;
  std::vector<std::atomic<std::uint64_t>> flips(16);
  efrb::YieldingBarrier start(2);
  auto worker = [&](std::uint64_t salt) {
    efrb::Xoshiro256 rng(seed * 1000 + salt);
    start.arrive_and_wait();
    for (int i = 0; i < 4000; ++i) {
      const int k = static_cast<int>(rng.next_below(16));
      const bool is_insert = (rng.next() & 1) != 0;
      std::this_thread::yield();
      const bool ok = is_insert ? t.insert(k) : t.erase(k);
      if (ok) flips[static_cast<std::size_t>(k)].fetch_add(1);
    }
  };
  std::thread other([&] { worker(7); });
  worker(5);
  other.join();
  int divergent = 0;
  for (int k = 0; k < 16; ++k) {
    if (t.contains(k) != ((flips[static_cast<std::size_t>(k)].load() % 2) == 1)) {
      ++divergent;
    }
  }
  return divergent;
}

}  // namespace

int main(int argc, char** argv) {
  // Deterministic replay, no workload cells; --json still accepted so the
  // sweep scripts can pass the flag to every bench binary.
  efrb::bench::metrics().init("fig3_anomalies", argc, argv);
  std::printf("=== Figure 3: why one CAS per update is not enough ===\n");
  std::printf("Initial tree (Fig. 3a): keys { A, C, E, H }\n\n");

  {
    std::printf("(b) concurrent Delete(C) + Delete(E), both CAS steps "
                "succeed:\n");
    efrb::NaiveCasBst<int> t;
    build_fig3a(t);
    auto del_c = t.prepare_erase(C);
    auto del_e = t.prepare_erase(E);
    const bool ok_c = t.commit(del_c);
    const bool ok_e = t.commit(del_e);
    std::printf("    Delete(C) acknowledged: %s\n", ok_c ? "yes" : "no");
    std::printf("    Delete(E) acknowledged: %s\n", ok_e ? "yes" : "no");
    print_keys("    reachable keys afterwards:", t.keys());
    std::printf("    => E was deleted successfully yet is still present: "
                "LOST DELETE\n\n");
  }
  {
    std::printf("(c) concurrent Delete(E) + Insert(F), both CAS steps "
                "succeed:\n");
    efrb::NaiveCasBst<int> t;
    build_fig3a(t);
    auto del_e = t.prepare_erase(E);
    auto ins_f = t.prepare_insert(F);
    const bool ok_e = t.commit(del_e);
    const bool ok_f = t.commit(ins_f);
    std::printf("    Delete(E) acknowledged: %s\n", ok_e ? "yes" : "no");
    std::printf("    Insert(F) acknowledged: %s\n", ok_f ? "yes" : "no");
    print_keys("    reachable keys afterwards:", t.keys());
    std::printf("    => F was inserted successfully yet is unreachable: "
                "LOST INSERT\n\n");
  }

  std::printf("=== Randomized control: divergent keys after 8k racing ops "
              "(10 seeds,\n    updates preempted between window read and "
              "CAS) ===\n");
  int naive_total = 0, efrb_total = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    naive_total += naive_divergence_run(seed);
    efrb_total += efrb_divergence_run(seed);
  }
  std::printf("naive single-CAS BST: %d divergent keys across 10 runs "
              "(lost updates)\n", naive_total);
  std::printf("EFRB tree:            %d divergent keys across 10 runs "
              "(must be 0)\n", efrb_total);
  const bool wrote = efrb::bench::metrics().finish();
  return (efrb_total == 0 && wrote) ? 0 : 1;
}
