// Experiment E1 — dictionary throughput across operation mixes, key ranges
// and thread counts (the §6 evaluation programme: compare the EFRB tree
// against the lock-based trees of §2 and the skiplist of §1).
//
// Output: one table per (mix, key range); rows = thread counts, columns =
// implementations, cells = Mops/s.
#include <chrono>
#include <cstdio>
#include <vector>

#include "baselines/coarse_bst.hpp"
#include "baselines/finelock_bst.hpp"
#include "baselines/locked_map.hpp"
#include "baselines/skiplist.hpp"
#include "bench_common.hpp"
#include "core/chromatic.hpp"
#include "core/efrb_tree.hpp"
#include "obs/heatmap.hpp"
#include "shard/shard_metrics.hpp"
#include "shard/sharded_map.hpp"
#include "util/thread_pool.hpp"
#include "workload/op_mix.hpp"
#include "workload/report.hpp"

namespace {

using Key = std::uint64_t;
using efrb::OpMix;
using efrb::Table;
using efrb::WorkloadConfig;

template <typename Set>
double mops_for(const WorkloadConfig& cfg, const char* name) {
  return efrb::bench::run_cell<Set>(cfg, name).mops();
}

void run_grid(const OpMix& mix, std::uint64_t range,
              const std::vector<std::size_t>& threads) {
  std::printf("-- mix %s, key range %s --\n", efrb::mix_name(mix),
              efrb::bench::human_range(range).c_str());
  Table table({"threads", "efrb-tree", "lockfree-skiplist", "finelock-bst",
               "coarse-lock-bst", "locked-std-map"});
  for (std::size_t t : threads) {
    WorkloadConfig cfg;
    cfg.threads = t;
    cfg.key_range = range;
    cfg.mix = mix;
    cfg.duration = efrb::bench::cell_duration();
    table.add_row(
        {std::to_string(t),
         Table::fmt(mops_for<efrb::EfrbTreeSet<Key>>(cfg, "efrb-tree")),
         Table::fmt(
             mops_for<efrb::LockFreeSkipList<Key>>(cfg, "lockfree-skiplist")),
         Table::fmt(mops_for<efrb::FineLockBst<Key>>(cfg, "finelock-bst")),
         Table::fmt(mops_for<efrb::CoarseLockBst<Key>>(cfg, "coarse-lock-bst")),
         Table::fmt(mops_for<efrb::LockedStdSet<Key>>(cfg, "locked-std-map"))});
  }
  table.print();
  std::printf("\n");
}

// E1b — the handle-path ablation backing docs/API.md: the same tree measured
// through tree-level methods (thread_local lease per op, shared counters)
// and through per-thread handles (attached slot, sharded counters), with
// stats disabled and enabled.
void run_handle_ablation(const std::vector<std::size_t>& threads) {
  using Plain = efrb::EfrbTreeSet<Key>;
  using Stats = efrb::EfrbTreeSet<Key, std::less<Key>, efrb::EpochReclaimer,
                                  efrb::StatsTraits>;
  std::printf("-- handle ablation: balanced mix, key range 2^16 --\n");
  Table table({"threads", "tree-methods", "handles", "stats+tree-methods",
               "stats+handles"});
  for (std::size_t t : threads) {
    WorkloadConfig handle_cfg;
    handle_cfg.threads = t;
    handle_cfg.key_range = std::uint64_t{1} << 16;
    handle_cfg.mix = efrb::kBalanced;
    handle_cfg.duration = efrb::bench::cell_duration();
    WorkloadConfig tree_cfg = handle_cfg;
    tree_cfg.use_handles = false;
    table.add_row({std::to_string(t),
                   Table::fmt(mops_for<Plain>(tree_cfg, "tree-methods")),
                   Table::fmt(mops_for<Plain>(handle_cfg, "handles")),
                   Table::fmt(mops_for<Stats>(tree_cfg, "stats+tree-methods")),
                   Table::fmt(mops_for<Stats>(handle_cfg, "stats+handles"))});
  }
  table.print();
  std::printf("\n");
}

// E1c — the allocation/read-path ablation backing the allocator redesign:
// the same tree across the 2x2 grid {heap, pooled} x {lean find, full
// Search}, uniform read-mostly mix (the cell scripts/check.sh gates on:
// pooled+lean must not regress below heap+full).
void run_alloc_ablation(const std::vector<std::size_t>& threads) {
  using HeapLean = efrb::EfrbTreeSet<Key>;  // kLeanFind defaults on
  using HeapFull = efrb::EfrbTreeSet<Key, std::less<Key>, efrb::EpochReclaimer,
                                     efrb::FullSearchFindTraits>;
  using PoolLean = efrb::EfrbTreeSet<Key, std::less<Key>, efrb::EpochReclaimer,
                                     efrb::PooledTraits>;
  using PoolFull = efrb::EfrbTreeSet<Key, std::less<Key>, efrb::EpochReclaimer,
                                     efrb::PooledFullSearchTraits>;
  std::printf("-- alloc ablation: read-mostly mix, key range 2^16 --\n");
  Table table({"threads", "heap+fullsearch", "heap+lean", "pooled+fullsearch",
               "pooled+lean"});
  for (std::size_t t : threads) {
    WorkloadConfig cfg;
    cfg.threads = t;
    cfg.key_range = std::uint64_t{1} << 16;
    cfg.mix = efrb::kReadMostly;
    cfg.duration = efrb::bench::cell_duration();
    table.add_row(
        {std::to_string(t),
         Table::fmt(mops_for<HeapFull>(cfg, "alloc:heap+fullsearch")),
         Table::fmt(mops_for<HeapLean>(cfg, "alloc:heap+lean")),
         Table::fmt(mops_for<PoolFull>(cfg, "alloc:pooled+fullsearch")),
         Table::fmt(mops_for<PoolLean>(cfg, "alloc:pooled+lean"))});
  }
  table.print();
  std::printf("\n");
}

// E1d — the balance ablation backing the chromatic tree (PR 7). Three cells,
// each efrb-vs-chromatic:
//   balance:sorted-insert — fixed work, one ascending key stream split round-
//     robin across threads. The EFRB tree degenerates into a vine (O(n)
//     descents); the chromatic tree rebalances to O(log n). This is the cell
//     scripts/check.sh gates at >= 5x.
//   balance:zipf — duration cell, Zipf-skewed balanced mix: the hot keys
//     cluster, so depth under the hot path is what the rebalancing buys.
//   balance:uniform — duration cell, uniform balanced mix: the rent. The
//     chromatic tree pays LLX windows + SCX records + cleanup on every
//     update and must stay within 0.9x of EFRB here (the other check.sh
//     gate).
template <typename Set>
double sorted_insert_mops(int n, std::size_t threads, const char* name) {
  Set set;
  const auto t0 = std::chrono::steady_clock::now();
  efrb::run_threads(threads, [&](std::size_t tid) {
    auto h = set.handle();
    for (int k = static_cast<int>(tid); k < n; k += static_cast<int>(threads)) {
      h.insert(k);
    }
  });
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  efrb::WorkloadResult res;
  res.inserts = static_cast<std::uint64_t>(n);
  res.ok_inserts = res.inserts;
  res.seconds = seconds;
  if (efrb::bench::metrics().enabled()) {
    WorkloadConfig cfg;
    cfg.threads = threads;
    cfg.key_range = static_cast<std::uint64_t>(n);
    cfg.mix = OpMix{100, 0};
    cfg.prefill_fraction = 0;
    cfg.seed = efrb::bench::bench_seed(cfg.seed);
    efrb::bench::metrics().add_cell(name, cfg, res);
  }
  return res.mops();
}

void run_balance_grid(const std::vector<std::size_t>& threads) {
  using Efrb = efrb::EfrbTreeSet<Key>;
  using Chromatic = efrb::ChromaticTreeSet<Key>;
  // Fixed sorted-insert work: big enough that the EFRB vine's quadratic
  // descent cost dominates, small enough that the cell stays sub-second.
  constexpr int kSortedKeys = 20'000;

  std::printf("-- balance ablation: sorted insert of %d keys (Mops/s) --\n",
              kSortedKeys);
  Table sorted({"threads", "efrb-tree", "chromatic-tree"});
  for (std::size_t t : threads) {
    sorted.add_row(
        {std::to_string(t),
         Table::fmt(sorted_insert_mops<Efrb>(kSortedKeys, t,
                                             "balance:sorted-insert efrb")),
         Table::fmt(sorted_insert_mops<Chromatic>(
             kSortedKeys, t, "balance:sorted-insert chromatic"))});
  }
  sorted.print();
  std::printf("\n");

  std::printf(
      "-- balance ablation: zipf-skewed vs uniform balanced mix, 2^16 --\n");
  Table mixes({"threads", "efrb zipf", "chromatic zipf", "efrb uniform",
               "chromatic uniform"});
  for (std::size_t t : threads) {
    WorkloadConfig uni;
    uni.threads = t;
    uni.key_range = std::uint64_t{1} << 16;
    uni.mix = efrb::kBalanced;
    uni.duration = efrb::bench::cell_duration();
    WorkloadConfig zipf = uni;
    zipf.zipf = true;
    mixes.add_row(
        {std::to_string(t),
         Table::fmt(mops_for<Efrb>(zipf, "balance:zipf efrb")),
         Table::fmt(mops_for<Chromatic>(zipf, "balance:zipf chromatic")),
         Table::fmt(mops_for<Efrb>(uni, "balance:uniform efrb")),
         Table::fmt(mops_for<Chromatic>(uni, "balance:uniform chromatic"))});
  }
  mixes.print();
  std::printf("\n");

  // Fixed-op-count uniform cells: same Mops/s comparison as balance:uniform,
  // but both trees perform the IDENTICAL op/key stream (equal work), so the
  // chromatic/efrb ratio is stable enough for check.sh to gate on strictly —
  // fixed-duration ratios wobble with whatever the scheduler let each cell
  // get through (the strict-gate flake this replaces).
  constexpr std::uint64_t kUniformOps = 200'000;
  std::printf("-- balance ablation: fixed %llu-op uniform mix, 2^16 --\n",
              static_cast<unsigned long long>(kUniformOps));
  Table ops({"threads", "efrb uniform-ops", "chromatic uniform-ops"});
  for (std::size_t t : threads) {
    ops.add_row(
        {std::to_string(t),
         Table::fmt(efrb::bench::run_fixed_ops_cell<Efrb>(
                        kUniformOps, t, std::uint64_t{1} << 16,
                        "balance:uniform-ops efrb")
                        .mops()),
         Table::fmt(efrb::bench::run_fixed_ops_cell<Chromatic>(
                        kUniformOps, t, std::uint64_t{1} << 16,
                        "balance:uniform-ops chromatic")
                        .mops())});
  }
  ops.print();
  std::printf("\n");
}

// E1e — shard-count ablation over the sharded tree-of-trees front end
// (src/shard/sharded_map.hpp): the uniform fixed-op cell against N-way
// hash-sharded EFRB trees, 16 threads. On a multi-core host the payoff is
// near-linear until routers saturate; on this single-CPU host the cells
// measure the sharding overhead floor (routing + per-shard handle lazy
// attach) plus whatever contention relief oversubscribed threads get from
// splitting the root and the reclaimer domains.
void run_shard_grid() {
  using Inner = efrb::EfrbTreeSet<Key>;
  using Sharded = efrb::shard::ShardedSet<Inner, efrb::shard::HashRouter>;
  constexpr std::uint64_t kOps = 200'000;
  constexpr std::uint64_t kRange = std::uint64_t{1} << 16;
  constexpr std::size_t kThreads = 16;
  const std::uint64_t seed = efrb::bench::bench_seed(42);

  auto record = [&](const char* name, const efrb::WorkloadResult& res) {
    if (efrb::bench::metrics().enabled()) {
      WorkloadConfig cfg;
      cfg.threads = kThreads;
      cfg.key_range = kRange;
      cfg.mix = efrb::kBalanced;
      cfg.seed = seed;
      efrb::bench::metrics().add_cell(name, cfg, res);
    }
    return res.mops();
  };

  std::printf("-- shard ablation: fixed %llu-op uniform mix, %zu threads --\n",
              static_cast<unsigned long long>(kOps), kThreads);
  Table table({"shards", "Mops/s"});
  {
    Inner single;
    efrb::prefill(single, kRange, 0.5, seed);
    const auto res =
        efrb::bench::run_fixed_ops(single, kOps, kThreads, kRange, seed);
    table.add_row({"1 (unsharded)", Table::fmt(record("shard:single", res))});
  }
  for (const std::size_t s : {2u, 4u, 8u, 16u}) {
    Sharded sharded{efrb::shard::HashRouter(s)};
    efrb::prefill(sharded, kRange, 0.5, seed);
    const auto res =
        efrb::bench::run_fixed_ops(sharded, kOps, kThreads, kRange, seed);
    const std::string name = "shard:uniform s=" + std::to_string(s);
    table.add_row({std::to_string(s), Table::fmt(record(name.c_str(), res))});
  }
  table.print();
  std::printf("\n");

  // The PR 5 loop closed: a heatmap-instrumented sharded run scored through
  // score_shard_map — windowed key-space load attributed to shards by the
  // router — exported as the metrics-v2 `sharding` cell and the Prometheus
  // efrb_shard_* series (shard/shard_metrics.hpp).
  using HeatInner = efrb::EfrbTreeSet<Key, std::less<Key>, efrb::EpochReclaimer,
                                      efrb::obs::HeatmapTraits>;
  using HeatSharded =
      efrb::shard::ShardedSet<HeatInner, efrb::shard::HashRouter>;
  efrb::obs::KeyHeatmap heatmap(kRange);
  efrb::obs::HeatmapTraits::install(&heatmap);
  HeatSharded sharded{efrb::shard::HashRouter(8)};
  efrb::prefill(sharded, kRange, 0.5, seed);
  const std::vector<efrb::obs::HeatBucket> before = heatmap.snapshot();
  const auto res =
      efrb::bench::run_fixed_ops(sharded, kOps, kThreads, kRange, seed);
  efrb::obs::HeatmapTraits::reset();
  const efrb::shard::ShardBalanceReport rep = efrb::shard::score_shard_map(
      sharded.router(), heatmap, before, heatmap.snapshot());
  std::printf("shard balance (hash x8, windowed heatmap): imbalance %.2fx, "
              "hottest shard %zu (%.0f%% of attempts)%s\n\n",
              rep.imbalance(), rep.hottest(), 100.0 * rep.share(rep.hottest()),
              rep.balanced() ? "" : "  ** imbalanced **");
  if (efrb::bench::metrics().enabled()) {
    WorkloadConfig cfg;
    cfg.threads = kThreads;
    cfg.key_range = kRange;
    cfg.mix = efrb::kBalanced;
    cfg.seed = seed;
    const efrb::TreeStats stats = sharded.stats_snapshot();
    const efrb::ReclaimGauges gauges = sharded.gauges();
    std::vector<efrb::ReclaimGauges> per_shard;
    for (std::size_t i = 0; i < sharded.shard_count(); ++i) {
      per_shard.push_back(sharded.shard_gauges(i));
    }
    efrb::bench::metrics().add_cell_sharded("shard:balance-report", cfg, res,
                                            &stats, &gauges,
                                            efrb::shard::HashRouter::kName,
                                            rep, per_shard);
  }
}

}  // namespace

int main(int argc, char** argv) {
  efrb::bench::metrics().init("bench_throughput", argc, argv);
  efrb::bench::print_header(
      "E1: throughput vs threads (Mops/s)",
      "Paper expectation (§1/§3): the non-blocking tree sustains throughput\n"
      "as threads grow, lookups never block, and coarse locks collapse under\n"
      "update load. NOTE: single-CPU host — thread counts measure behaviour\n"
      "under oversubscription (lock convoys vs helping), not parallelism.");

  const std::vector<std::size_t> threads = {1, 2, 4, 8};
  for (const OpMix mix :
       {efrb::kReadOnly, efrb::kBalanced, efrb::kUpdateHeavy}) {
    for (const std::uint64_t range : {std::uint64_t{1} << 10,
                                      std::uint64_t{1} << 20}) {
      run_grid(mix, range, threads);
    }
  }
  run_handle_ablation(threads);
  run_alloc_ablation(threads);
  run_balance_grid(threads);
  run_shard_grid();
  return efrb::bench::metrics().finish() ? 0 : 1;
}
