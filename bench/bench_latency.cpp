// Experiment E6 — single-operation latency (google-benchmark): Find, Insert
// and Delete cost on prefilled trees of growing size, for the EFRB tree and
// the sequential-cost reference points (std::set and the coarse-locked BST).
// The expected shape is logarithmic growth in tree size for all of them — the
// §6 observation that randomly built BSTs have expected logarithmic depth —
// with the EFRB constant factor covering atomics + epoch pin.
#include <benchmark/benchmark.h>

#include <cstring>
#include <set>
#include <vector>

#include "baselines/coarse_bst.hpp"
#include "bench_common.hpp"
#include "core/efrb_tree.hpp"
#include "util/rng.hpp"
#include "workload/op_mix.hpp"

namespace {

using Key = std::uint64_t;

template <typename Set>
void fill_random(Set& s, std::int64_t n, std::uint64_t seed) {
  efrb::Xoshiro256 rng(seed);
  std::int64_t inserted = 0;
  while (inserted < n) {
    if (s.insert(rng.next() >> 1)) ++inserted;
  }
}

void BM_EfrbFind(benchmark::State& state) {
  efrb::EfrbTreeSet<Key> t;
  fill_random(t, state.range(0), 42);
  auto h = t.handle();  // measured loops use the per-thread handle path
  efrb::Xoshiro256 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.contains(rng.next() >> 1));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EfrbFind)->Range(1 << 8, 1 << 18)->Complexity(benchmark::oLogN);

void BM_EfrbInsertErase(benchmark::State& state) {
  efrb::EfrbTreeSet<Key> t;
  fill_random(t, state.range(0), 42);
  auto h = t.handle();
  efrb::Xoshiro256 rng(7);
  for (auto _ : state) {
    const Key k = rng.next() >> 1;
    benchmark::DoNotOptimize(h.insert(k));
    benchmark::DoNotOptimize(h.erase(k));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EfrbInsertErase)
    ->Range(1 << 8, 1 << 18)
    ->Complexity(benchmark::oLogN);

void BM_StdSetFind(benchmark::State& state) {
  struct Wrapper {
    std::set<Key> s;
    bool insert(Key k) { return s.insert(k).second; }
  } t;
  fill_random(t, state.range(0), 42);
  efrb::Xoshiro256 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.s.count(rng.next() >> 1));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StdSetFind)->Range(1 << 8, 1 << 18)->Complexity(benchmark::oLogN);

void BM_CoarseLockFind(benchmark::State& state) {
  efrb::CoarseLockBst<Key> t;
  fill_random(t, state.range(0), 42);
  efrb::Xoshiro256 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.contains(rng.next() >> 1));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CoarseLockFind)
    ->Range(1 << 8, 1 << 18)
    ->Complexity(benchmark::oLogN);

void BM_EfrbMinKey(benchmark::State& state) {
  efrb::EfrbTreeSet<Key> t;
  fill_random(t, state.range(0), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.min_key());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EfrbMinKey)->Range(1 << 8, 1 << 16)->Complexity(benchmark::oLogN);

}  // namespace

int main(int argc, char** argv) {
  efrb::bench::metrics().init("bench_latency", argc, argv);
  // Strip `--json <path>` before handing argv to google-benchmark, whose
  // flag parser rejects arguments it does not recognize.
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // The loops above measure single-thread cost; when --json is active, also
  // run instrumented concurrent cells so the document carries full latency
  // histograms (per-op-type plus the retried-ops distribution).
  if (efrb::bench::metrics().enabled()) {
    struct MixCell {
      const char* name;
      efrb::OpMix mix;
    };
    const MixCell cells[] = {{"efrb-tree/balanced", efrb::kBalanced},
                             {"efrb-tree/update-heavy", efrb::kUpdateHeavy}};
    for (const MixCell& c : cells) {
      efrb::EfrbTreeSet<Key> t;
      efrb::WorkloadConfig cfg;
      cfg.threads = 4;
      cfg.key_range = 1 << 16;
      cfg.mix = c.mix;
      cfg.duration = efrb::bench::cell_duration();
      efrb::prefill(t, cfg.key_range, cfg.prefill_fraction, cfg.seed);
      efrb::LatencySamples lat;
      const auto r = efrb::run_workload(t, cfg, &lat);
      const auto g = t.reclaimer().gauges();
      efrb::bench::metrics().add_cell(c.name, cfg, r, nullptr, &g, &lat);
    }
  }
  return efrb::bench::metrics().finish() ? 0 : 1;
}
