// Experiment E6 — single-operation latency (google-benchmark): Find, Insert
// and Delete cost on prefilled trees of growing size, for the EFRB tree and
// the sequential-cost reference points (std::set and the coarse-locked BST).
// The expected shape is logarithmic growth in tree size for all of them — the
// §6 observation that randomly built BSTs have expected logarithmic depth —
// with the EFRB constant factor covering atomics + epoch pin.
#include <benchmark/benchmark.h>

#include <set>

#include "baselines/coarse_bst.hpp"
#include "core/efrb_tree.hpp"
#include "util/rng.hpp"

namespace {

using Key = std::uint64_t;

template <typename Set>
void fill_random(Set& s, std::int64_t n, std::uint64_t seed) {
  efrb::Xoshiro256 rng(seed);
  std::int64_t inserted = 0;
  while (inserted < n) {
    if (s.insert(rng.next() >> 1)) ++inserted;
  }
}

void BM_EfrbFind(benchmark::State& state) {
  efrb::EfrbTreeSet<Key> t;
  fill_random(t, state.range(0), 42);
  auto h = t.handle();  // measured loops use the per-thread handle path
  efrb::Xoshiro256 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.contains(rng.next() >> 1));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EfrbFind)->Range(1 << 8, 1 << 18)->Complexity(benchmark::oLogN);

void BM_EfrbInsertErase(benchmark::State& state) {
  efrb::EfrbTreeSet<Key> t;
  fill_random(t, state.range(0), 42);
  auto h = t.handle();
  efrb::Xoshiro256 rng(7);
  for (auto _ : state) {
    const Key k = rng.next() >> 1;
    benchmark::DoNotOptimize(h.insert(k));
    benchmark::DoNotOptimize(h.erase(k));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EfrbInsertErase)
    ->Range(1 << 8, 1 << 18)
    ->Complexity(benchmark::oLogN);

void BM_StdSetFind(benchmark::State& state) {
  struct Wrapper {
    std::set<Key> s;
    bool insert(Key k) { return s.insert(k).second; }
  } t;
  fill_random(t, state.range(0), 42);
  efrb::Xoshiro256 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.s.count(rng.next() >> 1));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StdSetFind)->Range(1 << 8, 1 << 18)->Complexity(benchmark::oLogN);

void BM_CoarseLockFind(benchmark::State& state) {
  efrb::CoarseLockBst<Key> t;
  fill_random(t, state.range(0), 42);
  efrb::Xoshiro256 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.contains(rng.next() >> 1));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CoarseLockFind)
    ->Range(1 << 8, 1 << 18)
    ->Complexity(benchmark::oLogN);

void BM_EfrbMinKey(benchmark::State& state) {
  efrb::EfrbTreeSet<Key> t;
  fill_random(t, state.range(0), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.min_key());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EfrbMinKey)->Range(1 << 8, 1 << 16)->Complexity(benchmark::oLogN);

}  // namespace

BENCHMARK_MAIN();
