// Experiment E5 — the cost of coordination: helping, retries and backtracks
// as contention rises. §3 argues the conservative helping strategy keeps this
// traffic proportional to actual conflicts; sweeping the key range from tiny
// (every op collides) to large (almost no collisions) makes that visible.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/efrb_tree.hpp"
#include "workload/report.hpp"

namespace {

using Key = std::uint64_t;
using efrb::Table;
using StatsTree = efrb::EfrbTreeSet<Key, std::less<Key>, efrb::EpochReclaimer,
                                    efrb::StatsTraits>;

}  // namespace

int main(int argc, char** argv) {
  efrb::bench::metrics().init("bench_helping", argc, argv);
  efrb::bench::print_header(
      "E5: helping & retry rates vs contention (4 threads, 50i/50d)",
      "Expected shape: helps/backtracks per operation fall steeply as the\n"
      "key range grows — coordination cost tracks real conflicts only\n"
      "(conservative helping, §3). 'dflag-fail' retries mirror helps.");

  Table table({"key-range", "Mops/s", "helps/1k-ops", "backtracks/1k-ops",
               "ins-retries/1k-ops", "del-retries/1k-ops"});
  efrb::TreeStats hottest;  // per-step breakdown of the smallest key range
  for (const std::uint64_t range : {4ULL, 16ULL, 64ULL, 1024ULL, 65536ULL}) {
    StatsTree t;
    efrb::WorkloadConfig cfg;
    cfg.threads = 4;
    cfg.key_range = range;
    cfg.mix = efrb::kUpdateHeavy;
    cfg.duration = efrb::bench::cell_duration();
    efrb::prefill(t, cfg.key_range, 0.5, cfg.seed);
    const auto r = efrb::run_workload(t, cfg);
    const auto s = t.stats();
    const auto g = t.reclaimer().gauges();
    efrb::bench::metrics().add_cell(
        "efrb-tree/range-" + std::to_string(range), cfg, r, &s, &g);
    if (range == 4) hottest = s;
    const double kops = static_cast<double>(r.total_ops()) / 1000.0;
    table.add_row(
        {efrb::bench::human_range(range), Table::fmt(r.mops()),
         Table::fmt(static_cast<double>(s.helps) / kops, 2),
         Table::fmt(static_cast<double>(s.backtracks) / kops, 2),
         Table::fmt(static_cast<double>(s.insert_retries) / kops, 2),
         Table::fmt(static_cast<double>(s.delete_retries) / kops, 2)});
  }
  table.print();

  std::printf("\n-- protocol-step breakdown at key-range 4 (Fig. 4 steps) --\n");
  efrb::protocol_step_table(hottest).print();
  return efrb::bench::metrics().finish() ? 0 : 1;
}
