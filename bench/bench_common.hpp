// Shared plumbing for the experiment binaries (E1-E5): run a workload cell
// against a named implementation and format rows. Durations are deliberately
// short by default so the full `for b in build/bench/*` sweep finishes in
// minutes; set EFRB_BENCH_MS to lengthen each cell for lower variance.
//
// Every bench binary also accepts `--json <path>` (parsed by init()): when
// given, cells measured through run_cell()/add_cell() are accumulated into a
// schema-versioned metrics document (obs/metrics.hpp) written by finish() —
// the machinery behind the repo-root BENCH_*.json trajectory files (see
// scripts/bench_json.sh). `--prom <path>` is the sibling flag for the
// Prometheus text exposition (obs/prom.hpp): the same cells, rendered as
// labeled scrape samples. Both flags may be given together.
//
// EFRB_BENCH_SEED pins every cell's workload seed (run_cell applies it over
// the config's default), so two bench invocations sample identical op/key
// streams — the reproducibility knob scripts/bench_json.sh sets when
// regenerating the trajectory files.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "obs/metrics.hpp"
#include "obs/prom.hpp"
#include "shard/shard_metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/report.hpp"
#include "workload/runner.hpp"

namespace efrb::bench {

inline std::chrono::milliseconds cell_duration() {
  if (const char* ms = std::getenv("EFRB_BENCH_MS")) {
    return std::chrono::milliseconds(std::max(10L, std::atol(ms)));
  }
  return std::chrono::milliseconds(120);
}

/// EFRB_BENCH_SEED override, else `fallback` (the config's own seed).
inline std::uint64_t bench_seed(std::uint64_t fallback) {
  if (const char* s = std::getenv("EFRB_BENCH_SEED")) {
    return std::strtoull(s, nullptr, 10);
  }
  return fallback;
}

/// Process-wide metrics accumulator behind the shared --json / --prom flags.
/// Inactive (all no-ops) until init() sees a flag; thereafter add_cell()
/// appends to the active exports and finish() writes the file(s).
/// Single-threaded use from bench main() flows only.
class MetricsSink {
 public:
  /// Parse `--json <path>` and `--prom <path>` out of argv (these are the
  /// only arguments recognized here; everything else is left to the caller).
  void init(const char* tool, int argc, char** argv) {
    tool_ = tool;
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) path_ = argv[i + 1];
      if (std::strcmp(argv[i], "--prom") == 0) prom_path_ = argv[i + 1];
    }
    if (!path_.empty()) doc_.emplace(tool_);
    if (!prom_path_.empty()) prom_.emplace();
  }

  bool enabled() const noexcept { return doc_.has_value() || prom_.has_value(); }

  void add_cell(std::string_view name, const WorkloadConfig& cfg,
                const WorkloadResult& res, const TreeStats* stats = nullptr,
                const ReclaimGauges* gauges = nullptr,
                const LatencySamples* latency = nullptr) {
    if (doc_) doc_->add_cell(name, cfg, res, stats, gauges, latency);
    if (prom_) {
      // Cell identity as labels: the Prometheus analogue of the JSON cell's
      // name+config pair, at the granularity a scraper can aggregate over.
      obs::PromWriter::Labels labels{
          {"tool", tool_},
          {"cell", std::string(name)},
          {"threads", std::to_string(cfg.threads)},
          {"mix", std::string(mix_name(cfg.mix))},
          {"dist", cfg.zipf ? "zipf" : "uniform"},
      };
      obs::append_result_prom(*prom_, labels, res);
      if (stats != nullptr) obs::append_tree_stats_prom(*prom_, labels, *stats);
      if (gauges != nullptr) obs::append_gauges_prom(*prom_, labels, *gauges);
      if (latency != nullptr) {
        const std::pair<const char*, const obs::LatencyHistogram*> hists[] = {
            {"find", &latency->find},
            {"insert", &latency->insert},
            {"erase", &latency->erase},
            {"retried", &latency->retried},
        };
        for (const auto& [op, h] : hists) {
          obs::PromWriter::Labels l = labels;
          l.emplace_back("op", op);
          obs::append_histogram_prom(*prom_, l, *h);
        }
      }
    }
  }

  /// Write the active export(s). Call once, at the end of main(); returns
  /// false on any I/O failure (also reported on stderr).
  bool finish() {
    bool ok = true;
    if (doc_) {
      const bool wrote = doc_->write(path_);
      std::fprintf(wrote ? stdout : stderr, "metrics: %s %s\n",
                   wrote ? "wrote" : "FAILED to write", path_.c_str());
      doc_.reset();
      ok = ok && wrote;
    }
    if (prom_) {
      const bool wrote = prom_->write(prom_path_);
      std::fprintf(wrote ? stdout : stderr, "metrics: %s %s\n",
                   wrote ? "wrote" : "FAILED to write", prom_path_.c_str());
      prom_.reset();
      ok = ok && wrote;
    }
    return ok;
  }

  /// A cell with a `sharding` section: the common config/result/stats/gauges
  /// payload plus the shard balance report and one gauges block per shard
  /// (metrics v2), and the efrb_shard_* series (Prometheus). This is the
  /// export path of the sharded front end — see shard/shard_metrics.hpp.
  void add_cell_sharded(std::string_view name, const WorkloadConfig& cfg,
                        const WorkloadResult& res, const TreeStats* stats,
                        const ReclaimGauges* gauges, const char* router_name,
                        const shard::ShardBalanceReport& rep,
                        const std::vector<ReclaimGauges>& per_shard) {
    if (doc_) {
      obs::JsonWriter& w = doc_->begin_cell(name);
      w.key("config");
      obs::append_config(w, cfg);
      w.key("result");
      obs::append_result(w, res);
      if (stats != nullptr) {
        w.key("tree_stats");
        obs::append_tree_stats(w, *stats);
      }
      if (gauges != nullptr) {
        w.key("gauges");
        obs::append_gauges(w, *gauges);
      }
      w.key("sharding");
      shard::append_sharding(w, router_name, rep, per_shard);
      doc_->end_cell();
    }
    if (prom_) {
      obs::PromWriter::Labels labels{
          {"tool", tool_},
          {"cell", std::string(name)},
          {"threads", std::to_string(cfg.threads)},
          {"mix", std::string(mix_name(cfg.mix))},
          {"dist", cfg.zipf ? "zipf" : "uniform"},
          {"router", router_name},
      };
      obs::append_result_prom(*prom_, labels, res);
      if (stats != nullptr) obs::append_tree_stats_prom(*prom_, labels, *stats);
      if (gauges != nullptr) obs::append_gauges_prom(*prom_, labels, *gauges);
      shard::append_sharding_prom(*prom_, labels, rep, per_shard);
    }
  }

 private:
  std::string tool_;
  std::string path_;
  std::string prom_path_;
  std::optional<obs::MetricsDocument> doc_;
  std::optional<obs::PromWriter> prom_;
};

inline MetricsSink& metrics() {
  static MetricsSink sink;
  return sink;
}

/// Measures one (implementation, config) cell: fresh instance, prefill, run.
/// When `name` is non-null and --json is active, the cell is recorded into
/// the metrics document, with protocol stats and reclaimer gauges attached
/// when the structure exposes them.
template <typename Set>
WorkloadResult run_cell(const WorkloadConfig& base_cfg,
                        const char* name = nullptr) {
  WorkloadConfig cfg = base_cfg;
  cfg.seed = bench_seed(cfg.seed);
  Set set;
  prefill(set, cfg.key_range, cfg.prefill_fraction, cfg.seed);
  const WorkloadResult res = run_workload(set, cfg);
  if (name != nullptr && metrics().enabled()) {
    TreeStats stats;
    const TreeStats* stats_p = nullptr;
    if constexpr (requires { set.stats_snapshot(); }) {
      stats = set.stats_snapshot();
      stats_p = &stats;
    }
    ReclaimGauges gauges;
    const ReclaimGauges* gauges_p = nullptr;
    if constexpr (requires { set.reclaimer().gauges(); }) {
      gauges = set.reclaimer().gauges();
      gauges_p = &gauges;
    }
    metrics().add_cell(name, cfg, res, stats_p, gauges_p);
  }
  return res;
}

/// Fixed-op-count mixed run on an existing (already prefilled) structure:
/// every invocation with the same (ops, threads, range, seed) performs the
/// IDENTICAL operation/key stream, so ops/sec ratios between two structures
/// compare equal work — the stable footing the check.sh A/B gates need,
/// where fixed-duration cells compare whatever the scheduler let each run
/// get through. Mix: 50% contains / 25% insert / 25% erase, uniform keys.
template <typename Set>
WorkloadResult run_fixed_ops(Set& set, std::uint64_t total_ops,
                             std::size_t threads, std::uint64_t range,
                             std::uint64_t seed) {
  const std::uint64_t per_thread = total_ops / threads;
  std::vector<WorkloadResult> per(threads);
  const auto t0 = std::chrono::steady_clock::now();
  run_threads(threads, [&](std::size_t tid) {
    Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + tid);
    auto h = make_handle(set);
    WorkloadResult& r = per[tid];
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      const std::uint64_t k = rng.next_below(range);
      switch (rng.next_below(4)) {
        case 0:
          ++r.inserts;
          if (h.insert(static_cast<typename Set::key_type>(k))) ++r.ok_inserts;
          break;
        case 1:
          ++r.erases;
          if (h.erase(static_cast<typename Set::key_type>(k))) ++r.ok_erases;
          break;
        default:
          ++r.finds;
          if (h.contains(static_cast<typename Set::key_type>(k))) ++r.ok_finds;
      }
    }
  });
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  WorkloadResult total;
  for (const WorkloadResult& r : per) {
    total.finds += r.finds;
    total.inserts += r.inserts;
    total.erases += r.erases;
    total.ok_finds += r.ok_finds;
    total.ok_inserts += r.ok_inserts;
    total.ok_erases += r.ok_erases;
  }
  total.seconds = seconds;
  return total;
}

/// run_fixed_ops over a fresh prefilled instance, recorded as a named cell
/// (the fixed-op sibling of run_cell). EFRB_BENCH_SEED pins the stream.
template <typename Set>
WorkloadResult run_fixed_ops_cell(std::uint64_t total_ops, std::size_t threads,
                                  std::uint64_t range, const char* name) {
  const std::uint64_t seed = bench_seed(42);
  Set set;
  prefill(set, range, 0.5, seed);
  const WorkloadResult res =
      run_fixed_ops(set, total_ops, threads, range, seed);
  if (name != nullptr && metrics().enabled()) {
    WorkloadConfig cfg;
    cfg.threads = threads;
    cfg.key_range = range;
    cfg.mix = kBalanced;
    cfg.seed = seed;
    TreeStats stats;
    const TreeStats* stats_p = nullptr;
    if constexpr (requires { set.stats_snapshot(); }) {
      stats = set.stats_snapshot();
      stats_p = &stats;
    }
    metrics().add_cell(name, cfg, res, stats_p);
  }
  return res;
}

inline std::string human_range(std::uint64_t range) {
  char buf[32];
  if (range >= (1u << 20) && range % (1u << 20) == 0) {
    std::snprintf(buf, sizeof(buf), "2^%d", 20 + __builtin_ctzll(range >> 20));
  } else if (range >= 1024 && range % 1024 == 0 &&
             (range & (range - 1)) == 0) {
    std::snprintf(buf, sizeof(buf), "2^%d", __builtin_ctzll(range));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(range));
  }
  return buf;
}

inline void print_header(const char* experiment, const char* description) {
  std::printf("\n=== %s ===\n%s\n", experiment, description);
  std::printf("cell duration: %lld ms%s\n\n",
              static_cast<long long>(cell_duration().count()),
              std::getenv("EFRB_BENCH_MS") ? " (EFRB_BENCH_MS)" : "");
}

}  // namespace efrb::bench
