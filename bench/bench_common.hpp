// Shared plumbing for the experiment binaries (E1-E5): run a workload cell
// against a named implementation and format rows. Durations are deliberately
// short by default so the full `for b in build/bench/*` sweep finishes in
// minutes; set EFRB_BENCH_MS to lengthen each cell for lower variance.
//
// Every bench binary also accepts `--json <path>` (parsed by init()): when
// given, cells measured through run_cell()/add_cell() are accumulated into a
// schema-versioned metrics document (obs/metrics.hpp) written by finish() —
// the machinery behind the repo-root BENCH_*.json trajectory files (see
// scripts/bench_json.sh).
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "obs/metrics.hpp"
#include "workload/report.hpp"
#include "workload/runner.hpp"

namespace efrb::bench {

inline std::chrono::milliseconds cell_duration() {
  if (const char* ms = std::getenv("EFRB_BENCH_MS")) {
    return std::chrono::milliseconds(std::max(10L, std::atol(ms)));
  }
  return std::chrono::milliseconds(120);
}

/// Process-wide metrics accumulator behind the shared --json flag. Inactive
/// (all no-ops) until init() sees --json <path>; thereafter add_cell()
/// appends to the document and finish() writes the file. Single-threaded use
/// from bench main() flows only.
class MetricsSink {
 public:
  /// Parse `--json <path>` out of argv (the flag and its value are the only
  /// arguments recognized here; everything else is left to the caller).
  void init(const char* tool, int argc, char** argv) {
    tool_ = tool;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        path_ = argv[i + 1];
        break;
      }
    }
    if (!path_.empty()) doc_.emplace(tool_);
  }

  bool enabled() const noexcept { return doc_.has_value(); }

  void add_cell(std::string_view name, const WorkloadConfig& cfg,
                const WorkloadResult& res, const TreeStats* stats = nullptr,
                const ReclaimGauges* gauges = nullptr,
                const LatencySamples* latency = nullptr) {
    if (doc_) doc_->add_cell(name, cfg, res, stats, gauges, latency);
  }

  /// Write the document (if --json was given). Call once, at the end of
  /// main(); returns false on I/O failure (also reported on stderr).
  bool finish() {
    if (!doc_) return true;
    const bool ok = doc_->write(path_);
    if (ok) {
      std::printf("metrics: wrote %s\n", path_.c_str());
    } else {
      std::fprintf(stderr, "metrics: FAILED to write %s\n", path_.c_str());
    }
    doc_.reset();
    return ok;
  }

 private:
  std::string tool_;
  std::string path_;
  std::optional<obs::MetricsDocument> doc_;
};

inline MetricsSink& metrics() {
  static MetricsSink sink;
  return sink;
}

/// Measures one (implementation, config) cell: fresh instance, prefill, run.
/// When `name` is non-null and --json is active, the cell is recorded into
/// the metrics document, with protocol stats and reclaimer gauges attached
/// when the structure exposes them.
template <typename Set>
WorkloadResult run_cell(const WorkloadConfig& cfg,
                        const char* name = nullptr) {
  Set set;
  prefill(set, cfg.key_range, cfg.prefill_fraction, cfg.seed);
  const WorkloadResult res = run_workload(set, cfg);
  if (name != nullptr && metrics().enabled()) {
    TreeStats stats;
    const TreeStats* stats_p = nullptr;
    if constexpr (requires { set.stats_snapshot(); }) {
      stats = set.stats_snapshot();
      stats_p = &stats;
    }
    ReclaimGauges gauges;
    const ReclaimGauges* gauges_p = nullptr;
    if constexpr (requires { set.reclaimer().gauges(); }) {
      gauges = set.reclaimer().gauges();
      gauges_p = &gauges;
    }
    metrics().add_cell(name, cfg, res, stats_p, gauges_p);
  }
  return res;
}

inline std::string human_range(std::uint64_t range) {
  char buf[32];
  if (range >= (1u << 20) && range % (1u << 20) == 0) {
    std::snprintf(buf, sizeof(buf), "2^%d", 20 + __builtin_ctzll(range >> 20));
  } else if (range >= 1024 && range % 1024 == 0 &&
             (range & (range - 1)) == 0) {
    std::snprintf(buf, sizeof(buf), "2^%d", __builtin_ctzll(range));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(range));
  }
  return buf;
}

inline void print_header(const char* experiment, const char* description) {
  std::printf("\n=== %s ===\n%s\n", experiment, description);
  std::printf("cell duration: %lld ms%s\n\n",
              static_cast<long long>(cell_duration().count()),
              std::getenv("EFRB_BENCH_MS") ? " (EFRB_BENCH_MS)" : "");
}

}  // namespace efrb::bench
