// Shared plumbing for the experiment binaries (E1-E5): run a workload cell
// against a named implementation and format rows. Durations are deliberately
// short by default so the full `for b in build/bench/*` sweep finishes in
// minutes; set EFRB_BENCH_MS to lengthen each cell for lower variance.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "workload/report.hpp"
#include "workload/runner.hpp"

namespace efrb::bench {

inline std::chrono::milliseconds cell_duration() {
  if (const char* ms = std::getenv("EFRB_BENCH_MS")) {
    return std::chrono::milliseconds(std::max(10L, std::atol(ms)));
  }
  return std::chrono::milliseconds(120);
}

/// Measures one (implementation, config) cell: fresh instance, prefill, run.
template <typename Set>
WorkloadResult run_cell(const WorkloadConfig& cfg) {
  Set set;
  prefill(set, cfg.key_range, cfg.prefill_fraction, cfg.seed);
  return run_workload(set, cfg);
}

inline std::string human_range(std::uint64_t range) {
  char buf[32];
  if (range >= (1u << 20) && range % (1u << 20) == 0) {
    std::snprintf(buf, sizeof(buf), "2^%d", 20 + __builtin_ctzll(range >> 20));
  } else if (range >= 1024 && range % 1024 == 0 &&
             (range & (range - 1)) == 0) {
    std::snprintf(buf, sizeof(buf), "2^%d", __builtin_ctzll(range));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(range));
  }
  return buf;
}

inline void print_header(const char* experiment, const char* description) {
  std::printf("\n=== %s ===\n%s\n", experiment, description);
  std::printf("cell duration: %lld ms%s\n\n",
              static_cast<long long>(cell_duration().count()),
              std::getenv("EFRB_BENCH_MS") ? " (EFRB_BENCH_MS)" : "");
}

}  // namespace efrb::bench
