// Experiment E4 — reclamation-policy ablation. The paper's algorithm assumes
// GC; this bench quantifies what the C++ substitutes cost:
//   * leaky      — the paper's model (never free): zero reclamation overhead,
//                  unbounded memory; the upper bound on throughput.
//   * epoch      — the default: pin/unpin per op + batched sweeps.
//   * epoch-small— retire_batch=8: more frequent epoch scans (worst case).
//   * hazard     — grace-round reclamation (coarse per-thread hazard seq).
// Also reports objects freed, to show the reclaiming policies actually do.
#include <cstdio>

#include "bench_common.hpp"
#include "core/efrb_tree.hpp"
#include "reclaim/hazard.hpp"
#include "workload/report.hpp"

namespace {

using Key = std::uint64_t;
using efrb::Table;
using efrb::WorkloadConfig;

WorkloadConfig config() {
  WorkloadConfig cfg;
  cfg.threads = 4;
  cfg.key_range = 1 << 16;
  cfg.mix = efrb::kUpdateHeavy;
  cfg.duration = efrb::bench::cell_duration();
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  efrb::bench::metrics().init("bench_reclaim", argc, argv);
  efrb::bench::print_header(
      "E4: reclamation ablation (4 threads, 50i/50d, range 2^16)",
      "Expected shape: leaky is the ceiling; epoch costs a modest constant\n"
      "factor (one announcement store + fence per op, amortized sweeps);\n"
      "shrinking the retire batch raises sweep frequency and cost.");

  Table table({"policy", "Mops/s", "objects freed"});

  {
    efrb::EfrbTreeSet<Key, std::less<Key>, efrb::LeakyReclaimer> t;
    efrb::prefill(t, config().key_range, 0.5, config().seed);
    const auto r = efrb::run_workload(t, config());
    const auto g = t.reclaimer().gauges();
    efrb::bench::metrics().add_cell("leaky", config(), r, nullptr, &g);
    table.add_row({"leaky (paper model)", Table::fmt(r.mops()), "0"});
  }
  {
    efrb::EfrbTreeSet<Key> t;  // default EpochReclaimer(64, 64)
    efrb::prefill(t, config().key_range, 0.5, config().seed);
    const auto r = efrb::run_workload(t, config());
    const auto g = t.reclaimer().gauges();
    efrb::bench::metrics().add_cell("epoch-batch-64", config(), r, nullptr, &g);
    table.add_row({"epoch (batch 64)", Table::fmt(r.mops()),
                   std::to_string(t.reclaimer().freed_count())});
  }
  {
    efrb::EfrbTreeSet<Key> t(std::less<Key>{}, efrb::EpochReclaimer(64, 8));
    efrb::prefill(t, config().key_range, 0.5, config().seed);
    const auto r = efrb::run_workload(t, config());
    const auto g = t.reclaimer().gauges();
    efrb::bench::metrics().add_cell("epoch-batch-8", config(), r, nullptr, &g);
    table.add_row({"epoch (batch 8)", Table::fmt(r.mops()),
                   std::to_string(t.reclaimer().freed_count())});
  }
  {
    efrb::EfrbTreeSet<Key> t(std::less<Key>{}, efrb::EpochReclaimer(64, 512));
    efrb::prefill(t, config().key_range, 0.5, config().seed);
    const auto r = efrb::run_workload(t, config());
    const auto g = t.reclaimer().gauges();
    efrb::bench::metrics().add_cell("epoch-batch-512", config(), r, nullptr,
                                    &g);
    table.add_row({"epoch (batch 512)", Table::fmt(r.mops()),
                   std::to_string(t.reclaimer().freed_count())});
  }
  {
    efrb::EfrbTreeSet<Key, std::less<Key>, efrb::HazardReclaimer> t;
    efrb::prefill(t, config().key_range, 0.5, config().seed);
    const auto r = efrb::run_workload(t, config());
    const auto g = t.reclaimer().gauges();
    efrb::bench::metrics().add_cell("hazard", config(), r, nullptr, &g);
    table.add_row({"hazard (grace rounds)", Table::fmt(r.mops()),
                   std::to_string(t.reclaimer().freed_count())});
  }
  table.print();
  return efrb::bench::metrics().finish() ? 0 : 1;
}
