// Experiment E2 — behaviour under extreme contention: tiny key ranges where
// every operation collides near the root, comparing the tree against the
// other non-blocking dictionaries (Harris list, skiplist). The Harris list is
// O(n) per op, so it is only competitive at the smallest ranges — the
// crossover against the tree is the interesting shape. A Zipf-skewed column
// shows hot-key behaviour at a larger range.
#include <cstdio>
#include <vector>

#include "baselines/harris_list.hpp"
#include "baselines/skiplist.hpp"
#include "bench_common.hpp"
#include "core/efrb_tree.hpp"
#include "workload/report.hpp"

namespace {

using Key = std::uint64_t;
using efrb::Table;
using efrb::WorkloadConfig;

}  // namespace

int main(int argc, char** argv) {
  efrb::bench::metrics().init("bench_contention", argc, argv);
  efrb::bench::print_header(
      "E2: small-range contention (Mops/s, 4 threads, 50i/50d)",
      "Expected shape: the Harris list wins or ties only at the smallest\n"
      "ranges (short chains, no tree overhead), then falls off as O(n) bites;\n"
      "tree and skiplist stay flat-ish. Update-heavy mix maximizes CAS\n"
      "conflicts and helping.");

  Table table({"key-range", "efrb-tree", "lockfree-skiplist", "harris-list"});
  for (const std::uint64_t range : {16ULL, 64ULL, 256ULL, 1024ULL}) {
    WorkloadConfig cfg;
    cfg.threads = 4;
    cfg.key_range = range;
    cfg.mix = efrb::kUpdateHeavy;
    cfg.duration = efrb::bench::cell_duration();
    table.add_row(
        {efrb::bench::human_range(range),
         Table::fmt(
             efrb::bench::run_cell<efrb::EfrbTreeSet<Key>>(cfg, "efrb-tree")
                 .mops()),
         Table::fmt(efrb::bench::run_cell<efrb::LockFreeSkipList<Key>>(
                        cfg, "lockfree-skiplist")
                        .mops()),
         Table::fmt(
             efrb::bench::run_cell<efrb::HarrisList<Key>>(cfg, "harris-list")
                 .mops())});
  }
  table.print();

  std::printf("\n-- Zipf-skewed accesses (range 2^16, theta 0.99, 4 threads, "
              "20i/10d) --\n");
  Table zipf({"distribution", "efrb-tree", "lockfree-skiplist"});
  for (const bool use_zipf : {false, true}) {
    WorkloadConfig cfg;
    cfg.threads = 4;
    cfg.key_range = 1 << 16;
    cfg.mix = efrb::kBalanced;
    cfg.zipf = use_zipf;
    cfg.duration = efrb::bench::cell_duration();
    zipf.add_row(
        {use_zipf ? "zipf-0.99" : "uniform",
         Table::fmt(
             efrb::bench::run_cell<efrb::EfrbTreeSet<Key>>(cfg, "efrb-tree")
                 .mops()),
         Table::fmt(efrb::bench::run_cell<efrb::LockFreeSkipList<Key>>(
                        cfg, "lockfree-skiplist")
                        .mops())});
  }
  zipf.print();
  return efrb::bench::metrics().finish() ? 0 : 1;
}
