// Experiment E7 (extension; not in the paper) — ordered-query throughput:
// range scans of growing width and min/max polling, with and without
// concurrent update churn, against the locked std::map reference. The point:
// the EFRB tree serves weakly-consistent scans and linearizable extremes with
// ZERO effect on updaters (no lock to hold readers' sins against them),
// whereas the reader-writer-locked map stalls its writers for the duration of
// every scan.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "baselines/locked_map.hpp"
#include "bench_common.hpp"
#include "core/efrb_tree.hpp"
#include "shard/sharded_map.hpp"
#include "util/rng.hpp"
#include "workload/report.hpp"

namespace {

using Key = std::uint64_t;
using efrb::Table;

constexpr std::uint64_t kRange = 1 << 16;

// Sink so the scan result is observable (no dead-code elimination).
std::atomic<std::uint64_t> g_sink{0};
void benchmark_keep(std::size_t v) {
  g_sink.fetch_add(v, std::memory_order_relaxed);
}

/// Scans of width `w` from one reader thread while `updaters` churn; returns
/// {scans/s, updates/s}.
template <typename SetT>
std::pair<double, double> scan_vs_churn(SetT& set, std::uint64_t width,
                                        int updaters) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scans{0}, updates{0};

  std::vector<std::thread> threads;
  threads.emplace_back([&] {  // scanner
    efrb::Xoshiro256 rng(1);
    while (!stop.load(std::memory_order_relaxed)) {
      const Key lo = rng.next_below(kRange - width);
      benchmark_keep(set.count_range(lo, lo + width - 1));
      scans.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (int u = 0; u < updaters; ++u) {
    threads.emplace_back([&, u] {
      efrb::Xoshiro256 rng(100 + static_cast<std::uint64_t>(u));
      auto h = efrb::make_handle(set);
      while (!stop.load(std::memory_order_relaxed)) {
        const Key k = rng.next_below(kRange);
        if ((rng.next() & 1) != 0) h.insert(k);
        else h.erase(k);
        updates.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const auto dur = efrb::bench::cell_duration();
  std::this_thread::sleep_for(dur);
  stop.store(true);
  for (auto& t : threads) t.join();
  const double secs = std::chrono::duration<double>(dur).count();
  return {static_cast<double>(scans.load()) / secs,
          static_cast<double>(updates.load()) / secs};
}

}  // namespace

int main(int argc, char** argv) {
  // Scan/churn loops don't go through run_cell; --json writes an empty-cell
  // document so sweep scripts can pass the flag uniformly.
  efrb::bench::metrics().init("bench_ordered", argc, argv);
  efrb::bench::print_header(
      "E7 (extension): range scans vs update churn (range 2^16, 1 scanner + "
      "3 updaters)",
      "Expected shape: as scan width grows, the rwlock'd map's updaters\n"
      "starve (writers wait out every scan) while the EFRB tree's updaters\n"
      "are unaffected by scan width (scans take no locks).");

  Table table({"scan width", "efrb scans/s", "efrb updates/s",
               "rwlock scans/s", "rwlock updates/s"});
  for (const std::uint64_t width : {64ULL, 1024ULL, 16384ULL}) {
    efrb::EfrbTreeSet<Key> tree;
    efrb::prefill(tree, kRange, 0.5, 42);
    const auto [ts, tu] = scan_vs_churn(tree, width, 3);

    efrb::LockedStdSet<Key> map;
    {
      efrb::Xoshiro256 rng(42 ^ 0xabcdef1234567890ULL);
      std::uint64_t inserted = 0;
      while (inserted < kRange / 2) {
        if (map.insert(rng.next_below(kRange))) ++inserted;
      }
    }
    const auto [ms, mu] = scan_vs_churn(map, width, 3);

    table.add_row({std::to_string(width), Table::fmt(ts, 0), Table::fmt(tu, 0),
                   Table::fmt(ms, 0), Table::fmt(mu, 0)});
  }
  table.print();

  // Cross-shard ordered queries (shard/sharded_map.hpp): the same scan-vs-
  // churn shape over the sharded front end. Hash sharding pays the k-way
  // merge (count_range still only sums per-shard counts, so the overhead
  // here is N descents instead of one); range sharding routes each window
  // to the one or two shards it intersects.
  std::printf("\n-- cross-shard ordered queries: sharded front end, 1 scanner "
              "+ 3 updaters --\n");
  Table sharded_table({"scan width", "single scans/s", "hash x4 scans/s",
                       "hash x4 updates/s", "range x4 scans/s",
                       "range x4 updates/s"});
  for (const std::uint64_t width : {64ULL, 1024ULL, 16384ULL}) {
    efrb::EfrbTreeSet<Key> single;
    efrb::prefill(single, kRange, 0.5, 42);
    const auto [ss, su] = scan_vs_churn(single, width, 3);

    efrb::shard::ShardedSet<efrb::EfrbTreeSet<Key>, efrb::shard::HashRouter>
        hashed{efrb::shard::HashRouter(4)};
    efrb::prefill(hashed, kRange, 0.5, 42);
    const auto [hs, hu] = scan_vs_churn(hashed, width, 3);

    efrb::shard::ShardedSet<efrb::EfrbTreeSet<Key>, efrb::shard::RangeRouter>
        ranged{efrb::shard::RangeRouter(4, kRange)};
    efrb::prefill(ranged, kRange, 0.5, 42);
    const auto [rs, ru] = scan_vs_churn(ranged, width, 3);

    sharded_table.add_row({std::to_string(width), Table::fmt(ss, 0),
                           Table::fmt(hs, 0), Table::fmt(hu, 0),
                           Table::fmt(rs, 0), Table::fmt(ru, 0)});
  }
  sharded_table.print();

  std::printf("\n-- linearizable extreme polling (min_key) under churn --\n");
  efrb::EfrbTreeSet<Key> tree;
  efrb::prefill(tree, kRange, 0.5, 42);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> polls{0};
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      benchmark_keep(tree.min_key().value_or(0));
      polls.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread churn([&] {
    efrb::Xoshiro256 rng(9);
    auto h = tree.handle();
    while (!stop.load(std::memory_order_relaxed)) {
      const Key k = rng.next_below(kRange);
      h.insert(k);
      h.erase(k);
    }
  });
  const auto dur = efrb::bench::cell_duration();
  std::this_thread::sleep_for(dur);
  stop.store(true);
  poller.join();
  churn.join();
  std::printf("min_key: %.0f polls/s under concurrent churn\n",
              static_cast<double>(polls.load()) /
                  std::chrono::duration<double>(dur).count());
  return efrb::bench::metrics().finish() ? 0 : 1;
}
