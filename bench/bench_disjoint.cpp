// Experiment E3 — disjoint-access concurrency. §1: "Insert and Delete
// operations that modify different parts of the tree do not interfere with
// one another, so they can run completely concurrently."
//
// Each thread updates either (a) a private key stripe (disjoint) or (b) the
// shared full range (overlapping). For the EFRB tree the disjoint case should
// retain throughput and show ~zero helping; lock-based trees serialize near
// the root either way (coarse) or pay lock-path traffic (fine-grained).
// Helping/backtrack counters are reported from a stats-enabled EFRB instance.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "baselines/coarse_bst.hpp"
#include "baselines/cow_bst.hpp"
#include "baselines/finelock_bst.hpp"
#include "bench_common.hpp"
#include "core/efrb_tree.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"
#include "workload/report.hpp"

namespace {

using efrb::Table;
using Key = std::uint64_t;

constexpr std::size_t kThreads = 4;
constexpr std::uint64_t kStripe = 1 << 12;

/// 50i/50d updates; each thread draws keys from [base, base+width).
template <typename Set>
double run_update_stripes(Set& set, bool disjoint,
                          std::chrono::milliseconds duration) {
  std::atomic<bool> stop{false};
  efrb::YieldingBarrier start(kThreads + 1);
  std::vector<efrb::CachePadded<std::uint64_t>> ops(kThreads);

  std::vector<std::thread> workers;
  for (std::size_t tid = 0; tid < kThreads; ++tid) {
    workers.emplace_back([&, tid] {
      const std::uint64_t base = disjoint ? tid * kStripe : 0;
      const std::uint64_t width = disjoint ? kStripe : kThreads * kStripe;
      efrb::Xoshiro256 rng(tid * 77 + 1);
      auto h = efrb::make_handle(set);  // per-thread handle (or proxy)
      start.arrive_and_wait();
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 64; ++i) {
          const Key k = base + rng.next_below(width);
          if ((rng.next() & 1) != 0) h.insert(k);
          else h.erase(k);
          ++n;
        }
      }
      ops[tid].value = n;
    });
  }
  start.arrive_and_wait();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(duration);
  stop.store(true);
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::uint64_t total = 0;
  for (const auto& o : ops) total += o.value;
  return static_cast<double>(total) / secs / 1e6;
}

template <typename Set>
void measure_row(Table& table, const char* name) {
  Set disjoint_set, overlap_set;
  const auto dur = efrb::bench::cell_duration();
  const double d = run_update_stripes(disjoint_set, /*disjoint=*/true, dur);
  const double o = run_update_stripes(overlap_set, /*disjoint=*/false, dur);
  table.add_row({name, Table::fmt(d), Table::fmt(o), Table::fmt(d / o, 2)});
}

}  // namespace

int main(int argc, char** argv) {
  // Custom stripe loops (not run_cell), so --json yields an empty cell list;
  // the flag is still accepted for sweep-script uniformity.
  efrb::bench::metrics().init("bench_disjoint", argc, argv);
  efrb::bench::print_header(
      "E3: disjoint-access updates (Mops/s, 4 threads, 50i/50d)",
      "Expected shape: EFRB's disjoint/overlapping ratio stays near (or\n"
      "above) 1 with near-zero helping in the disjoint case; the coarse lock\n"
      "is indifferent to disjointness (one lock either way).");

  Table table({"impl", "disjoint", "overlapping", "ratio"});
  measure_row<efrb::EfrbTreeSet<Key>>(table, "efrb-tree");
  measure_row<efrb::FineLockBst<Key>>(table, "finelock-bst");
  measure_row<efrb::CoarseLockBst<Key>>(table, "coarse-lock-bst");
  // §2's root-copying approach: disjointness cannot help — every update races
  // on the single root word and re-copies its whole path on conflict.
  measure_row<efrb::CowBst<Key>>(table, "cow-root-cas-bst");
  table.print();

  // Helping traffic: stats-enabled tree, disjoint vs overlapping.
  using StatsTree = efrb::EfrbTreeSet<Key, std::less<Key>, efrb::EpochReclaimer,
                                      efrb::StatsTraits>;
  std::printf("\n-- EFRB helping/backtrack counters (per million ops) --\n");
  Table stats({"mode", "helps/Mop", "backtracks/Mop", "insert-retries/Mop"});
  for (const bool disjoint : {true, false}) {
    StatsTree t;
    const double mops =
        run_update_stripes(t, disjoint, efrb::bench::cell_duration());
    const auto s = t.stats();
    const double total_mops =
        mops * std::chrono::duration<double>(efrb::bench::cell_duration())
                   .count();
    const double denom = std::max(total_mops, 1e-9);
    stats.add_row({disjoint ? "disjoint" : "overlapping",
                   Table::fmt(static_cast<double>(s.helps) / denom, 1),
                   Table::fmt(static_cast<double>(s.backtracks) / denom, 1),
                   Table::fmt(static_cast<double>(s.insert_retries) / denom, 1)});
  }
  stats.print();
  return efrb::bench::metrics().finish() ? 0 : 1;
}
