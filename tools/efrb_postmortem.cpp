// Flight-recorder dump decoder: turns the binary black box a crashing
// process left behind (obs/flightrec.hpp, written by the installed signal
// handler or an explicit dump_to_path) into a human-readable report:
//
//   * the header (format version, ring geometry),
//   * the registered gauges at crash time,
//   * the progress table — every handle slot, flagging ops still in flight
//     (odd op_seq) with their key, retries, last CAS step, and help depth,
//   * a per-thread timeline of the retained protocol events, oldest first,
//   * the inferred help graph: helper -> owner edges reconstructed from
//     kHelpEnter / kHelpOwner companion slots.
//
// Usage: efrb_postmortem <dump-file> [--events N]
//   --events N   print at most N trailing events per thread (default 20;
//                0 = all retained events)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/debug_hooks.hpp"
#include "obs/flightrec.hpp"
#include "obs/trace.hpp"

namespace {

const char* kind_name(efrb::obs::TraceEventKind k) {
  using efrb::obs::TraceEventKind;
  switch (k) {
    case TraceEventKind::kCas: return "cas";
    case TraceEventKind::kPoint: return "point";
    case TraceEventKind::kHelpEnter: return "help-enter";
    case TraceEventKind::kHelpExit: return "help-exit";
    case TraceEventKind::kOpBegin: return "op-begin";
    case TraceEventKind::kOpEnd: return "op-end";
    case TraceEventKind::kHelpOwner: return "help-owner";
  }
  return "?";
}

void print_event(const efrb::obs::TraceEvent& e) {
  using efrb::obs::TraceEventKind;
  switch (e.kind) {
    case TraceEventKind::kCas:
      std::printf("  %12llu ns  cas %s %s\n",
                  static_cast<unsigned long long>(e.ts_ns),
                  efrb::to_string(static_cast<efrb::CasStep>(e.code)),
                  e.ok ? "ok" : "fail");
      break;
    case TraceEventKind::kPoint:
      std::printf("  %12llu ns  point %s\n",
                  static_cast<unsigned long long>(e.ts_ns),
                  efrb::to_string(static_cast<efrb::HookPoint>(e.code)));
      break;
    case TraceEventKind::kHelpEnter:
    case TraceEventKind::kHelpExit:
      std::printf("  %12llu ns  %s\n",
                  static_cast<unsigned long long>(e.ts_ns),
                  kind_name(e.kind));
      break;
    case TraceEventKind::kOpBegin:
    case TraceEventKind::kOpEnd:
      std::printf("  %12llu ns  %s %s%s\n",
                  static_cast<unsigned long long>(e.ts_ns), kind_name(e.kind),
                  efrb::obs::to_string(
                      static_cast<efrb::obs::TraceOp>(e.code)),
                  e.kind == TraceEventKind::kOpEnd
                      ? (e.ok ? " -> true" : " -> false")
                      : "");
      break;
    case TraceEventKind::kHelpOwner:
      // ts field carries the owner's op_seq, code the owner's tid.
      std::printf("  %12s     help-owner tid=%u op_seq=%llu\n", "",
                  static_cast<unsigned>(e.code),
                  static_cast<unsigned long long>(e.ts_ns));
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  std::size_t max_events = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      max_events = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (argv[i][0] != '-' && path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: efrb_postmortem <dump-file> [--events N]\n");
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: efrb_postmortem <dump-file> [--events N]\n");
    return 2;
  }

  efrb::obs::FlightDump dump;
  if (!efrb::obs::FlightDump::read_file(path, &dump)) {
    std::fprintf(stderr,
                 "efrb_postmortem: %s is not a valid flight dump "
                 "(bad magic, version, or truncated)\n",
                 path);
    return 1;
  }

  std::printf("efrb_postmortem: flight dump v%llu  (%llu tids, ring %llu)\n",
              static_cast<unsigned long long>(dump.version),
              static_cast<unsigned long long>(dump.max_tids),
              static_cast<unsigned long long>(dump.ring_cap));

  std::printf("\n== gauges ==\n");
  if (dump.gauges.empty()) std::printf("  (none registered)\n");
  for (const efrb::obs::FlightGauge& g : dump.gauges) {
    std::printf("  %-24s %llu\n", g.name.c_str(),
                static_cast<unsigned long long>(g.value));
  }

  std::printf("\n== progress table ==\n");
  std::size_t in_flight = 0;
  for (const efrb::obs::FlightSlot& s : dump.slots) {
    if (s.tid == efrb::kNoTid) continue;  // free slot
    if (s.in_flight()) {
      ++in_flight;
      std::printf(
          "  tid %-3llu IN FLIGHT  key=%llu retries=%llu last_step=%s "
          "help_depth=%llu\n",
          static_cast<unsigned long long>(s.tid),
          static_cast<unsigned long long>(s.op_key),
          static_cast<unsigned long long>(s.retries),
          s.last_step == efrb::kNoStep
              ? "(none)"
              : efrb::to_string(static_cast<efrb::CasStep>(s.last_step)),
          static_cast<unsigned long long>(s.help_depth));
    } else {
      std::printf("  tid %-3llu idle\n", static_cast<unsigned long long>(s.tid));
    }
  }
  if (dump.slots.empty()) std::printf("  (no progress table attached)\n");
  std::printf("  %llu op(s) in flight at dump time\n",
              static_cast<unsigned long long>(in_flight));

  // helper tid -> owner tid -> edge count, from help-owner companion slots.
  std::map<unsigned, std::map<unsigned, std::uint64_t>> help_graph;

  std::printf("\n== per-thread timeline ==\n");
  for (std::size_t tid = 0; tid < dump.rings.size(); ++tid) {
    const std::vector<efrb::obs::TraceEvent> events = dump.events(tid);
    if (events.empty()) continue;
    std::printf("thread %llu: %llu retained event(s)\n",
                static_cast<unsigned long long>(tid),
                static_cast<unsigned long long>(events.size()));
    const std::size_t from =
        (max_events == 0 || events.size() <= max_events)
            ? 0
            : events.size() - max_events;
    if (from > 0) {
      std::printf("  ... %llu older event(s) elided (--events 0 for all)\n",
                  static_cast<unsigned long long>(from));
    }
    for (std::size_t i = from; i < events.size(); ++i) print_event(events[i]);
    for (const efrb::obs::TraceEvent& e : events) {
      if (e.kind == efrb::obs::TraceEventKind::kHelpOwner) {
        ++help_graph[static_cast<unsigned>(tid)][e.code];
      }
    }
  }

  std::printf("\n== inferred help graph ==\n");
  if (help_graph.empty()) {
    std::printf("  (no attributed help events retained)\n");
  }
  for (const auto& [helper, owners] : help_graph) {
    for (const auto& [owner, n] : owners) {
      std::printf("  tid %u helped tid %u  x%llu\n", helper, owner,
                  static_cast<unsigned long long>(n));
    }
  }
  return 0;
}
