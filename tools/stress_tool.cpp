// stress_tool — command-line correctness & endurance harness.
//
//   ./stress_tool [--impl NAME] [--threads N] [--range K] [--seconds S]
//                 [--insert PCT] [--erase PCT] [--zipf] [--seed X]
//
// Runs the configured mixed workload, then verifies:
//   * the parity oracle (presence == odd count of successful updates per key,
//     tracked with per-key atomic counters during the run),
//   * structural validation (EFRB trees only),
//   * reports throughput and, for the EFRB tree, reclamation statistics.
//
// Exit code 0 iff every check passed — suitable for soak-testing in CI loops:
//   while ./stress_tool --seconds 10; do :; done
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "baselines/coarse_bst.hpp"
#include "baselines/cow_bst.hpp"
#include "baselines/finelock_bst.hpp"
#include "baselines/harris_list.hpp"
#include "baselines/locked_map.hpp"
#include "baselines/skiplist.hpp"
#include "core/efrb_tree.hpp"
#include "util/barrier.hpp"
#include "util/cacheline.hpp"
#include "util/rng.hpp"
#include "workload/distribution.hpp"

namespace {

struct Options {
  std::string impl = "efrb";
  std::size_t threads = 4;
  std::uint64_t range = 1 << 12;
  double seconds = 2.0;
  unsigned insert_pct = 30;
  unsigned erase_pct = 30;
  bool zipf = false;
  std::uint64_t seed = 1;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--impl efrb|efrb-helping-search|coarse|finelock|stdmap|cow|"
      "harris|skiplist]\n"
      "          [--threads N] [--range K] [--seconds S] [--insert PCT]\n"
      "          [--erase PCT] [--zipf] [--seed X]\n",
      argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--impl") == 0) o.impl = need("--impl");
    else if (std::strcmp(argv[i], "--threads") == 0)
      o.threads = std::strtoul(need("--threads"), nullptr, 10);
    else if (std::strcmp(argv[i], "--range") == 0)
      o.range = std::strtoull(need("--range"), nullptr, 10);
    else if (std::strcmp(argv[i], "--seconds") == 0)
      o.seconds = std::strtod(need("--seconds"), nullptr);
    else if (std::strcmp(argv[i], "--insert") == 0)
      o.insert_pct = static_cast<unsigned>(std::strtoul(need("--insert"), nullptr, 10));
    else if (std::strcmp(argv[i], "--erase") == 0)
      o.erase_pct = static_cast<unsigned>(std::strtoul(need("--erase"), nullptr, 10));
    else if (std::strcmp(argv[i], "--zipf") == 0) o.zipf = true;
    else if (std::strcmp(argv[i], "--seed") == 0)
      o.seed = std::strtoull(need("--seed"), nullptr, 10);
    else usage(argv[0]);
  }
  if (o.threads == 0 || o.range == 0 || o.insert_pct + o.erase_pct > 100) {
    usage(argv[0]);
  }
  return o;
}

/// Runs the soak and checks the parity oracle. Returns true iff consistent.
template <typename Set>
bool soak(const Options& o) {
  Set set;
  std::vector<std::atomic<std::uint64_t>> flips(o.range);
  std::atomic<bool> stop{false};
  efrb::YieldingBarrier start(static_cast<std::uint32_t>(o.threads) + 1);
  std::vector<efrb::CachePadded<std::uint64_t>> ops(o.threads);

  std::vector<std::thread> workers;
  for (std::size_t tid = 0; tid < o.threads; ++tid) {
    workers.emplace_back([&, tid] {
      efrb::Xoshiro256 rng(o.seed + tid * 7919);
      const efrb::ZipfKeys zipf_dist(o.range, 0.99);
      std::uint64_t n = 0;
      start.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        for (int b = 0; b < 32; ++b, ++n) {
          const std::uint64_t raw =
              o.zipf ? zipf_dist(rng) : rng.next_below(o.range);
          const auto k = static_cast<typename Set::key_type>(raw);
          const auto dice = static_cast<unsigned>(rng.next_below(100));
          if (dice < o.insert_pct) {
            if (set.insert(k)) flips[raw].fetch_add(1, std::memory_order_relaxed);
          } else if (dice < o.insert_pct + o.erase_pct) {
            if (set.erase(k)) flips[raw].fetch_add(1, std::memory_order_relaxed);
          } else {
            set.contains(k);
          }
        }
      }
      ops[tid].value = n;
    });
  }
  start.arrive_and_wait();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(o.seconds));
  stop.store(true);
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::uint64_t total_ops = 0;
  for (const auto& c : ops) total_ops += c.value;
  std::printf("impl=%s threads=%zu range=%llu mix=%ui/%ud/%uf %s\n",
              Set::kName, o.threads, static_cast<unsigned long long>(o.range),
              o.insert_pct, o.erase_pct, 100 - o.insert_pct - o.erase_pct,
              o.zipf ? "zipf" : "uniform");
  std::printf("ops=%llu (%.2f Mops/s over %.2fs)\n",
              static_cast<unsigned long long>(total_ops),
              static_cast<double>(total_ops) / secs / 1e6, secs);

  std::uint64_t divergent = 0;
  for (std::uint64_t k = 0; k < o.range; ++k) {
    const bool expected = (flips[k].load() % 2) == 1;
    if (set.contains(static_cast<typename Set::key_type>(k)) != expected) {
      ++divergent;
    }
  }
  std::printf("parity oracle: %llu divergent keys\n",
              static_cast<unsigned long long>(divergent));

  bool structure_ok = true;
  if constexpr (requires { set.validate(); }) {
    const auto v = set.validate();
    structure_ok = v.ok;
    std::printf("structure: %s (keys=%zu height=%zu)\n",
                v.ok ? "OK" : v.error.c_str(), v.real_leaves, v.height);
  }
  if constexpr (requires { set.reclaimer().freed_count(); }) {
    std::printf("reclaimed objects: %llu\n",
                static_cast<unsigned long long>(set.reclaimer().freed_count()));
  }
  return divergent == 0 && structure_ok;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  bool ok = false;
  if (o.impl == "efrb") {
    ok = soak<efrb::EfrbTreeSet<std::uint64_t>>(o);
  } else if (o.impl == "efrb-helping-search") {
    ok = soak<efrb::EfrbTreeSet<std::uint64_t, std::less<std::uint64_t>,
                                efrb::EpochReclaimer,
                                efrb::HelpingSearchTraits>>(o);
  } else if (o.impl == "coarse") {
    ok = soak<efrb::CoarseLockBst<std::uint64_t>>(o);
  } else if (o.impl == "finelock") {
    ok = soak<efrb::FineLockBst<std::uint64_t>>(o);
  } else if (o.impl == "stdmap") {
    ok = soak<efrb::LockedStdSet<std::uint64_t>>(o);
  } else if (o.impl == "harris") {
    ok = soak<efrb::HarrisList<std::uint64_t>>(o);
  } else if (o.impl == "skiplist") {
    ok = soak<efrb::LockFreeSkipList<std::uint64_t>>(o);
  } else if (o.impl == "cow") {
    ok = soak<efrb::CowBst<std::uint64_t>>(o);
  } else {
    usage(argv[0]);
  }
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
