// efrb_top — a live terminal dashboard over the continuous-telemetry layer.
//
// Runs a configurable workload on a heatmap-instrumented EFRB tree in a
// background thread while the main thread re-renders, once per interval, the
// picture the obs layer maintains anyway: windowed rates from the attached
// MetricsPoller (ops/s, CAS-failure rate, helps/s, backlog slope), the
// reclaimer gauges, and the key-space contention strip from the KeyHeatmap.
// Think `top`, but the processes are protocol steps.
//
// Live mode switches to the terminal's alternate screen, hides the cursor,
// and redraws once per --interval until --ms elapses; on any exit — normal,
// SIGINT, SIGTERM — the terminal is restored (alternate screen left, cursor
// shown) so a Ctrl-C never strands the shell on a blank scrollback-less
// screen. The parting protocol-step table prints on the normal screen.
// `--once` renders exactly one plain frame after the run finishes — no
// escape codes, no signal handlers, no timing dependence — which is what
// scripts/check.sh drives headlessly in CI.
//
// The dashboard also carries the liveness surface (PR 9): a causal help
// summary (who is helping whom, from obs/causal.hpp) and the watchdog's
// stalled-operation rows (obs/watchdog.hpp) for the single-tree mode.
//
// PR 10 adds two rows: `latency` (per-op p50/p99 plus the histogram
// saturated counts — workers merge samples at join, so live frames show a
// collecting placeholder) and `profile` (phase-attributed cycles/op from
// obs/profile.hpp, with per-phase shares and the hw/sw counter verdict on
// the final frame).
//
// Usage: efrb_top [--ms N] [--interval N] [--threads N] [--range N]
//                 [--mix read|mostly|balanced|update] [--uniform] [--once]
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/efrb_tree.hpp"
#include "obs/causal.hpp"
#include "obs/heatmap.hpp"
#include "obs/profile.hpp"
#include "obs/timeseries.hpp"
#include "obs/watchdog.hpp"
#include "shard/shard_metrics.hpp"
#include "shard/sharded_map.hpp"
#include "workload/report.hpp"
#include "workload/runner.hpp"

namespace {

using Key = std::uint64_t;

/// Heatmap + causal help attribution + phase profiling in one traits type.
/// kCausalTrace turns on the owner stamp and per-handle progress slots (the
/// watchdog's sampling surface); help events land in the installed
/// CausalRegistry via the 4-argument at(); everything keyed flows to the
/// heatmap; and every hook point plus the explicit phase seams also reach
/// the installed PhaseProfiler, which drives the dashboard's profile row.
struct TopTraits {
  static constexpr bool kCountStats = true;
  static constexpr bool kSearchHelpsMarked = false;
  static constexpr bool kTrackKeys = true;
  static constexpr bool kCausalTrace = true;

  static void on_cas(efrb::CasStep s, bool ok, const void* node, unsigned tid,
                     std::uint64_t key) {
    efrb::obs::HeatmapTraits::on_cas(s, ok, node, tid, key);
  }
  static void at(efrb::HookPoint p, unsigned tid, std::uint64_t key) {
    efrb::obs::HeatmapTraits::at(p, tid, key);
    efrb::obs::ProfileTraits::at(p, tid, key);
  }
  static void at(efrb::HookPoint p, unsigned tid, std::uint64_t key,
                 std::uint64_t owner) {
    efrb::obs::CausalTraits::at(p, tid, key, owner);
    efrb::obs::HeatmapTraits::at(p, tid, key);
    efrb::obs::ProfileTraits::at(p, tid, key);
  }
  static void phase(bool enter, efrb::Phase ph, unsigned tid) {
    efrb::obs::ProfileTraits::phase(enter, ph, tid);
  }
};

using TopTree = efrb::EfrbTreeSet<Key, std::less<Key>, efrb::EpochReclaimer,
                                  TopTraits>;
// --shards N: the same workload over the sharded front end; the dashboard
// grows a per-shard row (load share from the balance report, per-shard
// reclaimer backlog/orphans).
using TopSharded = efrb::shard::ShardedSet<TopTree, efrb::shard::HashRouter>;

struct Options {
  long ms = 2000;
  long interval_ms = 200;
  std::size_t threads = 4;
  std::uint64_t range = 1 << 12;
  efrb::OpMix mix = efrb::kUpdateHeavy;
  const char* mix_label = "update";
  bool zipf = true;
  bool once = false;
  std::size_t shards = 0;  // 0 = single tree
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "efrb_top: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--ms") == 0) {
      opt.ms = std::atol(next());
    } else if (std::strcmp(argv[i], "--interval") == 0) {
      opt.interval_ms = std::atol(next());
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      opt.threads = static_cast<std::size_t>(std::atol(next()));
    } else if (std::strcmp(argv[i], "--range") == 0) {
      opt.range = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--mix") == 0) {
      const char* m = next();
      opt.mix_label = m;
      if (std::strcmp(m, "read") == 0) {
        opt.mix = efrb::kReadOnly;
      } else if (std::strcmp(m, "mostly") == 0) {
        opt.mix = efrb::kReadMostly;
      } else if (std::strcmp(m, "balanced") == 0) {
        opt.mix = efrb::kBalanced;
      } else if (std::strcmp(m, "update") == 0) {
        opt.mix = efrb::kUpdateHeavy;
      } else {
        std::fprintf(stderr, "efrb_top: unknown mix '%s'\n", m);
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--uniform") == 0) {
      opt.zipf = false;
    } else if (std::strcmp(argv[i], "--once") == 0) {
      opt.once = true;
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      opt.shards = static_cast<std::size_t>(std::atol(next()));
    } else {
      std::fprintf(stderr,
                   "usage: efrb_top [--ms N] [--interval N] [--threads N] "
                   "[--range N] [--mix read|mostly|balanced|update] "
                   "[--uniform] [--once] [--shards N]\n");
      std::exit(2);
    }
  }
  return opt;
}

// --- terminal state management (live mode only) ---------------------------
//
// Live mode runs on the alternate screen. The restore sequence must reach
// the terminal on EVERY exit path — normal return, SIGINT (Ctrl-C), SIGTERM
// — or the user's shell is left on a blank alternate screen with a hidden
// cursor. The signal handler uses only write(2) (async-signal-safe) and
// _exit; 128+signo is the conventional killed-by-signal exit status.

constexpr char kEnterAltScreen[] = "\x1b[?1049h\x1b[?25l";  // alt + hide cursor
constexpr char kLeaveAltScreen[] = "\x1b[?1049l\x1b[?25h";  // back + show

void restore_terminal_on_signal(int sig) {
  // NOLINTNEXTLINE(cppcoreguidelines-pro-bounds-array-to-pointer-decay)
  ::write(STDOUT_FILENO, kLeaveAltScreen, sizeof(kLeaveAltScreen) - 1);
  ::_exit(128 + sig);
}

void enter_live_screen() {
  struct sigaction sa {};
  sa.sa_handler = &restore_terminal_on_signal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  std::fputs(kEnterAltScreen, stdout);
  std::fflush(stdout);
}

void leave_live_screen() {
  std::fputs(kLeaveAltScreen, stdout);
  std::fflush(stdout);
  ::signal(SIGINT, SIG_DFL);
  ::signal(SIGTERM, SIG_DFL);
}

/// Causal + watchdog rows under the common frame: who is helping whom and
/// which in-flight ops the watchdog currently flags as stalled.
void render_liveness(const efrb::obs::CausalRegistry* causal,
                     const efrb::obs::LivenessWatchdog* watchdog) {
  if (causal != nullptr) {
    // The busiest helper->owner pair, as a one-line summary.
    unsigned best_h = 0;
    unsigned best_o = 0;
    std::uint64_t best_n = 0;
    for (unsigned h = 0; h < causal->max_tids(); ++h) {
      if (causal->helps_given(h) == 0) continue;
      for (unsigned o = 0; o < causal->max_tids(); ++o) {
        const std::uint64_t n = causal->helped_by(h, o);
        if (n > best_n) {
          best_n = n;
          best_h = h;
          best_o = o;
        }
      }
    }
    std::printf("causal   %llu helps attributed (%llu unattributed)",
                static_cast<unsigned long long>(causal->total_helps()),
                static_cast<unsigned long long>(
                    causal->dropped_unattributed()));
    if (best_n > 0) {
      std::printf("  top: tid %u helped tid %u x%llu", best_h, best_o,
                  static_cast<unsigned long long>(best_n));
    }
    std::printf("\n");
  }
  if (watchdog != nullptr) {
    const efrb::obs::StallReport rep = watchdog->report();
    std::printf("stalls   %zu flagged now, %llu events total "
                "(budget: %llu retries / %.0f ms)\n",
                rep.stalled.size(),
                static_cast<unsigned long long>(rep.stall_events_total),
                static_cast<unsigned long long>(watchdog->budget().retries),
                static_cast<double>(watchdog->budget().wall_ns) / 1e6);
    for (const efrb::obs::StallEntry& e : rep.stalled) {
      std::printf("         tid %-3u key=%llu age=%.1f ms retries=%llu "
                  "step=%s depth=%u\n",
                  e.tid, static_cast<unsigned long long>(e.op_key),
                  static_cast<double>(e.age_ns) / 1e6,
                  static_cast<unsigned long long>(e.retries),
                  e.last_step == efrb::kNoStep
                      ? "(none)"
                      : efrb::to_string(
                            static_cast<efrb::CasStep>(e.last_step)),
                  e.help_depth);
    }
  }
}

/// Latency row: per-op p50/p99 plus the saturated counts that tell a
/// clamped tail from a measured one. Workers record into private sample
/// sets that merge into `lat` only at join, so live frames pass
/// `collecting=true` and show a placeholder until the final frame.
void render_latency(const efrb::LatencySamples& lat, bool collecting) {
  if (collecting) {
    std::printf("latency  (collecting — merged at end of run)\n");
    return;
  }
  std::printf("latency  find p50=%llu p99=%llu  insert p50=%llu p99=%llu  "
              "erase p50=%llu p99=%llu ns  saturated=%llu/%llu/%llu\n",
              static_cast<unsigned long long>(lat.find.percentile(50)),
              static_cast<unsigned long long>(lat.find.percentile(99)),
              static_cast<unsigned long long>(lat.insert.percentile(50)),
              static_cast<unsigned long long>(lat.insert.percentile(99)),
              static_cast<unsigned long long>(lat.erase.percentile(50)),
              static_cast<unsigned long long>(lat.erase.percentile(99)),
              static_cast<unsigned long long>(lat.find.saturated()),
              static_cast<unsigned long long>(lat.insert.saturated()),
              static_cast<unsigned long long>(lat.erase.saturated()));
}

/// Profile row: where the cycles go, by protocol phase. Live frames read
/// the profiler's relaxed running totals; the final frame renders the full
/// snapshot with per-phase shares and the hw/sw availability verdict.
void render_profile(const efrb::obs::PhaseProfiler& profiler, bool live) {
  if (live) {
    std::printf("profile  %llu ops, %llu cycles attributed (live)\n",
                static_cast<unsigned long long>(profiler.live_ops()),
                static_cast<unsigned long long>(profiler.live_cycles()));
    return;
  }
  const efrb::obs::ProfileSnapshot s = profiler.snapshot();
  std::printf("profile  %llu ops, %.1f %s/op, hw=%s sw=%s\n",
              static_cast<unsigned long long>(s.ops), s.cycles_per_op(),
              s.source.c_str(), s.available ? "yes" : "no",
              s.sw_available ? "yes" : "no");
  std::printf("         ");
  for (std::size_t i = 0; i < efrb::kNumPhases; ++i) {
    std::printf("%s %.1f%%%s", efrb::to_string(static_cast<efrb::Phase>(i)),
                100.0 * s.phase_share(i),
                i + 1 < efrb::kNumPhases ? "  " : "\n");
  }
  double ipc = 0;
  if (s.ipc(&ipc)) {
    double miss = 0;
    s.cache_miss_rate(&miss);
    std::printf("         ipc=%.2f cache-miss=%.1f%%\n", ipc, 100.0 * miss);
  }
}

/// One dashboard frame from the current poller/heatmap/gauge state. The
/// same renderer serves the live loop and the --once snapshot; only the
/// screen-clearing differs.
void render_frame(const Options& opt, const efrb::obs::MetricsPoller& poller,
                  const efrb::obs::KeyHeatmap& heatmap,
                  const efrb::ReclaimGauges& gauges, bool live) {
  if (live) std::fputs("\x1b[2J\x1b[H", stdout);  // clear + home

  std::printf("efrb_top — efrb-tree  threads=%zu  range=%llu  mix=%s  %s\n\n",
              opt.threads, static_cast<unsigned long long>(opt.range),
              opt.mix_label, opt.zipf ? "zipf" : "uniform");

  const std::vector<efrb::obs::WindowRates> rates = poller.rates();
  efrb::Table t({"t (s)", "ops/s", "cas fail %", "helps/s", "retries/s",
                 "retired/s", "freed/s", "backlog slope"});
  // The latest handful of windows, newest last — enough to see a trend
  // without scrolling the terminal.
  const std::size_t kShow = 8;
  const std::size_t from = rates.size() > kShow ? rates.size() - kShow : 0;
  for (std::size_t i = from; i < rates.size(); ++i) {
    const efrb::obs::WindowRates& r = rates[i];
    t.add_row({efrb::Table::fmt(static_cast<double>(r.t_ns) / 1e9),
               efrb::Table::fmt(r.ops_per_s, 0),
               efrb::Table::fmt(100.0 * r.cas_failure_rate),
               efrb::Table::fmt(r.helps_per_s, 0),
               efrb::Table::fmt(r.retries_per_s, 0),
               efrb::Table::fmt(r.retired_per_s, 0),
               efrb::Table::fmt(r.freed_per_s, 0),
               efrb::Table::fmt(r.backlog_slope, 0)});
  }
  if (rates.empty()) {
    t.add_row({"-", "-", "-", "-", "-", "-", "-", "-"});
  }
  t.print();

  const std::vector<efrb::obs::HeatBucket> buckets = heatmap.snapshot();
  std::uint64_t contended = 0;
  std::uint64_t attempts = 0;
  for (const efrb::obs::HeatBucket& b : buckets) {
    contended += b.contended();
    attempts += b.attempts;
  }
  std::printf("\nheatmap  [%s]  (%llu contended / %llu attempts, "
              "%llu unattributed)\n",
              heatmap.strip(buckets).c_str(),
              static_cast<unsigned long long>(contended),
              static_cast<unsigned long long>(attempts),
              static_cast<unsigned long long>(heatmap.dropped()));
  std::printf("reclaim  retired=%llu freed=%llu backlog=%llu orphans=%llu "
              "epoch=%llu\n",
              static_cast<unsigned long long>(gauges.retired_total),
              static_cast<unsigned long long>(gauges.freed_total),
              static_cast<unsigned long long>(gauges.backlog()),
              static_cast<unsigned long long>(gauges.orphan_depth),
              static_cast<unsigned long long>(gauges.epoch));
  std::fflush(stdout);
}

/// The --shards extra: load share per shard (whole-run heatmap deltas pushed
/// through the router, shard/shard_metrics.hpp) next to each shard's own
/// reclaimer gauges — the per-domain backlog visibility that is the
/// operational point of sharding.
void render_shard_rows(const TopSharded& tree,
                       const efrb::obs::KeyHeatmap& heatmap) {
  const efrb::shard::ShardBalanceReport rep = efrb::shard::score_shard_map(
      tree.router(), heatmap, {}, heatmap.snapshot());
  std::printf("\nshards   %s  imbalance %.2fx  hottest %zu%s\n",
              tree.describe().c_str(), rep.imbalance(), rep.hottest(),
              rep.balanced() ? "" : "  ** imbalanced **");
  efrb::Table t({"shard", "load %", "attempts", "contended", "backlog",
                 "orphans"});
  for (std::size_t i = 0; i < tree.shard_count(); ++i) {
    const efrb::ReclaimGauges g = tree.shard_gauges(i);
    t.add_row({std::to_string(i), efrb::Table::fmt(100.0 * rep.share(i), 1),
               std::to_string(rep.per_shard[i].attempts),
               std::to_string(rep.per_shard[i].contended),
               std::to_string(g.backlog()), std::to_string(g.orphan_depth)});
  }
  t.print();
}

/// One dashboard run over `tree`: background workload, live redraw loop,
/// final frame + protocol summary. `gauges` snapshots the reclaim gauges and
/// `extra` renders any structure-specific rows under the common frame.
template <typename SetT, typename GaugesFn, typename ExtraFn>
int run_top(const Options& opt, SetT& tree, GaugesFn&& gauges, ExtraFn&& extra,
            const efrb::obs::CausalRegistry* causal = nullptr,
            efrb::obs::LivenessWatchdog* watchdog = nullptr) {
  efrb::WorkloadConfig cfg;
  cfg.threads = opt.threads;
  cfg.key_range = opt.range;
  cfg.mix = opt.mix;
  cfg.zipf = opt.zipf;
  cfg.duration = std::chrono::milliseconds(std::max(10L, opt.ms));

  efrb::obs::KeyHeatmap heatmap(cfg.key_range);
  efrb::obs::HeatmapTraits::install(&heatmap);
  efrb::prefill(tree, cfg.key_range, cfg.prefill_fraction, cfg.seed);

  // Phase profiler installed after prefill so the profile row describes the
  // measured window only, and latency sampling for the p50/p99 + saturated
  // row (workers record privately; run_workload merges at join).
  efrb::LatencySamples latency;
  efrb::obs::PhaseProfiler profiler;
  efrb::obs::ProfileTraits::install(&profiler);

  efrb::obs::MetricsPoller poller(
      std::chrono::milliseconds(std::max(1L, opt.interval_ms)));
  poller.set_sources({
      {},  // ops source is wired by run_workload
      [&tree] { return tree.stats(); },
      [&gauges] { return gauges(); },
  });

  if (watchdog != nullptr) watchdog->start();

  std::atomic<bool> done{false};
  efrb::WorkloadResult result;
  std::thread worker([&] {
    result = efrb::run_workload(tree, cfg, &latency, nullptr, &poller, causal,
                                &profiler);
    done.store(true, std::memory_order_release);
  });

  if (!opt.once) {
    enter_live_screen();
    while (!done.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max(1L, opt.interval_ms)));
      render_frame(opt, poller, heatmap, gauges(), true);
      render_latency(latency, /*collecting=*/true);
      render_profile(profiler, /*live=*/true);
      render_liveness(causal, watchdog);
      extra(heatmap);
    }
    leave_live_screen();
  }
  worker.join();
  if (watchdog != nullptr) watchdog->stop();
  efrb::obs::HeatmapTraits::reset();
  efrb::obs::ProfileTraits::reset();

  // Final (or only, with --once) frame from the completed run, plus the
  // protocol-step summary — on the normal screen, so it survives in
  // scrollback after a live session.
  render_frame(opt, poller, heatmap, gauges(), false);
  render_latency(latency, /*collecting=*/false);
  render_profile(profiler, /*live=*/false);
  render_liveness(causal, watchdog);
  extra(heatmap);
  std::printf("\n%llu ops in %.2f s (%.2f Mops/s), %llu poller samples\n\n",
              static_cast<unsigned long long>(result.total_ops()),
              result.seconds, result.mops(),
              static_cast<unsigned long long>(poller.samples_pushed()));
  efrb::protocol_step_table(tree.stats()).print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (opt.shards > 0) {
    TopSharded tree{efrb::shard::HashRouter(opt.shards)};
    return run_top(
        opt, tree, [&tree] { return tree.gauges(); },
        [&tree](const efrb::obs::KeyHeatmap& h) { render_shard_rows(tree, h); });
  }
  TopTree tree;
  efrb::obs::CausalRegistry causal;
  efrb::obs::CausalTraits::install(&causal);
  efrb::obs::LivenessWatchdog watchdog(
      tree.progress_table(), efrb::obs::WatchdogBudget{},
      std::chrono::milliseconds(std::max(1L, opt.interval_ms)));
  const int rc = run_top(
      opt, tree, [&tree] { return tree.reclaimer().gauges(); },
      [](const efrb::obs::KeyHeatmap&) {}, &causal, &watchdog);
  efrb::obs::CausalTraits::reset();
  return rc;
}
