// fuzz_lincheck — randomized linearizability fuzzing.
//
//   ./fuzz_lincheck [--seconds S] [--threads N] [--keys K] [--ops-per-burst B]
//
// Generates random short concurrent bursts against a fresh EFRB set and map,
// records complete histories with a shared logical clock, and checks each
// burst with the Wing-Gong checker. Any non-linearizable history is dumped in
// a replayable form and the tool exits non-zero. Runs until the time budget
// is exhausted; prints the number of histories checked.
//
// This is the open-ended complement to the fixed-seed tests in
// tests/lincheck_test.cpp / tests/map_lincheck_test.cpp.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/efrb_tree.hpp"
#include "lincheck/checker.hpp"
#include "lincheck/map_spec.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using efrb::EfrbTreeMap;
using efrb::EfrbTreeSet;
using efrb::OpType;
using efrb::Xoshiro256;
using efrb::lincheck::Checker;
using efrb::lincheck::History;
using MapChecker =
    efrb::lincheck::BasicChecker<efrb::lincheck::NibbleMapSpec>;

struct Options {
  double seconds = 5.0;
  unsigned threads = 3;
  std::uint64_t keys = 6;
  int ops_per_burst = 6;
};

void dump_set_history(const History& h) {
  std::fprintf(stderr, "--- non-linearizable set history ---\n");
  for (const auto& op : h) {
    const char* name = op.type == OpType::kInsert  ? "insert"
                       : op.type == OpType::kErase ? "erase"
                                                   : "find";
    std::fprintf(stderr, "t%u %s(%llu) -> %s  [%llu, %llu]\n", op.thread,
                 name, static_cast<unsigned long long>(op.key),
                 op.result ? "true" : "false",
                 static_cast<unsigned long long>(op.invoke),
                 static_cast<unsigned long long>(op.response));
  }
}

bool fuzz_set_burst(std::uint64_t seed, const Options& o) {
  EfrbTreeSet<int> set;
  efrb::lincheck::Recorder rec(o.threads);
  efrb::run_threads(o.threads, [&](std::size_t tid) {
    Xoshiro256 rng(seed * 7919 + tid);
    for (int i = 0; i < o.ops_per_burst; ++i) {
      const std::uint64_t k = rng.next_below(o.keys);
      const auto t0 = rec.now();
      switch (rng.next_below(3)) {
        case 0:
          rec.record(static_cast<unsigned>(tid), OpType::kInsert, k,
                     set.insert(static_cast<int>(k)), t0);
          break;
        case 1:
          rec.record(static_cast<unsigned>(tid), OpType::kErase, k,
                     set.erase(static_cast<int>(k)), t0);
          break;
        default:
          rec.record(static_cast<unsigned>(tid), OpType::kFind, k,
                     set.contains(static_cast<int>(k)), t0);
      }
    }
  });
  const History h = rec.collect();
  if (!Checker::check(h)) {
    std::fprintf(stderr, "SET VIOLATION at seed %llu\n",
                 static_cast<unsigned long long>(seed));
    dump_set_history(h);
    return false;
  }
  return true;
}

bool fuzz_map_burst(std::uint64_t seed, const Options& o) {
  using efrb::lincheck::MapHistory;
  using efrb::lincheck::MapOperation;
  using efrb::lincheck::MapOpType;

  EfrbTreeMap<int, int> map;
  std::atomic<std::uint64_t> clock{0};
  std::vector<MapHistory> logs(o.threads);
  efrb::run_threads(o.threads, [&](std::size_t tid) {
    Xoshiro256 rng(seed * 104729 + tid);
    for (int i = 0; i < o.ops_per_burst; ++i) {
      MapOperation op;
      op.thread = static_cast<unsigned>(tid);
      op.key = rng.next_below(std::min<std::uint64_t>(o.keys, 8));
      op.invoke = clock.fetch_add(1);
      const int k = static_cast<int>(op.key);
      switch (rng.next_below(4)) {
        case 0: {
          op.type = MapOpType::kGet;
          const auto v = map.get(k);
          op.ok = v.has_value();
          op.value_out = v.has_value() ? static_cast<std::uint64_t>(*v) : 0;
          break;
        }
        case 1:
          op.type = MapOpType::kPut;
          op.value_arg = rng.next_below(14);
          op.ok = map.insert(k, static_cast<int>(op.value_arg));
          break;
        case 2:
          op.type = MapOpType::kAssign;
          op.value_arg = rng.next_below(14);
          op.ok = map.insert_or_assign(k, static_cast<int>(op.value_arg));
          break;
        default:
          op.type = MapOpType::kErase;
          op.ok = map.erase(k);
      }
      op.response = clock.fetch_add(1);
      logs[tid].push_back(op);
    }
  });
  efrb::lincheck::MapHistory all;
  for (const auto& log : logs) all.insert(all.end(), log.begin(), log.end());
  if (!MapChecker::check(all)) {
    std::fprintf(stderr, "MAP VIOLATION at seed %llu (%zu ops)\n",
                 static_cast<unsigned long long>(seed), all.size());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    auto val = [&](const char*) { return argv[++i]; };
    if (std::strcmp(argv[i], "--seconds") == 0) o.seconds = std::atof(val(""));
    else if (std::strcmp(argv[i], "--threads") == 0)
      o.threads = static_cast<unsigned>(std::atoi(val("")));
    else if (std::strcmp(argv[i], "--keys") == 0)
      o.keys = static_cast<std::uint64_t>(std::atoll(val("")));
    else if (std::strcmp(argv[i], "--ops-per-burst") == 0)
      o.ops_per_burst = std::atoi(val(""));
  }
  if (o.threads * static_cast<unsigned>(o.ops_per_burst) > Checker::kMaxWindow) {
    std::fprintf(stderr, "threads*ops_per_burst must be <= %zu\n",
                 Checker::kMaxWindow);
    return 2;
  }
  if (o.keys > 64) o.keys = 64;

  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t seed = 0, checked = 0;
  while (std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
             .count() < o.seconds) {
    ++seed;
    if (!fuzz_set_burst(seed, o)) return 1;
    if (!fuzz_map_burst(seed, o)) return 1;
    checked += 2;
  }
  std::printf("fuzz_lincheck: %llu histories checked, all linearizable\n",
              static_cast<unsigned long long>(checked));
  return 0;
}
