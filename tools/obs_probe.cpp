// Observability probe: runs a short instrumented workload on a trace+heatmap
// enabled EFRB tree and writes the machine-readable artifacts the obs layer
// produces — a schema-versioned metrics document (obs/metrics.hpp, including
// the v2 "timeseries" and "heatmap" sections) and a Chrome trace-event JSON
// (obs/trace.hpp). CI (scripts/check.sh) runs this and validates the files;
// it is also the quickest way to eyeball a capture in chrome://tracing or
// Perfetto.
//
// Usage: obs_probe [--metrics <path>] [--trace <path>]
//                  [--ms N | --duration N] [--interval N] [--threads N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/efrb_tree.hpp"
#include "obs/heatmap.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "workload/runner.hpp"

namespace {

using Key = std::uint64_t;

/// Trace + heatmap in one instrumented run: statically fans every hook out
/// to both installed consumers. kTrackKeys makes the tree stamp operation
/// keys (core/op_context.hpp), which the heatmap buckets and the trace
/// ignores.
struct ProbeTraits {
  static constexpr bool kCountStats = true;
  static constexpr bool kSearchHelpsMarked = false;
  static constexpr bool kTrackKeys = true;

  static void on_cas(efrb::CasStep s, bool ok, const void* node, unsigned tid,
                     std::uint64_t key) {
    efrb::obs::TraceTraits::on_cas(s, ok, node, tid);
    efrb::obs::HeatmapTraits::on_cas(s, ok, node, tid, key);
  }
  static void at(efrb::HookPoint p, unsigned tid, std::uint64_t key) {
    efrb::obs::TraceTraits::at(p, tid);
    efrb::obs::HeatmapTraits::at(p, tid, key);
  }
};

using ProbedTree = efrb::EfrbTreeSet<Key, std::less<Key>, efrb::EpochReclaimer,
                                     ProbeTraits>;

struct Options {
  std::string metrics_path = "obs_metrics.json";
  std::string trace_path = "obs_trace.json";
  long ms = 50;
  long interval_ms = 10;
  std::size_t threads = 4;
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "obs_probe: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--metrics") == 0) {
      opt.metrics_path = next();
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      opt.trace_path = next();
    } else if (std::strcmp(argv[i], "--ms") == 0 ||
               std::strcmp(argv[i], "--duration") == 0) {
      opt.ms = std::atol(next());
    } else if (std::strcmp(argv[i], "--interval") == 0) {
      opt.interval_ms = std::atol(next());
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      opt.threads = static_cast<std::size_t>(std::atol(next()));
    } else {
      std::fprintf(stderr,
                   "usage: obs_probe [--metrics <path>] [--trace <path>] "
                   "[--ms N | --duration N] [--interval N] [--threads N]\n");
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  efrb::WorkloadConfig cfg;
  cfg.threads = opt.threads;
  cfg.key_range = 1 << 12;  // small range so helping/retries actually fire
  cfg.mix = efrb::kUpdateHeavy;
  cfg.zipf = true;  // localized contention: the heatmap has something to show
  cfg.duration = std::chrono::milliseconds(std::max(10L, opt.ms));

  efrb::obs::TraceRegistry registry;
  efrb::obs::TraceTraits::install(&registry);
  efrb::obs::KeyHeatmap heatmap(cfg.key_range);
  efrb::obs::HeatmapTraits::install(&heatmap);

  ProbedTree tree;
  efrb::prefill(tree, cfg.key_range, cfg.prefill_fraction, cfg.seed);

  efrb::obs::MetricsPoller poller(
      std::chrono::milliseconds(std::max(1L, opt.interval_ms)));
  poller.set_sources({
      {},  // ops source is wired by run_workload
      [&tree] { return tree.stats(); },
      [&tree] { return tree.reclaimer().gauges(); },
  });

  efrb::LatencySamples latency;
  const efrb::WorkloadResult result =
      efrb::run_workload(tree, cfg, &latency, &registry, &poller);

  efrb::obs::TraceTraits::reset();
  efrb::obs::HeatmapTraits::reset();

  const efrb::TreeStats stats = tree.stats();
  const efrb::ReclaimGauges gauges = tree.reclaimer().gauges();
  const std::vector<efrb::obs::PollSample> samples = poller.samples();

  efrb::obs::MetricsDocument doc("obs_probe");
  doc.add_cell("efrb-tree/probed", cfg, result, &stats, &gauges, &latency,
               &samples, &heatmap);
  if (!doc.write(opt.metrics_path)) {
    std::fprintf(stderr, "obs_probe: FAILED to write %s\n",
                 opt.metrics_path.c_str());
    return 1;
  }
  if (!registry.write_chrome_trace(opt.trace_path)) {
    std::fprintf(stderr, "obs_probe: FAILED to write %s\n",
                 opt.trace_path.c_str());
    return 1;
  }

  std::uint64_t events = 0;
  for (unsigned tid = 0; tid < registry.max_tids(); ++tid) {
    events += registry.snapshot(tid).size();
  }
  std::printf("obs_probe: %llu ops, %llu retained trace events "
              "(%llu recorded w/o tid), latency samples %llu\n",
              static_cast<unsigned long long>(result.total_ops()),
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(registry.dropped_no_tid()),
              static_cast<unsigned long long>(latency.total_count()));
  std::printf("obs_probe: %llu poller samples (%llu dropped), heatmap [%s]\n",
              static_cast<unsigned long long>(poller.samples_pushed()),
              static_cast<unsigned long long>(poller.samples_dropped()),
              heatmap.strip().c_str());
  std::printf("obs_probe: metrics -> %s\n", opt.metrics_path.c_str());
  std::printf("obs_probe: trace   -> %s\n", opt.trace_path.c_str());
  return 0;
}
