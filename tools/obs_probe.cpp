// Observability probe: runs a short instrumented workload on a trace-enabled
// EFRB tree and writes the two machine-readable artifacts the obs layer
// produces — a schema-versioned metrics document (obs/metrics.hpp) and a
// Chrome trace-event JSON (obs/trace.hpp). CI (scripts/check.sh) runs this
// and validates both files; it is also the quickest way to eyeball a capture
// in chrome://tracing or Perfetto.
//
// Usage: obs_probe [--metrics <path>] [--trace <path>] [--ms N] [--threads N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/efrb_tree.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "workload/runner.hpp"

namespace {

using Key = std::uint64_t;
using TracedTree = efrb::EfrbTreeSet<Key, std::less<Key>, efrb::EpochReclaimer,
                                     efrb::obs::TraceTraits>;

struct Options {
  std::string metrics_path = "obs_metrics.json";
  std::string trace_path = "obs_trace.json";
  long ms = 50;
  std::size_t threads = 4;
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "obs_probe: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--metrics") == 0) {
      opt.metrics_path = next();
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      opt.trace_path = next();
    } else if (std::strcmp(argv[i], "--ms") == 0) {
      opt.ms = std::atol(next());
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      opt.threads = static_cast<std::size_t>(std::atol(next()));
    } else {
      std::fprintf(stderr,
                   "usage: obs_probe [--metrics <path>] [--trace <path>] "
                   "[--ms N] [--threads N]\n");
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  efrb::WorkloadConfig cfg;
  cfg.threads = opt.threads;
  cfg.key_range = 1 << 12;  // small range so helping/retries actually fire
  cfg.mix = efrb::kUpdateHeavy;
  cfg.duration = std::chrono::milliseconds(std::max(10L, opt.ms));

  efrb::obs::TraceRegistry registry;
  efrb::obs::TraceTraits::install(&registry);

  TracedTree tree;
  efrb::prefill(tree, cfg.key_range, cfg.prefill_fraction, cfg.seed);
  efrb::LatencySamples latency;
  const efrb::WorkloadResult result =
      efrb::run_workload(tree, cfg, &latency, &registry);

  efrb::obs::TraceTraits::reset();

  const efrb::TreeStats stats = tree.stats();
  const efrb::ReclaimGauges gauges = tree.reclaimer().gauges();

  efrb::obs::MetricsDocument doc("obs_probe");
  doc.add_cell("efrb-tree/traced", cfg, result, &stats, &gauges, &latency);
  if (!doc.write(opt.metrics_path)) {
    std::fprintf(stderr, "obs_probe: FAILED to write %s\n",
                 opt.metrics_path.c_str());
    return 1;
  }
  if (!registry.write_chrome_trace(opt.trace_path)) {
    std::fprintf(stderr, "obs_probe: FAILED to write %s\n",
                 opt.trace_path.c_str());
    return 1;
  }

  std::uint64_t events = 0;
  for (unsigned tid = 0; tid < registry.max_tids(); ++tid) {
    events += registry.snapshot(tid).size();
  }
  std::printf("obs_probe: %llu ops, %llu retained trace events "
              "(%llu recorded w/o tid), latency samples %llu\n",
              static_cast<unsigned long long>(result.total_ops()),
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(registry.dropped_no_tid()),
              static_cast<unsigned long long>(latency.total_count()));
  std::printf("obs_probe: metrics -> %s\n", opt.metrics_path.c_str());
  std::printf("obs_probe: trace   -> %s\n", opt.trace_path.c_str());
  return 0;
}
