// Observability probe: runs a short instrumented workload on a fully
// instrumented EFRB tree (trace + heatmap + causal help attribution +
// liveness watchdog + flight recorder) and writes every machine-readable
// artifact the obs layer produces:
//   * a schema-versioned metrics document (obs/metrics.hpp, v3 — includes
//     the "causality" cell and the self/helper-completed latency split),
//   * a Chrome trace-event JSON with help-flow arrows (obs/causal.hpp),
//   * a Prometheus text exposition via --prom (parity with the bench
//     binaries' shared flag),
//   * a flight-recorder dump via --flight (decodable with efrb_postmortem).
// CI (scripts/check.sh) runs this and validates the files; --abort makes
// the probe kill itself mid-flight after the workload so the check's
// postmortem stage can assert the crash dump path works end to end.
//
// Usage: obs_probe [--metrics <path>] [--trace <path>] [--prom <path>]
//                  [--flight <path>] [--abort]
//                  [--ms N | --duration N] [--interval N] [--threads N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/efrb_tree.hpp"
#include "obs/causal.hpp"
#include "obs/flightrec.hpp"
#include "obs/heatmap.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/prom.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "workload/runner.hpp"

namespace {

using Key = std::uint64_t;

/// Every obs consumer in one instrumented run: statically fans each hook out
/// to all installed sinks. kTrackKeys makes the tree stamp operation keys
/// (core/op_context.hpp) for the heatmap; kCausalTrace turns on the owner
/// stamp + progress slots, routing help events through the 4-argument at()
/// into the causal registry and the flight recorder.
struct ProbeTraits {
  static constexpr bool kCountStats = true;
  static constexpr bool kSearchHelpsMarked = false;
  static constexpr bool kTrackKeys = true;
  static constexpr bool kCausalTrace = true;

  static void on_cas(efrb::CasStep s, bool ok, const void* node, unsigned tid,
                     std::uint64_t key) {
    efrb::obs::TraceTraits::on_cas(s, ok, node, tid);
    efrb::obs::HeatmapTraits::on_cas(s, ok, node, tid, key);
    efrb::obs::FlightTraits::on_cas(s, ok, node, tid);
  }
  static void at(efrb::HookPoint p, unsigned tid, std::uint64_t key) {
    efrb::obs::TraceTraits::at(p, tid);
    efrb::obs::HeatmapTraits::at(p, tid, key);
    efrb::obs::FlightTraits::at(p, tid);
    efrb::obs::ProfileTraits::at(p, tid, key);
  }
  /// Help-path overload (hooks::emit_help): help points arrive here only,
  /// never through the 3-argument at(), so nothing double-records.
  static void at(efrb::HookPoint p, unsigned tid, std::uint64_t key,
                 std::uint64_t owner) {
    efrb::obs::CausalTraits::at(p, tid, key, owner);
    efrb::obs::HeatmapTraits::at(p, tid, key);
    efrb::obs::FlightTraits::at(p, tid, key, owner);
    efrb::obs::ProfileTraits::at(p, tid, key);
  }
  /// Phase scopes (hooks::emit_phase): reclamation / pool_alloc attribution
  /// from the protocol's PhaseScope seams, consumed by the profiler only.
  static void phase(bool enter, efrb::Phase ph, unsigned tid) {
    efrb::obs::ProfileTraits::phase(enter, ph, tid);
  }
};

using ProbedTree = efrb::EfrbTreeSet<Key, std::less<Key>, efrb::EpochReclaimer,
                                     ProbeTraits>;

struct Options {
  std::string metrics_path = "obs_metrics.json";
  std::string trace_path = "obs_trace.json";
  std::string prom_path;    // empty = no exposition output
  std::string flight_path;  // empty = no flight dump
  bool abort_after_run = false;
  bool profile = false;  // attach the phase profiler + perf counters
  long ms = 50;
  long interval_ms = 10;
  std::size_t threads = 4;
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "obs_probe: %s needs a value\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--metrics") == 0) {
      opt.metrics_path = next();
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      opt.trace_path = next();
    } else if (std::strcmp(argv[i], "--prom") == 0) {
      opt.prom_path = next();
    } else if (std::strcmp(argv[i], "--flight") == 0) {
      opt.flight_path = next();
    } else if (std::strcmp(argv[i], "--abort") == 0) {
      opt.abort_after_run = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      opt.profile = true;
    } else if (std::strcmp(argv[i], "--ms") == 0 ||
               std::strcmp(argv[i], "--duration") == 0) {
      opt.ms = std::atol(next());
    } else if (std::strcmp(argv[i], "--interval") == 0) {
      opt.interval_ms = std::atol(next());
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      opt.threads = static_cast<std::size_t>(std::atol(next()));
    } else {
      std::fprintf(
          stderr,
          "usage: obs_probe [--metrics <path>] [--trace <path>] "
          "[--prom <path>] [--flight <path>] [--abort] [--profile] "
          "[--ms N | --duration N] [--interval N] [--threads N]\n");
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  efrb::WorkloadConfig cfg;
  cfg.threads = opt.threads;
  cfg.key_range = 1 << 12;  // small range so helping/retries actually fire
  cfg.mix = efrb::kUpdateHeavy;
  cfg.zipf = true;  // localized contention: the heatmap has something to show
  cfg.duration = std::chrono::milliseconds(std::max(10L, opt.ms));

  efrb::obs::TraceRegistry registry;
  efrb::obs::TraceTraits::install(&registry);
  efrb::obs::KeyHeatmap heatmap(cfg.key_range);
  efrb::obs::HeatmapTraits::install(&heatmap);
  efrb::obs::CausalRegistry causal(registry.max_tids(), &registry);
  efrb::obs::CausalTraits::install(&causal, &registry);
  efrb::obs::FlightRecorder flight;
  efrb::obs::FlightTraits::install(&flight);
  if (opt.abort_after_run && !opt.flight_path.empty()) {
    efrb::obs::install_flight_handler(&flight, opt.flight_path.c_str());
  }

  ProbedTree tree;
  efrb::prefill(tree, cfg.key_range, cfg.prefill_fraction, cfg.seed);

  // Installed after prefill so the profiler's events_outside_op count
  // describes only the measured window (the runner opens the op windows).
  efrb::obs::PhaseProfiler profiler;
  if (opt.profile) efrb::obs::ProfileTraits::install(&profiler);

  // Live gauge mirrors for the flight recorder: ReclaimGauges is a snapshot
  // struct, so the poller's gauge source refreshes these atomics each
  // interval — a crash dump then carries last-poll reclaimer state.
  static std::atomic<std::uint64_t> live_retired{0};
  static std::atomic<std::uint64_t> live_freed{0};
  static std::atomic<std::uint64_t> live_backlog{0};
  flight.add_gauge("reclaim_retired", &live_retired);
  flight.add_gauge("reclaim_freed", &live_freed);
  flight.add_gauge("reclaim_backlog", &live_backlog);
  // Profile mirror: last-poll profiler totals, so a crash dump decoded by
  // efrb_postmortem shows the counter state at crash time.
  static std::atomic<std::uint64_t> live_profile_ops{0};
  static std::atomic<std::uint64_t> live_profile_cycles{0};
  static std::atomic<std::uint64_t> live_profile_available{0};
  if (opt.profile) {
    flight.add_gauge("profile_ops", &live_profile_ops);
    flight.add_gauge("profile_cycles", &live_profile_cycles);
    flight.add_gauge("profile_available", &live_profile_available);
    live_profile_available.store(
        efrb::obs::probe_perf_availability().hw ? 1 : 0,
        std::memory_order_relaxed);
  }
  flight.attach_progress(&tree.progress_table());

  efrb::obs::MetricsPoller poller(
      std::chrono::milliseconds(std::max(1L, opt.interval_ms)));
  poller.set_sources({
      {},  // ops source is wired by run_workload
      [&tree] { return tree.stats(); },
      [&tree, &profiler, profile = opt.profile] {
        const efrb::ReclaimGauges g = tree.reclaimer().gauges();
        live_retired.store(g.retired_total, std::memory_order_relaxed);
        live_freed.store(g.freed_total, std::memory_order_relaxed);
        live_backlog.store(g.backlog(), std::memory_order_relaxed);
        if (profile) {
          live_profile_ops.store(profiler.live_ops(),
                                 std::memory_order_relaxed);
          live_profile_cycles.store(profiler.live_cycles(),
                                    std::memory_order_relaxed);
        }
        return g;
      },
  });

  efrb::obs::LivenessWatchdog watchdog(
      tree.progress_table(), efrb::obs::WatchdogBudget{},
      std::chrono::milliseconds(std::max(1L, opt.interval_ms)));
  watchdog.start();

  efrb::LatencySamples latency;
  const efrb::WorkloadResult result =
      efrb::run_workload(tree, cfg, &latency, &registry, &poller, &causal,
                         opt.profile ? &profiler : nullptr);

  watchdog.stop();

  if (opt.abort_after_run) {
    // The postmortem path: die the way a tripped EFRB_ASSERT would, leaving
    // only the flight recorder's signal-handler dump behind.
    std::fflush(stdout);
    std::abort();
  }

  efrb::obs::TraceTraits::reset();
  efrb::obs::HeatmapTraits::reset();
  efrb::obs::CausalTraits::reset();
  efrb::obs::FlightTraits::reset();
  efrb::obs::ProfileTraits::reset();

  const efrb::TreeStats stats = tree.stats();
  const efrb::ReclaimGauges gauges = tree.reclaimer().gauges();
  const std::vector<efrb::obs::PollSample> samples = poller.samples();
  const efrb::obs::ProfileSnapshot profile = profiler.snapshot();

  efrb::obs::MetricsDocument doc("obs_probe");
  doc.add_cell("efrb-tree/probed", cfg, result, &stats, &gauges, &latency,
               &samples, &heatmap, &causal,
               opt.profile ? &profile : nullptr);
  if (!doc.write(opt.metrics_path)) {
    std::fprintf(stderr, "obs_probe: FAILED to write %s\n",
                 opt.metrics_path.c_str());
    return 1;
  }
  // The trace export now carries the help-flow arrows: every event the
  // TraceRegistry retained plus an s/f pair per attributed help edge.
  if (!efrb::obs::write_file(opt.trace_path,
                             causal.chrome_trace_with_flows(registry))) {
    std::fprintf(stderr, "obs_probe: FAILED to write %s\n",
                 opt.trace_path.c_str());
    return 1;
  }
  if (!opt.prom_path.empty()) {
    efrb::obs::PromWriter prom;
    const efrb::obs::PromWriter::Labels labels{
        {"tool", "obs_probe"},
        {"cell", "efrb-tree/probed"},
        {"threads", std::to_string(cfg.threads)},
        {"mix", std::string(efrb::mix_name(cfg.mix))},
        {"dist", cfg.zipf ? "zipf" : "uniform"},
    };
    efrb::obs::append_result_prom(prom, labels, result);
    efrb::obs::append_tree_stats_prom(prom, labels, stats);
    efrb::obs::append_gauges_prom(prom, labels, gauges);
    const std::pair<const char*, const efrb::obs::LatencyHistogram*> hists[] =
        {{"find", &latency.find},
         {"insert", &latency.insert},
         {"erase", &latency.erase},
         {"retried", &latency.retried},
         {"self_completed", &latency.self_completed},
         {"helper_completed", &latency.helper_completed}};
    for (const auto& [op, h] : hists) {
      efrb::obs::PromWriter::Labels l = labels;
      l.emplace_back("op", op);
      efrb::obs::append_histogram_prom(prom, l, *h);
    }
    const std::vector<efrb::obs::WindowRates> rates =
        efrb::obs::window_rates(samples);
    if (!rates.empty()) {
      efrb::obs::append_window_prom(prom, labels, rates.back());
    }
    efrb::obs::append_heatmap_prom(prom, labels, heatmap);
    efrb::obs::append_causality_prom(prom, labels, causal);
    efrb::obs::append_watchdog_prom(prom, labels, watchdog);
    if (opt.profile) efrb::obs::append_profile_prom(prom, labels, profile);
    if (!prom.write(opt.prom_path)) {
      std::fprintf(stderr, "obs_probe: FAILED to write %s\n",
                   opt.prom_path.c_str());
      return 1;
    }
    std::printf("obs_probe: prom    -> %s\n", opt.prom_path.c_str());
  }
  if (!opt.flight_path.empty()) {
    if (!flight.dump_to_path(opt.flight_path.c_str())) {
      std::fprintf(stderr, "obs_probe: FAILED to write %s\n",
                   opt.flight_path.c_str());
      return 1;
    }
    std::printf("obs_probe: flight  -> %s\n", opt.flight_path.c_str());
  }

  std::uint64_t events = 0;
  for (unsigned tid = 0; tid < registry.max_tids(); ++tid) {
    events += registry.snapshot(tid).size();
  }
  std::printf("obs_probe: %llu ops, %llu retained trace events "
              "(%llu recorded w/o tid), latency samples %llu\n",
              static_cast<unsigned long long>(result.total_ops()),
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(registry.dropped_no_tid()),
              static_cast<unsigned long long>(latency.total_count()));
  std::printf("obs_probe: %llu poller samples (%llu dropped), heatmap [%s]\n",
              static_cast<unsigned long long>(poller.samples_pushed()),
              static_cast<unsigned long long>(poller.samples_dropped()),
              heatmap.strip().c_str());
  std::printf("obs_probe: %llu helps attributed (%llu unattributed), "
              "stall events %llu\n",
              static_cast<unsigned long long>(causal.total_helps()),
              static_cast<unsigned long long>(causal.dropped_unattributed()),
              static_cast<unsigned long long>(watchdog.stall_events_total()));
  if (opt.profile) {
    // Top phase by attributed cost, for the one-line summary.
    std::size_t top = 0;
    for (std::size_t i = 1; i < efrb::kNumPhases; ++i) {
      if (profile.phases[i].cycles > profile.phases[top].cycles) top = i;
    }
    std::printf("obs_probe: profile %llu ops, %.1f %s/op, hw=%s sw=%s, "
                "top phase %s (%.1f%%)\n",
                static_cast<unsigned long long>(profile.ops),
                profile.cycles_per_op(), profile.source.c_str(),
                profile.available ? "yes" : "no",
                profile.sw_available ? "yes" : "no",
                efrb::to_string(static_cast<efrb::Phase>(top)),
                100.0 * profile.phase_share(top));
    if (!profile.available && !profile.unavailable_reason.empty()) {
      std::printf("obs_probe: profile hw counters off: %s\n",
                  profile.unavailable_reason.c_str());
    }
  }
  std::printf("obs_probe: metrics -> %s\n", opt.metrics_path.c_str());
  std::printf("obs_probe: trace   -> %s\n", opt.trace_path.c_str());
  return 0;
}
