// Snapshot comparator: diff two efrb-metrics documents (BENCH_*.json or any
// --json output with schema >= 2) and flag perf regressions.
//
// Usage: efrb_perfdiff [options] <baseline.json> <candidate.json>
//   --threshold PCT      relative regression gate in percent (default 15;
//                        halved automatically when both snapshots record
//                        meta.repeats >= 3)
//   --allow-cross-host   compare snapshots from different hosts anyway
//   --verbose            also print metrics inside the noise band
//
// Exit codes: 0 = compared, no regression; 1 = at least one regression;
// 2 = usage / IO / parse / schema error; 3 = cross-host refusal.
//
// The comparison engine lives in src/obs/perfdiff.hpp (unit-tested); this
// file is only argument handling and file IO.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "obs/json_parse.hpp"
#include "obs/perfdiff.hpp"

namespace {

std::optional<std::string> slurp(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threshold PCT] [--allow-cross-host] [--verbose] "
               "<baseline.json> <candidate.json>\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  efrb::obs::PerfDiffOptions opts;
  bool verbose = false;
  const char* path_a = nullptr;
  const char* path_b = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--threshold") == 0 && i + 1 < argc) {
      opts.rel_threshold = std::atof(argv[++i]) / 100.0;
      if (opts.rel_threshold <= 0) {
        std::fprintf(stderr, "efrb_perfdiff: bad --threshold value\n");
        return 2;
      }
    } else if (std::strcmp(arg, "--allow-cross-host") == 0) {
      opts.allow_cross_host = true;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      usage(argv[0]);
      return 0;
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else if (path_a == nullptr) {
      path_a = arg;
    } else if (path_b == nullptr) {
      path_b = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path_a == nullptr || path_b == nullptr) return usage(argv[0]);

  efrb::obs::JsonValue docs[2];
  const char* paths[2] = {path_a, path_b};
  for (int i = 0; i < 2; ++i) {
    std::optional<std::string> text = slurp(paths[i]);
    if (!text) {
      std::fprintf(stderr, "efrb_perfdiff: cannot read %s\n", paths[i]);
      return 2;
    }
    std::string err;
    std::optional<efrb::obs::JsonValue> parsed =
        efrb::obs::parse_json(*text, &err);
    if (!parsed) {
      std::fprintf(stderr, "efrb_perfdiff: %s: %s\n", paths[i], err.c_str());
      return 2;
    }
    docs[i] = std::move(*parsed);
  }

  const efrb::obs::PerfDiffReport rep =
      efrb::obs::perfdiff(docs[0], docs[1], opts);
  if (!rep.ok) {
    std::fprintf(stderr, "efrb_perfdiff: %s\n", rep.error.c_str());
    return rep.cross_host_refused ? 3 : 2;
  }
  std::fputs(efrb::obs::render_perfdiff(rep, verbose).c_str(), stdout);
  return rep.regressions() > 0 ? 1 : 0;
}
