// Sequential semantics of the EFRB tree: the dictionary contract of §3
// (insert returns false on duplicates, delete returns false on absent keys,
// find reports membership), plus the map extension, ordered queries and
// traversal. Typed across reclamation policies and key types.
#include <gtest/gtest.h>

#include "leak_check_opt_out.hpp"  // LeakyReclaimer / NaiveCasBst leak by design

#include <algorithm>
#include <climits>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/efrb_tree.hpp"
#include "reclaim/reclaimer.hpp"
#include "util/rng.hpp"

namespace efrb {
namespace {

template <typename Reclaimer>
class EfrbSequentialTest : public ::testing::Test {
 protected:
  EfrbTreeSet<int, std::less<int>, Reclaimer> tree_;
};

using Reclaimers = ::testing::Types<LeakyReclaimer, EpochReclaimer>;
TYPED_TEST_SUITE(EfrbSequentialTest, Reclaimers);

TYPED_TEST(EfrbSequentialTest, EmptyTreeBehaviour) {
  EXPECT_TRUE(this->tree_.empty());
  EXPECT_EQ(this->tree_.size(), 0u);
  EXPECT_FALSE(this->tree_.contains(42));
  EXPECT_FALSE(this->tree_.erase(42));
  EXPECT_EQ(this->tree_.min_key(), std::nullopt);
  EXPECT_EQ(this->tree_.max_key(), std::nullopt);
}

TYPED_TEST(EfrbSequentialTest, InsertThenFind) {
  EXPECT_TRUE(this->tree_.insert(10));
  EXPECT_TRUE(this->tree_.contains(10));
  EXPECT_FALSE(this->tree_.contains(9));
  EXPECT_FALSE(this->tree_.contains(11));
  EXPECT_FALSE(this->tree_.empty());
}

TYPED_TEST(EfrbSequentialTest, DuplicateInsertReturnsFalse) {
  EXPECT_TRUE(this->tree_.insert(5));
  EXPECT_FALSE(this->tree_.insert(5));
  EXPECT_EQ(this->tree_.size(), 1u);
}

TYPED_TEST(EfrbSequentialTest, EraseRemovesExactlyTheKey) {
  for (int k : {3, 1, 4, 1, 5, 9, 2, 6}) this->tree_.insert(k);
  EXPECT_TRUE(this->tree_.erase(4));
  EXPECT_FALSE(this->tree_.contains(4));
  EXPECT_FALSE(this->tree_.erase(4));  // second time: absent
  for (int k : {3, 1, 5, 9, 2, 6}) EXPECT_TRUE(this->tree_.contains(k)) << k;
}

TYPED_TEST(EfrbSequentialTest, InsertEraseSingleKeyRepeatedly) {
  for (int round = 0; round < 50; ++round) {
    EXPECT_TRUE(this->tree_.insert(7));
    EXPECT_TRUE(this->tree_.contains(7));
    EXPECT_TRUE(this->tree_.erase(7));
    EXPECT_FALSE(this->tree_.contains(7));
  }
  EXPECT_TRUE(this->tree_.empty());
  EXPECT_TRUE(this->tree_.validate().ok);
}

TYPED_TEST(EfrbSequentialTest, DrainToEmptyRestoresInitialShape) {
  for (int k = 0; k < 32; ++k) this->tree_.insert(k);
  for (int k = 0; k < 32; ++k) EXPECT_TRUE(this->tree_.erase(k));
  EXPECT_TRUE(this->tree_.empty());
  // Fig. 6(a): empty tree is root(∞₂) with leaves ∞₁, ∞₂ — one internal node.
  const auto v = this->tree_.validate();
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.internals, 1u);
  EXPECT_EQ(v.real_leaves, 0u);
}

TYPED_TEST(EfrbSequentialTest, AscendingInsertionStaysValid) {
  for (int k = 0; k < 500; ++k) ASSERT_TRUE(this->tree_.insert(k));
  const auto v = this->tree_.validate();
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.real_leaves, 500u);
  // Leaf-oriented invariant: #internals = #leaves - 1 (counting sentinels).
  EXPECT_EQ(v.internals, (500u + 2u) - 1u);
}

TYPED_TEST(EfrbSequentialTest, DescendingInsertionStaysValid) {
  for (int k = 499; k >= 0; --k) ASSERT_TRUE(this->tree_.insert(k));
  const auto v = this->tree_.validate();
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.real_leaves, 500u);
}

TYPED_TEST(EfrbSequentialTest, MinMaxTrackUpdates) {
  this->tree_.insert(50);
  this->tree_.insert(10);
  this->tree_.insert(90);
  EXPECT_EQ(this->tree_.min_key(), std::optional<int>(10));
  EXPECT_EQ(this->tree_.max_key(), std::optional<int>(90));
  this->tree_.erase(10);
  EXPECT_EQ(this->tree_.min_key(), std::optional<int>(50));
  this->tree_.erase(90);
  EXPECT_EQ(this->tree_.max_key(), std::optional<int>(50));
  this->tree_.erase(50);
  EXPECT_EQ(this->tree_.min_key(), std::nullopt);
}

TYPED_TEST(EfrbSequentialTest, ForEachVisitsInOrder) {
  const std::vector<int> keys = {42, 17, 99, 3, 64, 50, 8};
  for (int k : keys) this->tree_.insert(k);
  std::vector<int> visited;
  this->tree_.for_each(
      [&](const int& k, const auto&) { visited.push_back(k); });
  std::vector<int> expected(keys);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(visited, expected);
}

TYPED_TEST(EfrbSequentialTest, NegativeAndExtremeKeys) {
  for (int k : {INT_MIN, -100, 0, 100, INT_MAX}) {
    EXPECT_TRUE(this->tree_.insert(k));
  }
  for (int k : {INT_MIN, -100, 0, 100, INT_MAX}) {
    EXPECT_TRUE(this->tree_.contains(k));
  }
  EXPECT_EQ(this->tree_.min_key(), std::optional<int>(INT_MIN));
  EXPECT_EQ(this->tree_.max_key(), std::optional<int>(INT_MAX));
  EXPECT_TRUE(this->tree_.validate().ok);
}

TYPED_TEST(EfrbSequentialTest, RandomAgainstStdSetOracle) {
  std::set<int> oracle;
  Xoshiro256 rng(2024);
  for (int i = 0; i < 10000; ++i) {
    const int k = static_cast<int>(rng.next_below(300));
    switch (rng.next_below(3)) {
      case 0:
        EXPECT_EQ(this->tree_.insert(k), oracle.insert(k).second);
        break;
      case 1:
        EXPECT_EQ(this->tree_.erase(k), oracle.erase(k) != 0);
        break;
      default:
        EXPECT_EQ(this->tree_.contains(k), oracle.count(k) != 0);
    }
  }
  EXPECT_EQ(this->tree_.size(), oracle.size());
  std::vector<int> visited;
  this->tree_.for_each([&](const int& k, const auto&) { visited.push_back(k); });
  EXPECT_TRUE(std::equal(visited.begin(), visited.end(), oracle.begin(),
                         oracle.end()));
  EXPECT_TRUE(this->tree_.validate().ok);
}

// ---------------------------------------------------------------------------
// Generic key types and custom comparators.
// ---------------------------------------------------------------------------

TEST(EfrbKeyGenericityTest, StringKeys) {
  EfrbTreeSet<std::string> tree;
  EXPECT_TRUE(tree.insert("banana"));
  EXPECT_TRUE(tree.insert("apple"));
  EXPECT_TRUE(tree.insert("cherry"));
  EXPECT_FALSE(tree.insert("apple"));
  EXPECT_TRUE(tree.contains("banana"));
  EXPECT_TRUE(tree.erase("banana"));
  EXPECT_FALSE(tree.contains("banana"));
  EXPECT_EQ(tree.min_key(), std::optional<std::string>("apple"));
  EXPECT_EQ(tree.max_key(), std::optional<std::string>("cherry"));
}

TEST(EfrbKeyGenericityTest, ReverseComparator) {
  EfrbTreeSet<int, std::greater<int>> tree;
  for (int k : {1, 5, 3}) tree.insert(k);
  // With greater<>, "min_key" is the first in tree order = the largest int.
  EXPECT_EQ(tree.min_key(), std::optional<int>(5));
  EXPECT_EQ(tree.max_key(), std::optional<int>(1));
  EXPECT_TRUE(tree.validate().ok);
}

TEST(EfrbKeyGenericityTest, UnsignedKeys) {
  EfrbTreeSet<std::uint64_t> tree;
  tree.insert(0);
  tree.insert(~std::uint64_t{0});
  EXPECT_TRUE(tree.contains(0));
  EXPECT_TRUE(tree.contains(~std::uint64_t{0}));
  EXPECT_EQ(tree.size(), 2u);
}

// ---------------------------------------------------------------------------
// Map semantics (auxiliary data in leaves, §3).
// ---------------------------------------------------------------------------

TEST(EfrbMapTest, GetReturnsStoredValue) {
  EfrbTreeMap<int, std::string> map;
  EXPECT_TRUE(map.insert(1, "one"));
  EXPECT_TRUE(map.insert(2, "two"));
  EXPECT_EQ(map.get(1), std::optional<std::string>("one"));
  EXPECT_EQ(map.get(2), std::optional<std::string>("two"));
  EXPECT_EQ(map.get(3), std::nullopt);
}

TEST(EfrbMapTest, InsertDoesNotOverwrite) {
  EfrbTreeMap<int, int> map;
  EXPECT_TRUE(map.insert(7, 100));
  EXPECT_FALSE(map.insert(7, 200));
  EXPECT_EQ(map.get(7), std::optional<int>(100));
}

TEST(EfrbMapTest, InsertOrAssignOverwrites) {
  EfrbTreeMap<int, int> map;
  EXPECT_TRUE(map.insert_or_assign(7, 100));   // new key
  EXPECT_FALSE(map.insert_or_assign(7, 200));  // replaced
  EXPECT_EQ(map.get(7), std::optional<int>(200));
  EXPECT_EQ(map.size(), 1u);
  EXPECT_TRUE(map.validate().ok);
}

TEST(EfrbMapTest, EraseDropsValue) {
  EfrbTreeMap<int, int> map;
  map.insert(1, 11);
  EXPECT_TRUE(map.erase(1));
  EXPECT_EQ(map.get(1), std::nullopt);
}

TEST(EfrbMapTest, ValueSurvivesNeighbourChurn) {
  EfrbTreeMap<int, int> map;
  map.insert(500, 5000);
  for (int i = 0; i < 200; ++i) {
    map.insert(i, i);
    map.insert(1000 - i, i);
  }
  for (int i = 0; i < 200; i += 2) {
    map.erase(i);
    map.erase(1000 - i);
  }
  EXPECT_EQ(map.get(500), std::optional<int>(5000));
  EXPECT_TRUE(map.validate().ok);
}

TEST(EfrbMapTest, MoveOnlyFriendlyValueTypes) {
  EfrbTreeMap<int, std::vector<int>> map;
  map.insert(1, std::vector<int>{1, 2, 3});
  auto v = map.get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->size(), 3u);
}

// ---------------------------------------------------------------------------
// Structural validation of validate() itself.
// ---------------------------------------------------------------------------

TEST(EfrbValidateTest, CountsAndHeight) {
  EfrbTreeSet<int> tree;
  const auto v0 = tree.validate();
  EXPECT_TRUE(v0.ok);
  EXPECT_EQ(v0.internals, 1u);
  EXPECT_EQ(v0.real_leaves, 0u);
  EXPECT_EQ(v0.height, 2u);  // root + leaves

  for (int k = 0; k < 100; ++k) tree.insert(k);
  const auto v = tree.validate();
  EXPECT_TRUE(v.ok);
  EXPECT_EQ(v.real_leaves, 100u);
  EXPECT_EQ(v.internals, 101u);
  EXPECT_GE(v.height, 8u);  // at least ceil(log2) + sentinel levels
}

TEST(EfrbValidateTest, RandomShapeHasLogarithmicExpectedHeight) {
  EfrbTreeSet<int> tree;
  Xoshiro256 rng(7);
  int inserted = 0;
  while (inserted < 4096) inserted += tree.insert(static_cast<int>(rng.next())) ? 1 : 0;
  const auto v = tree.validate();
  EXPECT_TRUE(v.ok);
  // Random BSTs have expected height ~ 2.99 log2(n) (§6 cites [19]); allow
  // generous slack while still catching degenerate (linear) shapes.
  EXPECT_LT(v.height, 60u);
}

}  // namespace
}  // namespace efrb
