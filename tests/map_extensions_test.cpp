// Tests for the map extensions beyond the paper: replace() (atomic
// compare-and-replace on a value) and get_or_insert(). The concurrent
// replace() test is the classic CAS-counter: the final value must equal the
// number of successful replacements — any lost or phantom update breaks the
// equality.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "core/efrb_tree.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

TEST(ReplaceTest, SequentialSemantics) {
  EfrbTreeMap<int, int> m;
  EXPECT_FALSE(m.replace(1, 0, 10)) << "absent key";
  m.insert(1, 5);
  EXPECT_FALSE(m.replace(1, 4, 10)) << "wrong expected value";
  EXPECT_EQ(m.get(1), std::optional<int>(5));
  EXPECT_TRUE(m.replace(1, 5, 10));
  EXPECT_EQ(m.get(1), std::optional<int>(10));
  EXPECT_FALSE(m.replace(1, 5, 99)) << "stale expected value";
  EXPECT_EQ(m.get(1), std::optional<int>(10));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.validate().ok);
}

TEST(ReplaceTest, StringValues) {
  EfrbTreeMap<int, std::string> m;
  m.insert(7, "alpha");
  EXPECT_TRUE(m.replace(7, "alpha", "beta"));
  EXPECT_FALSE(m.replace(7, "alpha", "gamma"));
  EXPECT_EQ(m.get(7), std::optional<std::string>("beta"));
}

TEST(ReplaceTest, ConcurrentCasCounter) {
  // Each thread increments the value at key 0 via read + replace; the final
  // value must equal the total number of successful replacements — the
  // defining property of an atomic compare-and-swap.
  EfrbTreeMap<int, std::uint64_t> m;
  m.insert(0, 0);
  std::atomic<std::uint64_t> successes{0};
  run_threads(6, [&](std::size_t) {
    for (int i = 0; i < 2000; ++i) {
      const auto cur = m.get(0);
      ASSERT_TRUE(cur.has_value());
      if (m.replace(0, *cur, *cur + 1)) {
        successes.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  EXPECT_EQ(m.get(0), std::optional<std::uint64_t>(successes.load()));
  EXPECT_TRUE(m.validate().ok);
}

TEST(ReplaceTest, ConcurrentWithEraseNeverCorrupts) {
  // replace() racing erase/insert on the same key: any outcome is fine per
  // call, but the stored value must always be one that some thread wrote.
  EfrbTreeMap<int, std::uint64_t> m;
  constexpr std::uint64_t kTag = 0x5000000000000000ULL;
  run_threads(4, [&](std::size_t tid) {
    Xoshiro256 rng(tid + 2);
    for (int i = 0; i < 4000; ++i) {
      switch (rng.next_below(4)) {
        case 0:
          m.insert(3, kTag | rng.next_below(1000));
          break;
        case 1:
          m.erase(3);
          break;
        case 2: {
          const auto cur = m.get(3);
          if (cur.has_value()) m.replace(3, *cur, kTag | rng.next_below(1000));
          break;
        }
        default: {
          const auto v = m.get(3);
          if (v.has_value()) {
            ASSERT_EQ(*v & 0xF000000000000000ULL, kTag) << "phantom value";
          }
        }
      }
    }
  });
  EXPECT_TRUE(m.validate().ok);
}

TEST(GetOrInsertTest, SequentialSemantics) {
  EfrbTreeMap<int, int> m;
  EXPECT_EQ(m.get_or_insert(1, 100), 100);  // inserted
  EXPECT_EQ(m.get_or_insert(1, 200), 100);  // existing wins
  EXPECT_EQ(m.size(), 1u);
}

TEST(GetOrInsertTest, ConcurrentSingleWinnerPerKey) {
  // Threads race get_or_insert with distinct values; all callers for a key
  // must observe the SAME value while the key is never erased.
  EfrbTreeMap<int, std::uint64_t> m;
  constexpr int kKeys = 16;
  std::atomic<std::uint64_t> observed[kKeys] = {};
  run_threads(6, [&](std::size_t tid) {
    Xoshiro256 rng(tid + 9);
    for (int i = 0; i < 3000; ++i) {
      const int k = static_cast<int>(rng.next_below(kKeys));
      const std::uint64_t mine = (tid + 1) * 1000 + static_cast<std::uint64_t>(k);
      const std::uint64_t got = m.get_or_insert(k, mine);
      std::uint64_t expected = 0;
      if (!observed[k].compare_exchange_strong(expected, got)) {
        ASSERT_EQ(got, expected) << "two different winners for key " << k;
      }
    }
  });
  EXPECT_TRUE(m.validate().ok);
}

}  // namespace
}  // namespace efrb
