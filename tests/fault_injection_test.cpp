// The fault-injection harness (src/inject/) driven end to end against the
// tree: scripted CAS vetoes, stall gates at every protocol pause point under
// a concurrent op mix, reclaimer starvation by a frozen pinned thread,
// helping across a stalled deleter, a corruption canary proving the harness
// can detect real damage, plan shrinking, and seeded chaos schedules.
//
// Replay: every chaos assertion is wrapped in a SCOPED_TRACE carrying the
// seed, and the seed is printed unconditionally, so a failing run's log (see
// scripts/check.sh, which tees the suite's output) always contains the value
// to re-run with EFRB_FAULT_SEED=<seed>.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/debug_hooks.hpp"
#include "core/efrb_tree.hpp"
#include "inject/fault_plan.hpp"
#include "inject/fault_scheduler.hpp"
#include "leak_check_opt_out.hpp"  // LeakyReclaimer cells leak by design
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/reclaimer.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

using inject::FaultAction;
using inject::FaultKind;
using inject::FaultPlan;
using inject::FaultScheduler;
using inject::InjectTraits;

template <typename Reclaimer>
using InjectTree = EfrbTreeSet<int, std::less<int>, Reclaimer, InjectTraits>;

FaultAction stall_at(unsigned tid, HookPoint p, unsigned occurrence = 1) {
  FaultAction a;
  a.kind = FaultKind::kStall;
  a.tid = tid;
  a.point = static_cast<int>(p);
  a.occurrence = occurrence;
  return a;
}

FaultAction fail_cas(unsigned tid, CasStep s, unsigned occurrence = 1,
                     unsigned count = 1) {
  FaultAction a;
  a.kind = FaultKind::kFailCas;
  a.tid = tid;
  a.step = static_cast<int>(s);
  a.occurrence = occurrence;
  a.count = count;
  return a;
}

/// Heap object with a live-instance count, for reclaimer-visible frees.
struct Tracked {
  static inline std::atomic<int> live{0};
  Tracked() { live.fetch_add(1, std::memory_order_relaxed); }
  ~Tracked() { live.fetch_sub(1, std::memory_order_relaxed); }
};

// ---------------------------------------------------------------------------
// Stall at every pause point, full op mix running around the frozen thread.
// ---------------------------------------------------------------------------

template <typename Reclaimer>
class FaultMatrixTest : public ::testing::Test {};
using Reclaimers =
    ::testing::Types<EpochReclaimer, HazardReclaimer, LeakyReclaimer>;
TYPED_TEST_SUITE(FaultMatrixTest, Reclaimers);

TYPED_TEST(FaultMatrixTest, StallAtEveryPointUnderOpMix) {
  struct Case {
    HookPoint point;
    bool is_delete;       // victim op: erase(100) vs insert(105)
    int pre_fail_step;    // CasStep forced to fail once first, or -1
  };
  const Case cases[] = {
      {HookPoint::kAfterSearch, false, -1},
      {HookPoint::kAfterIFlag, false, -1},
      {HookPoint::kBeforeIChild, false, -1},
      {HookPoint::kBeforeIUnflag, false, -1},
      {HookPoint::kAfterDFlag, true, -1},
      {HookPoint::kBeforeMark, true, -1},
      {HookPoint::kBeforeDChild, true, -1},
      {HookPoint::kBeforeDUnflag, true, -1},
      // Contended points, reached by scripting the contention: force the
      // flag/mark CAS to lose once, then stall in the resulting loop.
      {HookPoint::kInsertRetry, false, static_cast<int>(CasStep::kIFlag)},
      {HookPoint::kDeleteRetry, true, static_cast<int>(CasStep::kDFlag)},
      {HookPoint::kBeforeBacktrack, true, static_cast<int>(CasStep::kMark)},
  };

  for (const Case& c : cases) {
    SCOPED_TRACE(std::string("stall point = ") + to_string(c.point));
    InjectTree<TypeParam> t;
    for (int k : {100, 110, 120, 130}) ASSERT_TRUE(t.insert(k));

    FaultPlan plan;
    if (c.pre_fail_step >= 0) {
      plan.actions.push_back(
          fail_cas(0, static_cast<CasStep>(c.pre_fail_step)));
    }
    plan.actions.push_back(stall_at(0, c.point));
    FaultScheduler sched(plan);

    bool victim_ret = false;
    std::thread victim([&] {
      FaultScheduler::ThreadScope scope(sched, 0);
      auto h = t.handle();
      victim_ret = c.is_delete ? h.erase(100) : h.insert(105);
    });

    ASSERT_TRUE(sched.wait_until_stalled(0)) << "victim never reached gate";

    // Full op mix on a disjoint key range while the victim holds the
    // protocol open (flag CASed, reclaimer pinned) at this exact step. The
    // mix must neither wedge nor observe an invalid structure.
    run_threads(4, [&](std::size_t tid) {
      auto h = t.handle();
      Xoshiro256 rng(tid * 31 + 7);
      for (int i = 0; i < 1500; ++i) {
        const int k = static_cast<int>(rng.next_below(64));
        switch (rng.next_below(3)) {
          case 0: h.insert(k); break;
          case 1: h.erase(k); break;
          default: h.contains(k); break;
        }
      }
    });
    EXPECT_TRUE(t.validate().ok);
    EXPECT_TRUE(sched.is_stalled(0));

    sched.release(0);
    victim.join();
    EXPECT_TRUE(victim_ret);
    EXPECT_EQ(t.contains(c.is_delete ? 100 : 105), !c.is_delete);
    EXPECT_TRUE(t.validate().ok);

    // The stall must have been scripted, not incidental.
    bool saw_stall = false;
    for (const auto& e : sched.fired()) {
      saw_stall |= e.kind == FaultKind::kStall &&
                   e.point == static_cast<int>(c.point);
    }
    EXPECT_TRUE(saw_stall);
  }
}

// ---------------------------------------------------------------------------
// Helping completes a stalled delete.
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, HelpingCompletesStalledDelete) {
  InjectTree<EpochReclaimer> t;
  for (int k : {10, 30, 50, 70}) ASSERT_TRUE(t.insert(k));

  FaultPlan plan;
  plan.actions.push_back(stall_at(0, HookPoint::kAfterDFlag));
  FaultScheduler sched(plan);

  bool victim_ret = false;
  std::thread victim([&] {
    FaultScheduler::ThreadScope scope(sched, 0);
    auto h = t.handle();
    victim_ret = h.erase(30);
  });
  ASSERT_TRUE(sched.wait_until_stalled(0));

  // The victim succeeded at dflag and is frozen before HelpDelete. A second
  // deleter of the same key must find the flagged grandparent, help the
  // stalled operation to completion, and then report the key absent.
  {
    FaultScheduler::ThreadScope scope(sched, 1);
    auto h = t.handle();
    EXPECT_FALSE(h.erase(30));
  }
  EXPECT_FALSE(t.contains(30));
  EXPECT_GE(sched.point_hits(1, HookPoint::kBeforeHelp), 1u);

  // The released victim finds its operation already completed by the helper
  // and must still report success — the delete was *its* dflag.
  sched.release(0);
  victim.join();
  EXPECT_TRUE(victim_ret);
  EXPECT_TRUE(t.validate().ok);
  EXPECT_TRUE(t.contains(10));
  EXPECT_TRUE(t.contains(50));
  EXPECT_TRUE(t.contains(70));
}

// ---------------------------------------------------------------------------
// Forced mark failure exercises the backtrack edge deterministically.
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, ForcedMarkFailureBacktracksThenSucceeds) {
  InjectTree<EpochReclaimer> t;
  for (int k : {10, 30, 50}) ASSERT_TRUE(t.insert(k));

  FaultScheduler sched(FaultPlan{{fail_cas(0, CasStep::kMark)}});
  {
    FaultScheduler::ThreadScope scope(sched, 0);
    auto h = t.handle();
    EXPECT_TRUE(h.erase(30));
  }
  EXPECT_FALSE(t.contains(30));
  EXPECT_TRUE(t.validate().ok);

  // The vetoed mark forces: backtrack CAS, delete retry, second mark.
  EXPECT_GE(sched.step_hits(0, CasStep::kMark), 2u);
  EXPECT_GE(sched.step_hits(0, CasStep::kBacktrack), 1u);
  EXPECT_GE(t.stats().backtracks, 1u);
  const auto fired = sched.fired();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, FaultKind::kFailCas);
  EXPECT_EQ(fired[0].step, static_cast<int>(CasStep::kMark));
}

// ---------------------------------------------------------------------------
// Reclaimer starvation by a frozen pinned thread.
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, FrozenPinnedThreadStarvesEpochReclaimer) {
  EpochReclaimer rec(64, /*retire_batch=*/16);
  InjectTree<EpochReclaimer> t(std::less<int>{}, rec);

  FaultScheduler sched(FaultPlan{{stall_at(0, HookPoint::kAfterIFlag)}});
  std::thread victim([&] {
    FaultScheduler::ThreadScope scope(sched, 0);
    auto h = t.handle();
    h.insert(1000);
  });
  ASSERT_TRUE(sched.wait_until_stalled(0));

  const std::uint64_t e0 = rec.current_epoch();
  const std::uint64_t f0 = rec.freed_count();
  {
    auto h = t.handle();
    for (int round = 0; round < 4; ++round) {
      for (int k = 0; k < 200; ++k) h.insert(k);
      for (int k = 0; k < 200; ++k) h.erase(k);
      h.flush();
    }
  }
  // The frozen thread announced epoch e0 (or e0-1): the global epoch can pass
  // it at most once, and nothing retired after the freeze can reach the
  // epoch+2 bar — the retire stream is wedged for EVERYONE (the EBR failure
  // mode the paper's §6 discussion and DESIGN.md §6 describe).
  EXPECT_LE(rec.current_epoch(), e0 + 1);
  EXPECT_EQ(rec.freed_count(), f0);

  sched.release(0);
  victim.join();
  {
    auto h = t.handle();
    for (int i = 0; i < 4; ++i) {
      h.insert(2000 + i);
      h.erase(2000 + i);
      h.flush();
    }
  }
  EXPECT_GT(rec.freed_count(), f0);
  EXPECT_TRUE(t.validate().ok);
}

TEST(FaultInjectionTest, FrozenPinnedThreadWedgesHazardGraceRounds) {
  HazardReclaimer rec(64, /*retire_batch=*/16);
  InjectTree<HazardReclaimer> t(std::less<int>{}, rec);

  FaultScheduler sched(FaultPlan{{stall_at(0, HookPoint::kAfterIFlag)}});
  std::thread victim([&] {
    FaultScheduler::ThreadScope scope(sched, 0);
    auto h = t.handle();
    h.insert(1000);
  });
  ASSERT_TRUE(sched.wait_until_stalled(0));

  const std::uint64_t f0 = rec.freed_count();
  {
    auto h = t.handle();
    for (int round = 0; round < 4; ++round) {
      for (int k = 0; k < 200; ++k) h.insert(k);
      for (int k = 0; k < 200; ++k) h.erase(k);
    }
  }
  // Every grace round started after the freeze snapshots the frozen slot
  // (odd sequence number) as a reader-of-record; its pending set cannot
  // clear until the victim unpins.
  EXPECT_EQ(rec.freed_count(), f0);

  sched.release(0);
  victim.join();
  {
    auto h = t.handle();
    h.flush();
    h.flush();
  }
  EXPECT_GT(rec.freed_count(), f0);
  EXPECT_TRUE(t.validate().ok);
}

TEST(FaultInjectionTest, FrozenHazardHolderDelaysOnlyItsPointer) {
  // The domain-side contrast to the epoch wedge: a frozen thread holding a
  // published hazard delays exactly the objects it covers; everything else
  // keeps reclaiming. The frozen thread parks on a scheduler stall gate
  // emitted manually — the inject layer works for any code with a pause
  // point, not just the tree's hooks.
  HazardPointerDomain dom(8, /*hazards_per_thread=*/2, /*retire_batch=*/4);
  Tracked* covered = new Tracked();
  FaultScheduler sched(FaultPlan{{stall_at(0, HookPoint::kAfterSearch)}});

  std::thread holder([&] {
    FaultScheduler::ThreadScope scope(sched, 0);
    auto att = dom.attach();
    auto hz = att.make_handle();
    hz.set(0, covered);
    FaultScheduler::current()->on_point(HookPoint::kAfterSearch, kNoTid);
    hz.clear_all();
  });
  ASSERT_TRUE(sched.wait_until_stalled(0));

  auto att = dom.attach();
  att.retire(covered);
  for (int i = 0; i < 32; ++i) att.retire(new Tracked());
  att.flush();
  EXPECT_EQ(Tracked::live.load(), 1);  // only the covered object survives

  sched.release(0);
  holder.join();
  att.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
}

// ---------------------------------------------------------------------------
// Corruption canary + plan shrinking.
// ---------------------------------------------------------------------------

/// Runs one scripted erase under `plan` and reports whether the harness's
/// oracle detects corruption (erase claimed success but the key is still
/// reachable). Forcing dchild to fail is unsafe by design: HelpMarked then
/// cleans the grandparent with the leaf still linked. LeakyReclaimer keeps
/// the damaged run free of use-after-free so the oracle stays readable.
bool canary_detects_corruption(const FaultPlan& plan) {
  FaultScheduler sched(plan);
  InjectTree<LeakyReclaimer> t;
  for (int k : {10, 30, 50, 70}) {
    if (!t.insert(k)) return false;
  }
  bool erased = false;
  {
    FaultScheduler::ThreadScope scope(sched, 0);
    auto h = t.handle();
    erased = h.erase(30);
  }
  return erased && t.contains(30);
}

TEST(FaultInjectionTest, CanaryPlanReplaysDeterministicallyAndShrinks) {
  // Fatal action buried in scripted noise, as a shrinker would receive it
  // from a chaos run.
  FaultPlan noisy = inject::chaos(/*seed=*/0xC0FFEEu, /*threads=*/1,
                                  /*n_actions=*/6);
  noisy.actions.push_back(fail_cas(0, CasStep::kDChild));
  noisy.allow_unsafe = true;

  // Deterministic replay: the seeded plan detects the same corruption twice.
  ASSERT_TRUE(canary_detects_corruption(noisy));
  ASSERT_TRUE(canary_detects_corruption(noisy));

  const FaultPlan minimal =
      inject::shrink(noisy, canary_detects_corruption, /*max_evals=*/64);
  ASSERT_EQ(minimal.actions.size(), 1u) << to_string(minimal);
  EXPECT_EQ(minimal.actions[0].kind, FaultKind::kFailCas);
  EXPECT_EQ(minimal.actions[0].step, static_cast<int>(CasStep::kDChild));
  EXPECT_TRUE(canary_detects_corruption(minimal));
}

TEST(FaultInjectionTest, SchedulerRefusesUnsafePlanWithoutOptIn) {
  FaultPlan plan{{fail_cas(0, CasStep::kDChild)}};
  EXPECT_THROW(FaultScheduler{plan}, std::invalid_argument);
  plan.allow_unsafe = true;
  EXPECT_NO_THROW(FaultScheduler{plan});

  FaultPlan malformed{{FaultAction{}}};
  malformed.actions[0].step = -1;  // no site at all
  EXPECT_THROW(FaultScheduler{malformed}, std::invalid_argument);
}

TEST(FaultInjectionTest, ControllerRejectsOutOfRangeTid) {
  FaultPlan plan{{stall_at(0, HookPoint::kAfterSearch)}};
  FaultScheduler sched(plan);
  const unsigned bad = FaultScheduler::kMaxTids;
  EXPECT_THROW(sched.release(bad), std::out_of_range);
  EXPECT_THROW(sched.is_stalled(bad), std::out_of_range);
  EXPECT_THROW(sched.wait_until_stalled(bad, std::chrono::milliseconds(1)),
               std::out_of_range);
  EXPECT_THROW(sched.step_hits(bad, CasStep::kIFlag), std::out_of_range);
  EXPECT_THROW(sched.point_hits(bad, HookPoint::kAfterSearch),
               std::out_of_range);
}

TEST(FaultInjectionTest, StallGatePassesThroughAfterReleaseAll) {
  // Teardown net: a worker that reaches its stall gate only *after*
  // release_all ran (e.g. the controller gave up on a wedged test) must pass
  // through instead of parking forever on a condvar about to be destroyed.
  FaultPlan plan{{stall_at(0, HookPoint::kAfterSearch)}};
  FaultScheduler sched(plan);
  sched.release_all();  // no thread is stalled yet — drains all future gates

  InjectTree<EpochReclaimer> t;
  std::thread late([&] {
    FaultScheduler::ThreadScope scope(sched, 0);
    auto h = t.handle();
    EXPECT_TRUE(h.insert(7));  // hits the scripted gate; must not park
  });
  late.join();  // would hang forever without drain semantics
  EXPECT_EQ(sched.stalled_count(), 0u);
  EXPECT_EQ(sched.point_hits(0, HookPoint::kAfterSearch), 1u);
}

// ---------------------------------------------------------------------------
// Seeded chaos schedules.
// ---------------------------------------------------------------------------

std::uint64_t chaos_seed() {
  if (const char* env = std::getenv("EFRB_FAULT_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return 0x5EEDBA5Eu;
}

TEST(FaultInjectionTest, SeededChaosScheduleKeepsTreeValid) {
  const std::uint64_t seed = chaos_seed();
  // Replay hint for log scrapers; check.sh tees this into its test log.
  printf("[chaos] EFRB_FAULT_SEED=0x%llx\n",
         static_cast<unsigned long long>(seed));
  SCOPED_TRACE("replay with EFRB_FAULT_SEED=" + std::to_string(seed));

  constexpr unsigned kThreads = 4;
  const FaultPlan plan = inject::chaos(seed, kThreads, /*n_actions=*/24);
  ASSERT_TRUE(plan.safe());
  FaultScheduler sched(plan);

  InjectTree<EpochReclaimer> t;
  for (int k = 0; k < 128; k += 2) ASSERT_TRUE(t.insert(k));

  run_threads(kThreads, [&](std::size_t tid) {
    FaultScheduler::ThreadScope scope(sched, static_cast<unsigned>(tid));
    auto h = t.handle();
    Xoshiro256 rng(seed ^ (tid * 0x9e3779b9ULL + 1));
    for (int i = 0; i < 4000; ++i) {
      const int k = static_cast<int>(rng.next_below(256));
      switch (rng.next_below(3)) {
        case 0: h.insert(k); break;
        case 1: h.erase(k); break;
        default: h.contains(k); break;
      }
    }
  });

  EXPECT_EQ(sched.stalled_count(), 0u);  // chaos() never emits stalls
  EXPECT_TRUE(t.validate().ok);
  const auto s = t.stats();
  std::uint64_t cas_total = 0;
  for (std::size_t i = 0; i < kNumCasSteps; ++i) cas_total += s.cas_attempts[i];
  EXPECT_GT(cas_total, 0u);
}

}  // namespace
}  // namespace efrb
