// Deterministic tests of the helping protocol (§3's "conservative helping
// strategy"): each test freezes one operation between two of its CAS steps
// (via the pause hooks) and lets a second operation run into the flag/mark,
// forcing the specific helping branch of the pseudocode:
//
//   * line 51:  Insert helps an in-flight Insert holding the parent's IFlag
//   * line 77:  Delete helps an in-flight Delete holding the grandparent's DFlag
//   * line 78:  Delete/Insert help a Mark (completing the removal)
//   * line 92-98: a Delete whose mark CAS fails backtracks and retries
//     (the doomed-Delete scenario of Fig. 5)
//
// The frozen thread then resumes; its remaining CAS steps must fail benignly
// (the helper already performed them) and its operation still reports success.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/debug_hooks.hpp"
#include "core/efrb_tree.hpp"
#include "util/barrier.hpp"

namespace efrb {
namespace {

using HookedTree = EfrbTreeSet<int, std::less<int>, EpochReclaimer, CallbackTraits>;

/// Per-thread role so the global hook can target one thread only.
thread_local int g_role = 0;

/// Pause `role` at `point` (first hit only): releases `reached`, then blocks
/// until `resume`.
struct PausePlan {
  int role;
  HookPoint point;
  YieldingBarrier reached{2};
  YieldingBarrier resume{2};
  std::atomic<bool> armed{true};

  void install() {
    CallbackTraits::at_fn = [this](HookPoint p) {
      if (g_role == role && p == point &&
          armed.exchange(false, std::memory_order_acq_rel)) {
        reached.arrive_and_wait();
        resume.arrive_and_wait();
      }
    };
  }
  ~PausePlan() { CallbackTraits::reset(); }
};

TEST(HelpingTest, InsertHelpsBlockedInsert_Line51) {
  HookedTree t;
  PausePlan plan{.role = 1, .point = HookPoint::kAfterIFlag};
  plan.install();

  std::thread frozen([&] {
    g_role = 1;
    EXPECT_TRUE(t.insert(10));  // freezes right after its iflag CAS
    g_role = 0;
  });

  plan.reached.arrive_and_wait();  // tree root now flagged IFlag by `frozen`
  // This insert reaches the same parent, sees the IFlag (line 51), helps the
  // frozen insert to completion, then performs its own.
  EXPECT_TRUE(t.insert(20));
  EXPECT_TRUE(t.contains(10)) << "helper must have completed the frozen insert";
  plan.resume.arrive_and_wait();
  frozen.join();

  EXPECT_TRUE(t.contains(10));
  EXPECT_TRUE(t.contains(20));
  const auto v = t.validate();
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.real_leaves, 2u);
  EXPECT_GE(t.stats().helps, 1u);
}

TEST(HelpingTest, DeleteHelpsBlockedDelete_Line77) {
  HookedTree t;
  t.insert(10);
  t.insert(20);
  PausePlan plan{.role = 1, .point = HookPoint::kAfterDFlag};
  plan.install();

  std::thread frozen([&] {
    g_role = 1;
    EXPECT_TRUE(t.erase(10));  // freezes holding the grandparent's DFlag
    g_role = 0;
  });

  plan.reached.arrive_and_wait();
  // erase(20) shares the flagged grandparent on its path; gpupdate != Clean
  // (line 77) forces it to help the frozen delete first.
  EXPECT_TRUE(t.erase(20));
  EXPECT_FALSE(t.contains(10)) << "helper must have completed the frozen delete";
  plan.resume.arrive_and_wait();
  frozen.join();

  EXPECT_FALSE(t.contains(10));
  EXPECT_FALSE(t.contains(20));
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.validate().ok);
  EXPECT_GE(t.stats().helps, 1u);
}

TEST(HelpingTest, InsertHelpsMarkedNode_Line78Path) {
  HookedTree t;
  t.insert(10);
  t.insert(20);
  // Freeze the delete after its mark CAS, before the dchild CAS: the parent
  // of leaf 10 is now terminally marked but still in the tree.
  PausePlan plan{.role = 1, .point = HookPoint::kBeforeDChild};
  plan.install();

  std::thread frozen([&] {
    g_role = 1;
    EXPECT_TRUE(t.erase(10));
    g_role = 0;
  });

  plan.reached.arrive_and_wait();
  // insert(15) searches through the marked internal node; its parent check
  // finds a non-Clean update word and helps complete the splice.
  EXPECT_TRUE(t.insert(15));
  plan.resume.arrive_and_wait();
  frozen.join();

  EXPECT_FALSE(t.contains(10));
  EXPECT_TRUE(t.contains(15));
  EXPECT_TRUE(t.contains(20));
  EXPECT_TRUE(t.validate().ok);
}

TEST(HelpingTest, DoomedDeleteBacktracksAndRetries_Fig5) {
  HookedTree t;
  t.insert(10);
  t.insert(20);
  // Freeze erase(10) after its dflag on the grandparent but before the mark
  // CAS on the parent. A concurrent insert(15) then flags/changes the parent,
  // so the frozen delete's mark CAS must fail (its pupdate snapshot is stale)
  // -> backtrack CAS -> retry from scratch (lines 92-98); the retry succeeds.
  PausePlan plan{.role = 1, .point = HookPoint::kAfterDFlag};
  plan.install();

  std::thread frozen([&] {
    g_role = 1;
    EXPECT_TRUE(t.erase(10));  // must still succeed via its retry
    g_role = 0;
  });

  plan.reached.arrive_and_wait();
  // The parent of leaf 10 (key-20 internal) is NOT flagged — only the
  // grandparent is. insert(15) lands on that parent and wins it.
  EXPECT_TRUE(t.insert(15));
  plan.resume.arrive_and_wait();
  frozen.join();

  EXPECT_FALSE(t.contains(10));
  EXPECT_TRUE(t.contains(15));
  EXPECT_TRUE(t.contains(20));
  EXPECT_TRUE(t.validate().ok);
  EXPECT_GE(t.stats().backtracks, 1u)
      << "the doomed delete should have taken the backtrack edge of Fig. 4";
}

TEST(HelpingTest, FrozenThreadsRemainingStepsFailBenignly) {
  // After being helped, the frozen operation performs its ichild/iunflag CAS
  // steps against already-changed words: they must fail without corrupting
  // the tree and without double-retiring (ASan would catch a double free).
  for (int round = 0; round < 10; ++round) {
    HookedTree t;
    PausePlan plan{.role = 1, .point = HookPoint::kAfterIFlag};
    plan.install();
    std::thread frozen([&] {
      g_role = 1;
      EXPECT_TRUE(t.insert(1));
      g_role = 0;
    });
    plan.reached.arrive_and_wait();
    EXPECT_TRUE(t.insert(2));
    EXPECT_TRUE(t.erase(1));  // even delete what the helper just inserted
    plan.resume.arrive_and_wait();
    frozen.join();
    EXPECT_FALSE(t.contains(1));
    EXPECT_TRUE(t.contains(2));
    EXPECT_TRUE(t.validate().ok);
    CallbackTraits::reset();
  }
}

TEST(HelpingTest, FindNeverHelps) {
  // §3: "Find operations ... never help any other operation." Freeze an
  // insert mid-flight; a Find through the flagged region must complete and
  // must not perform the frozen op's remaining steps.
  HookedTree t;
  t.insert(5);
  PausePlan plan{.role = 1, .point = HookPoint::kAfterIFlag};
  plan.install();

  std::thread frozen([&] {
    g_role = 1;
    EXPECT_TRUE(t.insert(10));
    g_role = 0;
  });

  plan.reached.arrive_and_wait();
  // The insert's iflag is installed but its ichild CAS has not run: the key
  // must NOT be visible, and this lookup must terminate without helping.
  EXPECT_FALSE(t.contains(10));
  EXPECT_TRUE(t.contains(5));
  const auto helps_before = t.stats().helps;
  EXPECT_FALSE(t.contains(10));
  EXPECT_EQ(t.stats().helps, helps_before);
  plan.resume.arrive_and_wait();
  frozen.join();
  EXPECT_TRUE(t.contains(10));
}

}  // namespace
}  // namespace efrb
