// Tests for the workload engine: distribution shapes, op-mix proportions,
// prefill occupancy, and an end-to-end harness run.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "core/efrb_tree.hpp"
#include "workload/distribution.hpp"
#include "workload/op_mix.hpp"
#include "workload/runner.hpp"

namespace efrb {
namespace {

TEST(UniformKeysTest, StaysInRange) {
  UniformKeys d(100);
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(d(rng), 100u);
}

TEST(UniformKeysTest, RoughlyFlatHistogram) {
  UniformKeys d(10);
  Xoshiro256 rng(2);
  std::array<int, 10> histo{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++histo[d(rng)];
  for (int count : histo) {
    EXPECT_NEAR(count, n / 10, n / 10 * 0.15);
  }
}

TEST(ZipfKeysTest, StaysInRange) {
  ZipfKeys d(1000, 0.99);
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(d(rng), 1000u);
}

TEST(ZipfKeysTest, HeadIsHot) {
  // With theta=0.99 over 1000 keys, the top key draws a large share and the
  // top-10 dominate the tail — the defining property of the distribution.
  ZipfKeys d(1000, 0.99);
  Xoshiro256 rng(4);
  std::array<int, 1000> histo{};
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++histo[d(rng)];
  EXPECT_GT(histo[0], histo[500] * 10) << "rank-0 must dwarf mid-tail keys";
  int top10 = 0;
  for (int i = 0; i < 10; ++i) top10 += histo[i];
  EXPECT_GT(top10, n / 4) << "top-10 keys should draw >25% of accesses";
}

TEST(ZipfKeysTest, LowThetaApproachesUniform) {
  ZipfKeys d(100, 0.01);
  Xoshiro256 rng(5);
  std::array<int, 100> histo{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++histo[d(rng)];
  EXPECT_LT(histo[0], n / 100 * 4);  // no extreme head
}

TEST(OpMixTest, FindPctIsRemainder) {
  EXPECT_EQ(kReadOnly.find_pct(), 100u);
  EXPECT_EQ(kReadMostly.find_pct(), 90u);
  EXPECT_EQ(kBalanced.find_pct(), 70u);
  EXPECT_EQ(kUpdateHeavy.find_pct(), 0u);
}

TEST(OpMixTest, SampleProportionsMatch) {
  Xoshiro256 rng(6);
  const OpMix mix = kBalanced;  // 20i/10d/70f
  int counts[3] = {0, 0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<int>(mix.sample(rng))];
  EXPECT_NEAR(counts[static_cast<int>(OpType::kInsert)], n * 0.20, n * 0.02);
  EXPECT_NEAR(counts[static_cast<int>(OpType::kErase)], n * 0.10, n * 0.02);
  EXPECT_NEAR(counts[static_cast<int>(OpType::kFind)], n * 0.70, n * 0.02);
}

TEST(OpMixTest, ReadOnlyNeverUpdates) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(kReadOnly.sample(rng), OpType::kFind);
  }
}

TEST(PrefillTest, ReachesTargetOccupancy) {
  EfrbTreeSet<std::uint64_t> t;
  prefill(t, /*key_range=*/1024, /*fraction=*/0.5, /*seed=*/1);
  EXPECT_EQ(t.size(), 512u);
  EXPECT_TRUE(t.validate().ok);
}

TEST(RunnerTest, ExecutesAndCounts) {
  EfrbTreeSet<std::uint64_t> t;
  WorkloadConfig cfg;
  cfg.threads = 3;
  cfg.key_range = 256;
  cfg.mix = kBalanced;
  cfg.duration = std::chrono::milliseconds(50);
  prefill(t, cfg.key_range, cfg.prefill_fraction, cfg.seed);
  const auto r = run_workload(t, cfg);
  EXPECT_GT(r.total_ops(), 0u);
  EXPECT_GT(r.finds, 0u);
  EXPECT_GT(r.inserts, 0u);
  EXPECT_GT(r.erases, 0u);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.mops(), 0.0);
  EXPECT_TRUE(t.validate().ok);
}

TEST(RunnerTest, ZipfWorkloadRuns) {
  EfrbTreeSet<std::uint64_t> t;
  WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.key_range = 128;
  cfg.zipf = true;
  cfg.duration = std::chrono::milliseconds(30);
  prefill(t, cfg.key_range, 0.5, 1);
  const auto r = run_workload(t, cfg);
  EXPECT_GT(r.total_ops(), 0u);
  EXPECT_TRUE(t.validate().ok);
}

TEST(RunnerTest, SuccessCountsAreSane) {
  EfrbTreeSet<std::uint64_t> t;
  WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.key_range = 64;
  cfg.mix = kUpdateHeavy;
  cfg.duration = std::chrono::milliseconds(40);
  prefill(t, cfg.key_range, 0.5, 2);
  const auto r = run_workload(t, cfg);
  EXPECT_LE(r.ok_inserts, r.inserts);
  EXPECT_LE(r.ok_erases, r.erases);
  // Steady state on a 50/50 mix: successes on both sides, roughly balanced.
  EXPECT_GT(r.ok_inserts, 0u);
  EXPECT_GT(r.ok_erases, 0u);
}

}  // namespace
}  // namespace efrb
