// Instrumented-build matrix: the debug-hook emission points driven with LIVE
// (non-Noop) traits across reclaimer policies. NoopTraits compiles every hook
// away, so only an instantiation like these proves the emission points still
// exist, fire in order, and agree with the per-step stats counters that
// op_context.hpp records at the same sites.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "core/debug_hooks.hpp"
#include "core/efrb_tree.hpp"
#include "inject/fault_plan.hpp"
#include "inject/fault_scheduler.hpp"
#include "leak_check_opt_out.hpp"  // LeakyReclaimer cells leak by design
#include "reclaim/hazard.hpp"
#include "reclaim/reclaimer.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

/// Lock-free counting hooks; one instantiation (and thus one set of counters)
/// per reclaimer under test.
template <typename Reclaimer>
struct CountingTraits {
  static constexpr bool kCountStats = true;
  static constexpr bool kSearchHelpsMarked = false;

  static inline std::atomic<std::uint64_t> cas_events{0};
  static inline std::atomic<std::uint32_t> points_seen{0};  // HookPoint bitmask

  static void on_cas(CasStep, bool, const void*) noexcept {
    cas_events.fetch_add(1, std::memory_order_relaxed);
  }
  static void at(HookPoint p) noexcept {
    points_seen.fetch_or(1u << static_cast<unsigned>(p),
                         std::memory_order_relaxed);
  }
  static void reset() {
    cas_events.store(0);
    points_seen.store(0);
  }
};

/// §6 search variant with stats on, to cover the kSearchHelpsMarked branch
/// of search_path under a non-Noop instantiation too.
struct HelpingSearchStatsTraits {
  static constexpr bool kCountStats = true;
  static constexpr bool kSearchHelpsMarked = true;
  static void on_cas(CasStep, bool, const void*) noexcept {}
  static void at(HookPoint) noexcept {}
};

template <typename Reclaimer>
class InstrumentedHooksTest : public ::testing::Test {};
using Reclaimers =
    ::testing::Types<EpochReclaimer, HazardReclaimer, LeakyReclaimer>;
TYPED_TEST_SUITE(InstrumentedHooksTest, Reclaimers);

TYPED_TEST(InstrumentedHooksTest, CasEventsAgreeWithPerStepCounters) {
  using Traits = CountingTraits<TypeParam>;
  Traits::reset();
  using Tree = EfrbTreeSet<int, std::less<int>, TypeParam, Traits>;
  Tree t;
  run_threads(4, [&](std::size_t tid) {
    auto h = t.handle();
    Xoshiro256 rng(tid + 1);
    for (int i = 0; i < 3000; ++i) {
      const int k = static_cast<int>(rng.next_below(16));  // hot: force helping
      if (rng.next_below(2) == 0) {
        h.insert(k);
      } else {
        h.erase(k);
      }
    }
  });
  const auto s = t.stats();
  std::uint64_t per_step_total = 0;
  for (std::size_t i = 0; i < kNumCasSteps; ++i) {
    per_step_total += s.cas_attempts[i];
  }
  // ctx.count_cas() sits immediately after every Traits::on_cas emission
  // point in protocol.hpp, so the two totals must agree exactly.
  EXPECT_EQ(Traits::cas_events.load(), per_step_total);
  EXPECT_GT(per_step_total, 0u);
  EXPECT_TRUE(t.validate().ok);
}

TYPED_TEST(InstrumentedHooksTest, ProtocolHookPointsFire) {
  using Traits = CountingTraits<TypeParam>;
  Traits::reset();
  using Tree = EfrbTreeSet<int, std::less<int>, TypeParam, Traits>;
  Tree t;
  // One successful insert and delete traverse all eight uncontended pause
  // points; the contended points (helping/retry/backtrack) are schedule-
  // dependent and asserted only as "may fire" by the churn above.
  ASSERT_TRUE(t.insert(1));
  ASSERT_TRUE(t.insert(2));
  ASSERT_TRUE(t.erase(1));
  const std::uint32_t seen = Traits::points_seen.load();
  for (HookPoint p : {HookPoint::kAfterSearch, HookPoint::kAfterIFlag,
                      HookPoint::kBeforeIChild, HookPoint::kBeforeIUnflag,
                      HookPoint::kAfterDFlag, HookPoint::kBeforeMark,
                      HookPoint::kBeforeDChild, HookPoint::kBeforeDUnflag}) {
    EXPECT_NE(seen & (1u << static_cast<unsigned>(p)), 0u)
        << "hook point " << static_cast<unsigned>(p) << " never fired";
  }
}

TEST(InstrumentedHelpingSearchTest, MarkSplicingSearchUnderChurn) {
  using Tree =
      EfrbTreeSet<int, std::less<int>, EpochReclaimer, HelpingSearchStatsTraits>;
  Tree t;
  run_threads(4, [&](std::size_t tid) {
    auto h = t.handle();
    Xoshiro256 rng(tid * 7 + 5);
    for (int i = 0; i < 3000; ++i) {
      const int k = static_cast<int>(rng.next_below(16));
      if (rng.next_below(2) == 0) {
        h.insert(k);
      } else {
        h.erase(k);
      }
    }
  });
  EXPECT_TRUE(t.validate().ok);
  const auto s = t.stats();
  // Every successful delete still performs exactly one dchild splice,
  // whether by the deleter, a helper, or a §6 helping search.
  EXPECT_GE(s.cas_attempts[static_cast<std::size_t>(CasStep::kDChild)],
            s.cas_attempts[static_cast<std::size_t>(CasStep::kMark)] -
                s.cas_failures[static_cast<std::size_t>(CasStep::kMark)]);
}

/// Hooks that nest a pin on the structure's own reclaimer every time the
/// executing operation is about to help. Tree-level operations pin the
/// thread_local lease slot, and so does the hook's pin() — true same-slot
/// nesting (depth 2) at the exact moment the thread traverses another
/// operation's Info record. If the inner unpin ended the pinned region
/// early, nodes retired by concurrent deletes could be freed mid-help —
/// which the ASan stage of scripts/check.sh turns into a hard failure here.
struct NestedPinOnHelpTraits : inject::InjectTraits {
  static inline EpochReclaimer* reclaimer = nullptr;
  static inline std::atomic<std::uint64_t> nested_pins{0};

  static void at(HookPoint p, unsigned tid) {
    if (p == HookPoint::kBeforeHelp && reclaimer != nullptr) {
      auto g = reclaimer->pin();
      nested_pins.fetch_add(1, std::memory_order_relaxed);
    }
    inject::InjectTraits::at(p, tid);
  }
};

TEST(InstrumentedHooksTest, NestedPinDuringHelpingKeepsProtection) {
  EpochReclaimer rec(64, /*retire_batch=*/1);
  NestedPinOnHelpTraits::reclaimer = &rec;
  NestedPinOnHelpTraits::nested_pins.store(0);
  {
    using Tree =
        EfrbTreeSet<int, std::less<int>, EpochReclaimer, NestedPinOnHelpTraits>;
    Tree t(std::less<int>{}, rec);  // shares rec's registry
    ASSERT_TRUE(t.insert(10));
    ASSERT_TRUE(t.insert(20));

    // Deterministic helping: freeze a deleter right after its dflag; the
    // second erase shares the flagged grandparent and must help first.
    inject::FaultPlan plan;
    inject::FaultAction stall;
    stall.kind = inject::FaultKind::kStall;
    stall.tid = 0;
    stall.point = static_cast<int>(HookPoint::kAfterDFlag);
    plan.actions.push_back(stall);
    inject::FaultScheduler sched(plan);

    std::thread frozen([&] {
      inject::FaultScheduler::ThreadScope scope(sched, 0);
      EXPECT_TRUE(t.erase(10));
    });
    ASSERT_TRUE(sched.wait_until_stalled(0));

    EXPECT_TRUE(t.erase(20));  // helps the frozen delete while pinned
    EXPECT_GE(NestedPinOnHelpTraits::nested_pins.load(), 1u);
    EXPECT_FALSE(t.contains(10));

    sched.release(0);
    frozen.join();
    EXPECT_TRUE(t.validate().ok);
    EXPECT_GE(t.stats().helps, NestedPinOnHelpTraits::nested_pins.load());
  }
  NestedPinOnHelpTraits::reclaimer = nullptr;
  rec.flush();
  EXPECT_GT(rec.freed_count(), 0u);  // the nested pins did not wedge EBR
}

}  // namespace
}  // namespace efrb
