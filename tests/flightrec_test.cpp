// Flight recorder (obs/flightrec.hpp): record -> dump -> decode roundtrip,
// gauge and progress-table capture, ring wraparound retention, corrupt-dump
// rejection, and the crash path itself — a death test whose child aborts
// with the signal handler installed, after which the parent parses the dump
// the dying child left behind.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/debug_hooks.hpp"
#include "core/efrb_tree.hpp"
#include "core/op_context.hpp"
#include "obs/flightrec.hpp"
#include "obs/trace.hpp"
#include "reclaim/epoch.hpp"

namespace efrb {
namespace {

using obs::FlightDump;
using obs::FlightRecorder;
using obs::TraceEvent;
using obs::TraceEventKind;

// Deliberately pid-free: the threadsafe death tests re-exec the test binary,
// so the child must compute the SAME path the parent will read after it dies.
std::string temp_dump_path(const char* tag) {
  return ::testing::TempDir() + "flightrec_" + tag + ".bin";
}

std::vector<std::uint64_t> dump_words(const FlightRecorder& rec) {
  const std::string path = temp_dump_path("words");
  EXPECT_TRUE(rec.dump_to_path(path.c_str()));
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  EXPECT_EQ(bytes.size() % sizeof(std::uint64_t), 0u);
  std::vector<std::uint64_t> words(bytes.size() / sizeof(std::uint64_t));
  std::memcpy(words.data(), bytes.data(), bytes.size());
  return words;
}

// ------------------------------------------------------------- roundtrip

TEST(FlightRecTest, DumpRoundTripsEventsGaugesAndProgress) {
  FlightRecorder rec(/*max_tids=*/4, /*ring_capacity=*/64);
  std::atomic<std::uint64_t> retired{17};
  std::atomic<std::uint64_t> freed{5};
  rec.add_gauge("reclaim_retired", &retired);
  rec.add_gauge("reclaim_freed", &freed);

  ProgressTable table;
  rec.attach_progress(&table);
  ProgressSlot* slot = table.acquire(2);
  slot->op_key.store(99, std::memory_order_relaxed);
  slot->last_step.store(static_cast<std::uint32_t>(CasStep::kDFlag),
                        std::memory_order_relaxed);
  slot->op_seq.store(1, std::memory_order_release);  // in flight

  rec.record(0, TraceEventKind::kCas,
             static_cast<std::uint8_t>(CasStep::kIFlag), true);
  rec.record(0, TraceEventKind::kPoint,
             static_cast<std::uint8_t>(HookPoint::kAfterSearch), false);
  rec.record(1, TraceEventKind::kHelpEnter,
             static_cast<std::uint8_t>(HookPoint::kBeforeHelp), false);
  rec.record_help_owner(1, pack_owner(2, 41));
  rec.record_help_owner(1, kNoOwner);  // must be dropped, not recorded

  const std::string path = temp_dump_path("roundtrip");
  ASSERT_TRUE(rec.dump_to_path(path.c_str()));

  FlightDump dump;
  ASSERT_TRUE(FlightDump::read_file(path, &dump));
  std::remove(path.c_str());

  EXPECT_EQ(dump.version, obs::kFlightVersion);
  EXPECT_EQ(dump.max_tids, 4u);
  EXPECT_EQ(dump.ring_cap, 64u);

  ASSERT_EQ(dump.gauges.size(), 2u);
  EXPECT_EQ(dump.gauges[0].name, "reclaim_retired");
  EXPECT_EQ(dump.gauges[0].value, 17u);
  EXPECT_EQ(dump.gauges[1].name, "reclaim_freed");
  EXPECT_EQ(dump.gauges[1].value, 5u);

  ASSERT_EQ(dump.slots.size(), ProgressTable::kMaxHandles);
  std::size_t in_flight = 0;
  for (const obs::FlightSlot& s : dump.slots) {
    if (s.tid == kNoTid) continue;
    EXPECT_TRUE(s.in_flight());
    EXPECT_EQ(s.tid, 2u);
    EXPECT_EQ(s.op_key, 99u);
    EXPECT_EQ(static_cast<CasStep>(s.last_step), CasStep::kDFlag);
    ++in_flight;
  }
  EXPECT_EQ(in_flight, 1u);

  const std::vector<TraceEvent> t0 = dump.events(0);
  ASSERT_EQ(t0.size(), 2u);
  EXPECT_EQ(t0[0].kind, TraceEventKind::kCas);
  EXPECT_EQ(static_cast<CasStep>(t0[0].code), CasStep::kIFlag);
  EXPECT_TRUE(t0[0].ok);
  EXPECT_EQ(t0[1].kind, TraceEventKind::kPoint);

  const std::vector<TraceEvent> t1 = dump.events(1);
  ASSERT_EQ(t1.size(), 2u);  // help-enter + owner slot; kNoOwner dropped
  EXPECT_EQ(t1[0].kind, TraceEventKind::kHelpEnter);
  EXPECT_EQ(t1[1].kind, TraceEventKind::kHelpOwner);
  EXPECT_EQ(t1[1].code, 2u);      // owner tid
  EXPECT_EQ(t1[1].ts_ns, 41u);    // owner op_seq rides the ts field
  EXPECT_TRUE(dump.events(2).empty());
  EXPECT_TRUE(dump.events(99).empty());

  ProgressTable::release(slot);
}

TEST(FlightRecTest, RingRetainsNewestEventsAfterWraparound) {
  FlightRecorder rec(/*max_tids=*/1, /*ring_capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    rec.record(0, TraceEventKind::kCas, static_cast<std::uint8_t>(i & 7),
               (i & 1) != 0);
  }
  const std::string path = temp_dump_path("wrap");
  ASSERT_TRUE(rec.dump_to_path(path.c_str()));
  FlightDump dump;
  ASSERT_TRUE(FlightDump::read_file(path, &dump));
  std::remove(path.c_str());

  const std::vector<TraceEvent> events = dump.events(0);
  ASSERT_EQ(events.size(), 8u);  // capacity bounds retention
  // Oldest retained is record #12, newest #19.
  EXPECT_EQ(events.front().code, 12u & 7u);
  EXPECT_EQ(events.back().code, 19u & 7u);
}

TEST(FlightRecTest, GaugeTableIsBoundedAndRecordsIgnoreBadTids) {
  FlightRecorder rec(/*max_tids=*/2, /*ring_capacity=*/8);
  std::atomic<std::uint64_t> v{1};
  for (std::size_t i = 0; i < FlightRecorder::kMaxGauges + 10; ++i) {
    rec.add_gauge("g", &v);  // registrations past the cap are ignored
  }
  rec.add_gauge(nullptr, &v);
  rec.add_gauge("null-value", nullptr);
  rec.record(kNoTid, TraceEventKind::kCas, 0, true);  // dropped
  rec.record(7, TraceEventKind::kCas, 0, true);       // out of range

  FlightDump dump;
  ASSERT_TRUE(FlightDump::parse(dump_words(rec), &dump));
  EXPECT_EQ(dump.gauges.size(), FlightRecorder::kMaxGauges);
  EXPECT_TRUE(dump.events(0).empty());
  EXPECT_TRUE(dump.events(1).empty());
}

// ------------------------------------------------------- corrupt rejection

TEST(FlightRecTest, ParseRejectsCorruptAndTruncatedDumps) {
  FlightRecorder rec(/*max_tids=*/2, /*ring_capacity=*/8);
  rec.record(0, TraceEventKind::kCas, 1, true);
  const std::vector<std::uint64_t> words = dump_words(rec);
  FlightDump dump;
  ASSERT_TRUE(FlightDump::parse(words, &dump));

  {  // bad magic
    std::vector<std::uint64_t> w = words;
    w[0] ^= 1;
    EXPECT_FALSE(FlightDump::parse(w, &dump));
  }
  {  // unknown version
    std::vector<std::uint64_t> w = words;
    w[1] = 999;
    EXPECT_FALSE(FlightDump::parse(w, &dump));
  }
  {  // truncated body
    std::vector<std::uint64_t> w(words.begin(), words.end() - 3);
    EXPECT_FALSE(FlightDump::parse(w, &dump));
  }
  {  // absurd ring capacity (not a power of two)
    std::vector<std::uint64_t> w = words;
    w[3] = 7;
    EXPECT_FALSE(FlightDump::parse(w, &dump));
  }
  {  // absurd gauge count
    std::vector<std::uint64_t> w = words;
    w[4] = FlightRecorder::kMaxGauges + 1;
    EXPECT_FALSE(FlightDump::parse(w, &dump));
  }
  EXPECT_FALSE(FlightDump::parse({}, &dump));
  EXPECT_FALSE(FlightDump::read_file("/nonexistent/flight.bin", &dump));
}

// ----------------------------------------------------------- crash path
//
// The child installs the handler, records traffic through a real tree with
// FlightTraits, then aborts. EXPECT_DEATH observes SIGABRT (the handler
// re-raises), and the parent — same process, after the child died — decodes
// the dump the child's signal handler wrote.

using FlightTree =
    EfrbTreeSet<int, std::less<int>, EpochReclaimer, obs::FlightTraits>;

TEST(FlightRecDeathTest, AbortHandlerWritesDecodableDump) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = temp_dump_path("crash");
  std::remove(path.c_str());

  EXPECT_DEATH(
      {
        FlightRecorder rec(/*max_tids=*/8, /*ring_capacity=*/256);
        obs::FlightTraits::install(&rec);
        FlightTree t;
        rec.attach_progress(&t.progress_table());
        obs::install_flight_handler(&rec, path.c_str());
        auto h = t.handle();
        for (int i = 0; i < 100; ++i) {
          h.insert(i);
          h.erase(i / 2);
        }
        std::abort();
      },
      "");

  FlightDump dump;
  ASSERT_TRUE(FlightDump::read_file(path, &dump))
      << "signal handler left no decodable dump at " << path;
  EXPECT_EQ(dump.version, obs::kFlightVersion);
  EXPECT_EQ(dump.max_tids, 8u);
  ASSERT_EQ(dump.slots.size(), ProgressTable::kMaxHandles);
  // The child's traffic ran through FlightTraits: tid 0's ring must hold
  // protocol events.
  EXPECT_FALSE(dump.events(0).empty());
  bool saw_cas = false;
  for (const TraceEvent& e : dump.events(0)) {
    saw_cas |= e.kind == TraceEventKind::kCas;
  }
  EXPECT_TRUE(saw_cas);
  std::remove(path.c_str());
}

// Uninstall restores the previous disposition: after install + uninstall an
// abort must NOT write a dump.

TEST(FlightRecDeathTest, UninstallStopsDumping) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path = temp_dump_path("uninstalled");
  std::remove(path.c_str());

  EXPECT_DEATH(
      {
        FlightRecorder rec(2, 8);
        obs::install_flight_handler(&rec, path.c_str());
        obs::uninstall_flight_handler();
        std::abort();
      },
      "");

  FlightDump dump;
  EXPECT_FALSE(FlightDump::read_file(path, &dump));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace efrb
