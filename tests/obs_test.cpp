// Tests for the observability layer (src/obs/): histogram bucket math and
// quantile agreement with the exact Summary, trace-ring wraparound and Chrome
// export ordering, reclaimer gauge monotonicity across a reclaim cycle, the
// JSON writer's escaping, and the runner's opt-in latency sampling. The
// concurrent-record test doubles as the TSan witness that the histogram's
// record path is safe from any number of threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/efrb_tree.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "reclaim/epoch.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "workload/runner.hpp"

namespace efrb {
namespace {

using obs::JsonWriter;
using obs::LatencyHistogram;
using obs::TraceEvent;
using obs::TraceEventKind;
using obs::TraceOp;
using obs::TraceRegistry;
using obs::TraceRing;

// ---------------------------------------------------------------- histogram

TEST(HistogramTest, IndexMathBoundaries) {
  // Below kSubCount every value has its own bucket (exact).
  EXPECT_EQ(LatencyHistogram::index_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::index_of(31), 31u);
  EXPECT_EQ(LatencyHistogram::bucket_lower(7), 7u);
  EXPECT_EQ(LatencyHistogram::bucket_upper(7), 7u);
  // Every bucket's bounds round-trip through index_of, and buckets tile the
  // domain with no gaps.
  for (std::size_t i = 0; i + 1 < LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(LatencyHistogram::index_of(LatencyHistogram::bucket_lower(i)), i);
    EXPECT_EQ(LatencyHistogram::index_of(LatencyHistogram::bucket_upper(i)), i);
    EXPECT_EQ(LatencyHistogram::bucket_upper(i) + 1,
              LatencyHistogram::bucket_lower(i + 1));
  }
  // Saturation: everything past kMaxValue lands in the last bucket.
  EXPECT_EQ(LatencyHistogram::index_of(LatencyHistogram::kMaxValue),
            LatencyHistogram::kBuckets - 1);
  EXPECT_EQ(LatencyHistogram::index_of(~std::uint64_t{0}),
            LatencyHistogram::kBuckets - 1);
}

TEST(HistogramTest, RelativeErrorBoundedBySubBucketCount) {
  // The log-bucketing contract: bucket width never exceeds lower/32 (one part
  // in 2^kSubBits), the "within ~3% of the true value" guarantee.
  const std::uint64_t probes[] = {100, 1000, 123456, 99999999,
                                  LatencyHistogram::kMaxValue};
  for (std::uint64_t v : probes) {
    const std::uint64_t lower =
        LatencyHistogram::bucket_lower(LatencyHistogram::index_of(v));
    EXPECT_LE(LatencyHistogram::bucket_width(v),
              std::max<std::uint64_t>(1, lower / 32))
        << "value " << v;
  }
}

TEST(HistogramTest, MergedQuantilesMatchSummaryWithinOneBucket) {
  // Record the same 10k samples into an exact Summary and into four
  // per-thread histograms (round-robin, as the runner does), then merge and
  // compare quantiles: the histogram's answer must be within one bucket
  // width of the exact order statistic (plus the sample spacing, since the
  // histogram uses nearest-rank and Summary interpolates).
  Summary exact;
  std::vector<LatencyHistogram> per_thread(4);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const std::uint64_t v = 1 + (i * 7919) % 100000;
    exact.add(static_cast<double>(v));
    per_thread[i % 4].record(v);
  }
  LatencyHistogram merged;
  for (const auto& h : per_thread) merged.merge(h);
  ASSERT_EQ(merged.count(), 10000u);
  EXPECT_DOUBLE_EQ(merged.mean(), exact.mean());

  for (const double p : {1.0, 25.0, 50.0, 90.0, 99.0, 99.9}) {
    const double want = exact.percentile(p);
    const auto got = static_cast<double>(merged.percentile(p));
    const auto width = static_cast<double>(
        LatencyHistogram::bucket_width(static_cast<std::uint64_t>(want)));
    // Sorted adjacent samples are ~10 apart; rank may differ by one.
    EXPECT_NEAR(got, want, width + 16.0) << "p" << p;
    // percentile() reports a bucket *upper* bound — never an underestimate
    // beyond the interpolation slack.
    EXPECT_GE(got + 16.0, want) << "p" << p;
  }
}

TEST(HistogramTest, ConcurrentRecordKeepsExactCounts) {
  // 4 threads, 50k records each, no locks anywhere on the record path; the
  // totals must come out exact. Run under TSan, this is the data-race
  // witness for the wait-free record path.
  LatencyHistogram shared;
  constexpr std::uint64_t kPerThread = 50000;
  std::uint64_t expected_sum = 0;
  for (std::uint64_t i = 0; i < kPerThread; ++i) {
    expected_sum += 4 * (1 + (i * 31) % 5000);
  }
  run_threads(4, [&](std::size_t) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      shared.record(1 + (i * 31) % 5000);
    }
  });
  EXPECT_EQ(shared.count(), 4 * kPerThread);
  std::uint64_t bucket_total = 0;
  shared.for_each_bucket(
      [&](std::uint64_t, std::uint64_t, std::uint64_t c) { bucket_total += c; });
  EXPECT_EQ(bucket_total, 4 * kPerThread);
  EXPECT_DOUBLE_EQ(shared.mean(),
                   static_cast<double>(expected_sum) / (4.0 * kPerThread));
}

TEST(HistogramTest, ClearResetsEverything) {
  LatencyHistogram h;
  h.record(42);
  h.record(100000);
  h.record(LatencyHistogram::kMaxValue + 1);
  ASSERT_EQ(h.count(), 3u);
  ASSERT_EQ(h.saturated(), 1u);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.saturated(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.max_estimate(), 0u);
}

TEST(HistogramTest, SaturationCounterSeparatesClampsFromMeasuredTail) {
  // Records above the 38-bit ns domain are clamped into the top bucket (so
  // quantiles stay usable) and counted, so a clamped tail is distinguishable
  // from a genuinely measured one. Regression for the silent-clamp era:
  // saturated() must move in lockstep with out-of-domain records only.
  LatencyHistogram h;
  h.record(LatencyHistogram::kMaxValue);  // in-domain: not a saturation
  EXPECT_EQ(h.saturated(), 0u);
  h.record(LatencyHistogram::kMaxValue + 1);
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.saturated(), 2u);
  EXPECT_EQ(h.count(), 3u);
  // All three landed in the top bucket; the counter is the only way to tell
  // them apart.
  EXPECT_EQ(h.percentile(50), LatencyHistogram::bucket_upper(
                                  LatencyHistogram::kBuckets - 1));
  // merge() carries the saturation count along with the buckets.
  LatencyHistogram other;
  other.record(LatencyHistogram::kMaxValue + 5);
  h.merge(other);
  EXPECT_EQ(h.saturated(), 3u);
  // The metrics document surfaces it per histogram.
  JsonWriter w;
  obs::append_histogram(w, h);
  EXPECT_NE(w.str().find("\"saturated\":3"), std::string::npos);
}

// -------------------------------------------------------------------- trace

TEST(TraceRingTest, WraparoundKeepsLatestWindow) {
  TraceRing ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ring.push({i, TraceEventKind::kPoint, 0, false});
  }
  EXPECT_EQ(ring.pushed(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_ns, 12 + i);  // oldest first, latest window
  }
}

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(0).capacity(), 1u);
  TraceRing r(3);
  r.push({1, TraceEventKind::kPoint, 0, false});
  EXPECT_EQ(r.snapshot().size(), 1u);
  EXPECT_EQ(r.dropped(), 0u);
}

TEST(TraceRegistryTest, DropsEventsWithoutUsableTid) {
  TraceRegistry reg(2, 8);
  reg.record_cas(kNoTid, CasStep::kIFlag, true);
  reg.record_cas(7, CasStep::kIFlag, true);  // out of range (max_tids 2)
  EXPECT_EQ(reg.dropped_no_tid(), 2u);
  EXPECT_TRUE(reg.snapshot(0).empty());
  EXPECT_TRUE(reg.snapshot(1).empty());
  EXPECT_TRUE(reg.snapshot(7).empty());  // out-of-range snapshot is empty too
}

TEST(TraceRegistryTest, ChromeExportOrderedAndWellFormed) {
  TraceRegistry reg(2, 16);
  reg.record_op_begin(0, TraceOp::kInsert);
  reg.record_cas(0, CasStep::kIFlag, true);
  reg.record_point(0, HookPoint::kBeforeHelp);
  reg.record_cas(0, CasStep::kIChild, false);
  reg.record_point(0, HookPoint::kAfterHelp);
  reg.record_op_end(0, TraceOp::kInsert, true);
  reg.record_op_begin(1, TraceOp::kErase);
  reg.record_op_end(1, TraceOp::kErase, false);

  // Per-ring snapshots preserve push order with monotone timestamps.
  const auto events = reg.snapshot(0);
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kOpBegin);
  EXPECT_EQ(events[2].kind, TraceEventKind::kHelpEnter);
  EXPECT_EQ(events[4].kind, TraceEventKind::kHelpExit);
  EXPECT_EQ(events[5].kind, TraceEventKind::kOpEnd);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }

  const std::string json = reg.chrome_trace_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("cas:iflag:ok"), std::string::npos);
  EXPECT_NE(json.find("cas:ichild:fail"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  // Export walks rings in order and each ring oldest-first: tid 0's op-begin
  // "insert" precedes its first CAS, which precedes tid 1's "erase".
  const auto pos_insert = json.find("\"insert\"");
  const auto pos_cas = json.find("cas:iflag:ok");
  const auto pos_erase = json.find("\"erase\"");
  ASSERT_NE(pos_insert, std::string::npos);
  ASSERT_NE(pos_erase, std::string::npos);
  EXPECT_LT(pos_insert, pos_cas);
  EXPECT_LT(pos_cas, pos_erase);
}

TEST(TraceTraitsTest, TracedTreeEmitsProtocolCasEvents) {
  // Rings must be large enough that this run's ~400 events (CAS + hook
  // points per op) don't wrap — wraparound keeps only the latest window.
  TraceRegistry reg(8, 1024);
  obs::TraceTraits::install(&reg);
  {
    EfrbTreeSet<std::uint64_t, std::less<std::uint64_t>, EpochReclaimer,
                obs::TraceTraits>
        t;
    auto h = t.handle();
    for (std::uint64_t k = 0; k < 32; ++k) h.insert(k);
    for (std::uint64_t k = 0; k < 32; k += 2) h.erase(k);
  }
  obs::TraceTraits::reset();

  std::uint64_t cas_ok = 0;
  for (unsigned tid = 0; tid < reg.max_tids(); ++tid) {
    for (const TraceEvent& e : reg.snapshot(tid)) {
      if (e.kind == TraceEventKind::kCas && e.ok) ++cas_ok;
    }
  }
  // 32 inserts (iflag+ichild+iunflag) + 16 deletes (dflag+mark+dchild+
  // dunflag), uncontended: every protocol CAS succeeds and is traced.
  EXPECT_GE(cas_ok, 32u * 3 + 16u * 4);
}

TEST(TraceTraitsTest, UninstalledRegistryIsIgnored) {
  obs::TraceTraits::reset();
  // Hooks must be safe no-ops with no registry installed.
  obs::TraceTraits::on_cas(CasStep::kIFlag, true, nullptr, 0);
  obs::TraceTraits::at(HookPoint::kAfterSearch, 0);
}

TEST(TraceRingTest, LiveSnapshotNeverTearsAnEvent) {
  // One writer pushes events whose fields are all functions of the same
  // sequence number (code and ok derive from ts); two readers snapshot the
  // whole time. A torn read — fields from two different events mixed in one
  // slot — would break the cross-field invariant. The tiny ring makes the
  // readers race a wraparound on nearly every push; under TSan this doubles
  // as the data-race witness for the packed single-word slots.
  TraceRing ring(32);
  constexpr std::uint64_t kPushes = 100000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> events_checked{0};
  run_threads(3, [&](std::size_t id) {
    if (id == 0) {
      for (std::uint64_t i = 1; i <= kPushes; ++i) {
        ring.push({i, TraceEventKind::kPoint,
                   static_cast<std::uint8_t>(i & 0xFF), (i & 1) != 0});
      }
      stop.store(true, std::memory_order_release);
      return;
    }
    std::uint64_t checked = 0;
    do {
      for (const TraceEvent& e : ring.snapshot()) {
        ASSERT_EQ(e.kind, TraceEventKind::kPoint);
        ASSERT_EQ(e.code, static_cast<std::uint8_t>(e.ts_ns & 0xFF));
        ASSERT_EQ(e.ok, (e.ts_ns & 1) != 0);
        ++checked;
      }
    } while (!stop.load(std::memory_order_acquire));
    events_checked.fetch_add(checked, std::memory_order_relaxed);
  });
  EXPECT_GT(events_checked.load(std::memory_order_relaxed), 0u);
  // At quiescence the snapshot is exact: the latest window, in order.
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), ring.capacity());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts_ns, kPushes - ring.capacity() + 1 + i);
  }
}

TEST(TraceRegistryTest, LiveExportWhileWritersStillRecord) {
  // The export contract from the header: snapshot()/chrome_trace_json() may
  // race live recorders and every exported event is still well-formed (a
  // valid kind, an in-range code) with JSON that parses shape-wise. Three
  // writers hammer their own rings while the fourth thread exports in a
  // loop until all writers are done.
  TraceRegistry reg(4, 64);
  constexpr int kWriters = 3;
  std::atomic<int> writers_done{0};
  run_threads(4, [&](std::size_t id) {
    if (id < kWriters) {
      const auto tid = static_cast<unsigned>(id);
      for (std::uint64_t i = 0; i < 20000; ++i) {
        reg.record_cas(tid, static_cast<CasStep>(i % kNumCasSteps),
                       (i & 1) != 0);
        if ((i & 7) == 0) reg.record_point(tid, HookPoint::kBeforeHelp);
      }
      writers_done.fetch_add(1, std::memory_order_release);
      return;
    }
    do {
      for (unsigned tid = 0; tid < reg.max_tids(); ++tid) {
        for (const TraceEvent& e : reg.snapshot(tid)) {
          ASSERT_LE(static_cast<unsigned>(e.kind),
                    static_cast<unsigned>(TraceEventKind::kOpEnd));
          if (e.kind == TraceEventKind::kCas) {
            ASSERT_LT(e.code, kNumCasSteps);
          }
        }
      }
      const std::string json = reg.chrome_trace_json();
      ASSERT_FALSE(json.empty());
      ASSERT_EQ(json.front(), '{');
      ASSERT_EQ(json.back(), '}');
    } while (writers_done.load(std::memory_order_acquire) < kWriters);
  });
  // Quiescent: every writer ring wrapped many times and kept the window.
  for (unsigned tid = 0; tid < kWriters; ++tid) {
    EXPECT_EQ(reg.snapshot(tid).size(), 64u);
  }
  EXPECT_EQ(reg.dropped_no_tid(), 0u);
}

// ------------------------------------------------------------------- gauges

TEST(GaugeTest, MonotoneAcrossEpochReclaimCycle) {
  EfrbTreeSet<std::uint64_t> t(std::less<std::uint64_t>{},
                               EpochReclaimer(8, 4));
  const ReclaimGauges g0 = t.reclaimer().gauges();
  EXPECT_EQ(g0.retired_total, 0u);
  EXPECT_EQ(g0.freed_total, 0u);

  ReclaimGauges prev = g0;
  for (int round = 0; round < 3; ++round) {
    auto h = t.handle();
    for (std::uint64_t k = 0; k < 256; ++k) h.insert(k);
    for (std::uint64_t k = 0; k < 256; ++k) h.erase(k);
    const ReclaimGauges g = t.reclaimer().gauges();
    // Counters are monotone, levels stay consistent.
    EXPECT_GE(g.retired_total, prev.retired_total);
    EXPECT_GE(g.freed_total, prev.freed_total);
    EXPECT_GE(g.pins, prev.pins);
    EXPECT_GE(g.unpins, prev.unpins);
    EXPECT_GE(g.epoch, prev.epoch);
    EXPECT_GE(g.retired_total, g.freed_total);
    EXPECT_EQ(g.backlog(), g.retired_total - g.freed_total);
    prev = g;
  }
  // 768 deletes retired nodes; with batch 4 the epoch advanced and sweeps
  // actually freed. At quiescence every pin has been matched by an unpin.
  EXPECT_GT(prev.retired_total, 0u);
  EXPECT_GT(prev.freed_total, 0u);
  EXPECT_GT(prev.epoch, g0.epoch);
  EXPECT_GT(prev.pins, 0u);
  EXPECT_EQ(prev.pins, prev.unpins);
  EXPECT_EQ(prev.orphan_depth, 0u);
}

TEST(GaugeTest, LeakyReclaimerReportsAllZero) {
  LeakyReclaimer leaky;
  const ReclaimGauges g = leaky.gauges();
  EXPECT_EQ(g.retired_total, 0u);
  EXPECT_EQ(g.freed_total, 0u);
  EXPECT_EQ(g.pins, 0u);
  EXPECT_EQ(g.backlog(), 0u);
}

// ------------------------------------------------------------- json writer

TEST(JsonWriterTest, EscapesAndNestsCorrectly) {
  JsonWriter w;
  w.begin_object();
  w.key("a").value(1);
  w.key("s").value("q\"\\\n\t");
  w.key("c").value(std::string_view("\x01", 1));
  w.key("arr").begin_array().value(true).null().value(2.5).end_array();
  w.key("inf").value(std::numeric_limits<double>::infinity());
  w.key("nan").value(std::nan(""));
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(w.str(),
            "{\"a\":1,\"s\":\"q\\\"\\\\\\n\\t\",\"c\":\"\\u0001\","
            "\"arr\":[true,null,2.5],\"inf\":null,\"nan\":null}");
}

TEST(JsonWriterTest, EmptyScopesAndCompleteness) {
  JsonWriter w;
  w.begin_object();
  w.key("empty_obj").begin_object().end_object();
  w.key("empty_arr").begin_array().end_array();
  EXPECT_FALSE(w.complete());  // object still open
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(w.str(), "{\"empty_obj\":{},\"empty_arr\":[]}");
}

// ------------------------------------------------- metrics document / runner

TEST(MetricsTest, DocumentCarriesSchemaAndCells) {
  WorkloadConfig cfg;
  WorkloadResult res;
  res.finds = 10;
  res.inserts = 5;
  res.erases = 5;
  res.seconds = 1.0;
  obs::MetricsDocument doc("obs_test");
  doc.add_cell("cell-one", cfg, res);
  const std::string json = doc.finish();
  EXPECT_NE(json.find("\"schema\":\"efrb-metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":4"), std::string::npos);
  EXPECT_NE(json.find("\"tool\":\"obs_test\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"cell-one\""), std::string::npos);
  EXPECT_NE(json.find("\"total_ops\":20"), std::string::npos);
}

TEST(RunnerTest, LatencySamplingCountsEveryOperation) {
  EfrbTreeSet<std::uint64_t> t;
  WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.key_range = 256;
  cfg.mix = kUpdateHeavy;
  cfg.duration = std::chrono::milliseconds(40);
  prefill(t, cfg.key_range, cfg.prefill_fraction, cfg.seed);

  LatencySamples lat;
  const WorkloadResult res = run_workload(t, cfg, &lat);
  EXPECT_GT(res.total_ops(), 0u);
  // Every operation lands in exactly one of the per-op histograms.
  EXPECT_EQ(lat.find.count(), res.finds);
  EXPECT_EQ(lat.insert.count(), res.inserts);
  EXPECT_EQ(lat.erase.count(), res.erases);
  EXPECT_EQ(lat.total_count(), res.total_ops());
  // Sampled latencies are plausible op durations, not clock garbage.
  EXPECT_GT(lat.insert.percentile(50), 0u);
  EXPECT_LT(lat.insert.percentile(99), std::uint64_t{1} << 34);
}

}  // namespace
}  // namespace efrb
