// Chaos scheduling: random yields injected at every protocol hook point
// drastically widen the set of interleavings a single-core host explores
// (every yield is a potential context switch exactly between two CAS steps).
// Also: stress with non-trivial key types (std::string) whose copies and
// destructions run inside nodes managed by the reclaimer.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/debug_hooks.hpp"
#include "core/efrb_tree.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

/// Sets the stop flag when the scope exits — including early exits from a
/// failed ASSERT_*, which would otherwise leave the churn threads spinning
/// forever and turn the failure into a timeout.
struct StopOnExit {
  std::atomic<bool>& stop;
  ~StopOnExit() { stop.store(true); }
};

/// Yields with probability 1/4 at every hook point — between every pair of
/// protocol steps — so flags and marks are routinely left exposed across
/// context switches.
struct ChaosTraits {
  static constexpr bool kCountStats = true;
  static constexpr bool kSearchHelpsMarked = false;
  static void on_cas(CasStep, bool, const void*) noexcept {}
  static void at(HookPoint) {
    thread_local Xoshiro256 rng(
        0x517cc1b727220a95ULL ^
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
    if (rng.next_below(4) == 0) std::this_thread::yield();
  }
};

using ChaosTree = EfrbTreeSet<int, std::less<int>, EpochReclaimer, ChaosTraits>;

TEST(ChaosTest, ParityOracleUnderInjectedPreemption) {
  ChaosTree t;
  constexpr int kKeys = 24;
  std::vector<std::atomic<std::uint64_t>> flips(kKeys);
  run_threads(6, [&](std::size_t tid) {
    Xoshiro256 rng(tid * 101 + 7);
    for (int i = 0; i < 3000; ++i) {
      const int k = static_cast<int>(rng.next_below(kKeys));
      if (rng.next_below(2) == 0) {
        if (t.insert(k)) flips[static_cast<std::size_t>(k)].fetch_add(1);
      } else {
        if (t.erase(k)) flips[static_cast<std::size_t>(k)].fetch_add(1);
      }
    }
  });
  for (int k = 0; k < kKeys; ++k) {
    EXPECT_EQ(t.contains(k),
              (flips[static_cast<std::size_t>(k)].load() % 2) == 1)
        << "key " << k;
  }
  EXPECT_TRUE(t.validate().ok);
  // Chaos scheduling must actually have provoked coordination traffic —
  // otherwise this test is not testing what it claims.
  EXPECT_GT(t.stats().helps + t.stats().insert_retries +
                t.stats().delete_retries,
            0u)
      << "no conflicts provoked; increase yield probability";
}

struct ChaosHelpingTraits : ChaosTraits {
  static constexpr bool kSearchHelpsMarked = true;
};

TEST(ChaosTest, HelpingSearchVariantUnderInjectedPreemption) {
  EfrbTreeSet<int, std::less<int>, EpochReclaimer, ChaosHelpingTraits> t;
  std::vector<std::atomic<std::uint64_t>> flips(16);
  run_threads(4, [&](std::size_t tid) {
    Xoshiro256 rng(tid * 13 + 1);
    for (int i = 0; i < 3000; ++i) {
      const int k = static_cast<int>(rng.next_below(16));
      switch (rng.next_below(3)) {
        case 0:
          if (t.insert(k)) flips[static_cast<std::size_t>(k)].fetch_add(1);
          break;
        case 1:
          if (t.erase(k)) flips[static_cast<std::size_t>(k)].fetch_add(1);
          break;
        default:
          t.contains(k);  // may splice marked nodes mid-walk
      }
    }
  });
  for (int k = 0; k < 16; ++k) {
    EXPECT_EQ(t.contains(k),
              (flips[static_cast<std::size_t>(k)].load() % 2) == 1);
  }
  EXPECT_TRUE(t.validate().ok);
}

// ---------------------------------------------------------------------------
// Non-trivial key/value types under concurrency + reclamation.
// ---------------------------------------------------------------------------

TEST(NonPodKeyTest, ConcurrentStringKeys) {
  // Long strings (heap-allocated) make every node construction/destruction a
  // real allocator event; a node freed too early turns the key read into a
  // use-after-free that ASan catches.
  EfrbTreeSet<std::string> t;
  constexpr int kKeys = 32;
  auto key_of = [](int i) {
    return "key-" + std::string(64, static_cast<char>('a' + (i % 26))) + "-" +
           std::to_string(i);
  };
  std::vector<std::atomic<std::uint64_t>> flips(kKeys);
  run_threads(4, [&](std::size_t tid) {
    Xoshiro256 rng(tid * 7 + 5);
    for (int i = 0; i < 2500; ++i) {
      const int idx = static_cast<int>(rng.next_below(kKeys));
      const std::string k = key_of(idx);
      switch (rng.next_below(3)) {
        case 0:
          if (t.insert(k)) flips[static_cast<std::size_t>(idx)].fetch_add(1);
          break;
        case 1:
          if (t.erase(k)) flips[static_cast<std::size_t>(idx)].fetch_add(1);
          break;
        default:
          t.contains(k);
      }
    }
  });
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_EQ(t.contains(key_of(i)),
              (flips[static_cast<std::size_t>(i)].load() % 2) == 1);
  }
  EXPECT_TRUE(t.validate().ok);
}

TEST(NonPodKeyTest, ConcurrentStringValuesWithAssign) {
  EfrbTreeMap<int, std::string> m;
  std::atomic<bool> stop{false};
  run_threads(4, [&](std::size_t tid) {
    if (tid == 0) {
      StopOnExit guard{stop};
      for (int i = 0; i < 8000; ++i) {
        const auto v = m.get(1);
        if (v.has_value()) {
          // A torn/freed value would fail this shape check (or ASan).
          ASSERT_EQ(v->substr(0, 6), "value-");
          ASSERT_GE(v->size(), 70u);
        }
      }
      stop.store(true);
    } else {
      Xoshiro256 rng(tid);
      const std::string mine =
          "value-" + std::string(64, static_cast<char>('A' + tid)) + "-t" +
          std::to_string(tid);
      while (!stop.load(std::memory_order_relaxed)) {
        m.insert_or_assign(1, mine);
        if (rng.next_below(8) == 0) m.erase(1);
      }
    }
  });
  SUCCEED();
}

TEST(NonPodKeyTest, ReverseComparatorConcurrent) {
  EfrbTreeSet<int, std::greater<int>> t;
  run_threads(4, [&](std::size_t tid) {
    const int base = static_cast<int>(tid) * 500;
    for (int i = 0; i < 500; ++i) ASSERT_TRUE(t.insert(base + i));
    for (int i = 0; i < 500; i += 2) ASSERT_TRUE(t.erase(base + i));
  });
  const auto v = t.validate();
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.real_leaves, 1000u);
  // greater<> order: min_key is the largest surviving int.
  EXPECT_EQ(t.min_key(), std::optional<int>(1999));
  EXPECT_EQ(t.max_key(), std::optional<int>(1));
}

}  // namespace
}  // namespace efrb
