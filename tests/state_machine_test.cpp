// Reproduction of Figure 4: "The effects of successful CAS operations."
//
// Every internal node's update word must move only along the edges of the
// paper's state machine:
//
//          dflag            mark(child)      iflag
//   Clean ------> DFlag     Clean -----> Mark (terminal)
//   DFlag --backtrack--> Clean
//   DFlag --dchild,dunflag--> Clean      IFlag --ichild,iunflag--> Clean
//
// We instrument the tree with CallbackTraits, record every *successful* CAS
// per node under a mutex, and validate each node's whole history against the
// automaton. Run single- and multi-threaded: helping must not create extra
// successful steps (the paper proves each step of a circuit succeeds at most
// once).
#include <gtest/gtest.h>

#include "leak_check_opt_out.hpp"  // LeakyReclaimer / NaiveCasBst leak by design

#include <map>
#include <mutex>
#include <vector>

#include "core/debug_hooks.hpp"
#include "core/efrb_tree.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

// LeakyReclaimer: the log is keyed by node address, so addresses must never
// be recycled during a test (epoch reclamation would reuse freed nodes and
// make one address carry two nodes' histories).
using HookedTree = EfrbTreeSet<int, std::less<int>, LeakyReclaimer, CallbackTraits>;

/// Collects per-node sequences of successful CAS steps.
class StepLog {
 public:
  void install() {
    CallbackTraits::on_cas_fn = [this](CasStep s, bool ok, const void* node) {
      if (!ok) return;
      std::lock_guard<std::mutex> lock(mu_);
      log_[node].push_back(s);
      ++counts_[static_cast<int>(s)];
    };
  }

  ~StepLog() { CallbackTraits::reset(); }

  std::uint64_t count(CasStep s) const { return counts_[static_cast<int>(s)]; }

  /// Validates one node's history against the Fig. 4 automaton. Returns an
  /// empty string on success, a diagnostic otherwise.
  static std::string validate_node(const std::vector<CasStep>& steps) {
    enum class S { kClean, kIFlag, kIFlagChildDone, kDFlag, kDFlagChildDone, kMark };
    S s = S::kClean;
    for (CasStep step : steps) {
      switch (s) {
        case S::kClean:
          if (step == CasStep::kIFlag) s = S::kIFlag;
          else if (step == CasStep::kDFlag) s = S::kDFlag;
          else if (step == CasStep::kMark) s = S::kMark;
          else if (step == CasStep::kIChild || step == CasStep::kDChild)
            return "child CAS on an unflagged node";
          else return std::string("illegal step from Clean: ") + to_string(step);
          break;
        case S::kIFlag:
          if (step == CasStep::kIChild) s = S::kIFlagChildDone;
          else return std::string("in IFlag expected ichild, got ") + to_string(step);
          break;
        case S::kIFlagChildDone:
          if (step == CasStep::kIUnflag) s = S::kClean;
          else return std::string("after ichild expected iunflag, got ") + to_string(step);
          break;
        case S::kDFlag:
          if (step == CasStep::kDChild) s = S::kDFlagChildDone;
          else if (step == CasStep::kBacktrack) s = S::kClean;
          else return std::string("in DFlag expected dchild/backtrack, got ") + to_string(step);
          break;
        case S::kDFlagChildDone:
          if (step == CasStep::kDUnflag) s = S::kClean;
          else return std::string("after dchild expected dunflag, got ") + to_string(step);
          break;
        case S::kMark:
          return std::string("step after terminal Mark: ") + to_string(step);
      }
    }
    return "";
  }

  void expect_all_nodes_legal() const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [node, steps] : log_) {
      const std::string err = validate_node(steps);
      EXPECT_TRUE(err.empty()) << "node " << node << ": " << err;
    }
  }

  /// Order-independent Fig. 4 laws, checkable even when the concurrent log
  /// interleaves entries out of CAS order (see the concurrent test).
  void expect_count_invariants() const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [node, steps] : log_) {
      std::uint64_t n[8] = {};
      for (CasStep s : steps) ++n[static_cast<int>(s)];
      const auto c = [&](CasStep s) { return n[static_cast<int>(s)]; };
      // iflag/ichild/iunflag all target the insertion's parent node.
      EXPECT_EQ(c(CasStep::kIFlag), c(CasStep::kIChild)) << "node " << node;
      EXPECT_EQ(c(CasStep::kIFlag), c(CasStep::kIUnflag)) << "node " << node;
      // dflag/dchild/dunflag/backtrack all target the deletion's grandparent.
      EXPECT_EQ(c(CasStep::kDFlag),
                c(CasStep::kDUnflag) + c(CasStep::kBacktrack))
          << "node " << node;
      EXPECT_EQ(c(CasStep::kDChild), c(CasStep::kDUnflag)) << "node " << node;
      // mark targets the deletion's parent; Mark is terminal.
      EXPECT_LE(c(CasStep::kMark), 1u) << "node " << node << " marked twice";
    }
  }

 private:
  mutable std::mutex mu_;
  std::map<const void*, std::vector<CasStep>> log_;
  std::uint64_t counts_[8] = {};
};

TEST(StateMachineTest, SequentialOpsFollowFig4) {
  StepLog log;
  log.install();
  {
    HookedTree t;
    for (int k : {5, 3, 8, 1, 4, 7, 9}) ASSERT_TRUE(t.insert(k));
    for (int k : {3, 8}) ASSERT_TRUE(t.erase(k));
    ASSERT_FALSE(t.erase(42));   // failing ops make no successful CAS steps
    ASSERT_FALSE(t.insert(5));
  }
  log.expect_all_nodes_legal();
  // Insertion circuit ran 7 times, deletion circuit twice, no backtracks
  // (no contention single-threaded).
  EXPECT_EQ(log.count(CasStep::kIFlag), 7u);
  EXPECT_EQ(log.count(CasStep::kIChild), 7u);
  EXPECT_EQ(log.count(CasStep::kIUnflag), 7u);
  EXPECT_EQ(log.count(CasStep::kDFlag), 2u);
  EXPECT_EQ(log.count(CasStep::kMark), 2u);
  EXPECT_EQ(log.count(CasStep::kDChild), 2u);
  EXPECT_EQ(log.count(CasStep::kDUnflag), 2u);
  EXPECT_EQ(log.count(CasStep::kBacktrack), 0u);
}

TEST(StateMachineTest, LinearizationPointCountsMatchReturns) {
  // §5: every Insert/Delete that returns True has exactly one successful
  // child CAS — so totals must match exactly, even with helping.
  StepLog log;
  log.install();
  std::atomic<std::uint64_t> ok_inserts{0}, ok_erases{0};
  {
    HookedTree t;
    run_threads(4, [&](std::size_t tid) {
      Xoshiro256 rng(tid + 99);
      for (int i = 0; i < 3000; ++i) {
        const int k = static_cast<int>(rng.next_below(64));
        if (rng.next_below(2) == 0) {
          ok_inserts += t.insert(k) ? 1 : 0;
        } else {
          ok_erases += t.erase(k) ? 1 : 0;
        }
      }
    });
    log.expect_count_invariants();
    EXPECT_EQ(log.count(CasStep::kIChild), ok_inserts.load());
    EXPECT_EQ(log.count(CasStep::kDChild), ok_erases.load());
    // Flag steps equal their circuit counts too (one circuit per success).
    EXPECT_EQ(log.count(CasStep::kIFlag), ok_inserts.load());
    EXPECT_EQ(log.count(CasStep::kDFlag),
              ok_erases.load() + log.count(CasStep::kBacktrack));
  }
}

TEST(StateMachineTest, ConcurrentChurnSatisfiesFig4CountInvariants) {
  // Under concurrency the log cannot witness the *order* of steps reliably
  // (the hook runs after its CAS, so two threads' entries can invert), but
  // the Fig. 4 circuits impose order-independent per-node counting laws:
  //   #iflag == #ichild == #iunflag          (insertion circuit completes)
  //   #dflag == #dunflag + #backtrack        (every DFlag is resolved)
  //   #mark  == #dchild == #dunflag          (marked parent: spliced once)
  //   each node is marked at most once       (Mark is terminal)
  StepLog log;
  log.install();
  {
    HookedTree t;
    run_threads(6, [&](std::size_t tid) {
      Xoshiro256 rng(tid * 31 + 1);
      for (int i = 0; i < 4000; ++i) {
        const int k = static_cast<int>(rng.next_below(32));  // high contention
        switch (rng.next_below(3)) {
          case 0: t.insert(k); break;
          case 1: t.erase(k); break;
          default: t.contains(k);
        }
      }
    });
    EXPECT_TRUE(t.validate().ok);
  }
  log.expect_count_invariants();
}

TEST(StateMachineTest, ValidatorRejectsIllegalHistories) {
  // Sanity-check the checker itself.
  using V = std::vector<CasStep>;
  EXPECT_EQ(StepLog::validate_node(V{CasStep::kIFlag, CasStep::kIChild,
                                     CasStep::kIUnflag}),
            "");
  EXPECT_EQ(StepLog::validate_node(V{CasStep::kDFlag, CasStep::kBacktrack,
                                     CasStep::kDFlag, CasStep::kDChild,
                                     CasStep::kDUnflag, CasStep::kMark}),
            "");
  EXPECT_NE(StepLog::validate_node(V{CasStep::kIChild}), "");
  EXPECT_NE(StepLog::validate_node(V{CasStep::kIFlag, CasStep::kIUnflag}), "");
  EXPECT_NE(StepLog::validate_node(V{CasStep::kMark, CasStep::kIFlag}), "");
  EXPECT_NE(StepLog::validate_node(V{CasStep::kDFlag, CasStep::kDChild,
                                     CasStep::kBacktrack}),
            "");
}

}  // namespace
}  // namespace efrb
