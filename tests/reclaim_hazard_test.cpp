// Tests for the hazard-pointer domain: a published hazard must prevent the
// pointed-to object from being freed; clearing it (or destroying the handle)
// must re-enable reclamation; unprotected retired objects must be freed by a
// scan.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "reclaim/hazard.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace efrb {
namespace {

struct Tracked {
  explicit Tracked(std::atomic<int>* counter) : counter_(counter) {}
  ~Tracked() { counter_->fetch_add(1); }
  std::atomic<int>* counter_;
};

TEST(HazardTest, UnprotectedRetireesAreFreedByScan) {
  std::atomic<int> freed{0};
  HazardPointerDomain hp(8, 4, /*retire_batch=*/4);
  for (int i = 0; i < 20; ++i) hp.retire(new Tracked(&freed));
  hp.flush();
  EXPECT_EQ(freed.load(), 20);
}

TEST(HazardTest, ProtectPreventsFree) {
  std::atomic<int> freed{0};
  HazardPointerDomain hp(8, 4, 2);
  auto* obj = new Tracked(&freed);
  std::atomic<Tracked*> src{obj};

  YieldingBarrier ready(2), done(2);
  std::thread protector([&] {
    auto h = hp.make_handle();
    Tracked* p = h.protect(0, src);
    EXPECT_EQ(p, obj);
    ready.arrive_and_wait();
    done.arrive_and_wait();  // hazard held this whole time
  });

  ready.arrive_and_wait();
  src.store(nullptr);  // unlink
  hp.retire(obj);
  for (int i = 0; i < 10; ++i) hp.flush();
  EXPECT_EQ(freed.load(), 0) << "freed a hazard-protected object";
  done.arrive_and_wait();
  protector.join();

  hp.flush();
  EXPECT_EQ(freed.load(), 1) << "object not freed after hazard cleared";
}

TEST(HazardTest, ClearReenablesReclamation) {
  std::atomic<int> freed{0};
  HazardPointerDomain hp(8, 4, 2);
  auto* obj = new Tracked(&freed);
  std::atomic<Tracked*> src{obj};

  auto h = hp.make_handle();
  h.protect(1, src);
  src.store(nullptr);
  hp.retire(obj);
  hp.flush();
  EXPECT_EQ(freed.load(), 0);
  h.clear(1);
  hp.flush();
  EXPECT_EQ(freed.load(), 1);
}

TEST(HazardTest, HandleDestructionClearsAllSlots) {
  std::atomic<int> freed{0};
  HazardPointerDomain hp(8, 4, 2);
  auto* a = new Tracked(&freed);
  auto* b = new Tracked(&freed);
  std::atomic<Tracked*> sa{a}, sb{b};
  {
    auto h = hp.make_handle();
    h.protect(0, sa);
    h.protect(1, sb);
    sa.store(nullptr);
    sb.store(nullptr);
    hp.retire(a);
    hp.retire(b);
    hp.flush();
    EXPECT_EQ(freed.load(), 0);
  }
  hp.flush();
  EXPECT_EQ(freed.load(), 2);
}

TEST(HazardTest, ProtectRevalidatesWhenSourceChanges) {
  // protect() must return a pointer that was in `src` *after* the hazard was
  // published. We change src concurrently and check the returned value is
  // always one of the published values.
  std::atomic<int> freed{0};
  HazardPointerDomain hp(8, 2, 64);
  auto* a = new Tracked(&freed);
  auto* b = new Tracked(&freed);
  std::atomic<Tracked*> src{a};

  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    while (!stop.load()) {
      src.store(a);
      src.store(b);
    }
  });
  {
    auto h = hp.make_handle();
    for (int i = 0; i < 5000; ++i) {
      Tracked* p = h.protect(0, src);
      EXPECT_TRUE(p == a || p == b);
    }
  }
  stop.store(true);
  flipper.join();
  delete a;
  delete b;
}

TEST(HazardTest, SetPublishesWithoutValidation) {
  std::atomic<int> freed{0};
  HazardPointerDomain hp(8, 2, 1);
  auto* obj = new Tracked(&freed);
  auto h = hp.make_handle();
  h.set(0, obj);
  hp.retire(obj);
  hp.flush();
  EXPECT_EQ(freed.load(), 0);
  h.clear(0);
  hp.flush();
  EXPECT_EQ(freed.load(), 1);
}

TEST(HazardTest, StressManyThreadsProtectAndRetire) {
  // Threads share a small pool of slots holding heap objects; each thread
  // repeatedly protects a slot, validates the object is readable (poison
  // check), then occasionally swaps the slot's object and retires the old
  // one. ASan turns any premature free into a hard failure.
  struct Obj {
    std::uint64_t canary = 0xfeedfacecafebeefULL;
  };
  constexpr int kSlots = 8;
  constexpr int kThreads = 6;
  constexpr int kIters = 4000;
  HazardPointerDomain hp(32, 2, 32);
  std::vector<std::atomic<Obj*>> slots(kSlots);
  for (auto& s : slots) s.store(new Obj);

  run_threads(kThreads, [&](std::size_t tid) {
    Xoshiro256 rng(tid * 7919 + 13);
    auto h = hp.make_handle();
    for (int i = 0; i < kIters; ++i) {
      auto& slot = slots[rng.next_below(kSlots)];
      Obj* p = h.protect(0, slot);
      if (p != nullptr) {
        ASSERT_EQ(p->canary, 0xfeedfacecafebeefULL) << "use after free";
      }
      if (rng.next_below(8) == 0) {
        auto* fresh = new Obj;
        Obj* old = slot.exchange(fresh);
        if (old != nullptr) hp.retire(old);
      }
      h.clear(0);
    }
  });

  for (auto& s : slots) delete s.exchange(nullptr);
  hp.flush();
  SUCCEED();
}

TEST(HazardTest, SlotReleasedAtThreadExitIsReusable) {
  HazardPointerDomain hp(/*max_threads=*/2, 2, 4);
  for (int round = 0; round < 8; ++round) {
    std::thread t([&] {
      auto h = hp.make_handle();
      hp.retire(new int(round));
    });
    t.join();
  }
  SUCCEED();
}

TEST(HazardTest, FreedCountAccounting) {
  HazardPointerDomain hp(8, 2, 4);
  for (int i = 0; i < 40; ++i) hp.retire(new int(i));
  hp.flush();
  EXPECT_GE(hp.freed_count(), 37u);  // all but possibly the last batch
}

TEST(HazardTest, DetachWithCoveredRetireeOrphansItUntilUncovered) {
  std::atomic<int> freed{0};
  HazardPointerDomain hp(8, 2, /*retire_batch=*/64);
  Tracked* covered = new Tracked(&freed);

  auto holder = hp.attach();  // publishes the hazard that blocks the free
  auto holder_hz = holder.make_handle();
  holder_hz.set(0, covered);

  {
    auto att = hp.attach();
    att.retire(covered);
    for (int i = 0; i < 5; ++i) att.retire(new Tracked(&freed));
    att.detach();  // detach scan frees the five, orphans the covered one
  }
  EXPECT_EQ(freed.load(), 5);

  holder_hz.clear_all();
  auto other = hp.attach();  // never owned the retiree
  other.flush();
  EXPECT_EQ(freed.load(), 6);
}

TEST(HazardTest, AttachThrowsCapacityExhaustedAndRecovers) {
  HazardPointerDomain hp(/*max_threads=*/1, 2);
  auto a = hp.attach();
  EXPECT_THROW(hp.attach(), CapacityExhausted);
  a.detach();
  EXPECT_NO_THROW(hp.attach());
}

TEST(HazardReclaimerTest, DetachedThreadsRetireesAreOrphanedAndFreed) {
  std::atomic<int> freed{0};
  HazardReclaimer r(/*max_threads=*/4, /*retire_batch=*/64);
  {
    auto att = r.attach();
    {
      auto g = att.pin();
    }
    for (int i = 0; i < 10; ++i) att.retire(new Tracked(&freed));
    att.detach();
  }
  EXPECT_EQ(freed.load(), 0);
  // Orphaned entries restart a grace round at registry level; with no pinned
  // readers one flush (three round steps) frees them all.
  r.flush();
  EXPECT_EQ(freed.load(), 10);
}

TEST(HazardReclaimerTest, OrphanedRoundStillWaitsForPinnedReaders) {
  std::atomic<int> freed{0};
  HazardReclaimer r(/*max_threads=*/4, /*retire_batch=*/64);
  auto reader = r.attach();
  auto g = reader.pin();
  {
    auto att = r.attach();
    for (int i = 0; i < 10; ++i) att.retire(new Tracked(&freed));
    att.detach();
  }
  r.flush();
  EXPECT_EQ(freed.load(), 0) << "orphans freed under a live pin";
  g = HazardReclaimer::Guard{};  // unpin
  r.flush();
  EXPECT_EQ(freed.load(), 10);
}

TEST(HazardReclaimerTest, NestedPinsBlockUntilOutermostReleases) {
  std::atomic<int> freed{0};
  HazardReclaimer r(/*max_threads=*/4, /*retire_batch=*/1);
  auto reader = r.attach();
  auto retirer = r.attach();
  auto outer = reader.pin();
  {
    auto inner = reader.pin();  // nested: depth 2, same announcement
    for (int i = 0; i < 8; ++i) retirer.retire(new Tracked(&freed));
    retirer.flush();
  }
  // Inner guard released; the outer pin must still hold every round open.
  retirer.flush();
  EXPECT_EQ(freed.load(), 0) << "inner unpin ended the outer pinned region";
  outer = HazardReclaimer::Guard{};
  retirer.flush();
  EXPECT_EQ(freed.load(), 8);
}

TEST(HazardReclaimerTest, OrphanGaugeMirrorsDrainedTotalsUnderChurn) {
  std::atomic<int> freed{0};
  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  constexpr int kPerRound = 8;
  constexpr int kTotal = kThreads * kRounds * kPerRound;
  HazardReclaimer r(/*max_threads=*/16, /*retire_batch=*/64);

  // Same shape as the epoch-side test: churners attach, retire a list short
  // of the batch, and detach (orphaning it) while a sweeper drains
  // concurrently — the lock-free orphan_count mirror races release against
  // sweep the whole time.
  std::atomic<bool> stop{false};
  std::thread sweeper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      r.flush();
      const ReclaimGauges g = r.gauges();
      EXPECT_LE(g.orphan_depth, static_cast<std::uint64_t>(kTotal));
    }
  });
  run_threads(kThreads, [&](std::size_t) {
    for (int round = 0; round < kRounds; ++round) {
      auto att = r.attach();
      for (int i = 0; i < kPerRound; ++i) att.retire(new Tracked(&freed));
      att.detach();
    }
  });
  stop.store(true, std::memory_order_release);
  sweeper.join();

  // Quiescent with no attachments: every retired-but-not-freed object sits
  // in the orphan store, so the mirror must equal the backlog exactly.
  ReclaimGauges g = r.gauges();
  EXPECT_EQ(g.retired_total, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(g.orphan_depth, g.backlog());
  EXPECT_EQ(static_cast<std::uint64_t>(freed.load()), g.freed_total);

  // Drain to empty: the mirror must reach zero with the books balanced.
  for (int i = 0; i < 64 && freed.load() < kTotal; ++i) r.flush();
  g = r.gauges();
  EXPECT_EQ(g.orphan_depth, 0u);
  EXPECT_EQ(g.freed_total, g.retired_total);
  ASSERT_EQ(freed.load(), kTotal);
}

TEST(HazardReclaimerTest, AttachThrowsCapacityExhaustedAndRecovers) {
  HazardReclaimer r(/*max_threads=*/1);
  auto a = r.attach();
  EXPECT_THROW(r.attach(), CapacityExhausted);
  a.detach();
  EXPECT_NO_THROW(r.attach());
}

}  // namespace
}  // namespace efrb
