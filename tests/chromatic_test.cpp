// Single-threaded correctness and *shape* of the chromatic tree: sequential
// set/map semantics, the ordered-query tier, the structural validator
// (weighted path sums, violation counts), and the balance property itself —
// a fully sorted insertion stream must leave a logarithmic-depth tree where
// the unbalanced EFRB tree degenerates into a linked list. The concurrent
// and fault-injection matrices live in chromatic_concurrent_test.cpp.
#include <gtest/gtest.h>

#include <climits>
#include <set>
#include <vector>

#include "core/chromatic.hpp"
#include "core/efrb_tree.hpp"
#include "util/rng.hpp"

namespace efrb {
namespace {

// Sanitized builds run the same suite (scripts/check.sh asan/tsan stages);
// scale the million-key shape test down there so those stages stay fast.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr int kSortedN = 200'000;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr int kSortedN = 200'000;
#else
constexpr int kSortedN = 1'000'000;
#endif
#else
constexpr int kSortedN = 1'000'000;
#endif

using Set = ChromaticTreeSet<int>;
using Map = ChromaticTreeMap<int, int>;

// --------------------------- skeleton & semantics --------------------------

TEST(ChromaticShapeTest, EmptySkeleton) {
  Set t;
  const auto v = t.validate();
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.internals, 1u);
  EXPECT_EQ(v.real_leaves, 0u);
  EXPECT_EQ(v.height, 2u);
  EXPECT_EQ(v.red_red, 0u);
  EXPECT_EQ(v.overweight, 0u);
  EXPECT_TRUE(t.empty());
}

TEST(ChromaticShapeTest, BasicSetSemantics) {
  Set t;
  EXPECT_FALSE(t.contains(5));
  EXPECT_TRUE(t.insert(5));
  EXPECT_FALSE(t.insert(5));
  EXPECT_TRUE(t.contains(5));
  EXPECT_TRUE(t.insert(3));
  EXPECT_TRUE(t.insert(8));
  EXPECT_TRUE(t.validate().ok);
  EXPECT_TRUE(t.erase(5));
  EXPECT_FALSE(t.erase(5));
  EXPECT_FALSE(t.contains(5));
  EXPECT_TRUE(t.contains(3));
  EXPECT_TRUE(t.contains(8));
  const auto v = t.validate();
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.real_leaves, 2u);
}

TEST(ChromaticShapeTest, DrainReturnsToEmptySkeleton) {
  Set t;
  for (int k : {5, 3, 8, 1, 9, 7}) EXPECT_TRUE(t.insert(k));
  for (int k : {5, 3, 8, 1, 9, 7}) EXPECT_TRUE(t.erase(k));
  const auto v = t.validate();
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.internals, 1u);
  EXPECT_EQ(v.real_leaves, 0u);
  EXPECT_EQ(v.height, 2u);
}

TEST(ChromaticShapeTest, SentinelEdgeKeysAreOrdinary) {
  // The bounded-key wrapper puts both infinities above every real key, so
  // INT_MIN/INT_MAX need no special handling anywhere in the chromatic core.
  Set t;
  EXPECT_TRUE(t.insert(INT_MAX));
  EXPECT_TRUE(t.insert(INT_MIN));
  EXPECT_TRUE(t.insert(0));
  EXPECT_TRUE(t.contains(INT_MAX));
  EXPECT_TRUE(t.contains(INT_MIN));
  EXPECT_EQ(t.min_key().value(), INT_MIN);
  EXPECT_EQ(t.max_key().value(), INT_MAX);
  EXPECT_TRUE(t.erase(INT_MAX));
  EXPECT_TRUE(t.erase(INT_MIN));
  EXPECT_TRUE(t.validate().ok);
}

TEST(ChromaticMapTest, ValueOperations) {
  Map m;
  EXPECT_FALSE(m.get(1).has_value());
  EXPECT_TRUE(m.insert(1, 10));
  EXPECT_FALSE(m.insert(1, 11));  // first-write-wins
  EXPECT_EQ(m.get(1).value(), 10);
  EXPECT_FALSE(m.insert_or_assign(1, 12));  // replaced, not inserted
  EXPECT_EQ(m.get(1).value(), 12);
  EXPECT_TRUE(m.insert_or_assign(2, 20));  // genuinely new
  EXPECT_FALSE(m.replace(1, 99, 13));      // expected mismatch
  EXPECT_TRUE(m.replace(1, 12, 13));
  EXPECT_EQ(m.get(1).value(), 13);
  EXPECT_EQ(m.get_or_insert(3, 30), 30);
  EXPECT_EQ(m.get_or_insert(3, 31), 30);  // already present: existing wins
  EXPECT_TRUE(m.erase(2));
  EXPECT_FALSE(m.get(2).has_value());
  EXPECT_TRUE(m.validate().ok);
}

// --------------------------- ordered-query tier ----------------------------

TEST(ChromaticOrderedTest, BoundsAndRanges) {
  Map m;
  for (int k = 0; k <= 60; k += 3) ASSERT_TRUE(m.insert(k, k * 10));

  EXPECT_EQ(m.min_key().value(), 0);
  EXPECT_EQ(m.max_key().value(), 60);
  EXPECT_EQ(m.find_ge(14).value(), 15);
  EXPECT_EQ(m.find_ge(15).value(), 15);
  EXPECT_EQ(m.find_gt(15).value(), 18);
  EXPECT_EQ(m.find_le(14).value(), 12);
  EXPECT_EQ(m.find_le(15).value(), 15);
  EXPECT_EQ(m.find_lt(15).value(), 12);
  EXPECT_FALSE(m.find_gt(60).has_value());
  EXPECT_FALSE(m.find_lt(0).has_value());

  EXPECT_EQ(m.count_range(10, 20), 3u);  // 12, 15, 18 — both ends closed
  EXPECT_EQ(m.count_range(12, 18), 3u);
  EXPECT_EQ(m.count_range(61, 100), 0u);

  std::vector<int> keys;
  m.range(9, 21, [&](const int& k, const int& v) {
    keys.push_back(k);
    EXPECT_EQ(v, k * 10);
  });
  EXPECT_EQ(keys, (std::vector<int>{9, 12, 15, 18, 21}));

  std::vector<int> all;
  m.for_each([&](const int& k, const int&) { all.push_back(k); });
  ASSERT_EQ(all.size(), 21u);
  for (std::size_t i = 1; i < all.size(); ++i) EXPECT_LT(all[i - 1], all[i]);
  EXPECT_EQ(m.size(), 21u);
}

// --------------------------- validator-driven fuzz -------------------------

TEST(ChromaticValidatorTest, RandomOpsKeepWeightedPathSumsEqual) {
  Set t;
  std::set<int> oracle;
  Xoshiro256 rng(0xC0FFEE);
  for (int step = 0; step < 6000; ++step) {
    const int k = static_cast<int>(rng.next_below(256));
    switch (rng.next_below(3)) {
      case 0:
        ASSERT_EQ(t.insert(k), oracle.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(t.erase(k), oracle.erase(k) != 0);
        break;
      default:
        ASSERT_EQ(t.contains(k), oracle.count(k) != 0);
    }
    if (step % 500 == 499) {
      const auto v = t.validate();
      ASSERT_TRUE(v.ok) << "step " << step << ": " << v.error;
      ASSERT_EQ(v.real_leaves, oracle.size());
    }
  }
  const auto v = t.validate();
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.real_leaves, oracle.size());
}

// --------------------------- the balance property --------------------------

TEST(ChromaticBalanceTest, SortedMillionInsertStaysLogarithmic) {
  // The headline structural claim: a fully sorted insertion stream — the
  // EFRB tree's pathological case, producing a height-N vine — leaves the
  // chromatic tree at red-black depth. Quiescent single-threaded cleanup
  // repairs every violation it creates, so the final tree is a legal
  // red-black tree: zero violations and height <= 2*log2(N) + O(1).
  Set t;
  for (int k = 0; k < kSortedN; ++k) ASSERT_TRUE(t.insert(k));
  const auto v = t.validate();
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.real_leaves, static_cast<std::size_t>(kSortedN));
  EXPECT_EQ(v.red_red, 0u);
  EXPECT_EQ(v.overweight, 0u);
  EXPECT_LE(v.height, 50u);  // 2*log2(1e6) ~ 40, plus the sentinel skeleton

  // Spot membership across the whole range.
  for (int k = 0; k < kSortedN; k += kSortedN / 64) EXPECT_TRUE(t.contains(k));
  EXPECT_FALSE(t.contains(kSortedN));
}

TEST(ChromaticBalanceTest, ReverseSortedInsertAlsoBalanced) {
  Set t;
  const int n = kSortedN / 10;
  for (int k = n; k > 0; --k) ASSERT_TRUE(t.insert(k));
  const auto v = t.validate();
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.red_red, 0u);
  EXPECT_EQ(v.overweight, 0u);
  EXPECT_LE(v.height, 44u);
}

TEST(ChromaticBalanceTest, EraseRebalancesOverweight) {
  Set t;
  for (int k = 0; k < 4096; ++k) ASSERT_TRUE(t.insert(k));
  for (int k = 0; k < 4096; k += 2) ASSERT_TRUE(t.erase(k));
  auto v = t.validate();
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.real_leaves, 2048u);
  // Erase cleanup is decoupled and per-path: every overweight violation on a
  // deleted key's path gets repaired before the erase returns, so none
  // survive quiescence. (A PUSH can park a transient red-red off-path; the
  // hard invariant — equal weighted path sums — holds regardless, which is
  // what `ok` asserts.)
  EXPECT_EQ(v.overweight, 0u);
  EXPECT_LE(v.height, 60u);

  for (int k = 1; k < 4096; k += 2) ASSERT_TRUE(t.erase(k));
  v = t.validate();
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.real_leaves, 0u);
  EXPECT_EQ(v.height, 2u);
}

// --------------------------- depth/rotation telemetry ----------------------

TEST(ChromaticStatsTest, DepthAndRotationCountersPopulate) {
  using StatsMap =
      ChromaticTreeMap<int, int, std::less<int>, EpochReclaimer, StatsTraits>;
  StatsMap chromatic;
  for (int k = 0; k < 4096; ++k) ASSERT_TRUE(chromatic.insert(k, k));
  for (int k = 0; k < 4096; ++k) ASSERT_TRUE(chromatic.contains(k));

  const TreeStats s = chromatic.stats();
  EXPECT_GT(s.rotations, 0u);  // sorted insert forces RB1/BLK repairs
  EXPECT_GT(s.depth_samples, 0u);
  EXPECT_GT(s.depth_avg(), 0.0);
  EXPECT_LE(s.depth_avg(), static_cast<double>(s.depth_max));
  // Red-black depth for 4096 keys: 2*12 + slack. The whole point.
  EXPECT_LE(s.depth_max, 40u);

  // The same stream through the unbalanced EFRB tree degenerates: its
  // descent depths are two orders of magnitude deeper, and it has no
  // rotations to report.
  using EfrbStatsMap =
      EfrbTreeMap<int, int, std::less<int>, EpochReclaimer, StatsTraits>;
  EfrbStatsMap efrb;
  for (int k = 0; k < 4096; ++k) ASSERT_TRUE(efrb.insert(k, k));
  const TreeStats e = efrb.stats();
  EXPECT_EQ(e.rotations, 0u);
  EXPECT_GT(e.depth_max, 1000u);
  EXPECT_GT(e.depth_max, 10 * s.depth_max);
}

// --------------------------- pooled allocation & handles -------------------

TEST(ChromaticAllocTest, PooledVariantFullCycle) {
  using Pooled =
      ChromaticTreeSet<int, std::less<int>, EpochReclaimer, PooledTraits>;
  Pooled t;
  {
    auto h = t.handle();
    for (int k = 0; k < 2000; ++k) EXPECT_TRUE(h.insert(k));
    for (int k = 0; k < 2000; k += 2) EXPECT_TRUE(h.erase(k));
    h.flush();
  }
  EXPECT_TRUE(t.validate().ok);
  EXPECT_EQ(t.size(), 1000u);
  EXPECT_FALSE(t.contains(0));
  EXPECT_TRUE(t.contains(1));
}

TEST(ChromaticHandleTest, HandleCoversFullSurface) {
  Map m;
  auto h = m.handle();
  EXPECT_TRUE(h.insert(1, 10));
  EXPECT_TRUE(h.insert_or_assign(2, 20));
  EXPECT_FALSE(h.insert_or_assign(2, 21));
  EXPECT_EQ(h.get(2).value(), 21);
  EXPECT_TRUE(h.replace(2, 21, 22));
  EXPECT_EQ(h.get_or_insert(3, 30), 30);
  EXPECT_TRUE(h.contains(1));
  EXPECT_EQ(h.min_key().value(), 1);
  EXPECT_EQ(h.max_key().value(), 3);
  EXPECT_EQ(h.find_ge(2).value(), 2);
  EXPECT_EQ(h.count_range(1, 3), 3u);
  EXPECT_TRUE(h.erase(1));
  EXPECT_FALSE(h.erase(1));

  // Handles are movable; the moved-to handle keeps working.
  auto h2 = std::move(h);
  EXPECT_TRUE(h2.contains(2));
  EXPECT_TRUE(m.validate().ok);
}

}  // namespace
}  // namespace efrb
